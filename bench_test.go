// bench_test.go hosts one benchmark per paper table and figure plus the
// ablation and micro benchmarks called out in DESIGN.md. The macro
// benches run shrunken experiments (few rounds, small stored row caps) so
// `go test -bench=.` finishes in minutes; `cmd/experiments` runs the
// full-scale regeneration. Custom metrics report the simulated totals the
// figures plot, so benchmark output doubles as a shape check.
package dbabandits

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/harness"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/workload"
)

// benchRounds keeps macro benches quick.
const (
	benchRounds      = 6
	benchShiftRounds = 8
	benchStoredRows  = 1500
)

func benchExperiment(b *testing.B, bench string, regime harness.Regime, rounds int) *harness.Experiment {
	b.Helper()
	exp, err := harness.New(harness.Options{
		Benchmark:     bench,
		Regime:        regime,
		Rounds:        rounds,
		ScaleFactor:   10,
		MaxStoredRows: benchStoredRows,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return exp
}

// runPair executes NoIndex/PDTool/MAB and reports their totals as
// metrics.
func runPair(b *testing.B, exp *harness.Experiment) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		totals := map[harness.TunerKind]float64{}
		for _, kind := range []harness.TunerKind{harness.NoIndex, harness.PDTool, harness.MAB} {
			res, err := exp.Run(kind)
			if err != nil {
				b.Fatal(err)
			}
			_, _, _, total := res.Totals()
			totals[kind] = total
		}
		b.ReportMetric(totals[harness.NoIndex], "noindex-sec")
		b.ReportMetric(totals[harness.PDTool], "pdtool-sec")
		b.ReportMetric(totals[harness.MAB], "mab-sec")
	}
}

// --- Figures 2 & 3: static workloads ---

func BenchmarkFig2StaticConvergence(b *testing.B) {
	for _, bench := range workload.AllNames() {
		b.Run(bench, func(b *testing.B) {
			exp := benchExperiment(b, bench, harness.Static, benchRounds)
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalRoundExecSec(), "final-round-sec")
			}
		})
	}
}

func BenchmarkFig3StaticTotals(b *testing.B) {
	for _, bench := range workload.AllNames() {
		b.Run(bench, func(b *testing.B) {
			runPair(b, benchExperiment(b, bench, harness.Static, benchRounds))
		})
	}
}

// --- Figures 4 & 5: dynamic shifting workloads ---

func BenchmarkFig4ShiftingConvergence(b *testing.B) {
	for _, bench := range []string{"ssb", "tpch-skew"} {
		b.Run(bench, func(b *testing.B) {
			exp := benchExperiment(b, bench, harness.Shifting, benchShiftRounds)
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalRoundExecSec(), "final-round-sec")
			}
		})
	}
}

func BenchmarkFig5ShiftingTotals(b *testing.B) {
	for _, bench := range workload.AllNames() {
		b.Run(bench, func(b *testing.B) {
			runPair(b, benchExperiment(b, bench, harness.Shifting, benchShiftRounds))
		})
	}
}

// --- Figures 6 & 7: dynamic random workloads ---

func BenchmarkFig6RandomConvergence(b *testing.B) {
	for _, bench := range []string{"tpcds", "imdb"} {
		b.Run(bench, func(b *testing.B) {
			exp := benchExperiment(b, bench, harness.Random, benchRounds)
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalRoundExecSec(), "final-round-sec")
			}
		})
	}
}

func BenchmarkFig7RandomTotals(b *testing.B) {
	for _, bench := range workload.AllNames() {
		b.Run(bench, func(b *testing.B) {
			runPair(b, benchExperiment(b, bench, harness.Random, benchRounds))
		})
	}
}

// --- Table I: time breakdown ---

func BenchmarkTable1Breakdown(b *testing.B) {
	for _, regime := range []harness.Regime{harness.Static, harness.Shifting, harness.Random} {
		rounds := benchRounds
		if regime == harness.Shifting {
			rounds = benchShiftRounds
		}
		b.Run(string(regime), func(b *testing.B) {
			exp := benchExperiment(b, "tpch-skew", regime, rounds)
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				rec, create, exec, _ := res.Totals()
				b.ReportMetric(rec, "recommend-sec")
				b.ReportMetric(create, "create-sec")
				b.ReportMetric(exec, "execute-sec")
			}
		})
	}
}

// --- Table II: scale factors ---

func BenchmarkTable2ScaleFactors(b *testing.B) {
	for _, sf := range []float64{1, 10, 100} {
		b.Run(fmt.Sprintf("sf%.0f", sf), func(b *testing.B) {
			exp, err := harness.New(harness.Options{
				Benchmark:     "tpch-skew",
				Regime:        harness.Static,
				Rounds:        benchRounds,
				ScaleFactor:   sf,
				MaxStoredRows: benchStoredRows,
				Seed:          1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				_, _, _, total := res.Totals()
				b.ReportMetric(total/60, "mab-min")
			}
		})
	}
}

// --- Figure 8: DDQN vs MAB ---

func BenchmarkFig8RLComparison(b *testing.B) {
	for _, kind := range []harness.TunerKind{harness.MAB, harness.DDQN, harness.DDQNSC} {
		b.Run(string(kind), func(b *testing.B) {
			exp := benchExperiment(b, "tpch", harness.Static, benchRounds)
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(kind)
				if err != nil {
					b.Fatal(err)
				}
				_, _, _, total := res.Totals()
				b.ReportMetric(total, "total-sec")
			}
		})
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationContextEncoding compares the paper's column-prefix
// context against a one-hot bag-of-columns.
func BenchmarkAblationContextEncoding(b *testing.B) {
	for _, oneHot := range []bool{false, true} {
		name := "prefix"
		if oneHot {
			name = "onehot"
		}
		b.Run(name, func(b *testing.B) {
			exp := benchExperiment(b, "tpch", harness.Static, benchRounds)
			exp.Opts.MABOptions = mab.TunerOptions{
				MemoryBudgetBytes: exp.Budget,
				OneHotContext:     oneHot,
			}
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				_, _, _, total := res.Totals()
				b.ReportMetric(total, "total-sec")
			}
		})
	}
}

// BenchmarkAblationForgetting runs the shifting regime with and without
// shift-scaled forgetting.
func BenchmarkAblationForgetting(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			exp := benchExperiment(b, "tpch-skew", harness.Shifting, benchShiftRounds)
			exp.Opts.MABOptions = mab.TunerOptions{
				MemoryBudgetBytes: exp.Budget,
				DisableForgetting: disabled,
			}
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				_, _, _, total := res.Totals()
				b.ReportMetric(total, "total-sec")
			}
		})
	}
}

// BenchmarkAblationCreationPenalty removes the creation-time term from
// rewards (inviting index oscillation).
func BenchmarkAblationCreationPenalty(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "penalised"
		if off {
			name = "free-creation"
		}
		b.Run(name, func(b *testing.B) {
			exp := benchExperiment(b, "ssb", harness.Static, benchRounds)
			exp.Opts.MABOptions = mab.TunerOptions{
				MemoryBudgetBytes: exp.Budget,
				NoCreationPenalty: off,
			}
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				_, create, _, total := res.Totals()
				b.ReportMetric(create, "create-sec")
				b.ReportMetric(total, "total-sec")
			}
		})
	}
}

// BenchmarkAblationWarmStart compares cold start against what-if
// pre-training (Section VII's cold-start mitigation).
func BenchmarkAblationWarmStart(b *testing.B) {
	for _, warm := range []int{0, 3} {
		name := "cold"
		if warm > 0 {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			exp := benchExperiment(b, "ssb", harness.Static, benchRounds)
			exp.Opts.MABWarmStartRounds = warm
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(harness.MAB)
				if err != nil {
					b.Fatal(err)
				}
				early := 0.0
				for _, r := range res.Rounds[:3] {
					early += r.TotalSec()
				}
				b.ReportMetric(early, "first3-rounds-sec")
			}
		})
	}
}

// BenchmarkAblationOracleFiltering compares the filtering oracle against
// a naive top-k-by-score selection.
func BenchmarkAblationOracleFiltering(b *testing.B) {
	schema, db := benchArmFixture(b)
	gen := mab.NewArmGenerator(schema, mab.ArmGenOptions{})
	bench, _ := workload.ByName("tpch")
	rng := rand.New(rand.NewSource(1))
	var qs []*Query
	for _, ts := range bench.Templates {
		qs = append(qs, ts.Instantiate(rng, db, "tpch"))
	}
	arms := gen.Generate(qs)
	scores := make([]float64, len(arms))
	for i := range scores {
		scores[i] = rng.Float64() * 100
	}
	budget := db.DataSizeBytes()
	b.Run("filtering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel := mab.SelectSuperArm(arms, scores, budget)
			b.ReportMetric(float64(len(sel)), "selected")
		}
	})
	b.Run("naive-topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// top-k by score ignoring subsumption/covering filters
			var total int64
			n := 0
			for j := range arms {
				if scores[j] > 0 && total+arms[j].SizeBytes <= budget {
					total += arms[j].SizeBytes
					n++
				}
			}
			b.ReportMetric(float64(n), "selected")
		}
	})
}

// --- parallel experiment runner ---

// BenchmarkRunCellsStaticSweep measures the full static-regime sweep
// (five benchmarks × NoIndex/PDTool/MAB) through harness.RunCells at
// increasing worker counts. The parallel/1 case is the sequential
// reference; on a 4-core runner the GOMAXPROCS case should show the
// ≥2× wall-clock speedup the parallel runner exists for, with results
// byte-identical at every setting (see TestRunCellsDeterministic).
func BenchmarkRunCellsStaticSweep(b *testing.B) {
	specs := func() []harness.CellSpec {
		var out []harness.CellSpec
		for _, bench := range workload.AllNames() {
			for _, kind := range []harness.TunerKind{harness.NoIndex, harness.PDTool, harness.MAB} {
				out = append(out, harness.CellSpec{
					Options: harness.Options{
						Benchmark:     bench,
						Regime:        harness.Static,
						Rounds:        benchRounds,
						ScaleFactor:   10,
						MaxStoredRows: benchStoredRows,
						Seed:          1,
					},
					Tuner: kind,
				})
			}
		}
		return out
	}
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, par := range levels {
		if seen[par] {
			continue
		}
		seen[par] = true
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := harness.RunCells(specs(), harness.RunCellsOptions{Parallel: par})
				if errs := harness.CellErrs(results); len(errs) > 0 {
					b.Fatal(errs[0])
				}
			}
		})
	}
}

// --- micro benchmarks of the hot paths ---

func benchArmFixture(b *testing.B) (*Schema, *Database) {
	b.Helper()
	bench, err := workload.ByName("tpch")
	if err != nil {
		b.Fatal(err)
	}
	schema := bench.NewSchema()
	db, err := BuildDatabase(schema, 10, benchStoredRows, 1)
	if err != nil {
		b.Fatal(err)
	}
	return schema, db
}

func BenchmarkRidgeObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dim := 128
	rs := linalg.NewRidgeState(dim, 0.25)
	x := linalg.NewVector(dim)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Observe(x, 1.0)
	}
}

func BenchmarkC2UCBScores(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dim := 128
	bandit := mab.NewC2UCB(dim, 0.25, nil)
	bandit.BeginRound()
	var ctxs []linalg.SparseVector
	for k := 0; k < 200; k++ {
		x := linalg.NewVector(dim)
		for i := range x {
			x[i] = rng.Float64()
		}
		ctxs = append(ctxs, linalg.SparseFromDense(x))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bandit.Scores(ctxs)
	}
}

func BenchmarkArmGeneration(b *testing.B) {
	schema, db := benchArmFixture(b)
	gen := mab.NewArmGenerator(schema, mab.ArmGenOptions{})
	bench, _ := workload.ByName("tpch")
	rng := rand.New(rand.NewSource(3))
	var qs []*Query
	for _, ts := range bench.Templates {
		qs = append(qs, ts.Instantiate(rng, db, "tpch"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(qs)
	}
}

func BenchmarkQueryExecution(b *testing.B) {
	schema, db := benchArmFixture(b)
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)
	bench, _ := workload.ByName("tpch")
	rng := rand.New(rand.NewSource(4))
	q := bench.Templates[2].Instantiate(rng, db, "tpch") // Q3: 3-way join
	cfg := index.NewConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := opt.ChoosePlan(q, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Execute(db, plan, cm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhatIfCost(b *testing.B) {
	schema, db := benchArmFixture(b)
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)
	bench, _ := workload.ByName("tpch")
	rng := rand.New(rand.NewSource(5))
	q := bench.Templates[4].Instantiate(rng, db, "tpch") // Q5: 6-way join
	cfg := index.NewConfig()
	cfg.Add(index.New("lineitem", []string{"l_shipdate"}, []string{"l_extendedprice", "l_discount"}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.WhatIfCost(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- plan & what-if cache (PR 10) ---

// benchPlanFixture builds the pricing fixture the cache benchmarks
// share: TPC-H Q5 (6-way join) plus the full template workload, under a
// configuration with indexes on the hot tables.
func benchPlanFixture(b *testing.B) (*optimizer.Optimizer, *optimizer.Optimizer, *Query, []*Query, *index.Config) {
	b.Helper()
	schema, db := benchArmFixture(b)
	cm := engine.DefaultCostModel()
	bench, _ := workload.ByName("tpch")
	rng := rand.New(rand.NewSource(5))
	q := bench.Templates[4].Instantiate(rng, db, "tpch") // Q5: 6-way join
	var wl []*Query
	for _, ts := range bench.Templates {
		wl = append(wl, ts.Instantiate(rng, db, "tpch"))
	}
	cfg := index.NewConfig()
	cfg.Add(index.New("lineitem", []string{"l_shipdate"}, []string{"l_extendedprice", "l_discount"}))
	cfg.Add(index.New("orders", []string{"o_orderdate"}, nil))
	cfg.Add(index.New("customer", []string{"c_mktsegment"}, nil))
	return optimizer.New(schema, cm), optimizer.NewUncached(schema, cm), q, wl, cfg
}

// BenchmarkChoosePlanCold is the uncached full greedy search — the
// pre-PR-10 cost of every optimiser invocation and the denominator of
// the cache's speedup claim.
func BenchmarkChoosePlanCold(b *testing.B) {
	_, uncached, q, _, cfg := benchPlanFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uncached.ChoosePlan(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChoosePlanWarm re-prices an unchanged configuration — the
// steady-state round's dominant call pattern, answered by the cache's
// (config pointer, epoch) fast path.
func BenchmarkChoosePlanWarm(b *testing.B) {
	cached, _, q, _, cfg := benchPlanFixture(b)
	if _, err := cached.ChoosePlan(q, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cached.ChoosePlan(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfWorkloadCold prices the full TPC-H template workload
// uncached, per call.
func BenchmarkWhatIfWorkloadCold(b *testing.B) {
	_, uncached, _, wl, cfg := benchPlanFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := uncached.WhatIfWorkloadCost(wl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfWorkloadWarm prices the same workload with the cache
// primed — the advisor/PDTool/guardrail repeat-pricing pattern.
func BenchmarkWhatIfWorkloadWarm(b *testing.B) {
	cached, _, _, wl, cfg := benchPlanFixture(b)
	if _, _, err := cached.WhatIfWorkloadCost(wl, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cached.WhatIfWorkloadCost(wl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
