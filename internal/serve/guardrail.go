package serve

import (
	"dbabandits/internal/index"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
)

// GuardrailOptions configure the serving mode's runtime safety
// supervisor. The guardrail compares each window's realized cost
// (creation + execution seconds) against a what-if baseline under the
// last-known-safe configuration; sustained regressions quarantine the
// tuner: the configuration reverts to the safe one and recommendations
// are overridden for a cooldown period. The zero value enables the
// guardrail with the defaults noted per field.
type GuardrailOptions struct {
	// Disabled turns the supervisor off entirely: no baselines, no
	// violations, no interventions.
	Disabled bool
	// BudgetX is the allowed multiple of the baseline; a window whose
	// realized cost exceeds BudgetX*baseline + BudgetSec is a
	// violation. Default 2.0 — generous, because the baseline is a
	// what-if estimate and the realized cost includes index creations
	// the baseline never pays.
	BudgetX float64
	// BudgetSec is the additive slack of the regression budget.
	// Default 0.
	BudgetSec float64
	// QuarantineAfter is the violation streak (consecutive violating
	// windows) that triggers quarantine. Default 2: one bad window is
	// noise, two in a row is a regression.
	QuarantineAfter int
	// CooldownWindows is how many subsequent windows run under the
	// safe configuration, recommendations overridden, before the tuner
	// is trusted again. Default 2.
	CooldownWindows int
	// ForgetFactor, when positive, additionally discounts the policy's
	// learned knowledge toward its prior on quarantine (policies
	// implementing policy.Forgetter only), in [0, 1]. Default 0 (off):
	// reverting the configuration is usually enough, and forgetting is
	// the stronger medicine for a policy whose learned state itself
	// went bad.
	ForgetFactor float64
}

func (o GuardrailOptions) withDefaults() GuardrailOptions {
	if o.BudgetX <= 0 {
		o.BudgetX = 2.0
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 2
	}
	if o.CooldownWindows <= 0 {
		o.CooldownWindows = 2
	}
	return o
}

// guard is the supervisor's state: the last-known-safe configuration
// (empty — NoIndex — until a window passes cleanly), the current
// violation streak, and the remaining quarantine cooldown.
type guard struct {
	opts        GuardrailOptions
	safe        *index.Config
	streak      int
	cooldown    int
	quarantines int
}

func newGuard(opts GuardrailOptions) *guard {
	return &guard{opts: opts.withDefaults(), safe: index.NewConfig()}
}

// quarantined reports whether the current window must run under the
// safe configuration instead of the policy's recommendation.
func (g *guard) quarantined() bool {
	return !g.opts.Disabled && g.cooldown > 0
}

// baseline prices the window's queries under the last-known-safe
// configuration via the what-if interface — the cost the system would
// have paid had it never trusted the tuner past the last clean window.
// Queries whose what-if pricing errors are excluded from the baseline
// and reported by position in failed, so the caller can exclude their
// realized cost from the guardrail comparison too: judging the full
// realized cost against a partial baseline would deflate the yardstick
// and spuriously trip quarantine on a healthy window.
func (g *guard) baseline(opt *optimizer.Optimizer, queries []*query.Query) (total float64, failed []int) {
	for i, q := range queries {
		c, err := opt.WhatIfCost(q, g.safe)
		if err != nil {
			failed = append(failed, i)
			continue
		}
		total += c
	}
	return total, failed
}

// observe judges one executed window: realized cost against the
// regression budget. It returns whether the window violated the budget
// and whether the violation streak just tripped quarantine. Windows
// executed under quarantine are not re-judged (the tuner was not in
// control); a clean window updates the last-known-safe configuration
// to the one that just proved itself.
func (g *guard) observe(realized, baseline float64, effective *index.Config) (violation, quarantineNow bool) {
	if g.opts.Disabled {
		return false, false
	}
	if g.cooldown > 0 {
		g.cooldown--
		return false, false
	}
	if realized > g.opts.BudgetX*baseline+g.opts.BudgetSec {
		g.streak++
		if g.streak >= g.opts.QuarantineAfter {
			g.streak = 0
			g.cooldown = g.opts.CooldownWindows
			g.quarantines++
			return true, true
		}
		return true, false
	}
	g.streak = 0
	// Rebuild rather than alias: the policy owns the config object it
	// recommended and a later snapshot must not race its reuse.
	g.safe = index.ConfigFromDefs(effective.Defs())
	return false, false
}
