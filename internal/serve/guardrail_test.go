package serve

import (
	"strings"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// TestBaselineWhatIfFailureNoFalseQuarantine is the regression test for
// the deflated-baseline bug: guard.baseline used to silently drop
// queries whose what-if pricing errors, so a window containing an
// unpriceable query was judged with its FULL realized cost against a
// PARTIAL baseline — enough deflation and a perfectly healthy window
// trips quarantine. The fix reports the failed positions so the caller
// excludes the same queries from the realized side, keeping the
// comparison like against like.
func TestBaselineWhatIfFailureNoFalseQuarantine(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := NewStream(strings.NewReader("1 2 3 4\n"), s)
	win, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}

	// A statement the what-if interface cannot price: it references a
	// table the schema does not have.
	bad := &query.Query{TemplateID: 999, Tables: []string{"no_such_table"}}
	if _, err := s.env.WhatIf().WhatIfCost(bad, index.NewConfig()); err == nil {
		t.Fatal("expected a what-if failure for a query on an unknown table")
	}
	window := append(append([]*query.Query{}, win...), bad)

	g := newGuard(GuardrailOptions{BudgetX: 1.2, QuarantineAfter: 1, CooldownWindows: 1})
	baseline, failed := g.baseline(s.env.WhatIf(), window)
	if len(failed) != 1 || failed[0] != len(window)-1 {
		t.Fatalf("failed positions = %v, want [%d]", failed, len(window)-1)
	}
	cleanBaseline, noneFailed := g.baseline(s.env.WhatIf(), win)
	if len(noneFailed) != 0 {
		t.Fatalf("clean window reported failed positions %v", noneFailed)
	}
	if baseline != cleanBaseline || baseline <= 0 {
		t.Fatalf("baseline = %v with the bad query, %v without; want equal and positive", baseline, cleanBaseline)
	}

	// A healthy window: the priceable queries realize exactly their
	// baseline cost, and the unpriceable query realizes a cost as large
	// as the rest of the window together. Judged the fixed way — failed
	// query excluded from both sides — the window is clean.
	badRealized := baseline
	if v, q := g.observe(baseline, baseline, index.NewConfig()); v || q {
		t.Fatalf("false positive: violation=%v quarantine=%v on a healthy window judged with the failed query excluded", v, q)
	}
	// The pre-fix judgement — full realized cost against the deflated
	// baseline — trips the guardrail on the same healthy window, which
	// is exactly the spurious quarantine the fix removes.
	if v, q := g.observe(baseline+badRealized, baseline, index.NewConfig()); !v || !q {
		t.Fatalf("violation=%v quarantine=%v: expected the deflated-baseline judgement to trip (the bug this test pins)", v, q)
	}
}

// TestStreamSkipErrorReportsTargetWindow is the regression test for the
// Skip error message: it used to print the skip COUNT as the target
// window, which only coincides with the true target when the stream is
// fresh. A restored session that has already consumed windows must
// report the absolute window the skip was heading for.
func TestStreamSkipErrorReportsTargetWindow(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Consume one window first, then skip 3 more with only 1 remaining:
	// the stream ends at window 2 while heading for window 1+3 = 4. The
	// pre-fix message said "skipping to 3" — the count, not the target.
	st := NewStream(strings.NewReader("1 2\n3\n"), s)
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	err = st.Skip(3)
	if err == nil {
		t.Fatal("skip past stream end accepted")
	}
	want := "stream ended at window 2 while skipping to 4"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("skip error %q, want it to contain %q", err, want)
	}
}
