// Package serve implements the online serving mode: a long-lived tuner
// session fed statement windows as they arrive, rather than a
// preplanned experiment regime. Two capability seams distinguish it
// from the batch driver in internal/env: sessions checkpoint to disk
// and resume byte-identically (policy.Snapshotter), and a runtime
// safety guardrail supervises the tuner, quarantining it back to the
// last-known-safe configuration when realized cost regresses past a
// budget.
package serve

import (
	"fmt"

	"dbabandits/internal/env"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
)

// Options configure a serving session. The zero value serves the SSB
// benchmark with the MAB tuner and the guardrail at its defaults.
type Options struct {
	// Benchmark names the schema/data the session serves ("ssb"
	// default; any workload.ByName benchmark).
	Benchmark string
	// ScaleFactor and MaxStoredRows size the generated data exactly as
	// env.Options do (defaults 10 and 5000).
	ScaleFactor   float64
	MaxStoredRows int
	// Seed drives data generation and every seeded policy.
	Seed int64
	// MemoryBudgetX is the index budget as a multiple of the data size
	// (default 1.0).
	MemoryBudgetX float64
	// Policy names the tuning strategy from the policy registry
	// (default "mab").
	Policy string
	// RidgeBackend selects the bandit's ridge core (linalg.BackendSM
	// default, linalg.BackendChol).
	RidgeBackend string
	// ScoreWorkers bounds the worker pool the bandit's arm scoring fans
	// across; <= 1 scores serially. Byte-identical reports at any
	// setting — serving latency is the only thing that changes.
	ScoreWorkers int
	// ForgetRank budgets the SM ridge backend's low-rank Forget
	// correction (0 = exact rebase). Shift- and quarantine-triggered
	// forgetting both go through it.
	ForgetRank int
	// DisablePlanCache turns off the optimiser's config-fingerprinted
	// plan cache (A/B control; reports are byte-identical either way).
	DisablePlanCache bool `json:",omitempty"`
	// Guardrail configures the safety supervisor.
	Guardrail GuardrailOptions
}

func (o Options) withDefaults() Options {
	if o.Benchmark == "" {
		o.Benchmark = "ssb"
	}
	if o.Policy == "" {
		o.Policy = "mab"
	}
	return o
}

// WindowReport is the per-window account a session returns from Feed:
// the cost breakdown, the effective configuration, and what — if
// anything — the guardrail did.
type WindowReport struct {
	// Window is the 1-based serving window this report covers.
	Window     int
	NumQueries int
	// RecommendSec, CreateSec and ExecSec break down the window's
	// realized cost exactly as the batch driver's RoundResult does.
	RecommendSec float64
	CreateSec    float64
	ExecSec      float64
	// BaselineSec is the what-if cost of the window under the
	// last-known-safe configuration — the guardrail's yardstick.
	BaselineSec float64
	NumIndexes  int
	// Indexes lists the effective configuration's index identifiers.
	Indexes []string `json:",omitempty"`
	// Quarantined marks a window that executed under the guardrail's
	// safe-configuration override rather than the policy's choice.
	Quarantined bool `json:",omitempty"`
	// Violation marks a window whose realized cost exceeded the
	// regression budget.
	Violation bool `json:",omitempty"`
	// Intervention is "quarantine" on the window whose violation streak
	// tripped the guardrail, empty otherwise.
	Intervention string `json:",omitempty"`
}

// Session is a long-lived serving-mode tuner: construct with New (or
// resume with Restore), Feed it statement windows, Checkpoint it at
// window boundaries, and Close it exactly once when done. A session is
// not safe for concurrent use.
type Session struct {
	opts Options
	env  *env.Environment
	pol  policy.Policy

	window     int
	cfg        *index.Config
	lastWindow []*query.Query
	guard      *guard
	closed     bool
}

// New prepares a serving session: benchmark data, environment, policy
// and guardrail. The caller owns the session and must Close it.
func New(opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if !linalg.ValidRidgeBackend(opts.RidgeBackend) {
		return nil, fmt.Errorf("serve: unknown ridge backend %q (available: %v)",
			opts.RidgeBackend, linalg.RidgeBackends())
	}
	mabOpts := mab.TunerOptions{
		RidgeBackend: opts.RidgeBackend,
		ScoreWorkers: opts.ScoreWorkers,
		ForgetRank:   opts.ForgetRank,
	}
	e, err := env.New(env.Options{
		Benchmark:        opts.Benchmark,
		Regime:           env.Static,
		ScaleFactor:      opts.ScaleFactor,
		MaxStoredRows:    opts.MaxStoredRows,
		Seed:             opts.Seed,
		MemoryBudgetX:    opts.MemoryBudgetX,
		MABOptions:       mabOpts,
		DDQNSeed:         opts.Seed,
		RandomSeed:       opts.Seed,
		DisablePlanCache: opts.DisablePlanCache,
	})
	if err != nil {
		return nil, err
	}
	p, err := policy.New(opts.Policy, e, policy.Params{
		MAB:        mabOpts,
		DDQNSeed:   opts.Seed,
		RandomSeed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		opts:  opts,
		env:   e,
		pol:   p,
		cfg:   index.NewConfig(),
		guard: newGuard(opts.Guardrail),
	}, nil
}

// Options returns the session's effective (defaulted) options.
func (s *Session) Options() Options { return s.opts }

// Window returns the number of windows served so far.
func (s *Session) Window() int { return s.window }

// Config returns the identifiers of the materialised configuration.
func (s *Session) Config() []string { return s.cfg.IDs() }

// Feed serves one statement window: the policy recommends a
// configuration given only the previous window, the guardrail may
// override it, index creations are priced against the materialised
// state, the window executes, the guardrail judges the realized cost
// against its baseline, and the true execution feedback reaches the
// policy — the same protocol the batch driver runs, minus the
// preplanned sequencer.
func (s *Session) Feed(queries []*query.Query) (*WindowReport, error) {
	if s.closed {
		return nil, fmt.Errorf("serve: session is closed")
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("serve: empty window")
	}
	s.window++
	rep := &WindowReport{Window: s.window, NumQueries: len(queries)}

	rec := s.pol.Recommend(s.window, s.lastWindow)
	next := rec.Config
	if next == nil {
		next = s.cfg
	}
	rep.RecommendSec = rec.RecommendSec
	if s.guard.quarantined() {
		// Cooldown: the tuner still observes the window (its learning
		// continues) but its configuration choice is overridden.
		next = s.guard.safe.Clone()
		rep.Quarantined = true
	}

	perCreate, createSec := s.env.CreationCost(next.Diff(s.cfg))
	s.cfg = next
	rep.CreateSec = createSec
	// The report describes the configuration the window executed under;
	// a quarantine later this window reverts state, not history.
	rep.NumIndexes = s.cfg.Len()
	rep.Indexes = s.cfg.IDs()

	execSec, stats, err := s.env.ExecuteWorkload(queries, s.cfg)
	if err != nil {
		return nil, err
	}
	rep.ExecSec = execSec
	baseline, failed := s.guard.baseline(s.env.WhatIf(), queries)
	rep.BaselineSec = baseline

	s.pol.Observe(stats, perCreate)
	s.lastWindow = queries

	// Judge like against like: a query the baseline could not price is
	// excluded from the realized side too, so an unpriceable query can
	// never deflate the yardstick and spuriously trip quarantine.
	realized := createSec + execSec
	for _, i := range failed {
		realized -= stats[i].TotalSec
	}
	violation, quarantineNow := s.guard.observe(realized, rep.BaselineSec, s.cfg)
	rep.Violation = violation
	if quarantineNow {
		// Revert immediately: dropping indexes is free, so the safe
		// configuration takes effect for the very next window.
		s.cfg = s.guard.safe.Clone()
		rep.Intervention = "quarantine"
		if f, ok := s.pol.(policy.Forgetter); ok && s.guard.opts.ForgetFactor > 0 {
			f.Forget(s.guard.opts.ForgetFactor)
		}
	}
	return rep, nil
}

// Quarantines returns how many times the guardrail has intervened.
func (s *Session) Quarantines() int { return s.guard.quarantines }

// Close releases the session's policy. It is idempotent: the policy's
// Close runs exactly once no matter how many times — or on which error
// path — the session is closed.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.pol.Close()
}
