package serve

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"dbabandits/internal/query"
	"dbabandits/internal/storage"
	"dbabandits/internal/workload"
)

// Stream reads the serving line protocol: one line per window, each a
// whitespace-separated list of template ids from the session's
// benchmark ("1 2 2 5" — repeat an id for multiple instances). Blank
// lines and lines starting with '#' are skipped. Ids are instantiated
// into concrete queries deterministically per (seed, window, position),
// so replaying a stream — or skipping its consumed prefix after a
// restore — reproduces the exact statements the original run served.
type Stream struct {
	sc        *bufio.Scanner
	templates map[int]workload.TemplateSpec
	bench     string
	db        *storage.Database
	seed      int64
	window    int
}

// NewStream wraps a line-protocol reader for the given session.
func NewStream(r io.Reader, s *Session) *Stream {
	bench := s.env.Bench
	templates := make(map[int]workload.TemplateSpec, len(bench.Templates))
	for _, ts := range bench.Templates {
		templates[ts.ID] = ts
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Stream{
		sc:        sc,
		templates: templates,
		bench:     bench.Name,
		db:        s.env.DB,
		seed:      s.opts.Seed,
		window:    0,
	}
}

// Skip consumes n windows without instantiating them — how a restored
// session fast-forwards past the part of the stream the checkpointed
// run already served. It errors if the stream ends early.
func (st *Stream) Skip(n int) error {
	// The skip target is absolute: n windows past wherever the stream
	// already is, not window n (a restored stream may have consumed a
	// prefix before skipping).
	target := st.window + n
	for i := 0; i < n; i++ {
		if _, err := st.nextLine(); err != nil {
			if err == io.EOF {
				return fmt.Errorf("serve: stream ended at window %d while skipping to %d", st.window, target)
			}
			return err
		}
		st.window++
	}
	return nil
}

// Next reads and instantiates the next window. It returns io.EOF when
// the stream is exhausted.
func (st *Stream) Next() ([]*query.Query, error) {
	line, err := st.nextLine()
	if err != nil {
		return nil, err
	}
	st.window++
	fields := strings.Fields(line)
	out := make([]*query.Query, 0, len(fields))
	for pos, f := range fields {
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("serve: window %d: bad template id %q", st.window, f)
		}
		ts, ok := st.templates[id]
		if !ok {
			return nil, fmt.Errorf("serve: window %d: benchmark %s has no template %d", st.window, st.bench, id)
		}
		// One rng per (seed, window, position): instantiation does not
		// depend on how earlier ids in the stream consumed randomness,
		// so any consumed prefix can be skipped without replaying it.
		rng := rand.New(rand.NewSource(st.seed + int64(st.window)*1_000_003 + int64(pos)*7919))
		out = append(out, ts.Instantiate(rng, st.db, st.bench))
	}
	return out, nil
}

// Window returns the number of windows consumed (read or skipped).
func (st *Stream) Window() int { return st.window }

func (st *Stream) nextLine() (string, error) {
	for st.sc.Scan() {
		line := strings.TrimSpace(st.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := st.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}
