package serve

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
)

// testStream is the shared window stream: template ids per line, with a
// repeated id and a comment exercising the protocol.
const testStream = `
1 2 3 4
2 3 1
# spike
5 5 2
1 4
3 2 1
2 4
`

func testOptions() Options {
	return Options{
		Benchmark:     "ssb",
		ScaleFactor:   10,
		MaxStoredRows: 1500,
		Seed:          7,
		Policy:        "mab",
	}
}

func feedAll(t *testing.T, s *Session, st *Stream, max int) []*WindowReport {
	t.Helper()
	var reps []*WindowReport
	for max <= 0 || len(reps) < max {
		win, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Feed(win)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return reps
}

func reportJSON(t *testing.T, reps []*WindowReport) string {
	t.Helper()
	data, err := json.Marshal(reps)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestKillRestoreDeterminism pins the tentpole contract on both ridge
// backends: a session checkpointed mid-stream, killed, and restored
// from disk produces byte-identical window reports and an identical
// final configuration to a session that was never interrupted.
func TestKillRestoreDeterminism(t *testing.T) {
	for _, backend := range linalg.RidgeBackends() {
		t.Run(backend, func(t *testing.T) {
			opts := testOptions()
			opts.RidgeBackend = backend

			golden, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer golden.Close()
			wantReps := feedAll(t, golden, NewStream(strings.NewReader(testStream), golden), 0)

			const cut = 3
			victim, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			headReps := feedAll(t, victim, NewStream(strings.NewReader(testStream), victim), cut)
			path := filepath.Join(t.TempDir(), "session.ckpt")
			if err := victim.WriteCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			victim.Close() // the kill

			restored, err := RestoreFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if restored.Window() != cut {
				t.Fatalf("restored at window %d, want %d", restored.Window(), cut)
			}
			st := NewStream(strings.NewReader(testStream), restored)
			if err := st.Skip(cut); err != nil {
				t.Fatal(err)
			}
			tailReps := feedAll(t, restored, st, 0)

			got := reportJSON(t, append(headReps, tailReps...))
			want := reportJSON(t, wantReps)
			if got != want {
				t.Fatalf("kill-and-restore diverged from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
			if g, w := strings.Join(restored.Config(), ","), strings.Join(golden.Config(), ","); g != w {
				t.Fatalf("final configuration diverged: %q vs %q", g, w)
			}
			if restored.Quarantines() != golden.Quarantines() {
				t.Fatalf("quarantine count diverged: %d vs %d", restored.Quarantines(), golden.Quarantines())
			}
		})
	}
}

// TestGuardrailQuarantineRound forces a regression by shrinking the
// budget to near zero and pins the intervention schedule: violations
// from window 1, quarantine exactly at window QuarantineAfter, the
// following CooldownWindows windows executing under the (empty) safe
// configuration.
func TestGuardrailQuarantineRound(t *testing.T) {
	opts := testOptions()
	opts.Guardrail = GuardrailOptions{
		BudgetX:         1e-9, // every window violates
		QuarantineAfter: 2,
		CooldownWindows: 2,
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reps := feedAll(t, s, NewStream(strings.NewReader(testStream), s), 6)
	if len(reps) != 6 {
		t.Fatalf("served %d windows, want 6", len(reps))
	}

	if !reps[0].Violation || reps[0].Intervention != "" {
		t.Fatalf("window 1: violation=%v intervention=%q, want first strike and no intervention", reps[0].Violation, reps[0].Intervention)
	}
	if !reps[1].Violation || reps[1].Intervention != "quarantine" {
		t.Fatalf("window 2: violation=%v intervention=%q, want the quarantine trip", reps[1].Violation, reps[1].Intervention)
	}
	for _, i := range []int{2, 3} {
		if !reps[i].Quarantined || reps[i].Violation || reps[i].NumIndexes != 0 {
			t.Fatalf("window %d: quarantined=%v violation=%v indexes=%d, want cooldown under the empty safe config",
				i+1, reps[i].Quarantined, reps[i].Violation, reps[i].NumIndexes)
		}
	}
	// Cooldown over: the tuner is trusted again, violations resume, and
	// window 6 trips the second quarantine.
	if reps[4].Quarantined || !reps[4].Violation {
		t.Fatalf("window 5: quarantined=%v violation=%v, want the tuner back in control and violating", reps[4].Quarantined, reps[4].Violation)
	}
	if reps[5].Intervention != "quarantine" {
		t.Fatalf("window 6: intervention=%q, want the second quarantine", reps[5].Intervention)
	}
	if s.Quarantines() != 2 {
		t.Fatalf("quarantines = %d, want 2", s.Quarantines())
	}
}

// TestGuardrailDisabled pins that -no-guard means no judgements at all.
func TestGuardrailDisabled(t *testing.T) {
	opts := testOptions()
	opts.Guardrail = GuardrailOptions{Disabled: true, BudgetX: 1e-9}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rep := range feedAll(t, s, NewStream(strings.NewReader(testStream), s), 4) {
		if rep.Violation || rep.Quarantined || rep.Intervention != "" {
			t.Fatalf("window %d: guardrail acted while disabled: %+v", rep.Window, rep)
		}
	}
	if s.Quarantines() != 0 {
		t.Fatalf("quarantines = %d, want 0", s.Quarantines())
	}
}

// TestStreamSkipMatchesRead pins the stream's restore contract: window
// n's instantiated queries do not depend on whether windows 1..n-1 were
// read or skipped.
func TestStreamSkipMatchesRead(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	read := NewStream(strings.NewReader(testStream), s)
	var third []*query.Query
	for i := 0; i < 3; i++ {
		if third, err = read.Next(); err != nil {
			t.Fatal(err)
		}
	}
	skipped := NewStream(strings.NewReader(testStream), s)
	if err := skipped.Skip(2); err != nil {
		t.Fatal(err)
	}
	got, err := skipped.Next()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(third)
	jb, _ := json.Marshal(got)
	if string(ja) != string(jb) {
		t.Fatalf("skip changed window 3's instantiation:\n%s\nvs\n%s", ja, jb)
	}
	if len(got) != 3 {
		t.Fatalf("window 3 has %d queries, want 3", len(got))
	}
}

// TestStreamErrors pins the protocol's failure modes.
func TestStreamErrors(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := NewStream(strings.NewReader("1 bogus\n"), s).Next(); err == nil {
		t.Fatal("non-integer template id accepted")
	}
	if _, err := NewStream(strings.NewReader("999\n"), s).Next(); err == nil {
		t.Fatal("unknown template id accepted")
	}
	if err := NewStream(strings.NewReader("1\n"), s).Skip(2); err == nil {
		t.Fatal("skip past stream end accepted")
	}
}

// TestSessionValidation pins constructor and Feed validation.
func TestSessionValidation(t *testing.T) {
	bad := testOptions()
	bad.RidgeBackend = "lu"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown ridge backend accepted")
	}
	bad = testOptions()
	bad.Policy = "no-such-policy"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown policy accepted")
	}

	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(nil); err == nil {
		t.Fatal("empty window accepted")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Feed([]*query.Query{{}}); err == nil {
		t.Fatal("Feed on closed session accepted")
	}
}

// TestCheckpointVersionGate pins that a future-format checkpoint is
// refused rather than guessed at.
func TestCheckpointVersionGate(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck.Version = CheckpointVersion + 1
	if _, err := Restore(ck); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}
