package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
)

// CheckpointVersion is the on-disk checkpoint format version. Loading a
// checkpoint with a different version is an error, not a guess.
const CheckpointVersion = 1

// Checkpoint is the versioned on-disk image of a serving session at a
// window boundary: everything needed to rebuild the environment
// (deterministic from its scalars), the policy's serialised state, the
// materialised and last-known-safe configurations, the guardrail
// counters, and the last served window's statements (stored verbatim —
// an externally fed stream cannot be replayed from a seed). A session
// restored from a checkpoint recommends byte-identically to one that
// was never interrupted.
type Checkpoint struct {
	Version int

	// Environment rebuild scalars — data generation is deterministic in
	// these, so the checkpoint does not carry the database.
	Benchmark     string
	ScaleFactor   float64
	MaxStoredRows int
	Seed          int64
	MemoryBudgetX float64

	// Policy rebuild. ForgetRank shapes future forgetting arithmetic and
	// ScoreWorkers the scoring latency, so both are restored with the
	// backend; neither is policy state (the bandit's learned state lives
	// in PolicyState).
	Policy       string
	RidgeBackend string `json:",omitempty"`
	ScoreWorkers int    `json:",omitempty"`
	ForgetRank   int    `json:",omitempty"`
	Guardrail    GuardrailOptions

	// Serving position.
	Window     int
	LastWindow []*query.Query `json:",omitempty"`
	Config     []index.Def    `json:",omitempty"`

	// Guardrail state.
	SafeConfig  []index.Def `json:",omitempty"`
	Streak      int         `json:",omitempty"`
	Cooldown    int         `json:",omitempty"`
	Quarantines int         `json:",omitempty"`

	// PolicyState is the policy's Snapshotter payload, opaque here.
	PolicyState json.RawMessage
}

// Checkpoint captures the session at the current window boundary. It
// errors if the policy does not implement policy.Snapshotter or refuses
// to snapshot (e.g. mid-round state).
func (s *Session) Checkpoint() (*Checkpoint, error) {
	snap, ok := s.pol.(policy.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("serve: policy %q does not support checkpointing", s.opts.Policy)
	}
	state, err := snap.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint window %d: %w", s.window, err)
	}
	return &Checkpoint{
		Version:       CheckpointVersion,
		Benchmark:     s.opts.Benchmark,
		ScaleFactor:   s.opts.ScaleFactor,
		MaxStoredRows: s.opts.MaxStoredRows,
		Seed:          s.opts.Seed,
		MemoryBudgetX: s.opts.MemoryBudgetX,
		Policy:        s.opts.Policy,
		RidgeBackend:  s.opts.RidgeBackend,
		ScoreWorkers:  s.opts.ScoreWorkers,
		ForgetRank:    s.opts.ForgetRank,
		Guardrail:     s.opts.Guardrail,
		Window:        s.window,
		LastWindow:    s.lastWindow,
		Config:        s.cfg.Defs(),
		SafeConfig:    s.guard.safe.Defs(),
		Streak:        s.guard.streak,
		Cooldown:      s.guard.cooldown,
		Quarantines:   s.guard.quarantines,
		PolicyState:   state,
	}, nil
}

// WriteCheckpoint captures the session and writes it to path
// atomically: the image lands in a temporary file first and is renamed
// into place, so a crash mid-write never leaves a torn checkpoint where
// a good one stood.
func (s *Session) WriteCheckpoint(path string) error {
	ck, err := s.Checkpoint()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("serve: checkpoint %s: version %d, this build reads version %d",
			path, ck.Version, CheckpointVersion)
	}
	if ck.Policy == "" {
		return nil, fmt.Errorf("serve: checkpoint %s: missing policy name", path)
	}
	return &ck, nil
}

// Restore rebuilds a serving session from a checkpoint: the environment
// and a fresh policy are reconstructed from the recorded options, the
// policy's state is restored from the snapshot, and the serving
// position, configurations and guardrail counters are reinstated. The
// restored session's next Feed behaves exactly as the checkpointed
// session's would have.
func Restore(ck *Checkpoint) (*Session, error) {
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("serve: checkpoint version %d, this build reads version %d",
			ck.Version, CheckpointVersion)
	}
	s, err := New(Options{
		Benchmark:     ck.Benchmark,
		ScaleFactor:   ck.ScaleFactor,
		MaxStoredRows: ck.MaxStoredRows,
		Seed:          ck.Seed,
		MemoryBudgetX: ck.MemoryBudgetX,
		Policy:        ck.Policy,
		RidgeBackend:  ck.RidgeBackend,
		ScoreWorkers:  ck.ScoreWorkers,
		ForgetRank:    ck.ForgetRank,
		Guardrail:     ck.Guardrail,
	})
	if err != nil {
		return nil, err
	}
	snap, ok := s.pol.(policy.Snapshotter)
	if !ok {
		s.Close()
		return nil, fmt.Errorf("serve: policy %q does not support checkpointing", ck.Policy)
	}
	if err := snap.Restore(ck.PolicyState); err != nil {
		s.Close()
		return nil, fmt.Errorf("serve: restore policy %q: %w", ck.Policy, err)
	}
	s.window = ck.Window
	s.lastWindow = ck.LastWindow
	s.cfg = index.ConfigFromDefs(ck.Config)
	s.guard.safe = index.ConfigFromDefs(ck.SafeConfig)
	s.guard.streak = ck.Streak
	s.guard.cooldown = ck.Cooldown
	s.guard.quarantines = ck.Quarantines
	return s, nil
}

// RestoreFile loads a checkpoint from path and restores a session.
func RestoreFile(path string) (*Session, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	return Restore(ck)
}
