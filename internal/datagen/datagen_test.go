package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

func testSchema() *catalog.Schema {
	dim := &catalog.Table{
		Name:     "dim",
		BaseRows: 100,
		PK:       []string{"d_id"},
		Columns: []catalog.Column{
			{Name: "d_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "d_attr", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9},
		},
	}
	fact := &catalog.Table{
		Name:     "fact",
		BaseRows: 5000,
		PK:       []string{"f_id"},
		Columns: []catalog.Column{
			{Name: "f_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "f_dim", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "dim", RefCol: "d_id"},
			{Name: "f_uni", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 1000},
			{Name: "f_zipf", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.5, DomainLo: 1, DomainHi: 500},
			{Name: "f_corr", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "f_uni", DomainLo: 1, DomainHi: 1000, CorrNoise: 5},
			{Name: "f_hotdim", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 2, RefTable: "dim", RefCol: "d_id"},
		},
	}
	s := catalog.MustSchema("test", dim, fact)
	s.FKs = []catalog.ForeignKey{
		{Table: "fact", Column: "f_dim", RefTable: "dim", RefColumn: "d_id"},
	}
	return s
}

func TestBuildBasics(t *testing.T) {
	db, err := Build(testSchema(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fact := db.MustTable("fact")
	if fact.StoredRows != 5000 {
		t.Fatalf("stored rows = %d", fact.StoredRows)
	}
	if fact.Mult != 1 {
		t.Fatalf("mult = %v", fact.Mult)
	}
	if got := fact.Meta.RowCount; got != 5000 {
		t.Fatalf("logical rows = %d", got)
	}
}

func TestBuildScaleFactorAndCap(t *testing.T) {
	db, err := Build(testSchema(), Options{Seed: 1, ScaleFactor: 10, MaxStoredRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	fact := db.MustTable("fact")
	if fact.StoredRows != 2000 {
		t.Fatalf("stored rows = %d, want cap 2000", fact.StoredRows)
	}
	if want := 50000.0 / 2000.0; math.Abs(fact.Mult-want) > 1e-9 {
		t.Fatalf("mult = %v, want %v", fact.Mult, want)
	}
	if got := fact.LogicalRows(); math.Abs(got-50000) > 1e-6 {
		t.Fatalf("logical rows = %v", got)
	}
	// dim is under the cap: stored fully
	dim := db.MustTable("dim")
	if dim.StoredRows != 1000 || dim.Mult != 1 {
		t.Fatalf("dim stored=%d mult=%v", dim.StoredRows, dim.Mult)
	}
}

func TestFixedSizeTableIgnoresSF(t *testing.T) {
	s := testSchema()
	s.MustTable("dim").FixedSize = true
	db, err := Build(s, Options{Seed: 1, ScaleFactor: 100, MaxStoredRows: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.MustTable("dim").StoredRows; got != 100 {
		t.Fatalf("fixed dim stored rows = %d, want 100", got)
	}
}

func TestSequentialColumn(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 2})
	ids := db.MustTable("dim").MustColumn("d_id")
	for i, v := range ids {
		if v != int64(i+1) {
			t.Fatalf("d_id[%d] = %d", i, v)
		}
	}
}

func TestForeignKeyReferencesStoredDomain(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 3})
	dimIDs := map[int64]bool{}
	for _, v := range db.MustTable("dim").MustColumn("d_id") {
		dimIDs[v] = true
	}
	for _, v := range db.MustTable("fact").MustColumn("f_dim") {
		if !dimIDs[v] {
			t.Fatalf("FK value %d not in dim key domain", v)
		}
	}
	for _, v := range db.MustTable("fact").MustColumn("f_hotdim") {
		if !dimIDs[v] {
			t.Fatalf("zipf FK value %d not in dim key domain", v)
		}
	}
}

func TestZipfSkewsCounts(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 4})
	col := db.MustTable("fact").MustColumn("f_zipf")
	counts := map[int64]int{}
	for _, v := range col {
		counts[v]++
	}
	// The modal value must hold far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := len(col) / 500
	if max < 5*uniformShare {
		t.Fatalf("zipf top count %d vs uniform share %d: not skewed", max, uniformShare)
	}
}

func TestCorrelatedColumnTracksSource(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 5})
	fact := db.MustTable("fact")
	src := fact.MustColumn("f_uni")
	dst := fact.MustColumn("f_corr")
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(src))
	for i := range src {
		x, y := float64(src[i]), float64(dst[i])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	corr := (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
	if corr < 0.95 {
		t.Fatalf("correlation = %v, want >= 0.95", corr)
	}
}

func TestStatsComputedFromStoredData(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 6})
	col, _ := db.Schema.MustTable("fact").Column("f_uni")
	if col.Stats.NDV <= 0 || col.Stats.NDV > 1000 {
		t.Fatalf("NDV = %d", col.Stats.NDV)
	}
	if col.Stats.Min < 1 || col.Stats.Max > 1000 || col.Stats.Min > col.Stats.Max {
		t.Fatalf("stats range [%d,%d]", col.Stats.Min, col.Stats.Max)
	}
	seq, _ := db.Schema.MustTable("dim").Column("d_id")
	if seq.Stats.NDV != 100 {
		t.Fatalf("sequential NDV = %d, want 100", seq.Stats.NDV)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustBuild(testSchema(), Options{Seed: 7})
	b := MustBuild(testSchema(), Options{Seed: 7})
	ca := a.MustTable("fact").MustColumn("f_zipf")
	cb := b.MustTable("fact").MustColumn("f_zipf")
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs: %d vs %d", i, ca[i], cb[i])
		}
	}
	c := MustBuild(testSchema(), Options{Seed: 8})
	cc := c.MustTable("fact").MustColumn("f_zipf")
	same := true
	for i := range ca {
		if ca[i] != cc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestBuildErrors(t *testing.T) {
	s := catalog.MustSchema("bad", &catalog.Table{
		Name:     "t",
		BaseRows: 10,
		Columns: []catalog.Column{
			{Name: "a", Dist: catalog.DistUniform, DomainLo: 5, DomainHi: 1},
		},
	})
	if _, err := Build(s, Options{}); err == nil {
		t.Fatal("expected empty-domain error")
	}
	s2 := catalog.MustSchema("bad2", &catalog.Table{
		Name:     "t",
		BaseRows: 10,
		Columns: []catalog.Column{
			{Name: "a", Dist: catalog.DistCorrelated, CorrWith: "missing", DomainLo: 1, DomainHi: 2},
		},
	})
	if _, err := Build(s2, Options{}); err == nil {
		t.Fatal("expected missing-correlation-source error")
	}
	s3 := catalog.MustSchema("bad3", &catalog.Table{
		Name:     "t",
		BaseRows: 0,
		Columns:  []catalog.Column{{Name: "a", Dist: catalog.DistSequential}},
	})
	if _, err := Build(s3, Options{}); err == nil {
		t.Fatal("expected zero BaseRows error")
	}
}

func TestSelectAndCountAgree(t *testing.T) {
	db := MustBuild(testSchema(), Options{Seed: 9})
	fact := db.MustTable("fact")
	preds := []query.Predicate{
		{Table: "fact", Column: "f_uni", Op: query.OpRange, Lo: 100, Hi: 400},
		{Table: "fact", Column: "f_zipf", Op: query.OpEq, Lo: 1},
	}
	rows, ok := fact.SelectRows(preds)
	if !ok {
		t.Fatal("select failed")
	}
	n, ok := fact.CountRows(preds)
	if !ok {
		t.Fatal("count failed")
	}
	if len(rows) != n {
		t.Fatalf("select found %d, count found %d", len(rows), n)
	}
	for _, r := range rows {
		u := fact.MustColumn("f_uni")[r]
		z := fact.MustColumn("f_zipf")[r]
		if u < 100 || u > 400 || z != 1 {
			t.Fatalf("row %d does not match: uni=%d zipf=%d", r, u, z)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := newZipf(rng, 0, 10); err == nil {
		t.Fatal("expected error for s=0")
	}
	if _, err := newZipf(rng, 1, 0); err == nil {
		t.Fatal("expected error for empty domain")
	}
	if _, err := newZipf(rng, 1, maxZipfDomain+1); err == nil {
		t.Fatal("expected error for huge domain")
	}
}

// Property: zipf ranks are always within domain and rank frequencies are
// non-increasing-ish (rank 0 is the most frequent for s >= 1).
func TestQuickZipfInDomain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(2 + rng.Intn(100))
		s := 0.5 + rng.Float64()*3
		z, err := newZipf(rng, s, n)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for i := 0; i < 2000; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				return false
			}
			counts[r]++
		}
		top := counts[0]
		for _, c := range counts[1:] {
			if c > top {
				top = c
			}
		}
		// rank 0 should be within a small factor of the max count
		return counts[0]*3 >= top
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build never produces a multiplier below 1 and always stores at
// least one row for non-empty tables.
func TestQuickMultiplierInvariant(t *testing.T) {
	f := func(sfRaw uint8, capRaw uint16) bool {
		sf := 0.1 + float64(sfRaw%50)
		cap := 100 + int(capRaw%5000)
		db, err := Build(testSchema(), Options{Seed: 11, ScaleFactor: sf, MaxStoredRows: cap})
		if err != nil {
			return false
		}
		for _, tbl := range db.Tables {
			if tbl.StoredRows < 1 || tbl.Mult < 1 {
				return false
			}
			logical := float64(tbl.Meta.RowCount)
			if math.Abs(tbl.LogicalRows()-logical) > 1e-6*logical+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
