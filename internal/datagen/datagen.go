// Package datagen materialises benchmark databases: it draws physical
// rows for every column according to the column's declared distribution,
// fills in the optimiser-visible statistics from the stored data, and
// applies scale-factor row multipliers.
//
// Generation is deterministic: each column's stream is seeded from the
// experiment seed plus the table and column names, so adding a column
// never perturbs its neighbours.
package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"dbabandits/internal/catalog"
	"dbabandits/internal/storage"
)

// Options configure database materialisation.
type Options struct {
	// ScaleFactor scales every non-fixed table's BaseRows. 1.0 mirrors the
	// paper's SF 1; the experiments use 1, 10 and 100.
	ScaleFactor float64
	// MaxStoredRows caps physical rows per table; larger logical tables
	// get a proportional row multiplier. Zero means the default (20000).
	MaxStoredRows int
	// Seed drives all row generation.
	Seed int64
}

const defaultMaxStoredRows = 20000

// Build materialises the schema into a physical database and fills in
// per-column statistics (min/max/NDV from stored data) and logical row
// counts on the catalog. The schema is mutated (stats, RowCount) so that
// optimiser and tuner components can read statistics from the catalog.
func Build(schema *catalog.Schema, opts Options) (*storage.Database, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 1
	}
	cap := opts.MaxStoredRows
	if cap <= 0 {
		cap = defaultMaxStoredRows
	}

	db := &storage.Database{Schema: schema, Tables: make(map[string]*storage.Table, len(schema.Tables))}

	// Determine logical and stored sizes first (needed before FK columns
	// reference other tables' stored rows).
	for _, t := range schema.Tables {
		base := t.BaseRows
		if base <= 0 {
			return nil, fmt.Errorf("datagen: table %q has no BaseRows", t.Name)
		}
		logical := base
		if !t.FixedSize {
			logical = int64(math.Round(float64(base) * opts.ScaleFactor))
			if logical < 1 {
				logical = 1
			}
		}
		t.RowCount = logical
		stored := logical
		if stored > int64(cap) {
			stored = int64(cap)
		}
		t.SampleMult = float64(logical) / float64(stored)
		db.Tables[t.Name] = &storage.Table{
			Meta:       t,
			StoredRows: int(stored),
			Mult:       t.SampleMult,
			Cols:       make([][]int64, len(t.Columns)),
		}
	}

	// Generate columns in dependency order: FK columns need the referenced
	// table's stored key column; correlated columns need their source
	// column (which must precede them in the table definition).
	// Two passes suffice because benchmark FKs never chain through other
	// FK columns' values (they reference sequential PKs).
	for pass := 0; pass < 2; pass++ {
		for _, t := range schema.Tables {
			pt := db.Tables[t.Name]
			for ci := range t.Columns {
				col := &t.Columns[ci]
				if pt.Cols[ci] != nil {
					continue
				}
				needsRef := col.Dist == catalog.DistForeignKey || col.Dist == catalog.DistForeignKeyZipf
				if needsRef && pass == 0 {
					// Referenced table's PK is a sequential column
					// generated in pass 0; FK columns wait for pass 1.
					continue
				}
				data, err := generateColumn(db, t, pt, ci, opts.Seed)
				if err != nil {
					return nil, err
				}
				pt.Cols[ci] = data
			}
		}
	}

	// Fill statistics from stored data.
	for _, t := range schema.Tables {
		pt := db.Tables[t.Name]
		for ci := range t.Columns {
			if pt.Cols[ci] == nil {
				return nil, fmt.Errorf("datagen: column %s.%s was never generated", t.Name, t.Columns[ci].Name)
			}
			t.Columns[ci].Stats = computeStats(pt.Cols[ci])
		}
	}
	return db, nil
}

// MustBuild is Build that panics on error; benchmark definitions are
// static and covered by tests, so errors indicate programmer mistakes.
func MustBuild(schema *catalog.Schema, opts Options) *storage.Database {
	db, err := Build(schema, opts)
	if err != nil {
		panic(err)
	}
	return db
}

func generateColumn(db *storage.Database, t *catalog.Table, pt *storage.Table, ci int, seed int64) ([]int64, error) {
	col := &t.Columns[ci]
	n := pt.StoredRows
	rng := rand.New(rand.NewSource(columnSeed(seed, t.Name, col.Name)))
	data := make([]int64, n)

	switch col.Dist {
	case catalog.DistSequential:
		for i := range data {
			data[i] = int64(i + 1)
		}

	case catalog.DistUniform:
		lo, hi := col.DomainLo, col.DomainHi
		if hi < lo {
			return nil, fmt.Errorf("datagen: %s.%s empty domain [%d,%d]", t.Name, col.Name, lo, hi)
		}
		span := hi - lo + 1
		for i := range data {
			data[i] = lo + rng.Int63n(span)
		}

	case catalog.DistZipf:
		lo, hi := col.DomainLo, col.DomainHi
		if hi < lo {
			return nil, fmt.Errorf("datagen: %s.%s empty domain [%d,%d]", t.Name, col.Name, lo, hi)
		}
		z, err := newZipf(rng, col.ZipfS, hi-lo+1)
		if err != nil {
			return nil, fmt.Errorf("datagen: %s.%s: %w", t.Name, col.Name, err)
		}
		for i := range data {
			data[i] = lo + z.Next()
		}

	case catalog.DistForeignKey, catalog.DistForeignKeyZipf:
		ref, ok := db.Table(col.RefTable)
		if !ok {
			return nil, fmt.Errorf("datagen: %s.%s references missing table %q", t.Name, col.Name, col.RefTable)
		}
		refCol, ok := ref.Column(col.RefCol)
		if !ok {
			return nil, fmt.Errorf("datagen: %s.%s references missing column %s.%s", t.Name, col.Name, col.RefTable, col.RefCol)
		}
		if len(refCol) == 0 {
			return nil, fmt.Errorf("datagen: %s.%s references empty column %s.%s", t.Name, col.Name, col.RefTable, col.RefCol)
		}
		if col.Dist == catalog.DistForeignKey {
			for i := range data {
				data[i] = refCol[rng.Intn(len(refCol))]
			}
		} else {
			s := col.ZipfS
			if s <= 0 {
				s = 1.2
			}
			z, err := newZipf(rng, s, int64(len(refCol)))
			if err != nil {
				return nil, fmt.Errorf("datagen: %s.%s: %w", t.Name, col.Name, err)
			}
			// Shuffle rank->row mapping so the "hot" dimension rows are
			// not always the first physical rows.
			perm := rng.Perm(len(refCol))
			for i := range data {
				data[i] = refCol[perm[z.Next()]]
			}
		}

	case catalog.DistCorrelated:
		srcIdx := t.ColumnIndex(col.CorrWith)
		if srcIdx < 0 {
			return nil, fmt.Errorf("datagen: %s.%s correlates with missing column %q", t.Name, col.Name, col.CorrWith)
		}
		src := pt.Cols[srcIdx]
		if src == nil {
			return nil, fmt.Errorf("datagen: %s.%s correlates with %q which is generated later; reorder columns", t.Name, col.Name, col.CorrWith)
		}
		srcCol := t.Columns[srcIdx]
		srcLo, srcHi := observedDomain(src, srcCol)
		lo, hi := col.DomainLo, col.DomainHi
		if hi < lo {
			return nil, fmt.Errorf("datagen: %s.%s empty domain [%d,%d]", t.Name, col.Name, lo, hi)
		}
		srcSpan := float64(srcHi-srcLo) + 1
		span := float64(hi-lo) + 1
		noise := col.CorrNoise
		for i := range data {
			frac := (float64(src[i]-srcLo) + 0.5) / srcSpan
			v := lo + int64(frac*span)
			if noise > 0 {
				v += rng.Int63n(2*noise+1) - noise
			}
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			data[i] = v
		}

	default:
		return nil, fmt.Errorf("datagen: %s.%s has unknown distribution %d", t.Name, col.Name, col.Dist)
	}
	return data, nil
}

func observedDomain(data []int64, col catalog.Column) (int64, int64) {
	if col.DomainHi >= col.DomainLo && col.Dist != catalog.DistSequential &&
		col.Dist != catalog.DistForeignKey && col.Dist != catalog.DistForeignKeyZipf {
		return col.DomainLo, col.DomainHi
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func computeStats(data []int64) catalog.ColumnStats {
	if len(data) == 0 {
		return catalog.ColumnStats{}
	}
	min, max := data[0], data[0]
	distinct := make(map[int64]struct{}, len(data)/4+1)
	for _, v := range data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		distinct[v] = struct{}{}
	}
	return catalog.ColumnStats{Min: min, Max: max, NDV: int64(len(distinct))}
}

func columnSeed(seed int64, table, column string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s", seed, table, column)
	return int64(h.Sum64() & math.MaxInt64)
}
