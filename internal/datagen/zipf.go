package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^s
// for any exponent s > 0. The standard library's rand.Zipf requires s > 1;
// the TPC-H Skew benchmark needs arbitrary exponents (the paper uses
// zipfian factor 4, other literature commonly uses 0.5-1), so sampling is
// done by inverse-CDF lookup over a precomputed table. Domains are capped
// to keep the table small.
type zipf struct {
	rng *rand.Rand
	cdf []float64
}

const maxZipfDomain = 1 << 18

func newZipf(rng *rand.Rand, s float64, n int64) (*zipf, error) {
	if s <= 0 {
		return nil, fmt.Errorf("zipf exponent must be positive, got %g", s)
	}
	if n <= 0 {
		return nil, fmt.Errorf("zipf domain must be positive, got %d", n)
	}
	if n > maxZipfDomain {
		return nil, fmt.Errorf("zipf domain %d exceeds maximum %d; shrink the column domain", n, maxZipfDomain)
	}
	cdf := make([]float64, n)
	var total float64
	for i := int64(0); i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	inv := 1 / total
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against fp shortfall
	return &zipf{rng: rng, cdf: cdf}, nil
}

// Next returns the next rank in [0, n).
func (z *zipf) Next() int64 {
	u := z.rng.Float64()
	return int64(sort.SearchFloat64s(z.cdf, u))
}
