// Package linalg provides the small dense linear-algebra kernel used by
// the C2UCB bandit: vectors, square matrices, Cholesky factorisation and
// incremental (Sherman–Morrison) inverse maintenance for the ridge
// regression scatter matrix.
//
// The package is deliberately minimal and allocation-conscious: the bandit
// performs one rank-1 update per played arm per round and one quadratic
// form per candidate arm per round, so those two operations dominate.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of dimension n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product v·w. It panics if dimensions differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled adds alpha*w to v in place and returns v.
func (v Vector) AddScaled(alpha float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: axpy dimension mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale multiplies every element of v by alpha in place and returns v.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of v (0 for empty vectors).
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether v and w agree element-wise within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}
