package linalg

import (
	"fmt"
	"math"
)

// RidgeState maintains the sufficient statistics of the C2UCB ridge
// regression: the scatter matrix V_t = lambda*I + sum x x', its inverse
// (kept incrementally via Sherman–Morrison), and the response accumulator
// b_t = sum r*x. The coefficient estimate is theta_t = V_t^{-1} b_t.
//
// Sherman–Morrison accumulates floating-point error over many rank-1
// updates, so the inverse is re-baselined from a fresh Cholesky
// factorisation every RebaseEvery updates.
type RidgeState struct {
	Dim    int
	V      *Matrix // scatter matrix, always exact (up to fp addition)
	VInv   *Matrix // incrementally maintained inverse of V
	B      Vector  // response accumulator
	Lambda float64

	updates     int
	RebaseEvery int // 0 means the default (256)
}

const defaultRebaseEvery = 256

// NewRidgeState initialises V = lambda*I, VInv = I/lambda, b = 0.
func NewRidgeState(dim int, lambda float64) *RidgeState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	return &RidgeState{
		Dim:    dim,
		V:      Identity(dim, lambda),
		VInv:   Identity(dim, 1/lambda),
		B:      NewVector(dim),
		Lambda: lambda,
	}
}

// Theta solves for the current coefficient estimate V^{-1} b using the
// maintained inverse (cheap: one mat-vec).
func (rs *RidgeState) Theta() Vector { return rs.VInv.MulVec(rs.B) }

// ConfidenceWidth returns sqrt(x' V^{-1} x), the exploration-boost term of
// the UCB score for context x.
func (rs *RidgeState) ConfidenceWidth(x Vector) float64 {
	q := rs.VInv.QuadraticForm(x)
	if q < 0 {
		// Numerical noise can push a tiny positive quadratic form below
		// zero; clamp rather than produce NaN from sqrt.
		q = 0
	}
	return math.Sqrt(q)
}

// Observe folds one (context, reward) observation into the state:
// V += x x', b += r x, and VInv is updated by Sherman–Morrison:
//
//	(V + x x')^{-1} = V^{-1} - (V^{-1} x x' V^{-1}) / (1 + x' V^{-1} x)
func (rs *RidgeState) Observe(x Vector, reward float64) {
	if len(x) != rs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), rs.Dim))
	}
	rs.V.AddOuterScaled(1, x)
	rs.B.AddScaled(reward, x)

	u := rs.VInv.MulVec(x) // V^{-1} x (VInv symmetric, so also x' V^{-1})
	denom := 1 + x.Dot(u)
	rs.VInv.AddOuterScaled(-1/denom, u)

	rs.updates++
	every := rs.RebaseEvery
	if every == 0 {
		every = defaultRebaseEvery
	}
	if rs.updates%every == 0 {
		rs.rebase()
	}
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1]: 0 keeps everything, 1 resets to lambda*I / 0. The MAB
// uses this to adapt to workload shifts (Section IV, "the learner can
// forget learned knowledge depending on the workload shift intensity").
func (rs *RidgeState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma > 1 {
		gamma = 1
	}
	keep := 1 - gamma
	// V <- keep*V + gamma*lambda*I, scaling the backing slice directly
	// (the bounds-checked At/Set element loop dominated Forget's cost at
	// C2UCB context dimensions).
	for i := range rs.V.Data {
		rs.V.Data[i] *= keep
	}
	n := rs.Dim
	add := gamma * rs.Lambda
	for i := 0; i < n; i++ {
		rs.V.Data[i*n+i] += add
	}
	rs.B.Scale(keep)
	rs.rebase()
}

// rebase recomputes VInv from V exactly, discarding Sherman–Morrison drift.
func (rs *RidgeState) rebase() {
	rs.V.SymmetrizeInPlace()
	inv, err := rs.V.Inverse()
	if err != nil {
		// V = lambda*I + PSD is positive definite by construction; failure
		// here indicates severe numeric corruption. Reset to the prior
		// rather than continue with garbage.
		rs.V = Identity(rs.Dim, rs.Lambda)
		rs.VInv = Identity(rs.Dim, 1/rs.Lambda)
		rs.B = NewVector(rs.Dim)
		return
	}
	rs.VInv = inv
}

// Updates reports how many observations have been folded in.
func (rs *RidgeState) Updates() int { return rs.updates }
