package linalg

import (
	"fmt"
	"math"
	"sort"
)

// RidgeState maintains the sufficient statistics of the C2UCB ridge
// regression: the scatter matrix V_t = lambda*I + sum x x', its inverse
// (kept incrementally via Sherman–Morrison), and the response accumulator
// b_t = sum r*x. The coefficient estimate is theta_t = V_t^{-1} b_t.
//
// Sherman–Morrison accumulates floating-point error over many rank-1
// updates, so the inverse is periodically re-baselined from a fresh
// Cholesky factorisation. Two schedules compose:
//
//   - a rank-1-aware adaptive schedule: each update contributes
//     q/(1+q) (q = x'V^{-1}x) to an accumulated drift score — the relative
//     weight of that update's correction to the inverse, i.e. how much of
//     VInv became one more generation of rank-1 arithmetic — and the state
//     rebases once the score crosses DriftThreshold. Heavy early updates
//     (large q against a weak prior) spend the budget quickly, the
//     converged tail (q → 0) barely at all, matching where
//     Sherman–Morrison conditioning is actually lost;
//   - the fixed every-RebaseEvery cadence as a fallback bound, so drift
//     can never accumulate unchecked even if the threshold is set high.
type RidgeState struct {
	Dim    int
	V      *Matrix // scatter matrix, always exact (up to fp addition)
	VInv   *Matrix // incrementally maintained inverse of V
	B      Vector  // response accumulator
	Lambda float64

	updates     int     // observations folded in over the state's lifetime
	sinceRebase int     // rank-1 updates applied since the last rebase
	drift       float64 // accumulated q/(1+q) since the last rebase

	// theta memoises V^{-1} b between observations; thetaValid is
	// cleared whenever V or b change (Observe/ObserveSparse/Forget) and
	// on rebase (the recomputed inverse changes theta's low-order bits).
	theta      Vector
	thetaValid bool

	RebaseEvery int // fixed fallback cadence; 0 means the default (256)
	// DriftThreshold triggers an adaptive rebase once the accumulated
	// drift score reaches it. 0 means the default (48); negative disables
	// the adaptive schedule, leaving only the fixed cadence.
	DriftThreshold float64
	// ForgetRank, when positive, replaces Forget's exact O(d³)
	// refactorisation with a structured O(k·d²) correction: the
	// discount-toward-prior perturbation is absorbed by k budgeted
	// diagonal Sherman–Morrison updates (see forgetLowRank). k >= Dim is
	// mathematically exact; smaller budgets leave the residual
	// perturbation accounted in the drift score, so the existing adaptive
	// rebase is the fallback. 0 (the default) keeps the exact rebase —
	// every committed golden was captured under it.
	ForgetRank int

	// forgetLowRank scratch, lazily allocated on first use.
	forgetU   Vector
	forgetOrd []int
}

const (
	defaultRebaseEvery    = 256
	defaultDriftThreshold = 48
)

// NewRidgeState initialises V = lambda*I, VInv = I/lambda, b = 0.
func NewRidgeState(dim int, lambda float64) *RidgeState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	return &RidgeState{
		Dim:    dim,
		V:      Identity(dim, lambda),
		VInv:   Identity(dim, 1/lambda),
		B:      NewVector(dim),
		Lambda: lambda,
	}
}

// Theta returns the current coefficient estimate V^{-1} b using the
// maintained inverse, memoised between observations: the dense mat-vec
// runs at most once per state change, however many scoring passes ask.
// The returned vector is owned by the state and valid until the next
// Observe/ObserveSparse/Forget; callers must not mutate it.
func (rs *RidgeState) Theta() Vector {
	if !rs.thetaValid {
		rs.theta = rs.VInv.MulVec(rs.B)
		rs.thetaValid = true
	}
	return rs.theta
}

// ThetaCached implements RidgeCore; it is Theta (already memoised).
func (rs *RidgeState) ThetaCached() Vector { return rs.Theta() }

// Dimension implements RidgeCore.
func (rs *RidgeState) Dimension() int { return rs.Dim }

// ConfidenceWidth returns sqrt(x' V^{-1} x), the exploration-boost term of
// the UCB score for context x.
func (rs *RidgeState) ConfidenceWidth(x Vector) float64 {
	return widthFromQuad(rs.VInv.QuadraticForm(x))
}

// ConfidenceWidthSparse is ConfidenceWidth through the O(nnz²) sparse
// quadratic form; bit-identical to the dense path.
func (rs *RidgeState) ConfidenceWidthSparse(x SparseVector) float64 {
	return widthFromQuad(rs.VInv.QuadraticFormSparse(x))
}

// QuadraticFormBatch computes x' V^{-1} x for every context into out in
// one pass over the maintained inverse — the per-arm kernel entry
// amortised across the whole candidate batch. Each entry is
// bit-identical to VInv.QuadraticFormSparse on the same context.
func (rs *RidgeState) QuadraticFormBatch(xs []SparseVector, out []float64) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("linalg: batch length mismatch %d contexts, %d outputs", len(xs), len(out)))
	}
	for i, x := range xs {
		out[i] = rs.VInv.QuadraticFormSparse(x)
	}
}

// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context into
// out; each entry is bit-identical to ConfidenceWidthSparse.
func (rs *RidgeState) ConfidenceWidthBatch(xs []SparseVector, out []float64) {
	rs.QuadraticFormBatch(xs, out)
	for i, q := range out {
		out[i] = widthFromQuad(q)
	}
}

// QuadraticFormBatchScratch is the sharded batch kernel. The sparse
// quadratic form reads only the maintained inverse — no scratch at all
// — so the scratch argument is accepted for interface uniformity and
// ignored; concurrent shard calls are safe as long as no mutation runs.
func (rs *RidgeState) QuadraticFormBatchScratch(xs []SparseVector, out []float64, _ *BatchScratch) {
	rs.QuadraticFormBatch(xs, out)
}

// ConfidenceWidthBatchScratch is ConfidenceWidthBatch under the sharded
// contract (scratch-free on this backend, like QuadraticFormBatchScratch).
func (rs *RidgeState) ConfidenceWidthBatchScratch(xs []SparseVector, out []float64, _ *BatchScratch) {
	rs.ConfidenceWidthBatch(xs, out)
}

func widthFromQuad(q float64) float64 {
	if q < 0 {
		// Numerical noise can push a tiny positive quadratic form below
		// zero; clamp rather than produce NaN from sqrt.
		q = 0
	}
	return math.Sqrt(q)
}

// Observe folds one (context, reward) observation into the state:
// V += x x', b += r x, and VInv is updated by Sherman–Morrison:
//
//	(V + x x')^{-1} = V^{-1} - (V^{-1} x x' V^{-1}) / (1 + x' V^{-1} x)
func (rs *RidgeState) Observe(x Vector, reward float64) {
	if len(x) != rs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), rs.Dim))
	}
	rs.V.AddOuterScaled(1, x)
	rs.B.AddScaled(reward, x)

	u := rs.VInv.MulVec(x) // V^{-1} x (VInv symmetric, so also x' V^{-1})
	denom := 1 + x.Dot(u)
	rs.VInv.AddOuterScaled(-1/denom, u)
	rs.afterRank1(denom)
}

// ObserveSparse is Observe through the sparse kernels: the V and b
// accumulations touch only nnz²/nnz entries and the Sherman–Morrison
// vector u = V^{-1}x costs O(d·nnz) instead of O(d²). The VInv outer
// update stays dense (u is dense). Bit-identical to Observe on the same
// logical vector.
func (rs *RidgeState) ObserveSparse(x SparseVector, reward float64) {
	if x.Dim != rs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", x.Dim, rs.Dim))
	}
	rs.V.AddOuterScaledSparse(1, x)
	rs.B.AddScaledSparse(reward, x)

	u := rs.VInv.MulVecSparse(x)
	denom := 1 + u.DotSparse(x)
	rs.VInv.AddOuterScaled(-1/denom, u)
	rs.afterRank1(denom)
}

// afterRank1 advances the update counters and runs whichever rebase
// schedule fires first. denom is the Sherman–Morrison denominator
// 1 + x'V^{-1}x of the update just applied.
//
// Both schedules are measured since the last rebase: sinceRebase counts
// the rank-1 updates the current inverse has absorbed (reset by every
// rebase, including Forget's), while updates counts observations over
// the state's lifetime and never resets. Before the counters were
// separated, the fixed cadence ran on updates%RebaseEvery, so a
// Forget- or drift-triggered rebase left the cadence phase-locked to
// the lifetime count — a fresh inverse could be rebased again almost
// immediately, or ride out nearly 2x the intended window.
func (rs *RidgeState) afterRank1(denom float64) {
	rs.updates++
	rs.sinceRebase++
	rs.thetaValid = false
	rs.drift += 1 - 1/denom // == q/(1+q)
	every := rs.RebaseEvery
	if every == 0 {
		every = defaultRebaseEvery
	}
	threshold := rs.DriftThreshold
	if threshold == 0 {
		threshold = defaultDriftThreshold
	}
	if rs.sinceRebase >= every || (threshold > 0 && rs.drift >= threshold) {
		rs.rebase()
	}
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1]: 0 keeps everything, 1 resets to lambda*I / 0. The MAB
// uses this to adapt to workload shifts (Section IV, "the learner can
// forget learned knowledge depending on the workload shift intensity").
//
// V itself is always updated exactly. The maintained inverse follows by
// either a full exact rebase (the default, O(d³)) or — when ForgetRank
// is set — the structured O(k·d²) correction of forgetLowRank.
func (rs *RidgeState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma > 1 {
		gamma = 1
	}
	keep := 1 - gamma
	// V <- keep*V + gamma*lambda*I, scaling the backing slice directly
	// (the bounds-checked At/Set element loop dominated Forget's cost at
	// C2UCB context dimensions).
	for i := range rs.V.Data {
		rs.V.Data[i] *= keep
	}
	n := rs.Dim
	add := gamma * rs.Lambda
	for i := 0; i < n; i++ {
		rs.V.Data[i*n+i] += add
	}
	rs.B.Scale(keep)
	if rs.ForgetRank > 0 && keep > 0 {
		rs.forgetLowRank(gamma, keep)
		return
	}
	rs.rebase()
}

// forgetLowRank maintains the inverse through a Forget without the full
// refactorisation. The discount splits into two parts with very
// different costs:
//
//   - the uniform scale keep*V, whose inverse is exactly VInv/keep —
//     one O(d²) pass, no approximation at all;
//   - the rank-d identity top-up +gamma*lambda*I, absorbed coordinate
//     by coordinate: adding c*e_i e_i' (c = gamma*lambda) to V updates
//     the inverse by the diagonal Sherman–Morrison step
//     VInv -= (c / (1 + c*VInv[i][i])) * u u',   u = VInv e_i,
//     each O(d²).
//
// ForgetRank budgets how many of the d coordinate steps run. They are
// applied in order of correction weight q/(1+q) with q = c*VInv[i][i] —
// the same currency the Observe drift score uses, largest first, ties
// broken by index so the order is deterministic. Applied steps add
// their q/(1+q) to the drift score exactly as observations do (one more
// generation of rank-1 arithmetic on the inverse); the steps the budget
// skips add theirs too, as genuinely unabsorbed perturbation. The
// existing rebase schedule therefore remains the safety net: skip
// enough mass often enough and the adaptive threshold forces the exact
// refactorisation. With ForgetRank >= Dim every step runs and the
// result is mathematically exact (agreement-tested against the rebase
// oracle).
func (rs *RidgeState) forgetLowRank(gamma, keep float64) {
	n := rs.Dim
	inv := 1 / keep
	for i := range rs.VInv.Data {
		rs.VInv.Data[i] *= inv
	}
	c := gamma * rs.Lambda
	if rs.forgetOrd == nil {
		rs.forgetOrd = make([]int, n)
		rs.forgetU = NewVector(n)
	}
	ord := rs.forgetOrd
	for i := range ord {
		ord[i] = i
	}
	// q is monotone in VInv[i][i], so sorting on the diagonal directly
	// gives the q/(1+q) priority order.
	sort.Slice(ord, func(a, b int) bool {
		da := rs.VInv.Data[ord[a]*n+ord[a]]
		db := rs.VInv.Data[ord[b]*n+ord[b]]
		if da != db {
			return da > db
		}
		return ord[a] < ord[b]
	})
	k := rs.ForgetRank
	if k > n {
		k = n
	}
	u := rs.forgetU
	for _, i := range ord[:k] {
		vii := rs.VInv.Data[i*n+i]
		q := c * vii
		beta := c / (1 + q)
		copy(u, rs.VInv.Data[i*n:(i+1)*n]) // row i == VInv e_i (symmetric)
		for r := 0; r < n; r++ {
			ur := beta * u[r]
			if ur == 0 {
				continue
			}
			row := rs.VInv.Data[r*n : (r+1)*n]
			for j, uj := range u {
				row[j] -= ur * uj
			}
		}
		rs.drift += q / (1 + q)
		rs.sinceRebase++
	}
	for _, i := range ord[k:] {
		q := c * rs.VInv.Data[i*n+i]
		rs.drift += q / (1 + q)
	}
	rs.thetaValid = false
	every := rs.RebaseEvery
	if every == 0 {
		every = defaultRebaseEvery
	}
	threshold := rs.DriftThreshold
	if threshold == 0 {
		threshold = defaultDriftThreshold
	}
	if rs.sinceRebase >= every || (threshold > 0 && rs.drift >= threshold) {
		rs.rebase()
	}
}

// rebase recomputes VInv from V exactly, discarding Sherman–Morrison
// drift, and zeroes both since-rebase measures (the drift score and the
// update counter the fixed cadence runs on).
func (rs *RidgeState) rebase() {
	rs.drift = 0
	rs.sinceRebase = 0
	rs.thetaValid = false
	rs.V.SymmetrizeInPlace()
	inv, err := rs.V.Inverse()
	if err != nil {
		// V = lambda*I + PSD is positive definite by construction; failure
		// here indicates severe numeric corruption. Reset to the prior
		// rather than continue with garbage.
		rs.V = Identity(rs.Dim, rs.Lambda)
		rs.VInv = Identity(rs.Dim, 1/rs.Lambda)
		rs.B = NewVector(rs.Dim)
		return
	}
	rs.VInv = inv
}

// Updates reports how many observations have been folded in over the
// state's lifetime. Forget and rebase do not reset it.
func (rs *RidgeState) Updates() int { return rs.updates }

// SinceRebase reports how many rank-1 updates the current inverse has
// absorbed since the last exact recomputation — the quantity both
// rebase schedules are measured against. Any rebase (fixed-cadence,
// drift-triggered, or Forget's) resets it to zero.
func (rs *RidgeState) SinceRebase() int { return rs.sinceRebase }

// Drift reports the accumulated drift score since the last rebase
// (diagnostics and tests).
func (rs *RidgeState) Drift() float64 { return rs.drift }
