package linalg

import (
	"fmt"
	"math"
)

// RidgeState maintains the sufficient statistics of the C2UCB ridge
// regression: the scatter matrix V_t = lambda*I + sum x x', its inverse
// (kept incrementally via Sherman–Morrison), and the response accumulator
// b_t = sum r*x. The coefficient estimate is theta_t = V_t^{-1} b_t.
//
// Sherman–Morrison accumulates floating-point error over many rank-1
// updates, so the inverse is periodically re-baselined from a fresh
// Cholesky factorisation. Two schedules compose:
//
//   - a rank-1-aware adaptive schedule: each update contributes
//     q/(1+q) (q = x'V^{-1}x) to an accumulated drift score — the relative
//     weight of that update's correction to the inverse, i.e. how much of
//     VInv became one more generation of rank-1 arithmetic — and the state
//     rebases once the score crosses DriftThreshold. Heavy early updates
//     (large q against a weak prior) spend the budget quickly, the
//     converged tail (q → 0) barely at all, matching where
//     Sherman–Morrison conditioning is actually lost;
//   - the fixed every-RebaseEvery cadence as a fallback bound, so drift
//     can never accumulate unchecked even if the threshold is set high.
type RidgeState struct {
	Dim    int
	V      *Matrix // scatter matrix, always exact (up to fp addition)
	VInv   *Matrix // incrementally maintained inverse of V
	B      Vector  // response accumulator
	Lambda float64

	updates     int     // observations folded in over the state's lifetime
	sinceRebase int     // rank-1 updates applied since the last rebase
	drift       float64 // accumulated q/(1+q) since the last rebase

	// theta memoises V^{-1} b between observations; thetaValid is
	// cleared whenever V or b change (Observe/ObserveSparse/Forget) and
	// on rebase (the recomputed inverse changes theta's low-order bits).
	theta      Vector
	thetaValid bool

	RebaseEvery int // fixed fallback cadence; 0 means the default (256)
	// DriftThreshold triggers an adaptive rebase once the accumulated
	// drift score reaches it. 0 means the default (48); negative disables
	// the adaptive schedule, leaving only the fixed cadence.
	DriftThreshold float64
}

const (
	defaultRebaseEvery    = 256
	defaultDriftThreshold = 48
)

// NewRidgeState initialises V = lambda*I, VInv = I/lambda, b = 0.
func NewRidgeState(dim int, lambda float64) *RidgeState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	return &RidgeState{
		Dim:    dim,
		V:      Identity(dim, lambda),
		VInv:   Identity(dim, 1/lambda),
		B:      NewVector(dim),
		Lambda: lambda,
	}
}

// Theta returns the current coefficient estimate V^{-1} b using the
// maintained inverse, memoised between observations: the dense mat-vec
// runs at most once per state change, however many scoring passes ask.
// The returned vector is owned by the state and valid until the next
// Observe/ObserveSparse/Forget; callers must not mutate it.
func (rs *RidgeState) Theta() Vector {
	if !rs.thetaValid {
		rs.theta = rs.VInv.MulVec(rs.B)
		rs.thetaValid = true
	}
	return rs.theta
}

// ThetaCached implements RidgeCore; it is Theta (already memoised).
func (rs *RidgeState) ThetaCached() Vector { return rs.Theta() }

// Dimension implements RidgeCore.
func (rs *RidgeState) Dimension() int { return rs.Dim }

// ConfidenceWidth returns sqrt(x' V^{-1} x), the exploration-boost term of
// the UCB score for context x.
func (rs *RidgeState) ConfidenceWidth(x Vector) float64 {
	return widthFromQuad(rs.VInv.QuadraticForm(x))
}

// ConfidenceWidthSparse is ConfidenceWidth through the O(nnz²) sparse
// quadratic form; bit-identical to the dense path.
func (rs *RidgeState) ConfidenceWidthSparse(x SparseVector) float64 {
	return widthFromQuad(rs.VInv.QuadraticFormSparse(x))
}

// QuadraticFormBatch computes x' V^{-1} x for every context into out in
// one pass over the maintained inverse — the per-arm kernel entry
// amortised across the whole candidate batch. Each entry is
// bit-identical to VInv.QuadraticFormSparse on the same context.
func (rs *RidgeState) QuadraticFormBatch(xs []SparseVector, out []float64) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("linalg: batch length mismatch %d contexts, %d outputs", len(xs), len(out)))
	}
	for i, x := range xs {
		out[i] = rs.VInv.QuadraticFormSparse(x)
	}
}

// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context into
// out; each entry is bit-identical to ConfidenceWidthSparse.
func (rs *RidgeState) ConfidenceWidthBatch(xs []SparseVector, out []float64) {
	rs.QuadraticFormBatch(xs, out)
	for i, q := range out {
		out[i] = widthFromQuad(q)
	}
}

func widthFromQuad(q float64) float64 {
	if q < 0 {
		// Numerical noise can push a tiny positive quadratic form below
		// zero; clamp rather than produce NaN from sqrt.
		q = 0
	}
	return math.Sqrt(q)
}

// Observe folds one (context, reward) observation into the state:
// V += x x', b += r x, and VInv is updated by Sherman–Morrison:
//
//	(V + x x')^{-1} = V^{-1} - (V^{-1} x x' V^{-1}) / (1 + x' V^{-1} x)
func (rs *RidgeState) Observe(x Vector, reward float64) {
	if len(x) != rs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), rs.Dim))
	}
	rs.V.AddOuterScaled(1, x)
	rs.B.AddScaled(reward, x)

	u := rs.VInv.MulVec(x) // V^{-1} x (VInv symmetric, so also x' V^{-1})
	denom := 1 + x.Dot(u)
	rs.VInv.AddOuterScaled(-1/denom, u)
	rs.afterRank1(denom)
}

// ObserveSparse is Observe through the sparse kernels: the V and b
// accumulations touch only nnz²/nnz entries and the Sherman–Morrison
// vector u = V^{-1}x costs O(d·nnz) instead of O(d²). The VInv outer
// update stays dense (u is dense). Bit-identical to Observe on the same
// logical vector.
func (rs *RidgeState) ObserveSparse(x SparseVector, reward float64) {
	if x.Dim != rs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", x.Dim, rs.Dim))
	}
	rs.V.AddOuterScaledSparse(1, x)
	rs.B.AddScaledSparse(reward, x)

	u := rs.VInv.MulVecSparse(x)
	denom := 1 + u.DotSparse(x)
	rs.VInv.AddOuterScaled(-1/denom, u)
	rs.afterRank1(denom)
}

// afterRank1 advances the update counters and runs whichever rebase
// schedule fires first. denom is the Sherman–Morrison denominator
// 1 + x'V^{-1}x of the update just applied.
//
// Both schedules are measured since the last rebase: sinceRebase counts
// the rank-1 updates the current inverse has absorbed (reset by every
// rebase, including Forget's), while updates counts observations over
// the state's lifetime and never resets. Before the counters were
// separated, the fixed cadence ran on updates%RebaseEvery, so a
// Forget- or drift-triggered rebase left the cadence phase-locked to
// the lifetime count — a fresh inverse could be rebased again almost
// immediately, or ride out nearly 2x the intended window.
func (rs *RidgeState) afterRank1(denom float64) {
	rs.updates++
	rs.sinceRebase++
	rs.thetaValid = false
	rs.drift += 1 - 1/denom // == q/(1+q)
	every := rs.RebaseEvery
	if every == 0 {
		every = defaultRebaseEvery
	}
	threshold := rs.DriftThreshold
	if threshold == 0 {
		threshold = defaultDriftThreshold
	}
	if rs.sinceRebase >= every || (threshold > 0 && rs.drift >= threshold) {
		rs.rebase()
	}
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1]: 0 keeps everything, 1 resets to lambda*I / 0. The MAB
// uses this to adapt to workload shifts (Section IV, "the learner can
// forget learned knowledge depending on the workload shift intensity").
func (rs *RidgeState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma > 1 {
		gamma = 1
	}
	keep := 1 - gamma
	// V <- keep*V + gamma*lambda*I, scaling the backing slice directly
	// (the bounds-checked At/Set element loop dominated Forget's cost at
	// C2UCB context dimensions).
	for i := range rs.V.Data {
		rs.V.Data[i] *= keep
	}
	n := rs.Dim
	add := gamma * rs.Lambda
	for i := 0; i < n; i++ {
		rs.V.Data[i*n+i] += add
	}
	rs.B.Scale(keep)
	rs.rebase()
}

// rebase recomputes VInv from V exactly, discarding Sherman–Morrison
// drift, and zeroes both since-rebase measures (the drift score and the
// update counter the fixed cadence runs on).
func (rs *RidgeState) rebase() {
	rs.drift = 0
	rs.sinceRebase = 0
	rs.thetaValid = false
	rs.V.SymmetrizeInPlace()
	inv, err := rs.V.Inverse()
	if err != nil {
		// V = lambda*I + PSD is positive definite by construction; failure
		// here indicates severe numeric corruption. Reset to the prior
		// rather than continue with garbage.
		rs.V = Identity(rs.Dim, rs.Lambda)
		rs.VInv = Identity(rs.Dim, 1/rs.Lambda)
		rs.B = NewVector(rs.Dim)
		return
	}
	rs.VInv = inv
}

// Updates reports how many observations have been folded in over the
// state's lifetime. Forget and rebase do not reset it.
func (rs *RidgeState) Updates() int { return rs.updates }

// SinceRebase reports how many rank-1 updates the current inverse has
// absorbed since the last exact recomputation — the quantity both
// rebase schedules are measured against. Any rebase (fixed-cadence,
// drift-triggered, or Forget's) resets it to zero.
func (rs *RidgeState) SinceRebase() int { return rs.sinceRebase }

// Drift reports the accumulated drift score since the last rebase
// (diagnostics and tests).
func (rs *RidgeState) Drift() float64 { return rs.drift }
