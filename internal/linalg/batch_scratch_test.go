package linalg

import (
	"math/rand"
	"sync"
	"testing"
)

// scratchTestContexts builds a deterministic sparse context set (with a
// couple of empty-support vectors mixed in — the batch kernels must
// handle zero-nnz arms).
func scratchTestContexts(dim, n int, seed int64) []SparseVector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SparseVector, n)
	for i := range out {
		x := NewVector(dim)
		if i%17 != 0 { // every 17th context stays all-zero
			for k := 0; k < dim/6+1; k++ {
				x[rng.Intn(dim)] = rng.NormFloat64()
			}
		}
		out[i] = SparseFromDense(x)
	}
	return out
}

// TestBatchScratchShardsMatchSerial is the sharding contract test on
// both backends: any partition of the context range into Scratch calls
// — sequential or truly concurrent, each shard with its own scratch —
// must produce bitwise the serial batch's output. Run under -race this
// also proves the shared core is read-only during scoring.
func TestBatchScratchShardsMatchSerial(t *testing.T) {
	const dim, n = 40, 101
	ctxs := scratchTestContexts(dim, n, 23)
	for _, backend := range RidgeBackends() {
		core, err := NewRidgeCore(backend, dim, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 30; i++ {
			core.ObserveSparse(ctxs[rng.Intn(n)], rng.NormFloat64())
		}

		wantW := make([]float64, n)
		core.ConfidenceWidthBatch(ctxs, wantW)
		wantQ := make([]float64, n)
		core.QuadraticFormBatch(ctxs, wantQ)

		for _, workers := range []int{1, 2, 4, 7} {
			// Sequential shards first: isolates partition correctness from
			// scheduling.
			gotW := make([]float64, n)
			gotQ := make([]float64, n)
			bounds := shardBounds(n, workers)
			for sh := 0; sh+1 < len(bounds); sh++ {
				s := NewBatchScratch(dim)
				lo, hi := bounds[sh], bounds[sh+1]
				core.ConfidenceWidthBatchScratch(ctxs[lo:hi], gotW[lo:hi], s)
				core.QuadraticFormBatchScratch(ctxs[lo:hi], gotQ[lo:hi], s)
			}
			for i := range wantW {
				if gotW[i] != wantW[i] || gotQ[i] != wantQ[i] {
					t.Fatalf("%s workers=%d: sequential shard output[%d] diverged from serial", backend, workers, i)
				}
			}

			// Then genuinely concurrent shards against the shared core.
			gotW = make([]float64, n)
			var wg sync.WaitGroup
			for sh := 0; sh+1 < len(bounds); sh++ {
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					core.ConfidenceWidthBatchScratch(ctxs[lo:hi], gotW[lo:hi], NewBatchScratch(dim))
				}(bounds[sh], bounds[sh+1])
			}
			wg.Wait()
			for i := range wantW {
				if gotW[i] != wantW[i] {
					t.Fatalf("%s workers=%d: concurrent shard output[%d] = %v, serial %v",
						backend, workers, i, gotW[i], wantW[i])
				}
			}
		}

		// Scratch reuse: a second pass through the same scratch must not
		// read anything stale (pins the xbuf restore-to-zero discipline).
		s := NewBatchScratch(dim)
		first := make([]float64, n)
		second := make([]float64, n)
		core.ConfidenceWidthBatchScratch(ctxs, first, s)
		core.ConfidenceWidthBatchScratch(ctxs, second, s)
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: scratch reuse changed output[%d]: %v then %v", backend, i, first[i], second[i])
			}
		}
	}
}

// shardBounds mirrors runner.Sharded's partition (first n%w shards one
// extra item) without importing it — linalg must not depend on runner.
func shardBounds(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	base, rem := n/workers, n%workers
	bounds := []int{0}
	for sh := 0; sh < workers; sh++ {
		hi := bounds[len(bounds)-1] + base
		if sh < rem {
			hi++
		}
		bounds = append(bounds, hi)
	}
	return bounds
}

// TestBatchScratchValidation pins the fail-fast surface: mismatched
// output length panics on both backends; a wrong-dimension scratch
// panics on the backend that uses it.
func TestBatchScratchValidation(t *testing.T) {
	const dim = 8
	ctxs := scratchTestContexts(dim, 4, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	for _, backend := range RidgeBackends() {
		core, err := NewRidgeCore(backend, dim, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		mustPanic(backend+" length mismatch", func() {
			core.QuadraticFormBatchScratch(ctxs, make([]float64, 2), NewBatchScratch(dim))
		})
	}
	chol := NewCholState(dim, 0.25)
	mustPanic("chol scratch dimension", func() {
		chol.QuadraticFormBatchScratch(ctxs, make([]float64, len(ctxs)), NewBatchScratch(dim+3))
	})
	mustPanic("zero scratch dimension", func() { NewBatchScratch(0) })
}
