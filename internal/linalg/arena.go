package linalg

// SparseArena is a round-scoped bump allocator for SparseVector storage:
// one flat grow-only Idx buffer and one flat Val buffer, sliced per
// vector. A caller that builds many short-lived sparse vectors per round
// (the bandit's per-arm contexts) resets the arena at the top of the
// round and appends into it instead of allocating per vector; after the
// first round reaches its high-water mark the steady state allocates
// nothing.
//
// Lifetime discipline: every vector taken from the arena aliases arena
// memory and is valid only until the next Reset. Reset advances the
// arena's epoch; anything that retains a vector past the round that
// built it must either copy the entries out (CopySparse) or hold the
// epoch it was built under and assert it against Epoch before reading.
// The vectors are handed out with capacity clamped to their length, so
// appending to a taken vector reallocates instead of clobbering a
// neighbour.
//
// An arena is owned by one goroutine; it is not safe for concurrent use.
type SparseArena struct {
	epoch int
	idx   []int
	val   []float64
}

// Reset truncates the arena for a new round and advances its epoch.
// Previously taken vectors keep pointing at the old entries until the
// arena grows over them — holding one past Reset is a bug the epoch
// check exists to catch, not a supported mode.
func (a *SparseArena) Reset() {
	a.epoch++
	a.idx = a.idx[:0]
	a.val = a.val[:0]
}

// Epoch returns the current epoch: the number of Resets so far. A
// retained vector is safe to read only while the arena's epoch still
// equals the epoch at which the vector was taken.
func (a *SparseArena) Epoch() int { return a.epoch }

// Grow reserves capacity for at least n more entries, so a builder that
// knows its bound pays at most one growth per Reset cycle.
func (a *SparseArena) Grow(n int) {
	if free := cap(a.idx) - len(a.idx); free < n {
		idx := make([]int, len(a.idx), 2*cap(a.idx)+n)
		copy(idx, a.idx)
		a.idx = idx
	}
	if free := cap(a.val) - len(a.val); free < n {
		val := make([]float64, len(a.val), 2*cap(a.val)+n)
		copy(val, a.val)
		a.val = val
	}
}

// Mark returns the position a subsequent Take slices from. Typical use:
// m := a.Mark(); a.Append(...)...; x := a.Take(dim, m).
func (a *SparseArena) Mark() int { return len(a.idx) }

// Append pushes one (index, value) entry onto the vector being built.
func (a *SparseArena) Append(i int, v float64) {
	a.idx = append(a.idx, i)
	a.val = append(a.val, v)
}

// Take finalises the vector built since mark. The returned slices alias
// the arena with capacity clamped to length (a later Append can never
// clobber them, and an append to the taken vector copies out).
func (a *SparseArena) Take(dim, mark int) SparseVector {
	n := len(a.idx)
	return SparseVector{Dim: dim, Idx: a.idx[mark:n:n], Val: a.val[mark:n:n]}
}

// Len returns the number of entries currently in the arena (its
// high-water mark within the round; diagnostics and tests).
func (a *SparseArena) Len() int { return len(a.idx) }

// CopySparse appends a copy of x's entries to dst's backing buffers and
// returns the copy — the "copies out" arm of the arena discipline, used
// for the few vectors that must outlive the round (the tuner's pending
// feedback contexts). dst is typically a second, longer-lived arena.
func (a *SparseArena) CopySparse(x SparseVector) SparseVector {
	m := a.Mark()
	a.Grow(len(x.Idx))
	a.idx = append(a.idx, x.Idx...)
	a.val = append(a.val, x.Val...)
	return a.Take(x.Dim, m)
}
