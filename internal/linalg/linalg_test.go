package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 1}
	v.AddScaled(2, Vector{3, 4})
	if !v.Equal(Vector{7, 9}, 0) {
		t.Fatalf("axpy = %v", v)
	}
}

func TestVectorScaleAndNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); got != 5 {
		t.Fatalf("norm = %v", got)
	}
	v.Scale(2)
	if !v.Equal(Vector{6, 8}, 0) {
		t.Fatalf("scale = %v", v)
	}
}

func TestVectorMaxAbs(t *testing.T) {
	if got := (Vector{-7, 2, 5}).MaxAbs(); got != 7 {
		t.Fatalf("maxabs = %v", got)
	}
	if got := (Vector{}).MaxAbs(); got != 0 {
		t.Fatalf("maxabs empty = %v", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3, 2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 2.5
			}
			if m.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1})
	if !got.Equal(Vector{6, 15}, 0) {
		t.Fatalf("mulvec = %v", got)
	}
}

func TestMatrixAddOuterScaled(t *testing.T) {
	m := Identity(2, 1)
	m.AddOuterScaled(2, Vector{1, 2})
	want := [][]float64{{3, 4}, {4, 9}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestQuadraticFormMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		m := randomSPD(rng, n)
		x := randomVec(rng, n)
		explicit := x.Dot(m.MulVec(x))
		if !almostEqual(m.QuadraticForm(x), explicit, 1e-9*(1+math.Abs(explicit))) {
			t.Fatalf("quadratic form mismatch: %v vs %v", m.QuadraticForm(x), explicit)
		}
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		m := randomSPD(rng, n)
		l, err := m.Cholesky()
		if err != nil {
			t.Fatalf("cholesky failed: %v", err)
		}
		// reconstruct L L' and compare
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEqual(s, m.At(i, j), 1e-8*(1+math.Abs(m.At(i, j)))) {
					t.Fatalf("LL' (%d,%d) = %v, want %v", i, j, s, m.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected inverse error for non-square matrix")
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		m := randomSPD(rng, n)
		want := randomVec(rng, n)
		b := m.MulVec(want)
		got, err := m.SolveCholesky(b)
		if err != nil {
			t.Fatalf("solve failed: %v", err)
		}
		if !got.Equal(want, 1e-6*(1+want.MaxAbs())) {
			t.Fatalf("solve = %v, want %v", got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		m := randomSPD(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("inverse failed: %v", err)
		}
		// m * inv should be identity
		for i := 0; i < n; i++ {
			col := NewVector(n)
			for k := 0; k < n; k++ {
				col[k] = inv.At(k, i)
			}
			prod := m.MulVec(col)
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(prod[j], want, 1e-7) {
					t.Fatalf("m*inv (%d,%d) = %v", j, i, prod[j])
				}
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 4, 3})
	m.SymmetrizeInPlace()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("symmetrize = %v", m.Data)
	}
}

// --- RidgeState ---

func TestRidgeRecoverLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dim := 6
	theta := randomVec(rng, dim)
	rs := NewRidgeState(dim, 0.01)
	for i := 0; i < 4000; i++ {
		x := randomVec(rng, dim)
		rs.Observe(x, theta.Dot(x)+rng.NormFloat64()*0.01)
	}
	got := rs.Theta()
	if !got.Equal(theta, 0.05) {
		t.Fatalf("theta = %v, want %v", got, theta)
	}
}

func TestRidgeInverseStaysFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dim := 5
	rs := NewRidgeState(dim, 1)
	rs.RebaseEvery = 64
	for i := 0; i < 1000; i++ {
		rs.Observe(randomVec(rng, dim), rng.Float64())
	}
	exact, err := rs.V.Inverse()
	if err != nil {
		t.Fatalf("exact inverse failed: %v", err)
	}
	if d := rs.VInv.MaxAbsDiff(exact); d > 1e-6 {
		t.Fatalf("incremental inverse drifted by %v", d)
	}
}

func TestRidgeConfidenceShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dim := 4
	rs := NewRidgeState(dim, 1)
	x := randomVec(rng, dim)
	before := rs.ConfidenceWidth(x)
	for i := 0; i < 50; i++ {
		rs.Observe(x, 1)
	}
	after := rs.ConfidenceWidth(x)
	if after >= before {
		t.Fatalf("confidence did not shrink: before %v, after %v", before, after)
	}
}

func TestRidgeForgetFullReset(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rs := NewRidgeState(3, 2)
	for i := 0; i < 20; i++ {
		rs.Observe(randomVec(rng, 3), 1)
	}
	rs.Forget(1)
	fresh := NewRidgeState(3, 2)
	if d := rs.V.MaxAbsDiff(fresh.V); d > 1e-9 {
		t.Fatalf("forget(1) did not reset V, diff %v", d)
	}
	if rs.B.MaxAbs() > 1e-12 {
		t.Fatalf("forget(1) did not reset b: %v", rs.B)
	}
}

func TestRidgeForgetPartialKeepsDefiniteness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rs := NewRidgeState(4, 0.5)
	for i := 0; i < 30; i++ {
		rs.Observe(randomVec(rng, 4), rng.Float64())
	}
	rs.Forget(0.5)
	if _, err := rs.V.Cholesky(); err != nil {
		t.Fatalf("V not positive definite after partial forget: %v", err)
	}
	// inverse must match
	exact, _ := rs.V.Inverse()
	if d := rs.VInv.MaxAbsDiff(exact); d > 1e-8 {
		t.Fatalf("VInv stale after forget: %v", d)
	}
}

func TestRidgeForgetNoOp(t *testing.T) {
	rs := NewRidgeState(2, 1)
	rs.Observe(Vector{1, 0}, 3)
	before := rs.V.Clone()
	rs.Forget(0)
	if d := rs.V.MaxAbsDiff(before); d != 0 {
		t.Fatalf("forget(0) changed V by %v", d)
	}
}

func TestRidgePanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dim", func() { NewRidgeState(0, 1) })
	mustPanic("zero lambda", func() { NewRidgeState(2, 0) })
	mustPanic("dim mismatch", func() { NewRidgeState(2, 1).Observe(Vector{1}, 0) })
}

// --- property-based tests ---

// Property: for any observation sequence, theta from the incremental state
// equals the closed-form ridge solution (V computed from scratch).
func TestQuickRidgeMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		n := rng.Intn(40)
		rs := NewRidgeState(dim, 1)
		v := Identity(dim, 1)
		b := NewVector(dim)
		for i := 0; i < n; i++ {
			x := randomVec(rng, dim)
			r := rng.NormFloat64()
			rs.Observe(x, r)
			v.AddOuterScaled(1, x)
			b.AddScaled(r, x)
		}
		want, err := v.SolveCholesky(b)
		if err != nil {
			return false
		}
		return rs.Theta().Equal(want, 1e-6*(1+want.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: confidence width is non-negative and zero only for the zero
// vector (V is positive definite).
func TestQuickConfidenceWidthPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		rs := NewRidgeState(dim, 0.5)
		for i := 0; i < rng.Intn(30); i++ {
			rs.Observe(randomVec(rng, dim), rng.NormFloat64())
		}
		x := randomVec(rng, dim)
		w := rs.ConfidenceWidth(x)
		if w < 0 {
			return false
		}
		if x.Norm2() > 1e-9 && w == 0 {
			return false
		}
		return rs.ConfidenceWidth(NewVector(dim)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky round-trips any random SPD matrix.
func TestQuickCholeskySPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := randomSPD(rng, n)
		l, err := m.Cholesky()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- helpers ---

func randomVec(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randomSPD builds A'A + I which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	m := Identity(n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(k, i) * a.At(k, j)
			}
			m.Add(i, j, s)
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
