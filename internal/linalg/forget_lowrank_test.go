package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// warmRidgeForForget builds a RidgeState with a randomized observation
// history and both rebase schedules disabled, so the maintained inverse
// entering Forget — and everything Forget does to it — is exactly the
// path under test. Identical (dim, steps, seed) calls build bitwise
// identical states.
func warmRidgeForForget(dim, steps int, seed int64) *RidgeState {
	rng := rand.New(rand.NewSource(seed))
	rs := NewRidgeState(dim, 0.25)
	rs.RebaseEvery = 1 << 30
	rs.DriftThreshold = -1
	for s := 0; s < steps; s++ {
		x := NewVector(dim)
		for k := 0; k < dim/5+1; k++ {
			x[rng.Intn(dim)] = rng.NormFloat64()
		}
		if s%2 == 0 {
			rs.Observe(x, rng.NormFloat64()*10)
		} else {
			rs.ObserveSparse(SparseFromDense(x), rng.NormFloat64()*10)
		}
	}
	return rs
}

func matrixMaxAbs(m *Matrix) float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// TestForgetLowRankFullBudgetMatchesRebase is the agreement test against
// the exact-rebase oracle: with the budget covering every coordinate
// (ForgetRank >= Dim) the structured correction is mathematically exact,
// so the maintained inverse, theta, and probe widths must match the
// refactorisation's within tight floating-point agreement (different
// factorisations of the same V — 1e-8 relative, not bit-identity).
func TestForgetLowRankFullBudgetMatchesRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		dim, steps int
		gamma      float64
		rank       int
	}{
		{8, 60, 0.3, 8},
		{24, 150, 0.5, 24},
		{48, 300, 0.7, 48 + 5}, // over-budget clamps to Dim
	} {
		exact := warmRidgeForForget(tc.dim, tc.steps, int64(tc.dim))
		low := warmRidgeForForget(tc.dim, tc.steps, int64(tc.dim))
		low.ForgetRank = tc.rank
		preSince, preDrift := low.SinceRebase(), low.Drift()

		exact.Forget(tc.gamma)
		low.Forget(tc.gamma)

		scale := 1 + matrixMaxAbs(exact.VInv)
		if d := exact.VInv.MaxAbsDiff(low.VInv); d > 1e-8*scale {
			t.Fatalf("dim=%d gamma=%g: VInv diverged from rebase oracle by %g", tc.dim, tc.gamma, d)
		}
		te, tl := exact.ThetaCached(), low.ThetaCached()
		tScale := 1 + te.MaxAbs()
		for i := range te {
			if d := math.Abs(te[i] - tl[i]); d > 1e-8*tScale {
				t.Fatalf("dim=%d: theta[%d] diverged: exact=%g lowrank=%g", tc.dim, i, te[i], tl[i])
			}
		}
		for probe := 0; probe < 10; probe++ {
			x := NewVector(tc.dim)
			for k := 0; k < tc.dim/5+1; k++ {
				x[rng.Intn(tc.dim)] = rng.NormFloat64()
			}
			we, wl := exact.ConfidenceWidth(x), low.ConfidenceWidth(x)
			if math.Abs(we-wl) > 1e-8*(1+we) {
				t.Fatalf("dim=%d probe %d: width diverged: exact=%g lowrank=%g", tc.dim, probe, we, wl)
			}
		}
		// The full-budget correction is exact, yet it is still rank-1
		// arithmetic on the inverse: the drift ledger must account for it —
		// one since-rebase tick per coordinate step, on top of the
		// observation history's.
		if low.Drift() <= preDrift || low.SinceRebase() != preSince+tc.dim {
			t.Fatalf("dim=%d: drift ledger not charged: drift %g->%g sinceRebase %d->%d",
				tc.dim, preDrift, low.Drift(), preSince, low.SinceRebase())
		}
		// The oracle rebased: its ledger is clean.
		if exact.Drift() != 0 || exact.SinceRebase() != 0 {
			t.Fatalf("dim=%d: exact Forget did not rebase: drift=%g sinceRebase=%d",
				tc.dim, exact.Drift(), exact.SinceRebase())
		}
	}
}

// TestForgetLowRankPartialBudget pins the budgeted path's semantics: a
// budget k < Dim applies exactly k coordinate corrections (largest
// q/(1+q) first), strictly improves on the scale-only inverse it starts
// from, and charges the drift ledger for applied and skipped mass alike.
func TestForgetLowRankPartialBudget(t *testing.T) {
	const dim, steps = 32, 200
	const gamma = 0.5
	k := dim / 4

	oracle := warmRidgeForForget(dim, steps, 3)
	low := warmRidgeForForget(dim, steps, 3)
	low.ForgetRank = k
	preSince, preDrift := low.SinceRebase(), low.Drift()

	// The scale-only inverse (uniform part of the discount, no identity
	// top-up at all) is what the budget improves on.
	keep := 1 - gamma
	scaleOnly := low.VInv.Clone()
	for i := range scaleOnly.Data {
		scaleOnly.Data[i] /= keep
	}

	oracle.Forget(gamma)
	low.Forget(gamma)

	errLow := oracle.VInv.MaxAbsDiff(low.VInv)
	errScaleOnly := oracle.VInv.MaxAbsDiff(scaleOnly)
	if errLow >= errScaleOnly {
		t.Fatalf("budget k=%d did not improve on scale-only: err %g vs %g", k, errLow, errScaleOnly)
	}
	if errLow == 0 {
		t.Fatalf("partial budget bit-matched the oracle — test is vacuous")
	}
	if low.SinceRebase() != preSince+k {
		t.Fatalf("sinceRebase %d->%d, want exactly +%d (the budget)", preSince, low.SinceRebase(), k)
	}
	if low.Drift() <= preDrift {
		t.Fatalf("drift ledger not charged: %g->%g", preDrift, low.Drift())
	}

	// Determinism: the identical state forgets to the identical bits
	// (pins the priority order's index tie-break).
	again := warmRidgeForForget(dim, steps, 3)
	again.ForgetRank = k
	again.Forget(gamma)
	if d := low.VInv.MaxAbsDiff(again.VInv); d != 0 {
		t.Fatalf("low-rank Forget not deterministic: reruns differ by %g", d)
	}
}

// TestForgetLowRankDriftFallback pins the safety net: when the drift
// score crosses the adaptive threshold during a budgeted Forget, the
// exact rebase fires — leaving the very inverse the exact path would
// have produced, bit for bit, with a clean ledger.
func TestForgetLowRankDriftFallback(t *testing.T) {
	const dim, steps = 16, 80
	exact := warmRidgeForForget(dim, steps, 9)
	low := warmRidgeForForget(dim, steps, 9)
	low.ForgetRank = 4
	low.DriftThreshold = 1e-9 // any applied correction trips it

	exact.Forget(0.4)
	low.Forget(0.4)

	if low.SinceRebase() != 0 || low.Drift() != 0 {
		t.Fatalf("fallback rebase did not fire: sinceRebase=%d drift=%g", low.SinceRebase(), low.Drift())
	}
	// Both paths updated V identically and then inverted it exactly.
	if d := exact.VInv.MaxAbsDiff(low.VInv); d != 0 {
		t.Fatalf("post-fallback inverse differs from the exact path by %g", d)
	}
}

// TestForgetLowRankFullForgetRoutesExact pins the gamma >= 1 edge: a
// full forget has keep == 0 (the scale-only inverse does not exist), so
// the budgeted path must route to the exact rebase regardless of
// ForgetRank — bit-identical to the default path.
func TestForgetLowRankFullForgetRoutesExact(t *testing.T) {
	const dim = 12
	exact := warmRidgeForForget(dim, 50, 5)
	low := warmRidgeForForget(dim, 50, 5)
	low.ForgetRank = dim

	exact.Forget(1)
	low.Forget(1.5) // clamps to 1
	if d := exact.VInv.MaxAbsDiff(low.VInv); d != 0 {
		t.Fatalf("full forget with ForgetRank set diverged from exact path by %g", d)
	}
	if low.SinceRebase() != 0 || low.Drift() != 0 {
		t.Fatalf("full forget left a dirty ledger: sinceRebase=%d drift=%g", low.SinceRebase(), low.Drift())
	}
	if low.B.MaxAbs() != 0 {
		t.Fatalf("full forget did not clear b")
	}
}
