package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSparse draws a context-shaped sparse vector: a few entries at
// random ascending indices. signed=false mimics the bandit's contexts
// (non-negative components); signed=true stresses the kernels harder.
func randSparse(rng *rand.Rand, dim int, signed bool) SparseVector {
	nnz := 1 + rng.Intn(9)
	if nnz > dim {
		nnz = dim
	}
	perm := rng.Perm(dim)[:nnz]
	s := SparseVector{Dim: dim, Idx: perm, Val: make([]float64, nnz)}
	s.Sort()
	for k := range s.Val {
		v := rng.Float64() + 0.01
		if signed && rng.Intn(2) == 0 {
			v = -v
		}
		s.Val[k] = v
	}
	return s
}

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestSparseKernelsBitIdentical is the core equivalence property: every
// sparse kernel must produce bit-identical results to its dense
// counterpart on the same logical vector — sparsity is an optimisation,
// not a behaviour change.
func TestSparseKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		dim := 5 + rng.Intn(60)
		signed := trial%2 == 1
		s := randSparse(rng, dim, signed)
		d := s.Dense()
		m := randMatrix(rng, dim)

		w := make(Vector, dim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if got, want := w.DotSparse(s), w.Dot(d); got != want {
			t.Fatalf("trial %d: DotSparse %v != Dot %v", trial, got, want)
		}
		if got, want := m.QuadraticFormSparse(s), m.QuadraticForm(d); got != want {
			t.Fatalf("trial %d: QuadraticFormSparse %v != QuadraticForm %v", trial, got, want)
		}
		mv, mvd := m.MulVecSparse(s), m.MulVec(d)
		for i := range mv {
			if mv[i] != mvd[i] {
				t.Fatalf("trial %d: MulVecSparse[%d] %v != %v", trial, i, mv[i], mvd[i])
			}
		}

		alpha := rng.NormFloat64()
		ms, md := m.Clone(), m.Clone()
		ms.AddOuterScaledSparse(alpha, s)
		md.AddOuterScaled(alpha, d)
		for i := range ms.Data {
			if ms.Data[i] != md.Data[i] {
				t.Fatalf("trial %d: AddOuterScaledSparse data[%d] %v != %v", trial, i, ms.Data[i], md.Data[i])
			}
		}

		vs, vd := w.Clone(), w.Clone()
		vs.AddScaledSparse(alpha, s)
		vd.AddScaled(alpha, d)
		for i := range vs {
			if vs[i] != vd[i] {
				t.Fatalf("trial %d: AddScaledSparse[%d] %v != %v", trial, i, vs[i], vd[i])
			}
		}
	}
}

// TestRidgeSparseObserveBitIdentical drives two ridge states through the
// same observation stream — one densely, one sparsely — across rebases
// and a mid-stream Forget, asserting the full state (V, VInv, B) and the
// downstream scores stay bit-identical.
func TestRidgeSparseObserveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim = 24
	dense := NewRidgeState(dim, 0.25)
	sparse := NewRidgeState(dim, 0.25)
	check := func(step int) {
		t.Helper()
		for i := range dense.V.Data {
			if dense.V.Data[i] != sparse.V.Data[i] {
				t.Fatalf("step %d: V diverged at %d: %v vs %v", step, i, dense.V.Data[i], sparse.V.Data[i])
			}
			if dense.VInv.Data[i] != sparse.VInv.Data[i] {
				t.Fatalf("step %d: VInv diverged at %d: %v vs %v", step, i, dense.VInv.Data[i], sparse.VInv.Data[i])
			}
		}
		for i := range dense.B {
			if dense.B[i] != sparse.B[i] {
				t.Fatalf("step %d: B diverged at %d: %v vs %v", step, i, dense.B[i], sparse.B[i])
			}
		}
	}
	for step := 0; step < 600; step++ {
		x := randSparse(rng, dim, false)
		reward := rng.NormFloat64() * 10
		dense.Observe(x.Dense(), reward)
		sparse.ObserveSparse(x, reward)
		check(step)
		if step == 250 {
			dense.Forget(0.5)
			sparse.Forget(0.5)
			check(step)
		}
		probe := randSparse(rng, dim, false)
		wd := dense.ConfidenceWidth(probe.Dense())
		ws := sparse.ConfidenceWidthSparse(probe)
		if wd != ws {
			t.Fatalf("step %d: widths diverged: %v vs %v", step, wd, ws)
		}
	}
	if dense.Updates() != sparse.Updates() {
		t.Fatalf("update counts diverged: %d vs %d", dense.Updates(), sparse.Updates())
	}
}

// TestAdaptiveRebaseFiresOnDrift: heavy rank-1 updates against a weak
// prior accumulate drift quickly, so a low threshold must trigger an
// exact re-baseline long before the fixed cadence, leaving VInv equal to
// a fresh inverse of V.
func TestAdaptiveRebaseFiresOnDrift(t *testing.T) {
	rs := NewRidgeState(8, 0.25)
	rs.DriftThreshold = 1.5
	rng := rand.New(rand.NewSource(7))
	fired := false
	for i := 0; i < 50; i++ {
		rs.Observe(randomVec(rng, 8), 1)
		if rs.Drift() == 0 && rs.Updates() > 0 && rs.Updates()%256 != 0 {
			fired = true
			inv, err := rs.V.Clone().Inverse()
			if err != nil {
				t.Fatal(err)
			}
			if diff := rs.VInv.MaxAbsDiff(inv); diff > 1e-9 {
				t.Fatalf("post-rebase VInv not exact: diff %v", diff)
			}
			break
		}
	}
	if !fired {
		t.Fatal("adaptive rebase never fired despite low threshold")
	}
}

// TestAdaptiveRebaseDisabled: a negative threshold must leave only the
// fixed cadence — drift accumulates unchecked until update 256.
func TestAdaptiveRebaseDisabled(t *testing.T) {
	rs := NewRidgeState(4, 0.25)
	rs.DriftThreshold = -1
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 255; i++ {
		rs.Observe(randomVec(rng, 4), 1)
		if rs.Drift() == 0 {
			t.Fatalf("rebase fired at update %d with adaptive schedule disabled", rs.Updates())
		}
	}
	rs.Observe(randomVec(rng, 4), 1)
	if rs.Drift() != 0 {
		t.Fatal("fixed cadence did not fire at update 256")
	}
}

// TestDriftIncrementIsDenominatorShare pins the drift bookkeeping:
// one update contributes q/(1+q), the relative weight of the
// Sherman–Morrison correction.
func TestDriftIncrementIsDenominatorShare(t *testing.T) {
	rs := NewRidgeState(3, 0.5)
	x := Vector{1, 2, 0}
	q := rs.VInv.QuadraticForm(x)
	rs.Observe(x, 1)
	want := q / (1 + q)
	if math.Abs(rs.Drift()-want) > 1e-12 {
		t.Fatalf("drift = %v, want q/(1+q) = %v", rs.Drift(), want)
	}
}

func TestSparseVectorUtils(t *testing.T) {
	v := Vector{0, 3, 0, 0, -2, 0, 1}
	s := SparseFromDense(v)
	if s.NNZ() != 3 || s.Dim != 7 {
		t.Fatalf("nnz=%d dim=%d", s.NNZ(), s.Dim)
	}
	for i, want := range v {
		if got := s.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	d := s.Dense()
	for i := range v {
		if d[i] != v[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, d[i], v[i])
		}
	}
	// Sort restores ascending order from arbitrary insertion order.
	u := SparseVector{Dim: 10, Idx: []int{7, 2, 9, 0}, Val: []float64{7, 2, 9, 0.5}}
	u.Sort()
	for k := 1; k < len(u.Idx); k++ {
		if u.Idx[k-1] >= u.Idx[k] {
			t.Fatalf("Sort left indices unsorted: %v", u.Idx)
		}
	}
	for k, i := range u.Idx {
		want := map[int]float64{7: 7, 2: 2, 9: 9, 0: 0.5}[i]
		if u.Val[k] != want {
			t.Fatalf("Sort lost pairing: idx %d -> %v", i, u.Val[k])
		}
	}
}

func TestSparseKernelDimChecks(t *testing.T) {
	s := SparseVector{Dim: 3, Idx: []int{0}, Val: []float64{1}}
	m := NewMatrix(2, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DotSparse", func() { NewVector(2).DotSparse(s) })
	mustPanic("AddScaledSparse", func() { NewVector(2).AddScaledSparse(1, s) })
	mustPanic("QuadraticFormSparse", func() { m.QuadraticFormSparse(s) })
	mustPanic("MulVecSparse", func() { m.MulVecSparse(s) })
	mustPanic("AddOuterScaledSparse", func() { m.AddOuterScaledSparse(1, s) })
	mustPanic("ObserveSparse", func() { NewRidgeState(2, 1).ObserveSparse(s, 0) })
}
