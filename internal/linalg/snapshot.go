package linalg

import (
	"fmt"

	"dbabandits/internal/floatenc"
)

// RidgeSnapshot is the serialisable state of a RidgeCore: everything a
// fresh process needs to continue the regression bit for bit. Float
// payloads are packed via floatenc (base64 of the IEEE-754 bits), so
// no decimal round-trip can perturb the restored factors; a restored
// core's every subsequent Theta/width/Observe result is byte-identical
// to the uninterrupted core's. The theta memo is deliberately not
// persisted — it is a pure function of the persisted state and is
// recomputed (to the same bits) on first use.
type RidgeSnapshot struct {
	// Backend names the implementation the snapshot came from
	// (BackendSM or BackendChol); RestoreRidgeCore rebuilds that
	// backend and refuses a mismatched one.
	Backend string
	Dim     int
	Lambda  float64
	Updates int
	// B is the response accumulator (floatenc, Dim values).
	B string

	// Sherman–Morrison backend state: the scatter matrix, its
	// maintained inverse, and the rebase-schedule position.
	V              string  `json:",omitempty"`
	VInv           string  `json:",omitempty"`
	SinceRebase    int     `json:",omitempty"`
	Drift          float64 `json:",omitempty"`
	RebaseEvery    int     `json:",omitempty"`
	DriftThreshold float64 `json:",omitempty"`

	// Factored (Cholesky) backend state: the lower-triangular factor.
	L string `json:",omitempty"`
}

// Snapshot implements RidgeCore for the Sherman–Morrison backend.
func (rs *RidgeState) Snapshot() *RidgeSnapshot {
	return &RidgeSnapshot{
		Backend:        BackendSM,
		Dim:            rs.Dim,
		Lambda:         rs.Lambda,
		Updates:        rs.updates,
		B:              floatenc.Encode(rs.B),
		V:              floatenc.Encode(rs.V.Data),
		VInv:           floatenc.Encode(rs.VInv.Data),
		SinceRebase:    rs.sinceRebase,
		Drift:          rs.drift,
		RebaseEvery:    rs.RebaseEvery,
		DriftThreshold: rs.DriftThreshold,
	}
}

// Snapshot implements RidgeCore for the factored (Cholesky) backend.
func (cs *CholState) Snapshot() *RidgeSnapshot {
	return &RidgeSnapshot{
		Backend: BackendChol,
		Dim:     cs.Dim,
		Lambda:  cs.Lambda,
		Updates: cs.updates,
		B:       floatenc.Encode(cs.B),
		L:       floatenc.Encode(cs.L.Data),
	}
}

// RestoreRidgeCore rebuilds the backend a snapshot was taken from,
// positioned exactly where the snapshotted core was: same factors,
// same counters, same rebase-schedule position. The restored core's
// subsequent results are bit-identical to the original's.
func RestoreRidgeCore(s *RidgeSnapshot) (RidgeCore, error) {
	if s == nil {
		return nil, fmt.Errorf("linalg: nil ridge snapshot")
	}
	if s.Dim <= 0 || s.Lambda <= 0 {
		return nil, fmt.Errorf("linalg: ridge snapshot with dim %d, lambda %g", s.Dim, s.Lambda)
	}
	b, err := floatenc.DecodeLen(s.B, s.Dim)
	if err != nil {
		return nil, fmt.Errorf("linalg: ridge snapshot B: %w", err)
	}
	switch s.Backend {
	case BackendSM:
		v, err := floatenc.DecodeLen(s.V, s.Dim*s.Dim)
		if err != nil {
			return nil, fmt.Errorf("linalg: ridge snapshot V: %w", err)
		}
		vinv, err := floatenc.DecodeLen(s.VInv, s.Dim*s.Dim)
		if err != nil {
			return nil, fmt.Errorf("linalg: ridge snapshot VInv: %w", err)
		}
		rs := NewRidgeState(s.Dim, s.Lambda)
		copy(rs.V.Data, v)
		copy(rs.VInv.Data, vinv)
		copy(rs.B, b)
		rs.updates = s.Updates
		rs.sinceRebase = s.SinceRebase
		rs.drift = s.Drift
		rs.RebaseEvery = s.RebaseEvery
		rs.DriftThreshold = s.DriftThreshold
		return rs, nil
	case BackendChol:
		l, err := floatenc.DecodeLen(s.L, s.Dim*s.Dim)
		if err != nil {
			return nil, fmt.Errorf("linalg: ridge snapshot L: %w", err)
		}
		cs := NewCholState(s.Dim, s.Lambda)
		copy(cs.L.Data, l)
		copy(cs.B, b)
		cs.rescanProfile()
		cs.updates = s.Updates
		return cs, nil
	}
	return nil, fmt.Errorf("linalg: ridge snapshot for unknown backend %q (available: %v)", s.Backend, RidgeBackends())
}
