package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major square-or-rectangular matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix scaled by lambda.
func Identity(n int, lambda float64) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = lambda
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m * v into a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// AddOuterScaled adds alpha * x*x' to m in place. m must be square with
// dimension len(x). Only valid for symmetric accumulation such as the
// bandit scatter matrix V_t = V_{t-1} + sum x x'.
func (m *Matrix) AddOuterScaled(alpha float64, x Vector) {
	n := len(x)
	if m.Rows != n || m.Cols != n {
		panic(fmt.Sprintf("linalg: outer shape mismatch %dx%d += %d outer", m.Rows, m.Cols, n))
	}
	for i := 0; i < n; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// ScaleInPlace multiplies every entry by alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// QuadraticForm computes x' * m * x without allocating.
func (m *Matrix) QuadraticForm(x Vector) float64 {
	n := len(x)
	if m.Rows != n || m.Cols != n {
		panic(fmt.Sprintf("linalg: quadratic form shape mismatch %dx%d with %d", m.Rows, m.Cols, n))
	}
	var total float64
	for i := 0; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		total += xi * s
	}
	return total
}

// SymmetrizeInPlace averages m with its transpose, correcting the slow
// drift that repeated floating-point rank-1 updates introduce.
func (m *Matrix) SymmetrizeInPlace() {
	if m.Rows != m.Cols {
		panic("linalg: symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = avg
			m.Data[j*n+i] = avg
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%10.4f ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cholesky computes the lower-triangular factor L with m = L L'. It
// returns an error if m is not (numerically) symmetric positive definite.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m*x = b using a fresh Cholesky factorisation.
func (m *Matrix) SolveCholesky(b Vector) (Vector, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	y := l.ForwardSolve(b)
	return l.BackSolveTransposed(y), nil
}

// ForwardSolve solves L*y = b for lower-triangular L (receiver).
func (m *Matrix) ForwardSolve(b Vector) Vector {
	n := m.Rows
	y := NewVector(n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := m.Data[i*n : i*n+i]
		for k, v := range row {
			sum -= v * y[k]
		}
		y[i] = sum / m.At(i, i)
	}
	return y
}

// BackSolveTransposed solves L'*x = y for lower-triangular L (receiver).
func (m *Matrix) BackSolveTransposed(y Vector) Vector {
	n := m.Rows
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= m.At(k, i) * x[k]
		}
		x[i] = sum / m.At(i, i)
	}
	return x
}

// Inverse computes the matrix inverse via Cholesky. Intended for tests and
// for re-baselining the incremental inverse; the hot path uses RidgeState.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	inv := NewMatrix(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		y := l.ForwardSolve(e)
		x := l.BackSolveTransposed(y)
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv, nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and other; useful for drift checks in tests.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i, v := range m.Data {
		if d := math.Abs(v - other.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}
