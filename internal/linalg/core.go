package linalg

import "fmt"

// RidgeCore is the pluggable backend of the C2UCB ridge regression: the
// sufficient statistics V_t = lambda*I + sum x x' and b_t = sum r*x,
// queried through the coefficient estimate theta_t = V_t^{-1} b_t and
// the per-context confidence width sqrt(x' V_t^{-1} x).
//
// Two implementations ship:
//
//   - BackendSM (*RidgeState, the default): explicit inverse maintained
//     incrementally by Sherman–Morrison, with drift-scored rebasing.
//     Widths cost O(nnz²) per sparse context — the cheapest scoring
//     path, at the price of inverse-drift accounting.
//   - BackendChol (*CholState): the Cholesky factor L of V maintained
//     directly by rank-1 cholupdate. No explicit inverse, no drift, no
//     rebase machinery; theta costs two triangular solves and each
//     width one. Observe is unconditionally stable, widths cost O(d²).
//
// Both backends memoise theta between observations (ThetaCached) and
// score whole arm batches in one pass (QuadraticFormBatch /
// ConfidenceWidthBatch), so callers never re-derive theta per arm.
//
// Vectors returned by Theta/ThetaCached are owned by the core and valid
// until the next Observe/ObserveSparse/Forget; callers must not mutate
// them.
//
// A core is NOT safe for unrestricted concurrent use: the theta memo is
// written lazily by the scoring reads, and the factored backend's
// default solves reuse per-state scratch. The one concurrency the
// contract does allow is sharded batch scoring: any number of
// QuadraticFormBatchScratch / ConfidenceWidthBatchScratch calls may run
// simultaneously over disjoint shards of a candidate batch, provided
// each call brings its own BatchScratch, theta was materialised first
// (one ThetaCached call before the fan-out), and no mutation
// (Observe/ObserveSparse/Forget) runs concurrently. Under those rules
// the scratch variants read only immutable state, so shard results are
// byte-identical to a serial pass at any worker count.
type RidgeCore interface {
	// Dimension returns the context dimensionality d.
	Dimension() int
	// Updates reports how many observations have been folded in.
	Updates() int
	// Theta returns the current coefficient estimate V^{-1} b.
	Theta() Vector
	// ThetaCached is Theta through the memo: the estimate is computed at
	// most once between observations, however many scoring passes ask.
	ThetaCached() Vector
	// Observe folds one dense (context, reward) observation into the
	// state: V += x x', b += r x.
	Observe(x Vector, reward float64)
	// ObserveSparse is Observe for a sparse context, bit-identical to
	// Observe on the same logical vector.
	ObserveSparse(x SparseVector, reward float64)
	// ConfidenceWidth returns sqrt(x' V^{-1} x) for a dense context.
	ConfidenceWidth(x Vector) float64
	// ConfidenceWidthSparse is ConfidenceWidth for a sparse context.
	ConfidenceWidthSparse(x SparseVector) float64
	// QuadraticFormBatch computes x' V^{-1} x for every context into
	// out (len(out) must equal len(xs)) in one pass over the state.
	QuadraticFormBatch(xs []SparseVector, out []float64)
	// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context
	// into out (len(out) must equal len(xs)) in one pass; each entry is
	// bit-identical to ConfidenceWidthSparse on the same context.
	ConfidenceWidthBatch(xs []SparseVector, out []float64)
	// QuadraticFormBatchScratch is QuadraticFormBatch through
	// caller-supplied scratch — the sharded form: concurrent calls over
	// disjoint shards are safe when each brings a distinct scratch (see
	// the interface comment). Bit-identical to QuadraticFormBatch.
	QuadraticFormBatchScratch(xs []SparseVector, out []float64, s *BatchScratch)
	// ConfidenceWidthBatchScratch is ConfidenceWidthBatch through
	// caller-supplied scratch, with the same sharding contract.
	ConfidenceWidthBatchScratch(xs []SparseVector, out []float64, s *BatchScratch)
	// Forget discounts accumulated knowledge toward the prior by factor
	// gamma in [0, 1]: 0 keeps everything, 1 resets to lambda*I / 0.
	Forget(gamma float64)
	// Snapshot returns the serialisable state of the core; restoring it
	// with RestoreRidgeCore yields a core whose every subsequent result
	// is bit-identical to this one's. The theta memo is not captured
	// (it is a pure function of the captured state).
	Snapshot() *RidgeSnapshot
}

// BatchScratch is the per-worker working memory of the sharded batch
// scoring kernels. A scratch belongs to exactly one concurrent
// QuadraticFormBatchScratch / ConfidenceWidthBatchScratch call at a
// time; giving every scoring worker its own scratch is what makes the
// sharded pass safe where the plain batch methods (which reuse
// state-owned scratch) are not. The Sherman–Morrison backend's batch
// kernel is allocation- and scratch-free, so only the factored backend
// actually uses the buffers — but callers allocate one per worker
// regardless and stay backend-agnostic.
type BatchScratch struct {
	z    Vector // triangular-solve intermediate L^{-1} x
	xbuf Vector // densified sparse context (kept all-zero between uses)

	// panel is the blocked batch-solve working set of the factored
	// backend: cholPanelWidth right-hand-side columns forward-substituted
	// through L in one pass (see CholState.quadPanel). Row-major with a
	// fixed cholPanelWidth stride; lazily sized dim*cholPanelWidth.
	panel Vector
	// q accumulates the per-column quadratic forms of one panel.
	q [cholPanelWidth]float64
	// order and cnt are the counting-sort scratch that groups a batch's
	// arms into panels by first non-zero row.
	order []int32
	cnt   []int32
}

// NewBatchScratch allocates scratch for cores of dimension dim.
func NewBatchScratch(dim int) *BatchScratch {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: batch scratch dimension must be positive, got %d", dim))
	}
	return &BatchScratch{z: NewVector(dim), xbuf: NewVector(dim)}
}

// Names of the ridge backends selectable through TunerOptions, policy
// params, and the -ridge command-line flags.
const (
	// BackendSM is the Sherman–Morrison explicit-inverse backend — the
	// default; every golden fixture was captured under it.
	BackendSM = "sm"
	// BackendChol is the factored (Cholesky) backend.
	BackendChol = "chol"
)

// RidgeBackends lists the selectable backend names.
func RidgeBackends() []string { return []string{BackendSM, BackendChol} }

// ValidRidgeBackend reports whether name selects a backend ("" selects
// the default).
func ValidRidgeBackend(name string) bool {
	switch name {
	case "", BackendSM, BackendChol:
		return true
	}
	return false
}

// NewRidgeCore constructs the named backend ("" means BackendSM) with
// V = lambda*I, b = 0.
func NewRidgeCore(backend string, dim int, lambda float64) (RidgeCore, error) {
	switch backend {
	case "", BackendSM:
		return NewRidgeState(dim, lambda), nil
	case BackendChol:
		return NewCholState(dim, lambda), nil
	}
	return nil, fmt.Errorf("linalg: unknown ridge backend %q (available: %v)", backend, RidgeBackends())
}

var (
	_ RidgeCore = (*RidgeState)(nil)
	_ RidgeCore = (*CholState)(nil)
)
