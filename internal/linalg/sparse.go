package linalg

import (
	"fmt"
	"sort"
)

// SparseVector is a sparse column vector of logical dimension Dim:
// parallel slices of ascending, unique indices and their values. The
// C2UCB context vectors are the motivating case — at most a handful of
// non-zeros (one per index key column plus three derived statistics) out
// of one dimension per schema column — so the sparse kernels below turn
// the bandit's per-arm O(d²) quadratic forms into O(nnz²).
//
// Every sparse kernel iterates the stored entries in ascending index
// order, exactly the order in which the dense kernels meet the same
// non-zero terms; the skipped terms are exact floating-point zero
// products, so sparse and dense results are bit-identical (the golden
// and property tests pin this).
type SparseVector struct {
	Dim int
	Idx []int
	Val []float64
}

// SparseFromDense collects the non-zero entries of v.
func SparseFromDense(v Vector) SparseVector {
	s := SparseVector{Dim: len(v)}
	for i, x := range v {
		if x != 0 {
			s.Idx = append(s.Idx, i)
			s.Val = append(s.Val, x)
		}
	}
	return s
}

// SparseAll converts a batch of dense vectors (test/bench convenience).
func SparseAll(vs []Vector) []SparseVector {
	out := make([]SparseVector, len(vs))
	for i, v := range vs {
		out[i] = SparseFromDense(v)
	}
	return out
}

// NNZ returns the number of stored entries.
func (s SparseVector) NNZ() int { return len(s.Idx) }

// At returns component i (0 when not stored).
func (s SparseVector) At(i int) float64 {
	k := sort.SearchInts(s.Idx, i)
	if k < len(s.Idx) && s.Idx[k] == i {
		return s.Val[k]
	}
	return 0
}

// Dense materialises the full vector.
func (s SparseVector) Dense() Vector {
	v := NewVector(s.Dim)
	for k, i := range s.Idx {
		v[i] = s.Val[k]
	}
	return v
}

// Sort reorders the stored entries into ascending index order in place.
// Builders that append entries out of order (e.g. index key columns in
// key order) must call it before handing the vector to any kernel.
// Insertion sort: context vectors carry a handful of entries.
func (s SparseVector) Sort() {
	for k := 1; k < len(s.Idx); k++ {
		i, v := s.Idx[k], s.Val[k]
		l := k - 1
		for l >= 0 && s.Idx[l] > i {
			s.Idx[l+1], s.Val[l+1] = s.Idx[l], s.Val[l]
			l--
		}
		s.Idx[l+1], s.Val[l+1] = i, v
	}
}

// DotSparse returns v·s, touching only s's stored entries. The operand
// order per term (v element first) mirrors Vector.Dot for bit-identical
// accumulation.
func (v Vector) DotSparse(s SparseVector) float64 {
	if len(v) != s.Dim {
		panic(fmt.Sprintf("linalg: sparse dot dimension mismatch %d vs %d", len(v), s.Dim))
	}
	var out float64
	for k, i := range s.Idx {
		out += v[i] * s.Val[k]
	}
	return out
}

// AddScaledSparse adds alpha*s to v in place and returns v.
func (v Vector) AddScaledSparse(alpha float64, s SparseVector) Vector {
	if len(v) != s.Dim {
		panic(fmt.Sprintf("linalg: sparse axpy dimension mismatch %d vs %d", len(v), s.Dim))
	}
	for k, i := range s.Idx {
		v[i] += alpha * s.Val[k]
	}
	return v
}

// QuadraticFormSparse computes x' * m * x touching only the nnz² matrix
// entries addressed by x's stored indices — O(nnz²) against the dense
// kernel's O(d²).
func (m *Matrix) QuadraticFormSparse(x SparseVector) float64 {
	n := x.Dim
	if m.Rows != n || m.Cols != n {
		panic(fmt.Sprintf("linalg: sparse quadratic form shape mismatch %dx%d with %d", m.Rows, m.Cols, n))
	}
	var total float64
	for k, i := range x.Idx {
		xi := x.Val[k]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		var s float64
		for l, j := range x.Idx {
			s += row[j] * x.Val[l]
		}
		total += xi * s
	}
	return total
}

// MulVecSparse computes m * x into a new dense vector in O(rows*nnz).
func (m *Matrix) MulVecSparse(x SparseVector) Vector {
	if m.Cols != x.Dim {
		panic(fmt.Sprintf("linalg: sparse mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, x.Dim))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for k, j := range x.Idx {
			s += row[j] * x.Val[k]
		}
		out[i] = s
	}
	return out
}

// AddOuterScaledSparse adds alpha * x*x' to m in place, touching only the
// nnz² addressed entries. Like AddOuterScaled it is only valid for
// symmetric accumulation (the bandit scatter matrix V += x x').
func (m *Matrix) AddOuterScaledSparse(alpha float64, x SparseVector) {
	n := x.Dim
	if m.Rows != n || m.Cols != n {
		panic(fmt.Sprintf("linalg: sparse outer shape mismatch %dx%d += %d outer", m.Rows, m.Cols, n))
	}
	for k, i := range x.Idx {
		xi := alpha * x.Val[k]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		for l, j := range x.Idx {
			row[j] += xi * x.Val[l]
		}
	}
}
