package linalg

import (
	"math/rand"
	"testing"
)

// benchContexts builds a deterministic batch of sparse-ish contexts of
// the shape the C2UCB feeds the ridge state (most components zero, a few
// prefix/statistic components set).
func benchContexts(dim, n int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Vector, n)
	for i := range out {
		x := NewVector(dim)
		for k := 0; k < dim/8+2; k++ {
			x[rng.Intn(dim)] = rng.Float64()
		}
		out[i] = x
	}
	return out
}

// BenchmarkRidgeObserveScore measures the C2UCB hot path — folding a
// round's observations into the ridge state and scoring a candidate
// batch (Theta mat-vec plus per-arm confidence widths) — at a context
// dimension typical of the benchmark schemas.
func BenchmarkRidgeObserveScore(b *testing.B) {
	const dim = 64
	const arms = 48
	contexts := benchContexts(dim, arms, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := NewRidgeState(dim, 0.25)
		for r := 0; r < 8; r++ {
			for _, x := range contexts[:8] {
				rs.Observe(x, 1.0)
			}
			theta := rs.Theta()
			var sink float64
			for _, x := range contexts {
				sink += theta.Dot(x) + rs.ConfidenceWidth(x)
			}
			benchSink = sink
		}
	}
}

// BenchmarkRidgeObserveScoreSparse is BenchmarkRidgeObserveScore through
// the sparse kernels on the same logical vectors — the bandit's native
// path since contexts went sparse. The ratio against the dense benchmark
// is the kernel-level win at this dimension/sparsity.
func BenchmarkRidgeObserveScoreSparse(b *testing.B) {
	const dim = 64
	const arms = 48
	contexts := SparseAll(benchContexts(dim, arms, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := NewRidgeState(dim, 0.25)
		for r := 0; r < 8; r++ {
			for _, x := range contexts[:8] {
				rs.ObserveSparse(x, 1.0)
			}
			theta := rs.Theta()
			var sink float64
			for _, x := range contexts {
				sink += theta.DotSparse(x) + rs.ConfidenceWidthSparse(x)
			}
			benchSink = sink
		}
	}
}

// BenchmarkThetaCached measures the memoised theta read at the TPC-DS
// context dimension (83): between observations every call after the
// first is a cache hit, which is exactly the repeated same-round
// profile C2UCB.Scores/ExpectedScores have. Compare
// BenchmarkThetaRecompute for what each of those calls paid before the
// memo.
func BenchmarkThetaCached(b *testing.B) {
	const dim = 83
	contexts := SparseAll(benchContexts(dim, 32, 1))
	rs := NewRidgeState(dim, 0.25)
	for _, x := range contexts {
		rs.ObserveSparse(x, 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rs.ThetaCached()[0]
	}
	benchSink = sink
}

// BenchmarkThetaRecompute is the dense V^{-1}b mat-vec the memo
// amortises — the per-call cost of the pre-memo Theta().
func BenchmarkThetaRecompute(b *testing.B) {
	const dim = 83
	contexts := SparseAll(benchContexts(dim, 32, 1))
	rs := NewRidgeState(dim, 0.25)
	for _, x := range contexts {
		rs.ObserveSparse(x, 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rs.VInv.MulVec(rs.B)[0]
	}
	benchSink = sink
}

// BenchmarkCholObserve measures the factored backend's rank-1
// cholupdate on sparse contexts at the TPC-DS dimension — the cost that
// replaces the Sherman–Morrison dense outer update plus its share of
// drift-triggered exact rebases (the factored path has neither).
func BenchmarkCholObserve(b *testing.B) {
	const dim = 83
	contexts := SparseAll(benchContexts(dim, 48, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := NewCholState(dim, 0.25)
		for _, x := range contexts {
			cs.ObserveSparse(x, 1.0)
		}
	}
}

// BenchmarkRidgeForget measures shift-scaled forgetting (scatter-matrix
// discount plus the Cholesky rebase), which runs on every detected
// workload shift.
func BenchmarkRidgeForget(b *testing.B) {
	const dim = 64
	contexts := benchContexts(dim, 32, 2)
	rs := NewRidgeState(dim, 0.25)
	for _, x := range contexts {
		rs.Observe(x, 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Forget(0.5)
	}
}

// BenchmarkCholObserveFused isolates one steady-state sparse rank-1
// cholupdate on a warm factor at the TPC-DS dimension — the per-observe
// cost the fused row-major sweep optimises. BenchmarkCholObserve wraps
// 48 of these plus state construction per iteration; this is the
// number the <100µs per-observe target is quoted against.
func BenchmarkCholObserveFused(b *testing.B) {
	const dim = 83
	contexts := SparseAll(benchContexts(dim, 48, 1))
	cs := NewCholState(dim, 0.25)
	for _, x := range contexts {
		cs.ObserveSparse(x, 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.ObserveSparse(contexts[i%len(contexts)], 1.0)
	}
}

// BenchmarkForgetLowRank measures the budgeted O(k·d²) structured
// Forget on the same warm state shape as BenchmarkRidgeForget (whose
// exact-rebase default is the baseline). The rebase schedules are
// disabled so every iteration times the low-rank correction itself,
// never an amortised exact refactorisation the repeated-Forget loop
// would otherwise trip.
func BenchmarkForgetLowRank(b *testing.B) {
	const dim = 64
	contexts := benchContexts(dim, 32, 2)
	rs := NewRidgeState(dim, 0.25)
	rs.ForgetRank = 8
	rs.RebaseEvery = 1 << 30
	rs.DriftThreshold = -1
	for _, x := range contexts {
		rs.Observe(x, 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Forget(0.5)
	}
}

var benchSink float64
