package linalg

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// feed drives a core through a mixed observation history: dense and
// sparse observes, interleaved scoring reads (which exercise the theta
// memo), and a mid-stream Forget.
func feed(t *testing.T, core RidgeCore, dim, steps int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		switch i % 4 {
		case 0, 1:
			x := NewVector(dim)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			core.Observe(x, rng.Float64()*10-2)
		case 2:
			nnz := 1 + rng.Intn(dim/2)
			sx := SparseVector{Dim: dim}
			for _, j := range rng.Perm(dim)[:nnz] {
				sx.Idx = append(sx.Idx, j)
				sx.Val = append(sx.Val, rng.NormFloat64())
			}
			core.ObserveSparse(sx, rng.Float64())
		default:
			core.ThetaCached()
			if i == steps/2 {
				core.Forget(0.3)
			}
		}
	}
}

// fingerprint captures bit-exact outputs of every scoring entry point.
func fingerprint(core RidgeCore, dim int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out []uint64
	for _, v := range core.Theta() {
		out = append(out, math.Float64bits(v))
	}
	x := NewVector(dim)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	out = append(out, math.Float64bits(core.ConfidenceWidth(x)))
	var xs []SparseVector
	for k := 0; k < 5; k++ {
		sx := SparseVector{Dim: dim}
		for _, j := range rng.Perm(dim)[:2+k%3] {
			sx.Idx = append(sx.Idx, j)
			sx.Val = append(sx.Val, rng.NormFloat64())
		}
		xs = append(xs, sx)
		out = append(out, math.Float64bits(core.ConfidenceWidthSparse(sx)))
	}
	batch := make([]float64, len(xs))
	core.ConfidenceWidthBatch(xs, batch)
	for _, v := range batch {
		out = append(out, math.Float64bits(v))
	}
	return out
}

// TestSnapshotRoundTrip snapshots each backend mid-history (through a
// JSON round-trip, as a checkpoint would), restores it, continues both
// the original and the restored core through identical further
// observations, and requires bit-identical outputs from every scoring
// path.
func TestSnapshotRoundTrip(t *testing.T) {
	const dim = 12
	for _, backend := range RidgeBackends() {
		t.Run(backend, func(t *testing.T) {
			core, err := NewRidgeCore(backend, dim, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			feed(t, core, dim, 40, 11)

			raw, err := json.Marshal(core.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			var snap RidgeSnapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreRidgeCore(&snap)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Updates() != core.Updates() {
				t.Fatalf("updates %d, want %d", restored.Updates(), core.Updates())
			}

			// Continue both through the same further history; every
			// subsequent output must match bit for bit.
			feed(t, core, dim, 30, 23)
			feed(t, restored, dim, 30, 23)
			want := fingerprint(core, dim, 5)
			got := fingerprint(restored, dim, 5)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fingerprint %d: %x != %x", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSnapshotRebaseSchedule pins that the SM backend's rebase position
// survives the round trip: a restored state must rebase on exactly the
// same future update as the original.
func TestSnapshotRebaseSchedule(t *testing.T) {
	rs := NewRidgeState(4, 1)
	rs.RebaseEvery = 10
	rs.DriftThreshold = -1
	feed(t, rs, 4, 17, 3)

	restored, err := RestoreRidgeCore(rs.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rr := restored.(*RidgeState)
	if rr.SinceRebase() != rs.SinceRebase() || rr.Drift() != rs.Drift() {
		t.Fatalf("rebase position (%d, %g), want (%d, %g)",
			rr.SinceRebase(), rr.Drift(), rs.SinceRebase(), rs.Drift())
	}
	if rr.RebaseEvery != rs.RebaseEvery || rr.DriftThreshold != rs.DriftThreshold {
		t.Fatalf("schedule (%d, %g), want (%d, %g)",
			rr.RebaseEvery, rr.DriftThreshold, rs.RebaseEvery, rs.DriftThreshold)
	}
}

// TestSnapshotErrors pins the refusal paths.
func TestSnapshotErrors(t *testing.T) {
	if _, err := RestoreRidgeCore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := RestoreRidgeCore(&RidgeSnapshot{Backend: "sm", Dim: 0, Lambda: 1}); err == nil {
		t.Fatal("zero dim accepted")
	}
	good := NewRidgeState(3, 1).Snapshot()
	good.Backend = "nope"
	if _, err := RestoreRidgeCore(good); err == nil {
		t.Fatal("unknown backend accepted")
	}
	bad := NewCholState(3, 1).Snapshot()
	bad.L = bad.L[:4]
	if _, err := RestoreRidgeCore(bad); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
