package linalg

import (
	"fmt"
	"math"
)

// CholState is the factored ridge backend: instead of an explicit
// inverse it maintains the lower-triangular Cholesky factor L of the
// scatter matrix V_t = lambda*I + sum x x' directly, via the classic
// rank-1 cholupdate (one Givens-style rotation per column). The
// coefficient estimate theta = V^{-1} b is computed by two triangular
// solves and each confidence width sqrt(x' V^{-1} x) = ||L^{-1} x|| by
// one.
//
// Because no inverse is ever formed, there is nothing to drift: every
// operation is backward-stable on the factor, so the Sherman–Morrison
// path's drift scoring and periodic exact rebases have no counterpart
// here. The trade-off is scoring cost — a triangular solve is O(d²)
// where the explicit-inverse sparse quadratic form is O(nnz²) — which
// is why BackendSM remains the default and BackendChol is the
// robustness-first alternative for high-dimensional or long-horizon
// runs.
//
// V is positive definite by construction (lambda > 0, rank-1 additions
// only), so the diagonal of L stays strictly positive: cholupdate's
// rotations satisfy r = sqrt(L[k][k]² + w[k]²) >= L[k][k], and Forget
// scales by sqrt(1-gamma) > 0 before topping the prior back up.
type CholState struct {
	Dim    int
	L      *Matrix // lower-triangular Cholesky factor, V = L L'
	B      Vector  // response accumulator
	Lambda float64

	updates int

	// theta memoises V^{-1} b between observations, mirroring the
	// Sherman–Morrison backend's cache.
	theta      Vector
	thetaValid bool

	work       Vector        // rank-1 input w, loaded by Observe/ObserveSparse/Forget
	rotc, rots Vector        // per-column rotation coefficients of the fused cholupdate
	rotk       []int         // columns with genuine (non-identity) rotations, in order
	scratch    *BatchScratch // serial scoring scratch; sharded scorers bring their own

	// profile[i] is the skyline bound of row i: every L[i][k] with
	// k < profile[i] is an exact stored +0, untouched since the
	// sqrt(lambda)*I initialisation. Sparse contexts couple only the
	// dimensions they share an observation with, so most rows of L never
	// fill left of their own feature block and the triangular solves can
	// skip the structural zeros (see quadSolve for the bit-identity
	// argument). Maintained in O(nnz) per observation by cholUpdate:
	// a rank-1 update with first non-zero row k0 writes row r only at
	// rotation columns >= k0, and those writes can be non-zero only when
	// w[r] != 0, so profile[r] = min(profile[r], k0) for exactly those
	// rows. Rows with w[r] == 0 write +0 over +0 left of their old bound
	// (c*0 + s*0 = +0), so the stored bits below the profile never
	// change.
	profile []int
}

// NewCholState initialises L = sqrt(lambda)*I (so V = lambda*I), b = 0.
func NewCholState(dim int, lambda float64) *CholState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	cs := &CholState{
		Dim:     dim,
		L:       Identity(dim, math.Sqrt(lambda)),
		B:       NewVector(dim),
		Lambda:  lambda,
		work:    NewVector(dim),
		rotc:    NewVector(dim),
		rots:    NewVector(dim),
		rotk:    make([]int, 0, dim),
		scratch: NewBatchScratch(dim),
		profile: make([]int, dim),
	}
	cs.resetProfile()
	return cs
}

// resetProfile sets the skyline to the diagonal (L = sqrt(lambda)*I).
func (cs *CholState) resetProfile() {
	for i := range cs.profile {
		cs.profile[i] = i
	}
}

// rescanProfile recomputes the skyline from the stored factor (used
// after restoring L wholesale from a snapshot). Scanning yields the
// exact first non-zero, which is always a sound profile: the solves
// only require that everything left of the bound be an exact +0.
func (cs *CholState) rescanProfile() {
	n := cs.Dim
	for i := 0; i < n; i++ {
		f := i
		row := cs.L.Data[i*n : i*n+i]
		for k, v := range row {
			if v != 0 {
				f = k
				break
			}
		}
		cs.profile[i] = f
	}
}

// Dimension implements RidgeCore.
func (cs *CholState) Dimension() int { return cs.Dim }

// Updates reports how many observations have been folded in.
func (cs *CholState) Updates() int { return cs.updates }

// Theta returns the current coefficient estimate V^{-1} b by a forward
// solve L y = b and a back solve L' theta = y, memoised between
// observations. The returned vector is owned by the state and valid
// until the next Observe/ObserveSparse/Forget; callers must not mutate
// it.
func (cs *CholState) Theta() Vector {
	if !cs.thetaValid {
		y := cs.L.ForwardSolve(cs.B)
		cs.theta = cs.L.BackSolveTransposed(y)
		cs.thetaValid = true
	}
	return cs.theta
}

// ThetaCached implements RidgeCore; it is Theta (already memoised).
func (cs *CholState) ThetaCached() Vector { return cs.Theta() }

// Observe folds one (context, reward) observation into the state:
// b += r x and L <- cholupdate(L, x), so V = L L' absorbs + x x'.
func (cs *CholState) Observe(x Vector, reward float64) {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), cs.Dim))
	}
	cs.B.AddScaled(reward, x)
	copy(cs.work, x)
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// ObserveSparse is Observe for a sparse context, bit-identical to
// Observe on the same logical vector (the rotation loop skips columns
// whose working entry is zero, which covers the sparsity before any
// fill-in occurs).
func (cs *CholState) ObserveSparse(x SparseVector, reward float64) {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", x.Dim, cs.Dim))
	}
	cs.B.AddScaledSparse(reward, x)
	for i := range cs.work {
		cs.work[i] = 0
	}
	for k, i := range x.Idx {
		cs.work[i] = x.Val[k]
	}
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// cholUpdate applies the rank-1 update V <- V + w w' directly to the
// factor, reading w from cs.work. It leaves cs.work untouched: the
// fused sweep carries each row's evolving w entry in a register and the
// rotation coefficients in cs.rotc/cs.rots, so the input vector is
// never written back (the property CholState.Forget's diagonal sweep
// exploits to avoid rezeroing scratch).
func (cs *CholState) cholUpdate() {
	n := cs.Dim
	w := cs.work
	k0 := 0
	for k0 < n && w[k0] == 0 {
		k0++
	}
	// The update writes row r only at rotation columns, all >= k0, and
	// the write can be non-zero only where w[r] != 0 — extend exactly
	// those rows' skylines.
	for r := k0 + 1; r < n; r++ {
		if w[r] != 0 && cs.profile[r] > k0 {
			cs.profile[r] = k0
		}
	}
	cs.cholUpdateFrom(k0)
}

// cholUpdateFrom is the fused row-major form of the rank-1 cholupdate,
// for an input w (in cs.work) whose entries before k0 are all zero. The
// classic column-sweep form visits L column by column — a stride-n
// access pattern on the row-major backing array, with a division on
// every element. This form makes one pass over the rows instead: row i
// applies the rotations of columns k0..i-1 to L[i][k] and to a register
// copy of w[i] (the rotation coefficients were recorded by earlier
// rows in cs.rotc/cs.rots), then forms its own pivot rotation against
// the diagonal.
//
// The rotations are proper Givens rotations, c_k = L[k][k]/r and
// s_k = w_k/r with r = sqrt(L[k][k]² + w_k²): the element update is
// two fused multiply-adds with no division, and the serial dependency
// the row register carries (wi <- c*wi - s*lik) is a single
// multiply-add chain. The algebraically equivalent hyperbolic form
// ((lik + s*wi)/c with c = r/L[k][k]) puts a divide on that chain and
// runs several times slower latency-bound, which — not the memory
// stride — is what dominated the pre-fused kernel.
//
// Columns whose working entry is exactly zero at their pivot rotate by
// the identity; they are never entered in cs.rotk, the ordered list of
// genuine rotation columns each row sweeps, so a sparse w before
// fill-in costs only its genuine rotations — the row-major counterpart
// of the column sweep's O(1) column skip, without a per-element
// sentinel check in the dense case.
// The sweep is blocked two rows at a time: the chain through row i and
// the chain through row i+1 are independent, so pairing them keeps two
// fused multiply-adds in flight and roughly halves the latency bound a
// single chain pins the kernel to.
func (cs *CholState) cholUpdateFrom(k0 int) {
	n := cs.Dim
	w := cs.work
	data := cs.L.Data
	c, s := cs.rotc, cs.rots
	act := cs.rotk[:0]
	i := k0
	for ; i+1 < n; i += 2 {
		wi, wj := w[i], w[i+1]
		rowi := data[i*n : i*n+i]
		rowj := data[(i+1)*n : (i+1)*n+i+1]
		for _, k := range act {
			ck, sk := c[k], s[k]
			lik := rowi[k]
			rowi[k] = ck*lik + sk*wi
			wi = ck*wi - sk*lik
			ljk := rowj[k]
			rowj[k] = ck*ljk + sk*wj
			wj = ck*wj - sk*ljk
		}
		if wi != 0 {
			lii := data[i*n+i]
			r := math.Sqrt(lii*lii + wi*wi)
			ci, si := lii/r, wi/r
			c[i], s[i] = ci, si
			data[i*n+i] = r
			act = append(act, i)
			lji := rowj[i]
			rowj[i] = ci*lji + si*wj
			wj = ci*wj - si*lji
		}
		if wj != 0 {
			ljj := data[(i+1)*n+i+1]
			r := math.Sqrt(ljj*ljj + wj*wj)
			c[i+1], s[i+1] = ljj/r, wj/r
			data[(i+1)*n+i+1] = r
			act = append(act, i+1)
		}
	}
	if i < n {
		wi := w[i]
		row := data[i*n : i*n+i]
		for _, k := range act {
			ck, sk := c[k], s[k]
			lik := row[k]
			row[k] = ck*lik + sk*wi
			wi = ck*wi - sk*lik
		}
		if wi != 0 {
			lii := data[i*n+i]
			r := math.Sqrt(lii*lii + wi*wi)
			c[i], s[i] = lii/r, wi/r
			data[i*n+i] = r
		}
	}
}

// ConfidenceWidth returns sqrt(x' V^{-1} x) = ||L^{-1} x|| by one
// forward solve. quadSolve only reads its right-hand side, so x is
// passed directly (the scratch's xbuf must stay all-zero for the sparse
// paths).
func (cs *CholState) ConfidenceWidth(x Vector) float64 {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", len(x), cs.Dim))
	}
	return widthFromQuad(cs.quadSolve(x, 0, cs.scratch.z))
}

// ConfidenceWidthSparse is ConfidenceWidth for a sparse context; the
// solve starts at the context's first non-zero index (all earlier
// intermediate entries are exactly zero).
func (cs *CholState) ConfidenceWidthSparse(x SparseVector) float64 {
	return widthFromQuad(cs.quadSparse(x, cs.scratch))
}

// QuadraticFormBatch computes x' V^{-1} x for every context into out in
// one pass, reusing the state-owned solve scratch across arms — the
// per-arm triangular solve without per-arm allocation.
func (cs *CholState) QuadraticFormBatch(xs []SparseVector, out []float64) {
	cs.QuadraticFormBatchScratch(xs, out, cs.scratch)
}

// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context into
// out; each entry is bit-identical to ConfidenceWidthSparse.
func (cs *CholState) ConfidenceWidthBatch(xs []SparseVector, out []float64) {
	cs.ConfidenceWidthBatchScratch(xs, out, cs.scratch)
}

// cholPanelWidth is the number of right-hand-side columns the batched
// triangular solve forward-substitutes per pass over L. Each row of L
// is loaded once per panel instead of once per arm, so the factor —
// far larger than any cache at TPC-DS dimensionality — streams from
// memory 1/cholPanelWidth as often as the one-column solve. 16 columns
// keep the panel's active rows inside L1 (16×8 B = 2 cache lines per
// row) while amortising essentially all of the factor traffic.
const cholPanelWidth = 16

// QuadraticFormBatchScratch is the sharded batch kernel: it reads only
// the factor (immutable during scoring) and works entirely in the
// supplied scratch, so concurrent calls over disjoint shards — each
// with its own scratch — are safe and bit-identical to a serial pass.
//
// The batch is solved cholPanelWidth arms at a time through one blocked
// forward substitution (quadPanel) rather than one triangular solve per
// arm. Arms are grouped into panels by their first non-zero row
// (counting sort over the row index — deterministic, stable and
// allocation-free), because a panel's substitution must run from the
// block-minimum start row: grouping similar starts keeps the panels as
// narrow as the one-column solves they replace. Each arm's result is
// bit-identical to quadSparse on the same context regardless of how the
// batch is grouped or blocked, so sharded callers with any partition
// boundaries agree with the serial pass byte for byte.
func (cs *CholState) QuadraticFormBatchScratch(xs []SparseVector, out []float64, s *BatchScratch) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("linalg: batch length mismatch %d contexts, %d outputs", len(xs), len(out)))
	}
	if len(s.z) != cs.Dim {
		panic(fmt.Sprintf("linalg: batch scratch dimension %d, want %d", len(s.z), cs.Dim))
	}
	n := cs.Dim
	if len(s.panel) < n*cholPanelWidth {
		s.panel = NewVector(n * cholPanelWidth)
	}
	if cap(s.order) < len(xs) {
		s.order = make([]int32, len(xs))
	}
	ord := s.order[:len(xs)]
	if cap(s.cnt) < n+1 {
		s.cnt = make([]int32, n+1)
	}
	cnt := s.cnt[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, x := range xs {
		if x.Dim != n {
			panic(fmt.Sprintf("linalg: width dimension %d, want %d", x.Dim, n))
		}
		cnt[xStart(x, n)]++
	}
	var off int32
	for i := range cnt {
		c := cnt[i]
		cnt[i] = off
		off += c
	}
	for i, x := range xs {
		b := xStart(x, n)
		ord[cnt[b]] = int32(i)
		cnt[b]++
	}
	for lo := 0; lo < len(ord); lo += cholPanelWidth {
		hi := lo + cholPanelWidth
		if hi > len(ord) {
			hi = len(ord)
		}
		cs.quadPanel(xs, ord[lo:hi], out, s)
	}
}

// xStart is the first non-zero row of the context (n when empty).
func xStart(x SparseVector, n int) int {
	if len(x.Idx) == 0 {
		return n
	}
	return x.Idx[0]
}

// quadPanel computes ||L^{-1} x||² for up to cholPanelWidth contexts
// (xs[idx[0]], xs[idx[1]], ...) in one blocked forward substitution: the
// panel Z starts as the scattered right-hand sides and is transformed in
// place row by row, every row of L visited once for the whole panel.
// Underfull panels run at full width against zero-padded columns — a
// padded column's every entry stays an exact +0, so the fixed-width
// inner loops (bounds-check-free via the array-pointer views) cost only
// the dead lanes of at most one panel per shard.
//
// Bit-identity with the one-column quadSparse holds per arm: column j's
// value at row i is b_i minus the k-ascending sequence of l_ik*z_kj
// products, divided by l_ii — the identical operations in the identical
// order. Rows above an arm's first non-zero produce exact +0 entries
// (0 - l*0 = 0, 0/l_ii = +0), subtracting or accumulating which is an
// exact no-op, so starting the panel at the block-wide minimum start
// row changes nothing about any column's bits — which is also why the
// result is independent of panel grouping and block boundaries.
func (cs *CholState) quadPanel(xs []SparseVector, idx []int32, out []float64, s *BatchScratch) {
	const w = cholPanelWidth
	n := cs.Dim
	start := n
	for _, j := range idx {
		if b := xStart(xs[j], n); b < start {
			start = b
		}
	}
	if start == n {
		for _, j := range idx {
			out[j] = 0
		}
		return
	}
	p := s.panel
	for i := start * w; i < n*w; i++ {
		p[i] = 0
	}
	for c, j := range idx {
		x := xs[j]
		for k, i := range x.Idx {
			p[i*w+c] = x.Val[k]
		}
	}
	q := &s.q
	for j := range q {
		q[j] = 0
	}
	data := cs.L.Data
	for i := start; i < n; i++ {
		acc := (*[w]float64)(p[i*w:])
		f := cs.profile[i]
		if f < start {
			f = start
		}
		row := data[i*n+f : i*n+i]
		for k, lik := range row {
			zrow := (*[w]float64)(p[(f+k)*w:])
			for j := 0; j < w; j++ {
				acc[j] -= lik * zrow[j]
			}
		}
		lii := data[i*n+i]
		for j := 0; j < w; j++ {
			zj := acc[j] / lii
			acc[j] = zj
			q[j] += zj * zj
		}
	}
	for c, j := range idx {
		out[j] = q[c]
	}
}

// ConfidenceWidthBatchScratch is ConfidenceWidthBatch through
// caller-supplied scratch, with the same sharding contract.
func (cs *CholState) ConfidenceWidthBatchScratch(xs []SparseVector, out []float64, s *BatchScratch) {
	cs.QuadraticFormBatchScratch(xs, out, s)
	for i, q := range out {
		out[i] = widthFromQuad(q)
	}
}

// quadSparse scatters x into the scratch's dense buffer and solves from
// its first non-zero row, restoring the buffer to zero afterwards.
func (cs *CholState) quadSparse(x SparseVector, s *BatchScratch) float64 {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", x.Dim, cs.Dim))
	}
	if len(x.Idx) == 0 {
		return 0
	}
	for k, i := range x.Idx {
		s.xbuf[i] = x.Val[k]
	}
	q := cs.quadSolve(s.xbuf, x.Idx[0], s.z)
	for _, i := range x.Idx {
		s.xbuf[i] = 0
	}
	return q
}

// quadSolve computes ||L^{-1} b||² for the right-hand side b, which must
// be zero before row start. The intermediate z = L^{-1} b lands in the
// supplied z scratch; b is read-only here.
//
// Each row's subtraction loop runs from max(profile[i], start) — every
// skipped term is either l*z with l an exact stored +0 (left of the
// skyline) or l*z with z an exact +0 (above the start row), a product
// of magnitude zero whose subtraction cannot change the sum's bits: no
// partial sum here is ever -0 (sums start at a non-negative right-hand
// side entry, and under round-to-nearest x-y is -0 only when x already
// is), and x - (±0) leaves any non-(-0) x bit-unchanged. Skipping the
// no-op terms is therefore bit-identical to the dense sweep.
func (cs *CholState) quadSolve(b Vector, start int, z Vector) float64 {
	n := cs.Dim
	data := cs.L.Data
	var q float64
	for i := start; i < n; i++ {
		sum := b[i]
		f := cs.profile[i]
		if f < start {
			f = start
		}
		row := data[i*n+f : i*n+i]
		for k, v := range row {
			sum -= v * z[f+k]
		}
		zi := sum / data[i*n+i]
		z[i] = zi
		q += zi * zi
	}
	return q
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1], matching the Sherman–Morrison backend's semantics:
// V <- (1-gamma)*V + gamma*lambda*I, b <- (1-gamma)*b. On the factor
// this is a scale by sqrt(1-gamma) followed by one fused diagonal
// sweep: pass i applies the rank-1 update sqrt(gamma*lambda)*e_i
// starting directly at its pivot column i (every earlier column rotates
// by the identity), so no pass scans or rezeroes scratch it never
// touches — the pre-fused form rezeroed the full work vector and
// re-scanned all leading columns d times over. The flops are one
// refactorisation's worth, bit-identical to d sequential cholupdates,
// and Forget only runs on detected workload shifts.
func (cs *CholState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma >= 1 {
		cs.L = Identity(cs.Dim, math.Sqrt(cs.Lambda))
		cs.B = NewVector(cs.Dim)
		cs.resetProfile()
		cs.thetaValid = false
		return
	}
	keep := 1 - gamma
	cs.L.ScaleInPlace(math.Sqrt(keep))
	cs.B.Scale(keep)
	add := math.Sqrt(gamma * cs.Lambda)
	w := cs.work
	for j := range w {
		w[j] = 0
	}
	// cholUpdateFrom never writes its input vector, so between passes
	// only the single previously-set entry needs clearing.
	for i := 0; i < cs.Dim; i++ {
		w[i] = add
		cs.cholUpdateFrom(i)
		w[i] = 0
	}
	cs.thetaValid = false
}

// Scatter reconstructs the scatter matrix V = L L' (tests and
// diagnostics; the hot paths never form it).
func (cs *CholState) Scatter() *Matrix {
	n := cs.Dim
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			m := j
			if i < j {
				m = i
			}
			for k := 0; k <= m; k++ {
				s += cs.L.Data[i*n+k] * cs.L.Data[j*n+k]
			}
			v.Data[i*n+j] = s
		}
	}
	return v
}

// Factor exposes the maintained Cholesky factor (tests/diagnostics).
func (cs *CholState) Factor() *Matrix { return cs.L }
