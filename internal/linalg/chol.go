package linalg

import (
	"fmt"
	"math"
)

// CholState is the factored ridge backend: instead of an explicit
// inverse it maintains the lower-triangular Cholesky factor L of the
// scatter matrix V_t = lambda*I + sum x x' directly, via the classic
// rank-1 cholupdate (one Givens-style rotation per column). The
// coefficient estimate theta = V^{-1} b is computed by two triangular
// solves and each confidence width sqrt(x' V^{-1} x) = ||L^{-1} x|| by
// one.
//
// Because no inverse is ever formed, there is nothing to drift: every
// operation is backward-stable on the factor, so the Sherman–Morrison
// path's drift scoring and periodic exact rebases have no counterpart
// here. The trade-off is scoring cost — a triangular solve is O(d²)
// where the explicit-inverse sparse quadratic form is O(nnz²) — which
// is why BackendSM remains the default and BackendChol is the
// robustness-first alternative for high-dimensional or long-horizon
// runs.
//
// V is positive definite by construction (lambda > 0, rank-1 additions
// only), so the diagonal of L stays strictly positive: cholupdate's
// rotations satisfy r = sqrt(L[k][k]² + w[k]²) >= L[k][k], and Forget
// scales by sqrt(1-gamma) > 0 before topping the prior back up.
type CholState struct {
	Dim    int
	L      *Matrix // lower-triangular Cholesky factor, V = L L'
	B      Vector  // response accumulator
	Lambda float64

	updates int

	// theta memoises V^{-1} b between observations, mirroring the
	// Sherman–Morrison backend's cache.
	theta      Vector
	thetaValid bool

	work Vector // cholupdate rotation vector / solve intermediate
	xbuf Vector // densified sparse context scratch
}

// NewCholState initialises L = sqrt(lambda)*I (so V = lambda*I), b = 0.
func NewCholState(dim int, lambda float64) *CholState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	return &CholState{
		Dim:    dim,
		L:      Identity(dim, math.Sqrt(lambda)),
		B:      NewVector(dim),
		Lambda: lambda,
		work:   NewVector(dim),
		xbuf:   NewVector(dim),
	}
}

// Dimension implements RidgeCore.
func (cs *CholState) Dimension() int { return cs.Dim }

// Updates reports how many observations have been folded in.
func (cs *CholState) Updates() int { return cs.updates }

// Theta returns the current coefficient estimate V^{-1} b by a forward
// solve L y = b and a back solve L' theta = y, memoised between
// observations. The returned vector is owned by the state and valid
// until the next Observe/ObserveSparse/Forget; callers must not mutate
// it.
func (cs *CholState) Theta() Vector {
	if !cs.thetaValid {
		y := cs.L.ForwardSolve(cs.B)
		cs.theta = cs.L.BackSolveTransposed(y)
		cs.thetaValid = true
	}
	return cs.theta
}

// ThetaCached implements RidgeCore; it is Theta (already memoised).
func (cs *CholState) ThetaCached() Vector { return cs.Theta() }

// Observe folds one (context, reward) observation into the state:
// b += r x and L <- cholupdate(L, x), so V = L L' absorbs + x x'.
func (cs *CholState) Observe(x Vector, reward float64) {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), cs.Dim))
	}
	cs.B.AddScaled(reward, x)
	copy(cs.work, x)
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// ObserveSparse is Observe for a sparse context, bit-identical to
// Observe on the same logical vector (the rotation loop skips columns
// whose working entry is zero, which covers the sparsity before any
// fill-in occurs).
func (cs *CholState) ObserveSparse(x SparseVector, reward float64) {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", x.Dim, cs.Dim))
	}
	cs.B.AddScaledSparse(reward, x)
	for i := range cs.work {
		cs.work[i] = 0
	}
	for k, i := range x.Idx {
		cs.work[i] = x.Val[k]
	}
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// cholUpdate applies the rank-1 update V <- V + w w' directly to the
// factor (LINPACK dchud form): for each column k it builds the rotation
// eliminating w[k] against L[k][k] and carries it down the column.
// Consumes cs.work (the caller loads w into it; it is scratch
// afterwards). Columns with w[k] == 0 rotate by the identity and are
// skipped, so a sparse w costs O((d-k0)·d) with k0 its first non-zero.
func (cs *CholState) cholUpdate() {
	n := cs.Dim
	w := cs.work
	data := cs.L.Data
	for k := 0; k < n; k++ {
		wk := w[k]
		if wk == 0 {
			continue
		}
		lkk := data[k*n+k]
		r := math.Sqrt(lkk*lkk + wk*wk)
		c := r / lkk
		s := wk / lkk
		data[k*n+k] = r
		for i := k + 1; i < n; i++ {
			lik := (data[i*n+k] + s*w[i]) / c
			w[i] = c*w[i] - s*lik
			data[i*n+k] = lik
		}
	}
}

// ConfidenceWidth returns sqrt(x' V^{-1} x) = ||L^{-1} x|| by one
// forward solve. quadSolve only reads its right-hand side, so x is
// passed directly (xbuf must stay all-zero for the sparse paths).
func (cs *CholState) ConfidenceWidth(x Vector) float64 {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", len(x), cs.Dim))
	}
	return widthFromQuad(cs.quadSolve(x, 0))
}

// ConfidenceWidthSparse is ConfidenceWidth for a sparse context; the
// solve starts at the context's first non-zero index (all earlier
// intermediate entries are exactly zero).
func (cs *CholState) ConfidenceWidthSparse(x SparseVector) float64 {
	return widthFromQuad(cs.quadSparse(x))
}

// QuadraticFormBatch computes x' V^{-1} x for every context into out in
// one pass, reusing the solve scratch across arms — the per-arm
// triangular solve without per-arm allocation.
func (cs *CholState) QuadraticFormBatch(xs []SparseVector, out []float64) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("linalg: batch length mismatch %d contexts, %d outputs", len(xs), len(out)))
	}
	for i, x := range xs {
		out[i] = cs.quadSparse(x)
	}
}

// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context into
// out; each entry is bit-identical to ConfidenceWidthSparse.
func (cs *CholState) ConfidenceWidthBatch(xs []SparseVector, out []float64) {
	cs.QuadraticFormBatch(xs, out)
	for i, q := range out {
		out[i] = widthFromQuad(q)
	}
}

// quadSparse scatters x into the dense scratch and solves from its
// first non-zero row, restoring the scratch to zero afterwards.
func (cs *CholState) quadSparse(x SparseVector) float64 {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", x.Dim, cs.Dim))
	}
	if len(x.Idx) == 0 {
		return 0
	}
	for k, i := range x.Idx {
		cs.xbuf[i] = x.Val[k]
	}
	q := cs.quadSolve(cs.xbuf, x.Idx[0])
	for _, i := range x.Idx {
		cs.xbuf[i] = 0
	}
	return q
}

// quadSolve computes ||L^{-1} b||² for the right-hand side b, which must
// be zero before row start. The intermediate z = L^{-1} b lands in
// cs.work; b is left untouched above start and overwritten is avoided
// entirely (b is read-only here).
func (cs *CholState) quadSolve(b Vector, start int) float64 {
	n := cs.Dim
	z := cs.work
	data := cs.L.Data
	var q float64
	for i := start; i < n; i++ {
		sum := b[i]
		row := data[i*n+start : i*n+i]
		for k, v := range row {
			sum -= v * z[start+k]
		}
		zi := sum / data[i*n+i]
		z[i] = zi
		q += zi * zi
	}
	return q
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1], matching the Sherman–Morrison backend's semantics:
// V <- (1-gamma)*V + gamma*lambda*I, b <- (1-gamma)*b. On the factor
// this is a scale by sqrt(1-gamma) followed by one diagonal cholupdate
// per dimension (each skips all columns before its non-zero, so the
// total is one Cholesky-refactorisation's worth of work — and Forget
// only runs on detected workload shifts).
func (cs *CholState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma >= 1 {
		cs.L = Identity(cs.Dim, math.Sqrt(cs.Lambda))
		cs.B = NewVector(cs.Dim)
		cs.thetaValid = false
		return
	}
	keep := 1 - gamma
	cs.L.ScaleInPlace(math.Sqrt(keep))
	cs.B.Scale(keep)
	add := math.Sqrt(gamma * cs.Lambda)
	for i := 0; i < cs.Dim; i++ {
		for j := range cs.work {
			cs.work[j] = 0
		}
		cs.work[i] = add
		cs.cholUpdate()
	}
	cs.thetaValid = false
}

// Scatter reconstructs the scatter matrix V = L L' (tests and
// diagnostics; the hot paths never form it).
func (cs *CholState) Scatter() *Matrix {
	n := cs.Dim
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			m := j
			if i < j {
				m = i
			}
			for k := 0; k <= m; k++ {
				s += cs.L.Data[i*n+k] * cs.L.Data[j*n+k]
			}
			v.Data[i*n+j] = s
		}
	}
	return v
}

// Factor exposes the maintained Cholesky factor (tests/diagnostics).
func (cs *CholState) Factor() *Matrix { return cs.L }
