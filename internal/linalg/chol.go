package linalg

import (
	"fmt"
	"math"
)

// CholState is the factored ridge backend: instead of an explicit
// inverse it maintains the lower-triangular Cholesky factor L of the
// scatter matrix V_t = lambda*I + sum x x' directly, via the classic
// rank-1 cholupdate (one Givens-style rotation per column). The
// coefficient estimate theta = V^{-1} b is computed by two triangular
// solves and each confidence width sqrt(x' V^{-1} x) = ||L^{-1} x|| by
// one.
//
// Because no inverse is ever formed, there is nothing to drift: every
// operation is backward-stable on the factor, so the Sherman–Morrison
// path's drift scoring and periodic exact rebases have no counterpart
// here. The trade-off is scoring cost — a triangular solve is O(d²)
// where the explicit-inverse sparse quadratic form is O(nnz²) — which
// is why BackendSM remains the default and BackendChol is the
// robustness-first alternative for high-dimensional or long-horizon
// runs.
//
// V is positive definite by construction (lambda > 0, rank-1 additions
// only), so the diagonal of L stays strictly positive: cholupdate's
// rotations satisfy r = sqrt(L[k][k]² + w[k]²) >= L[k][k], and Forget
// scales by sqrt(1-gamma) > 0 before topping the prior back up.
type CholState struct {
	Dim    int
	L      *Matrix // lower-triangular Cholesky factor, V = L L'
	B      Vector  // response accumulator
	Lambda float64

	updates int

	// theta memoises V^{-1} b between observations, mirroring the
	// Sherman–Morrison backend's cache.
	theta      Vector
	thetaValid bool

	work       Vector        // rank-1 input w, loaded by Observe/ObserveSparse/Forget
	rotc, rots Vector        // per-column rotation coefficients of the fused cholupdate
	rotk       []int         // columns with genuine (non-identity) rotations, in order
	scratch    *BatchScratch // serial scoring scratch; sharded scorers bring their own
}

// NewCholState initialises L = sqrt(lambda)*I (so V = lambda*I), b = 0.
func NewCholState(dim int, lambda float64) *CholState {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: ridge dimension must be positive, got %d", dim))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("linalg: ridge lambda must be positive, got %g", lambda))
	}
	return &CholState{
		Dim:     dim,
		L:       Identity(dim, math.Sqrt(lambda)),
		B:       NewVector(dim),
		Lambda:  lambda,
		work:    NewVector(dim),
		rotc:    NewVector(dim),
		rots:    NewVector(dim),
		rotk:    make([]int, 0, dim),
		scratch: NewBatchScratch(dim),
	}
}

// Dimension implements RidgeCore.
func (cs *CholState) Dimension() int { return cs.Dim }

// Updates reports how many observations have been folded in.
func (cs *CholState) Updates() int { return cs.updates }

// Theta returns the current coefficient estimate V^{-1} b by a forward
// solve L y = b and a back solve L' theta = y, memoised between
// observations. The returned vector is owned by the state and valid
// until the next Observe/ObserveSparse/Forget; callers must not mutate
// it.
func (cs *CholState) Theta() Vector {
	if !cs.thetaValid {
		y := cs.L.ForwardSolve(cs.B)
		cs.theta = cs.L.BackSolveTransposed(y)
		cs.thetaValid = true
	}
	return cs.theta
}

// ThetaCached implements RidgeCore; it is Theta (already memoised).
func (cs *CholState) ThetaCached() Vector { return cs.Theta() }

// Observe folds one (context, reward) observation into the state:
// b += r x and L <- cholupdate(L, x), so V = L L' absorbs + x x'.
func (cs *CholState) Observe(x Vector, reward float64) {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", len(x), cs.Dim))
	}
	cs.B.AddScaled(reward, x)
	copy(cs.work, x)
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// ObserveSparse is Observe for a sparse context, bit-identical to
// Observe on the same logical vector (the rotation loop skips columns
// whose working entry is zero, which covers the sparsity before any
// fill-in occurs).
func (cs *CholState) ObserveSparse(x SparseVector, reward float64) {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: ridge observe dimension %d, want %d", x.Dim, cs.Dim))
	}
	cs.B.AddScaledSparse(reward, x)
	for i := range cs.work {
		cs.work[i] = 0
	}
	for k, i := range x.Idx {
		cs.work[i] = x.Val[k]
	}
	cs.cholUpdate()
	cs.updates++
	cs.thetaValid = false
}

// cholUpdate applies the rank-1 update V <- V + w w' directly to the
// factor, reading w from cs.work. It leaves cs.work untouched: the
// fused sweep carries each row's evolving w entry in a register and the
// rotation coefficients in cs.rotc/cs.rots, so the input vector is
// never written back (the property CholState.Forget's diagonal sweep
// exploits to avoid rezeroing scratch).
func (cs *CholState) cholUpdate() {
	n := cs.Dim
	w := cs.work
	k0 := 0
	for k0 < n && w[k0] == 0 {
		k0++
	}
	cs.cholUpdateFrom(k0)
}

// cholUpdateFrom is the fused row-major form of the rank-1 cholupdate,
// for an input w (in cs.work) whose entries before k0 are all zero. The
// classic column-sweep form visits L column by column — a stride-n
// access pattern on the row-major backing array, with a division on
// every element. This form makes one pass over the rows instead: row i
// applies the rotations of columns k0..i-1 to L[i][k] and to a register
// copy of w[i] (the rotation coefficients were recorded by earlier
// rows in cs.rotc/cs.rots), then forms its own pivot rotation against
// the diagonal.
//
// The rotations are proper Givens rotations, c_k = L[k][k]/r and
// s_k = w_k/r with r = sqrt(L[k][k]² + w_k²): the element update is
// two fused multiply-adds with no division, and the serial dependency
// the row register carries (wi <- c*wi - s*lik) is a single
// multiply-add chain. The algebraically equivalent hyperbolic form
// ((lik + s*wi)/c with c = r/L[k][k]) puts a divide on that chain and
// runs several times slower latency-bound, which — not the memory
// stride — is what dominated the pre-fused kernel.
//
// Columns whose working entry is exactly zero at their pivot rotate by
// the identity; they are never entered in cs.rotk, the ordered list of
// genuine rotation columns each row sweeps, so a sparse w before
// fill-in costs only its genuine rotations — the row-major counterpart
// of the column sweep's O(1) column skip, without a per-element
// sentinel check in the dense case.
// The sweep is blocked two rows at a time: the chain through row i and
// the chain through row i+1 are independent, so pairing them keeps two
// fused multiply-adds in flight and roughly halves the latency bound a
// single chain pins the kernel to.
func (cs *CholState) cholUpdateFrom(k0 int) {
	n := cs.Dim
	w := cs.work
	data := cs.L.Data
	c, s := cs.rotc, cs.rots
	act := cs.rotk[:0]
	i := k0
	for ; i+1 < n; i += 2 {
		wi, wj := w[i], w[i+1]
		rowi := data[i*n : i*n+i]
		rowj := data[(i+1)*n : (i+1)*n+i+1]
		for _, k := range act {
			ck, sk := c[k], s[k]
			lik := rowi[k]
			rowi[k] = ck*lik + sk*wi
			wi = ck*wi - sk*lik
			ljk := rowj[k]
			rowj[k] = ck*ljk + sk*wj
			wj = ck*wj - sk*ljk
		}
		if wi != 0 {
			lii := data[i*n+i]
			r := math.Sqrt(lii*lii + wi*wi)
			ci, si := lii/r, wi/r
			c[i], s[i] = ci, si
			data[i*n+i] = r
			act = append(act, i)
			lji := rowj[i]
			rowj[i] = ci*lji + si*wj
			wj = ci*wj - si*lji
		}
		if wj != 0 {
			ljj := data[(i+1)*n+i+1]
			r := math.Sqrt(ljj*ljj + wj*wj)
			c[i+1], s[i+1] = ljj/r, wj/r
			data[(i+1)*n+i+1] = r
			act = append(act, i+1)
		}
	}
	if i < n {
		wi := w[i]
		row := data[i*n : i*n+i]
		for _, k := range act {
			ck, sk := c[k], s[k]
			lik := row[k]
			row[k] = ck*lik + sk*wi
			wi = ck*wi - sk*lik
		}
		if wi != 0 {
			lii := data[i*n+i]
			r := math.Sqrt(lii*lii + wi*wi)
			c[i], s[i] = lii/r, wi/r
			data[i*n+i] = r
		}
	}
}

// ConfidenceWidth returns sqrt(x' V^{-1} x) = ||L^{-1} x|| by one
// forward solve. quadSolve only reads its right-hand side, so x is
// passed directly (the scratch's xbuf must stay all-zero for the sparse
// paths).
func (cs *CholState) ConfidenceWidth(x Vector) float64 {
	if len(x) != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", len(x), cs.Dim))
	}
	return widthFromQuad(cs.quadSolve(x, 0, cs.scratch.z))
}

// ConfidenceWidthSparse is ConfidenceWidth for a sparse context; the
// solve starts at the context's first non-zero index (all earlier
// intermediate entries are exactly zero).
func (cs *CholState) ConfidenceWidthSparse(x SparseVector) float64 {
	return widthFromQuad(cs.quadSparse(x, cs.scratch))
}

// QuadraticFormBatch computes x' V^{-1} x for every context into out in
// one pass, reusing the state-owned solve scratch across arms — the
// per-arm triangular solve without per-arm allocation.
func (cs *CholState) QuadraticFormBatch(xs []SparseVector, out []float64) {
	cs.QuadraticFormBatchScratch(xs, out, cs.scratch)
}

// ConfidenceWidthBatch computes sqrt(x' V^{-1} x) for every context into
// out; each entry is bit-identical to ConfidenceWidthSparse.
func (cs *CholState) ConfidenceWidthBatch(xs []SparseVector, out []float64) {
	cs.ConfidenceWidthBatchScratch(xs, out, cs.scratch)
}

// QuadraticFormBatchScratch is the sharded batch kernel: it reads only
// the factor (immutable during scoring) and works entirely in the
// supplied scratch, so concurrent calls over disjoint shards — each
// with its own scratch — are safe and bit-identical to a serial pass.
func (cs *CholState) QuadraticFormBatchScratch(xs []SparseVector, out []float64, s *BatchScratch) {
	if len(xs) != len(out) {
		panic(fmt.Sprintf("linalg: batch length mismatch %d contexts, %d outputs", len(xs), len(out)))
	}
	if len(s.z) != cs.Dim {
		panic(fmt.Sprintf("linalg: batch scratch dimension %d, want %d", len(s.z), cs.Dim))
	}
	for i, x := range xs {
		out[i] = cs.quadSparse(x, s)
	}
}

// ConfidenceWidthBatchScratch is ConfidenceWidthBatch through
// caller-supplied scratch, with the same sharding contract.
func (cs *CholState) ConfidenceWidthBatchScratch(xs []SparseVector, out []float64, s *BatchScratch) {
	cs.QuadraticFormBatchScratch(xs, out, s)
	for i, q := range out {
		out[i] = widthFromQuad(q)
	}
}

// quadSparse scatters x into the scratch's dense buffer and solves from
// its first non-zero row, restoring the buffer to zero afterwards.
func (cs *CholState) quadSparse(x SparseVector, s *BatchScratch) float64 {
	if x.Dim != cs.Dim {
		panic(fmt.Sprintf("linalg: width dimension %d, want %d", x.Dim, cs.Dim))
	}
	if len(x.Idx) == 0 {
		return 0
	}
	for k, i := range x.Idx {
		s.xbuf[i] = x.Val[k]
	}
	q := cs.quadSolve(s.xbuf, x.Idx[0], s.z)
	for _, i := range x.Idx {
		s.xbuf[i] = 0
	}
	return q
}

// quadSolve computes ||L^{-1} b||² for the right-hand side b, which must
// be zero before row start. The intermediate z = L^{-1} b lands in the
// supplied z scratch; b is read-only here.
func (cs *CholState) quadSolve(b Vector, start int, z Vector) float64 {
	n := cs.Dim
	data := cs.L.Data
	var q float64
	for i := start; i < n; i++ {
		sum := b[i]
		row := data[i*n+start : i*n+i]
		for k, v := range row {
			sum -= v * z[start+k]
		}
		zi := sum / data[i*n+i]
		z[i] = zi
		q += zi * zi
	}
	return q
}

// Forget discounts accumulated knowledge toward the prior by factor
// gamma in [0, 1], matching the Sherman–Morrison backend's semantics:
// V <- (1-gamma)*V + gamma*lambda*I, b <- (1-gamma)*b. On the factor
// this is a scale by sqrt(1-gamma) followed by one fused diagonal
// sweep: pass i applies the rank-1 update sqrt(gamma*lambda)*e_i
// starting directly at its pivot column i (every earlier column rotates
// by the identity), so no pass scans or rezeroes scratch it never
// touches — the pre-fused form rezeroed the full work vector and
// re-scanned all leading columns d times over. The flops are one
// refactorisation's worth, bit-identical to d sequential cholupdates,
// and Forget only runs on detected workload shifts.
func (cs *CholState) Forget(gamma float64) {
	if gamma <= 0 {
		return
	}
	if gamma >= 1 {
		cs.L = Identity(cs.Dim, math.Sqrt(cs.Lambda))
		cs.B = NewVector(cs.Dim)
		cs.thetaValid = false
		return
	}
	keep := 1 - gamma
	cs.L.ScaleInPlace(math.Sqrt(keep))
	cs.B.Scale(keep)
	add := math.Sqrt(gamma * cs.Lambda)
	w := cs.work
	for j := range w {
		w[j] = 0
	}
	// cholUpdateFrom never writes its input vector, so between passes
	// only the single previously-set entry needs clearing.
	for i := 0; i < cs.Dim; i++ {
		w[i] = add
		cs.cholUpdateFrom(i)
		w[i] = 0
	}
	cs.thetaValid = false
}

// Scatter reconstructs the scatter matrix V = L L' (tests and
// diagnostics; the hot paths never form it).
func (cs *CholState) Scatter() *Matrix {
	n := cs.Dim
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			m := j
			if i < j {
				m = i
			}
			for k := 0; k <= m; k++ {
				s += cs.L.Data[i*n+k] * cs.L.Data[j*n+k]
			}
			v.Data[i*n+j] = s
		}
	}
	return v
}

// Factor exposes the maintained Cholesky factor (tests/diagnostics).
func (cs *CholState) Factor() *Matrix { return cs.L }
