package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomRidgeWorkload drives both cores through an identical randomized
// Observe/Forget sequence: dense and sparse observations interleaved,
// with a partial Forget every forgetEvery steps (0 disables).
func randomRidgeWorkload(t *testing.T, dim, steps, forgetEvery int, seed int64) (*RidgeState, *CholState) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sm := NewRidgeState(dim, 0.25)
	chol := NewCholState(dim, 0.25)
	for s := 0; s < steps; s++ {
		x := NewVector(dim)
		for k := 0; k < dim/6+1; k++ {
			x[rng.Intn(dim)] = rng.NormFloat64()
		}
		r := rng.NormFloat64() * 10
		if s%2 == 0 {
			sm.Observe(x, r)
			chol.Observe(x, r)
		} else {
			sx := SparseFromDense(x)
			sm.ObserveSparse(sx, r)
			chol.ObserveSparse(sx, r)
		}
		if forgetEvery > 0 && s > 0 && s%forgetEvery == 0 {
			gamma := 0.3 + 0.4*rng.Float64()
			sm.Forget(gamma)
			chol.Forget(gamma)
		}
	}
	return sm, chol
}

// TestCholAgreesWithShermanMorrison is the cross-backend property test:
// on randomized workloads the factored core must reproduce the
// explicit-inverse core's theta, widths, and scatter matrix to within
// tight floating-point agreement (the two compute the same quantities
// by different factorisations, so bit-identity is not expected — 1e-8
// relative is).
func TestCholAgreesWithShermanMorrison(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range []struct{ dim, steps, forgetEvery int }{
		{8, 40, 0},
		{24, 120, 25},
		{48, 300, 60},
	} {
		sm, chol := randomRidgeWorkload(t, tc.dim, tc.steps, tc.forgetEvery, int64(tc.dim))

		thetaSM, thetaChol := sm.ThetaCached(), chol.ThetaCached()
		scale := 1 + thetaSM.MaxAbs()
		for i := range thetaSM {
			if d := math.Abs(thetaSM[i] - thetaChol[i]); d > 1e-8*scale {
				t.Fatalf("dim=%d: theta[%d] diverged: sm=%g chol=%g", tc.dim, i, thetaSM[i], thetaChol[i])
			}
		}

		if d := sm.V.MaxAbsDiff(chol.Scatter()); d > 1e-8*(1+sm.V.MaxAbsDiff(NewMatrix(tc.dim, tc.dim))) {
			t.Fatalf("dim=%d: scatter matrices diverged by %g", tc.dim, d)
		}

		for probe := 0; probe < 20; probe++ {
			x := NewVector(tc.dim)
			for k := 0; k < tc.dim/5+1; k++ {
				x[rng.Intn(tc.dim)] = rng.NormFloat64()
			}
			wSM, wChol := sm.ConfidenceWidth(x), chol.ConfidenceWidth(x)
			if math.Abs(wSM-wChol) > 1e-8*(1+wSM) {
				t.Fatalf("dim=%d probe %d: width diverged: sm=%g chol=%g", tc.dim, probe, wSM, wChol)
			}
			sx := SparseFromDense(x)
			if w := chol.ConfidenceWidthSparse(sx); math.Abs(w-wChol) > 1e-12*(1+wChol) {
				t.Fatalf("dim=%d probe %d: chol sparse width %g vs dense %g", tc.dim, probe, w, wChol)
			}
		}
	}
}

// TestRidgeCoreBatchMatchesSingleCalls pins the batched scoring API to
// the per-arm kernels bit for bit on both backends: batching is an
// optimisation, never a numeric change.
func TestRidgeCoreBatchMatchesSingleCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 32
	var contexts []SparseVector
	for i := 0; i < 40; i++ {
		x := NewVector(dim)
		for k := 0; k < 5; k++ {
			x[rng.Intn(dim)] = rng.NormFloat64()
		}
		contexts = append(contexts, SparseFromDense(x))
	}
	for _, backend := range RidgeBackends() {
		core, err := NewRidgeCore(backend, dim, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			core.ObserveSparse(contexts[i], rng.NormFloat64())
		}
		widths := make([]float64, len(contexts))
		core.ConfidenceWidthBatch(contexts, widths)
		quads := make([]float64, len(contexts))
		core.QuadraticFormBatch(contexts, quads)
		for i, x := range contexts {
			if w := core.ConfidenceWidthSparse(x); w != widths[i] {
				t.Fatalf("%s: batch width[%d]=%v, single=%v", backend, i, widths[i], w)
			}
			if w := widthFromQuad(quads[i]); w != widths[i] {
				t.Fatalf("%s: quad[%d] inconsistent with width", backend, i)
			}
		}
	}
}

// TestCholSparseObserveMatchesDense: the sparse observe path must be
// bit-identical to the dense one on the same logical vector (the same
// contract the Sherman–Morrison backend pins in sparse_test.go).
func TestCholSparseObserveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const dim = 24
	dense := NewCholState(dim, 0.25)
	sparse := NewCholState(dim, 0.25)
	for s := 0; s < 60; s++ {
		x := NewVector(dim)
		for k := 0; k < 4; k++ {
			x[rng.Intn(dim)] = rng.NormFloat64()
		}
		r := rng.NormFloat64()
		dense.Observe(x, r)
		sparse.ObserveSparse(SparseFromDense(x), r)
	}
	if d := dense.L.MaxAbsDiff(sparse.L); d != 0 {
		t.Fatalf("sparse observe drifted off the dense factor by %g", d)
	}
	td, ts := dense.Theta(), sparse.Theta()
	for i := range td {
		if td[i] != ts[i] {
			t.Fatalf("theta[%d]: dense %v sparse %v", i, td[i], ts[i])
		}
	}
}

// TestCholDenseWidthDoesNotCorruptSparseScratch pins the scratch
// discipline: a dense ConfidenceWidth call must leave the sparse paths'
// zero-initialised scatter buffer untouched, so a following sparse
// width over a DIFFERENT support reads no stale entries.
func TestCholDenseWidthDoesNotCorruptSparseScratch(t *testing.T) {
	const dim = 10
	cs := NewCholState(dim, 0.25)
	obs := NewVector(dim)
	obs[2], obs[7] = 1.5, -0.5
	cs.Observe(obs, 3)

	y := SparseVector{Dim: dim, Idx: []int{1, 6}, Val: []float64{2, -1}}
	before := cs.ConfidenceWidthSparse(y)

	dense := NewVector(dim)
	for i := range dense {
		dense[i] = float64(i + 1)
	}
	cs.ConfidenceWidth(dense)

	if after := cs.ConfidenceWidthSparse(y); after != before {
		t.Fatalf("dense width corrupted the sparse scratch: %v then %v", before, after)
	}
	q := make([]float64, 1)
	cs.QuadraticFormBatch([]SparseVector{y}, q)
	if w := widthFromQuad(q[0]); w != before {
		t.Fatalf("dense width corrupted the batch path: %v then %v", before, w)
	}
}

// TestRidgeCoresStayPositiveDefinite is the numerical-hygiene property
// test: through long randomized Observe/Forget sequences, both backends
// must keep V symmetric positive definite — the Sherman–Morrison V must
// stay exactly symmetric and factorisable, the Cholesky factor's
// diagonal strictly positive, and no width may come out NaN.
func TestRidgeCoresStayPositiveDefinite(t *testing.T) {
	const dim = 20
	sm, chol := randomRidgeWorkload(t, dim, 500, 40, 3)

	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			if sm.V.At(i, j) != sm.V.At(j, i) {
				t.Fatalf("sm V asymmetric at (%d,%d): %v vs %v", i, j, sm.V.At(i, j), sm.V.At(j, i))
			}
		}
	}
	if _, err := sm.V.Cholesky(); err != nil {
		t.Fatalf("sm V lost positive definiteness: %v", err)
	}
	for i := 0; i < dim; i++ {
		if d := chol.L.At(i, i); d <= 0 {
			t.Fatalf("chol factor diagonal %d not positive: %v", i, d)
		}
	}
	if _, err := chol.Scatter().Cholesky(); err != nil {
		t.Fatalf("chol V lost positive definiteness: %v", err)
	}

	rng := rand.New(rand.NewSource(4))
	for probe := 0; probe < 10; probe++ {
		x := NewVector(dim)
		x[rng.Intn(dim)] = rng.NormFloat64()
		if w := sm.ConfidenceWidth(x); math.IsNaN(w) || w < 0 {
			t.Fatalf("sm width NaN/negative: %v", w)
		}
		if w := chol.ConfidenceWidth(x); math.IsNaN(w) || w < 0 {
			t.Fatalf("chol width NaN/negative: %v", w)
		}
	}
}

// TestWidthClampNearSingular exercises the widthFromQuad clamp with an
// adversarial near-singular state: after folding in enormous collinear
// observations, the maintained inverse's tiny quadratic forms sit at
// the edge of floating-point cancellation, and a corrupted inverse (the
// kind of drift the rebase machinery exists to bound) pushes them
// negative outright. The width must clamp to 0, never NaN.
func TestWidthClampNearSingular(t *testing.T) {
	const dim = 6
	rs := NewRidgeState(dim, 0.25)
	rs.DriftThreshold = -1 // adaptive rebase off: keep the drifted inverse
	rs.RebaseEvery = 1 << 30
	x := NewVector(dim)
	x[0] = 1e8
	for i := 0; i < 200; i++ {
		rs.Observe(x, 1)
	}
	if w := rs.ConfidenceWidth(x); math.IsNaN(w) || w < 0 {
		t.Fatalf("near-singular width: %v", w)
	}

	// Adversarial corruption: a drifted inverse whose quadratic form for
	// e_0 is a tiny negative number. sqrt would return NaN; the clamp
	// must return exactly 0.
	rs.VInv.Set(0, 0, -1e-18)
	probe := NewVector(dim)
	probe[0] = 1
	if w := rs.ConfidenceWidth(probe); w != 0 {
		t.Fatalf("clamped width = %v, want exactly 0", w)
	}
	if w := rs.ConfidenceWidthSparse(SparseFromDense(probe)); w != 0 {
		t.Fatalf("clamped sparse width = %v, want exactly 0", w)
	}
	if got := widthFromQuad(-1e-300); got != 0 {
		t.Fatalf("widthFromQuad(-1e-300) = %v, want 0", got)
	}
}

// TestThetaMemoisation pins the Sherman–Morrison theta cache: repeated
// calls between observations return the identical cached vector without
// recomputation, and any state change (Observe, ObserveSparse, Forget)
// invalidates it.
func TestThetaMemoisation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 12
	rs := NewRidgeState(dim, 0.25)
	x := NewVector(dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rs.Observe(x, 3)

	t1 := rs.ThetaCached()
	t2 := rs.ThetaCached()
	if &t1[0] != &t2[0] {
		t.Fatal("repeated ThetaCached calls recomputed instead of returning the cache")
	}
	if want := rs.VInv.MulVec(rs.B); !t1.Equal(want, 0) {
		t.Fatalf("cached theta %v != V^{-1} b %v", t1, want)
	}

	// An observation must invalidate the cache: theta changes, and the
	// cache serves the new value.
	y := NewVector(dim)
	y[3] = 2
	rs.Observe(y, -5)
	t3 := rs.ThetaCached()
	if t3.Equal(t1, 0) {
		t.Fatal("theta unchanged after observation — stale cache served")
	}
	if want := rs.VInv.MulVec(rs.B); !t3.Equal(want, 0) {
		t.Fatalf("post-observe theta %v != V^{-1} b %v", t3, want)
	}

	rs.ObserveSparse(SparseFromDense(y), 2)
	if rs.ThetaCached().Equal(t3, 0) {
		t.Fatal("theta unchanged after sparse observation — stale cache served")
	}

	before := rs.ThetaCached().Clone()
	rs.Forget(0.9)
	if rs.ThetaCached().Equal(before, 0) {
		t.Fatal("theta unchanged after Forget — stale cache served")
	}

	// The Cholesky backend honours the same contract.
	cs := NewCholState(dim, 0.25)
	cs.Observe(x, 3)
	c1 := cs.ThetaCached()
	if c2 := cs.ThetaCached(); &c1[0] != &c2[0] {
		t.Fatal("chol ThetaCached recomputed between observations")
	}
	cs.Observe(y, -5)
	if cs.ThetaCached().Equal(c1, 0) {
		t.Fatal("chol theta unchanged after observation — stale cache served")
	}
}

// TestSinceRebaseCounter pins the separated counter semantics: Updates
// counts observations over the state's lifetime and never resets, while
// SinceRebase counts rank-1 updates absorbed by the current inverse and
// is zeroed by every rebase — including the one inside Forget, which
// previously left the fixed cadence phase-locked to the lifetime count.
func TestSinceRebaseCounter(t *testing.T) {
	const dim = 4
	rs := NewRidgeState(dim, 0.25)
	rs.RebaseEvery = 4
	rs.DriftThreshold = -1 // fixed cadence only
	x := NewVector(dim)
	x[0] = 1

	observe := func(n int) {
		for i := 0; i < n; i++ {
			rs.Observe(x, 1)
		}
	}

	observe(3)
	if rs.Updates() != 3 || rs.SinceRebase() != 3 {
		t.Fatalf("after 3 observes: updates=%d sinceRebase=%d, want 3/3", rs.Updates(), rs.SinceRebase())
	}

	rs.Forget(0.5)
	if rs.Updates() != 3 {
		t.Fatalf("Forget changed Updates: %d, want 3 (observations folded in)", rs.Updates())
	}
	if rs.SinceRebase() != 0 {
		t.Fatalf("Forget's internal rebase left SinceRebase=%d, want 0", rs.SinceRebase())
	}

	// The fixed cadence now runs from the Forget rebase: three more
	// updates stay under the every=4 window (the old updates%4 semantics
	// would have rebased at lifetime update 4), the fourth fires it.
	observe(3)
	if rs.SinceRebase() != 3 {
		t.Fatalf("3 observes after Forget: sinceRebase=%d, want 3", rs.SinceRebase())
	}
	observe(1)
	if rs.SinceRebase() != 0 {
		t.Fatalf("cadence rebase did not fire: sinceRebase=%d, want 0", rs.SinceRebase())
	}
	if rs.Updates() != 7 {
		t.Fatalf("updates=%d, want 7", rs.Updates())
	}

	// A drift-triggered rebase resets the cadence window too.
	rs2 := NewRidgeState(dim, 0.25)
	rs2.RebaseEvery = 1 << 30
	rs2.DriftThreshold = 1e-9 // first update trips it
	rs2.Observe(x, 1)
	if rs2.SinceRebase() != 0 {
		t.Fatalf("drift rebase left sinceRebase=%d, want 0", rs2.SinceRebase())
	}
	if rs2.Updates() != 1 {
		t.Fatalf("drift rebase changed updates=%d, want 1", rs2.Updates())
	}
}

// TestNewRidgeCoreBackends pins the registry surface: both names (and
// the empty default) construct, anything else errors.
func TestNewRidgeCoreBackends(t *testing.T) {
	if _, err := NewRidgeCore("", 4, 0.25); err != nil {
		t.Fatal(err)
	}
	for _, name := range RidgeBackends() {
		core, err := NewRidgeCore(name, 4, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if core.Dimension() != 4 {
			t.Fatalf("%s: dimension %d", name, core.Dimension())
		}
		if !ValidRidgeBackend(name) {
			t.Fatalf("%s not valid?", name)
		}
	}
	if _, err := NewRidgeCore("qr", 4, 0.25); err == nil {
		t.Fatal("unknown backend constructed")
	}
	if ValidRidgeBackend("qr") {
		t.Fatal("unknown backend validated")
	}
}

// TestCholForgetBounds pins the factored Forget edge cases: gamma <= 0
// is a no-op, gamma >= 1 resets to the prior exactly.
func TestCholForgetBounds(t *testing.T) {
	const dim = 6
	cs := NewCholState(dim, 0.25)
	x := NewVector(dim)
	x[1], x[4] = 2, -1
	cs.Observe(x, 7)

	before := cs.L.Clone()
	cs.Forget(0)
	if cs.L.MaxAbsDiff(before) != 0 {
		t.Fatal("Forget(0) changed the factor")
	}

	cs.Forget(1.5)
	want := Identity(dim, math.Sqrt(0.25))
	if cs.L.MaxAbsDiff(want) != 0 {
		t.Fatal("Forget(>=1) did not reset the factor to sqrt(lambda)*I")
	}
	if cs.B.MaxAbs() != 0 {
		t.Fatal("Forget(>=1) did not clear b")
	}
	if cs.ThetaCached().MaxAbs() != 0 {
		t.Fatal("theta after full forget not zero")
	}
}
