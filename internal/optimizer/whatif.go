package optimizer

import (
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// WhatIfCost returns the optimiser's estimated cost of the query under a
// hypothetical configuration — the classic "what-if" interface
// (Chaudhuri & Narasayya, SIGMOD'98) that offline design tools use as
// their sole source of truth. The hypothetical indexes are never
// materialised.
func (o *Optimizer) WhatIfCost(q *query.Query, cfg *index.Config) (float64, error) {
	plan, err := o.ChoosePlan(q, cfg)
	if err != nil {
		return 0, err
	}
	return plan.EstCost, nil
}

// WhatIfWorkloadCost sums WhatIfCost over a workload; WhatIfCalls reports
// how many optimiser invocations that took, which the PDTool baseline
// converts into recommendation time.
func (o *Optimizer) WhatIfWorkloadCost(queries []*query.Query, cfg *index.Config) (total float64, calls int, err error) {
	for _, q := range queries {
		c, err := o.WhatIfCost(q, cfg)
		if err != nil {
			return 0, calls, err
		}
		total += c
		calls++
	}
	return total, calls, nil
}
