package optimizer

import (
	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/runner"
)

// WhatIfCost returns the optimiser's estimated cost of the query under a
// hypothetical configuration — the classic "what-if" interface
// (Chaudhuri & Narasayya, SIGMOD'98) that offline design tools use as
// their sole source of truth. The hypothetical indexes are never
// materialised.
func (o *Optimizer) WhatIfCost(q *query.Query, cfg *index.Config) (float64, error) {
	plan, err := o.ChoosePlan(q, cfg)
	if err != nil {
		return 0, err
	}
	return plan.EstCost, nil
}

// WhatIfWorkloadCost sums WhatIfCost over a workload; WhatIfCalls reports
// how many optimiser invocations that took, which the PDTool baseline
// converts into recommendation time.
func (o *Optimizer) WhatIfWorkloadCost(queries []*query.Query, cfg *index.Config) (total float64, calls int, err error) {
	for _, q := range queries {
		c, err := o.WhatIfCost(q, cfg)
		if err != nil {
			return 0, calls, err
		}
		total += c
		calls++
	}
	return total, calls, nil
}

// WhatIfWorkloadCostParallel is WhatIfWorkloadCost priced over a
// runner.Sharded worker pool — byte-identical to the serial path at any
// worker count, including the early-return error semantics (calls counts
// the queries successfully priced before the first failing query, in
// workload order). Safe with the plan cache enabled: the cache takes a
// per-query-entry lock, so shards touching disjoint queries never
// contend. workers <= 1 (or a trivially small workload) runs serial.
func (o *Optimizer) WhatIfWorkloadCostParallel(queries []*query.Query, cfg *index.Config, workers int) (total float64, calls int, err error) {
	n := len(queries)
	if workers <= 1 || n < 2 {
		return o.WhatIfWorkloadCost(queries, cfg)
	}
	costs := make([]float64, n)
	errs := make([]error, n)
	runner.Sharded(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			costs[i], errs[i] = o.WhatIfCost(queries[i], cfg)
		}
	})
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return 0, calls, errs[i]
		}
		total += costs[i]
		calls++
	}
	return total, calls, nil
}
