package optimizer

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

// cacheTestQueries is a workload spanning the planner's decision space:
// single-table scans, seekable filters, covering opportunities, and
// 2-/3-way joins where both hash and index-NL can win.
func cacheTestQueries() []*query.Query {
	return []*query.Query{
		{
			TemplateID: 1,
			Tables:     []string{"orders"},
			Filters: []query.Predicate{
				{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 100, Hi: 400},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
		{
			TemplateID: 2,
			Tables:     []string{"orders"},
			Filters: []query.Predicate{
				{Table: "orders", Column: "o_custkey", Op: query.OpEq, Lo: 17, Hi: 17},
				{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 900},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
		{
			TemplateID: 3,
			Tables:     []string{"customer"},
			Filters: []query.Predicate{
				{Table: "customer", Column: "c_segment", Op: query.OpEq, Lo: 2, Hi: 2},
			},
			Payload: []query.ColumnRef{{Table: "customer", Column: "c_name"}},
		},
		{
			TemplateID: 4,
			Tables:     []string{"orders", "customer"},
			Filters: []query.Predicate{
				{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 3, Hi: 3},
			},
			Joins: []query.Join{
				{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
		{
			TemplateID: 5,
			Tables:     []string{"orders", "customer", "part"},
			Filters: []query.Predicate{
				{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 7, Hi: 7},
				{Table: "part", Column: "p_size", Op: query.OpRange, Lo: 1, Hi: 15},
			},
			Joins: []query.Join{
				{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
				{LeftTable: "orders", LeftColumn: "o_partkey", RightTable: "part", RightColumn: "p_id"},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
	}
}

// cacheTestPool is the candidate index pool the mutation property test
// draws from: seekable, covering, composite, NL-enabling, and
// deliberately irrelevant indexes on every table.
func cacheTestPool() []*index.Index {
	return []*index.Index{
		index.New("orders", []string{"o_date"}, nil),
		index.New("orders", []string{"o_custkey"}, []string{"o_total"}),
		index.New("orders", []string{"o_custkey", "o_date"}, []string{"o_total"}),
		index.New("orders", []string{"o_partkey"}, nil),
		index.New("orders", []string{"o_status"}, []string{"o_comment"}),
		index.New("orders", []string{"o_priority"}, nil),
		index.New("customer", []string{"c_nation"}, nil),
		index.New("customer", []string{"c_nation", "c_segment"}, []string{"c_name"}),
		index.New("customer", []string{"c_segment"}, []string{"c_name"}),
		index.New("customer", []string{"c_name"}, nil),
		index.New("part", []string{"p_size"}, nil),
		index.New("part", []string{"p_brand", "p_size"}, nil),
	}
}

// TestPlanCacheConsistencyRandomMutations is the cache-consistency
// property test: a randomized add/drop/no-op mutation walk over a shared
// Config, pinning the cached optimiser byte-identical to the uncached
// reference on every query after every step — including repeat calls
// (hit path) and nil-config calls.
func TestPlanCacheConsistencyRandomMutations(t *testing.T) {
	schema, _ := testdb.Build(1)
	cm := engine.DefaultCostModel()
	cached := New(schema, cm)
	ref := NewUncached(schema, cm)
	queries := cacheTestQueries()
	pool := cacheTestPool()

	check := func(step int, cfg *index.Config) {
		t.Helper()
		for _, q := range queries {
			want, werr := ref.ChoosePlan(q, cfg)
			for pass := 0; pass < 2; pass++ { // second pass must hit
				got, gerr := cached.ChoosePlan(q, cfg)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("step %d q%d pass %d: err mismatch: cached %v, uncached %v",
						step, q.TemplateID, pass, gerr, werr)
				}
				if werr != nil {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d q%d pass %d: plan mismatch:\ncached:   %+v\nuncached: %+v",
						step, q.TemplateID, pass, got, want)
				}
				if math.Float64bits(got.EstCost) != math.Float64bits(want.EstCost) {
					t.Fatalf("step %d q%d: cost bits differ: %v vs %v",
						step, q.TemplateID, got.EstCost, want.EstCost)
				}
			}
		}
	}

	check(-1, nil) // nil config never takes the epoch fast path
	cfg := index.NewConfig()
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 300; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // add (no-op when already present)
			cfg.Add(pool[rng.Intn(len(pool))])
		case op < 8: // drop (no-op when absent)
			cfg.Drop(pool[rng.Intn(len(pool))].ID())
		default: // pure no-op step: re-check under unchanged content
		}
		check(step, cfg)
	}

	st := cached.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("mutation walk did not exercise all cache paths: %+v", st)
	}
	if ref.CacheStats() != (PlanCacheStats{}) {
		t.Fatalf("uncached optimiser reports stats: %+v", ref.CacheStats())
	}
}

// TestPlanCacheHitMissAccounting pins the counter semantics: miss on
// first sight, epoch fast-path hit on unchanged config, fingerprint hit
// (plus one invalidation) after irrelevant-index churn, miss after a
// relevant change.
func TestPlanCacheHitMissAccounting(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	q := cacheTestQueries()[1] // orders: o_custkey eq + o_date range
	cfg := index.NewConfig()

	assertStats := func(label string, hits, misses, invals uint64) {
		t.Helper()
		if st := o.CacheStats(); st.Hits != hits || st.Misses != misses || st.Invalidations != invals {
			t.Fatalf("%s: stats = %+v, want {%d %d %d}", label, st, hits, misses, invals)
		}
	}

	if _, err := o.ChoosePlan(q, cfg); err != nil {
		t.Fatal(err)
	}
	assertStats("cold", 0, 1, 0)
	if _, err := o.ChoosePlan(q, cfg); err != nil {
		t.Fatal(err)
	}
	assertStats("epoch fast path", 1, 1, 0)

	// An index that fails every relevance screen for q (no seek prefix on
	// q's predicates, not covering, leading key not a join column):
	// content changed, so the table rescans (one invalidation), but the
	// fingerprint is unchanged and the plan is re-served from cache.
	cfg.Add(index.New("orders", []string{"o_priority"}, nil))
	if _, err := o.ChoosePlan(q, cfg); err != nil {
		t.Fatal(err)
	}
	assertStats("irrelevant churn", 2, 1, 1)

	// A relevant index changes the fingerprint: miss, fresh search.
	cfg.Add(index.New("orders", []string{"o_custkey", "o_date"}, nil))
	if _, err := o.ChoosePlan(q, cfg); err != nil {
		t.Fatal(err)
	}
	assertStats("relevant add", 2, 2, 2)

	// Dropping back restores a previously-seen table signature: the memo
	// swaps the relevant set without a rescan (no invalidation) and the
	// restored fingerprint hits the plan cache.
	cfg.Drop(index.New("orders", []string{"o_custkey", "o_date"}, nil).ID())
	if _, err := o.ChoosePlan(q, cfg); err != nil {
		t.Fatal(err)
	}
	assertStats("relevant drop back", 3, 2, 2)
}

// TestPlanCacheErrorsNotCached pins that error results are re-derived
// with identical text on every call and never enter the cache.
func TestPlanCacheErrorsNotCached(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	bad := []*query.Query{
		{},
		{Tables: []string{"ghost"}},
		{TemplateID: 9, Tables: []string{"orders", "customer"}}, // disconnected
	}
	for _, q := range bad {
		_, err1 := o.ChoosePlan(q, nil)
		_, err2 := o.ChoosePlan(q, nil)
		if err1 == nil || err2 == nil {
			t.Fatalf("bad query %+v accepted", q)
		}
		if err1.Error() != err2.Error() {
			t.Fatalf("error text drifted between calls: %q vs %q", err1, err2)
		}
	}
	if st := o.CacheStats(); st.Hits != 0 {
		t.Fatalf("error paths produced cache hits: %+v", st)
	}
}

// TestWhatIfWorkloadCostParallelMatchesSerial pins the parallel pricing
// path byte-identical to serial at several worker counts, including the
// early-return error semantics.
func TestWhatIfWorkloadCostParallelMatchesSerial(t *testing.T) {
	schema, _ := testdb.Build(1)
	cm := engine.DefaultCostModel()
	o := New(schema, cm)
	cfg := index.NewConfig()
	for _, ix := range cacheTestPool()[:6] {
		cfg.Add(ix)
	}
	var wl []*query.Query
	for i := 0; i < 5; i++ {
		wl = append(wl, cacheTestQueries()...) // fresh instances each repeat
	}

	wantTotal, wantCalls, wantErr := o.WhatIfWorkloadCost(wl, cfg)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		total, calls, err := o.WhatIfWorkloadCostParallel(wl, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(total) != math.Float64bits(wantTotal) || calls != wantCalls {
			t.Fatalf("workers=%d: total=%v calls=%d, want %v/%d", workers, total, calls, wantTotal, wantCalls)
		}
	}

	// Error semantics: calls counts successes before the first failing
	// query in workload order, on both paths.
	broken := append(append([]*query.Query{}, wl[:3]...), &query.Query{Tables: []string{"ghost"}})
	broken = append(broken, wl[3:]...)
	_, wantCalls, wantErr = o.WhatIfWorkloadCost(broken, cfg)
	if wantErr == nil {
		t.Fatal("broken workload priced without error")
	}
	for _, workers := range []int{2, 4} {
		_, calls, err := o.WhatIfWorkloadCostParallel(broken, cfg, workers)
		if err == nil || err.Error() != wantErr.Error() || calls != wantCalls {
			t.Fatalf("workers=%d: calls=%d err=%v, want calls=%d err=%v", workers, calls, err, wantCalls, wantErr)
		}
	}
}

// TestPlanCacheSharedAcrossConfigsByFingerprint pins the headline
// economy: two different Config objects with the same relevant indexes
// for a query share one cached plan.
func TestPlanCacheSharedAcrossConfigsByFingerprint(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	q := cacheTestQueries()[0] // orders o_date range

	a := index.NewConfig()
	a.Add(index.New("orders", []string{"o_date"}, nil))
	b := a.Clone()
	b.Add(index.New("customer", []string{"c_nation"}, nil)) // other table only

	p1, err := o.ChoosePlan(q, a)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := o.ChoosePlan(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("equal fingerprints did not share one cached plan")
	}
	if st := o.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}
