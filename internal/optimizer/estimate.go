// Package optimizer implements the simulated query optimiser: cardinality
// estimation over single-column statistics under the classic (and
// deliberately retained) uniformity and attribute-value-independence
// assumptions, cost-based access-path and join selection, and the
// "what-if" interface used by the offline physical design tool.
//
// The estimator is *exact in expectation* on uniform, independent columns
// and systematically wrong on skewed or correlated ones — the precise
// failure mode the paper attributes to commercial optimisers (Section I):
// "commercial DBMSs often assume uniform data distributions and attribute
// value independence".
package optimizer

import (
	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// Selectivity estimates the fraction of the table's rows matching one
// predicate using only min/max/NDV statistics and uniformity.
func Selectivity(meta *catalog.Table, p query.Predicate) float64 {
	col, ok := meta.Column(p.Column)
	if !ok {
		return 1
	}
	st := col.Stats
	span := float64(st.Max-st.Min) + 1
	if span <= 0 {
		return 1
	}
	var sel float64
	switch p.Op {
	case query.OpEq:
		if st.NDV <= 0 {
			return 1
		}
		sel = 1 / float64(st.NDV)
	case query.OpRange:
		lo, hi := p.Lo, p.Hi
		if lo < st.Min {
			lo = st.Min
		}
		if hi > st.Max {
			hi = st.Max
		}
		if hi < lo {
			return 0
		}
		sel = (float64(hi-lo) + 1) / span
	case query.OpLt:
		sel = float64(p.Hi-st.Min) / span
	case query.OpGt:
		sel = float64(st.Max-p.Lo) / span
	default:
		sel = 1
	}
	return clamp01(sel)
}

// ConjunctionSelectivity multiplies per-predicate selectivities — the
// attribute-value-independence assumption.
func ConjunctionSelectivity(meta *catalog.Table, preds []query.Predicate) float64 {
	sel := 1.0
	for _, p := range preds {
		if p.Table != meta.Name {
			continue
		}
		sel *= Selectivity(meta, p)
	}
	return clamp01(sel)
}

// EstimateFilteredRows estimates the logical rows of the table surviving
// its local filter predicates.
func EstimateFilteredRows(meta *catalog.Table, preds []query.Predicate) float64 {
	return ConjunctionSelectivity(meta, preds) * float64(meta.RowCount)
}

// JoinCardinality estimates |L join R| with the standard containment
// assumption |L| * |R| / max(ndv(lcol), ndv(rcol)), corrected for the
// sampled statistics: NDVs are computed on the stored sample while row
// counts are logical, so the estimate divides by the smaller side's
// sample multiplier to stay commensurate with the sampled ground truth
// (out_logical = out_stored * max(mult) algebra; see DESIGN.md).
func JoinCardinality(lRows float64, lMeta *catalog.Table, lCol string,
	rRows float64, rMeta *catalog.Table, rCol string) float64 {
	maxNDV := 1.0
	if c, ok := lMeta.Column(lCol); ok && float64(c.Stats.NDV) > maxNDV {
		maxNDV = float64(c.Stats.NDV)
	}
	if c, ok := rMeta.Column(rCol); ok && float64(c.Stats.NDV) > maxNDV {
		maxNDV = float64(c.Stats.NDV)
	}
	minMult := sampleMult(lMeta)
	if m := sampleMult(rMeta); m < minMult {
		minMult = m
	}
	out := lRows * rRows / (maxNDV * minMult)
	if out < 0 {
		return 0
	}
	return out
}

func sampleMult(meta *catalog.Table) float64 {
	if meta.SampleMult <= 0 {
		return 1
	}
	return meta.SampleMult
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
