package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

func TestSelectivityOperators(t *testing.T) {
	schema, _ := testdb.Build(1)
	meta := schema.MustTable("orders")
	// o_date is uniform over [0, 2000].
	eq := Selectivity(meta, query.Predicate{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 100, Hi: 100})
	col, _ := meta.Column("o_date")
	if want := 1 / float64(col.Stats.NDV); math.Abs(eq-want) > 1e-12 {
		t.Fatalf("eq sel = %v, want %v", eq, want)
	}
	rng := Selectivity(meta, query.Predicate{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 2000})
	if rng < 0.99 || rng > 1 {
		t.Fatalf("full-range sel = %v", rng)
	}
	empty := Selectivity(meta, query.Predicate{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 5000, Hi: 6000})
	if empty != 0 {
		t.Fatalf("out-of-domain range sel = %v", empty)
	}
	lt := Selectivity(meta, query.Predicate{Table: "orders", Column: "o_date", Op: query.OpLt, Hi: col.Stats.Min + (col.Stats.Max-col.Stats.Min)/2})
	if lt < 0.4 || lt > 0.6 {
		t.Fatalf("half-range lt sel = %v", lt)
	}
	gt := Selectivity(meta, query.Predicate{Table: "orders", Column: "o_date", Op: query.OpGt, Lo: col.Stats.Max})
	if gt != 0 {
		t.Fatalf("gt max sel = %v", gt)
	}
	missing := Selectivity(meta, query.Predicate{Table: "orders", Column: "ghost", Op: query.OpEq})
	if missing != 1 {
		t.Fatalf("missing column sel = %v", missing)
	}
}

func TestUniformEstimateCloseToTruth(t *testing.T) {
	schema, db := testdb.Build(2)
	meta := schema.MustTable("orders")
	orders := db.MustTable("orders")
	p := []query.Predicate{{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 500}}
	est := ConjunctionSelectivity(meta, p)
	truth := orders.Selectivity(p)
	if math.Abs(est-truth) > 0.05 {
		t.Fatalf("uniform estimate %v far from truth %v", est, truth)
	}
}

func TestSkewEstimateUnderestimatesHotValue(t *testing.T) {
	schema, db := testdb.Build(2)
	meta := schema.MustTable("orders")
	orders := db.MustTable("orders")
	// o_status is zipf(2): value at domain lo is hot.
	hot := []query.Predicate{{Table: "orders", Column: "o_status", Op: query.OpEq, Lo: 0, Hi: 0}}
	est := ConjunctionSelectivity(meta, hot)
	truth := orders.Selectivity(hot)
	if truth < 5*est {
		t.Fatalf("expected gross underestimate on hot value: est %v, truth %v", est, truth)
	}
}

func TestAVIUnderestimatesCorrelatedConjunction(t *testing.T) {
	schema, db := testdb.Build(2)
	meta := schema.MustTable("orders")
	orders := db.MustTable("orders")
	// o_priority tracks o_status: conjunction truth is close to the
	// single-predicate truth but AVI multiplies the selectivities.
	preds := []query.Predicate{
		{Table: "orders", Column: "o_status", Op: query.OpRange, Lo: 0, Hi: 5},
		{Table: "orders", Column: "o_priority", Op: query.OpRange, Lo: 0, Hi: 5},
	}
	est := ConjunctionSelectivity(meta, preds)
	truth := orders.Selectivity(preds)
	if truth < 2*est {
		t.Fatalf("expected AVI underestimate: est %v, truth %v", est, truth)
	}
}

func TestBestAccessPrefersIndexAtScale(t *testing.T) {
	schema, _ := testdb.BuildScaled(1, 1000, 20000)
	o := New(schema, engine.DefaultCostModel())
	q := &query.Query{
		Tables: []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 100, Hi: 100},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
	cfg := index.NewConfig()
	cfg.Add(index.New("orders", []string{"o_date"}, []string{"o_total"}))
	plan, err := o.ChoosePlan(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driver.Index == nil {
		t.Fatalf("expected index access, got %s", plan.Driver)
	}
	if plan.Driver.Kind != engine.AccessIndexOnly {
		t.Fatalf("expected covering access, got %s", plan.Driver.Kind)
	}
	// Without the index: seq scan.
	plan2, err := o.ChoosePlan(q, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Driver.Kind != engine.AccessSeqScan {
		t.Fatalf("expected seq scan, got %s", plan2.Driver)
	}
	if plan.EstCost >= plan2.EstCost {
		t.Fatal("index plan should be estimated cheaper")
	}
}

func TestChoosePlanJoinOrderValid(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	q := &query.Query{
		Tables: []string{"orders", "customer", "part"},
		Filters: []query.Predicate{
			{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 3, Hi: 3},
			{Table: "part", Column: "p_size", Op: query.OpRange, Lo: 1, Hi: 10},
		},
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
			{LeftTable: "orders", LeftColumn: "o_partkey", RightTable: "part", RightColumn: "p_id"},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
	plan, err := o.ChoosePlan(q, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	// Every step's outer table must already be in the pipeline.
	inPipe := map[string]bool{plan.Driver.Table: true}
	for _, s := range plan.Steps {
		if !inPipe[s.OuterTable] {
			t.Fatalf("step outer %q not in pipeline", s.OuterTable)
		}
		inPipe[s.InnerTable] = true
	}
	if len(inPipe) != 3 {
		t.Fatalf("not all tables joined: %v", inPipe)
	}
}

func TestChoosePlanExecutes(t *testing.T) {
	schema, db := testdb.Build(1)
	cm := engine.DefaultCostModel()
	o := New(schema, cm)
	q := &query.Query{
		Tables: []string{"orders", "customer"},
		Filters: []query.Predicate{
			{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 3, Hi: 3},
		},
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
	plan, err := o.ChoosePlan(q, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.Execute(db, plan, cm)
	if err != nil {
		t.Fatalf("optimiser plan failed to execute: %v", err)
	}
	if st.TotalSec <= 0 {
		t.Fatal("non-positive execution time")
	}
}

func TestNLInnerAccessClusteredPK(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	meta := schema.MustTable("customer")
	q := &query.Query{Tables: []string{"customer"}}
	acc, ok := o.nlInnerAccess(q, meta, "c_id", index.NewConfig())
	if !ok || acc.Kind != engine.AccessClusteredSeek {
		t.Fatalf("expected clustered seek, got %v ok=%v", acc, ok)
	}
	// Non-key column without index: no NL access.
	if _, ok := o.nlInnerAccess(q, meta, "c_nation", index.NewConfig()); ok {
		t.Fatal("NL access without index should fail")
	}
	// Secondary index with matching leading column enables NL.
	cfg := index.NewConfig()
	ix := index.New("customer", []string{"c_nation"}, nil)
	cfg.Add(ix)
	acc, ok = o.nlInnerAccess(q, meta, "c_nation", cfg)
	if !ok || acc.Index == nil || acc.Index.ID() != ix.ID() {
		t.Fatalf("expected secondary NL access, got %v ok=%v", acc, ok)
	}
}

func TestWhatIfCostDropsWithUsefulIndex(t *testing.T) {
	schema, _ := testdb.BuildScaled(1, 1000, 20000)
	o := New(schema, engine.DefaultCostModel())
	q := &query.Query{
		Tables: []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 50, Hi: 50},
		},
	}
	base, err := o.WhatIfCost(q, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := index.NewConfig()
	cfg.Add(index.New("orders", []string{"o_date"}, nil))
	with, err := o.WhatIfCost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with >= base {
		t.Fatalf("what-if with index (%v) not cheaper than without (%v)", with, base)
	}
}

func TestWhatIfWorkloadCost(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	qs := []*query.Query{
		{Tables: []string{"orders"}},
		{Tables: []string{"customer"}},
	}
	total, calls, err := o.WhatIfWorkloadCost(qs, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || total <= 0 {
		t.Fatalf("total=%v calls=%d", total, calls)
	}
}

func TestChoosePlanErrors(t *testing.T) {
	schema, _ := testdb.Build(1)
	o := New(schema, engine.DefaultCostModel())
	if _, err := o.ChoosePlan(&query.Query{}, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := o.ChoosePlan(&query.Query{Tables: []string{"ghost"}}, nil); err == nil {
		t.Fatal("unknown table accepted")
	}
	disconnected := &query.Query{Tables: []string{"orders", "customer"}}
	if _, err := o.ChoosePlan(disconnected, nil); err == nil {
		t.Fatal("disconnected join graph accepted")
	}
}

// Property: selectivity estimates always land in [0, 1], and conjunction
// estimates never exceed the smallest single-predicate estimate (AVI).
func TestQuickSelectivityBounds(t *testing.T) {
	schema, _ := testdb.Build(9)
	meta := schema.MustTable("orders")
	f := func(lo, hi int64, opRaw uint8) bool {
		op := query.Op(int(opRaw) % 4)
		p := query.Predicate{Table: "orders", Column: "o_date", Op: op, Lo: lo, Hi: hi}
		s := Selectivity(meta, p)
		if s < 0 || s > 1 {
			return false
		}
		q := query.Predicate{Table: "orders", Column: "o_status", Op: query.OpEq, Lo: 1, Hi: 1}
		conj := ConjunctionSelectivity(meta, []query.Predicate{p, q})
		return conj <= s+1e-12 && conj <= Selectivity(meta, q)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: plans produced by the optimiser always execute without error
// and their join pipelines are connected.
func TestQuickPlansAlwaysExecutable(t *testing.T) {
	schema, db := testdb.Build(11)
	cm := engine.DefaultCostModel()
	o := New(schema, cm)
	cfg := index.NewConfig()
	cfg.Add(index.New("orders", []string{"o_custkey"}, nil))
	cfg.Add(index.New("orders", []string{"o_date", "o_status"}, []string{"o_total"}))
	f := func(nation uint8, dateHi uint16, useJoin bool) bool {
		q := &query.Query{
			Tables: []string{"orders"},
			Filters: []query.Predicate{
				{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: int64(dateHi % 2001)},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		}
		if useJoin {
			q.Tables = append(q.Tables, "customer")
			q.Filters = append(q.Filters, query.Predicate{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: int64(nation % 25), Hi: int64(nation % 25)})
			q.Joins = []query.Join{{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"}}
		}
		plan, err := o.ChoosePlan(q, cfg)
		if err != nil {
			return false
		}
		_, err = engine.Execute(db, plan, cm)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
