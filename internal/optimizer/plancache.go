package optimizer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dbabandits/internal/catalog"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// This file is the optimiser's config-fingerprinted caching layer. The
// observation it exploits: ChoosePlan's output depends on the
// configuration only through the per-table subsets of indexes that pass
// the relevance screen — an index with no usable seek prefix, no
// covering property, and a leading key column that is not one of the
// query's join columns on its table can never enter bestAccess or
// nlInnerAccess, so adding or dropping it cannot change the plan. Three
// memo levels fall out of that:
//
//  1. a plan cache per query instance, keyed by the concatenated
//     relevant-index fingerprint (index.Config.TableSig per table,
//     screened per query), so the advisor/PDTool/guardrail paths that
//     re-price the same queries against many candidate configurations
//     plan each distinct relevant combination once;
//  2. an accessChoice/NL-access memo per (table, predicate-set,
//     relevant-index-set), shared across the per-driver loop inside one
//     ChoosePlan (the greedy search calls bestAccess O(tables²) times)
//     and across every configuration mapping to the same relevant set;
//  3. scratch-carried planning state (metas, filtered-row estimates,
//     FiltersOn results, the joined set, step buffers) computed once
//     per query instance, so even a cache-miss ChoosePlan allocates
//     only the plan it returns.
//
// Everything is byte-identical to the uncached search: the screen
// filters cfg.OnTable's deterministic order without reordering, costs
// are computed by the same expressions in the same order, and errors
// are never cached. Accounting is preserved — WhatIfCalls counts
// logical optimiser invocations whether or not they hit the cache.

const (
	// maxCachedQueries bounds the entry map. Batch sequencers instantiate
	// fresh query objects every round, so entries for dead instances
	// accumulate; past the cap the whole map is dropped (counted as one
	// invalidation) rather than leaking for the length of a serving run.
	maxCachedQueries = 4096
	// maxPlansPerQuery bounds one query's fingerprint→plan map.
	maxPlansPerQuery = 1024
	// maxSetsPerTable bounds one table's signature→relevant-set memo.
	maxSetsPerTable = 512
)

// PlanCacheStats are the cache's cumulative counters. Hits and Misses
// count ChoosePlan calls answered from / added to the plan cache;
// Invalidations counts relevant-set rescans forced by configuration
// content changes plus capacity evictions. They feed benchmarks and
// logs only — no golden-pinned output includes them.
type PlanCacheStats struct {
	Hits, Misses, Invalidations uint64
}

// planCache is the optimiser-level cache state. The entries map is
// guarded by mu; each entry carries its own lock, so parallel what-if
// pricing serialises only on same-query collisions.
type planCache struct {
	mu      sync.Mutex
	entries map[*query.Query]*queryEntry

	hits, misses, invalidations atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[*query.Query]*queryEntry)}
}

// CacheStats returns a snapshot of the plan-cache counters; zero-valued
// for an uncached optimiser.
func (o *Optimizer) CacheStats() PlanCacheStats {
	if o.cache == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Hits:          o.cache.hits.Load(),
		Misses:        o.cache.misses.Load(),
		Invalidations: o.cache.invalidations.Load(),
	}
}

// CacheEnabled reports whether this optimiser carries a plan cache.
func (o *Optimizer) CacheEnabled() bool { return o.cache != nil }

// relIndex is one index that passed the relevance screen, with the
// screen's per-index facts kept for the access-path pricing.
type relIndex struct {
	ix       *index.Index
	eqLen    int
	hasRange bool
	covering bool
}

// nlChoice memoises nlInnerAccess for one (relevant set, inner column).
type nlChoice struct {
	acc        engine.Access
	ok         bool
	entryWidth float64 // leaf entry width (row width for clustered PK)
}

// relevantSet is one distinct relevant-index subset of a table, shared
// across every configuration signature mapping to it. The access and nl
// memos make repeat pricing under any such configuration allocation-free.
type relevantSet struct {
	ids      string // canonical fingerprint component: screened index ids
	ixs      []relIndex
	access   accessChoice
	accessOK bool
	nl       map[string]nlChoice
}

// qtable is the per-(query, table) planning state: everything ChoosePlan
// previously recomputed per call that does not depend on the
// configuration, plus the relevant-set memo that does.
type qtable struct {
	name         string
	meta         *catalog.Table
	preds        []query.Predicate // q.FiltersOn(name), computed once
	joinCols     map[string]bool   // q.JoinColumnsOn(name) as a set
	refCols      []string          // pred ∪ join ∪ payload columns (covering test)
	filteredRows float64           // EstimateFilteredRows(meta, preds)
	tablePages   float64           // CM.PagesOf(meta.SizeBytes())
	rowWidth     float64           // float64(meta.RowWidthBytes())
	seqCost      float64           // CM.TableScanSec(meta, len(preds))

	sig      string       // TableSig of the relevant set currently loaded
	relevant *relevantSet // nil until the first refresh
	bySig    map[string]*relevantSet
	byIDs    map[string]*relevantSet // interning: distinct sigs, same screen result
}

// queryEntry is one query instance's cache entry.
type queryEntry struct {
	mu     sync.Mutex
	q      *query.Query
	tables []*qtable // distinct tables, in first-appearance order
	order  []int     // q.Tables[i] → index into tables
	plans  map[string]*engine.Plan

	// Epoch fast path: the last (config object, epoch) priced and its
	// plan. The steady-state loop re-prices the same Config object with
	// unchanged content, which this answers without touching signatures.
	lastCfg   *index.Config
	lastEpoch uint64
	lastPlan  *engine.Plan

	// Cold-path scratch, reused across misses.
	fpBuf     []byte
	joined    []bool
	curSteps  []engine.JoinStep
	bestSteps []engine.JoinStep
}

// choosePlan is the cached ChoosePlan.
func (c *planCache) choosePlan(o *Optimizer, q *query.Query, cfg *index.Config) (*engine.Plan, error) {
	c.mu.Lock()
	e := c.entries[q]
	if e == nil {
		var err error
		e, err = newQueryEntry(o, q)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if len(c.entries) >= maxCachedQueries {
			c.entries = make(map[*query.Query]*queryEntry, maxCachedQueries)
			c.invalidations.Add(1)
		}
		c.entries[q] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if cfg != nil && cfg == e.lastCfg && cfg.Epoch() == e.lastEpoch && e.lastPlan != nil {
		c.hits.Add(1)
		return e.lastPlan, nil
	}
	for _, t := range e.tables {
		c.refreshRelevant(o, t, cfg)
	}
	fp := e.fpBuf[:0]
	for _, t := range e.tables {
		fp = append(fp, t.relevant.ids...)
		fp = append(fp, 0x1e)
	}
	e.fpBuf = fp
	if plan, ok := e.plans[string(fp)]; ok {
		c.hits.Add(1)
		e.noteLast(cfg, plan)
		return plan, nil
	}
	plan, err := o.planEntry(e)
	if err != nil {
		// Errors are never cached: every call re-derives and returns the
		// identical message, exactly like the uncached path.
		return nil, err
	}
	c.misses.Add(1)
	if len(e.plans) >= maxPlansPerQuery {
		e.plans = make(map[string]*engine.Plan, maxPlansPerQuery)
		c.invalidations.Add(1)
	}
	e.plans[string(fp)] = plan
	e.noteLast(cfg, plan)
	return plan, nil
}

func (e *queryEntry) noteLast(cfg *index.Config, plan *engine.Plan) {
	e.lastCfg = cfg
	e.lastEpoch = cfg.Epoch()
	e.lastPlan = plan
}

// newQueryEntry precomputes the query's configuration-independent
// planning state. Error cases (no tables, unknown table) mirror the
// uncached preamble byte for byte and are surfaced uncached.
func newQueryEntry(o *Optimizer, q *query.Query) (*queryEntry, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	e := &queryEntry{q: q, plans: make(map[string]*engine.Plan)}
	seen := make(map[string]int, len(q.Tables))
	for _, name := range q.Tables {
		if i, ok := seen[name]; ok {
			e.order = append(e.order, i)
			continue
		}
		meta, ok := o.Schema.Table(name)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", name)
		}
		t := &qtable{
			name:     name,
			meta:     meta,
			preds:    q.FiltersOn(name),
			joinCols: make(map[string]bool),
			bySig:    make(map[string]*relevantSet),
			byIDs:    make(map[string]*relevantSet),
		}
		for _, col := range q.JoinColumnsOn(name) {
			t.joinCols[col] = true
		}
		refSeen := make(map[string]bool)
		addRef := func(col string) {
			if !refSeen[col] {
				refSeen[col] = true
				t.refCols = append(t.refCols, col)
			}
		}
		for _, p := range t.preds {
			addRef(p.Column)
		}
		for _, col := range q.JoinColumnsOn(name) {
			addRef(col)
		}
		for _, col := range q.PayloadColumnsOn(name) {
			addRef(col)
		}
		t.filteredRows = EstimateFilteredRows(meta, t.preds)
		t.tablePages = o.CM.PagesOf(meta.SizeBytes())
		t.rowWidth = float64(meta.RowWidthBytes())
		t.seqCost = o.CM.TableScanSec(meta, len(t.preds))
		seen[name] = len(e.tables)
		e.order = append(e.order, len(e.tables))
		e.tables = append(e.tables, t)
	}
	e.joined = make([]bool, len(e.tables))
	return e, nil
}

// refreshRelevant points the qtable at the relevant set for cfg's
// current content, rescanning only when the table's signature has not
// been seen before.
func (c *planCache) refreshRelevant(o *Optimizer, t *qtable, cfg *index.Config) {
	sig := cfg.TableSig(t.name)
	if t.relevant != nil && sig == t.sig {
		return
	}
	if rs, ok := t.bySig[sig]; ok {
		t.sig, t.relevant = sig, rs
		return
	}
	if t.relevant != nil {
		c.invalidations.Add(1)
	}
	var list []*index.Index
	if cfg != nil {
		list = cfg.OnTable(t.name)
	}
	rs := t.screen(list)
	if prev, ok := t.byIDs[rs.ids]; ok {
		rs = prev
	} else {
		t.byIDs[rs.ids] = rs
	}
	if len(t.bySig) >= maxSetsPerTable {
		clear(t.bySig)
		clear(t.byIDs)
		t.byIDs[rs.ids] = rs
		c.invalidations.Add(1)
	}
	t.bySig[sig] = rs
	t.sig, t.relevant = sig, rs
}

// screen filters the table's indexes down to the ones that can affect
// any access decision for this query: a usable seek prefix, a covering
// property, or a leading key column matching one of the query's join
// columns on the table (the index-nested-loop requirement). Order is
// preserved from cfg.OnTable, so downstream tie-breaking is identical
// to the uncached scans.
func (t *qtable) screen(list []*index.Index) *relevantSet {
	rs := &relevantSet{}
	n := 0
	for _, ix := range list {
		eqLen, hasRange := ix.SeekPrefix(t.preds)
		covering := t.covers(ix)
		if eqLen == 0 && !hasRange && !covering && !t.joinCols[ix.Key[0]] {
			continue
		}
		rs.ixs = append(rs.ixs, relIndex{ix: ix, eqLen: eqLen, hasRange: hasRange, covering: covering})
		n += len(ix.ID()) + 1
	}
	if len(rs.ixs) > 0 {
		buf := make([]byte, 0, n-1)
		for i, ri := range rs.ixs {
			if i > 0 {
				buf = append(buf, 0x1f)
			}
			buf = append(buf, ri.ix.ID()...)
		}
		rs.ids = string(buf)
	}
	return rs
}

// covers is index.CoversQueryOn over the precomputed referenced-column
// union — same result, no per-call set allocations.
func (t *qtable) covers(ix *index.Index) bool {
	for _, col := range t.refCols {
		if !ix.HasColumn(col) {
			return false
		}
	}
	return true
}

// planEntry is choosePlanUncached over the entry's memoised state: same
// driver loop, same greedy completion, same tie-breaking, same floats.
func (o *Optimizer) planEntry(e *queryEntry) (*engine.Plan, error) {
	var (
		haveBest           bool
		bestCost, bestRows float64
		bestDrv            engine.Access
		firstErr           error
	)
	e.bestSteps = e.bestSteps[:0]
	for _, ti := range e.order {
		cost, rows, drv, err := o.planFromDriverEntry(e, ti)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !haveBest || cost < bestCost {
			haveBest = true
			bestCost, bestRows, bestDrv = cost, rows, drv
			e.bestSteps, e.curSteps = e.curSteps, e.bestSteps
		}
	}
	if !haveBest {
		return nil, firstErr
	}
	plan := &engine.Plan{Query: e.q, Driver: bestDrv, EstRows: bestRows, EstCost: bestCost}
	if len(e.bestSteps) > 0 {
		plan.Steps = append([]engine.JoinStep(nil), e.bestSteps...)
	}
	return plan, nil
}

// tableIndex resolves a table name to its qtable position, -1 when the
// name is not in the FROM list.
func (e *queryEntry) tableIndex(name string) int {
	for i, t := range e.tables {
		if t.name == name {
			return i
		}
	}
	return -1
}

// planFromDriverEntry is planFromDriver writing its join steps into
// e.curSteps; the caller owns materialising the winner.
func (o *Optimizer) planFromDriverEntry(e *queryEntry, driver int) (cost, curRows float64, drv engine.Access, err error) {
	q := e.q
	drvChoice := o.entryBestAccess(e.tables[driver])
	drv = drvChoice.acc
	cost = drvChoice.estCost
	curRows = drvChoice.estRows
	for i := range e.joined {
		e.joined[i] = false
	}
	e.joined[driver] = true
	e.curSteps = e.curSteps[:0]

	remaining := len(q.Tables) - 1
	for remaining > 0 {
		type cand struct {
			step    engine.JoinStep
			estCost float64
			outRows float64
		}
		var best *cand
		for _, j := range q.Joins {
			li, ri := e.tableIndex(j.LeftTable), e.tableIndex(j.RightTable)
			ljoined := li >= 0 && e.joined[li]
			rjoined := ri >= 0 && e.joined[ri]
			var outerC, innerC string
			var outerI, innerI int
			var innerName string
			switch {
			case ljoined && !rjoined:
				outerI, outerC, innerI, innerC, innerName = li, j.LeftColumn, ri, j.RightColumn, j.RightTable
			case rjoined && !ljoined:
				outerI, outerC, innerI, innerC, innerName = ri, j.RightColumn, li, j.LeftColumn, j.LeftTable
			default:
				continue
			}
			if innerI < 0 {
				return 0, 0, engine.Access{}, fmt.Errorf("optimizer: join references table %q not in FROM list", innerName)
			}
			outer, inner := e.tables[outerI], e.tables[innerI]
			outRows := JoinCardinality(curRows, outer.meta, outerC, inner.filteredRows, inner.meta, innerC)

			innerChoice := o.entryBestAccess(inner)
			hashCost := innerChoice.estCost + o.CM.HashJoinSec(innerChoice.estRows, curRows)
			step := engine.JoinStep{
				Pred:       j,
				OuterTable: outer.name, OuterColumn: outerC,
				InnerTable: inner.name, InnerColumn: innerC,
				Inner: innerChoice.acc,
				Algo:  engine.JoinHash,
			}
			c := cand{step: step, estCost: hashCost, outRows: outRows}

			if nl := o.entryNLAccess(inner, innerC); nl.ok {
				nlCost := o.entryEstimateNLJoin(inner, nl, curRows, outRows)
				if nlCost < c.estCost {
					c = cand{
						step: engine.JoinStep{
							Pred:       j,
							OuterTable: outer.name, OuterColumn: outerC,
							InnerTable: inner.name, InnerColumn: innerC,
							Inner: nl.acc,
							Algo:  engine.JoinIndexNL,
						},
						estCost: nlCost,
						outRows: outRows,
					}
				}
			}

			if best == nil || c.outRows < best.outRows ||
				(c.outRows == best.outRows && c.estCost < best.estCost) {
				cc := c
				best = &cc
			}
		}
		if best == nil {
			return 0, 0, engine.Access{}, fmt.Errorf("optimizer: query %d join graph is disconnected", q.TemplateID)
		}
		e.curSteps = append(e.curSteps, best.step)
		cost += best.estCost
		curRows = best.outRows
		e.joined[e.tableIndex(best.step.InnerTable)] = true
		remaining--
	}

	cost += o.CM.OutputSec(curRows, q.AggWidth)
	return cost, curRows, drv, nil
}

// entryBestAccess is bestAccess over the relevant set, memoised per set.
func (o *Optimizer) entryBestAccess(t *qtable) accessChoice {
	rs := t.relevant
	if rs.accessOK {
		return rs.access
	}
	best := accessChoice{
		acc:     engine.Access{Table: t.name, Kind: engine.AccessSeqScan},
		estCost: t.seqCost,
		estRows: t.filteredRows,
	}
	for _, ri := range rs.ixs {
		if ri.eqLen == 0 && !ri.hasRange && !ri.covering {
			continue // relevant only as an NL inner
		}
		entryWidth := float64(ri.ix.EntryWidthBytes(t.meta))
		var cost float64
		kind := engine.AccessIndexSeek
		if ri.covering {
			kind = engine.AccessIndexOnly
		}
		if ri.eqLen == 0 && !ri.hasRange {
			cost = o.CM.IndexScanSec(float64(t.meta.RowCount), entryWidth, len(t.preds))
		} else {
			seekSel := o.seekSelectivity(t.meta, ri.ix, t.preds, ri.eqLen, ri.hasRange)
			matchEst := seekSel * float64(t.meta.RowCount)
			fetch := matchEst
			if ri.covering {
				fetch = 0
			}
			cost = o.CM.IndexSeekSec(matchEst, fetch, entryWidth, t.tablePages)
			if resid := len(t.preds) - ri.eqLen; resid > 0 {
				cost += matchEst * float64(resid) * o.CM.CPUPredSec
			}
		}
		if cost < best.estCost {
			best = accessChoice{
				acc: engine.Access{
					Table: t.name, Kind: kind, Index: ri.ix,
					EqLen: ri.eqLen, HasRange: ri.hasRange, Covering: ri.covering,
				},
				estCost: cost,
				estRows: t.filteredRows,
			}
		}
	}
	rs.access = best
	rs.accessOK = true
	return best
}

// entryNLAccess is nlInnerAccess memoised per (relevant set, inner
// column). The screen keeps every index whose leading key column is a
// join column of the table, so scanning rs.ixs visits exactly the
// candidates the uncached scan would, in the same order.
func (o *Optimizer) entryNLAccess(t *qtable, innerCol string) nlChoice {
	rs := t.relevant
	if nc, ok := rs.nl[innerCol]; ok {
		return nc
	}
	var nc nlChoice
	if len(t.meta.PK) > 0 && t.meta.PK[0] == innerCol {
		nc = nlChoice{
			acc:        engine.Access{Table: t.name, Kind: engine.AccessClusteredSeek},
			ok:         true,
			entryWidth: t.rowWidth,
		}
	} else {
		var best *index.Index
		bestCovering := false
		for _, ri := range rs.ixs {
			if len(ri.ix.Key) == 0 || ri.ix.Key[0] != innerCol {
				continue
			}
			switch {
			case best == nil,
				ri.covering && !bestCovering,
				ri.covering == bestCovering && ri.ix.EntryWidthBytes(t.meta) < best.EntryWidthBytes(t.meta):
				best = ri.ix
				bestCovering = ri.covering
			}
		}
		if best != nil {
			nc = nlChoice{
				acc: engine.Access{
					Table: t.name, Kind: engine.AccessIndexSeek, Index: best,
					EqLen: 1, Covering: bestCovering,
				},
				ok:         true,
				entryWidth: float64(best.EntryWidthBytes(t.meta)),
			}
		}
	}
	if rs.nl == nil {
		rs.nl = make(map[string]nlChoice, 2)
	}
	rs.nl[innerCol] = nc
	return nc
}

// entryEstimateNLJoin is estimateNLJoin over the memoised access choice.
func (o *Optimizer) entryEstimateNLJoin(t *qtable, nc nlChoice, probeRows, outRows float64) float64 {
	fetch := 0.0
	if nc.acc.Kind != engine.AccessClusteredSeek && nc.acc.Index != nil && !nc.acc.Covering {
		fetch = outRows
	}
	cost := o.CM.NLJoinSec(probeRows, outRows, fetch, nc.entryWidth, t.tablePages)
	if n := len(t.preds); n > 0 {
		cost += outRows * float64(n) * o.CM.CPUPredSec
	}
	return cost
}
