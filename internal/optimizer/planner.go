package optimizer

import (
	"fmt"

	"dbabandits/internal/catalog"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// Optimizer chooses plans for queries given the current secondary-index
// configuration. Every table additionally has an implicit clustered
// primary-key index (the benchmark schemas ship primary and foreign keys,
// as in the paper's setup); it costs no memory budget.
type Optimizer struct {
	Schema *catalog.Schema
	CM     *engine.CostModel

	// cache is the config-fingerprinted plan/what-if cache (plancache.go);
	// nil disables it and every ChoosePlan runs the full greedy search
	// below. Both paths produce byte-identical plans and costs.
	cache *planCache
}

// New returns an optimiser over the schema with the given cost model.
// The plan cache is enabled; use NewUncached for the A/B control.
func New(schema *catalog.Schema, cm *engine.CostModel) *Optimizer {
	return &Optimizer{Schema: schema, CM: cm, cache: newPlanCache()}
}

// NewUncached returns an optimiser that re-runs the full greedy search
// on every call — the pre-cache behaviour, kept both as the A/B control
// (-plan-cache=false) and as the reference the cache-consistency
// property tests compare against.
func NewUncached(schema *catalog.Schema, cm *engine.CostModel) *Optimizer {
	return &Optimizer{Schema: schema, CM: cm}
}

// accessChoice is an internal candidate access path with estimates.
type accessChoice struct {
	acc     engine.Access
	estCost float64
	estRows float64 // estimated rows surviving all local filters
}

// ChoosePlan picks a left-deep plan for the query under the configuration
// using estimated costs: every table is tried as the driver, each driver's
// plan is completed greedily, and the cheapest estimated plan wins. The
// returned plan carries EstRows/EstCost.
//
// With the plan cache enabled (New), the search runs once per (query
// instance, relevant-index fingerprint) and repeat calls return the
// memoised plan; the returned *engine.Plan may be shared across calls
// and must be treated as immutable, which engine.Execute honours.
func (o *Optimizer) ChoosePlan(q *query.Query, cfg *index.Config) (*engine.Plan, error) {
	if o.cache != nil {
		return o.cache.choosePlan(o, q, cfg)
	}
	return o.choosePlanUncached(q, cfg)
}

// choosePlanUncached is the cache-free greedy search.
func (o *Optimizer) choosePlanUncached(q *query.Query, cfg *index.Config) (*engine.Plan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	metas := make(map[string]*catalog.Table, len(q.Tables))
	filtered := make(map[string]float64, len(q.Tables))
	for _, t := range q.Tables {
		meta, ok := o.Schema.Table(t)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", t)
		}
		metas[t] = meta
		filtered[t] = EstimateFilteredRows(meta, q.FiltersOn(t))
	}

	var best *engine.Plan
	var firstErr error
	for _, driver := range q.Tables {
		plan, err := o.planFromDriver(q, cfg, metas, filtered, driver)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || plan.EstCost < best.EstCost {
			best = plan
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// planFromDriver completes a left-deep plan greedily from a fixed driver.
func (o *Optimizer) planFromDriver(q *query.Query, cfg *index.Config, metas map[string]*catalog.Table, filtered map[string]float64, driver string) (*engine.Plan, error) {
	drvChoice := o.bestAccess(q, metas[driver], cfg)

	plan := &engine.Plan{Query: q, Driver: drvChoice.acc}
	cost := drvChoice.estCost
	curRows := drvChoice.estRows
	joined := map[string]bool{driver: true}

	remaining := len(q.Tables) - 1
	for remaining > 0 {
		// Candidate joins: join predicates connecting a joined table to an
		// un-joined one.
		type cand struct {
			step    engine.JoinStep
			estCost float64
			outRows float64
		}
		var best *cand
		for _, j := range q.Joins {
			var outerT, outerC, innerT, innerC string
			switch {
			case joined[j.LeftTable] && !joined[j.RightTable]:
				outerT, outerC, innerT, innerC = j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn
			case joined[j.RightTable] && !joined[j.LeftTable]:
				outerT, outerC, innerT, innerC = j.RightTable, j.RightColumn, j.LeftTable, j.LeftColumn
			default:
				continue
			}
			innerMeta, ok := metas[innerT]
			if !ok {
				return nil, fmt.Errorf("optimizer: join references table %q not in FROM list", innerT)
			}
			outRows := JoinCardinality(curRows, metas[outerT], outerC, filtered[innerT], innerMeta, innerC)

			// Hash join option: best standalone inner access + hash cost.
			innerChoice := o.bestAccess(q, innerMeta, cfg)
			hashCost := innerChoice.estCost + o.CM.HashJoinSec(innerChoice.estRows, curRows)
			step := engine.JoinStep{
				Pred:       j,
				OuterTable: outerT, OuterColumn: outerC,
				InnerTable: innerT, InnerColumn: innerC,
				Inner: innerChoice.acc,
				Algo:  engine.JoinHash,
			}
			c := cand{step: step, estCost: hashCost, outRows: outRows}

			// Index-nested-loop option: requires an index whose leading
			// key column is the inner join column.
			if nlAcc, ok := o.nlInnerAccess(q, innerMeta, innerC, cfg); ok {
				nlCost := o.estimateNLJoin(q, innerMeta, nlAcc, curRows, outRows)
				if nlCost < c.estCost {
					c = cand{
						step: engine.JoinStep{
							Pred:       j,
							OuterTable: outerT, OuterColumn: outerC,
							InnerTable: innerT, InnerColumn: innerC,
							Inner: nlAcc,
							Algo:  engine.JoinIndexNL,
						},
						estCost: nlCost,
						outRows: outRows,
					}
				}
			}

			if best == nil || c.outRows < best.outRows ||
				(c.outRows == best.outRows && c.estCost < best.estCost) {
				cc := c
				best = &cc
			}
		}
		if best == nil {
			// Disconnected join graph: fall back to a cartesian-free
			// handling by hash-joining the smallest remaining table on a
			// synthetic always-false edge is wrong; instead surface it.
			return nil, fmt.Errorf("optimizer: query %d join graph is disconnected", q.TemplateID)
		}
		plan.Steps = append(plan.Steps, best.step)
		cost += best.estCost
		curRows = best.outRows
		joined[best.step.InnerTable] = true
		remaining--
	}

	cost += o.CM.OutputSec(curRows, q.AggWidth)
	plan.EstRows = curRows
	plan.EstCost = cost
	return plan, nil
}

// bestAccess picks the cheapest estimated access path for the table's
// local predicates among seq scan and the configuration's indexes.
func (o *Optimizer) bestAccess(q *query.Query, meta *catalog.Table, cfg *index.Config) accessChoice {
	preds := q.FiltersOn(meta.Name)
	estRows := EstimateFilteredRows(meta, preds)

	best := accessChoice{
		acc:     engine.Access{Table: meta.Name, Kind: engine.AccessSeqScan},
		estCost: o.CM.TableScanSec(meta, len(preds)),
		estRows: estRows,
	}
	if cfg == nil {
		return best
	}
	tablePages := o.CM.PagesOf(meta.SizeBytes())
	for _, ix := range cfg.OnTable(meta.Name) {
		eqLen, hasRange := ix.SeekPrefix(preds)
		covering := ix.CoversQueryOn(q, meta.Name)
		if eqLen == 0 && !hasRange && !covering {
			continue
		}
		entryWidth := float64(ix.EntryWidthBytes(meta))
		var cost float64
		kind := engine.AccessIndexSeek
		if covering {
			kind = engine.AccessIndexOnly
		}
		if eqLen == 0 && !hasRange {
			// Covering but no seek prefix: leaf-level scan.
			cost = o.CM.IndexScanSec(float64(meta.RowCount), entryWidth, len(preds))
		} else {
			seekSel := o.seekSelectivity(meta, ix, preds, eqLen, hasRange)
			matchEst := seekSel * float64(meta.RowCount)
			fetch := matchEst
			if covering {
				fetch = 0
			}
			cost = o.CM.IndexSeekSec(matchEst, fetch, entryWidth, tablePages)
			if resid := len(preds) - eqLen; resid > 0 {
				cost += matchEst * float64(resid) * o.CM.CPUPredSec
			}
		}
		if cost < best.estCost {
			best = accessChoice{
				acc: engine.Access{
					Table: meta.Name, Kind: kind, Index: ix,
					EqLen: eqLen, HasRange: hasRange, Covering: covering,
				},
				estCost: cost,
				estRows: estRows,
			}
		}
	}
	return best
}

// seekSelectivity multiplies the selectivities of only the predicates the
// index seek binds (equalities on the first eqLen key columns, plus the
// range on the next key column).
func (o *Optimizer) seekSelectivity(meta *catalog.Table, ix *index.Index, preds []query.Predicate, eqLen int, hasRange bool) float64 {
	rangeCol := ""
	if hasRange && eqLen < len(ix.Key) {
		rangeCol = ix.Key[eqLen]
	}
	sel := 1.0
	for _, p := range preds {
		pos := ix.KeyPosition(p.Column)
		if p.IsEquality() && pos >= 0 && pos < eqLen {
			sel *= Selectivity(meta, p)
		} else if !p.IsEquality() && p.Column == rangeCol {
			sel *= Selectivity(meta, p)
		}
	}
	return clamp01(sel)
}

// nlInnerAccess finds an index usable as the inner side of an
// index-nested-loop join on innerCol: the clustered PK when innerCol
// leads the primary key, else a secondary index with innerCol as its
// leading key column (cheapest entry width wins; covering preferred).
func (o *Optimizer) nlInnerAccess(q *query.Query, meta *catalog.Table, innerCol string, cfg *index.Config) (engine.Access, bool) {
	if len(meta.PK) > 0 && meta.PK[0] == innerCol {
		return engine.Access{Table: meta.Name, Kind: engine.AccessClusteredSeek}, true
	}
	if cfg == nil {
		return engine.Access{}, false
	}
	var best *index.Index
	bestCovering := false
	for _, ix := range cfg.OnTable(meta.Name) {
		if len(ix.Key) == 0 || ix.Key[0] != innerCol {
			continue
		}
		covering := ix.CoversQueryOn(q, meta.Name)
		switch {
		case best == nil,
			covering && !bestCovering,
			covering == bestCovering && ix.EntryWidthBytes(meta) < best.EntryWidthBytes(meta):
			best = ix
			bestCovering = covering
		}
	}
	if best == nil {
		return engine.Access{}, false
	}
	return engine.Access{
		Table: meta.Name, Kind: engine.AccessIndexSeek, Index: best,
		EqLen: 1, Covering: bestCovering,
	}, true
}

// estimateNLJoin prices an index-nested-loop join with estimated
// cardinalities using the same formula the executor charges with true
// ones.
func (o *Optimizer) estimateNLJoin(q *query.Query, innerMeta *catalog.Table, acc engine.Access, probeRows, outRows float64) float64 {
	var entryWidth float64
	fetch := 0.0
	if acc.Kind == engine.AccessClusteredSeek || acc.Index == nil {
		entryWidth = float64(innerMeta.RowWidthBytes())
	} else {
		entryWidth = float64(acc.Index.EntryWidthBytes(innerMeta))
		if !acc.Covering {
			fetch = outRows
		}
	}
	innerPages := o.CM.PagesOf(innerMeta.SizeBytes())
	cost := o.CM.NLJoinSec(probeRows, outRows, fetch, entryWidth, innerPages)
	if n := len(q.FiltersOn(innerMeta.Name)); n > 0 {
		cost += outRows * float64(n) * o.CM.CPUPredSec
	}
	return cost
}
