package cli

import (
	"flag"
	"testing"
)

// TestSharedFlagNamesAndDefaults pins the shared vocabulary: the flag
// names and defaults every command inherits from this package.
func TestSharedFlagNamesAndDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	bench := Bench(fs, "tpch")
	sf, rows, seed := Data(fs)
	budget := Budget(fs)
	ridge := Ridge(fs)
	parallel, progress := Parallel(fs)
	for _, name := range []string{"bench", "sf", "rows", "seed", "budget", "ridge", "parallel", "progress"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-bench", "ssb", "-ridge", "chol", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if *bench != "ssb" || *ridge != "chol" || *parallel != 2 {
		t.Fatalf("parsed bench=%q ridge=%q parallel=%d", *bench, *ridge, *parallel)
	}
	if *sf != 10 || *rows != 5000 || *seed != 1 || *budget != 1 || *progress {
		t.Fatalf("defaults sf=%v rows=%v seed=%v budget=%v progress=%v", *sf, *rows, *seed, *budget, *progress)
	}
}

func TestCheckRidge(t *testing.T) {
	for _, ok := range []string{"", "sm", "chol"} {
		if err := CheckRidge(ok); err != nil {
			t.Fatalf("CheckRidge(%q): %v", ok, err)
		}
	}
	if err := CheckRidge("lu"); err == nil {
		t.Fatal("CheckRidge accepted unknown backend")
	}
}

func TestLabels(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	labels := Labels(fs)
	if err := fs.Parse([]string{"-label", "ridge=sm", "-label", "host=ci"}); err != nil {
		t.Fatal(err)
	}
	m := labels()
	if m["ridge"] != "sm" || m["host"] != "ci" || len(m) != 2 {
		t.Fatalf("labels = %v", m)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	empty := Labels(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if empty() != nil {
		t.Fatal("empty labels should be nil")
	}
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs3.SetOutput(discard{})
	Labels(fs3)
	if err := fs3.Parse([]string{"-label", "novalue"}); err == nil {
		t.Fatal("malformed -label accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
