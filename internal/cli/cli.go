// Package cli centralises the flag definitions and exit conventions
// shared by the repo's commands (mabtune, experiments, benchjson,
// serve), so every binary spells the common knobs identically — one
// name, one default, one help string, one validation path — instead of
// each main.go re-declaring its own drifting copy.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"dbabandits/internal/linalg"
	"dbabandits/internal/policy"
)

// BenchHelp is the canonical benchmark enumeration help string.
const BenchHelp = "benchmark: ssb|tpch|tpch-skew|tpcds|imdb"

// Bench registers the -bench flag with the given default.
func Bench(fs *flag.FlagSet, def string) *string {
	return fs.String("bench", def, BenchHelp)
}

// Data registers the data-generation knobs every experiment shares:
// -sf, -rows and -seed.
func Data(fs *flag.FlagSet) (sf *float64, rows *int, seed *int64) {
	sf = fs.Float64("sf", 10, "scale factor")
	rows = fs.Int("rows", 5000, "max stored (physical) rows per table")
	seed = fs.Int64("seed", 1, "experiment seed")
	return sf, rows, seed
}

// Budget registers the -budget flag (index memory budget as a multiple
// of the data size).
func Budget(fs *flag.FlagSet) *float64 {
	return fs.Float64("budget", 1, "memory budget as a multiple of data size")
}

// Ridge registers the -ridge backend selector. The default is sm for
// every single-run CLI: with skyline-batched solves, sm scores a warm
// TPC-DS round in ~8.7µs versus ~55µs for chol, and a single
// deterministic batch run cannot hit the slow numerical-drift regimes
// chol exists for. Long-lived serving sessions are the case for
// -ridge chol — the factored form cannot lose positive-definiteness
// under millions of rank-one updates — and both backends are pinned
// byte-identical on every golden, so switching is a latency/robustness
// trade only. See README "Ridge backend defaults".
func Ridge(fs *flag.FlagSet) *string {
	return fs.String("ridge", linalg.BackendSM,
		"MAB ridge backend: sm (Sherman–Morrison inverse; fastest) | chol (factored Cholesky; drift-proof for long serving runs)")
}

// PlanCache registers the -plan-cache toggle for the optimiser's
// config-fingerprinted plan & what-if cost cache. On by default; off is
// the A/B control that re-runs the full greedy search on every call.
// Results are byte-identical either way — plans, costs, goldens and
// PDTool WhatIfCalls/RecommendSec accounting do not change — so this is
// purely a wall-clock knob.
func PlanCache(fs *flag.FlagSet) *bool {
	return fs.Bool("plan-cache", true,
		"cache optimiser plans by (query, relevant-index fingerprint); false = uncached A/B control (identical output)")
}

// ScoreParallel registers the -score-parallel knob: worker goroutines
// for the MAB's batched arm scoring. The batch is partitioned
// deterministically by arm index with per-worker scratch, so results
// are byte-identical at any setting — this is purely a latency knob.
func ScoreParallel(fs *flag.FlagSet) *int {
	return fs.Int("score-parallel", 1,
		"MAB arm-scoring worker goroutines (results identical at any value)")
}

// ScoreParallelAuto is ScoreParallel for the fleet command, whose
// default is "auto" (0): many tenants share one process, so serial
// scoring per tenant wastes whatever cores the tenant-level fan-out
// leaves idle. 0 resolves to runtime.GOMAXPROCS(0) at run time
// (fleet.DefaultScoreWorkers); single-tenant commands keep the serial
// default of ScoreParallel.
func ScoreParallelAuto(fs *flag.FlagSet) *int {
	return fs.Int("score-parallel", 0,
		"MAB arm-scoring worker goroutines; 0 = GOMAXPROCS (results identical at any value)")
}

// ForgetRank registers the -forget-rank knob: the budget of the SM
// ridge backend's structured low-rank Forget correction. 0 keeps the
// exact Forget-triggered refactorisation (the default every golden was
// captured under); k >= the context dimension is mathematically exact
// at O(k·d²) instead of O(d³).
func ForgetRank(fs *flag.FlagSet) *int {
	return fs.Int("forget-rank", 0,
		"SM ridge low-rank Forget budget (0 = exact rebase)")
}

// CheckRidge validates a -ridge value before any expensive setup runs.
func CheckRidge(name string) error {
	if !linalg.ValidRidgeBackend(name) {
		return fmt.Errorf("unknown ridge backend %q (available: %v)", name, linalg.RidgeBackends())
	}
	return nil
}

// Policy registers a policy-selector flag under the given name, with
// the registry's names in the help text.
func Policy(fs *flag.FlagSet, name, def string) *string {
	return fs.String(name, def, "policy: "+strings.Join(policy.Names(), "|"))
}

// Parallel registers the sweep concurrency knobs: -parallel and
// -progress.
func Parallel(fs *flag.FlagSet) (parallel *int, progress *bool) {
	parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
		"max experiment cells run concurrently (output is identical at any value)")
	progress = fs.Bool("progress", false, "print per-cell completion lines to stderr")
	return parallel, progress
}

// Labels registers the repeatable -label key=value annotation flag and
// returns an accessor for the collected map (nil when none were given).
func Labels(fs *flag.FlagSet) func() map[string]string {
	m := map[string]string{}
	fs.Func("label", "annotate the capture with key=value (repeatable)", func(kv string) error {
		key, value, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return fmt.Errorf("want key=value, got %q", kv)
		}
		m[key] = value
		return nil
	})
	return func() map[string]string {
		if len(m) == 0 {
			return nil
		}
		return m
	}
}

// Fatal prints "<cmd>: <err>" to stderr and exits 1 — the uniform
// error exit of every command.
func Fatal(cmd string, err error) {
	fmt.Fprintln(os.Stderr, cmd+":", err)
	os.Exit(1)
}
