package workload

import (
	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// IMDB returns the Join Order Benchmark over the IMDb dataset: a
// fixed-size (non-scaling) schema whose real-world skew and cross-column
// correlations make it "a challenging workload for index recommendations,
// with index overuse leading to performance regressions" (Section V-A).
// The 33 templates correspond to JOB's 33 query families.
func IMDB() *Benchmark {
	return &Benchmark{Name: "imdb", NewSchema: imdbSchema, Templates: imdbTemplates()}
}

func imdbSchema() *catalog.Schema {
	kindType := &catalog.Table{
		Name: "kind_type", BaseRows: 7, FixedSize: true, PK: []string{"kt_id"},
		Columns: []catalog.Column{
			{Name: "kt_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "kt_kind", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 6},
		},
	}
	infoType := &catalog.Table{
		Name: "info_type", BaseRows: 113, FixedSize: true, PK: []string{"it_id"},
		Columns: []catalog.Column{
			{Name: "it_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "it_info", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 112},
		},
	}
	roleType := &catalog.Table{
		Name: "role_type", BaseRows: 12, FixedSize: true, PK: []string{"rt_id"},
		Columns: []catalog.Column{
			{Name: "rt_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "rt_role", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 11},
		},
	}
	companyType := &catalog.Table{
		Name: "company_type", BaseRows: 4, FixedSize: true, PK: []string{"ct_id"},
		Columns: []catalog.Column{
			{Name: "ct_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "ct_kind", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 3},
		},
	}
	title := &catalog.Table{
		Name: "title", BaseRows: 2_528_312, FixedSize: true, PK: []string{"t_id"},
		Columns: []catalog.Column{
			{Name: "t_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "t_kind_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.4, RefTable: "kind_type", RefCol: "kt_id"},
			// Production years skew heavily toward recent decades.
			{Name: "t_production_year", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.05, DomainLo: 1880, DomainHi: 2019},
			{Name: "t_episode_nr", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.6, DomainLo: 0, DomainHi: 9999},
		},
	}
	name := &catalog.Table{
		Name: "name", BaseRows: 4_167_491, FixedSize: true, PK: []string{"n_id"},
		Columns: []catalog.Column{
			{Name: "n_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "n_gender", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.4, DomainLo: 0, DomainHi: 2},
			{Name: "n_name_pcode", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 0, DomainHi: 9999},
		},
	}
	companyName := &catalog.Table{
		Name: "company_name", BaseRows: 234_997, FixedSize: true, PK: []string{"cn_id"},
		Columns: []catalog.Column{
			{Name: "cn_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			// country_code is famously dominated by [us].
			{Name: "cn_country_code", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.7, DomainLo: 0, DomainHi: 120},
		},
	}
	keyword := &catalog.Table{
		Name: "keyword", BaseRows: 134_170, FixedSize: true, PK: []string{"k_id"},
		Columns: []catalog.Column{
			{Name: "k_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "k_group", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.2, DomainLo: 0, DomainHi: 499},
		},
	}
	castInfo := &catalog.Table{
		Name: "cast_info", BaseRows: 36_244_344, FixedSize: true, PK: []string{"ci_id"},
		Columns: []catalog.Column{
			{Name: "ci_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "ci_movie_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.2, RefTable: "title", RefCol: "t_id"},
			{Name: "ci_person_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.2, RefTable: "name", RefCol: "n_id"},
			{Name: "ci_role_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.3, RefTable: "role_type", RefCol: "rt_id"},
			{Name: "ci_nr_order", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.4, DomainLo: 1, DomainHi: 1000},
		},
	}
	movieInfo := &catalog.Table{
		Name: "movie_info", BaseRows: 14_835_720, FixedSize: true, PK: []string{"mi_id"},
		Columns: []catalog.Column{
			{Name: "mi_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "mi_movie_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.15, RefTable: "title", RefCol: "t_id"},
			{Name: "mi_info_type_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.3, RefTable: "info_type", RefCol: "it_id"},
			{Name: "mi_info", Kind: catalog.KindString, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 0, DomainHi: 49_999},
		},
	}
	movieInfoIdx := &catalog.Table{
		Name: "movie_info_idx", BaseRows: 1_380_035, FixedSize: true, PK: []string{"mii_id"},
		Columns: []catalog.Column{
			{Name: "mii_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "mii_movie_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.1, RefTable: "title", RefCol: "t_id"},
			{Name: "mii_info_type_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.4, RefTable: "info_type", RefCol: "it_id"},
			{Name: "mii_info", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 0, DomainHi: 999},
		},
	}
	movieCompanies := &catalog.Table{
		Name: "movie_companies", BaseRows: 2_609_129, FixedSize: true, PK: []string{"mc_id"},
		Columns: []catalog.Column{
			{Name: "mc_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "mc_movie_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.1, RefTable: "title", RefCol: "t_id"},
			{Name: "mc_company_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.3, RefTable: "company_name", RefCol: "cn_id"},
			{Name: "mc_company_type_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.2, RefTable: "company_type", RefCol: "ct_id"},
		},
	}
	movieKeyword := &catalog.Table{
		Name: "movie_keyword", BaseRows: 4_523_930, FixedSize: true, PK: []string{"mk_id"},
		Columns: []catalog.Column{
			{Name: "mk_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "mk_movie_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.15, RefTable: "title", RefCol: "t_id"},
			{Name: "mk_keyword_id", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.25, RefTable: "keyword", RefCol: "k_id"},
		},
	}

	s := catalog.MustSchema("imdb",
		kindType, infoType, roleType, companyType,
		title, name, companyName, keyword,
		castInfo, movieInfo, movieInfoIdx, movieCompanies, movieKeyword,
	)
	s.FKs = []catalog.ForeignKey{
		{Table: "title", Column: "t_kind_id", RefTable: "kind_type", RefColumn: "kt_id"},
		{Table: "cast_info", Column: "ci_movie_id", RefTable: "title", RefColumn: "t_id"},
		{Table: "cast_info", Column: "ci_person_id", RefTable: "name", RefColumn: "n_id"},
		{Table: "cast_info", Column: "ci_role_id", RefTable: "role_type", RefColumn: "rt_id"},
		{Table: "movie_info", Column: "mi_movie_id", RefTable: "title", RefColumn: "t_id"},
		{Table: "movie_info", Column: "mi_info_type_id", RefTable: "info_type", RefColumn: "it_id"},
		{Table: "movie_info_idx", Column: "mii_movie_id", RefTable: "title", RefColumn: "t_id"},
		{Table: "movie_info_idx", Column: "mii_info_type_id", RefTable: "info_type", RefColumn: "it_id"},
		{Table: "movie_companies", Column: "mc_movie_id", RefTable: "title", RefColumn: "t_id"},
		{Table: "movie_companies", Column: "mc_company_id", RefTable: "company_name", RefColumn: "cn_id"},
		{Table: "movie_companies", Column: "mc_company_type_id", RefTable: "company_type", RefColumn: "ct_id"},
		{Table: "movie_keyword", Column: "mk_movie_id", RefTable: "title", RefColumn: "t_id"},
		{Table: "movie_keyword", Column: "mk_keyword_id", RefTable: "keyword", RefColumn: "k_id"},
	}
	return s
}

// imdbTemplates models JOB's 33 query families. Each family joins title
// with a subset of the satellite tables; predicates hit the skewed
// columns (production year, info type, country code, keyword group) so
// uniformity-based estimates are wrong in exactly the way the real IMDb
// data breaks optimisers.
func imdbTemplates() []TemplateSpec {
	T, CI, MI, MII, MC, MK := "title", "cast_info", "movie_info", "movie_info_idx", "movie_companies", "movie_keyword"
	CN, K, N := "company_name", "keyword", "name"

	jt := func(fact, fk string) query.Join { return jn(fact, fk, T, "t_id") }

	var out []TemplateSpec
	add := func(ts TemplateSpec) {
		ts.ID = len(out) + 1
		out = append(out, ts)
	}

	// Families 1-5: company-centric (JOB 1-5): title x movie_companies x
	// company_name with country/type predicates.
	for i := 0; i < 5; i++ {
		fr := 0.03 + 0.05*float64(i)
		add(TemplateSpec{
			Tables: []string{T, MC, CN},
			Preds: []PredSpec{
				eqd(CN, "cn_country_code"),
				rngf(T, "t_production_year", fr),
				eqd(MC, "mc_company_type_id"),
			},
			Joins:    []query.Join{jt(MC, "mc_movie_id"), jn(MC, "mc_company_id", CN, "cn_id")},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(CN, "cn_country_code")},
			AggWidth: 1 + i%3,
		})
	}
	// Families 6-10: keyword-centric (JOB 6-10).
	for i := 0; i < 5; i++ {
		add(TemplateSpec{
			Tables: []string{T, MK, K},
			Preds: []PredSpec{
				eqd(K, "k_group"),
				rngf(T, "t_production_year", 0.05+0.07*float64(i)),
			},
			Joins:    []query.Join{jt(MK, "mk_movie_id"), jn(MK, "mk_keyword_id", K, "k_id")},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(K, "k_group")},
			AggWidth: 1 + i%2,
		})
	}
	// Families 11-16: info-centric (JOB 11-16); the "Q18-like" shapes
	// where an equality on a hot info type explodes.
	for i := 0; i < 6; i++ {
		add(TemplateSpec{
			Tables: []string{T, MI},
			Preds: []PredSpec{
				eqd(MI, "mi_info_type_id"),
				rngf(T, "t_production_year", 0.04+0.05*float64(i)),
				eqd(T, "t_kind_id"),
			},
			Joins:    []query.Join{jt(MI, "mi_movie_id")},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(MI, "mi_info")},
			AggWidth: 1 + i%3,
		})
	}
	// Families 17-22: rating/info_idx lookups (JOB 17-22).
	for i := 0; i < 6; i++ {
		add(TemplateSpec{
			Tables: []string{T, MII},
			Preds: []PredSpec{
				eqd(MII, "mii_info_type_id"),
				gtf(MII, "mii_info", 0.1+0.1*float64(i%3)),
				eqd(T, "t_kind_id"),
			},
			Joins:    []query.Join{jt(MII, "mii_movie_id")},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(MII, "mii_info")},
			AggWidth: 1 + i%2,
		})
	}
	// Families 23-28: cast-centric (JOB 23-28): the giant cast_info table
	// joined through role/person predicates.
	for i := 0; i < 6; i++ {
		ts := TemplateSpec{
			Tables: []string{T, CI},
			Preds: []PredSpec{
				eqd(CI, "ci_role_id"),
				rngf(T, "t_production_year", 0.03+0.04*float64(i)),
			},
			Joins:    []query.Join{jt(CI, "ci_movie_id")},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(CI, "ci_nr_order")},
			AggWidth: 1 + i%3,
		}
		if i%2 == 1 {
			ts.Tables = append(ts.Tables, N)
			ts.Joins = append(ts.Joins, jn(CI, "ci_person_id", N, "n_id"))
			ts.Preds = append(ts.Preds, eqd(N, "n_gender"))
			ts.Payload = append(ts.Payload, pay(N, "n_name_pcode"))
		}
		add(ts)
	}
	// Families 29-33: wide multi-satellite joins (JOB 29-33).
	for i := 0; i < 5; i++ {
		ts := TemplateSpec{
			Tables: []string{T, MC, CN, MK, K},
			Preds: []PredSpec{
				eqd(CN, "cn_country_code"),
				eqd(K, "k_group"),
				rngf(T, "t_production_year", 0.05+0.05*float64(i)),
			},
			Joins: []query.Join{
				jt(MC, "mc_movie_id"), jn(MC, "mc_company_id", CN, "cn_id"),
				jt(MK, "mk_movie_id"), jn(MK, "mk_keyword_id", K, "k_id"),
			},
			Payload:  []query.ColumnRef{pay(T, "t_production_year"), pay(CN, "cn_country_code"), pay(K, "k_group")},
			AggWidth: 2 + i%3,
		}
		if i >= 3 {
			ts.Tables = append(ts.Tables, MI)
			ts.Joins = append(ts.Joins, jt(MI, "mi_movie_id"))
			ts.Preds = append(ts.Preds, eqd(MI, "mi_info_type_id"))
		}
		add(ts)
	}
	return out
}
