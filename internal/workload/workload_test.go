package workload

import (
	"testing"

	"dbabandits/internal/datagen"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/storage"
)

func buildBench(t *testing.T, name string) (*Benchmark, *storage.Database) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	schema := b.NewSchema()
	db, err := datagen.Build(schema, datagen.Options{Seed: 42, ScaleFactor: 10, MaxStoredRows: 5000})
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return b, db
}

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	wantTemplates := map[string]int{
		"ssb": 13, "tpch": 22, "tpch-skew": 22, "tpcds": 99, "imdb": 33,
	}
	for _, name := range AllNames() {
		b, db := buildBench(t, name)
		if got := len(b.Templates); got != wantTemplates[name] {
			t.Fatalf("%s: %d templates, want %d", name, got, wantTemplates[name])
		}
		if err := db.Schema.Validate(); err != nil {
			t.Fatalf("%s schema invalid: %v", name, err)
		}
		ids := map[int]bool{}
		for _, ts := range b.Templates {
			if ids[ts.ID] {
				t.Fatalf("%s: duplicate template id %d", name, ts.ID)
			}
			ids[ts.ID] = true
		}
	}
}

func TestAllTemplatesPlanAndExecute(t *testing.T) {
	cm := engine.DefaultCostModel()
	for _, name := range AllNames() {
		b, db := buildBench(t, name)
		opt := optimizer.New(db.Schema, cm)
		seq := NewStatic(b, db, 7, 2)
		for r := 1; r <= 2; r++ {
			for _, q := range seq.Round(r) {
				plan, err := opt.ChoosePlan(q, index.NewConfig())
				if err != nil {
					t.Fatalf("%s template %d: plan: %v", name, q.TemplateID, err)
				}
				st, err := engine.Execute(db, plan, cm)
				if err != nil {
					t.Fatalf("%s template %d: execute: %v", name, q.TemplateID, err)
				}
				if st.TotalSec <= 0 {
					t.Fatalf("%s template %d: non-positive time", name, q.TemplateID)
				}
			}
		}
	}
}

func TestTemplateInstancesVaryAcrossRounds(t *testing.T) {
	b, db := buildBench(t, "tpch")
	seq := NewStatic(b, db, 11, 25)
	q1 := seq.Round(1)
	q2 := seq.Round(2)
	if len(q1) != len(q2) {
		t.Fatal("round sizes differ")
	}
	varied := false
	for i := range q1 {
		if q1[i].Signature() != q2[i].Signature() {
			t.Fatalf("template %d changed signature across rounds", q1[i].TemplateID)
		}
		for j := range q1[i].Filters {
			if q1[i].Filters[j].Lo != q2[i].Filters[j].Lo {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("no predicate constants varied across rounds")
	}
}

func TestStaticSequencerDeterministic(t *testing.T) {
	b, db := buildBench(t, "ssb")
	s1 := NewStatic(b, db, 5, 25)
	s2 := NewStatic(b, db, 5, 25)
	a, c := s1.Round(3), s2.Round(3)
	for i := range a {
		if a[i].SQL() != c[i].SQL() {
			t.Fatalf("nondeterministic round: %s vs %s", a[i].SQL(), c[i].SQL())
		}
	}
}

func TestShiftingSequencerGroups(t *testing.T) {
	b, db := buildBench(t, "tpch")
	s := NewShifting(b, db, 3, 4, 20)
	if s.Rounds() != 80 {
		t.Fatalf("rounds = %d", s.Rounds())
	}
	// Groups must not overlap and together cover all templates.
	seen := map[int]int{}
	for g, group := range s.groups {
		for _, ts := range group {
			if prev, dup := seen[ts.ID]; dup {
				t.Fatalf("template %d in groups %d and %d", ts.ID, prev, g)
			}
			seen[ts.ID] = g
		}
	}
	if len(seen) != len(b.Templates) {
		t.Fatalf("groups cover %d of %d templates", len(seen), len(b.Templates))
	}
	// Consecutive groups produce disjoint template ids.
	ids1 := map[int]bool{}
	for _, q := range s.Round(20) {
		ids1[q.TemplateID] = true
	}
	for _, q := range s.Round(21) {
		if ids1[q.TemplateID] {
			t.Fatalf("template %d appears across a shift boundary", q.TemplateID)
		}
	}
	if s.GroupOf(1) != 0 || s.GroupOf(20) != 0 || s.GroupOf(21) != 1 || s.GroupOf(80) != 3 {
		t.Fatal("GroupOf boundaries wrong")
	}
}

func TestShiftingSequencerRaggedTotals(t *testing.T) {
	b, db := buildBench(t, "tpch")
	cases := []struct {
		total     int
		numGroups int
		// wantSpans are the per-group round counts of the floor partition.
		wantSpans []int
	}{
		{10, 4, []int{2, 3, 2, 3}},
		{81, 4, []int{20, 20, 20, 21}},
		{7, 4, []int{1, 2, 2, 2}},
		{3, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		s := NewShiftingTotal(b, db, 3, c.numGroups, c.total)
		if s.Rounds() != c.total {
			t.Fatalf("total %d: Rounds() = %d (ragged totals must not be truncated)", c.total, s.Rounds())
		}
		spans := make([]int, c.numGroups)
		for r := 1; r <= c.total; r++ {
			g := s.GroupOf(r)
			if g < 0 || g >= c.numGroups {
				t.Fatalf("total %d round %d: group %d out of range", c.total, r, g)
			}
			spans[g]++
			if r > 1 && g < s.GroupOf(r-1) {
				t.Fatalf("total %d: group regressed at round %d", c.total, r)
			}
		}
		for g, want := range c.wantSpans {
			if spans[g] != want {
				t.Fatalf("total %d groups %d: spans = %v, want %v", c.total, c.numGroups, spans, c.wantSpans)
			}
		}
		// Every round draws a non-empty workload from its own group only.
		for r := 1; r <= c.total; r++ {
			qs := s.Round(r)
			if len(qs) == 0 {
				t.Fatalf("total %d round %d: empty workload", c.total, r)
			}
		}
	}
}

func TestShiftingAlignedMatchesPerGroupConstructor(t *testing.T) {
	// For divisible totals the two constructors are the same sequencer.
	b, db := buildBench(t, "ssb")
	perGroup := NewShifting(b, db, 9, 4, 5)
	total := NewShiftingTotal(b, db, 9, 4, 20)
	if perGroup.Rounds() != total.Rounds() {
		t.Fatalf("rounds differ: %d vs %d", perGroup.Rounds(), total.Rounds())
	}
	for r := 1; r <= total.Rounds(); r++ {
		if perGroup.GroupOf(r) != total.GroupOf(r) {
			t.Fatalf("round %d: group %d vs %d", r, perGroup.GroupOf(r), total.GroupOf(r))
		}
		a, c := perGroup.Round(r), total.Round(r)
		if len(a) != len(c) {
			t.Fatalf("round %d sizes differ", r)
		}
		for i := range a {
			if a[i].SQL() != c[i].SQL() {
				t.Fatalf("round %d query %d differs", r, i)
			}
		}
	}
}

func TestRandomSequencerRepeatBand(t *testing.T) {
	// The paper reports 45-54% round-to-round repeat under dynamic random
	// workloads. Check the sequencer lands in a sane band around it.
	for _, name := range []string{"tpch", "tpcds"} {
		b, db := buildBench(t, name)
		s := NewRandom(b, db, 13, 25, 0)
		f := RepeatFraction(s)
		if f < 0.3 || f < 0.01 {
			t.Fatalf("%s repeat fraction %v too low", name, f)
		}
		if f > 0.85 {
			t.Fatalf("%s repeat fraction %v too high", name, f)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("mysterybench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSkewVariantIsSkewed(t *testing.T) {
	_, uniDB := buildBench(t, "tpch")
	_, skewDB := buildBench(t, "tpch-skew")
	// NDV of o_custkey should collapse under zipfian FK draws.
	uni, _ := uniDB.Schema.MustTable("orders").Column("o_custkey")
	skew, _ := skewDB.Schema.MustTable("orders").Column("o_custkey")
	if skew.Stats.NDV >= uni.Stats.NDV {
		t.Fatalf("skewed NDV %d not below uniform NDV %d", skew.Stats.NDV, uni.Stats.NDV)
	}
}

func TestIMDbFixedSize(t *testing.T) {
	b, _ := buildBench(t, "imdb")
	schema := b.NewSchema()
	db1, _ := datagen.Build(schema, datagen.Options{Seed: 1, ScaleFactor: 1, MaxStoredRows: 2000})
	schema2 := b.NewSchema()
	db2, _ := datagen.Build(schema2, datagen.Options{Seed: 1, ScaleFactor: 100, MaxStoredRows: 2000})
	if db1.Schema.DataSizeBytes() != db2.Schema.DataSizeBytes() {
		t.Fatal("IMDb dataset must not scale with SF (fixed 6GB-equivalent)")
	}
}

func TestIMDbDataSizeRealistic(t *testing.T) {
	_, db := buildBench(t, "imdb")
	gb := float64(db.Schema.DataSizeBytes()) / (1 << 30)
	if gb < 2 || gb > 12 {
		t.Fatalf("IMDb logical size = %.1f GB, want a few GB (paper: 6GB)", gb)
	}
}

func TestTPCHDataSizeScales(t *testing.T) {
	b, _ := buildBench(t, "tpch")
	s1 := b.NewSchema()
	datagen.MustBuild(s1, datagen.Options{Seed: 1, ScaleFactor: 1, MaxStoredRows: 1000})
	s10 := b.NewSchema()
	datagen.MustBuild(s10, datagen.Options{Seed: 1, ScaleFactor: 10, MaxStoredRows: 1000})
	r := float64(s10.DataSizeBytes()) / float64(s1.DataSizeBytes())
	if r < 8 || r > 12 {
		t.Fatalf("SF10/SF1 size ratio = %v, want ~10", r)
	}
	// SF10 should be in the ~10GB ballpark the paper reports.
	gb := float64(s10.DataSizeBytes()) / (1 << 30)
	if gb < 4 || gb > 20 {
		t.Fatalf("TPC-H SF10 = %.1f GB, want roughly 10", gb)
	}
}
