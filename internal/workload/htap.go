package workload

import (
	"math/rand"
	"sort"

	"dbabandits/internal/query"
	"dbabandits/internal/storage"
)

// UpdateSequencer is implemented by sequencers whose rounds carry
// update-shaped statements alongside the analytical queries. The
// environment's round loop detects the capability by type assertion, so
// purely analytical sequencers stay untouched.
type UpdateSequencer interface {
	Sequencer
	// UpdatesAt returns round r's update statements (1-based,
	// deterministic; nil on analytical-only rounds).
	UpdatesAt(r int) []query.Update
	// UpdatesEnabled reports whether any round can carry updates; a
	// sequencer with updates disabled is indistinguishable from its
	// analytical base.
	UpdatesEnabled() bool
}

// HTAPOptions tune the hybrid transactional/analytical sequencer.
type HTAPOptions struct {
	// UpdateEvery makes every k-th round update-heavy (default 2 —
	// alternate analytical and hybrid rounds). Negative disables updates
	// entirely, reducing the sequencer to its analytical base.
	UpdateEvery int
	// Statements is the number of update statements per update-heavy
	// round (default 4).
	Statements int
	// MaxRowsFrac caps the fraction of a fact table's logical rows one
	// statement writes (default 0.02); drawn volumes vary uniformly in
	// (MaxRowsFrac/4, MaxRowsFrac].
	MaxRowsFrac float64
}

func (o HTAPOptions) withDefaults() HTAPOptions {
	if o.UpdateEvery == 0 {
		o.UpdateEvery = 2
	}
	if o.Statements <= 0 {
		o.Statements = 4
	}
	if o.MaxRowsFrac <= 0 {
		o.MaxRowsFrac = 0.02
	}
	return o
}

// HTAPSequencer models the hybrid transactional/analytical regime of the
// journal follow-up ("No DBA? No regret!", VLDB J. 2023): the analytical
// side is the static sequencer (every template once per round, fresh
// constants), while every UpdateEvery-th round additionally carries a
// batch of INSERT/UPDATE-shaped statements against the benchmark's fact
// tables. Index maintenance induced by those statements becomes part of
// every policy's reward, so tuners that ignore write amplification
// overpay for high-churn indexes.
type HTAPSequencer struct {
	inner *StaticSequencer
	db    *storage.Database
	seed  int64
	opts  HTAPOptions
	facts []string
}

// NewHTAP builds an HTAP sequencer over the benchmark's static analytical
// workload, with update-heavy rounds drawn against the fact tables.
func NewHTAP(bench *Benchmark, db *storage.Database, seed int64, rounds int, opts HTAPOptions) *HTAPSequencer {
	return &HTAPSequencer{
		inner: NewStatic(bench, db, seed, rounds),
		db:    db,
		seed:  seed,
		opts:  opts.withDefaults(),
		facts: FactTables(db),
	}
}

// FactTables returns the benchmark's fact tables: every table whose
// logical row count is at least a quarter of the largest table's, sorted
// by name. For the star/snowflake suites this selects exactly the big
// fact tables (e.g. the three TPC-DS sales channels) and never the
// small dimensions.
func FactTables(db *storage.Database) []string {
	var max float64
	for _, t := range db.Tables {
		if r := t.LogicalRows(); r > max {
			max = r
		}
	}
	var out []string
	for name, t := range db.Tables {
		if t.LogicalRows() >= max/4 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Round implements Sequencer: the analytical side of every round is the
// static workload, so HTAP results are directly comparable to static
// ones.
func (s *HTAPSequencer) Round(r int) []*query.Query { return s.inner.Round(r) }

// Rounds implements Sequencer.
func (s *HTAPSequencer) Rounds() int { return s.inner.Rounds() }

// UpdatesEnabled implements UpdateSequencer.
func (s *HTAPSequencer) UpdatesEnabled() bool { return s.opts.UpdateEvery > 0 && len(s.facts) > 0 }

// UpdatesAt implements UpdateSequencer: deterministic in (seed, round)
// alone, like the analytical draws, so HTAP cells parallelise with
// byte-identical results.
func (s *HTAPSequencer) UpdatesAt(r int) []query.Update {
	if !s.UpdatesEnabled() || r%s.opts.UpdateEvery != 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.seed ^ int64(r)*777_767))
	out := make([]query.Update, 0, s.opts.Statements)
	for i := 0; i < s.opts.Statements; i++ {
		table := s.facts[rng.Intn(len(s.facts))]
		tbl := s.db.MustTable(table)
		frac := s.opts.MaxRowsFrac * (0.25 + 0.75*rng.Float64())
		u := query.Update{
			Table: table,
			Rows:  frac * tbl.LogicalRows(),
		}
		if rng.Intn(2) == 0 {
			u.Kind = query.UpdateInsert
		} else {
			u.Kind = query.UpdateModify
			// 1-3 written columns, drawn without replacement in
			// catalog order for determinism.
			cols := tbl.Meta.Columns
			n := 1 + rng.Intn(3)
			if n > len(cols) {
				n = len(cols)
			}
			for _, pi := range rng.Perm(len(cols))[:n] {
				u.Columns = append(u.Columns, cols[pi].Name)
			}
			sort.Strings(u.Columns)
		}
		out = append(out, u)
	}
	return out
}

// UpdateVolume sums the logical rows written by a round's statements
// (diagnostics and tests).
func UpdateVolume(updates []query.Update) float64 {
	var total float64
	for _, u := range updates {
		total += u.Rows
	}
	return total
}
