package workload

import (
	"reflect"
	"testing"

	"dbabandits/internal/datagen"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
)

func htapDB(t *testing.T, bench *Benchmark) *storage.Database {
	t.Helper()
	db, err := datagen.Build(bench.NewSchema(), datagen.Options{
		Seed: 7, ScaleFactor: 10, MaxStoredRows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFactTablesPicksLargeTablesOnly(t *testing.T) {
	cases := map[string][]string{
		"ssb":   {"lineorder"},
		"tpcds": {"catalog_sales", "store_sales", "web_sales"},
	}
	for name, want := range cases {
		bench, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := FactTables(htapDB(t, bench))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s fact tables = %v, want %v", name, got, want)
		}
	}
}

func TestHTAPAnalyticalSideMatchesStatic(t *testing.T) {
	bench, _ := ByName("ssb")
	db := htapDB(t, bench)
	h := NewHTAP(bench, db, 7, 6, HTAPOptions{})
	s := NewStatic(bench, db, 7, 6)
	if h.Rounds() != 6 {
		t.Fatalf("rounds = %d", h.Rounds())
	}
	for r := 1; r <= 6; r++ {
		if !reflect.DeepEqual(h.Round(r), s.Round(r)) {
			t.Fatalf("round %d analytical workload diverges from the static sequencer", r)
		}
	}
}

func TestHTAPUpdateCadenceAndDeterminism(t *testing.T) {
	bench, _ := ByName("tpcds")
	db := htapDB(t, bench)
	h := NewHTAP(bench, db, 7, 10, HTAPOptions{})
	if !h.UpdatesEnabled() {
		t.Fatal("updates disabled by default")
	}
	facts := map[string]bool{}
	for _, f := range FactTables(db) {
		facts[f] = true
	}
	var sawInsert, sawModify bool
	for r := 1; r <= 10; r++ {
		ups := h.UpdatesAt(r)
		if r%2 == 1 {
			if len(ups) != 0 {
				t.Fatalf("round %d: odd rounds must be analytical-only, got %d updates", r, len(ups))
			}
			continue
		}
		if len(ups) != 4 {
			t.Fatalf("round %d: got %d updates, want the default 4", r, len(ups))
		}
		for _, u := range ups {
			if !facts[u.Table] {
				t.Fatalf("round %d: update targets non-fact table %q", r, u.Table)
			}
			if u.Rows <= 0 {
				t.Fatalf("round %d: non-positive row volume %v", r, u.Rows)
			}
			tbl := db.MustTable(u.Table)
			if u.Rows > 0.02*tbl.LogicalRows() {
				t.Fatalf("round %d: volume %v exceeds MaxRowsFrac cap", r, u.Rows)
			}
			switch u.Kind {
			case query.UpdateInsert:
				sawInsert = true
				if len(u.Columns) != 0 {
					t.Fatalf("INSERT carries column list %v", u.Columns)
				}
			case query.UpdateModify:
				sawModify = true
				if len(u.Columns) == 0 || len(u.Columns) > 3 {
					t.Fatalf("UPDATE column count %d outside 1..3", len(u.Columns))
				}
			}
		}
		// Draws are a pure function of (seed, round): replays are
		// identical, which is what makes HTAP cells parallel-safe.
		if !reflect.DeepEqual(ups, h.UpdatesAt(r)) {
			t.Fatalf("round %d updates are not deterministic", r)
		}
	}
	if !sawInsert || !sawModify {
		t.Fatalf("want both statement kinds over 10 rounds: insert=%v modify=%v", sawInsert, sawModify)
	}
}

func TestHTAPDisabledUpdatesReducesToStatic(t *testing.T) {
	bench, _ := ByName("ssb")
	db := htapDB(t, bench)
	h := NewHTAP(bench, db, 7, 8, HTAPOptions{UpdateEvery: -1})
	if h.UpdatesEnabled() {
		t.Fatal("UpdateEvery < 0 must disable updates")
	}
	for r := 1; r <= 8; r++ {
		if ups := h.UpdatesAt(r); ups != nil {
			t.Fatalf("round %d: disabled sequencer issued updates %v", r, ups)
		}
	}
}

func TestUpdateTouches(t *testing.T) {
	ins := query.Update{Table: "t", Kind: query.UpdateInsert, Rows: 10}
	if !ins.Touches([]string{"a"}) {
		t.Fatal("INSERT must touch every index")
	}
	mod := query.Update{Table: "t", Kind: query.UpdateModify, Rows: 10, Columns: []string{"b"}}
	if mod.Touches([]string{"a", "c"}) {
		t.Fatal("UPDATE on disjoint columns must not touch")
	}
	if !mod.Touches([]string{"c", "b"}) {
		t.Fatal("UPDATE sharing a column must touch")
	}
}
