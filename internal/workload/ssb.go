package workload

import (
	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// SSB returns the Star Schema Benchmark: one fact table (lineorder) with
// four dimensions and the 13 canonical query flights. SSB has "easily
// achievable high index benefits" (Section V-A) — its flights are highly
// selective dimensional slices of a single fact table.
func SSB() *Benchmark {
	return &Benchmark{Name: "ssb", NewSchema: ssbSchema, Templates: ssbTemplates()}
}

func ssbSchema() *catalog.Schema {
	date := &catalog.Table{
		Name: "date", BaseRows: 2556, FixedSize: true, PK: []string{"d_datekey"},
		Columns: []catalog.Column{
			{Name: "d_datekey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "d_year", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "d_datekey", DomainLo: 1992, DomainHi: 1998},
			{Name: "d_yearmonthnum", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "d_datekey", DomainLo: 0, DomainHi: 83},
			{Name: "d_weeknuminyear", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 53},
		},
	}
	customer := &catalog.Table{
		Name: "customer", BaseRows: 30_000, PK: []string{"c_custkey"},
		Columns: []catalog.Column{
			{Name: "c_custkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "c_region", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
			{Name: "c_nation", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "c_region", DomainLo: 0, DomainHi: 24, CorrNoise: 1},
			{Name: "c_city", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "c_nation", DomainLo: 0, DomainHi: 249, CorrNoise: 3},
		},
	}
	supplier := &catalog.Table{
		Name: "supplier", BaseRows: 2_000, PK: []string{"s_suppkey"},
		Columns: []catalog.Column{
			{Name: "s_suppkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "s_region", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
			{Name: "s_nation", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "s_region", DomainLo: 0, DomainHi: 24, CorrNoise: 1},
			{Name: "s_city", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "s_nation", DomainLo: 0, DomainHi: 249, CorrNoise: 3},
		},
	}
	part := &catalog.Table{
		Name: "part", BaseRows: 200_000, PK: []string{"p_partkey"},
		Columns: []catalog.Column{
			{Name: "p_partkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "p_mfgr", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
			{Name: "p_category", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "p_mfgr", DomainLo: 0, DomainHi: 24, CorrNoise: 1},
			{Name: "p_brand1", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "p_category", DomainLo: 0, DomainHi: 999, CorrNoise: 10},
		},
	}
	lineorder := &catalog.Table{
		Name: "lineorder", BaseRows: 6_000_000, PK: []string{"lo_orderkey", "lo_linenumber"},
		Columns: []catalog.Column{
			{Name: "lo_orderkey", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 1_500_000},
			{Name: "lo_linenumber", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 7},
			{Name: "lo_custkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "customer", RefCol: "c_custkey"},
			{Name: "lo_partkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "part", RefCol: "p_partkey"},
			{Name: "lo_suppkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "supplier", RefCol: "s_suppkey"},
			{Name: "lo_orderdate", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "date", RefCol: "d_datekey"},
			{Name: "lo_quantity", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 50},
			{Name: "lo_discount", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 10},
			{Name: "lo_revenue", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 100_000},
			{Name: "lo_supplycost", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 1_000},
		},
	}
	s := catalog.MustSchema("ssb", date, customer, supplier, part, lineorder)
	s.FKs = []catalog.ForeignKey{
		{Table: "lineorder", Column: "lo_custkey", RefTable: "customer", RefColumn: "c_custkey"},
		{Table: "lineorder", Column: "lo_partkey", RefTable: "part", RefColumn: "p_partkey"},
		{Table: "lineorder", Column: "lo_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
		{Table: "lineorder", Column: "lo_orderdate", RefTable: "date", RefColumn: "d_datekey"},
	}
	return s
}

func ssbTemplates() []TemplateSpec {
	LO, D, C, S, P := "lineorder", "date", "customer", "supplier", "part"
	revenue := []query.ColumnRef{pay(LO, "lo_revenue")}
	return []TemplateSpec{
		// Flight 1: date slice + discount/quantity bands on the fact.
		{ID: 1, Tables: []string{LO, D},
			Preds: []PredSpec{eqd(D, "d_year"), rngf(LO, "lo_discount", 0.25), ltf(LO, "lo_quantity", 0.5)},
			Joins: []query.Join{jn(LO, "lo_orderdate", D, "d_datekey")}, Payload: revenue, AggWidth: 1},
		{ID: 2, Tables: []string{LO, D},
			Preds: []PredSpec{eqd(D, "d_yearmonthnum"), rngf(LO, "lo_discount", 0.25), rngf(LO, "lo_quantity", 0.2)},
			Joins: []query.Join{jn(LO, "lo_orderdate", D, "d_datekey")}, Payload: revenue, AggWidth: 1},
		{ID: 3, Tables: []string{LO, D},
			Preds: []PredSpec{eqd(D, "d_weeknuminyear"), eqd(D, "d_year"), rngf(LO, "lo_discount", 0.25), rngf(LO, "lo_quantity", 0.2)},
			Joins: []query.Join{jn(LO, "lo_orderdate", D, "d_datekey")}, Payload: revenue, AggWidth: 1},
		// Flight 2: part category/brand drill-down with supplier region.
		{ID: 4, Tables: []string{LO, D, P, S},
			Preds:   []PredSpec{eqd(P, "p_category"), eqd(S, "s_region")},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_partkey", P, "p_partkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(D, "d_year"), pay(P, "p_brand1")}, AggWidth: 2},
		{ID: 5, Tables: []string{LO, D, P, S},
			Preds:   []PredSpec{rngf(P, "p_brand1", 0.008), eqd(S, "s_region")},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_partkey", P, "p_partkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(D, "d_year"), pay(P, "p_brand1")}, AggWidth: 2},
		{ID: 6, Tables: []string{LO, D, P, S},
			Preds:   []PredSpec{eqd(P, "p_brand1"), eqd(S, "s_region")},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_partkey", P, "p_partkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(D, "d_year"), pay(P, "p_brand1")}, AggWidth: 2},
		// Flight 3: customer/supplier geography over a year range.
		{ID: 7, Tables: []string{LO, D, C, S},
			Preds:   []PredSpec{eqd(C, "c_region"), eqd(S, "s_region"), rngf(D, "d_year", 0.85)},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(C, "c_nation"), pay(S, "s_nation"), pay(D, "d_year")}, AggWidth: 3},
		{ID: 8, Tables: []string{LO, D, C, S},
			Preds:   []PredSpec{eqd(C, "c_nation"), eqd(S, "s_nation"), rngf(D, "d_year", 0.85)},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(C, "c_city"), pay(S, "s_city"), pay(D, "d_year")}, AggWidth: 3},
		{ID: 9, Tables: []string{LO, D, C, S},
			Preds:   []PredSpec{eqd(C, "c_city"), eqd(S, "s_city"), rngf(D, "d_year", 0.85)},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(C, "c_city"), pay(S, "s_city"), pay(D, "d_year")}, AggWidth: 3},
		{ID: 10, Tables: []string{LO, D, C, S},
			Preds:   []PredSpec{eqd(C, "c_city"), eqd(S, "s_city"), eqd(D, "d_yearmonthnum")},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(C, "c_city"), pay(S, "s_city"), pay(D, "d_year")}, AggWidth: 3},
		// Flight 4: profit drill-down across all dimensions.
		{ID: 11, Tables: []string{LO, D, C, S, P},
			Preds:   []PredSpec{eqd(C, "c_region"), eqd(S, "s_region"), rngf(P, "p_mfgr", 0.4)},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey"), jn(LO, "lo_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(LO, "lo_supplycost"), pay(D, "d_year"), pay(C, "c_nation")}, AggWidth: 3},
		{ID: 12, Tables: []string{LO, D, C, S, P},
			Preds:   []PredSpec{eqd(C, "c_region"), eqd(S, "s_region"), rngf(D, "d_year", 0.3), rngf(P, "p_mfgr", 0.4)},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey"), jn(LO, "lo_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(LO, "lo_supplycost"), pay(D, "d_year"), pay(S, "s_nation"), pay(P, "p_category")}, AggWidth: 4},
		{ID: 13, Tables: []string{LO, D, C, S, P},
			Preds:   []PredSpec{eqd(C, "c_region"), eqd(S, "s_nation"), rngf(D, "d_year", 0.3), eqd(P, "p_category")},
			Joins:   []query.Join{jn(LO, "lo_orderdate", D, "d_datekey"), jn(LO, "lo_custkey", C, "c_custkey"), jn(LO, "lo_suppkey", S, "s_suppkey"), jn(LO, "lo_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(LO, "lo_revenue"), pay(LO, "lo_supplycost"), pay(D, "d_year"), pay(S, "s_city"), pay(P, "p_brand1")}, AggWidth: 4},
	}
}
