// Package workload defines the five benchmark suites of the paper's
// evaluation — TPC-H (uniform), TPC-H Skew, SSB, TPC-DS and JOB/IMDb — as
// schemas plus templatised query generators, and the workload regimes
// (static, dynamic shifting, dynamic random, and the hybrid
// transactional/analytical regime of the journal follow-up) that
// sequence them over rounds.
//
// Templates are structural models of the original benchmark queries: the
// same join shapes, predicate columns and payload widths, instantiated
// with fresh constants every round. The tuners only ever see predicates,
// payloads and observed times, so this is exactly the surface the paper's
// experiments exercise.
package workload

import (
	"fmt"
	"math/rand"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
)

// PredKind selects how a template predicate is instantiated.
type PredKind int

const (
	// PredEqData draws an equality constant from a random stored row of
	// the column — hot values are drawn proportionally to their
	// frequency, as real workloads do.
	PredEqData PredKind = iota
	// PredRangeFrac draws a range covering roughly Frac of the column's
	// value domain at a random position.
	PredRangeFrac
	// PredLtFrac / PredGtFrac draw open ranges covering roughly Frac of
	// the domain from the bottom / top.
	PredLtFrac
	PredGtFrac
)

// PredSpec is one templated predicate.
type PredSpec struct {
	Table  string
	Column string
	Kind   PredKind
	// Frac is the target domain fraction for range kinds.
	Frac float64
}

// TemplateSpec is a structural query template.
type TemplateSpec struct {
	ID      int
	Tables  []string
	Preds   []PredSpec
	Joins   []query.Join
	Payload []query.ColumnRef
	// AggWidth models the aggregation/sort tail weight.
	AggWidth int
}

// Instantiate draws one query instance from the template.
func (ts TemplateSpec) Instantiate(rng *rand.Rand, db *storage.Database, benchmark string) *query.Query {
	q := &query.Query{
		TemplateID: ts.ID,
		Benchmark:  benchmark,
		Tables:     append([]string(nil), ts.Tables...),
		Joins:      append([]query.Join(nil), ts.Joins...),
		Payload:    append([]query.ColumnRef(nil), ts.Payload...),
		AggWidth:   ts.AggWidth,
	}
	for _, ps := range ts.Preds {
		q.Filters = append(q.Filters, ps.instantiate(rng, db))
	}
	return q
}

func (ps PredSpec) instantiate(rng *rand.Rand, db *storage.Database) query.Predicate {
	tbl, ok := db.Table(ps.Table)
	if !ok {
		panic(fmt.Sprintf("workload: template references missing table %q", ps.Table))
	}
	col, ok := tbl.Column(ps.Column)
	if !ok {
		panic(fmt.Sprintf("workload: template references missing column %s.%s", ps.Table, ps.Column))
	}
	meta, _ := tbl.Meta.Column(ps.Column)
	min, max := meta.Stats.Min, meta.Stats.Max
	span := max - min + 1

	switch ps.Kind {
	case PredEqData:
		v := col[rng.Intn(len(col))]
		return query.Predicate{Table: ps.Table, Column: ps.Column, Op: query.OpEq, Lo: v, Hi: v}
	case PredRangeFrac:
		width := int64(float64(span) * ps.Frac)
		if width < 1 {
			width = 1
		}
		lo := min
		if span > width {
			lo = min + rng.Int63n(span-width)
		}
		return query.Predicate{Table: ps.Table, Column: ps.Column, Op: query.OpRange, Lo: lo, Hi: lo + width - 1}
	case PredLtFrac:
		cut := min + int64(float64(span)*ps.Frac)
		return query.Predicate{Table: ps.Table, Column: ps.Column, Op: query.OpLt, Hi: cut}
	case PredGtFrac:
		cut := max - int64(float64(span)*ps.Frac)
		return query.Predicate{Table: ps.Table, Column: ps.Column, Op: query.OpGt, Lo: cut}
	default:
		panic(fmt.Sprintf("workload: unknown predicate kind %d", ps.Kind))
	}
}

// Benchmark bundles a schema factory with its query templates.
type Benchmark struct {
	Name string
	// NewSchema returns a fresh schema copy (datagen mutates stats).
	NewSchema func() *catalog.Schema
	Templates []TemplateSpec
}

// ByName returns a benchmark suite by its canonical name: "ssb", "tpch",
// "tpch-skew", "tpcds", or "imdb".
func ByName(name string) (*Benchmark, error) {
	switch name {
	case "ssb":
		return SSB(), nil
	case "tpch":
		return TPCH(false), nil
	case "tpch-skew":
		return TPCH(true), nil
	case "tpcds":
		return TPCDS(), nil
	case "imdb":
		return IMDB(), nil
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
}

// AllNames lists the benchmark names in the paper's figure order.
func AllNames() []string {
	return []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"}
}
