package workload

import (
	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// Helper constructors keeping the template tables readable.

func eqd(t, c string) PredSpec { return PredSpec{Table: t, Column: c, Kind: PredEqData} }
func rngf(t, c string, f float64) PredSpec {
	return PredSpec{Table: t, Column: c, Kind: PredRangeFrac, Frac: f}
}
func ltf(t, c string, f float64) PredSpec {
	return PredSpec{Table: t, Column: c, Kind: PredLtFrac, Frac: f}
}
func gtf(t, c string, f float64) PredSpec {
	return PredSpec{Table: t, Column: c, Kind: PredGtFrac, Frac: f}
}
func pay(t, c string) query.ColumnRef { return query.ColumnRef{Table: t, Column: c} }
func jn(lt, lc, rt, rc string) query.Join {
	return query.Join{LeftTable: lt, LeftColumn: lc, RightTable: rt, RightColumn: rc}
}

// TPCH returns the TPC-H benchmark; skewed=true yields the TPC-H Skew
// variant: the same schema with zipfian value distributions and
// correlated columns, mirroring Microsoft's TPC-H Skew generator (the
// paper uses zipf factor 4; here s=2 on a bounded domain — see DESIGN.md
// for the substitution note: stored-sample NDVs keep the uniformity
// misestimate just as severe while preserving meaningful domains).
func TPCH(skewed bool) *Benchmark {
	name := "tpch"
	if skewed {
		name = "tpch-skew"
	}
	return &Benchmark{
		Name:      name,
		NewSchema: func() *catalog.Schema { return tpchSchema(skewed) },
		Templates: tpchTemplates(),
	}
}

func tpchSchema(skewed bool) *catalog.Schema {
	const zs = 2.0
	dist := func(uniform catalog.Distribution) catalog.Distribution {
		if !skewed {
			return uniform
		}
		switch uniform {
		case catalog.DistUniform:
			return catalog.DistZipf
		case catalog.DistForeignKey:
			return catalog.DistForeignKeyZipf
		default:
			return uniform
		}
	}
	z := func() float64 {
		if skewed {
			return zs
		}
		return 0
	}

	region := &catalog.Table{
		Name: "region", BaseRows: 5, FixedSize: true, PK: []string{"r_regionkey"},
		Columns: []catalog.Column{
			{Name: "r_regionkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "r_name", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
		},
	}
	nation := &catalog.Table{
		Name: "nation", BaseRows: 25, FixedSize: true, PK: []string{"n_nationkey"},
		Columns: []catalog.Column{
			{Name: "n_nationkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "n_regionkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "region", RefCol: "r_regionkey"},
			{Name: "n_name", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 24},
		},
	}
	supplier := &catalog.Table{
		Name: "supplier", BaseRows: 10_000, PK: []string{"s_suppkey"},
		Columns: []catalog.Column{
			{Name: "s_suppkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "s_nationkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "nation", RefCol: "n_nationkey"},
			{Name: "s_acctbal", Kind: catalog.KindDecimal, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 9999},
			{Name: "s_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
		},
	}
	customer := &catalog.Table{
		Name: "customer", BaseRows: 150_000, PK: []string{"c_custkey"},
		Columns: []catalog.Column{
			{Name: "c_custkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "c_nationkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "nation", RefCol: "n_nationkey"},
			{Name: "c_mktsegment", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 4},
			{Name: "c_acctbal", Kind: catalog.KindDecimal, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 9999},
			{Name: "c_phone", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 14999},
			{Name: "c_name", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 149_999},
		},
	}
	part := &catalog.Table{
		Name: "part", BaseRows: 200_000, PK: []string{"p_partkey"},
		Columns: []catalog.Column{
			{Name: "p_partkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "p_brand", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 24},
			{Name: "p_type", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 149},
			{Name: "p_size", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 1, DomainHi: 50},
			{Name: "p_container", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 39},
			{Name: "p_retailprice", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: 900, DomainHi: 2100},
			{Name: "p_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
			{Name: "p_name", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
		},
	}
	partsupp := &catalog.Table{
		Name: "partsupp", BaseRows: 800_000, PK: []string{"ps_partkey", "ps_suppkey"},
		Columns: []catalog.Column{
			{Name: "ps_partkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "part", RefCol: "p_partkey"},
			{Name: "ps_suppkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "supplier", RefCol: "s_suppkey"},
			{Name: "ps_availqty", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 9999},
			{Name: "ps_supplycost", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 1000},
			{Name: "ps_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
			{Name: "ps_comment2", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
		},
	}
	orders := &catalog.Table{
		Name: "orders", BaseRows: 1_500_000, PK: []string{"o_orderkey"},
		Columns: []catalog.Column{
			{Name: "o_orderkey", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "o_custkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "customer", RefCol: "c_custkey"},
			{Name: "o_orderdate", Kind: catalog.KindDate, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 2405},
			{Name: "o_orderstatus", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 2},
			{Name: "o_orderpriority", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 4},
			{Name: "o_totalprice", Kind: catalog.KindDecimal, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 1000, DomainHi: 200_000},
			{Name: "o_shippriority", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 1},
			{Name: "o_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
			{Name: "o_clerk", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 999},
		},
	}
	lineitem := &catalog.Table{
		Name: "lineitem", BaseRows: 6_000_000, PK: []string{"l_orderkey", "l_linenumber"},
		Columns: []catalog.Column{
			{Name: "l_orderkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "orders", RefCol: "o_orderkey"},
			{Name: "l_linenumber", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 7},
			{Name: "l_partkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "part", RefCol: "p_partkey"},
			{Name: "l_suppkey", Kind: catalog.KindInt, Dist: dist(catalog.DistForeignKey), ZipfS: z(), RefTable: "supplier", RefCol: "s_suppkey"},
			{Name: "l_shipdate", Kind: catalog.KindDate, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 2526},
			{Name: "l_commitdate", Kind: catalog.KindDate, Dist: catalog.DistCorrelated, CorrWith: "l_shipdate", DomainLo: 0, DomainHi: 2526, CorrNoise: 30},
			{Name: "l_receiptdate", Kind: catalog.KindDate, Dist: catalog.DistCorrelated, CorrWith: "l_shipdate", DomainLo: 0, DomainHi: 2556, CorrNoise: 15},
			{Name: "l_quantity", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 1, DomainHi: 50},
			{Name: "l_discount", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 10},
			{Name: "l_tax", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 8},
			{Name: "l_returnflag", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 2},
			{Name: "l_linestatus", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 1},
			{Name: "l_shipmode", Kind: catalog.KindInt, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 0, DomainHi: 6},
			{Name: "l_extendedprice", Kind: catalog.KindDecimal, Dist: dist(catalog.DistUniform), ZipfS: z(), DomainLo: 900, DomainHi: 105_000},
			{Name: "l_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
			{Name: "l_shipinstruct", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 3},
		},
	}
	s := catalog.MustSchema(tpchName(skewed), region, nation, supplier, customer, part, partsupp, orders, lineitem)
	s.FKs = []catalog.ForeignKey{
		{Table: "nation", Column: "n_regionkey", RefTable: "region", RefColumn: "r_regionkey"},
		{Table: "supplier", Column: "s_nationkey", RefTable: "nation", RefColumn: "n_nationkey"},
		{Table: "customer", Column: "c_nationkey", RefTable: "nation", RefColumn: "n_nationkey"},
		{Table: "partsupp", Column: "ps_partkey", RefTable: "part", RefColumn: "p_partkey"},
		{Table: "partsupp", Column: "ps_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
		{Table: "orders", Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"},
		{Table: "lineitem", Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"},
		{Table: "lineitem", Column: "l_partkey", RefTable: "part", RefColumn: "p_partkey"},
		{Table: "lineitem", Column: "l_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
	}
	return s
}

func tpchName(skewed bool) string {
	if skewed {
		return "tpch-skew"
	}
	return "tpch"
}

// tpchTemplates models the 22 TPC-H query templates: the same join
// shapes, predicate columns and payload structure as Q1-Q22, with
// LIKE/substring/EXISTS constructs approximated by equality or range
// predicates on the encoded columns.
func tpchTemplates() []TemplateSpec {
	L, O, C, P, PS, S, N, R := "lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region"
	return []TemplateSpec{
		{ID: 1, Tables: []string{L},
			Preds:    []PredSpec{ltf(L, "l_shipdate", 0.95)},
			Payload:  []query.ColumnRef{pay(L, "l_quantity"), pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(L, "l_returnflag"), pay(L, "l_linestatus")},
			AggWidth: 5},
		{ID: 2, Tables: []string{P, PS, S, N, R},
			Preds:   []PredSpec{eqd(P, "p_size"), eqd(P, "p_type"), eqd(R, "r_name")},
			Joins:   []query.Join{jn(PS, "ps_partkey", P, "p_partkey"), jn(PS, "ps_suppkey", S, "s_suppkey"), jn(S, "s_nationkey", N, "n_nationkey"), jn(N, "n_regionkey", R, "r_regionkey")},
			Payload: []query.ColumnRef{pay(S, "s_acctbal"), pay(PS, "ps_supplycost"), pay(N, "n_name")}, AggWidth: 2},
		{ID: 3, Tables: []string{C, O, L},
			Preds:   []PredSpec{eqd(C, "c_mktsegment"), ltf(O, "o_orderdate", 0.6), gtf(L, "l_shipdate", 0.4)},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey"), jn(L, "l_orderkey", O, "o_orderkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(O, "o_orderdate"), pay(O, "o_shippriority")}, AggWidth: 3},
		{ID: 4, Tables: []string{O, L},
			Preds:   []PredSpec{rngf(O, "o_orderdate", 0.037), ltf(L, "l_commitdate", 0.5)},
			Joins:   []query.Join{jn(L, "l_orderkey", O, "o_orderkey")},
			Payload: []query.ColumnRef{pay(O, "o_orderpriority")}, AggWidth: 1},
		{ID: 5, Tables: []string{C, O, L, S, N, R},
			Preds:   []PredSpec{eqd(R, "r_name"), rngf(O, "o_orderdate", 0.15)},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey"), jn(L, "l_orderkey", O, "o_orderkey"), jn(L, "l_suppkey", S, "s_suppkey"), jn(C, "c_nationkey", N, "n_nationkey"), jn(N, "n_regionkey", R, "r_regionkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(N, "n_name")}, AggWidth: 2},
		{ID: 6, Tables: []string{L},
			Preds:    []PredSpec{rngf(L, "l_shipdate", 0.15), rngf(L, "l_discount", 0.2), ltf(L, "l_quantity", 0.48)},
			Payload:  []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount")},
			AggWidth: 1},
		{ID: 7, Tables: []string{S, L, O, C, N},
			Preds:   []PredSpec{rngf(L, "l_shipdate", 0.3), eqd(N, "n_name")},
			Joins:   []query.Join{jn(L, "l_suppkey", S, "s_suppkey"), jn(L, "l_orderkey", O, "o_orderkey"), jn(O, "o_custkey", C, "c_custkey"), jn(S, "s_nationkey", N, "n_nationkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(L, "l_shipdate")}, AggWidth: 3},
		{ID: 8, Tables: []string{P, L, O, C, N, R},
			Preds:   []PredSpec{eqd(P, "p_type"), rngf(O, "o_orderdate", 0.3), eqd(R, "r_name")},
			Joins:   []query.Join{jn(L, "l_partkey", P, "p_partkey"), jn(L, "l_orderkey", O, "o_orderkey"), jn(O, "o_custkey", C, "c_custkey"), jn(C, "c_nationkey", N, "n_nationkey"), jn(N, "n_regionkey", R, "r_regionkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(O, "o_orderdate")}, AggWidth: 2},
		{ID: 9, Tables: []string{P, L, S, PS, N},
			Preds:   []PredSpec{eqd(P, "p_brand")},
			Joins:   []query.Join{jn(L, "l_partkey", P, "p_partkey"), jn(L, "l_suppkey", S, "s_suppkey"), jn(PS, "ps_partkey", P, "p_partkey"), jn(S, "s_nationkey", N, "n_nationkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(PS, "ps_supplycost"), pay(L, "l_quantity"), pay(N, "n_name")}, AggWidth: 3},
		{ID: 10, Tables: []string{C, O, L, N},
			Preds:   []PredSpec{rngf(O, "o_orderdate", 0.08), eqd(L, "l_returnflag")},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey"), jn(L, "l_orderkey", O, "o_orderkey"), jn(C, "c_nationkey", N, "n_nationkey")},
			Payload: []query.ColumnRef{pay(C, "c_name"), pay(C, "c_acctbal"), pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(N, "n_name")}, AggWidth: 4},
		{ID: 11, Tables: []string{PS, S, N},
			Preds:   []PredSpec{eqd(N, "n_name")},
			Joins:   []query.Join{jn(PS, "ps_suppkey", S, "s_suppkey"), jn(S, "s_nationkey", N, "n_nationkey")},
			Payload: []query.ColumnRef{pay(PS, "ps_supplycost"), pay(PS, "ps_availqty")}, AggWidth: 2},
		{ID: 12, Tables: []string{O, L},
			Preds:   []PredSpec{eqd(L, "l_shipmode"), rngf(L, "l_receiptdate", 0.15)},
			Joins:   []query.Join{jn(L, "l_orderkey", O, "o_orderkey")},
			Payload: []query.ColumnRef{pay(O, "o_orderpriority"), pay(L, "l_shipmode")}, AggWidth: 2},
		{ID: 13, Tables: []string{C, O},
			Preds:   []PredSpec{eqd(O, "o_orderpriority")},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey")},
			Payload: []query.ColumnRef{pay(C, "c_custkey")}, AggWidth: 2},
		{ID: 14, Tables: []string{L, P},
			Preds:   []PredSpec{rngf(L, "l_shipdate", 0.04)},
			Joins:   []query.Join{jn(L, "l_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(P, "p_type")}, AggWidth: 1},
		{ID: 15, Tables: []string{L, S},
			Preds:   []PredSpec{rngf(L, "l_shipdate", 0.08)},
			Joins:   []query.Join{jn(L, "l_suppkey", S, "s_suppkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount"), pay(S, "s_acctbal")}, AggWidth: 2},
		{ID: 16, Tables: []string{PS, P},
			Preds:   []PredSpec{eqd(P, "p_brand"), eqd(P, "p_type"), rngf(P, "p_size", 0.16)},
			Joins:   []query.Join{jn(PS, "ps_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(PS, "ps_suppkey"), pay(P, "p_brand"), pay(P, "p_type"), pay(P, "p_size")}, AggWidth: 3},
		{ID: 17, Tables: []string{L, P},
			Preds:   []PredSpec{eqd(P, "p_brand"), eqd(P, "p_container"), ltf(L, "l_quantity", 0.04)},
			Joins:   []query.Join{jn(L, "l_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_quantity")}, AggWidth: 1},
		{ID: 18, Tables: []string{C, O, L},
			Preds:   []PredSpec{gtf(L, "l_quantity", 0.04)},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey"), jn(L, "l_orderkey", O, "o_orderkey")},
			Payload: []query.ColumnRef{pay(C, "c_name"), pay(O, "o_orderdate"), pay(O, "o_totalprice"), pay(L, "l_quantity")}, AggWidth: 4},
		{ID: 19, Tables: []string{L, P},
			Preds:   []PredSpec{eqd(P, "p_brand"), eqd(P, "p_container"), rngf(L, "l_quantity", 0.2), rngf(P, "p_size", 0.2)},
			Joins:   []query.Join{jn(L, "l_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(L, "l_extendedprice"), pay(L, "l_discount")}, AggWidth: 1},
		{ID: 20, Tables: []string{S, N, PS, P},
			Preds:   []PredSpec{eqd(N, "n_name"), eqd(P, "p_brand")},
			Joins:   []query.Join{jn(S, "s_nationkey", N, "n_nationkey"), jn(PS, "ps_suppkey", S, "s_suppkey"), jn(PS, "ps_partkey", P, "p_partkey")},
			Payload: []query.ColumnRef{pay(S, "s_acctbal"), pay(PS, "ps_availqty")}, AggWidth: 1},
		{ID: 21, Tables: []string{S, L, O, N},
			Preds:   []PredSpec{eqd(O, "o_orderstatus"), eqd(N, "n_name")},
			Joins:   []query.Join{jn(L, "l_suppkey", S, "s_suppkey"), jn(L, "l_orderkey", O, "o_orderkey"), jn(S, "s_nationkey", N, "n_nationkey")},
			Payload: []query.ColumnRef{pay(S, "s_acctbal"), pay(L, "l_quantity")}, AggWidth: 2},
		{ID: 22, Tables: []string{C, O},
			Preds:   []PredSpec{gtf(C, "c_acctbal", 0.4), eqd(C, "c_nationkey")},
			Joins:   []query.Join{jn(O, "o_custkey", C, "c_custkey")},
			Payload: []query.ColumnRef{pay(C, "c_acctbal"), pay(O, "o_totalprice")}, AggWidth: 2},
	}
}
