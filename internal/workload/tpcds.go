package workload

import (
	"math/rand"

	"dbabandits/internal/catalog"
)

// TPCDS returns the TPC-DS benchmark: a snowflake schema over three sales
// channels plus returns, and 99 query templates. The templates are
// generated deterministically from TPC-DS's four query classes
// (reporting, ad-hoc, iterative, data mining): each combines one fact
// table with 1-4 dimensions, dimensional predicates of varying
// selectivity, and measure payloads of varying width. TPC-DS's role in
// the paper is its huge candidate space ("over 3200 indices"), which this
// reproduction preserves by predicate-column diversity.
func TPCDS() *Benchmark {
	return &Benchmark{Name: "tpcds", NewSchema: tpcdsSchema, Templates: tpcdsTemplates()}
}

func tpcdsSchema() *catalog.Schema {
	dateDim := &catalog.Table{
		Name: "date_dim", BaseRows: 73049, FixedSize: true, PK: []string{"d_date_sk"},
		Columns: []catalog.Column{
			{Name: "d_date_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "d_year", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "d_date_sk", DomainLo: 1900, DomainHi: 2100},
			{Name: "d_moy", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 12},
			{Name: "d_qoy", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 4},
			{Name: "d_dow", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 6},
		},
	}
	item := &catalog.Table{
		Name: "item", BaseRows: 18_000, PK: []string{"i_item_sk"},
		Columns: []catalog.Column{
			{Name: "i_item_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "i_category", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9},
			{Name: "i_class", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "i_category", DomainLo: 0, DomainHi: 99, CorrNoise: 2},
			{Name: "i_brand", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "i_class", DomainLo: 0, DomainHi: 999, CorrNoise: 10},
			{Name: "i_manufact", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 999},
			{Name: "i_color", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.2, DomainLo: 0, DomainHi: 91},
			{Name: "i_current_price", Kind: catalog.KindDecimal, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 1, DomainHi: 300},
		},
	}
	customer := &catalog.Table{
		Name: "customer", BaseRows: 100_000, PK: []string{"c_customer_sk"},
		Columns: []catalog.Column{
			{Name: "c_customer_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "c_current_addr_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "customer_address", RefCol: "ca_address_sk"},
			{Name: "c_current_cdemo_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "customer_demographics", RefCol: "cd_demo_sk"},
			{Name: "c_birth_year", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1924, DomainHi: 1992},
			{Name: "c_birth_month", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 12},
		},
	}
	customerAddress := &catalog.Table{
		Name: "customer_address", BaseRows: 50_000, PK: []string{"ca_address_sk"},
		Columns: []catalog.Column{
			{Name: "ca_address_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "ca_state", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 0, DomainHi: 50},
			{Name: "ca_city", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 0, DomainHi: 700},
			{Name: "ca_gmt_offset", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 1.5, DomainLo: -10, DomainHi: -5},
		},
	}
	customerDemo := &catalog.Table{
		Name: "customer_demographics", BaseRows: 100_000, PK: []string{"cd_demo_sk"},
		Columns: []catalog.Column{
			{Name: "cd_demo_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "cd_gender", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 1},
			{Name: "cd_marital_status", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
			{Name: "cd_education_status", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 6},
			{Name: "cd_dep_count", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 6},
		},
	}
	householdDemo := &catalog.Table{
		Name: "household_demographics", BaseRows: 7_200, FixedSize: true, PK: []string{"hd_demo_sk"},
		Columns: []catalog.Column{
			{Name: "hd_demo_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "hd_income_band_sk", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 20},
			{Name: "hd_buy_potential", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 5},
			{Name: "hd_dep_count", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9},
		},
	}
	store := &catalog.Table{
		Name: "store", BaseRows: 120, FixedSize: true, PK: []string{"s_store_sk"},
		Columns: []catalog.Column{
			{Name: "s_store_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "s_state", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 20},
			{Name: "s_county", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 30},
		},
	}
	promotion := &catalog.Table{
		Name: "promotion", BaseRows: 300, FixedSize: true, PK: []string{"p_promo_sk"},
		Columns: []catalog.Column{
			{Name: "p_promo_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "p_channel_email", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 1},
			{Name: "p_channel_tv", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 1},
		},
	}
	warehouse := &catalog.Table{
		Name: "warehouse", BaseRows: 6, FixedSize: true, PK: []string{"w_warehouse_sk"},
		Columns: []catalog.Column{
			{Name: "w_warehouse_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "w_state", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 20},
		},
	}
	shipMode := &catalog.Table{
		Name: "ship_mode", BaseRows: 20, FixedSize: true, PK: []string{"sm_ship_mode_sk"},
		Columns: []catalog.Column{
			{Name: "sm_ship_mode_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "sm_type", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 5},
		},
	}
	timeDim := &catalog.Table{
		Name: "time_dim", BaseRows: 86_400, FixedSize: true, PK: []string{"t_time_sk"},
		Columns: []catalog.Column{
			{Name: "t_time_sk", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "t_hour", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "t_time_sk", DomainLo: 0, DomainHi: 23},
			{Name: "t_meal_time", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 3},
		},
	}

	salesCols := func(prefix, datekCol string) []catalog.Column {
		return []catalog.Column{
			{Name: prefix + "_item_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.2, RefTable: "item", RefCol: "i_item_sk"},
			{Name: prefix + "_customer_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.1, RefTable: "customer", RefCol: "c_customer_sk"},
			{Name: datekCol, Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "date_dim", RefCol: "d_date_sk"},
			{Name: prefix + "_quantity", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 100},
			{Name: prefix + "_sales_price", Kind: catalog.KindDecimal, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 1, DomainHi: 300},
			{Name: prefix + "_net_profit", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: -5000, DomainHi: 15_000},
			{Name: prefix + "_promo_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "promotion", RefCol: "p_promo_sk"},
		}
	}

	storeSales := &catalog.Table{
		Name: "store_sales", BaseRows: 2_880_000, PK: []string{"ss_ticket_number"},
		Columns: append([]catalog.Column{
			{Name: "ss_ticket_number", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "ss_store_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.3, RefTable: "store", RefCol: "s_store_sk"},
			{Name: "ss_hdemo_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "household_demographics", RefCol: "hd_demo_sk"},
			{Name: "ss_sold_time_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "time_dim", RefCol: "t_time_sk"},
		}, salesCols("ss", "ss_sold_date_sk")...),
	}
	catalogSales := &catalog.Table{
		Name: "catalog_sales", BaseRows: 1_440_000, PK: []string{"cs_order_number"},
		Columns: append([]catalog.Column{
			{Name: "cs_order_number", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "cs_ship_mode_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "ship_mode", RefCol: "sm_ship_mode_sk"},
			{Name: "cs_warehouse_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "warehouse", RefCol: "w_warehouse_sk"},
		}, salesCols("cs", "cs_sold_date_sk")...),
	}
	webSales := &catalog.Table{
		Name: "web_sales", BaseRows: 720_000, PK: []string{"ws_order_number"},
		Columns: append([]catalog.Column{
			{Name: "ws_order_number", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "ws_ship_addr_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "customer_address", RefCol: "ca_address_sk"},
		}, salesCols("ws", "ws_sold_date_sk")...),
	}
	storeReturns := &catalog.Table{
		Name: "store_returns", BaseRows: 288_000, PK: []string{"sr_ticket_number"},
		Columns: []catalog.Column{
			{Name: "sr_ticket_number", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "sr_item_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.2, RefTable: "item", RefCol: "i_item_sk"},
			{Name: "sr_customer_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.1, RefTable: "customer", RefCol: "c_customer_sk"},
			{Name: "sr_returned_date_sk", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "date_dim", RefCol: "d_date_sk"},
			{Name: "sr_return_quantity", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 100},
			{Name: "sr_return_amt", Kind: catalog.KindDecimal, Dist: catalog.DistZipf, ZipfS: 1.1, DomainLo: 1, DomainHi: 10_000},
			{Name: "sr_reason_sk", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 35},
		},
	}

	s := catalog.MustSchema("tpcds",
		dateDim, timeDim, item, customer, customerAddress, customerDemo,
		householdDemo, store, promotion, warehouse, shipMode,
		storeSales, catalogSales, webSales, storeReturns,
	)
	s.FKs = []catalog.ForeignKey{
		{Table: "store_sales", Column: "ss_item_sk", RefTable: "item", RefColumn: "i_item_sk"},
		{Table: "store_sales", Column: "ss_customer_sk", RefTable: "customer", RefColumn: "c_customer_sk"},
		{Table: "store_sales", Column: "ss_sold_date_sk", RefTable: "date_dim", RefColumn: "d_date_sk"},
		{Table: "store_sales", Column: "ss_store_sk", RefTable: "store", RefColumn: "s_store_sk"},
		{Table: "catalog_sales", Column: "cs_item_sk", RefTable: "item", RefColumn: "i_item_sk"},
		{Table: "catalog_sales", Column: "cs_customer_sk", RefTable: "customer", RefColumn: "c_customer_sk"},
		{Table: "catalog_sales", Column: "cs_sold_date_sk", RefTable: "date_dim", RefColumn: "d_date_sk"},
		{Table: "web_sales", Column: "ws_item_sk", RefTable: "item", RefColumn: "i_item_sk"},
		{Table: "web_sales", Column: "ws_customer_sk", RefTable: "customer", RefColumn: "c_customer_sk"},
		{Table: "web_sales", Column: "ws_sold_date_sk", RefTable: "date_dim", RefColumn: "d_date_sk"},
		{Table: "store_returns", Column: "sr_item_sk", RefTable: "item", RefColumn: "i_item_sk"},
		{Table: "store_returns", Column: "sr_customer_sk", RefTable: "customer", RefColumn: "c_customer_sk"},
		{Table: "store_returns", Column: "sr_returned_date_sk", RefTable: "date_dim", RefColumn: "d_date_sk"},
	}
	return s
}

// tpcdsFact describes one sales channel for template generation.
type tpcdsFact struct {
	table    string
	itemFK   string
	custFK   string
	dateFK   string
	measures []string
	extraDim []tpcdsDim // channel-specific dimensions
}

// tpcdsDim is a joinable dimension with its predicate columns.
type tpcdsDim struct {
	table   string
	pk      string
	factFK  string
	eqCols  []string
	rngCols []string
}

// tpcdsTemplates generates the 99 templates deterministically.
func tpcdsTemplates() []TemplateSpec {
	rng := rand.New(rand.NewSource(420))

	dateDim := func(fk string) tpcdsDim {
		return tpcdsDim{table: "date_dim", pk: "d_date_sk", factFK: fk,
			eqCols: []string{"d_year", "d_moy", "d_qoy", "d_dow"}, rngCols: []string{"d_year"}}
	}
	itemDim := func(fk string) tpcdsDim {
		return tpcdsDim{table: "item", pk: "i_item_sk", factFK: fk,
			eqCols: []string{"i_category", "i_class", "i_brand", "i_color", "i_manufact"}, rngCols: []string{"i_current_price"}}
	}
	custDim := func(fk string) tpcdsDim {
		return tpcdsDim{table: "customer", pk: "c_customer_sk", factFK: fk,
			eqCols: []string{"c_birth_month"}, rngCols: []string{"c_birth_year"}}
	}

	facts := []tpcdsFact{
		{
			table: "store_sales", itemFK: "ss_item_sk", custFK: "ss_customer_sk", dateFK: "ss_sold_date_sk",
			measures: []string{"ss_quantity", "ss_sales_price", "ss_net_profit"},
			extraDim: []tpcdsDim{
				{table: "store", pk: "s_store_sk", factFK: "ss_store_sk", eqCols: []string{"s_state", "s_county"}},
				{table: "household_demographics", pk: "hd_demo_sk", factFK: "ss_hdemo_sk", eqCols: []string{"hd_buy_potential", "hd_dep_count"}, rngCols: []string{"hd_income_band_sk"}},
				{table: "time_dim", pk: "t_time_sk", factFK: "ss_sold_time_sk", eqCols: []string{"t_hour", "t_meal_time"}},
				{table: "promotion", pk: "p_promo_sk", factFK: "ss_promo_sk", eqCols: []string{"p_channel_email", "p_channel_tv"}},
			},
		},
		{
			table: "catalog_sales", itemFK: "cs_item_sk", custFK: "cs_customer_sk", dateFK: "cs_sold_date_sk",
			measures: []string{"cs_quantity", "cs_sales_price", "cs_net_profit"},
			extraDim: []tpcdsDim{
				{table: "ship_mode", pk: "sm_ship_mode_sk", factFK: "cs_ship_mode_sk", eqCols: []string{"sm_type"}},
				{table: "warehouse", pk: "w_warehouse_sk", factFK: "cs_warehouse_sk", eqCols: []string{"w_state"}},
				{table: "promotion", pk: "p_promo_sk", factFK: "cs_promo_sk", eqCols: []string{"p_channel_email", "p_channel_tv"}},
			},
		},
		{
			table: "web_sales", itemFK: "ws_item_sk", custFK: "ws_customer_sk", dateFK: "ws_sold_date_sk",
			measures: []string{"ws_quantity", "ws_sales_price", "ws_net_profit"},
			extraDim: []tpcdsDim{
				{table: "customer_address", pk: "ca_address_sk", factFK: "ws_ship_addr_sk", eqCols: []string{"ca_state", "ca_city"}, rngCols: []string{"ca_gmt_offset"}},
				{table: "promotion", pk: "p_promo_sk", factFK: "ws_promo_sk", eqCols: []string{"p_channel_email", "p_channel_tv"}},
			},
		},
		{
			table: "store_returns", itemFK: "sr_item_sk", custFK: "sr_customer_sk", dateFK: "sr_returned_date_sk",
			measures: []string{"sr_return_quantity", "sr_return_amt"},
		},
	}

	var out []TemplateSpec
	id := 1
	for id <= 99 {
		f := facts[(id-1)%len(facts)]
		dims := []tpcdsDim{dateDim(f.dateFK)}
		// Vary dimensionality: item and customer dims cycle in; channel
		// dims appear based on the template index.
		if id%2 == 0 {
			dims = append(dims, itemDim(f.itemFK))
		}
		if id%5 == 0 {
			dims = append(dims, custDim(f.custFK))
		}
		if len(f.extraDim) > 0 && id%3 == 0 {
			dims = append(dims, f.extraDim[(id/3)%len(f.extraDim)])
		}

		ts := TemplateSpec{ID: id, Tables: []string{f.table}}
		for _, d := range dims {
			ts.Tables = append(ts.Tables, d.table)
			ts.Joins = append(ts.Joins, jn(f.table, d.factFK, d.table, d.pk))
			// 1-2 predicates per dimension, deterministic variety.
			if len(d.eqCols) > 0 {
				ts.Preds = append(ts.Preds, eqd(d.table, d.eqCols[rng.Intn(len(d.eqCols))]))
			}
			if len(d.rngCols) > 0 && rng.Intn(2) == 0 {
				ts.Preds = append(ts.Preds, rngf(d.table, d.rngCols[rng.Intn(len(d.rngCols))], 0.05+rng.Float64()*0.3))
			}
		}
		// Occasionally a fact-local predicate (quantity band).
		if id%4 == 0 {
			ts.Preds = append(ts.Preds, rngf(f.table, f.measures[0], 0.1+rng.Float64()*0.4))
		}
		// Payload: 1-3 measures.
		nm := 1 + rng.Intn(len(f.measures))
		for m := 0; m < nm; m++ {
			ts.Payload = append(ts.Payload, pay(f.table, f.measures[m]))
		}
		ts.AggWidth = 1 + rng.Intn(4)
		out = append(out, ts)
		id++
	}
	return out
}
