package workload

import (
	"math/rand"

	"dbabandits/internal/query"
	"dbabandits/internal/storage"
)

// Sequencer produces each round's mini-workload (1-based rounds).
type Sequencer interface {
	// Round returns the queries of round r; instances are fresh draws of
	// their templates.
	Round(r int) []*query.Query
	// Rounds returns the total number of rounds in the experiment.
	Rounds() int
}

// StaticSequencer invokes every template once per round with fresh
// constants — the paper's static workloads ("all query templates in the
// benchmark are invoked once every round, each with a different query
// instance of the template"), default 25 rounds.
type StaticSequencer struct {
	bench  *Benchmark
	db     *storage.Database
	seed   int64
	rounds int
}

// NewStatic builds a static sequencer.
func NewStatic(bench *Benchmark, db *storage.Database, seed int64, rounds int) *StaticSequencer {
	if rounds <= 0 {
		rounds = 25
	}
	return &StaticSequencer{bench: bench, db: db, seed: seed, rounds: rounds}
}

// Round implements Sequencer.
func (s *StaticSequencer) Round(r int) []*query.Query {
	rng := rand.New(rand.NewSource(s.seed ^ int64(r)*1_000_003))
	out := make([]*query.Query, 0, len(s.bench.Templates))
	for _, ts := range s.bench.Templates {
		out = append(out, ts.Instantiate(rng, s.db, s.bench.Name))
	}
	return out
}

// Rounds implements Sequencer.
func (s *StaticSequencer) Rounds() int { return s.rounds }

// ShiftingSequencer divides the templates into equal groups; each group
// runs for a span of rounds, then the workload switches to the next group
// with no overlap ("the region of interest shifts over time from one
// group of queries to another"). Defaults: 4 groups x 20 rounds.
//
// Round totals need not divide evenly: the rounds are floor-partitioned
// across the groups (group g covers rounds g*total/G+1 through
// (g+1)*total/G), the same ragged split policy.InvocationRounds assumes,
// so e.g. 10 rounds over 4 groups run as spans of 2, 3, 2 and 3 rounds
// instead of being truncated to 8.
type ShiftingSequencer struct {
	bench       *Benchmark
	db          *storage.Database
	seed        int64
	groups      [][]TemplateSpec
	totalRounds int
}

// NewShifting builds a shifting sequencer from a per-group round count
// (the paper's 4 x 20 parameterisation).
func NewShifting(bench *Benchmark, db *storage.Database, seed int64, numGroups, roundsPerGroup int) *ShiftingSequencer {
	if numGroups <= 0 {
		numGroups = 4
	}
	if roundsPerGroup <= 0 {
		roundsPerGroup = 20
	}
	return NewShiftingTotal(bench, db, seed, numGroups, numGroups*roundsPerGroup)
}

// NewShiftingTotal builds a shifting sequencer from a total round count,
// supporting ragged totals not divisible by the group count.
func NewShiftingTotal(bench *Benchmark, db *storage.Database, seed int64, numGroups, totalRounds int) *ShiftingSequencer {
	if numGroups <= 0 {
		numGroups = 4
	}
	if totalRounds <= 0 {
		totalRounds = numGroups * 20
	}
	// Random equal division of templates into groups, deterministic in
	// the seed.
	rng := rand.New(rand.NewSource(seed*31 + 7))
	perm := rng.Perm(len(bench.Templates))
	groups := make([][]TemplateSpec, numGroups)
	for i, pi := range perm {
		g := i * numGroups / len(perm)
		if g >= numGroups {
			g = numGroups - 1
		}
		groups[g] = append(groups[g], bench.Templates[pi])
	}
	return &ShiftingSequencer{
		bench: bench, db: db, seed: seed,
		groups: groups, totalRounds: totalRounds,
	}
}

// GroupOf returns which template group round r draws from: the group
// whose floor-partitioned span contains r.
func (s *ShiftingSequencer) GroupOf(r int) int {
	numGroups := len(s.groups)
	for g := 0; g < numGroups; g++ {
		if r <= (g+1)*s.totalRounds/numGroups {
			return g
		}
	}
	return numGroups - 1
}

// Round implements Sequencer.
func (s *ShiftingSequencer) Round(r int) []*query.Query {
	rng := rand.New(rand.NewSource(s.seed ^ int64(r)*999_983))
	group := s.groups[s.GroupOf(r)]
	out := make([]*query.Query, 0, len(group))
	for _, ts := range group {
		out = append(out, ts.Instantiate(rng, s.db, s.bench.Name))
	}
	return out
}

// Rounds implements Sequencer.
func (s *ShiftingSequencer) Rounds() int { return s.totalRounds }

// RandomSequencer models truly ad-hoc workloads: each round draws a
// random multiset of templates (the paper reports 45-54% round-to-round
// template repeat under this scheme; drawing k templates uniformly from n
// with replacement reproduces that band for the benchmark sizes used).
type RandomSequencer struct {
	bench           *Benchmark
	db              *storage.Database
	seed            int64
	rounds          int
	queriesPerRound int
}

// NewRandom builds a random sequencer; queriesPerRound defaults to the
// template count (so the total sequence matches the static experiment's
// query volume, as in the paper).
func NewRandom(bench *Benchmark, db *storage.Database, seed int64, rounds, queriesPerRound int) *RandomSequencer {
	if rounds <= 0 {
		rounds = 25
	}
	if queriesPerRound <= 0 {
		queriesPerRound = len(bench.Templates)
	}
	return &RandomSequencer{bench: bench, db: db, seed: seed, rounds: rounds, queriesPerRound: queriesPerRound}
}

// Round implements Sequencer.
func (s *RandomSequencer) Round(r int) []*query.Query {
	rng := rand.New(rand.NewSource(s.seed ^ int64(r)*899_981))
	out := make([]*query.Query, 0, s.queriesPerRound)
	for i := 0; i < s.queriesPerRound; i++ {
		ts := s.bench.Templates[rng.Intn(len(s.bench.Templates))]
		out = append(out, ts.Instantiate(rng, s.db, s.bench.Name))
	}
	return out
}

// Rounds implements Sequencer.
func (s *RandomSequencer) Rounds() int { return s.rounds }

// RepeatFraction measures the round-to-round template repeat rate of a
// sequencer over its rounds — used to validate the 45-54% band the paper
// reports for dynamic random workloads.
func RepeatFraction(s Sequencer) float64 {
	prev := map[int]bool{}
	var repeats, total int
	for r := 1; r <= s.Rounds(); r++ {
		cur := map[int]bool{}
		for _, q := range s.Round(r) {
			cur[q.TemplateID] = true
		}
		if r > 1 {
			for id := range cur {
				total++
				if prev[id] {
					repeats++
				}
			}
		}
		prev = cur
	}
	if total == 0 {
		return 0
	}
	return float64(repeats) / float64(total)
}
