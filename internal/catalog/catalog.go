// Package catalog defines logical database schemas: tables, columns,
// keys, and the per-column statistics that the (deliberately naive) query
// optimiser consumes. All values are encoded as int64; strings and dates
// in the benchmark schemas are dictionary- or epoch-encoded by the data
// generators, which is invisible to every consumer in this repository
// because predicates compare encoded values only.
package catalog

import (
	"fmt"
	"sort"
)

// ColumnKind describes the logical type of a column. Every kind is stored
// as int64; the kind matters only for width accounting and for the data
// generators.
type ColumnKind int

const (
	KindInt ColumnKind = iota
	KindDate
	KindString // dictionary-encoded
	KindDecimal
)

// String implements fmt.Stringer.
func (k ColumnKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindDate:
		return "date"
	case KindString:
		return "string"
	case KindDecimal:
		return "decimal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// WidthBytes returns the assumed on-disk width of one value of this kind,
// used by the page-count and index-size models.
func (k ColumnKind) WidthBytes() int64 {
	switch k {
	case KindString:
		return 24 // average var-string payload
	case KindDecimal:
		return 8
	case KindDate:
		return 4
	default:
		return 8
	}
}

// Distribution identifies the generator family of a column. The optimiser
// never sees this; only datagen and tests do.
type Distribution int

const (
	DistUniform Distribution = iota
	DistZipf
	DistSequential     // 1..N (primary keys)
	DistForeignKey     // uniform draw over a referenced table's key
	DistForeignKeyZipf // zipfian draw over a referenced table's key
	DistCorrelated     // value derived from another column + noise
)

// ColumnStats is the single-column statistics view exposed to the
// optimiser: min, max, and number of distinct values. Commercial systems
// have richer histograms; the paper's point is that even those retain
// uniformity and independence assumptions, which this triple forces.
type ColumnStats struct {
	Min, Max int64
	NDV      int64 // number of distinct values (logical)
	NullFrac float64
}

// Column is one attribute of a table.
type Column struct {
	Name string
	Kind ColumnKind

	// Generator configuration (ground truth about the data).
	Dist      Distribution
	DomainLo  int64   // uniform/zipf domain lower bound
	DomainHi  int64   // uniform/zipf domain upper bound (inclusive)
	ZipfS     float64 // zipf exponent when Dist is DistZipf/DistForeignKeyZipf
	RefTable  string  // for FK distributions
	RefCol    string
	CorrWith  string // for DistCorrelated: source column in same table
	CorrNoise int64  // +- noise range applied to correlated values

	// Stats visible to the optimiser (populated by datagen.Build).
	Stats ColumnStats
}

// Table is a logical table.
type Table struct {
	Name     string
	Columns  []Column
	RowCount int64 // logical row count at the configured scale factor
	PK       []string
	// BaseRows is the row count at scale factor 1; datagen derives
	// RowCount from it. Fixed-size tables (e.g. TPC-H nation/region) set
	// FixedSize and keep BaseRows at any scale factor.
	BaseRows  int64
	FixedSize bool
	// SampleMult is the physical-row multiplier (logical rows / stored
	// rows) set by datagen. Column NDV statistics are computed on the
	// stored sample, so cardinality estimation over joins must divide by
	// the smaller side's multiplier to stay consistent with the sampled
	// ground truth (see optimizer.JoinCardinality). 0 means 1.
	SampleMult float64

	colIdx map[string]int
}

// Column returns the column definition by name.
func (t *Table) Column(name string) (*Column, bool) {
	if t.colIdx == nil {
		t.buildIndex()
	}
	i, ok := t.colIdx[name]
	if !ok {
		return nil, false
	}
	return &t.Columns[i], true
}

// ColumnIndex returns the positional index of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if t.colIdx == nil {
		t.buildIndex()
	}
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

func (t *Table) buildIndex() {
	t.colIdx = make(map[string]int, len(t.Columns))
	for i := range t.Columns {
		t.colIdx[t.Columns[i].Name] = i
	}
}

// RowWidthBytes returns the assumed width of one row.
func (t *Table) RowWidthBytes() int64 {
	var w int64
	for i := range t.Columns {
		w += t.Columns[i].Kind.WidthBytes()
	}
	if w < 8 {
		w = 8
	}
	return w
}

// SizeBytes returns the logical heap size of the table.
func (t *Table) SizeBytes() int64 { return t.RowCount * t.RowWidthBytes() }

// ForeignKey declares that Table.Column references RefTable.RefColumn.
type ForeignKey struct {
	Table, Column       string
	RefTable, RefColumn string
}

// Schema is a named set of tables plus foreign keys.
type Schema struct {
	Name   string
	Tables []*Table
	FKs    []ForeignKey

	tblIdx map[string]int
}

// NewSchema builds a schema and validates table-name uniqueness.
func NewSchema(name string, tables ...*Table) (*Schema, error) {
	s := &Schema{Name: name, Tables: tables, tblIdx: make(map[string]int, len(tables))}
	for i, t := range tables {
		if _, dup := s.tblIdx[t.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate table %q in schema %q", t.Name, name)
		}
		s.tblIdx[t.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; used by the static
// benchmark definitions whose validity is covered by tests.
func MustSchema(name string, tables ...*Table) *Schema {
	s, err := NewSchema(name, tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Table looks up a table by name.
func (s *Schema) Table(name string) (*Table, bool) {
	if s.tblIdx == nil {
		s.tblIdx = make(map[string]int, len(s.Tables))
		for i, t := range s.Tables {
			s.tblIdx[t.Name] = i
		}
	}
	i, ok := s.tblIdx[name]
	if !ok {
		return nil, false
	}
	return s.Tables[i], true
}

// MustTable is Table that panics when the table is missing.
func (s *Schema) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("catalog: no table %q in schema %q", name, s.Name))
	}
	return t
}

// DataSizeBytes returns the total logical heap size across tables; the
// experiments grant the tuners a memory budget of 1x this value.
func (s *Schema) DataSizeBytes() int64 {
	var total int64
	for _, t := range s.Tables {
		total += t.SizeBytes()
	}
	return total
}

// ColumnCount returns the number of columns across all tables; the MAB
// context dimension is derived from it.
func (s *Schema) ColumnCount() int {
	var n int
	for _, t := range s.Tables {
		n += len(t.Columns)
	}
	return n
}

// Validate checks referential integrity of FK declarations and PK columns.
func (s *Schema) Validate() error {
	for _, t := range s.Tables {
		for _, pk := range t.PK {
			if _, ok := t.Column(pk); !ok {
				return fmt.Errorf("catalog: table %q PK column %q missing", t.Name, pk)
			}
		}
		seen := map[string]bool{}
		for i := range t.Columns {
			if seen[t.Columns[i].Name] {
				return fmt.Errorf("catalog: table %q duplicate column %q", t.Name, t.Columns[i].Name)
			}
			seen[t.Columns[i].Name] = true
		}
	}
	for _, fk := range s.FKs {
		t, ok := s.Table(fk.Table)
		if !ok {
			return fmt.Errorf("catalog: FK from missing table %q", fk.Table)
		}
		if _, ok := t.Column(fk.Column); !ok {
			return fmt.Errorf("catalog: FK from missing column %s.%s", fk.Table, fk.Column)
		}
		rt, ok := s.Table(fk.RefTable)
		if !ok {
			return fmt.Errorf("catalog: FK to missing table %q", fk.RefTable)
		}
		if _, ok := rt.Column(fk.RefColumn); !ok {
			return fmt.Errorf("catalog: FK to missing column %s.%s", fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}

// SortedTableNames returns table names in deterministic order.
func (s *Schema) SortedTableNames() []string {
	names := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
