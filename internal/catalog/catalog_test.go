package catalog

import "testing"

func sampleSchema() *Schema {
	t1 := &Table{
		Name:     "orders",
		BaseRows: 1000,
		PK:       []string{"o_id"},
		Columns: []Column{
			{Name: "o_id", Kind: KindInt, Dist: DistSequential},
			{Name: "o_custkey", Kind: KindInt, Dist: DistForeignKey, RefTable: "customer", RefCol: "c_id"},
			{Name: "o_date", Kind: KindDate, Dist: DistUniform, DomainLo: 0, DomainHi: 2555},
			{Name: "o_comment", Kind: KindString, Dist: DistUniform, DomainLo: 0, DomainHi: 999},
		},
	}
	t2 := &Table{
		Name:     "customer",
		BaseRows: 100,
		PK:       []string{"c_id"},
		Columns: []Column{
			{Name: "c_id", Kind: KindInt, Dist: DistSequential},
			{Name: "c_nation", Kind: KindInt, Dist: DistUniform, DomainLo: 0, DomainHi: 24},
		},
	}
	s := MustSchema("sample", t1, t2)
	s.FKs = []ForeignKey{{Table: "orders", Column: "o_custkey", RefTable: "customer", RefColumn: "c_id"}}
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := sampleSchema()
	tbl, ok := s.Table("orders")
	if !ok || tbl.Name != "orders" {
		t.Fatal("orders lookup failed")
	}
	if _, ok := s.Table("nope"); ok {
		t.Fatal("lookup of missing table succeeded")
	}
	col, ok := tbl.Column("o_date")
	if !ok || col.Kind != KindDate {
		t.Fatal("column lookup failed")
	}
	if idx := tbl.ColumnIndex("o_custkey"); idx != 1 {
		t.Fatalf("column index = %d", idx)
	}
	if idx := tbl.ColumnIndex("missing"); idx != -1 {
		t.Fatalf("missing column index = %d", idx)
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	a := &Table{Name: "t", BaseRows: 1, Columns: []Column{{Name: "c"}}}
	if _, err := NewSchema("dup", a, a); err == nil {
		t.Fatal("expected duplicate table error")
	}
}

func TestValidate(t *testing.T) {
	s := sampleSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := MustSchema("bad", &Table{
		Name: "t", BaseRows: 1, PK: []string{"missing"},
		Columns: []Column{{Name: "c"}},
	})
	if err := bad.Validate(); err == nil {
		t.Fatal("missing PK column accepted")
	}
	bad2 := sampleSchema()
	bad2.FKs = append(bad2.FKs, ForeignKey{Table: "orders", Column: "nope", RefTable: "customer", RefColumn: "c_id"})
	if err := bad2.Validate(); err == nil {
		t.Fatal("FK from missing column accepted")
	}
	bad3 := sampleSchema()
	bad3.FKs = append(bad3.FKs, ForeignKey{Table: "orders", Column: "o_custkey", RefTable: "ghost", RefColumn: "x"})
	if err := bad3.Validate(); err == nil {
		t.Fatal("FK to missing table accepted")
	}
	bad4 := MustSchema("bad4", &Table{
		Name: "t", BaseRows: 1,
		Columns: []Column{{Name: "c"}, {Name: "c"}},
	})
	if err := bad4.Validate(); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestWidthsAndSizes(t *testing.T) {
	s := sampleSchema()
	tbl := s.MustTable("orders")
	// int(8) + int(8) + date(4) + string(24) = 44
	if w := tbl.RowWidthBytes(); w != 44 {
		t.Fatalf("row width = %d, want 44", w)
	}
	tbl.RowCount = 10
	if sz := tbl.SizeBytes(); sz != 440 {
		t.Fatalf("size = %d", sz)
	}
}

func TestDataSizeAndColumnCount(t *testing.T) {
	s := sampleSchema()
	for _, tbl := range s.Tables {
		tbl.RowCount = tbl.BaseRows
	}
	if got := s.ColumnCount(); got != 6 {
		t.Fatalf("column count = %d, want 6", got)
	}
	want := s.MustTable("orders").SizeBytes() + s.MustTable("customer").SizeBytes()
	if got := s.DataSizeBytes(); got != want {
		t.Fatalf("data size = %d, want %d", got, want)
	}
}

func TestSortedTableNames(t *testing.T) {
	s := sampleSchema()
	names := s.SortedTableNames()
	if len(names) != 2 || names[0] != "customer" || names[1] != "orders" {
		t.Fatalf("sorted names = %v", names)
	}
}

func TestKindString(t *testing.T) {
	cases := map[ColumnKind]string{
		KindInt: "int", KindDate: "date", KindString: "string", KindDecimal: "decimal",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", int(k), k.String())
		}
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sampleSchema().MustTable("ghost")
}
