// Package fleet runs many heterogeneous tenant databases — mixed
// benchmarks, scale factors, and workload regimes — as one concurrent
// tuning fleet, the production topology the single-tenant experiment
// harness abstracts away. Every tenant is an independent, cell-seeded
// deterministic environment driven by the shared round-loop driver
// (env.RunPolicySpan), fanned across the bounded worker pool of
// internal/runner, so a fleet's results are byte-identical at any
// -parallel setting.
//
// The fleet reports fleet-level figures instead of per-run ones:
// per-tenant totals plus p50/p95/p99 over every tenant-round of round
// cost, index maintenance, and regret against each tenant's own
// noindex baseline.
//
// Cross-tenant transfer: tenants marked Admitted join the fleet after
// the incumbent tenants have trained, and warm-start their C2UCB
// posterior from the most schema-similar incumbent — the incumbent's
// round-boundary snapshot (policy.Snapshotter) is projected through
// mab.TransferBasis into per-arm gain estimates that Tuner.WarmStart
// consumes as hypothetical-round rewards. Every admitted tenant also
// runs a cold-start control over the identical environment, so the
// transfer benefit is measured, not assumed.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"dbabandits/internal/catalog"
	"dbabandits/internal/env"
	"dbabandits/internal/mab"
	"dbabandits/internal/policy"
	"dbabandits/internal/runner"
)

// TenantSpec identifies one tenant database of the fleet: its
// benchmark, workload regime and sizing. Tenants are self-contained
// cells — each builds its own database and workload sequence from a
// seed derived from its Key — so the fleet may run them in any order,
// concurrently, without changing any tenant's numbers.
type TenantSpec struct {
	// ID names the tenant within the fleet (unique, non-empty).
	ID        string
	Benchmark string
	Regime    env.Regime
	// ScaleFactor defaults to 10 (env.Options semantics).
	ScaleFactor float64
	// Rounds is the tenant's tuning-round count (0 = regime default).
	Rounds int
	// MaxStoredRows caps physical rows (0 = env default).
	MaxStoredRows int
	// Admitted marks a newly admitted tenant: it joins after the
	// incumbent (non-Admitted) tenants have trained, warm-starts from
	// the most schema-similar incumbent's posterior, and runs a
	// cold-start control for comparison.
	Admitted bool
}

// Key names the tenant cell within the fleet. It is the identity the
// deterministic seed derivation hashes (runner.CellSeed), mirroring
// harness.CellSpec.Key: equal keys and equal base seeds receive
// identical private RNG streams.
func (t TenantSpec) Key() string {
	sf := t.ScaleFactor
	if sf <= 0 {
		sf = 10
	}
	return fmt.Sprintf("fleet/%s/%s/%s/sf%g/r%d", t.ID, t.Benchmark, t.Regime, sf, t.Rounds)
}

// Options tune one fleet run.
type Options struct {
	// BaseSeed is the fleet-wide seed every tenant's private seed is
	// derived from (runner.CellSeed over the tenant Key).
	BaseSeed int64
	// Policy selects the tuning strategy every tenant runs (default
	// mab). Cross-tenant transfer engages only for mab — other policies
	// run the fleet topology without warm starts.
	Policy env.TunerKind
	// RidgeBackend selects the bandit's ridge backend ("" = sm).
	RidgeBackend string
	// ScoreWorkers bounds each tenant's arm-scoring worker pool; <= 0
	// resolves to DefaultScoreWorkers(). Scores are byte-identical at
	// any setting.
	ScoreWorkers int
	// TransferRounds is the number of hypothetical warm-start rounds an
	// admitted tenant pre-trains with donor-estimated gains (default 3;
	// the what-if warm start uses the same knob single-tenant).
	TransferRounds int
	// DisableTransfer runs admitted tenants cold (the fleet topology
	// without cross-tenant learning); Control runs are still produced.
	DisableTransfer bool
	// DisablePlanCache turns off each tenant's optimiser plan cache
	// (A/B control; fleet reports are byte-identical either way).
	DisablePlanCache bool
	// Parallel bounds concurrently running tenants; <= 0 means
	// runtime.GOMAXPROCS(0). Results are identical at any setting.
	Parallel int
	// Progress, when non-nil, receives one completion line per finished
	// tenant (completion order, typically os.Stderr).
	Progress io.Writer
}

// DefaultScoreWorkers is the fleet-mode arm-scoring parallelism: all
// available cores (runtime.GOMAXPROCS(0)). Single-tenant CLIs keep the
// serial default of 1 — a lone interactive run rarely gains from
// fan-out, and the goldens were captured serial — but a fleet process
// hosts many tenants and should use whatever cores the tenant-level
// pool leaves idle. CI caveat: the CI container is single-CPU, so
// there GOMAXPROCS(0) == 1 and fleet smoke runs still score serially;
// the byte-identical-at-any-worker-count contract (pinned by the
// score-parallel goldens) is what makes that a latency difference
// only, never an output difference.
func DefaultScoreWorkers() int { return runtime.GOMAXPROCS(0) }

const defaultTransferRounds = 3

// TenantResult is one tenant's outcome within a fleet run.
type TenantResult struct {
	Spec TenantSpec
	// Seed is the tenant's derived private seed.
	Seed int64
	// Run is the tenant's tuned run — warm-started from the donor for
	// admitted tenants (unless transfer was disabled or no donor
	// matched).
	Run *env.RunResult
	// Baseline is the tenant's noindex run over the identical
	// environment: the do-nothing reference regret is measured against.
	Baseline *env.RunResult
	// Control is the admitted tenant's cold-start run (no warm start)
	// over the identical environment; nil for incumbent tenants.
	Control *env.RunResult
	// Donor is the incumbent tenant the warm start transferred from
	// ("" when no transfer happened), and Similarity its schema
	// similarity to this tenant.
	Donor      string
	Similarity float64
	// Err reports a failed tenant (the fleet completes regardless);
	// Error carries its message into the marshalled form.
	Err   error  `json:"-"`
	Error string `json:",omitempty"`
}

// Result is a completed fleet run: one TenantResult per spec, in spec
// order regardless of completion order.
type Result struct {
	Tenants []TenantResult
}

// donor is an incumbent tenant's transferable state: its schema and
// its round-boundary tuner snapshot.
type donor struct {
	id     string
	schema *catalog.Schema
	snap   *mab.TunerSnapshot
}

// phase1Out carries an incumbent tenant's result plus its donor state.
type phase1Out struct {
	tr TenantResult
	d  *donor
}

// Run executes the fleet: incumbent tenants first (each trained to
// completion, their posteriors snapshotted), then admitted tenants
// (each warm-started from its best donor, with a cold-start control).
// Both phases fan across the bounded worker pool; a failing tenant
// reports its error in place without aborting siblings.
func Run(tenants []TenantSpec, opts Options) (*Result, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("fleet: no tenants")
	}
	seen := map[string]bool{}
	for _, t := range tenants {
		if t.ID == "" {
			return nil, fmt.Errorf("fleet: tenant with empty ID (benchmark %s)", t.Benchmark)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("fleet: duplicate tenant ID %q", t.ID)
		}
		seen[t.ID] = true
	}
	if opts.Policy == "" {
		opts.Policy = env.MAB
	}
	if opts.TransferRounds <= 0 {
		opts.TransferRounds = defaultTransferRounds
	}
	if opts.ScoreWorkers <= 0 {
		opts.ScoreWorkers = DefaultScoreWorkers()
	}

	// Phase 1: incumbents. Index bookkeeping maps phase-local task
	// order back to fleet spec order, so the final Tenants slice is in
	// spec order however the phases interleave.
	var incumbents, admitted []int
	for i, t := range tenants {
		if t.Admitted {
			admitted = append(admitted, i)
		} else {
			incumbents = append(incumbents, i)
		}
	}
	out := &Result{Tenants: make([]TenantResult, len(tenants))}

	tasks := make([]runner.Task[phase1Out], len(incumbents))
	labels := make([]string, len(incumbents))
	for k, i := range incumbents {
		spec := tenants[i]
		labels[k] = spec.Key()
		tasks[k] = func() (phase1Out, error) { return runIncumbent(spec, opts) }
	}
	ropts := runner.Options{Parallel: opts.Parallel}
	if opts.Progress != nil {
		ropts.OnDone = runner.Progress(opts.Progress, labels)
	}
	var donors []*donor
	for k, r := range runner.Run(tasks, ropts) {
		i := incumbents[k]
		if r.Err != nil {
			out.Tenants[i] = TenantResult{Spec: tenants[i], Err: r.Err, Error: r.Err.Error()}
			continue
		}
		out.Tenants[i] = r.Value.tr
		if r.Value.d != nil {
			donors = append(donors, r.Value.d)
		}
	}

	// Phase 2: admitted tenants, each against the complete donor pool.
	// Donor order is incumbent spec order (runner.Run returns results
	// in input order), so best-donor ties break deterministically.
	tasks2 := make([]runner.Task[TenantResult], len(admitted))
	labels2 := make([]string, len(admitted))
	for k, i := range admitted {
		spec := tenants[i]
		labels2[k] = spec.Key()
		tasks2[k] = func() (TenantResult, error) { return runAdmitted(spec, opts, donors) }
	}
	ropts2 := runner.Options{Parallel: opts.Parallel}
	if opts.Progress != nil {
		ropts2.OnDone = runner.Progress(opts.Progress, labels2)
	}
	for k, r := range runner.Run(tasks2, ropts2) {
		i := admitted[k]
		if r.Err != nil {
			out.Tenants[i] = TenantResult{Spec: tenants[i], Err: r.Err, Error: r.Err.Error()}
			continue
		}
		out.Tenants[i] = r.Value
	}
	return out, nil
}

// newTenantEnv prepares one tenant's environment from its spec and the
// fleet options.
func newTenantEnv(t TenantSpec, seed int64, opts Options) (*env.Environment, error) {
	return env.New(env.Options{
		Benchmark:     t.Benchmark,
		Regime:        t.Regime,
		ScaleFactor:   t.ScaleFactor,
		MaxStoredRows: t.MaxStoredRows,
		Rounds:        t.Rounds,
		Seed:          seed,
		MABOptions: mab.TunerOptions{
			RidgeBackend: opts.RidgeBackend,
			ScoreWorkers: opts.ScoreWorkers,
		},
		DisablePlanCache: opts.DisablePlanCache,
	})
}

// runIncumbent trains one incumbent tenant end to end: noindex
// baseline, tuned run, and — for the mab policy — a round-boundary
// snapshot of the trained posterior through the policy.Snapshotter
// seam, making the tenant a transfer donor.
func runIncumbent(t TenantSpec, opts Options) (phase1Out, error) {
	seed := runner.CellSeed(opts.BaseSeed, t.Key())
	e, err := newTenantEnv(t, seed, opts)
	if err != nil {
		return phase1Out{}, fmt.Errorf("%s: %w", t.Key(), err)
	}
	baseline, err := e.Run(env.NoIndex)
	if err != nil {
		return phase1Out{}, fmt.Errorf("%s: noindex baseline: %w", t.Key(), err)
	}
	p, err := e.NewPolicy(opts.Policy)
	if err != nil {
		return phase1Out{}, fmt.Errorf("%s: %w", t.Key(), err)
	}
	defer p.Close()
	res, err := e.RunPolicySpan(p, env.Span{})
	if err != nil {
		return phase1Out{}, fmt.Errorf("%s: %w", t.Key(), err)
	}
	res.Tuner = opts.Policy
	out := phase1Out{tr: TenantResult{Spec: t, Seed: seed, Run: res, Baseline: baseline}}
	if opts.Policy != env.MAB {
		return out, nil
	}
	sn, ok := p.(policy.Snapshotter)
	if !ok {
		return out, nil
	}
	raw, err := sn.Snapshot()
	if err != nil {
		return phase1Out{}, fmt.Errorf("%s: donor snapshot: %w", t.Key(), err)
	}
	var snap mab.TunerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return phase1Out{}, fmt.Errorf("%s: donor snapshot decode: %w", t.Key(), err)
	}
	out.d = &donor{id: t.ID, schema: e.Schema, snap: &snap}
	return out, nil
}

// runAdmitted runs one newly admitted tenant: a warm-started run
// transferring from the most schema-similar donor, then a cold-start
// control over the identical environment. Transfer engages only for
// the mab policy, with at least one donor of non-zero similarity, and
// unless disabled; otherwise the "warm" run is itself cold and Donor
// stays empty — the control still runs, so the output shape is stable.
func runAdmitted(t TenantSpec, opts Options, donors []*donor) (TenantResult, error) {
	seed := runner.CellSeed(opts.BaseSeed, t.Key())
	e, err := newTenantEnv(t, seed, opts)
	if err != nil {
		return TenantResult{}, fmt.Errorf("%s: %w", t.Key(), err)
	}
	tr := TenantResult{Spec: t, Seed: seed}
	tr.Baseline, err = e.Run(env.NoIndex)
	if err != nil {
		return TenantResult{}, fmt.Errorf("%s: noindex baseline: %w", t.Key(), err)
	}

	// Donor selection: maximum schema similarity, first donor winning
	// ties (donor order is incumbent spec order, so this is
	// deterministic at any parallelism).
	var best *donor
	if opts.Policy == env.MAB && !opts.DisableTransfer {
		for _, d := range donors {
			sim := mab.SchemaSimilarity(d.schema, e.Schema)
			if sim > tr.Similarity {
				tr.Similarity, best = sim, d
			}
		}
	}
	if best != nil {
		basis, err := mab.NewTransferBasis(best.schema, best.snap)
		if err != nil {
			return TenantResult{}, fmt.Errorf("%s: transfer from %s: %w", t.Key(), best.id, err)
		}
		tr.Donor = best.id
		predCols := mab.PredicateColumnSet(e.WorkloadAt(1))
		dbBytes := e.DataSizeBytes()
		e.Opts.MABWarmStartRounds = opts.TransferRounds
		e.Opts.MABTransferGain = func(a *mab.Arm) float64 {
			return basis.Gain(a, predCols, dbBytes)
		}
	} else {
		tr.Similarity = 0
	}
	tr.Run, err = e.Run(opts.Policy)
	if err != nil {
		return TenantResult{}, fmt.Errorf("%s: %w", t.Key(), err)
	}

	// Cold-start control: same environment, no warm start. policyParams
	// is projected from Opts at Run time, so clearing the transfer
	// knobs here is all it takes.
	e.Opts.MABWarmStartRounds = 0
	e.Opts.MABTransferGain = nil
	tr.Control, err = e.Run(opts.Policy)
	if err != nil {
		return TenantResult{}, fmt.Errorf("%s: cold-start control: %w", t.Key(), err)
	}
	return tr, nil
}

// DefaultFleet builds n heterogeneous tenants cycling through every
// benchmark and regime at two scale factors, the last quarter (at
// least one for n >= 4) admitted late so cross-tenant transfer has
// donors and subjects. The cycle lengths (5 benchmarks, 4 regimes, 2
// scale factors) are coprime enough that small fleets already mix
// schemas, regimes and sizes.
func DefaultFleet(n, rounds, maxStoredRows int) []TenantSpec {
	benches := []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"}
	regimes := []env.Regime{env.Static, env.Shifting, env.Random, env.HTAP}
	out := make([]TenantSpec, n)
	for i := range out {
		bench := benches[i%len(benches)]
		regime := regimes[i%len(regimes)]
		sf := 10.0
		if i%2 == 1 {
			sf = 1
		}
		out[i] = TenantSpec{
			ID:            fmt.Sprintf("t%02d-%s-%s", i, bench, regime),
			Benchmark:     bench,
			Regime:        regime,
			ScaleFactor:   sf,
			Rounds:        rounds,
			MaxStoredRows: maxStoredRows,
			Admitted:      n >= 4 && i >= n-n/4,
		}
	}
	return out
}
