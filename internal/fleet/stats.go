package fleet

import (
	"math"
	"sort"

	"dbabandits/internal/env"
)

// Percentiles is a fleet-level distribution summary: the p50/p95/p99
// of a per-tenant-round metric pooled across every tenant. Tail
// percentiles, not means, are the fleet operator's view — one tenant's
// pathological round hides inside a fleet mean but not inside p99.
type Percentiles struct {
	P50, P95, P99 float64
}

// percentilesOf summarises vals (consumed: sorted in place). Linear
// interpolation between order statistics, matching the harness
// renderers' quantile convention.
func percentilesOf(vals []float64) Percentiles {
	if len(vals) == 0 {
		return Percentiles{}
	}
	sort.Float64s(vals)
	return Percentiles{
		P50: quantile(vals, 0.50),
		P95: quantile(vals, 0.95),
		P99: quantile(vals, 0.99),
	}
}

// quantile interpolates the q-th quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// collect pools one per-round metric over every successful tenant's
// tuned run, in tenant order then round order.
func (r *Result) collect(metric func(tr *TenantResult, i int) float64) []float64 {
	var vals []float64
	for ti := range r.Tenants {
		tr := &r.Tenants[ti]
		if tr.Err != nil || tr.Run == nil {
			continue
		}
		for i := range tr.Run.Rounds {
			vals = append(vals, metric(tr, i))
		}
	}
	return vals
}

// RoundCost summarises the per-round end-to-end cost (recommendation +
// creation + execution + maintenance) across the fleet.
func (r *Result) RoundCost() Percentiles {
	return percentilesOf(r.collect(func(tr *TenantResult, i int) float64 {
		return tr.Run.Rounds[i].TotalSec()
	}))
}

// Maintenance summarises the per-round index-maintenance charge across
// the fleet (zero on analytical tenants, so the fleet p50 is often 0
// while the tail is carried by the HTAP tenants).
func (r *Result) Maintenance() Percentiles {
	return percentilesOf(r.collect(func(tr *TenantResult, i int) float64 {
		return tr.Run.Rounds[i].MaintenanceSec
	}))
}

// Regret summarises the per-round regret against each tenant's own
// noindex baseline: tuned round cost minus the baseline's cost of the
// same round. Negative rounds are the tuner paying for itself;
// positive tails are where creation spikes or mistuned configurations
// exceed doing nothing.
func (r *Result) Regret() Percentiles {
	return percentilesOf(r.collect(func(tr *TenantResult, i int) float64 {
		return regretAt(tr.Run, tr.Baseline, i)
	}))
}

// regretAt is one round's regret-vs-noindex; 0 when the baseline is
// missing or shorter (failed tenants are filtered before this).
func regretAt(run, base *env.RunResult, i int) float64 {
	if base == nil || i >= len(base.Rounds) {
		return run.Rounds[i].TotalSec()
	}
	return run.Rounds[i].TotalSec() - base.Rounds[i].TotalSec()
}

// Errs collects every failed tenant's error, in spec order.
func (r *Result) Errs() []error {
	var errs []error
	for i := range r.Tenants {
		if r.Tenants[i].Err != nil {
			errs = append(errs, r.Tenants[i].Err)
		}
	}
	return errs
}

// EarlyRoundRegret sums the tuned run's first k rounds of
// regret-vs-noindex — the cold-start cost a warm start is supposed to
// reduce. k is clamped to the run length.
func (tr *TenantResult) EarlyRoundRegret(k int) float64 {
	return earlyRegret(tr.Run, tr.Baseline, k)
}

// ControlEarlyRoundRegret is EarlyRoundRegret for the admitted
// tenant's cold-start control run (0 for incumbents, which have none).
func (tr *TenantResult) ControlEarlyRoundRegret(k int) float64 {
	return earlyRegret(tr.Control, tr.Baseline, k)
}

// TransferBenefit is the admitted tenant's early-round improvement
// from warm-starting: control regret minus warm regret over the first
// k rounds. Positive means transfer helped.
func (tr *TenantResult) TransferBenefit(k int) float64 {
	if tr.Control == nil {
		return 0
	}
	return tr.ControlEarlyRoundRegret(k) - tr.EarlyRoundRegret(k)
}

func earlyRegret(run, base *env.RunResult, k int) float64 {
	if run == nil {
		return 0
	}
	if k > len(run.Rounds) {
		k = len(run.Rounds)
	}
	var total float64
	for i := 0; i < k; i++ {
		total += regretAt(run, base, i)
	}
	return total
}
