package fleet

import (
	"testing"

	"dbabandits/internal/env"
)

// BenchmarkFleetRound measures one full fleet round trip at a small
// but heterogeneous scale — four incumbents across mixed benchmarks
// and regimes plus one admitted tenant with its warm start and
// cold-start control — fanned across the worker pool. This is the
// fleet-mode serving cost per wall-clock unit: environment builds,
// noindex baselines, tuned spans, the donor snapshot/restore round
// trip and the transfer projection are all on the measured path.
func BenchmarkFleetRound(b *testing.B) {
	tenants := []TenantSpec{
		{ID: "t0", Benchmark: "ssb", Regime: env.Static, Rounds: 2, MaxStoredRows: 400},
		{ID: "t1", Benchmark: "tpch", Regime: env.Shifting, Rounds: 2, MaxStoredRows: 400},
		{ID: "t2", Benchmark: "tpch-skew", Regime: env.Random, Rounds: 2, MaxStoredRows: 400},
		{ID: "t3", Benchmark: "imdb", Regime: env.HTAP, Rounds: 2, MaxStoredRows: 400},
		{ID: "t4", Benchmark: "ssb", Regime: env.Static, Rounds: 2, MaxStoredRows: 400, Admitted: true},
	}
	opts := Options{BaseSeed: 1, ScoreWorkers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(tenants, opts)
		if err != nil {
			b.Fatal(err)
		}
		if errs := res.Errs(); len(errs) != 0 {
			b.Fatal(errs)
		}
	}
}
