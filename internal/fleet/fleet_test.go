package fleet

import (
	"encoding/json"
	"math"
	"testing"

	"dbabandits/internal/env"
)

// TestFleetDeterministicAcrossParallelism is the fleet's core contract
// (and the ISSUE acceptance bar): a fleet of >= 8 heterogeneous
// tenants — mixed benchmarks, regimes and scale factors — produces a
// byte-identical Result at any tenant-level parallelism and any
// arm-scoring worker count. Every tenant is a self-contained
// cell-seeded environment, so scheduling order must not leak into any
// number.
func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	tenants := DefaultFleet(8, 3, 500)

	run := func(parallel, scoreWorkers int) []byte {
		res, err := Run(tenants, Options{
			BaseSeed:     7,
			ScoreWorkers: scoreWorkers,
			Parallel:     parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if errs := res.Errs(); len(errs) != 0 {
			t.Fatalf("parallel=%d: tenant failures: %v", parallel, errs)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("parallel=%d: marshal: %v", parallel, err)
		}
		return raw
	}

	serial := run(1, 1)
	wide := run(4, 4)
	if string(serial) != string(wide) {
		t.Fatal("fleet results differ between -parallel 1/scoreWorkers 1 and -parallel 4/scoreWorkers 4")
	}

	// The same fleet is also sane: the last quarter is admitted, every
	// admitted tenant found a donor (every benchmark in the default
	// fleet shares at least some columns via its cycle partner), and the
	// percentile summaries are populated.
	var res Result
	if err := json.Unmarshal(serial, &res); err != nil {
		t.Fatal(err)
	}
	var admitted int
	for i := range res.Tenants {
		tr := &res.Tenants[i]
		if !tr.Spec.Admitted {
			if tr.Donor != "" || tr.Control != nil {
				t.Fatalf("incumbent %s has donor %q / control run", tr.Spec.ID, tr.Donor)
			}
			continue
		}
		admitted++
		if tr.Control == nil {
			t.Fatalf("admitted tenant %s has no cold-start control", tr.Spec.ID)
		}
		if tr.Donor == "" || tr.Similarity <= 0 {
			t.Fatalf("admitted tenant %s found no donor (similarity %v)", tr.Spec.ID, tr.Similarity)
		}
	}
	if admitted != 2 {
		t.Fatalf("DefaultFleet(8) admitted %d tenants, want 2", admitted)
	}
	rc := res.RoundCost()
	if !(rc.P50 > 0 && rc.P50 <= rc.P95 && rc.P95 <= rc.P99) {
		t.Fatalf("round-cost percentiles not ordered/positive: %+v", rc)
	}
}

// TestFleetTransferBeatsColdStart pins the cross-tenant warm start
// doing its job: a newly admitted tenant that is schema-identical to a
// trained incumbent transfers the incumbent's posterior and accrues no
// more early-round regret than its own cold-start control over the
// identical environment. The configuration is deterministic (fixed
// base seed, serial scoring), so the margin is pinned, not sampled.
func TestFleetTransferBeatsColdStart(t *testing.T) {
	tenants := []TenantSpec{
		{ID: "donor", Benchmark: "ssb", Regime: env.Static, ScaleFactor: 10, Rounds: 15, MaxStoredRows: 1200},
		{ID: "newbie", Benchmark: "ssb", Regime: env.Static, ScaleFactor: 10, Rounds: 10, MaxStoredRows: 1200, Admitted: true},
	}
	res, err := Run(tenants, Options{BaseSeed: 2, TransferRounds: 3, ScoreWorkers: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatalf("tenant failures: %v", errs)
	}
	tr := &res.Tenants[1]
	if tr.Donor != "donor" {
		t.Fatalf("admitted tenant transferred from %q, want %q", tr.Donor, "donor")
	}
	if tr.Similarity != 1 {
		t.Fatalf("schema-identical donor similarity = %v, want 1", tr.Similarity)
	}
	for _, k := range []int{5, 10} {
		warm, cold := tr.EarlyRoundRegret(k), tr.ControlEarlyRoundRegret(k)
		if warm > cold {
			t.Fatalf("first %d rounds: warm-started regret %.3f exceeds cold-start control %.3f",
				k, warm, cold)
		}
	}
	if b := tr.TransferBenefit(10); b <= 0 {
		t.Fatalf("transfer benefit %.3f over the full run, want positive", b)
	}
}

// TestFleetTransferDisabled: with transfer off the admitted tenant
// runs cold, reports no donor, and its "warm" run equals its control —
// the topology without the learning.
func TestFleetTransferDisabled(t *testing.T) {
	tenants := []TenantSpec{
		{ID: "a", Benchmark: "ssb", Regime: env.Static, Rounds: 3, MaxStoredRows: 400},
		{ID: "b", Benchmark: "ssb", Regime: env.Static, Rounds: 3, MaxStoredRows: 400, Admitted: true},
	}
	res, err := Run(tenants, Options{BaseSeed: 1, DisableTransfer: true, ScoreWorkers: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatalf("tenant failures: %v", errs)
	}
	tr := &res.Tenants[1]
	if tr.Donor != "" {
		t.Fatalf("transfer disabled but donor %q recorded", tr.Donor)
	}
	if tr.Control == nil {
		t.Fatal("control run missing with transfer disabled")
	}
	_, _, _, got := tr.Run.Totals()
	_, _, _, want := tr.Control.Totals()
	if got != want {
		t.Fatalf("cold 'warm' run total %v differs from control total %v", got, want)
	}
	if b := tr.TransferBenefit(3); b != 0 {
		t.Fatalf("transfer benefit %v with transfer disabled, want 0", b)
	}
}

// TestFleetValidation pins the spec-level error paths.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := Run([]TenantSpec{{Benchmark: "ssb"}}, Options{}); err == nil {
		t.Fatal("tenant with empty ID accepted")
	}
	dup := []TenantSpec{
		{ID: "x", Benchmark: "ssb", Regime: env.Static},
		{ID: "x", Benchmark: "tpch", Regime: env.Static},
	}
	if _, err := Run(dup, Options{}); err == nil {
		t.Fatal("duplicate tenant ID accepted")
	}
}

// TestDefaultFleet pins the generator's heterogeneity: unique IDs,
// mixed benchmarks/regimes/scale factors, last quarter admitted.
func TestDefaultFleet(t *testing.T) {
	tenants := DefaultFleet(8, 5, 1000)
	if len(tenants) != 8 {
		t.Fatalf("got %d tenants, want 8", len(tenants))
	}
	ids := map[string]bool{}
	benches := map[string]bool{}
	regimes := map[env.Regime]bool{}
	sfs := map[float64]bool{}
	var admitted int
	for i, tn := range tenants {
		if tn.ID == "" || ids[tn.ID] {
			t.Fatalf("tenant %d: empty or duplicate ID %q", i, tn.ID)
		}
		ids[tn.ID] = true
		benches[tn.Benchmark] = true
		regimes[tn.Regime] = true
		sfs[tn.ScaleFactor] = true
		if tn.Admitted {
			admitted++
			if i < 6 {
				t.Fatalf("tenant %d admitted; only the last quarter should be", i)
			}
		}
	}
	if len(benches) < 4 || len(regimes) != 4 || len(sfs) != 2 {
		t.Fatalf("fleet not heterogeneous: %d benchmarks, %d regimes, %d scale factors",
			len(benches), len(regimes), len(sfs))
	}
	if admitted != 2 {
		t.Fatalf("admitted %d tenants, want 2", admitted)
	}
	// Tiny fleets have no admission: nobody to transfer from.
	for _, tn := range DefaultFleet(3, 1, 100) {
		if tn.Admitted {
			t.Fatalf("fleet of 3 admitted tenant %s", tn.ID)
		}
	}
}

// TestPercentiles pins the interpolation convention against hand
// values.
func TestPercentiles(t *testing.T) {
	p := percentilesOf([]float64{4, 1, 3, 2}) // sorted: 1 2 3 4
	if p.P50 != 2.5 {
		t.Fatalf("p50 = %v, want 2.5", p.P50)
	}
	if math.Abs(p.P95-3.85) > 1e-9 || math.Abs(p.P99-3.97) > 1e-9 {
		t.Fatalf("p95/p99 = %v/%v, want 3.85/3.97", p.P95, p.P99)
	}
	if z := percentilesOf(nil); z != (Percentiles{}) {
		t.Fatalf("empty input: %+v, want zero", z)
	}
}
