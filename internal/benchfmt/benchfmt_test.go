package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: dbabandits/internal/mab
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScoresBatch/sm-8         	   39122	     30437 ns/op	      2052 B/op	       1 allocs/op
BenchmarkScoresBatchParallel/4-8  	     322	    379713 ns/op	       230.0 arms	        83.00 dim	         4.000 workers	    2590 B/op	      13 allocs/op
some unrelated line
PASS
ok  	dbabandits/internal/mab	0.576s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("platform header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	// The GOMAXPROCS suffix is stripped; the sub-benchmark path is kept.
	m, ok := doc.Benchmarks["BenchmarkScoresBatchParallel/4"]
	if !ok {
		t.Fatalf("sub-benchmark name mangled: %v", doc.Benchmarks)
	}
	if m["ns/op"] != 379713 || m["workers"] != 4 || m["runs"] != 322 {
		t.Fatalf("metrics wrong: %v", m)
	}
	if doc.Benchmarks["BenchmarkScoresBatch/sm"]["allocs/op"] != 1 {
		t.Fatalf("allocs/op wrong: %v", doc.Benchmarks["BenchmarkScoresBatch/sm"])
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	doc.Labels = map[string]string{"ridge": "sm"}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels["ridge"] != "sm" {
		t.Fatalf("labels lost: %v", got.Labels)
	}
	if got.Benchmarks["BenchmarkScoresBatchParallel/4"]["ns/op"] != 379713 {
		t.Fatalf("metrics lost: %v", got.Benchmarks)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}
