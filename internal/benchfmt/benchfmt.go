// Package benchfmt defines the committed benchmark-capture format — the
// BENCH_<sha>.json files `make bench` produces: a stable JSON document
// mapping benchmark name → metrics (ns/op, B/op, allocs/op, plus any
// custom ReportMetric units), annotated with the platform and free-form
// labels. cmd/benchjson writes captures from `go test -bench` output;
// cmd/benchdiff compares two of them.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Document is one benchmark capture. Map keys are benchmark names with
// the GOMAXPROCS suffix stripped; encoding/json emits them sorted, so
// two captures of the same tree differ only where the numbers do.
type Document struct {
	Goos       string                        `json:"goos,omitempty"`
	Goarch     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Labels     map[string]string             `json:"labels,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// procSuffix is the GOMAXPROCS decoration `go test` appends to each
// benchmark name (-8 etc.); stripping it keeps captures comparable
// across machines.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text output and builds a Document. Lines
// that are not platform headers or benchmark result rows are ignored,
// so the full `go test` stdout can be piped through unfiltered.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := map[string]float64{"runs": runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		doc.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// ReadFile loads a committed capture (a BENCH_<sha>.json file).
func ReadFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}
