package snaprand

import (
	"math/rand"
	"testing"
)

// drive exercises a representative mix of drawing methods and returns a
// fingerprint of everything drawn.
func drive(r interface {
	Float64() float64
	Intn(int) int
	Perm(int) []int
	NormFloat64() float64
	Int63() int64
}, steps int) []float64 {
	var out []float64
	for i := 0; i < steps; i++ {
		switch i % 5 {
		case 0:
			out = append(out, r.Float64())
		case 1:
			out = append(out, float64(r.Intn(97)))
		case 2:
			for _, p := range r.Perm(7) {
				out = append(out, float64(p))
			}
		case 3:
			out = append(out, r.NormFloat64())
		default:
			out = append(out, float64(r.Int63()))
		}
	}
	return out
}

// TestSequenceIdentity pins the golden-stability contract: wrapping the
// source in the draw counter must not change a single value relative to
// the plain rand.New(rand.NewSource(seed)) the policies used before.
func TestSequenceIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 1_000_003*5 + 17} {
		want := drive(rand.New(rand.NewSource(seed)), 200)
		got := drive(New(seed), 200)
		if len(want) != len(got) {
			t.Fatalf("seed %d: length %d != %d", seed, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: draw %d: %v != %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestRestoreMidStream checkpoints a generator mid-stream and verifies
// the restored generator continues with the identical remaining
// sequence.
func TestRestoreMidStream(t *testing.T) {
	for _, prefix := range []int{0, 1, 13, 77} {
		orig := New(99)
		drive(orig, prefix)
		seed, draws := orig.Seed(), orig.Draws()

		rest := Restore(seed, draws)
		if rest.Draws() != draws {
			t.Fatalf("restored draws %d, want %d", rest.Draws(), draws)
		}
		want := drive(orig, 50)
		got := drive(rest, 50)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("prefix %d: post-restore draw %d: %v != %v", prefix, i, got[i], want[i])
			}
		}
	}
}
