// Package snaprand wraps math/rand with a draw-counting source so that
// stochastic tuning policies can be checkpointed and resumed without
// changing a single draw. The wrapper delegates every source read to
// the standard rand.NewSource generator — including the Source64 fast
// path — so a snaprand.Rand emits exactly the sequence rand.New
// (rand.NewSource(seed)) always did; the only addition is a counter of
// how many times the source advanced. A snapshot is therefore just
// (seed, draws), and Restore re-seeds and fast-forwards the source by
// draws steps — after which the restored generator is bit-identical to
// the one that was snapshotted, whatever mix of Float64/Intn/Perm/
// NormFloat64 calls produced the count.
package snaprand

import "math/rand"

// countingSource counts underlying generator advances. It implements
// rand.Source64 by delegating to the standard source, which is
// essential for sequence fidelity: rand.Rand takes a different (and
// differently-valued) code path for sources without Uint64.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Rand is a math/rand generator with a recorded seed and draw count.
// All drawing methods come from the embedded *rand.Rand.
type Rand struct {
	*rand.Rand
	cs   *countingSource
	seed int64
}

// New returns a generator seeded like rand.New(rand.NewSource(seed)),
// emitting the identical sequence.
func New(seed int64) *Rand {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{Rand: rand.New(cs), cs: cs, seed: seed}
}

// Seed returns the seed the generator was created (or restored) with.
func (r *Rand) Seed() int64 { return r.seed }

// Draws returns how many times the underlying source has advanced —
// the fast-forward distance a snapshot must record.
func (r *Rand) Draws() uint64 { return r.cs.n }

// Restore returns a generator positioned exactly where a generator
// created by New(seed) would be after `draws` source advances: the
// snapshot inverse of (Seed, Draws).
func Restore(seed int64, draws uint64) *Rand {
	r := New(seed)
	for i := uint64(0); i < draws; i++ {
		r.cs.src.Int63()
	}
	r.cs.n = draws
	return r
}
