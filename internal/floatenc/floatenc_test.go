package floatenc

import (
	"math"
	"math/rand"
	"testing"
)

func TestRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vs := make([]float64, 513)
	for i := range vs {
		switch i % 5 {
		case 0:
			vs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		case 1:
			vs[i] = -rng.Float64()
		case 2:
			vs[i] = float64(rng.Int63())
		case 3:
			vs[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(3))
		default:
			vs[i] = 0
		}
	}
	got, err := Decode(Encode(vs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("len %d, want %d", len(got), len(vs))
	}
	for i := range vs {
		if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
			t.Fatalf("value %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vs[i]))
		}
	}
}

func TestEmptyAndErrors(t *testing.T) {
	if Encode(nil) != "" {
		t.Fatal("Encode(nil) not empty")
	}
	if vs, err := Decode(""); err != nil || vs != nil {
		t.Fatalf("Decode(\"\") = %v, %v", vs, err)
	}
	if _, err := Decode("!!!not-base64!!!"); err == nil {
		t.Fatal("invalid base64 accepted")
	}
	// 4 bytes is not a whole float64.
	if _, err := Decode("AAAAAA=="); err == nil {
		t.Fatal("ragged byte count accepted")
	}
	if _, err := DecodeLen(Encode([]float64{1, 2}), 3); err == nil {
		t.Fatal("wrong length accepted")
	}
	if vs, err := DecodeLen(Encode([]float64{1, 2}), 2); err != nil || len(vs) != 2 {
		t.Fatalf("DecodeLen failed: %v, %v", vs, err)
	}
}
