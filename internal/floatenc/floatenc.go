// Package floatenc encodes float64 slices as base64 strings of their
// little-endian IEEE-754 bits. Checkpoints must restore tuner state
// bit for bit — a resumed session is required to produce byte-identical
// recommendations — so the encoding is exact by construction (no
// decimal round-trip involved) and compact enough for the dense
// matrices of the ridge backends (8 bytes per value before base64).
package floatenc

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
)

// Encode packs vs into a base64 string of little-endian IEEE-754 bits.
// Encode(nil) returns "" and Decode("") returns nil, so empty slices
// round-trip through JSON omitempty fields.
func Encode(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// Decode is the inverse of Encode.
func Decode(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("floatenc: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("floatenc: %d bytes is not a whole number of float64s", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// DecodeLen decodes s and verifies the result holds exactly want
// values — the shape check every snapshot consumer needs before
// trusting a checkpoint field.
func DecodeLen(s string, want int) ([]float64, error) {
	vs, err := Decode(s)
	if err != nil {
		return nil, err
	}
	if len(vs) != want {
		return nil, fmt.Errorf("floatenc: decoded %d values, want %d", len(vs), want)
	}
	return vs, nil
}
