package policy

import (
	"dbabandits/internal/ddqn"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
)

func init() {
	Register("ddqn", func(e Env, p Params) (Policy, error) { return newDDQN(e, p, false) })
	Register("ddqn-sc", func(e Env, p Params) (Policy, error) { return newDDQN(e, p, true) })
}

// ddqnPolicy adapts the DDQN reinforcement-learning baseline (Figure 8).
// It consumes the same arms and contexts as the MAB tuner; the previous
// round's feedback is delivered lazily at the next Recommend, because
// the double-Q bootstrap needs the next round's candidate contexts.
type ddqnPolicy struct {
	name   string
	agent  *ddqn.Agent
	ctxb   *mab.ContextBuilder
	gen    *mab.ArmGenerator
	store  *mab.QueryStore
	dbSize int64
	budget int64

	cfg   *index.Config
	usage map[string]float64

	// Pending feedback: the arms selected this round, their decision-time
	// contexts, and which of them were materialised this round. Observe
	// turns these into (context, reward) pairs held until the next
	// Recommend supplies the bootstrap candidates.
	selected       []*mab.Arm
	selectedCtxs   map[string]linalg.Vector
	createdIDs     map[string]bool
	pendingCtxs    []linalg.Vector
	pendingRewards []float64
}

func newDDQN(e Env, p Params, singleColumn bool) (Policy, error) {
	name := "ddqn"
	if singleColumn {
		name = "ddqn-sc"
	}
	ctxb := mab.NewContextBuilder(e.Catalog())
	return &ddqnPolicy{
		name:  name,
		agent: ddqn.NewAgent(ctxb.Dim(), ddqn.AgentOptions{Seed: p.DDQNSeed, SingleColumn: singleColumn}),
		ctxb:  ctxb,
		gen:   mab.NewArmGenerator(e.Catalog(), mab.ArmGenOptions{}),
		store: mab.NewQueryStore(),

		dbSize: e.DataSizeBytes(),
		budget: e.MemoryBudgetBytes(),
		cfg:    index.NewConfig(),
		usage:  map[string]float64{},
	}, nil
}

func (p *ddqnPolicy) Name() string { return p.name }

func (p *ddqnPolicy) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if len(lastWorkload) > 0 {
		p.store.Observe(round-1, lastWorkload)
	}
	qois := p.store.QoI(round - 1)
	arms := p.gen.Generate(qois)
	predCols := mab.PredicateColumnSet(qois)
	contexts := make([]linalg.Vector, len(arms))
	for i, a := range arms {
		// The context builder emits the bandit's sparse representation;
		// the neural agent consumes dense feature vectors.
		contexts[i] = p.ctxb.Build(a, mab.ArmInfo{
			PredicateColumns: predCols,
			Materialised:     p.cfg.Has(a.ID()),
			Usage:            p.usage[a.ID()],
			DatabaseBytes:    p.dbSize,
		}).Dense()
	}

	// Deliver the previous round's feedback with this round's candidates
	// as the bootstrap set.
	if p.pendingCtxs != nil {
		p.agent.Observe(p.pendingCtxs, p.pendingRewards, contexts)
		p.pendingCtxs, p.pendingRewards = nil, nil
	}

	selected := p.agent.SelectConfig(arms, contexts, p.budget)
	next := index.NewConfig()
	for _, a := range selected {
		next.Add(a.Index)
	}
	p.createdIDs = map[string]bool{}
	for _, ix := range next.Diff(p.cfg) {
		p.createdIDs[ix.ID()] = true
	}
	p.selected = selected
	p.selectedCtxs = map[string]linalg.Vector{}
	for i, a := range arms {
		p.selectedCtxs[a.ID()] = contexts[i]
	}
	p.cfg = next

	return Recommendation{Config: next, RecommendSec: 0.0012 * float64(len(arms))}
}

func (p *ddqnPolicy) Observe(stats []*engine.ExecStats, creationSec map[string]float64) {
	gains, used := mab.GainsFromStats(stats)
	p.pendingCtxs, p.pendingRewards = nil, nil
	for _, a := range p.selected {
		rwd := gains[a.ID()]
		if p.createdIDs[a.ID()] {
			rwd -= creationSec[a.ID()]
		}
		p.pendingCtxs = append(p.pendingCtxs, p.selectedCtxs[a.ID()])
		p.pendingRewards = append(p.pendingRewards, rwd)
	}
	for id := range p.usage {
		p.usage[id] *= 0.6
	}
	for id := range used {
		p.usage[id]++
	}
}

func (p *ddqnPolicy) Close() {}
