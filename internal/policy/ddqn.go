package policy

import (
	"encoding/json"
	"fmt"

	"dbabandits/internal/ddqn"
	"dbabandits/internal/engine"
	"dbabandits/internal/floatenc"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
)

func init() {
	Register("ddqn", func(e Env, p Params) (Policy, error) { return newDDQN(e, p, false) })
	Register("ddqn-sc", func(e Env, p Params) (Policy, error) { return newDDQN(e, p, true) })
}

// ddqnPolicy adapts the DDQN reinforcement-learning baseline (Figure 8).
// It consumes the same arms and contexts as the MAB tuner; the previous
// round's feedback is delivered lazily at the next Recommend, because
// the double-Q bootstrap needs the next round's candidate contexts.
type ddqnPolicy struct {
	name   string
	agent  *ddqn.Agent
	ctxb   *mab.ContextBuilder
	gen    *mab.ArmGenerator
	store  *mab.QueryStore
	dbSize int64
	budget int64

	cfg   *index.Config
	usage map[string]float64

	// Pending feedback: the arms selected this round, their decision-time
	// contexts, and which of them were materialised this round. Observe
	// turns these into (context, reward) pairs held until the next
	// Recommend supplies the bootstrap candidates.
	selected       []*mab.Arm
	selectedCtxs   map[string]linalg.Vector
	createdIDs     map[string]bool
	pendingCtxs    []linalg.Vector
	pendingRewards []float64

	// awaitingObserve marks the torn-round span between Recommend and
	// Observe, during which the selected arms' feedback state is live
	// and the policy refuses to snapshot.
	awaitingObserve bool
}

func newDDQN(e Env, p Params, singleColumn bool) (Policy, error) {
	name := "ddqn"
	if singleColumn {
		name = "ddqn-sc"
	}
	ctxb := mab.NewContextBuilder(e.Catalog())
	return &ddqnPolicy{
		name:  name,
		agent: ddqn.NewAgent(ctxb.Dim(), ddqn.AgentOptions{Seed: p.DDQNSeed, SingleColumn: singleColumn}),
		ctxb:  ctxb,
		gen:   mab.NewArmGenerator(e.Catalog(), mab.ArmGenOptions{}),
		store: mab.NewQueryStore(),

		dbSize: e.DataSizeBytes(),
		budget: e.MemoryBudgetBytes(),
		cfg:    index.NewConfig(),
		usage:  map[string]float64{},
	}, nil
}

func (p *ddqnPolicy) Name() string { return p.name }

func (p *ddqnPolicy) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if len(lastWorkload) > 0 {
		p.store.Observe(round-1, lastWorkload)
	}
	qois := p.store.QoI(round - 1)
	arms := p.gen.Generate(qois)
	predCols := mab.PredicateColumnSet(qois)
	contexts := make([]linalg.Vector, len(arms))
	for i, a := range arms {
		// The context builder emits the bandit's sparse representation;
		// the neural agent consumes dense feature vectors.
		contexts[i] = p.ctxb.Build(a, mab.ArmInfo{
			PredicateColumns: predCols,
			Materialised:     p.cfg.Has(a.ID()),
			Usage:            p.usage[a.ID()],
			DatabaseBytes:    p.dbSize,
		}).Dense()
	}

	// Deliver the previous round's feedback with this round's candidates
	// as the bootstrap set.
	if p.pendingCtxs != nil {
		p.agent.Observe(p.pendingCtxs, p.pendingRewards, contexts)
		p.pendingCtxs, p.pendingRewards = nil, nil
	}

	selected := p.agent.SelectConfig(arms, contexts, p.budget)
	next := index.NewConfig()
	for _, a := range selected {
		next.Add(a.Index)
	}
	p.createdIDs = map[string]bool{}
	for _, ix := range next.Diff(p.cfg) {
		p.createdIDs[ix.ID()] = true
	}
	p.selected = selected
	p.selectedCtxs = map[string]linalg.Vector{}
	for i, a := range arms {
		p.selectedCtxs[a.ID()] = contexts[i]
	}
	p.cfg = next
	p.awaitingObserve = true

	return Recommendation{Config: next, RecommendSec: 0.0012 * float64(len(arms))}
}

func (p *ddqnPolicy) Observe(stats []*engine.ExecStats, creationSec map[string]float64) {
	gains, used := mab.GainsFromStats(stats)
	p.pendingCtxs, p.pendingRewards = nil, nil
	for _, a := range p.selected {
		rwd := gains[a.ID()]
		if p.createdIDs[a.ID()] {
			rwd -= creationSec[a.ID()]
		}
		p.pendingCtxs = append(p.pendingCtxs, p.selectedCtxs[a.ID()])
		p.pendingRewards = append(p.pendingRewards, rwd)
	}
	for id := range p.usage {
		p.usage[id] *= 0.6
	}
	for id := range used {
		p.usage[id]++
	}
	p.awaitingObserve = false
}

func (p *ddqnPolicy) Close() {}

// ddqnSnapshot is the policy's serialisable state. Beyond the agent
// (networks, replay buffer, RNG position) it carries the cross-round
// pending feedback: the previous round's (context, reward) pairs are
// held until the next Recommend supplies the bootstrap candidates, so
// at a round boundary they are live state, floatenc-encoded here.
type ddqnSnapshot struct {
	Agent          *ddqn.AgentSnapshot
	Store          *mab.QueryStoreSnapshot
	Config         []index.Def        `json:",omitempty"`
	Usage          map[string]float64 `json:",omitempty"`
	PendingCtxs    []string           `json:",omitempty"`
	PendingRewards []float64          `json:",omitempty"`
}

// Snapshot implements Snapshotter. Between Recommend and Observe the
// selected arms' feedback state is live and not serialisable, so
// mid-round snapshots are refused (the same round-boundary contract as
// the MAB tuner).
func (p *ddqnPolicy) Snapshot() (json.RawMessage, error) {
	if p.awaitingObserve {
		return nil, fmt.Errorf("%s policy snapshot mid-round (awaiting execution feedback); snapshot after Observe", p.name)
	}
	snap := &ddqnSnapshot{
		Agent:          p.agent.Snapshot(),
		Store:          p.store.Snapshot(),
		Config:         p.cfg.Defs(),
		Usage:          p.usage,
		PendingRewards: p.pendingRewards,
	}
	for _, x := range p.pendingCtxs {
		snap.PendingCtxs = append(snap.PendingCtxs, floatenc.Encode(x))
	}
	return json.Marshal(snap)
}

// Restore implements Snapshotter; the policy must have been constructed
// with the same Env and Params the snapshotted policy ran under.
func (p *ddqnPolicy) Restore(raw json.RawMessage) error {
	var snap ddqnSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("%s policy snapshot: %w", p.name, err)
	}
	if snap.Agent == nil || snap.Store == nil {
		return fmt.Errorf("%s policy snapshot: missing agent or query store", p.name)
	}
	if len(snap.PendingCtxs) != len(snap.PendingRewards) {
		return fmt.Errorf("%s policy snapshot: %d pending contexts for %d rewards",
			p.name, len(snap.PendingCtxs), len(snap.PendingRewards))
	}
	if err := p.agent.Restore(snap.Agent); err != nil {
		return err
	}
	p.store.Restore(snap.Store)
	p.cfg = index.ConfigFromDefs(snap.Config)
	p.usage = map[string]float64{}
	for k, v := range snap.Usage {
		p.usage[k] = v
	}
	p.pendingCtxs = nil
	for i, enc := range snap.PendingCtxs {
		x, err := floatenc.Decode(enc)
		if err != nil {
			return fmt.Errorf("%s policy snapshot: pending context %d: %w", p.name, i, err)
		}
		p.pendingCtxs = append(p.pendingCtxs, x)
	}
	p.pendingRewards = snap.PendingRewards
	p.selected = nil
	p.selectedCtxs = nil
	p.createdIDs = nil
	p.awaitingObserve = false
	return nil
}

var _ Snapshotter = (*ddqnPolicy)(nil)
