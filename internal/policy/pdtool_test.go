package policy

import (
	"reflect"
	"sort"
	"testing"
)

func sortedRounds(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func TestInvocationRoundsStatic(t *testing.T) {
	if got := sortedRounds(InvocationRounds("static", 25)); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("static 25 = %v, want [2]", got)
	}
	if got := InvocationRounds("static", 1); len(got) != 0 {
		t.Fatalf("static 1 = %v, want none (no round 2 exists)", sortedRounds(got))
	}
}

func TestInvocationRoundsShiftingAligned(t *testing.T) {
	// The paper's setting: 4 groups x 20 rounds, retrained on the round
	// after each group's first round.
	if got := sortedRounds(InvocationRounds("shifting", 80)); !reflect.DeepEqual(got, []int{2, 22, 42, 62}) {
		t.Fatalf("shifting 80 = %v, want [2 22 42 62]", got)
	}
	if got := sortedRounds(InvocationRounds("shifting", 8)); !reflect.DeepEqual(got, []int{2, 4, 6, 8}) {
		t.Fatalf("shifting 8 = %v, want [2 4 6 8]", got)
	}
}

func TestInvocationRoundsShiftingRagged(t *testing.T) {
	// Totals not divisible by 4 used to collapse every group onto round 2
	// (g*perGroup+2 with perGroup == 0). Each group must still get its
	// own invocation, all within the run.
	cases := []struct {
		total int
		want  []int
	}{
		{6, []int{2, 3, 5, 6}},
		{7, []int{2, 3, 5, 7}},
		{10, []int{2, 4, 7, 9}},
		{2, []int{2}}, // degenerate: capped at the run's length
	}
	for _, c := range cases {
		got := sortedRounds(InvocationRounds("shifting", c.total))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("shifting %d = %v, want %v", c.total, got, c.want)
		}
		for _, r := range got {
			if r < 1 || r > c.total {
				t.Errorf("shifting %d: invocation round %d outside the run", c.total, r)
			}
		}
	}
	// The regression the fix targets: more than one distinct invocation
	// for any ragged total with at least a handful of rounds.
	if got := InvocationRounds("shifting", 6); len(got) < 2 {
		t.Fatalf("shifting 6 collapsed to %v", sortedRounds(got))
	}
}

func TestInvocationRoundsRandom(t *testing.T) {
	if got := sortedRounds(InvocationRounds("random", 13)); !reflect.DeepEqual(got, []int{5, 9, 13}) {
		t.Fatalf("random 13 = %v, want [5 9 13]", got)
	}
	if got := InvocationRounds("random", 4); len(got) != 0 {
		t.Fatalf("random 4 = %v, want none", sortedRounds(got))
	}
}

func TestInvocationRoundsUnknownRegime(t *testing.T) {
	if got := InvocationRounds("hybrid-oltp", 40); len(got) != 0 {
		t.Fatalf("unknown regime = %v, want none", sortedRounds(got))
	}
}

// The HTAP regime's analytical side is static, so the offline tool
// shares the static schedule: one invocation at round 2.
func TestInvocationRoundsHTAP(t *testing.T) {
	if got := sortedRounds(InvocationRounds("htap", 40)); len(got) != 1 || got[0] != 2 {
		t.Fatalf("htap schedule = %v, want [2]", got)
	}
}
