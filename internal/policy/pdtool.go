package policy

import (
	"encoding/json"
	"fmt"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/pdtool"
	"dbabandits/internal/query"
)

func init() {
	Register("pdtool", newPDTool)
}

// pdtoolPolicy adapts the offline physical-design-tool baseline. The
// advisor is only invoked on its regime-specific schedule; between
// invocations the configuration is held fixed, as a DBA re-running a
// commercial tool would.
type pdtoolPolicy struct {
	advisor     *pdtool.Advisor
	invocations map[int]bool
	regime      string
	cfg         *index.Config

	history []*query.Query   // previous round's workload
	windows [][]*query.Query // all observed rounds, oldest first
}

// pdtoolTrainWindow is the number of trailing observed rounds used as
// the training workload in the random regime.
const pdtoolTrainWindow = 4

func newPDTool(e Env, p Params) (Policy, error) {
	return &pdtoolPolicy{
		advisor: pdtool.New(e.Catalog(), e.WhatIf(), pdtool.Options{
			MemoryBudgetBytes: e.MemoryBudgetBytes(),
			TimeLimitSec:      p.PDToolTimeLimitSec,
		}),
		invocations: InvocationRounds(e.RegimeName(), e.TotalRounds()),
		regime:      e.RegimeName(),
		cfg:         index.NewConfig(),
	}, nil
}

// InvocationRounds returns the rounds at which the PDTool is retrained,
// per the paper: static — round 2 (after observing round 1); shifting —
// the round after each of the four groups' first round (2, 22, 42, 62 at
// 80 rounds); random — every 4 rounds (5, 9, 13, ...), trained on the
// trailing window. The HTAP regime's analytical side is the static
// workload, so it shares the static schedule — the offline tool tunes
// once and then pays the maintenance its write-blind configuration
// incurs, exactly the failure mode the journal follow-up highlights.
//
// The shifting schedule partitions total rounds into four groups with
// the same floor division the shifting sequencer uses for templates, so
// ragged totals (not divisible by 4) still yield one invocation per
// group instead of collapsing onto round 2.
func InvocationRounds(regime string, total int) map[int]bool {
	out := map[int]bool{}
	switch regime {
	case "static", "htap":
		if total >= 2 {
			out[2] = true
		}
	case "shifting":
		const groups = 4
		for g := 0; g < groups; g++ {
			r := g*total/groups + 2 // second round of group g
			if r > total {
				r = total
			}
			if r >= 1 {
				out[r] = true
			}
		}
	case "random":
		for r := 5; r <= total; r += 4 {
			out[r] = true
		}
	}
	return out
}

func (p *pdtoolPolicy) Name() string { return "pdtool" }

func (p *pdtoolPolicy) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if lastWorkload != nil {
		p.history = lastWorkload
		p.windows = append(p.windows, lastWorkload)
	}
	if !p.invocations[round] {
		return Recommendation{Config: p.cfg}
	}
	var training []*query.Query
	if p.regime == "random" {
		start := len(p.windows) - pdtoolTrainWindow
		if start < 0 {
			start = 0
		}
		for _, w := range p.windows[start:] {
			training = append(training, w...)
		}
	} else {
		// Static and shifting: the previous round's queries are
		// representative of what's to come (the paper's
		// PDTool-favourable assumption).
		training = p.history
	}
	rec := p.advisor.Recommend(training)
	p.cfg = rec.Config
	return Recommendation{Config: rec.Config, RecommendSec: rec.RecommendSec}
}

func (p *pdtoolPolicy) Observe([]*engine.ExecStats, map[string]float64) {}

func (p *pdtoolPolicy) Close() {}

// pdtoolSnapshot is the offline tool's serialisable state: the current
// configuration and the observed workload history the scheduled
// retrainings draw from. The advisor itself is stateless and the
// invocation schedule derives from the environment.
type pdtoolSnapshot struct {
	Config  []index.Def      `json:",omitempty"`
	History []*query.Query   `json:",omitempty"`
	Windows [][]*query.Query `json:",omitempty"`
}

// Snapshot implements Snapshotter.
func (p *pdtoolPolicy) Snapshot() (json.RawMessage, error) {
	return json.Marshal(&pdtoolSnapshot{
		Config:  p.cfg.Defs(),
		History: p.history,
		Windows: p.windows,
	})
}

// Restore implements Snapshotter.
func (p *pdtoolPolicy) Restore(raw json.RawMessage) error {
	var snap pdtoolSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("pdtool policy snapshot: %w", err)
	}
	p.cfg = index.ConfigFromDefs(snap.Config)
	p.history = snap.History
	p.windows = snap.Windows
	return nil
}

var _ Snapshotter = (*pdtoolPolicy)(nil)
