package policy

import (
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

func init() {
	Register("noindex", func(Env, Params) (Policy, error) {
		return &noIndex{empty: index.NewConfig()}, nil
	})
}

// noIndex is the paper's NoIndex control: it never recommends anything,
// so every round executes on bare tables.
type noIndex struct {
	empty *index.Config
}

func (p *noIndex) Name() string { return "noindex" }

func (p *noIndex) Recommend(int, []*query.Query) Recommendation {
	return Recommendation{Config: p.empty}
}

func (p *noIndex) Observe([]*engine.ExecStats, map[string]float64) {}

func (p *noIndex) Close() {}
