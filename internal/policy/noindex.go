package policy

import (
	"encoding/json"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

func init() {
	Register("noindex", func(Env, Params) (Policy, error) {
		return &noIndex{empty: index.NewConfig()}, nil
	})
}

// noIndex is the paper's NoIndex control: it never recommends anything,
// so every round executes on bare tables.
type noIndex struct {
	empty *index.Config
}

func (p *noIndex) Name() string { return "noindex" }

func (p *noIndex) Recommend(int, []*query.Query) Recommendation {
	return Recommendation{Config: p.empty}
}

func (p *noIndex) Observe([]*engine.ExecStats, map[string]float64) {}

func (p *noIndex) Close() {}

// Snapshot implements Snapshotter; the control is stateless, so the
// snapshot is empty and Restore accepts anything Snapshot produced.
func (p *noIndex) Snapshot() (json.RawMessage, error) { return json.RawMessage(`{}`), nil }

// Restore implements Snapshotter.
func (p *noIndex) Restore(json.RawMessage) error { return nil }

var _ Snapshotter = (*noIndex)(nil)
