package policy

import (
	"encoding/json"
	"fmt"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
	"dbabandits/internal/snaprand"
)

func init() {
	Register("random", newRandomConfig)
}

// randomConfig is the random-configuration control: every round it draws
// a fresh uniformly random subset of the workload's candidate indexes
// under the memory budget. It is the sanity floor of the comparisons —
// any learning tuner must beat it, both because random subsets rarely
// match the workload and because re-drawing every round churns index
// creations. Like every baseline it is registered through the policy
// registry alone, with zero driver or harness edits.
type randomConfig struct {
	rng    *snaprand.Rand
	gen    *mab.ArmGenerator
	store  *mab.QueryStore
	budget int64
	cfg    *index.Config
}

// randomMaxPerRound caps how many indexes one draw materialises, keeping
// the control's creation churn (and experiment runtime) bounded; it
// mirrors the MAB's default per-round throttle.
const randomMaxPerRound = 6

func newRandomConfig(e Env, p Params) (Policy, error) {
	seed := p.RandomSeed
	if seed == 0 {
		seed = 1
	}
	return &randomConfig{
		// The draw-counting generator emits the identical sequence to the
		// plain rand.New(rand.NewSource(...)) used historically, so the
		// pinned goldens are unchanged — and the control is checkpointable.
		rng:    snaprand.New(seed*1_000_003 + 17),
		gen:    mab.NewArmGenerator(e.Catalog(), mab.ArmGenOptions{}),
		store:  mab.NewQueryStore(),
		budget: e.MemoryBudgetBytes(),
		cfg:    index.NewConfig(),
	}, nil
}

func (p *randomConfig) Name() string { return "random" }

func (p *randomConfig) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if len(lastWorkload) == 0 {
		// Round 1 decides blind, like every policy: keep the (empty)
		// configuration.
		return Recommendation{Config: p.cfg}
	}
	p.store.Observe(round-1, lastWorkload)
	arms := p.gen.Generate(p.store.QoI(round - 1))

	next := index.NewConfig()
	var used int64
	for _, i := range p.rng.Perm(len(arms)) {
		if next.Len() >= randomMaxPerRound {
			break
		}
		a := arms[i]
		if used+a.SizeBytes > p.budget {
			continue
		}
		if next.Add(a.Index) {
			used += a.SizeBytes
		}
	}
	p.cfg = next
	// Drawing a subset costs no analysis time: the control models a DBA
	// picking indexes blindly, so RecommendSec stays zero.
	return Recommendation{Config: next}
}

func (p *randomConfig) Observe([]*engine.ExecStats, map[string]float64) {}

func (p *randomConfig) Close() {}

// randomSnapshot is the control's serialisable state: the RNG position
// (seed plus draw count — restoring fast-forwards to the identical next
// draw), the query store, and the current configuration. The arm
// generator's memos are pure caches and are rebuilt on demand.
type randomSnapshot struct {
	Seed   int64
	Draws  uint64
	Store  *mab.QueryStoreSnapshot
	Config []index.Def `json:",omitempty"`
}

// Snapshot implements Snapshotter.
func (p *randomConfig) Snapshot() (json.RawMessage, error) {
	return json.Marshal(&randomSnapshot{
		Seed:   p.rng.Seed(),
		Draws:  p.rng.Draws(),
		Store:  p.store.Snapshot(),
		Config: p.cfg.Defs(),
	})
}

// Restore implements Snapshotter.
func (p *randomConfig) Restore(raw json.RawMessage) error {
	var snap randomSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("random policy snapshot: %w", err)
	}
	if snap.Store == nil {
		return fmt.Errorf("random policy snapshot: missing query store")
	}
	p.rng = snaprand.Restore(snap.Seed, snap.Draws)
	p.store.Restore(snap.Store)
	p.cfg = index.ConfigFromDefs(snap.Config)
	return nil
}

var _ Snapshotter = (*randomConfig)(nil)
