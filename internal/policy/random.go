package policy

import (
	"math/rand"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
)

func init() {
	Register("random", newRandomConfig)
}

// randomConfig is the random-configuration control: every round it draws
// a fresh uniformly random subset of the workload's candidate indexes
// under the memory budget. It is the sanity floor of the comparisons —
// any learning tuner must beat it, both because random subsets rarely
// match the workload and because re-drawing every round churns index
// creations. Like every baseline it is registered through the policy
// registry alone, with zero driver or harness edits.
type randomConfig struct {
	rng    *rand.Rand
	gen    *mab.ArmGenerator
	store  *mab.QueryStore
	budget int64
	cfg    *index.Config
}

// randomMaxPerRound caps how many indexes one draw materialises, keeping
// the control's creation churn (and experiment runtime) bounded; it
// mirrors the MAB's default per-round throttle.
const randomMaxPerRound = 6

func newRandomConfig(e Env, p Params) (Policy, error) {
	seed := p.RandomSeed
	if seed == 0 {
		seed = 1
	}
	return &randomConfig{
		rng:    rand.New(rand.NewSource(seed*1_000_003 + 17)),
		gen:    mab.NewArmGenerator(e.Catalog(), mab.ArmGenOptions{}),
		store:  mab.NewQueryStore(),
		budget: e.MemoryBudgetBytes(),
		cfg:    index.NewConfig(),
	}, nil
}

func (p *randomConfig) Name() string { return "random" }

func (p *randomConfig) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if len(lastWorkload) == 0 {
		// Round 1 decides blind, like every policy: keep the (empty)
		// configuration.
		return Recommendation{Config: p.cfg}
	}
	p.store.Observe(round-1, lastWorkload)
	arms := p.gen.Generate(p.store.QoI(round - 1))

	next := index.NewConfig()
	var used int64
	for _, i := range p.rng.Perm(len(arms)) {
		if next.Len() >= randomMaxPerRound {
			break
		}
		a := arms[i]
		if used+a.SizeBytes > p.budget {
			continue
		}
		if next.Add(a.Index) {
			used += a.SizeBytes
		}
	}
	p.cfg = next
	// Drawing a subset costs no analysis time: the control models a DBA
	// picking indexes blindly, so RecommendSec stays zero.
	return Recommendation{Config: next}
}

func (p *randomConfig) Observe([]*engine.ExecStats, map[string]float64) {}

func (p *randomConfig) Close() {}
