package policy

import (
	"encoding/json"
	"fmt"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
)

func init() {
	Register("advisor", newAdvisor)
}

// advisorPolicy is an online advisor baseline in the style of Schnaitter
// & Polyzotis's semi-automatic index tuning: every round it re-analyses
// the recently observed queries with the optimiser's what-if interface,
// corrects those estimates with the execution feedback it has actually
// observed, and greedily keeps the best configuration under the memory
// budget. An index not yet materialised must overcome its creation cost
// before it is swapped in (the work-function-style hysteresis that gives
// online advisors their stability), while an already materialised index
// only needs to stay beneficial.
//
// It exists to demonstrate the pluggable policy layer — it is registered
// through the registry alone, with zero driver or harness edits — and as
// a what-if-grounded middle point between the offline PDTool (invoked on
// a schedule) and the bandit (which never trusts the what-if estimates).
type advisorPolicy struct {
	opt        *optimizer.Optimizer
	gen        *mab.ArmGenerator
	store      *mab.QueryStore
	budget     int64
	priceIndex func(ix *index.Index) float64

	cfg *index.Config
	// observedGain is the decayed per-index execution gain actually seen,
	// the "semi-automatic" feedback that corrects what-if misestimates.
	observedGain map[string]float64
}

// advisorWhatIfSecPerCall mirrors the PDTool's modelled cost per what-if
// optimiser invocation, so the two advisors' recommendation times are
// directly comparable.
const advisorWhatIfSecPerCall = 0.05

// advisorGainDecay is the per-round decay of observed execution gains.
const advisorGainDecay = 0.5

func newAdvisor(e Env, _ Params) (Policy, error) {
	return &advisorPolicy{
		opt:          e.WhatIf(),
		gen:          mab.NewArmGenerator(e.Catalog(), mab.ArmGenOptions{}),
		store:        mab.NewQueryStore(),
		budget:       e.MemoryBudgetBytes(),
		priceIndex:   e.IndexCreationSec,
		cfg:          index.NewConfig(),
		observedGain: map[string]float64{},
	}, nil
}

func (p *advisorPolicy) Name() string { return "advisor" }

func (p *advisorPolicy) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	if len(lastWorkload) == 0 {
		// Nothing observed yet: hold the current configuration.
		return Recommendation{Config: p.cfg}
	}
	p.store.Observe(round-1, lastWorkload)
	qois := p.store.QoI(round - 1)
	arms := p.gen.Generate(qois)

	// Estimate each candidate's benefit on the queries of interest via
	// what-if calls, caching the no-index baseline per query. Every
	// attempted optimiser invocation is charged, successful or not, as
	// in the PDTool's modelled timing.
	var calls int
	base := make([]float64, len(qois))
	empty := index.NewConfig()
	for i, q := range qois {
		calls++
		if c, err := p.opt.WhatIfCost(q, empty); err == nil {
			base[i] = c
		} else {
			base[i] = -1
		}
	}
	scores := make([]float64, len(arms))
	for i, a := range arms {
		trial := index.NewConfig()
		trial.Add(a.Index)
		var benefit float64
		for j, q := range qois {
			if base[j] < 0 || !q.ReferencesTable(a.Table) {
				continue
			}
			with, err := p.opt.WhatIfCost(q, trial)
			calls++
			if err != nil {
				continue
			}
			benefit += base[j] - with
		}
		benefit += p.observedGain[a.ID()]
		if !p.cfg.Has(a.ID()) {
			// Hysteresis: a new index must pay for its own creation.
			benefit -= p.priceIndex(a.Index)
		}
		scores[i] = benefit
	}

	next := index.NewConfig()
	for _, a := range mab.SelectSuperArm(arms, scores, p.budget) {
		next.Add(a.Index)
	}
	p.cfg = next
	return Recommendation{Config: next, RecommendSec: advisorWhatIfSecPerCall * float64(calls)}
}

func (p *advisorPolicy) Observe(stats []*engine.ExecStats, _ map[string]float64) {
	gains, _ := mab.GainsFromStats(stats)
	for id := range p.observedGain {
		p.observedGain[id] *= advisorGainDecay
		if p.observedGain[id] < 1e-9 {
			delete(p.observedGain, id)
		}
	}
	for id, g := range gains {
		p.observedGain[id] += g
	}
}

func (p *advisorPolicy) Close() {}

// advisorSnapshot is the advisor's serialisable state: the query store,
// the current configuration, and the decayed observed-gain feedback.
type advisorSnapshot struct {
	Store        *mab.QueryStoreSnapshot
	Config       []index.Def        `json:",omitempty"`
	ObservedGain map[string]float64 `json:",omitempty"`
}

// Snapshot implements Snapshotter.
func (p *advisorPolicy) Snapshot() (json.RawMessage, error) {
	gains := make(map[string]float64, len(p.observedGain))
	for k, v := range p.observedGain {
		gains[k] = v
	}
	return json.Marshal(&advisorSnapshot{
		Store:        p.store.Snapshot(),
		Config:       p.cfg.Defs(),
		ObservedGain: gains,
	})
}

// Restore implements Snapshotter.
func (p *advisorPolicy) Restore(raw json.RawMessage) error {
	var snap advisorSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("advisor policy snapshot: %w", err)
	}
	if snap.Store == nil {
		return fmt.Errorf("advisor policy snapshot: missing query store")
	}
	p.store.Restore(snap.Store)
	p.cfg = index.ConfigFromDefs(snap.Config)
	p.observedGain = map[string]float64{}
	for k, v := range snap.ObservedGain {
		p.observedGain[k] = v
	}
	return nil
}

var _ Snapshotter = (*advisorPolicy)(nil)
