package policy

import (
	"encoding/json"
	"fmt"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
)

func init() {
	Register("mab", newMAB)
}

// mabPolicy adapts the C2UCB bandit tuner (the paper's contribution,
// Algorithm 2) to the Policy interface. The tuner already follows the
// observe-recommend-learn round protocol, so the adapter is a thin shim;
// warm starting (the cold-start mitigation of Section VII) happens at
// construction, before the first round.
type mabPolicy struct {
	tuner *mab.Tuner
}

func newMAB(e Env, p Params) (Policy, error) {
	opts := p.MAB
	if !linalg.ValidRidgeBackend(opts.RidgeBackend) {
		return nil, fmt.Errorf("unknown ridge backend %q (available: %v)",
			opts.RidgeBackend, linalg.RidgeBackends())
	}
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = e.MemoryBudgetBytes()
	}
	// Update-capable regimes (HTAP) get the journal extension's
	// update-sensitivity context components; analytical regimes keep the
	// exact pre-HTAP context dimensionality.
	if ue, ok := e.(UpdateEnv); ok && ue.HasUpdates() {
		opts.UpdateAwareContext = true
	}
	tuner := mab.NewTuner(e.Catalog(), e.DataSizeBytes(), opts)
	if p.MABWarmStartRounds > 0 {
		if p.MABTransferGain != nil {
			// Cross-tenant transfer: the gain estimates come from a donor
			// tenant's learned posterior instead of this tenant's what-if
			// optimiser (fleet warm start).
			tuner.WarmStart(e.WorkloadAt(1), p.MABTransferGain, p.MABWarmStartRounds)
		} else {
			warmStartMAB(e, tuner, p.MABWarmStartRounds)
		}
	}
	return &mabPolicy{tuner: tuner}, nil
}

// warmStartMAB pre-trains the bandit with what-if estimated gains over
// round 1's workload, exactly the hypothetical-rounds scheme the paper
// sketches: the estimates inherit the optimiser's misestimates, trading
// cold-start cost for potential early bias.
func warmStartMAB(e Env, tuner *mab.Tuner, rounds int) {
	training := e.WorkloadAt(1)
	empty := index.NewConfig()
	tuner.WarmStart(training, func(a *mab.Arm) float64 {
		var gain float64
		trial := index.NewConfig()
		trial.Add(a.Index)
		for _, q := range training {
			if !q.ReferencesTable(a.Table) {
				continue
			}
			base, err1 := e.WhatIf().WhatIfCost(q, empty)
			with, err2 := e.WhatIf().WhatIfCost(q, trial)
			if err1 != nil || err2 != nil {
				continue
			}
			gain += base - with
		}
		if gain < 0 {
			// Feed only non-negative estimated gains: a pessimistic
			// prior would permanently suppress exploration of those
			// arms (see mab warm-start tests).
			gain = 0
		}
		return gain
	}, rounds)
}

func (p *mabPolicy) Name() string { return "mab" }

func (p *mabPolicy) Recommend(round int, lastWorkload []*query.Query) Recommendation {
	rec := p.tuner.Recommend(lastWorkload)
	return Recommendation{Config: rec.Config, RecommendSec: rec.RecommendSec}
}

func (p *mabPolicy) Observe(stats []*engine.ExecStats, creationSec map[string]float64) {
	p.tuner.ObserveExecution(stats, creationSec)
}

// ObserveUpdates implements UpdateAware: the round's update statements
// feed the tuner's churn statistics and the maintenance charges its
// reward shaping.
func (p *mabPolicy) ObserveUpdates(updates []query.Update, perIndexMaintSec map[string]float64) {
	p.tuner.ObserveUpdates(updates, perIndexMaintSec)
}

func (p *mabPolicy) Close() {}

// Snapshot implements Snapshotter: the tuner's round-boundary state
// (ridge factors, query store, configuration, usage and churn
// statistics). The tuner refuses mid-round snapshots, so a torn round
// can never be serialised.
func (p *mabPolicy) Snapshot() (json.RawMessage, error) {
	snap, err := p.tuner.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(snap)
}

// Restore implements Snapshotter; the policy must have been constructed
// with the same Env and Params the snapshotted policy ran under.
func (p *mabPolicy) Restore(raw json.RawMessage) error {
	var snap mab.TunerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("mab policy snapshot: %w", err)
	}
	return p.tuner.Restore(&snap)
}

// Forget implements Forgetter: the guardrail's quarantine can discount
// the bandit's learned knowledge toward the prior, the same mechanism
// workload-shift forgetting uses.
func (p *mabPolicy) Forget(gamma float64) { p.tuner.Bandit().Forget(gamma) }

var (
	_ UpdateAware = (*mabPolicy)(nil)
	_ Snapshotter = (*mabPolicy)(nil)
	_ Forgetter   = (*mabPolicy)(nil)
)
