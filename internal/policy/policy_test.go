package policy

import (
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/query"
)

func TestSeedStrategiesRegistered(t *testing.T) {
	for _, name := range []string{"noindex", "pdtool", "mab", "ddqn", "ddqn-sc", "advisor"} {
		if !Registered(name) {
			t.Errorf("%q not registered", name)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not strictly sorted: %v", names)
		}
	}
	if len(names) < 6 {
		t.Fatalf("expected at least the six shipped policies, got %v", names)
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("alien", nil, Params{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

type stubPolicy struct{}

func (stubPolicy) Name() string                                    { return "stub" }
func (stubPolicy) Recommend(int, []*query.Query) Recommendation    { return Recommendation{} }
func (stubPolicy) Observe([]*engine.ExecStats, map[string]float64) {}
func (stubPolicy) Close()                                          {}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("stub-once", func(Env, Params) (Policy, error) { return stubPolicy{}, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("stub-once", func(Env, Params) (Policy, error) { return stubPolicy{}, nil })
}

func TestRegisterRejectsEmptyAndNil(t *testing.T) {
	for _, c := range []struct {
		name string
		f    Factory
	}{{"", func(Env, Params) (Policy, error) { return stubPolicy{}, nil }}, {"nil-factory", nil}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q, %v) did not panic", c.name, c.f == nil)
				}
			}()
			Register(c.name, c.f)
		}()
	}
}
