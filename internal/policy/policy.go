// Package policy defines the pluggable tuning-policy layer: the Policy
// interface every tuning strategy implements, the capability view of the
// simulation environment a policy may consult (Env), and a name-keyed
// registry through which strategies are constructed.
//
// The round loop itself lives in internal/env (Environment.RunPolicy);
// this package deliberately knows nothing about how rounds are driven.
// A new baseline therefore needs only three things: a type implementing
// Policy, a Factory building it from an Env, and a Register call — no
// harness or driver edits. The seed strategies of the paper's evaluation
// (no-index, MAB, PDTool, DDQN, DDQN-SC) are registered here as adapters,
// alongside an online what-if advisor in the style of Schnaitter &
// Polyzotis's semi-automatic index tuning.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"

	"dbabandits/internal/catalog"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
)

// Recommendation is a policy's decision for one round: the index
// configuration the round executes under, plus the modelled time the
// decision took. The driver diffs Config against the previous round's
// configuration to price index creations, so a policy that changes
// nothing simply returns its current configuration again.
type Recommendation struct {
	// Config is the full configuration for the round (not a delta). A
	// nil Config means "keep the previous round's configuration".
	Config *index.Config
	// RecommendSec is the modelled recommendation time for the round.
	RecommendSec float64
}

// Policy is one tuning strategy, driven round by round. The driver calls
// Recommend at the top of round r with the previously executed workload
// (nil in round 1 — policies never see the future), executes the round
// under the recommended configuration, then calls Observe with the true
// per-query execution statistics and the creation seconds actually spent
// per materialised index id. Close releases any resources once the run
// ends.
type Policy interface {
	// Name returns the registry name the policy was constructed under;
	// run results are tagged with it.
	Name() string
	// Recommend returns the configuration for round (1-based).
	// lastWorkload is the workload executed in round-1, nil at round 1.
	Recommend(round int, lastWorkload []*query.Query) Recommendation
	// Observe feeds back the round's true execution: per-query stats and
	// per-index creation seconds (only ids materialised this round).
	//
	// Both arguments are borrowed: the driver reuses the stats slice and
	// the map across rounds, so a policy that wants to keep either past
	// the round's feedback must copy what it needs (the *ExecStats
	// values themselves are freshly built each round and safe to
	// retain).
	Observe(stats []*engine.ExecStats, creationSec map[string]float64)
	// Close releases policy resources at the end of a run.
	Close()
}

// Env is the read-only view of the prepared simulation environment a
// policy factory (and the policy it builds) may consult. It is
// implemented by *env.Environment; the interface lives here so policies
// never import the driver.
type Env interface {
	// Catalog returns the benchmark schema with statistics.
	Catalog() *catalog.Schema
	// DataSizeBytes is the logical data size (context normalisation).
	DataSizeBytes() int64
	// MemoryBudgetBytes is the secondary-index budget M.
	MemoryBudgetBytes() int64
	// WhatIf returns the simulated optimiser with its what-if interface.
	WhatIf() *optimizer.Optimizer
	// RegimeName names the workload regime ("static", "shifting",
	// "random").
	RegimeName() string
	// TotalRounds is the experiment's round count.
	TotalRounds() int
	// WorkloadAt returns round r's workload (1-based, deterministic).
	// Policies must only consult rounds they have legitimately observed;
	// the warm-started MAB uses round 1 as its hypothetical training set.
	WorkloadAt(r int) []*query.Query
	// IndexCreationSec prices materialising one index.
	IndexCreationSec(ix *index.Index) float64
}

// UpdateAware is an optional Policy extension for regimes whose rounds
// carry update-shaped statements (HTAP). In such regimes the driver calls
// ObserveUpdates once per round — after execution and immediately before
// Observe — with the round's update statements (possibly empty on
// analytical-only rounds) and the per-index maintenance seconds actually
// charged. A policy may fold the charges into its reward shaping and the
// statements into its learned churn statistics. Analytical regimes never
// call it, so implementing the interface cannot perturb analytical runs.
//
// Like Policy.Observe's arguments, perIndexMaintSec is borrowed: the
// driver refills one map every round, so it stays valid only until the
// round's Observe call returns (ObserveUpdates immediately precedes
// Observe, and the bandit holds the map exactly that long before its
// reward shaping consumes it). The updates slice comes from the
// sequencer and is safe to retain.
type UpdateAware interface {
	ObserveUpdates(updates []query.Update, perIndexMaintSec map[string]float64)
}

// Snapshotter is an optional Policy extension for checkpointable
// policies. Snapshot serialises the policy's learned state at a round
// boundary (after Observe has folded in the round's feedback); Restore
// replaces a freshly constructed policy's state with a previously
// serialised one. The contract is byte-identical resumption: a policy
// constructed with the same Env and Params, restored from a snapshot,
// must produce exactly the recommendations the snapshotted policy
// would have produced from that round on. Policies holding mid-round
// feedback state return an error from Snapshot rather than serialise a
// torn round. Every seed policy implements Snapshotter; like
// UpdateAware, drivers discover the capability by type assertion, so
// external policies without it simply cannot be checkpointed.
type Snapshotter interface {
	Snapshot() (json.RawMessage, error)
	Restore(json.RawMessage) error
}

// Forgetter is an optional Policy extension for policies that can
// discount learned knowledge toward their prior, by factor gamma in
// [0, 1] (the bandit's workload-shift forgetting). The serving mode's
// safety guardrail uses it on quarantine: a policy whose learned state
// caused a cost regression can be partially reset along with the
// configuration revert.
type Forgetter interface {
	Forget(gamma float64)
}

// UpdateEnv is the optional capability view of environments whose
// workload regime can issue update statements. It is implemented by
// *env.Environment; update-aware policy factories type-assert their Env
// to it, so analytical-only Env implementations need no changes.
// Deliberately, the interface only reveals THAT updates exist: the
// statements themselves reach a policy exclusively through
// UpdateAware.ObserveUpdates after each round executes, so no policy
// can peek at future churn and gain oracle knowledge its competitors
// lack.
type UpdateEnv interface {
	// HasUpdates reports whether any round can carry updates.
	HasUpdates() bool
}

// Params carries the per-strategy knobs an experiment may tune. Unset
// fields take each adapter's defaults.
type Params struct {
	// MAB tweaks the bandit (ablations). A zero MemoryBudgetBytes is
	// filled from the environment's budget.
	MAB mab.TunerOptions
	// MABWarmStartRounds pre-trains the bandit with what-if estimated
	// rewards over round 1's workload (Section VII). 0 disables.
	MABWarmStartRounds int
	// MABTransferGain, when non-nil, replaces the what-if gain estimator
	// for the warm-start rounds with an external per-arm estimate —
	// typically a donor tenant's learned posterior projected through
	// mab.TransferBasis (fleet cross-tenant warm start). Only consulted
	// when MABWarmStartRounds > 0.
	MABTransferGain func(*mab.Arm) float64
	// DDQNSeed seeds the DDQN agent (repetitions use distinct seeds).
	DDQNSeed int64
	// RandomSeed seeds the random-configuration control policy.
	RandomSeed int64
	// PDToolTimeLimitSec caps a single PDTool invocation. 0 = unlimited.
	PDToolTimeLimitSec float64
}

// Factory builds a policy against a prepared environment.
type Factory func(e Env, p Params) (Policy, error)

var registry = map[string]Factory{}

// Register adds a named strategy to the registry. Registering an already
// registered name panics: silently replacing a seed strategy would
// invalidate every comparison against it.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("policy: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named policy against the environment.
func New(name string, e Env, p Params) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Names())
	}
	return f(e, p)
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Registered reports whether name is a known policy.
func Registered(name string) bool {
	_, ok := registry[name]
	return ok
}
