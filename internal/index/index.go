// Package index models secondary B+-tree indexes: their key/include
// column structure, size, prefix-matching against query predicates, and
// configurations (sets of indexes under a shared memory budget). Indexes
// here are metadata objects — the execution engine consults them to price
// access paths; no separate physical tree is materialised because the
// stored column arrays already provide exact cardinalities.
package index

import (
	"fmt"
	"sort"
	"strings"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// Index is a secondary index definition on one table: an ordered key
// column sequence plus unordered include (payload-only) columns.
type Index struct {
	Table   string
	Key     []string
	Include []string

	id string // memoised canonical id
}

// New constructs an index, normalising the include list (sorted,
// de-duplicated, minus key columns).
func New(table string, key []string, include []string) *Index {
	if len(include) == 0 {
		// The overwhelmingly common shape (every non-covering arm): no
		// include list means no normalisation sets to build.
		return &Index{Table: table, Key: append([]string(nil), key...)}
	}
	return newNormalised(table, append([]string(nil), key...), include)
}

// NewOwnKey is New taking ownership of the key slice: the caller promises
// never to mutate it again, and the constructor skips the defensive copy.
// Arm generation enumerates thousands of single-use key orderings per
// workload shape; handing each over directly halves the constructor's
// allocations.
func NewOwnKey(table string, key []string, include []string) *Index {
	if len(include) == 0 {
		return &Index{Table: table, Key: key}
	}
	return newNormalised(table, key, include)
}

// newNormalised builds the index from an owned key slice, normalising the
// include list (sorted, de-duplicated, minus key columns).
func newNormalised(table string, key []string, include []string) *Index {
	keySet := make(map[string]bool, len(key))
	for _, k := range key {
		keySet[k] = true
	}
	incSet := make(map[string]bool, len(include))
	for _, c := range include {
		if !keySet[c] {
			incSet[c] = true
		}
	}
	inc := make([]string, 0, len(incSet))
	for c := range incSet {
		inc = append(inc, c)
	}
	sort.Strings(inc)
	return &Index{Table: table, Key: key, Include: inc}
}

// ID returns the canonical identifier, e.g.
// "orders(o_custkey,o_date) INCLUDE (o_total)".
func (ix *Index) ID() string {
	if ix.id == "" {
		// Exact-size build: one allocation per id, no builder growth.
		n := len(ix.Table) + 2
		for _, k := range ix.Key {
			n += len(k) + 1
		}
		if len(ix.Key) > 0 {
			n--
		}
		if len(ix.Include) > 0 {
			n += len(" INCLUDE ()")
			for _, c := range ix.Include {
				n += len(c) + 1
			}
			n--
		}
		var b strings.Builder
		b.Grow(n)
		b.WriteString(ix.Table)
		b.WriteByte('(')
		for i, k := range ix.Key {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
		}
		b.WriteByte(')')
		if len(ix.Include) > 0 {
			b.WriteString(" INCLUDE (")
			for i, c := range ix.Include {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(c)
			}
			b.WriteByte(')')
		}
		ix.id = b.String()
	}
	return ix.id
}

// String implements fmt.Stringer.
func (ix *Index) String() string { return ix.ID() }

// AllColumns returns the union of key and include columns.
func (ix *Index) AllColumns() []string {
	out := make([]string, 0, len(ix.Key)+len(ix.Include))
	out = append(out, ix.Key...)
	out = append(out, ix.Include...)
	return out
}

// HasColumn reports whether the column appears in the key or includes.
func (ix *Index) HasColumn(col string) bool {
	for _, k := range ix.Key {
		if k == col {
			return true
		}
	}
	for _, c := range ix.Include {
		if c == col {
			return true
		}
	}
	return false
}

// TouchedBy reports whether the update statement forces maintenance on
// this index: INSERTs touch every index on the table, UPDATEs only
// those containing a written column. Semantically
// u.Touches(ix.AllColumns()) without materialising the column union —
// the environment's maintenance costing asks per (statement, index)
// every HTAP round.
func (ix *Index) TouchedBy(u query.Update) bool {
	if u.Kind == query.UpdateInsert {
		return true
	}
	for _, c := range u.Columns {
		if ix.HasColumn(c) {
			return true
		}
	}
	return false
}

// KeyPosition returns the 0-based position of the column in the key, or
// -1 when it is not a key column.
func (ix *Index) KeyPosition(col string) int {
	for i, k := range ix.Key {
		if k == col {
			return i
		}
	}
	return -1
}

// EntryWidthBytes returns the width of one leaf entry: key columns,
// include columns, and an 8-byte row pointer.
func (ix *Index) EntryWidthBytes(meta *catalog.Table) int64 {
	var width int64 = 8 // row pointer
	colWidth := func(name string) int64 {
		if c, ok := meta.Column(name); ok {
			return c.Kind.WidthBytes()
		}
		return 8
	}
	for _, name := range ix.Key {
		width += colWidth(name)
	}
	for _, name := range ix.Include {
		width += colWidth(name)
	}
	return width
}

// SizeBytes estimates the materialised size: every row carries the key
// columns, the include columns, and an 8-byte row pointer, with a B+-tree
// space overhead factor of 1.35 (interior nodes + fill factor).
func (ix *Index) SizeBytes(meta *catalog.Table) int64 {
	return int64(float64(meta.RowCount*ix.EntryWidthBytes(meta)) * 1.35)
}

// Valid checks that every referenced column exists on the table and the
// key is non-empty and duplicate-free.
func (ix *Index) Valid(meta *catalog.Table) error {
	if ix.Table != meta.Name {
		return fmt.Errorf("index %s is not on table %s", ix.ID(), meta.Name)
	}
	if len(ix.Key) == 0 {
		return fmt.Errorf("index on %s has empty key", ix.Table)
	}
	seen := map[string]bool{}
	for _, k := range ix.Key {
		if seen[k] {
			return fmt.Errorf("index %s repeats key column %s", ix.ID(), k)
		}
		seen[k] = true
	}
	for _, name := range ix.AllColumns() {
		if _, ok := meta.Column(name); !ok {
			return fmt.Errorf("index %s references missing column %s", ix.ID(), name)
		}
	}
	return nil
}

// SeekPrefix computes how the index can serve a conjunction of filter
// predicates: the number of leading key columns bound by equality
// predicates (eqLen), and whether the next key column carries a range
// predicate (hasRange). Standard composite B+-tree seek semantics.
func (ix *Index) SeekPrefix(preds []query.Predicate) (eqLen int, hasRange bool) {
	eq := map[string]bool{}
	rng := map[string]bool{}
	for _, p := range preds {
		if p.Table != ix.Table {
			continue
		}
		if p.IsEquality() {
			eq[p.Column] = true
		} else {
			rng[p.Column] = true
		}
	}
	for _, k := range ix.Key {
		if eq[k] {
			eqLen++
			continue
		}
		if rng[k] {
			hasRange = true
		}
		break
	}
	return eqLen, hasRange
}

// CoversQueryOn reports whether the index contains every column of the
// given table that the query references (filters, joins and payload): a
// covering index avoids all base-table lookups.
func (ix *Index) CoversQueryOn(q *query.Query, table string) bool {
	if ix.Table != table {
		return false
	}
	for _, c := range q.PredicateColumnsOn(table) {
		if !ix.HasColumn(c) {
			return false
		}
	}
	for _, c := range q.JoinColumnsOn(table) {
		if !ix.HasColumn(c) {
			return false
		}
	}
	for _, c := range q.PayloadColumnsOn(table) {
		if !ix.HasColumn(c) {
			return false
		}
	}
	return true
}

// SubsumedBy reports whether other makes this index redundant: same
// table, this key is a prefix of other's key, and every include column of
// this index appears somewhere in other. Used by the greedy oracle's
// filtering step ("arms already covered by the selected arms based on
// prefix matching").
func (ix *Index) SubsumedBy(other *Index) bool {
	if ix.Table != other.Table || len(ix.Key) > len(other.Key) {
		return false
	}
	for i, k := range ix.Key {
		if other.Key[i] != k {
			return false
		}
	}
	for _, c := range ix.Include {
		if !other.HasColumn(c) {
			return false
		}
	}
	return true
}
