package index

import (
	"testing"
	"testing/quick"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

func ordersMeta() *catalog.Table {
	t := &catalog.Table{
		Name:     "orders",
		BaseRows: 1000,
		RowCount: 1000,
		Columns: []catalog.Column{
			{Name: "o_id", Kind: catalog.KindInt},
			{Name: "o_custkey", Kind: catalog.KindInt},
			{Name: "o_date", Kind: catalog.KindDate},
			{Name: "o_total", Kind: catalog.KindDecimal},
			{Name: "o_comment", Kind: catalog.KindString},
		},
	}
	return t
}

func TestNewNormalisesIncludes(t *testing.T) {
	ix := New("orders", []string{"o_custkey"}, []string{"o_total", "o_custkey", "o_total", "o_date"})
	if len(ix.Include) != 2 || ix.Include[0] != "o_date" || ix.Include[1] != "o_total" {
		t.Fatalf("includes = %v", ix.Include)
	}
}

func TestID(t *testing.T) {
	ix := New("orders", []string{"o_custkey", "o_date"}, []string{"o_total"})
	want := "orders(o_custkey,o_date) INCLUDE (o_total)"
	if ix.ID() != want {
		t.Fatalf("id = %q", ix.ID())
	}
	plain := New("orders", []string{"o_date"}, nil)
	if plain.ID() != "orders(o_date)" {
		t.Fatalf("id = %q", plain.ID())
	}
	if plain.String() != plain.ID() {
		t.Fatal("String != ID")
	}
}

func TestHasColumnAndKeyPosition(t *testing.T) {
	ix := New("orders", []string{"o_custkey", "o_date"}, []string{"o_total"})
	if !ix.HasColumn("o_custkey") || !ix.HasColumn("o_total") || ix.HasColumn("o_comment") {
		t.Fatal("HasColumn wrong")
	}
	if ix.KeyPosition("o_date") != 1 || ix.KeyPosition("o_total") != -1 {
		t.Fatal("KeyPosition wrong")
	}
}

func TestSizeBytes(t *testing.T) {
	meta := ordersMeta()
	ix := New("orders", []string{"o_custkey"}, nil)
	// (8 ptr + 8 key) * 1000 * 1.35 = 21600
	if got := ix.SizeBytes(meta); got != 21600 {
		t.Fatalf("size = %d", got)
	}
	wide := New("orders", []string{"o_comment"}, nil) // 24-byte strings
	if wide.SizeBytes(meta) <= ix.SizeBytes(meta) {
		t.Fatal("wider column should produce a bigger index")
	}
}

func TestValid(t *testing.T) {
	meta := ordersMeta()
	good := New("orders", []string{"o_custkey"}, []string{"o_total"})
	if err := good.Valid(meta); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	cases := []*Index{
		New("lineitem", []string{"l_qty"}, nil),              // wrong table
		New("orders", nil, nil),                              // empty key
		{Table: "orders", Key: []string{"o_date", "o_date"}}, // dup key
		New("orders", []string{"ghost"}, nil),                // missing column
	}
	for i, ix := range cases {
		if err := ix.Valid(meta); err == nil {
			t.Fatalf("case %d: invalid index accepted: %s", i, ix.ID())
		}
	}
}

func TestSeekPrefix(t *testing.T) {
	ix := New("orders", []string{"o_custkey", "o_date", "o_total"}, nil)
	preds := []query.Predicate{
		{Table: "orders", Column: "o_custkey", Op: query.OpEq, Lo: 1, Hi: 1},
		{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 9},
	}
	eqLen, hasRange := ix.SeekPrefix(preds)
	if eqLen != 1 || !hasRange {
		t.Fatalf("eqLen=%d hasRange=%v", eqLen, hasRange)
	}

	// both leading columns equality-bound
	preds2 := []query.Predicate{
		{Table: "orders", Column: "o_custkey", Op: query.OpEq, Lo: 1, Hi: 1},
		{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 5, Hi: 5},
	}
	eqLen, hasRange = ix.SeekPrefix(preds2)
	if eqLen != 2 || hasRange {
		t.Fatalf("eqLen=%d hasRange=%v", eqLen, hasRange)
	}

	// predicate on non-leading column only: no prefix
	preds3 := []query.Predicate{
		{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 5, Hi: 5},
	}
	eqLen, hasRange = ix.SeekPrefix(preds3)
	if eqLen != 0 || hasRange {
		t.Fatalf("non-prefix: eqLen=%d hasRange=%v", eqLen, hasRange)
	}

	// other table's predicates are ignored
	preds4 := []query.Predicate{
		{Table: "customer", Column: "o_custkey", Op: query.OpEq, Lo: 1, Hi: 1},
	}
	if e, r := ix.SeekPrefix(preds4); e != 0 || r {
		t.Fatalf("cross-table: eqLen=%d hasRange=%v", e, r)
	}
}

func TestCoversQueryOn(t *testing.T) {
	q := &query.Query{
		Tables: []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 1, Hi: 2},
		},
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
	covering := New("orders", []string{"o_date"}, []string{"o_custkey", "o_total"})
	if !covering.CoversQueryOn(q, "orders") {
		t.Fatal("covering index not recognised")
	}
	partial := New("orders", []string{"o_date"}, []string{"o_total"})
	if partial.CoversQueryOn(q, "orders") {
		t.Fatal("missing join column but reported covering")
	}
	other := New("customer", []string{"c_id"}, nil)
	if other.CoversQueryOn(q, "orders") {
		t.Fatal("wrong-table index reported covering")
	}
}

func TestSubsumedBy(t *testing.T) {
	a := New("orders", []string{"o_custkey"}, nil)
	b := New("orders", []string{"o_custkey", "o_date"}, nil)
	if !a.SubsumedBy(b) {
		t.Fatal("prefix index should be subsumed")
	}
	if b.SubsumedBy(a) {
		t.Fatal("longer index subsumed by shorter")
	}
	c := New("orders", []string{"o_date", "o_custkey"}, nil)
	if a.SubsumedBy(c) {
		t.Fatal("non-prefix order should not subsume")
	}
	withInc := New("orders", []string{"o_custkey"}, []string{"o_total"})
	if withInc.SubsumedBy(b) {
		t.Fatal("include column missing from subsumer")
	}
	bInc := New("orders", []string{"o_custkey", "o_date"}, []string{"o_total"})
	if !withInc.SubsumedBy(bInc) {
		t.Fatal("include column present in subsumer key/includes")
	}
	if a.SubsumedBy(New("lineitem", []string{"o_custkey"}, nil)) {
		t.Fatal("cross-table subsumption")
	}
}

func TestConfigAddDrop(t *testing.T) {
	c := NewConfig()
	a := New("orders", []string{"o_custkey"}, nil)
	if !c.Add(a) {
		t.Fatal("first add failed")
	}
	if c.Add(New("orders", []string{"o_custkey"}, nil)) {
		t.Fatal("duplicate add succeeded")
	}
	if c.Len() != 1 || !c.Has(a.ID()) {
		t.Fatal("config state wrong after add")
	}
	if got, ok := c.Get(a.ID()); !ok || got.ID() != a.ID() {
		t.Fatal("Get failed")
	}
	if !c.Drop(a.ID()) || c.Len() != 0 {
		t.Fatal("drop failed")
	}
	if c.Drop(a.ID()) {
		t.Fatal("double drop succeeded")
	}
	if len(c.OnTable("orders")) != 0 {
		t.Fatal("byTable not cleaned up")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := NewConfig()
	c.Add(New("orders", []string{"o_custkey"}, nil))
	d := c.Clone()
	d.Add(New("orders", []string{"o_date"}, nil))
	if c.Len() != 1 || d.Len() != 2 {
		t.Fatalf("clone not independent: %d, %d", c.Len(), d.Len())
	}
}

func TestConfigDiff(t *testing.T) {
	old := NewConfig()
	old.Add(New("orders", []string{"o_custkey"}, nil))
	next := old.Clone()
	added := New("orders", []string{"o_date"}, nil)
	next.Add(added)
	diff := next.Diff(old)
	if len(diff) != 1 || diff[0].ID() != added.ID() {
		t.Fatalf("diff = %v", diff)
	}
	if got := next.Diff(nil); len(got) != 2 {
		t.Fatalf("diff vs nil = %d indexes", len(got))
	}
}

func TestConfigSizeBytes(t *testing.T) {
	schema := catalog.MustSchema("s", ordersMeta())
	c := NewConfig()
	a := New("orders", []string{"o_custkey"}, nil)
	b := New("orders", []string{"o_date"}, []string{"o_total"})
	c.Add(a)
	c.Add(b)
	meta := schema.MustTable("orders")
	want := a.SizeBytes(meta) + b.SizeBytes(meta)
	if got := c.SizeBytes(schema); got != want {
		t.Fatalf("config size = %d, want %d", got, want)
	}
}

func TestConfigDeterministicOrder(t *testing.T) {
	c := NewConfig()
	c.Add(New("orders", []string{"o_date"}, nil))
	c.Add(New("orders", []string{"o_custkey"}, nil))
	all := c.All()
	if len(all) != 2 || all[0].ID() > all[1].ID() {
		t.Fatalf("All not sorted: %v", c.IDs())
	}
	ids := c.IDs()
	if ids[0] != "orders(o_custkey)" {
		t.Fatalf("ids = %v", ids)
	}
}

// Property: subsumption is reflexive and antisymmetric up to equality.
func TestQuickSubsumptionPartialOrder(t *testing.T) {
	cols := []string{"a", "b", "c", "d"}
	mk := func(n uint8) *Index {
		k := 1 + int(n)%3
		key := cols[:k]
		return New("t", key, nil)
	}
	f := func(x, y uint8) bool {
		a, b := mk(x), mk(y)
		if !a.SubsumedBy(a) {
			return false
		}
		if a.SubsumedBy(b) && b.SubsumedBy(a) {
			return a.ID() == b.ID()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SeekPrefix eqLen never exceeds number of equality predicates
// on the table nor the key length.
func TestQuickSeekPrefixBounds(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	f := func(keyN, eqN uint8) bool {
		k := 1 + int(keyN)%4
		ix := New("t", cols[:k], nil)
		n := int(eqN) % 5
		var preds []query.Predicate
		for i := 0; i < n; i++ {
			preds = append(preds, query.Predicate{Table: "t", Column: cols[i%5], Op: query.OpEq})
		}
		eqLen, _ := ix.SeekPrefix(preds)
		return eqLen <= n && eqLen <= k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigEpochAdvancesOnMutation(t *testing.T) {
	c := NewConfig()
	if c.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", c.Epoch())
	}
	a := New("orders", []string{"o_custkey"}, nil)
	c.Add(a)
	if c.Epoch() != 1 {
		t.Fatalf("epoch after add = %d", c.Epoch())
	}
	// Failed mutations are not content changes.
	c.Add(New("orders", []string{"o_custkey"}, nil)) // duplicate
	c.Drop("no-such-id")
	if c.Epoch() != 1 {
		t.Fatalf("epoch moved on no-op mutations: %d", c.Epoch())
	}
	c.Drop(a.ID())
	if c.Epoch() != 2 {
		t.Fatalf("epoch after drop = %d", c.Epoch())
	}
	var nilCfg *Config
	if nilCfg.Epoch() != 0 {
		t.Fatal("nil Config epoch non-zero")
	}
}

func TestConfigTableSig(t *testing.T) {
	c := NewConfig()
	if c.TableSig("orders") != "" {
		t.Fatal("empty table sig non-empty")
	}
	a := New("orders", []string{"o_custkey"}, nil)
	b := New("orders", []string{"o_date"}, nil)
	other := New("customer", []string{"c_nation"}, nil)
	c.Add(a)
	c.Add(b)
	c.Add(other)
	sig := c.TableSig("orders")
	if sig == "" || sig == c.TableSig("customer") {
		t.Fatalf("bad sig %q", sig)
	}
	if c.TableSig("orders") != sig {
		t.Fatal("memoised sig unstable")
	}

	// Same content in a different Config (built in a different order)
	// yields the same signature.
	d := NewConfig()
	d.Add(b)
	d.Add(a)
	if d.TableSig("orders") != sig {
		t.Fatalf("order-dependent sig: %q vs %q", d.TableSig("orders"), sig)
	}

	// Mutating one table invalidates only that table's signature.
	custSig := c.TableSig("customer")
	c.Drop(b.ID())
	if c.TableSig("orders") == sig {
		t.Fatal("sig unchanged after drop")
	}
	if c.TableSig("customer") != custSig {
		t.Fatal("unrelated table sig changed")
	}
	c.Add(b)
	if c.TableSig("orders") != sig {
		t.Fatal("sig not restored after re-add")
	}

	var nilCfg *Config
	if nilCfg.TableSig("orders") != "" {
		t.Fatal("nil Config sig non-empty")
	}
}

func TestConfigTableSigConcurrentReaders(t *testing.T) {
	c := NewConfig()
	c.Add(New("orders", []string{"o_custkey"}, nil))
	c.Add(New("orders", []string{"o_date"}, nil))
	want := c.TableSig("orders")
	c.Drop(New("orders", []string{"o_date"}, nil).ID())
	c.Add(New("orders", []string{"o_date"}, nil)) // sig recomputes lazily
	done := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- c.TableSig("orders") }()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent sig %q, want %q", got, want)
		}
	}
}
