package index

// Def is the serialisable definition of one index — exactly the inputs
// New takes. Checkpoints persist configurations as Def lists and
// rebuild them with Build/ConfigFromDefs, so the on-disk form carries
// no memoised ids or schema pointers.
type Def struct {
	Table   string
	Key     []string
	Include []string `json:",omitempty"`
}

// Build constructs the index the definition describes.
func (d Def) Build() *Index { return New(d.Table, d.Key, d.Include) }

// Defs returns the configuration's index definitions in deterministic
// (id-sorted) order.
func (c *Config) Defs() []Def {
	all := c.All()
	out := make([]Def, len(all))
	for i, ix := range all {
		out[i] = Def{
			Table:   ix.Table,
			Key:     append([]string(nil), ix.Key...),
			Include: append([]string(nil), ix.Include...),
		}
	}
	return out
}

// ConfigFromDefs rebuilds a configuration from serialised definitions.
func ConfigFromDefs(defs []Def) *Config {
	cfg := NewConfig()
	for _, d := range defs {
		cfg.Add(d.Build())
	}
	return cfg
}
