package index

import (
	"sort"

	"dbabandits/internal/catalog"
)

// Config is a set of materialised indexes — the paper's "configuration"
// s_t. The zero value is not usable; construct with NewConfig.
type Config struct {
	byID    map[string]*Index
	byTable map[string][]*Index
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{byID: map[string]*Index{}, byTable: map[string][]*Index{}}
}

// Clone returns an independent copy sharing the immutable *Index values.
func (c *Config) Clone() *Config {
	out := NewConfig()
	for id, ix := range c.byID {
		out.byID[id] = ix
		out.byTable[ix.Table] = append(out.byTable[ix.Table], ix)
	}
	for t := range out.byTable {
		sortIndexes(out.byTable[t])
	}
	return out
}

// Add inserts an index; it reports whether the index was new.
func (c *Config) Add(ix *Index) bool {
	id := ix.ID()
	if _, exists := c.byID[id]; exists {
		return false
	}
	c.byID[id] = ix
	c.byTable[ix.Table] = append(c.byTable[ix.Table], ix)
	sortIndexes(c.byTable[ix.Table])
	return true
}

// Drop removes an index by id; it reports whether it was present.
func (c *Config) Drop(id string) bool {
	ix, exists := c.byID[id]
	if !exists {
		return false
	}
	delete(c.byID, id)
	list := c.byTable[ix.Table]
	for i, cand := range list {
		if cand.ID() == id {
			c.byTable[ix.Table] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(c.byTable[ix.Table]) == 0 {
		delete(c.byTable, ix.Table)
	}
	return true
}

// Has reports whether the configuration contains the index id.
func (c *Config) Has(id string) bool {
	_, ok := c.byID[id]
	return ok
}

// Get returns the index by id.
func (c *Config) Get(id string) (*Index, bool) {
	ix, ok := c.byID[id]
	return ix, ok
}

// OnTable returns the indexes on the table, in deterministic order.
func (c *Config) OnTable(table string) []*Index { return c.byTable[table] }

// All returns every index in deterministic order.
func (c *Config) All() []*Index {
	out := make([]*Index, 0, len(c.byID))
	for _, ix := range c.byID {
		out = append(out, ix)
	}
	sortIndexes(out)
	return out
}

// Len returns the number of indexes.
func (c *Config) Len() int { return len(c.byID) }

// SizeBytes sums the estimated sizes of all indexes against the schema.
func (c *Config) SizeBytes(schema *catalog.Schema) int64 {
	var total int64
	for _, ix := range c.byID {
		if meta, ok := schema.Table(ix.Table); ok {
			total += ix.SizeBytes(meta)
		}
	}
	return total
}

// Diff returns the indexes present in c but not in old — the set the
// system must materialise when transitioning old -> c (s_t \ s_{t-1}).
func (c *Config) Diff(old *Config) []*Index {
	var out []*Index
	for id, ix := range c.byID {
		if old == nil || !old.Has(id) {
			out = append(out, ix)
		}
	}
	sortIndexes(out)
	return out
}

// DiffBoth computes both sides of the transition old -> c in one pass:
// the indexes to materialise (in c, not old; sorted like Diff) and the
// ids to drop (in old, not c; sorted). The round driver previously
// derived the drop list by re-querying Has per sorted id — this folds
// both sides into the diff the creation pricing already needs.
func (c *Config) DiffBoth(old *Config) (create []*Index, drop []string) {
	for id, ix := range c.byID {
		if old == nil || !old.Has(id) {
			create = append(create, ix)
		}
	}
	sortIndexes(create)
	if old != nil {
		for id := range old.byID {
			if !c.Has(id) {
				drop = append(drop, id)
			}
		}
		sort.Strings(drop)
	}
	return create, drop
}

// EachID calls f for every index id in unspecified order, without
// allocating the sorted slice IDs builds — for callers filling a set.
func (c *Config) EachID(f func(id string)) {
	for id := range c.byID {
		f(id)
	}
}

// IDs returns the sorted index ids; convenient in tests and logs.
func (c *Config) IDs() []string {
	out := make([]string, 0, len(c.byID))
	for id := range c.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func sortIndexes(list []*Index) {
	sort.Slice(list, func(i, j int) bool { return list[i].ID() < list[j].ID() })
}
