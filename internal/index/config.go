package index

import (
	"sort"
	"strings"
	"sync"

	"dbabandits/internal/catalog"
)

// Config is a set of materialised indexes — the paper's "configuration"
// s_t. The zero value is not usable; construct with NewConfig.
type Config struct {
	byID    map[string]*Index
	byTable map[string][]*Index

	// epoch counts content mutations (successful Add/Drop). The
	// optimiser's plan cache uses (pointer, epoch) as a same-content
	// fast path: a Config can only change through Add/Drop, so an
	// unchanged epoch on the same object proves unchanged content.
	epoch uint64
	// sigs memoises TableSig per table, invalidated on Add/Drop. Lazy:
	// configs that never reach the optimiser pay nothing. sigMu permits
	// concurrent TableSig readers (parallel what-if pricing of one
	// config) to race only on the memo, never on the content maps —
	// mutating a Config while it is being priced remains forbidden,
	// exactly as for OnTable.
	sigMu sync.Mutex
	sigs  map[string]string
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{byID: map[string]*Index{}, byTable: map[string][]*Index{}}
}

// Clone returns an independent copy sharing the immutable *Index values.
func (c *Config) Clone() *Config {
	out := NewConfig()
	for id, ix := range c.byID {
		out.byID[id] = ix
		out.byTable[ix.Table] = append(out.byTable[ix.Table], ix)
	}
	for t := range out.byTable {
		sortIndexes(out.byTable[t])
	}
	return out
}

// Add inserts an index; it reports whether the index was new.
func (c *Config) Add(ix *Index) bool {
	id := ix.ID()
	if _, exists := c.byID[id]; exists {
		return false
	}
	c.byID[id] = ix
	c.byTable[ix.Table] = append(c.byTable[ix.Table], ix)
	sortIndexes(c.byTable[ix.Table])
	c.mutated(ix.Table)
	return true
}

// Drop removes an index by id; it reports whether it was present.
func (c *Config) Drop(id string) bool {
	ix, exists := c.byID[id]
	if !exists {
		return false
	}
	delete(c.byID, id)
	list := c.byTable[ix.Table]
	for i, cand := range list {
		if cand.ID() == id {
			c.byTable[ix.Table] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(c.byTable[ix.Table]) == 0 {
		delete(c.byTable, ix.Table)
	}
	c.mutated(ix.Table)
	return true
}

// mutated records a content change: the epoch advances and the touched
// table's memoised signature is invalidated.
func (c *Config) mutated(table string) {
	c.epoch++
	if c.sigs != nil {
		c.sigMu.Lock()
		delete(c.sigs, table)
		c.sigMu.Unlock()
	}
}

// Epoch returns the mutation counter: it advances on every successful
// Add or Drop and never otherwise, so equal epochs on the same Config
// object guarantee identical content. A nil Config reports 0.
func (c *Config) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch
}

// TableSig returns a canonical content signature of the configuration's
// indexes on one table: the sorted index ids joined by an unprintable
// separator, "" for a table with no indexes (or a nil Config). Equal
// signatures mean equal index sets, so the optimiser's plan cache can
// recognise that two configurations are indistinguishable for a query
// touching only this table. Computed lazily and memoised until the next
// Add/Drop on the table; safe for concurrent readers.
func (c *Config) TableSig(table string) string {
	if c == nil {
		return ""
	}
	list := c.byTable[table]
	if len(list) == 0 {
		return ""
	}
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	if s, ok := c.sigs[table]; ok {
		return s
	}
	n := 0
	for _, ix := range list {
		n += len(ix.ID()) + 1
	}
	var b strings.Builder
	b.Grow(n - 1)
	for i, ix := range list {
		if i > 0 {
			b.WriteByte(tableSigSep)
		}
		b.WriteString(ix.ID())
	}
	s := b.String()
	if c.sigs == nil {
		c.sigs = map[string]string{}
	}
	c.sigs[table] = s
	return s
}

// tableSigSep separates index ids inside TableSig values; index ids are
// built from identifier characters and "( ),", so a control byte can
// never collide.
const tableSigSep = 0x1f

// Has reports whether the configuration contains the index id.
func (c *Config) Has(id string) bool {
	_, ok := c.byID[id]
	return ok
}

// Get returns the index by id.
func (c *Config) Get(id string) (*Index, bool) {
	ix, ok := c.byID[id]
	return ix, ok
}

// OnTable returns the indexes on the table, in deterministic order.
func (c *Config) OnTable(table string) []*Index { return c.byTable[table] }

// All returns every index in deterministic order.
func (c *Config) All() []*Index {
	out := make([]*Index, 0, len(c.byID))
	for _, ix := range c.byID {
		out = append(out, ix)
	}
	sortIndexes(out)
	return out
}

// Len returns the number of indexes.
func (c *Config) Len() int { return len(c.byID) }

// SizeBytes sums the estimated sizes of all indexes against the schema.
func (c *Config) SizeBytes(schema *catalog.Schema) int64 {
	var total int64
	for _, ix := range c.byID {
		if meta, ok := schema.Table(ix.Table); ok {
			total += ix.SizeBytes(meta)
		}
	}
	return total
}

// Diff returns the indexes present in c but not in old — the set the
// system must materialise when transitioning old -> c (s_t \ s_{t-1}).
func (c *Config) Diff(old *Config) []*Index {
	var out []*Index
	for id, ix := range c.byID {
		if old == nil || !old.Has(id) {
			out = append(out, ix)
		}
	}
	sortIndexes(out)
	return out
}

// DiffBoth computes both sides of the transition old -> c in one pass:
// the indexes to materialise (in c, not old; sorted like Diff) and the
// ids to drop (in old, not c; sorted). The round driver previously
// derived the drop list by re-querying Has per sorted id — this folds
// both sides into the diff the creation pricing already needs.
func (c *Config) DiffBoth(old *Config) (create []*Index, drop []string) {
	for id, ix := range c.byID {
		if old == nil || !old.Has(id) {
			create = append(create, ix)
		}
	}
	sortIndexes(create)
	if old != nil {
		for id := range old.byID {
			if !c.Has(id) {
				drop = append(drop, id)
			}
		}
		sort.Strings(drop)
	}
	return create, drop
}

// EachID calls f for every index id in unspecified order, without
// allocating the sorted slice IDs builds — for callers filling a set.
func (c *Config) EachID(f func(id string)) {
	for id := range c.byID {
		f(id)
	}
}

// IDs returns the sorted index ids; convenient in tests and logs.
func (c *Config) IDs() []string {
	out := make([]string, 0, len(c.byID))
	for id := range c.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// sortIndexes orders a list by ID. Insertion sort, not sort.Slice: the
// lists are per-table index sets (a handful of entries, usually already
// nearly sorted — Add appends one element to a sorted list), and
// sort.Slice's reflect.Swapper + closure were ~23 allocs per warm
// recommend round in BenchmarkTunerRecommendSteadyState. IDs are unique,
// so the resulting order is identical to the previous implementation.
func sortIndexes(list []*Index) {
	for i := 1; i < len(list); i++ {
		ix := list[i]
		id := ix.ID()
		j := i - 1
		for j >= 0 && list[j].ID() > id {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = ix
	}
}
