package harness

import (
	"fmt"
	"io"

	"dbabandits/internal/runner"
)

// CellSpec identifies one independent cell of an experiment sweep: a
// benchmark × regime × tuner × repetition point together with its
// sizing knobs (the embedded Options). Cells are self-contained — each
// builds its own database and workload sequence from Options.Seed — so
// a sweep may run them in any order, concurrently, without changing any
// cell's numbers.
type CellSpec struct {
	Options
	// Tuner selects the strategy this cell runs.
	Tuner TunerKind
	// Rep distinguishes repeated runs of stochastic tuners (the paper
	// repeats DDQN ten times in Figure 8). Deterministic tuners use 0.
	Rep int
}

// Key names the cell within its sweep. It is the identity the
// deterministic seed derivation hashes, so two specs with equal keys
// and equal base seeds receive identical private RNG streams. The
// scale factor is part of the identity (Table II sweeps it); it is
// normalised to the Options default so pre- and post-default specs
// name the same cell.
func (s CellSpec) Key() string {
	sf := s.ScaleFactor
	if sf <= 0 {
		sf = 10
	}
	return fmt.Sprintf("%s/%s/%s/sf%g/rep%d", s.Benchmark, s.Regime, s.Tuner, sf, s.Rep)
}

// withDerivedSeeds fills the tuner-private seeds that were left unset.
// Options.Seed is deliberately NOT derived: data generation and
// workload sequencing must be identical across the tuners of one
// benchmark/regime pair, or their comparison would be meaningless. Only
// per-cell stochastic state (the DDQN agent) splits off the base seed,
// keyed by the cell's identity so repetitions differ deterministically.
func (s CellSpec) withDerivedSeeds() CellSpec {
	if s.DDQNSeed == 0 && (s.Tuner == DDQN || s.Tuner == DDQNSC) {
		s.DDQNSeed = runner.CellSeed(s.Seed, s.Key())
	}
	if s.RandomSeed == 0 && s.Tuner == RandomConfig {
		s.RandomSeed = runner.CellSeed(s.Seed, s.Key())
	}
	return s
}

// CellResult pairs a cell with its outcome. Exactly one of Res/Err is
// set.
type CellResult struct {
	Spec CellSpec
	Res  *RunResult
	Err  error
}

// RunCellsOptions tune a RunCells sweep.
type RunCellsOptions struct {
	// Parallel bounds concurrently running cells; <= 0 means
	// runtime.GOMAXPROCS(0). Results are identical at any setting.
	Parallel int
	// Progress, when non-nil, receives one "[k/n] key" line per
	// completed cell (completion order, typically os.Stderr).
	Progress io.Writer
}

// RunCells executes every cell of a sweep across a bounded worker pool
// and returns one CellResult per spec, in spec order regardless of
// completion order. A failing cell reports its error in place without
// aborting sibling cells. Each cell prepares its own Experiment, so
// RunCells with Parallel: 1 is the sequential reference that any other
// parallelism level reproduces exactly.
func RunCells(specs []CellSpec, opts RunCellsOptions) []CellResult {
	tasks := make([]runner.Task[*RunResult], len(specs))
	derived := make([]CellSpec, len(specs))
	labels := make([]string, len(specs))
	for i := range specs {
		// New variable per iteration: the task closures below outlive
		// the loop (go.mod declares 1.21, pre-loopvar semantics).
		spec := specs[i].withDerivedSeeds()
		derived[i] = spec
		labels[i] = spec.Key()
		tasks[i] = func() (*RunResult, error) { return runCell(spec) }
	}
	ropts := runner.Options{Parallel: opts.Parallel}
	if opts.Progress != nil {
		ropts.OnDone = runner.Progress(opts.Progress, labels)
	}
	results := runner.Run(tasks, ropts)
	out := make([]CellResult, len(specs))
	for i, r := range results {
		out[i] = CellResult{Spec: derived[i], Res: r.Value, Err: r.Err}
	}
	return out
}

// runCell prepares and runs one cell end to end.
func runCell(spec CellSpec) (*RunResult, error) {
	exp, err := New(spec.Options)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Key(), err)
	}
	res, err := exp.Run(spec.Tuner)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Key(), err)
	}
	return res, nil
}

// CellErrs collects every failed cell's error, in spec order.
func CellErrs(results []CellResult) []error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errs
}
