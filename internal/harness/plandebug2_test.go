package harness

import (
	"fmt"
	"os"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
)

// TestProbeTPCHPlans inspects TPC-H plan choices under hand-built
// configurations; enable with HARNESS_TPCH_PLANS=1 (set =skew for the
// skewed variant).
func TestProbeTPCHPlans(t *testing.T) {
	mode := os.Getenv("HARNESS_TPCH_PLANS")
	if mode == "" {
		t.Skip("set HARNESS_TPCH_PLANS=1 to run")
	}
	bench := "tpch"
	if mode == "skew" {
		bench = "tpch-skew"
	}
	e, err := New(Options{
		Benchmark: bench, Regime: Static, ScaleFactor: 10,
		MaxStoredRows: 5000, Rounds: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := e.Seq.Round(1)

	ideal := index.NewConfig()
	ideal.Add(index.New("lineitem", []string{"l_partkey"}, []string{"l_extendedprice", "l_discount", "l_quantity", "l_orderkey", "l_suppkey", "l_shipdate"}))
	ideal.Add(index.New("lineitem", []string{"l_orderkey"}, []string{"l_extendedprice", "l_discount", "l_quantity", "l_partkey", "l_suppkey", "l_shipdate", "l_returnflag", "l_commitdate", "l_receiptdate", "l_shipmode"}))
	ideal.Add(index.New("lineitem", []string{"l_suppkey", "l_shipdate"}, []string{"l_extendedprice", "l_discount", "l_quantity", "l_orderkey"}))
	ideal.Add(index.New("lineitem", []string{"l_shipdate"}, []string{"l_extendedprice", "l_discount", "l_quantity"}))
	ideal.Add(index.New("orders", []string{"o_custkey"}, []string{"o_orderdate", "o_totalprice", "o_orderkey", "o_orderpriority", "o_orderstatus", "o_shippriority"}))
	ideal.Add(index.New("orders", []string{"o_orderdate"}, []string{"o_custkey", "o_orderkey", "o_orderpriority", "o_totalprice"}))
	ideal.Add(index.New("partsupp", []string{"ps_partkey"}, []string{"ps_suppkey", "ps_supplycost", "ps_availqty"}))
	ideal.Add(index.New("partsupp", []string{"ps_suppkey"}, []string{"ps_partkey", "ps_supplycost", "ps_availqty"}))
	ideal.Add(index.New("customer", []string{"c_mktsegment"}, []string{"c_custkey", "c_nationkey", "c_acctbal", "c_name"}))
	ideal.Add(index.New("customer", []string{"c_nationkey"}, []string{"c_custkey", "c_acctbal", "c_name"}))
	ideal.Add(index.New("part", []string{"p_brand"}, []string{"p_partkey", "p_type", "p_size", "p_container"}))

	for _, cfgPair := range []struct {
		name string
		cfg  *index.Config
	}{{"none", index.NewConfig()}, {"ideal", ideal}} {
		var total float64
		for _, q := range wl {
			plan, err := e.Opt.ChoosePlan(q, cfgPair.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := engine.Execute(e.DB, plan, e.CM)
			if err != nil {
				t.Fatal(err)
			}
			total += st.TotalSec
			if os.Getenv("HARNESS_TPCH_VERBOSE") != "" {
				fmt.Printf("[%s] q%-3d est=%9.2f true=%9.2f  %s\n", cfgPair.name, q.TemplateID, plan.EstCost, st.TotalSec, plan)
			} else {
				fmt.Printf("[%s] q%-3d est=%9.2f true=%9.2f\n", cfgPair.name, q.TemplateID, plan.EstCost, st.TotalSec)
			}
		}
		fmt.Printf("[%s] TOTAL true exec = %.1f\n\n", cfgPair.name, total)
	}
}
