package harness

import (
	"testing"

	"dbabandits/internal/mab"
)

func TestWarmStartReducesEarlyCost(t *testing.T) {
	cold := smallExperiment(t, Static, 5)
	coldRes, err := cold.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	warm := smallExperiment(t, Static, 5)
	warm.Opts.MABWarmStartRounds = 3
	warmRes, err := warm.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	early := func(r *RunResult) float64 {
		var s float64
		for _, rr := range r.Rounds[:3] {
			s += rr.ExecSec
		}
		return s
	}
	// Warm starting must not be catastrophically worse early on; it
	// usually helps (the what-if estimates are accurate on uniform SSB).
	if early(warmRes) > early(coldRes)*1.25 {
		t.Fatalf("warm start hurt early rounds badly: %v vs %v", early(warmRes), early(coldRes))
	}
}

func TestCreationPenaltyAblationIncreasesCreation(t *testing.T) {
	base := smallExperiment(t, Static, 8)
	base.Opts.MABOptions = mab.TunerOptions{MemoryBudgetBytes: base.Budget}
	baseRes, err := base.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	free := smallExperiment(t, Static, 8)
	free.Opts.MABOptions = mab.TunerOptions{
		MemoryBudgetBytes: free.Budget,
		NoCreationPenalty: true,
	}
	freeRes, err := free.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	_, baseCreate, _, _ := baseRes.Totals()
	_, freeCreate, _, _ := freeRes.Totals()
	if freeCreate < baseCreate {
		t.Fatalf("removing the creation penalty reduced creation spend: %v vs %v", freeCreate, baseCreate)
	}
}

func TestOneHotContextAblationRuns(t *testing.T) {
	e := smallExperiment(t, Static, 4)
	e.Opts.MABOptions = mab.TunerOptions{
		MemoryBudgetBytes: e.Budget,
		OneHotContext:     true,
	}
	res, err := e.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
}

func TestScaleFactorGrowsTotals(t *testing.T) {
	mk := func(sf float64) float64 {
		e, err := New(Options{
			Benchmark:     "tpch",
			Regime:        Static,
			Rounds:        3,
			ScaleFactor:   sf,
			MaxStoredRows: 1000,
			Seed:          5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(NoIndex)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, total := res.Totals()
		return total
	}
	sf1 := mk(1)
	sf10 := mk(10)
	ratio := sf10 / sf1
	if ratio < 5 || ratio > 20 {
		t.Fatalf("SF10/SF1 total ratio = %v, want roughly 10", ratio)
	}
}

func TestPDToolTimeLimitShrinksRecommendation(t *testing.T) {
	unlimited := smallExperiment(t, Random, 9)
	uRes, err := unlimited.Run(PDTool)
	if err != nil {
		t.Fatal(err)
	}
	limited := smallExperiment(t, Random, 9)
	limited.Opts.PDToolTimeLimitSec = 1
	lRes, err := limited.Run(PDTool)
	if err != nil {
		t.Fatal(err)
	}
	uRec, _, _, _ := uRes.Totals()
	lRec, _, _, _ := lRes.Totals()
	if lRec > uRec {
		t.Fatalf("time limit increased recommendation time: %v vs %v", lRec, uRec)
	}
}
