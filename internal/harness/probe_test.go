package harness

import (
	"fmt"
	"os"
	"testing"
)

// TestProbeConvergence prints per-round series for manual calibration;
// enable with HARNESS_PROBE=<benchmark>.
func TestProbeConvergence(t *testing.T) {
	bench := os.Getenv("HARNESS_PROBE")
	if bench == "" {
		t.Skip("set HARNESS_PROBE=<benchmark> to run")
	}
	e, err := New(Options{
		Benchmark:     bench,
		Regime:        Static,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        25,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []TunerKind{NoIndex, PDTool, MAB} {
		res, err := e.Run(kind)
		if err != nil {
			t.Fatal(err)
		}
		rec, create, exec, total := res.Totals()
		fmt.Printf("%-8s rec=%8.1f create=%8.1f exec=%8.1f total=%8.1f final-exec=%7.1f idx=%d\n",
			kind, rec, create, exec, total, res.FinalRoundExecSec(), res.Rounds[len(res.Rounds)-1].NumIndexes)
		if os.Getenv("HARNESS_PROBE_ROUNDS") != "" {
			for _, r := range res.Rounds {
				fmt.Printf("  r%02d exec=%8.2f create=%8.2f idx=%d\n", r.Round, r.ExecSec, r.CreateSec, r.NumIndexes)
			}
		}
	}
}
