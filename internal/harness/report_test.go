package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// fakeRun builds a synthetic one-round RunResult for renderer tests.
func fakeRun(bench string, tuner TunerKind, rec, create, exec, maint float64) *RunResult {
	return &RunResult{
		Benchmark: bench,
		Tuner:     tuner,
		Rounds: []RoundResult{{
			Round:          1,
			RecommendSec:   rec,
			CreateSec:      create,
			ExecSec:        exec,
			MaintenanceSec: maint,
			NumIndexes:     1,
		}},
	}
}

// TestTunerColumnsOrdering pins the column derivation of the generalised
// renderers: columns follow first appearance, scanning benchmarks
// alphabetically and each benchmark's runs in recorded (spec) order, with
// later duplicates ignored — so arbitrary registered-policy subsets
// render in the order the sweep ran them.
func TestTunerColumnsOrdering(t *testing.T) {
	cases := []struct {
		name    string
		results map[string][]*RunResult
		want    []TunerKind
	}{
		{
			name: "seed set keeps historical order",
			results: map[string][]*RunResult{
				"ssb": {fakeRun("ssb", NoIndex, 0, 0, 1, 0), fakeRun("ssb", PDTool, 0, 0, 1, 0), fakeRun("ssb", MAB, 0, 0, 1, 0)},
			},
			want: []TunerKind{NoIndex, PDTool, MAB},
		},
		{
			name: "htap comparison set in sweep order",
			results: map[string][]*RunResult{
				"tpcds": {fakeRun("tpcds", NoIndex, 0, 0, 1, 0), fakeRun("tpcds", RandomConfig, 0, 0, 1, 0), fakeRun("tpcds", PDTool, 0, 0, 1, 0), fakeRun("tpcds", Advisor, 0, 0, 1, 0), fakeRun("tpcds", MAB, 0, 0, 1, 0)},
			},
			want: []TunerKind{NoIndex, RandomConfig, PDTool, Advisor, MAB},
		},
		{
			name: "benchmarks scanned alphabetically, duplicates ignored",
			results: map[string][]*RunResult{
				"zzz": {fakeRun("zzz", DDQN, 0, 0, 1, 0), fakeRun("zzz", MAB, 0, 0, 1, 0)},
				"aaa": {fakeRun("aaa", MAB, 0, 0, 1, 0), fakeRun("aaa", Advisor, 0, 0, 1, 0)},
			},
			want: []TunerKind{MAB, Advisor, DDQN},
		},
		{
			name: "unregistered future policy appears under its own name",
			results: map[string][]*RunResult{
				"ssb": {fakeRun("ssb", TunerKind("wfit"), 0, 0, 1, 0), fakeRun("ssb", MAB, 0, 0, 1, 0)},
			},
			want: []TunerKind{TunerKind("wfit"), MAB},
		},
	}
	for _, c := range cases {
		if got := TunerColumns(c.results); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: TunerColumns = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRenderTotalsSeedSetByteIdentical pins RenderTotals for the seed
// NoIndex/PDTool/MAB sweep to the exact pre-generalisation output (the
// renderer used to hardcode these three columns), so Figures 3, 5 and 7
// cannot drift by a byte.
func TestRenderTotalsSeedSetByteIdentical(t *testing.T) {
	results := map[string][]*RunResult{
		"ssb":  {fakeRun("ssb", NoIndex, 0, 0, 400, 0), fakeRun("ssb", PDTool, 10, 20, 300, 0), fakeRun("ssb", MAB, 1, 30, 250.25, 0)},
		"tpch": {fakeRun("tpch", NoIndex, 0, 0, 900, 0), fakeRun("tpch", PDTool, 15, 25, 700, 0), fakeRun("tpch", MAB, 2, 35, 600, 0)},
	}
	var sb strings.Builder
	RenderTotals(&sb, "Figure 3 — static totals", results)
	want := "# Figure 3 — static totals — total end-to-end workload time (sec)\n" +
		"workload         NoIndex      PDTool         MAB\n" +
		"ssb                400.0       330.0       281.2\n" +
		"tpch               900.0       740.0       637.0\n"
	if sb.String() != want {
		t.Errorf("seed-set RenderTotals diverged from the pre-generalisation bytes\n got: %q\nwant: %q", sb.String(), want)
	}
}

// TestRenderTotalsArbitrarySubset checks that a non-seed policy subset
// renders one correctly ordered, correctly labelled column per tuner.
func TestRenderTotalsArbitrarySubset(t *testing.T) {
	results := map[string][]*RunResult{
		"imdb": {
			fakeRun("imdb", RandomConfig, 0, 5, 100, 2),
			fakeRun("imdb", Advisor, 3, 4, 80, 1),
			fakeRun("imdb", TunerKind("wfit"), 1, 2, 70, 0.5),
		},
	}
	var sb strings.Builder
	RenderTotals(&sb, "subset", results)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sb.String())
	}
	if got, want := lines[1], fmt.Sprintf("%-12s%12s%12s%12s", "workload", "Random", "Advisor", "wfit"); got != want {
		t.Errorf("header = %q, want %q", got, want)
	}
	// Totals include maintenance: 107.0, 88.0, 73.5.
	if got, want := lines[2], fmt.Sprintf("%-12s%12.1f%12.1f%12.1f", "imdb", 107.0, 88.0, 73.5); got != want {
		t.Errorf("row = %q, want %q", got, want)
	}
}

// TestRenderBreakdownColumns checks the HTAP breakdown renderer: one row
// per run in run order, display names, and a maintenance column that
// feeds the total.
func TestRenderBreakdownColumns(t *testing.T) {
	runs := []*RunResult{
		fakeRun("ssb", NoIndex, 0, 0, 400, 0),
		fakeRun("ssb", RandomConfig, 0, 50, 350, 25),
		fakeRun("ssb", MAB, 2, 30, 250, 10),
	}
	var sb strings.Builder
	RenderBreakdown(&sb, "HTAP — ssb", runs)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), sb.String())
	}
	if got, want := lines[1], fmt.Sprintf("%-10s%14s%14s%14s%14s%14s",
		"method", "Recommend", "IndexCreate", "Execution", "Maintenance", "Total"); got != want {
		t.Errorf("header = %q, want %q", got, want)
	}
	if got, want := lines[3], fmt.Sprintf("%-10s%14.1f%14.1f%14.1f%14.1f%14.1f",
		"Random", 0.0, 50.0, 350.0, 25.0, 425.0); got != want {
		t.Errorf("random row = %q, want %q", got, want)
	}
}

// TestDisplayNames pins the figure labels of the registered strategies
// and the fallback for future ones.
func TestDisplayNames(t *testing.T) {
	cases := map[TunerKind]string{
		NoIndex:            "NoIndex",
		PDTool:             "PDTool",
		MAB:                "MAB",
		DDQN:               "DDQN",
		DDQNSC:             "DDQN-SC",
		Advisor:            "Advisor",
		RandomConfig:       "Random",
		TunerKind("wfit"):  "wfit",
		TunerKind("other"): "other",
	}
	for k, want := range cases {
		if got := DisplayName(k); got != want {
			t.Errorf("DisplayName(%q) = %q, want %q", k, got, want)
		}
	}
}
