package harness

import (
	"fmt"
	"os"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/mab"
	"dbabandits/internal/query"
)

// TestProbeMABTrace traces the MAB's choices round by round; enable with
// HARNESS_MAB_TRACE=<benchmark>.
func TestProbeMABTrace(t *testing.T) {
	bench := os.Getenv("HARNESS_MAB_TRACE")
	if bench == "" {
		t.Skip("set HARNESS_MAB_TRACE=<benchmark> to run")
	}
	e, err := New(Options{
		Benchmark: bench, Regime: Static, ScaleFactor: 10,
		MaxStoredRows: 5000, Rounds: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuner := mab.NewTuner(e.Schema, e.DB.DataSizeBytes(), mab.TunerOptions{MemoryBudgetBytes: e.Budget})
	var last []*query.Query
	for r := 1; r <= 12; r++ {
		rec := tuner.Recommend(last)
		per, createSec := e.CreationCost(rec.ToCreate)
		wl := e.Seq.Round(r)
		var stats []*engine.ExecStats
		var exec float64
		usedIdx := map[string]float64{}
		for _, q := range wl {
			plan, err := e.Opt.ChoosePlan(q, rec.Config)
			if err != nil {
				t.Fatal(err)
			}
			st, err := engine.Execute(e.DB, plan, e.CM)
			if err != nil {
				t.Fatal(err)
			}
			for id, acc := range st.IndexAccessSec {
				usedIdx[id] += st.TableScanSec[acc.Table] - acc.Sec
			}
			stats = append(stats, st)
			exec += st.TotalSec
		}
		tuner.ObserveExecution(stats, per)
		last = wl
		fmt.Printf("r%02d arms=%4d cfg=%2d create=%7.1f exec=%7.1f used=%d\n",
			r, rec.NumArms, rec.Config.Len(), createSec, exec, len(usedIdx))
		if r == 12 || r == 6 {
			for _, id := range rec.Config.IDs() {
				fmt.Printf("    cfg: %-90s gain=%8.1f\n", id, usedIdx[id])
			}
		}
	}
}
