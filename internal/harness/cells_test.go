package harness

import (
	"reflect"
	"strings"
	"testing"
)

// sweepSpecs builds a small static sweep: two benchmarks × three
// tuners, shrunk for test speed.
func sweepSpecs(t *testing.T) []CellSpec {
	t.Helper()
	var specs []CellSpec
	for _, bench := range []string{"ssb", "tpch"} {
		for _, kind := range []TunerKind{NoIndex, PDTool, MAB} {
			specs = append(specs, CellSpec{
				Options: Options{
					Benchmark:     bench,
					Regime:        Static,
					Rounds:        3,
					ScaleFactor:   10,
					MaxStoredRows: 600,
					Seed:          1,
				},
				Tuner: kind,
			})
		}
	}
	return specs
}

// TestRunCellsDeterministic asserts the headline contract: the same
// specs produce identical RunResults (full per-round breakdowns, hence
// identical totals) at every parallelism level.
func TestRunCellsDeterministic(t *testing.T) {
	reference := RunCells(sweepSpecs(t), RunCellsOptions{Parallel: 1})
	if errs := CellErrs(reference); len(errs) > 0 {
		t.Fatalf("reference sweep failed: %v", errs)
	}
	for _, parallel := range []int{2, 8} {
		got := RunCells(sweepSpecs(t), RunCellsOptions{Parallel: parallel})
		if len(got) != len(reference) {
			t.Fatalf("Parallel=%d: %d results, want %d", parallel, len(got), len(reference))
		}
		for i := range reference {
			if got[i].Err != nil {
				t.Errorf("Parallel=%d: cell %s failed: %v", parallel, got[i].Spec.Key(), got[i].Err)
				continue
			}
			if got[i].Spec.Key() != reference[i].Spec.Key() {
				t.Errorf("Parallel=%d: cell %d is %s, want %s (order not preserved)",
					parallel, i, got[i].Spec.Key(), reference[i].Spec.Key())
			}
			if !reflect.DeepEqual(got[i].Res, reference[i].Res) {
				gr, gc, ge, gt := got[i].Res.Totals()
				rr, rc, re, rt := reference[i].Res.Totals()
				t.Errorf("Parallel=%d: cell %s diverged: totals (%g %g %g %g), want (%g %g %g %g)",
					parallel, got[i].Spec.Key(), gr, gc, ge, gt, rr, rc, re, rt)
			}
		}
	}
}

// TestRunCellsErrorIsolation asserts that one broken cell reports its
// error without aborting sibling cells.
func TestRunCellsErrorIsolation(t *testing.T) {
	specs := []CellSpec{
		{Options: Options{Benchmark: "ssb", Regime: Static, Rounds: 2,
			MaxStoredRows: 400, Seed: 1}, Tuner: NoIndex},
		{Options: Options{Benchmark: "no-such-benchmark", Regime: Static, Rounds: 2,
			MaxStoredRows: 400, Seed: 1}, Tuner: MAB},
		{Options: Options{Benchmark: "ssb", Regime: Static, Rounds: 2,
			MaxStoredRows: 400, Seed: 1}, Tuner: MAB},
	}
	results := RunCells(specs, RunCellsOptions{Parallel: 3})
	if results[0].Err != nil || results[0].Res == nil {
		t.Errorf("cell 0: %v, want success", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("cell 1: want error for unknown benchmark")
	} else if !strings.Contains(results[1].Err.Error(), "no-such-benchmark") {
		t.Errorf("cell 1 err = %v, want it to name the bad benchmark", results[1].Err)
	}
	if results[2].Err != nil || results[2].Res == nil {
		t.Errorf("cell 2: %v, want success (sibling must survive)", results[2].Err)
	}
	if errs := CellErrs(results); len(errs) != 1 {
		t.Errorf("CellErrs = %v, want exactly 1", errs)
	}
}

// TestRunCellsProgress checks that the progress writer sees one line per
// cell, labelled by cell key.
func TestRunCellsProgress(t *testing.T) {
	var buf strings.Builder
	specs := sweepSpecs(t)[:2]
	RunCells(specs, RunCellsOptions{Parallel: 2, Progress: &buf})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(specs) {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), len(specs), buf.String())
	}
	for _, spec := range specs {
		if !strings.Contains(buf.String(), spec.Key()) {
			t.Errorf("progress output missing cell %s:\n%s", spec.Key(), buf.String())
		}
	}
}

// TestCellSeedDerivation pins the seeding contract: the base seed is
// untouched (tuners must share data), DDQN reps split deterministically,
// and an explicit DDQNSeed wins over derivation.
func TestCellSeedDerivation(t *testing.T) {
	base := CellSpec{
		Options: Options{Benchmark: "tpch", Regime: Static, Seed: 7},
		Tuner:   DDQN,
	}

	d0 := base.withDerivedSeeds()
	if d0.Seed != 7 {
		t.Errorf("base seed changed to %d, want 7", d0.Seed)
	}
	if d0.DDQNSeed == 0 {
		t.Error("DDQN cell did not derive a DDQNSeed")
	}
	if again := base.withDerivedSeeds(); again.DDQNSeed != d0.DDQNSeed {
		t.Errorf("derivation unstable: %d vs %d", again.DDQNSeed, d0.DDQNSeed)
	}

	rep1 := base
	rep1.Rep = 1
	if d1 := rep1.withDerivedSeeds(); d1.DDQNSeed == d0.DDQNSeed {
		t.Error("distinct reps derived the same DDQNSeed")
	}

	explicit := base
	explicit.DDQNSeed = 99
	if de := explicit.withDerivedSeeds(); de.DDQNSeed != 99 {
		t.Errorf("explicit DDQNSeed overridden to %d, want 99", de.DDQNSeed)
	}

	mab := base
	mab.Tuner = MAB
	if dm := mab.withDerivedSeeds(); dm.DDQNSeed != 0 {
		t.Errorf("deterministic tuner derived DDQNSeed %d, want 0", dm.DDQNSeed)
	}
}
