package harness

import (
	"strings"
	"testing"
)

// smallExperiment builds a fast SSB experiment for integration tests.
func smallExperiment(t *testing.T, regime Regime, rounds int) *Experiment {
	t.Helper()
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        regime,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        rounds,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExperimentAllTunersRun(t *testing.T) {
	e := smallExperiment(t, Static, 5)
	for _, kind := range []TunerKind{NoIndex, PDTool, MAB, DDQN, DDQNSC} {
		res, err := e.Run(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Rounds) != 5 {
			t.Fatalf("%s: %d rounds", kind, len(res.Rounds))
		}
		_, _, exec, total := res.Totals()
		if exec <= 0 || total < exec {
			t.Fatalf("%s: exec=%v total=%v", kind, exec, total)
		}
	}
}

func TestNoIndexHasNoOverheads(t *testing.T) {
	e := smallExperiment(t, Static, 3)
	res, err := e.Run(NoIndex)
	if err != nil {
		t.Fatal(err)
	}
	rec, create, _, _ := res.Totals()
	if rec != 0 || create != 0 {
		t.Fatalf("NoIndex overheads: rec=%v create=%v", rec, create)
	}
	for _, r := range res.Rounds {
		if r.NumIndexes != 0 {
			t.Fatal("NoIndex created indexes")
		}
	}
}

func TestPDToolInvokedOnSchedule(t *testing.T) {
	e := smallExperiment(t, Static, 6)
	res, err := e.Run(PDTool)
	if err != nil {
		t.Fatal(err)
	}
	// Static: a single invocation in round 2.
	for _, r := range res.Rounds {
		if r.Round == 2 {
			if r.RecommendSec == 0 {
				t.Fatal("PDTool not invoked in round 2")
			}
		} else if r.RecommendSec != 0 {
			t.Fatalf("PDTool invoked in round %d", r.Round)
		}
	}

	er := smallExperiment(t, Random, 12)
	resR, err := er.Run(PDTool)
	if err != nil {
		t.Fatal(err)
	}
	var invoked []int
	for _, r := range resR.Rounds {
		if r.RecommendSec > 0 {
			invoked = append(invoked, r.Round)
		}
	}
	want := []int{5, 9}
	if len(invoked) != len(want) {
		t.Fatalf("random invocations = %v, want %v", invoked, want)
	}
	for i := range want {
		if invoked[i] != want[i] {
			t.Fatalf("random invocations = %v, want %v", invoked, want)
		}
	}
}

func TestMABConvergesOnStaticSSB(t *testing.T) {
	e := smallExperiment(t, Static, 10)
	noIdx, err := e.Run(NoIndex)
	if err != nil {
		t.Fatal(err)
	}
	mabRes, err := e.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	// SSB has "easily achievable high index benefits": by the final round
	// the MAB's execution time must be measurably below NoIndex and below
	// its own cold first round.
	if mabRes.FinalRoundExecSec() >= 0.9*noIdx.FinalRoundExecSec() {
		t.Fatalf("MAB final round %v vs NoIndex %v: no convergence",
			mabRes.FinalRoundExecSec(), noIdx.FinalRoundExecSec())
	}
	if mabRes.FinalRoundExecSec() >= mabRes.Rounds[0].ExecSec {
		t.Fatalf("MAB final round %v not better than its first round %v",
			mabRes.FinalRoundExecSec(), mabRes.Rounds[0].ExecSec)
	}
}

func TestShiftingRegimeRuns(t *testing.T) {
	e := smallExperiment(t, Shifting, 8) // 4 groups x 2 rounds
	res, err := e.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 8 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	pd, err := e.Run(PDTool)
	if err != nil {
		t.Fatal(err)
	}
	var invoked []int
	for _, r := range pd.Rounds {
		if r.RecommendSec > 0 {
			invoked = append(invoked, r.Round)
		}
	}
	// 4 groups, invoked on each group's second round: 2, 4, 6, 8.
	if len(invoked) != 4 {
		t.Fatalf("shifting invocations = %v", invoked)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	e := smallExperiment(t, Static, 4)
	var runs []*RunResult
	for _, kind := range []TunerKind{NoIndex, PDTool, MAB} {
		r, err := e.Run(kind)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	var sb strings.Builder
	RenderConvergence(&sb, "ssb static", runs)
	if !strings.Contains(sb.String(), "round") || !strings.Contains(sb.String(), "mab") {
		t.Fatalf("convergence output missing columns:\n%s", sb.String())
	}
	sb.Reset()
	RenderTotals(&sb, "static totals", map[string][]*RunResult{"ssb": runs})
	if !strings.Contains(sb.String(), "ssb") {
		t.Fatalf("totals output wrong:\n%s", sb.String())
	}
	sb.Reset()
	RenderTable1(&sb, map[Regime]map[string][]*RunResult{Static: {"ssb": runs}})
	if !strings.Contains(sb.String(), "Table I") {
		t.Fatal("table 1 missing header")
	}
	sb.Reset()
	RenderTable2(&sb, []Table2Row{{Benchmark: "tpch", SF: 10, PDToolMin: 1, MABMin: 2}})
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatal("table 2 missing header")
	}
	csv := SeriesCSV(runs)
	if !strings.HasPrefix(csv, "round,noindex,pdtool,mab") {
		t.Fatalf("csv header wrong: %q", csv[:40])
	}
}

func TestSummariseRunsQuartiles(t *testing.T) {
	e := smallExperiment(t, Static, 3)
	var runs []*RunResult
	for seed := int64(0); seed < 3; seed++ {
		e.Opts.DDQNSeed = seed
		r, err := e.Run(DDQN)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	st := SummariseRuns(DDQN, runs)
	if len(st.MedianRounds) != 3 || len(st.Totals) != 3 {
		t.Fatalf("summary shape wrong: %+v", st)
	}
	for i := range st.MedianRounds {
		if st.Q1Rounds[i] > st.MedianRounds[i] || st.MedianRounds[i] > st.Q3Rounds[i] {
			t.Fatalf("quartiles out of order at %d", i)
		}
	}
	var sb strings.Builder
	RenderFig8(&sb, "tpch rl", []Fig8Stats{st})
	if !strings.Contains(sb.String(), "ddqn") {
		t.Fatal("fig8 output missing method")
	}
}

func TestSpeedupFormat(t *testing.T) {
	if got := Speedup(100, 25); got != "75%" {
		t.Fatalf("speedup = %q", got)
	}
	if got := Speedup(0, 5); got != "n/a" {
		t.Fatalf("speedup = %q", got)
	}
}

func TestUnknownBenchmarkAndRegime(t *testing.T) {
	if _, err := New(Options{Benchmark: "nope", Regime: Static}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := New(Options{Benchmark: "ssb", Regime: "weird"}); err == nil {
		t.Fatal("unknown regime accepted")
	}
	e := smallExperiment(t, Static, 2)
	if _, err := e.Run(TunerKind("alien")); err == nil {
		t.Fatal("unknown tuner accepted")
	}
}
