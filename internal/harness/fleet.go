package harness

import (
	"fmt"
	"io"

	"dbabandits/internal/fleet"
)

// RenderFleet prints a fleet run: one row per tenant (totals, whole-run
// regret against the tenant's own noindex baseline, and — for admitted
// tenants — the transfer donor, schema similarity, and the early-round
// transfer benefit over the cold-start control), followed by the
// fleet-level p50/p95/p99 block over every tenant-round. earlyK is the
// early-round window the transfer benefit is summed over (<= 0 means
// 5, matching the fleet transfer tests). Output is deterministic: spec
// order, fixed formats.
func RenderFleet(w io.Writer, title string, res *fleet.Result, earlyK int) {
	if earlyK <= 0 {
		earlyK = 5
	}
	admitted := 0
	for i := range res.Tenants {
		if res.Tenants[i].Spec.Admitted {
			admitted++
		}
	}
	fmt.Fprintf(w, "# %s — fleet of %d tenants (%d admitted)\n", title, len(res.Tenants), admitted)
	fmt.Fprintf(w, "%-26s%-11s%-10s%5s%7s%12s%12s  %-26s%6s%10s\n",
		"tenant", "bench", "regime", "sf", "rounds", "total", "regret", "donor", "sim", "benefit")
	for i := range res.Tenants {
		tr := &res.Tenants[i]
		s := tr.Spec
		sf := s.ScaleFactor
		if sf <= 0 {
			sf = 10
		}
		if tr.Err != nil {
			fmt.Fprintf(w, "%-26s%-11s%-10s%5g  ERROR %v\n", s.ID, s.Benchmark, s.Regime, sf, tr.Err)
			continue
		}
		_, _, _, total := tr.Run.Totals()
		regret := tr.EarlyRoundRegret(len(tr.Run.Rounds))
		donor, sim, benefit := "-", "-", "-"
		if tr.Donor != "" {
			donor = tr.Donor
			sim = fmt.Sprintf("%.2f", tr.Similarity)
			benefit = fmt.Sprintf("%.2f", tr.TransferBenefit(earlyK))
		}
		fmt.Fprintf(w, "%-26s%-11s%-10s%5g%7d%12.2f%12.2f  %-26s%6s%10s\n",
			s.ID, s.Benchmark, s.Regime, sf, len(tr.Run.Rounds), total, regret, donor, sim, benefit)
	}
	fmt.Fprintf(w, "\n# fleet percentiles — per tenant-round (sec)\n")
	fmt.Fprintf(w, "%-14s%10s%10s%10s\n", "metric", "p50", "p95", "p99")
	renderPct := func(name string, p fleet.Percentiles) {
		fmt.Fprintf(w, "%-14s%10.3f%10.3f%10.3f\n", name, p.P50, p.P95, p.P99)
	}
	renderPct("round cost", res.RoundCost())
	renderPct("maintenance", res.Maintenance())
	renderPct("regret", res.Regret())
}
