// Package harness is the experiment-facing layer over the policy/env
// split: internal/policy defines pluggable tuning strategies and their
// registry, internal/env prepares the simulation environment and drives
// every strategy through the single generic round loop
// (Environment.RunPolicy). This package re-exports those building blocks
// under their historical names and adds what only experiments need —
// parallel sweep cells (RunCells) and the figure/table renderers.
//
// There is exactly one round-loop driver in the system: env.RunPolicy.
// Adding a tuning strategy means registering a policy.Factory; no code
// in this package changes.
package harness

import (
	"dbabandits/internal/env"
)

// TunerKind names a tuning strategy (a policy-registry name).
type TunerKind = env.TunerKind

// The four strategies of the evaluation (plus the single-column DDQN
// variant of Figure 8, the online what-if advisor, and the
// random-configuration sanity control).
const (
	NoIndex      = env.NoIndex
	PDTool       = env.PDTool
	MAB          = env.MAB
	DDQN         = env.DDQN
	DDQNSC       = env.DDQNSC
	Advisor      = env.Advisor
	RandomConfig = env.RandomConfig
)

// Regime names a workload regime.
type Regime = env.Regime

// The three regimes of Section V-A, plus the HTAP regime of the journal
// follow-up (update-heavy rounds, maintenance-cost rewards).
const (
	Static   = env.Static
	Shifting = env.Shifting
	Random   = env.Random
	HTAP     = env.HTAP
)

// Options configure one experiment.
type Options = env.Options

// Experiment is a prepared benchmark environment that can run any
// registered tuning policy over the same data and workload sequence.
type Experiment = env.Environment

// RoundResult is one round's breakdown.
type RoundResult = env.RoundResult

// RunResult aggregates an experiment run.
type RunResult = env.RunResult

// New prepares an experiment.
func New(opts Options) (*Experiment, error) { return env.New(opts) }
