// Package harness drives the paper's experiments end to end: it wires a
// benchmark database, the optimiser and executor, and one of the four
// tuning strategies (NoIndex, PDTool, MAB, DDQN) through the round loop
// of Section II, recording the per-round recommendation / index creation
// / execution breakdown that every figure and table reports.
package harness

import (
	"fmt"

	"dbabandits/internal/catalog"
	"dbabandits/internal/datagen"
	"dbabandits/internal/ddqn"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/pdtool"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
	"dbabandits/internal/workload"
)

// TunerKind names a tuning strategy.
type TunerKind string

// The four strategies of the evaluation (plus the single-column DDQN
// variant of Figure 8).
const (
	NoIndex TunerKind = "noindex"
	PDTool  TunerKind = "pdtool"
	MAB     TunerKind = "mab"
	DDQN    TunerKind = "ddqn"
	DDQNSC  TunerKind = "ddqn-sc"
)

// Regime names a workload regime.
type Regime string

// The three regimes of Section V-A.
const (
	Static   Regime = "static"
	Shifting Regime = "shifting"
	Random   Regime = "random"
)

// Options configure one experiment.
type Options struct {
	Benchmark string
	Regime    Regime
	// ScaleFactor defaults to 10 (the paper's default); Table II uses 1
	// and 100.
	ScaleFactor float64
	// MaxStoredRows caps physical rows (default 5000 — small enough for
	// fast experiment turnaround, large enough for stable selectivities).
	MaxStoredRows int
	// Rounds overrides the regime default (25 static/random, 80 shifting).
	Rounds int
	// Seed drives data generation and workload sequencing.
	Seed int64
	// MemoryBudgetX is the index budget as a multiple of the data size
	// (default 1.0, the paper's setting).
	MemoryBudgetX float64
	// PDToolTimeLimitSec caps a single PDTool invocation (the paper caps
	// TPC-DS dynamic random at 1 hour). 0 = unlimited.
	PDToolTimeLimitSec float64
	// MABOptions tweaks the bandit (ablations).
	MABOptions mab.TunerOptions
	// MABWarmStartRounds pre-trains the bandit with what-if estimated
	// rewards over the first round's workload before the real loop (the
	// cold-start mitigation of Section VII). 0 disables.
	MABWarmStartRounds int
	// DDQNSeed seeds the agent separately (Figure 8 repeats runs).
	DDQNSeed int64
}

// Experiment is a prepared benchmark environment that can run any tuner
// over the same data and workload sequence.
type Experiment struct {
	Opts   Options
	Bench  *workload.Benchmark
	Schema *catalog.Schema
	DB     *storage.Database
	CM     *engine.CostModel
	Opt    *optimizer.Optimizer
	Seq    workload.Sequencer
	Budget int64
}

// New prepares an experiment.
func New(opts Options) (*Experiment, error) {
	bench, err := workload.ByName(opts.Benchmark)
	if err != nil {
		return nil, err
	}
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 10
	}
	if opts.MaxStoredRows <= 0 {
		opts.MaxStoredRows = 5000
	}
	if opts.MemoryBudgetX <= 0 {
		opts.MemoryBudgetX = 1
	}
	schema := bench.NewSchema()
	db, err := datagen.Build(schema, datagen.Options{
		Seed:          opts.Seed,
		ScaleFactor:   opts.ScaleFactor,
		MaxStoredRows: opts.MaxStoredRows,
	})
	if err != nil {
		return nil, err
	}
	cm := engine.DefaultCostModel()
	e := &Experiment{
		Opts:   opts,
		Bench:  bench,
		Schema: schema,
		DB:     db,
		CM:     cm,
		Opt:    optimizer.New(schema, cm),
		Budget: int64(float64(db.DataSizeBytes()) * opts.MemoryBudgetX),
	}
	switch opts.Regime {
	case Static:
		e.Seq = workload.NewStatic(bench, db, opts.Seed, opts.Rounds)
	case Shifting:
		rpg := 20
		if opts.Rounds > 0 {
			rpg = opts.Rounds / 4
		}
		e.Seq = workload.NewShifting(bench, db, opts.Seed, 4, rpg)
	case Random:
		e.Seq = workload.NewRandom(bench, db, opts.Seed, opts.Rounds, 0)
	default:
		return nil, fmt.Errorf("harness: unknown regime %q", opts.Regime)
	}
	return e, nil
}

// RoundResult is one round's breakdown.
type RoundResult struct {
	Round        int
	RecommendSec float64
	CreateSec    float64
	ExecSec      float64
	NumIndexes   int
}

// TotalSec is the round's end-to-end time.
func (r RoundResult) TotalSec() float64 { return r.RecommendSec + r.CreateSec + r.ExecSec }

// RunResult aggregates an experiment run.
type RunResult struct {
	Benchmark string
	Regime    Regime
	Tuner     TunerKind
	Rounds    []RoundResult
}

// Totals returns the summed breakdown.
func (r *RunResult) Totals() (rec, create, exec, total float64) {
	for _, rr := range r.Rounds {
		rec += rr.RecommendSec
		create += rr.CreateSec
		exec += rr.ExecSec
	}
	return rec, create, exec, rec + create + exec
}

// FinalRoundExecSec returns the last round's execution time (the paper's
// "best search strategy" comparison).
func (r *RunResult) FinalRoundExecSec() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].ExecSec
}

// Run executes the experiment with the given tuner.
func (e *Experiment) Run(kind TunerKind) (*RunResult, error) {
	switch kind {
	case NoIndex:
		return e.runNoIndex()
	case PDTool:
		return e.runPDTool()
	case MAB:
		return e.runMAB()
	case DDQN:
		return e.runDDQN(false)
	case DDQNSC:
		return e.runDDQN(true)
	default:
		return nil, fmt.Errorf("harness: unknown tuner %q", kind)
	}
}

// executeWorkload runs one round's queries under the configuration and
// returns the summed execution time plus the per-query stats.
func (e *Experiment) executeWorkload(queries []*query.Query, cfg *index.Config) (float64, []*engine.ExecStats, error) {
	var total float64
	stats := make([]*engine.ExecStats, 0, len(queries))
	for _, q := range queries {
		plan, err := e.Opt.ChoosePlan(q, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("planning template %d: %w", q.TemplateID, err)
		}
		st, err := engine.Execute(e.DB, plan, e.CM)
		if err != nil {
			return 0, nil, fmt.Errorf("executing template %d: %w", q.TemplateID, err)
		}
		total += st.TotalSec
		stats = append(stats, st)
	}
	return total, stats, nil
}

// creationCost prices materialising the given indexes and returns the
// per-index seconds plus the sum.
func (e *Experiment) creationCost(toCreate []*index.Index) (map[string]float64, float64) {
	per := make(map[string]float64, len(toCreate))
	var total float64
	for _, ix := range toCreate {
		meta, ok := e.Schema.Table(ix.Table)
		if !ok {
			continue
		}
		sec := e.CM.IndexBuildSec(meta, ix.SizeBytes(meta))
		per[ix.ID()] = sec
		total += sec
	}
	return per, total
}

func (e *Experiment) runNoIndex() (*RunResult, error) {
	res := &RunResult{Benchmark: e.Opts.Benchmark, Regime: e.Opts.Regime, Tuner: NoIndex}
	empty := index.NewConfig()
	for r := 1; r <= e.Seq.Rounds(); r++ {
		exec, _, err := e.executeWorkload(e.Seq.Round(r), empty)
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, RoundResult{Round: r, ExecSec: exec})
	}
	return res, nil
}

func (e *Experiment) runMAB() (*RunResult, error) {
	res := &RunResult{Benchmark: e.Opts.Benchmark, Regime: e.Opts.Regime, Tuner: MAB}
	opts := e.Opts.MABOptions
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = e.Budget
	}
	tuner := mab.NewTuner(e.Schema, e.DB.DataSizeBytes(), opts)
	if e.Opts.MABWarmStartRounds > 0 {
		training := e.Seq.Round(1)
		empty := index.NewConfig()
		tuner.WarmStart(training, func(a *mab.Arm) float64 {
			var gain float64
			trial := index.NewConfig()
			trial.Add(a.Index)
			for _, q := range training {
				if !q.ReferencesTable(a.Table) {
					continue
				}
				base, err1 := e.Opt.WhatIfCost(q, empty)
				with, err2 := e.Opt.WhatIfCost(q, trial)
				if err1 != nil || err2 != nil {
					continue
				}
				gain += base - with
			}
			if gain < 0 {
				// Feed only non-negative estimated gains: a pessimistic
				// prior would permanently suppress exploration of those
				// arms (see mab warm-start tests).
				gain = 0
			}
			return gain
		}, e.Opts.MABWarmStartRounds)
	}
	var lastWorkload []*query.Query
	for r := 1; r <= e.Seq.Rounds(); r++ {
		rec := tuner.Recommend(lastWorkload)
		perCreate, createSec := e.creationCost(rec.ToCreate)
		wl := e.Seq.Round(r)
		exec, stats, err := e.executeWorkload(wl, rec.Config)
		if err != nil {
			return nil, err
		}
		tuner.ObserveExecution(stats, perCreate)
		lastWorkload = wl
		res.Rounds = append(res.Rounds, RoundResult{
			Round: r, RecommendSec: rec.RecommendSec, CreateSec: createSec,
			ExecSec: exec, NumIndexes: rec.Config.Len(),
		})
	}
	return res, nil
}

// pdtoolInvocationRounds returns the rounds at which the PDTool is
// retrained, per the paper: static — round 2 (after observing round 1);
// shifting — the round after each group's first round (2, 22, 42, 62);
// random — every 4 rounds (5, 9, 13, ...), trained on the trailing
// window.
func (e *Experiment) pdtoolInvocationRounds() map[int]bool {
	out := map[int]bool{}
	switch e.Opts.Regime {
	case Static:
		out[2] = true
	case Shifting:
		total := e.Seq.Rounds()
		perGroup := total / 4
		for g := 0; g < 4; g++ {
			out[g*perGroup+2] = true
		}
	case Random:
		for r := 5; r <= e.Seq.Rounds(); r += 4 {
			out[r] = true
		}
	}
	return out
}

func (e *Experiment) runPDTool() (*RunResult, error) {
	res := &RunResult{Benchmark: e.Opts.Benchmark, Regime: e.Opts.Regime, Tuner: PDTool}
	advisor := pdtool.New(e.Schema, e.Opt, pdtool.Options{
		MemoryBudgetBytes: e.Budget,
		TimeLimitSec:      e.Opts.PDToolTimeLimitSec,
	})
	invocations := e.pdtoolInvocationRounds()
	cfg := index.NewConfig()
	var history []*query.Query
	trainWindow := 4 // trailing rounds used as training in the random regime

	var windows [][]*query.Query
	for r := 1; r <= e.Seq.Rounds(); r++ {
		wl := e.Seq.Round(r)
		rr := RoundResult{Round: r}
		if invocations[r] {
			var training []*query.Query
			if e.Opts.Regime == Random {
				start := len(windows) - trainWindow
				if start < 0 {
					start = 0
				}
				for _, w := range windows[start:] {
					training = append(training, w...)
				}
			} else {
				// Static and shifting: the previous round's queries are
				// representative of what's to come (the paper's
				// PDTool-favourable assumption).
				training = history
			}
			rec := advisor.Recommend(training)
			rr.RecommendSec = rec.RecommendSec
			toCreate := rec.Config.Diff(cfg)
			_, createSec := e.creationCost(toCreate)
			rr.CreateSec = createSec
			cfg = rec.Config
		}
		exec, _, err := e.executeWorkload(wl, cfg)
		if err != nil {
			return nil, err
		}
		rr.ExecSec = exec
		rr.NumIndexes = cfg.Len()
		res.Rounds = append(res.Rounds, rr)
		history = wl
		windows = append(windows, wl)
	}
	return res, nil
}

func (e *Experiment) runDDQN(singleColumn bool) (*RunResult, error) {
	kind := DDQN
	if singleColumn {
		kind = DDQNSC
	}
	res := &RunResult{Benchmark: e.Opts.Benchmark, Regime: e.Opts.Regime, Tuner: kind}

	ctxb := mab.NewContextBuilder(e.Schema)
	gen := mab.NewArmGenerator(e.Schema, mab.ArmGenOptions{})
	store := mab.NewQueryStore()
	agent := ddqn.NewAgent(ctxb.Dim(), ddqn.AgentOptions{
		Seed:         e.Opts.DDQNSeed,
		SingleColumn: singleColumn,
	})

	cfg := index.NewConfig()
	usage := map[string]float64{}
	var lastWorkload []*query.Query
	var pendingCtxs []linalg.Vector
	var pendingRewards []float64

	for r := 1; r <= e.Seq.Rounds(); r++ {
		if len(lastWorkload) > 0 {
			store.Observe(r-1, lastWorkload)
		}
		qois := store.QoI(r - 1)
		arms := gen.Generate(qois)
		predCols := mab.PredicateColumnSet(qois)
		contexts := make([]linalg.Vector, len(arms))
		for i, a := range arms {
			contexts[i] = ctxb.Build(a, mab.ArmInfo{
				PredicateColumns: predCols,
				Materialised:     cfg.Has(a.ID()),
				Usage:            usage[a.ID()],
				DatabaseBytes:    e.DB.DataSizeBytes(),
			})
		}

		// Deliver the previous round's feedback with this round's
		// candidates as the bootstrap set.
		if pendingCtxs != nil {
			agent.Observe(pendingCtxs, pendingRewards, contexts)
		}

		selected := agent.SelectConfig(arms, contexts, e.Budget)
		next := index.NewConfig()
		for _, a := range selected {
			next.Add(a.Index)
		}
		toCreate := next.Diff(cfg)
		perCreate, createSec := e.creationCost(toCreate)
		createdIDs := map[string]bool{}
		for _, ix := range toCreate {
			createdIDs[ix.ID()] = true
		}
		cfg = next

		wl := e.Seq.Round(r)
		exec, stats, err := e.executeWorkload(wl, cfg)
		if err != nil {
			return nil, err
		}

		gains, used := mab.GainsFromStats(stats)
		pendingCtxs = nil
		pendingRewards = nil
		selCtxIdx := map[string]linalg.Vector{}
		for i, a := range arms {
			selCtxIdx[a.ID()] = contexts[i]
		}
		for _, a := range selected {
			rwd := gains[a.ID()]
			if createdIDs[a.ID()] {
				rwd -= perCreate[a.ID()]
			}
			pendingCtxs = append(pendingCtxs, selCtxIdx[a.ID()])
			pendingRewards = append(pendingRewards, rwd)
		}
		for id := range usage {
			usage[id] *= 0.6
		}
		for id := range used {
			usage[id]++
		}
		lastWorkload = wl

		res.Rounds = append(res.Rounds, RoundResult{
			Round:        r,
			RecommendSec: 0.0012 * float64(len(arms)),
			CreateSec:    createSec,
			ExecSec:      exec,
			NumIndexes:   cfg.Len(),
		})
	}
	return res, nil
}
