package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderConvergence prints the per-round total-time series of several
// tuners side by side — the data behind the paper's convergence plots
// (Figures 2, 4, 6). Output is aligned columns, one row per round.
func RenderConvergence(w io.Writer, title string, runs []*RunResult) {
	fmt.Fprintf(w, "# %s — total time per round (sec)\n", title)
	fmt.Fprintf(w, "%-6s", "round")
	for _, r := range runs {
		fmt.Fprintf(w, "%12s", r.Tuner)
	}
	fmt.Fprintln(w)
	if len(runs) == 0 {
		return
	}
	n := len(runs[0].Rounds)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-6d", i+1)
		for _, r := range runs {
			if i < len(r.Rounds) {
				fmt.Fprintf(w, "%12.2f", r.Rounds[i].TotalSec())
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// displayNames maps registry names to the figure labels of the paper.
// Unlisted policies fall back to their registry name, so a newly
// registered baseline appears in every figure without renderer edits.
var displayNames = map[TunerKind]string{
	NoIndex:      "NoIndex",
	PDTool:       "PDTool",
	MAB:          "MAB",
	DDQN:         "DDQN",
	DDQNSC:       "DDQN-SC",
	Advisor:      "Advisor",
	RandomConfig: "Random",
}

// DisplayName returns the figure label of a tuning strategy.
func DisplayName(k TunerKind) string {
	if n, ok := displayNames[k]; ok {
		return n
	}
	return string(k)
}

// TunerColumns derives the figure column order from a result set: the
// tuners in first-appearance order, scanning benchmarks alphabetically
// and each benchmark's runs in their recorded order. Renderers therefore
// follow whatever registered-policy subset a sweep ran — the seed
// NoIndex/PDTool/MAB sweeps keep their historical column order, and new
// baselines appear with zero renderer edits.
func TunerColumns(results map[string][]*RunResult) []TunerKind {
	var names []string
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var order []TunerKind
	seen := map[TunerKind]bool{}
	for _, name := range names {
		for _, r := range results[name] {
			if !seen[r.Tuner] {
				seen[r.Tuner] = true
				order = append(order, r.Tuner)
			}
		}
	}
	return order
}

// RenderTotals prints total end-to-end workload times per benchmark and
// tuner — the data behind the total-time bar charts (Figures 3, 5, 7).
// Columns are derived from the runs present (see TunerColumns), one per
// tuner that ran.
func RenderTotals(w io.Writer, title string, results map[string][]*RunResult) {
	fmt.Fprintf(w, "# %s — total end-to-end workload time (sec)\n", title)
	cols := TunerColumns(results)
	fmt.Fprintf(w, "%-12s", "workload")
	for _, k := range cols {
		fmt.Fprintf(w, "%12s", DisplayName(k))
	}
	fmt.Fprintln(w)
	var names []string
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		byTuner := map[TunerKind]float64{}
		for _, r := range results[name] {
			_, _, _, total := r.Totals()
			byTuner[r.Tuner] = total
		}
		fmt.Fprintf(w, "%-12s", name)
		for _, k := range cols {
			fmt.Fprintf(w, "%12.1f", byTuner[k])
		}
		fmt.Fprintln(w)
	}
}

// RenderBreakdown prints the recommendation / creation / execution /
// maintenance / total breakdown of one benchmark's runs, one row per
// tuner in run order — the HTAP comparison table. Like RenderTotals it
// is generic over whatever registered policies the sweep ran.
func RenderBreakdown(w io.Writer, title string, runs []*RunResult) {
	fmt.Fprintf(w, "# %s — time breakdown (sec)\n", title)
	fmt.Fprintf(w, "%-10s%14s%14s%14s%14s%14s\n",
		"method", "Recommend", "IndexCreate", "Execution", "Maintenance", "Total")
	for _, r := range runs {
		rec, create, exec, total := r.Totals()
		fmt.Fprintf(w, "%-10s%14.1f%14.1f%14.1f%14.1f%14.1f\n",
			DisplayName(r.Tuner), rec, create, exec, r.MaintenanceTotal(), total)
	}
}

// RenderTable1 prints the recommendation / creation / execution / total
// breakdown in minutes for every benchmark x regime combination — the
// paper's Table I. Bold markers are replaced by an asterisk on the better
// entry of each PDTool/MAB pair.
func RenderTable1(w io.Writer, results map[Regime]map[string][]*RunResult) {
	fmt.Fprintln(w, "# Table I — total time breakdown (min); * marks the better of each pair")
	fmt.Fprintf(w, "%-10s%-12s%16s%16s%16s%16s\n",
		"regime", "workload", "Recommendation", "Creation", "Execution", "Total")
	for _, regime := range []Regime{Static, Shifting, Random} {
		benches := results[regime]
		var names []string
		for n := range benches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			var pd, mab *RunResult
			for _, r := range benches[name] {
				switch r.Tuner {
				case PDTool:
					pd = r
				case MAB:
					mab = r
				}
			}
			if pd == nil || mab == nil {
				continue
			}
			pr, pc, pe, pt := pd.Totals()
			mr, mc, me, mt := mab.Totals()
			fmt.Fprintf(w, "%-10s%-12s%16s%16s%16s%16s\n",
				regime, name,
				pairMin(pr, mr), pairMin(pc, mc), pairMin(pe, me), pairMin(pt, mt))
		}
	}
	fmt.Fprintln(w, "(each cell: PDTool / MAB)")
}

// pairMin formats a PDTool/MAB minute pair, starring the smaller.
func pairMin(pd, mab float64) string {
	pdM, mabM := pd/60, mab/60
	l, r := fmt.Sprintf("%.2f", pdM), fmt.Sprintf("%.2f", mabM)
	if pdM <= mabM {
		l = l + "*"
	} else {
		r = r + "*"
	}
	return l + "/" + r
}

// RenderTable2 prints the static TPC-H / TPC-H Skew scale-factor sweep —
// the paper's Table II (minutes).
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "# Table II — static workloads under different database sizes (min)")
	fmt.Fprintf(w, "%-12s%6s%12s%12s\n", "workload", "SF", "PDTool", "MAB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%6.0f%12.2f%12.2f\n", r.Benchmark, r.SF, r.PDToolMin, r.MABMin)
	}
}

// Table2Row is one scale-factor measurement.
type Table2Row struct {
	Benchmark string
	SF        float64
	PDToolMin float64
	MABMin    float64
}

// Fig8Stats summarises repeated RL-comparison runs of one method.
type Fig8Stats struct {
	Tuner  TunerKind
	Totals []float64 // total workload time per repetition
	// Per-round medians and quartiles across repetitions.
	MedianRounds               []float64
	Q1Rounds                   []float64
	Q3Rounds                   []float64
	RecSec, CreateSec, ExecSec float64 // means across repetitions
}

// SummariseRuns computes Fig8Stats from repeated runs of one tuner.
func SummariseRuns(kind TunerKind, runs []*RunResult) Fig8Stats {
	st := Fig8Stats{Tuner: kind}
	if len(runs) == 0 {
		return st
	}
	n := len(runs[0].Rounds)
	st.MedianRounds = make([]float64, n)
	st.Q1Rounds = make([]float64, n)
	st.Q3Rounds = make([]float64, n)
	for i := 0; i < n; i++ {
		var vals []float64
		for _, r := range runs {
			if i < len(r.Rounds) {
				vals = append(vals, r.Rounds[i].TotalSec())
			}
		}
		sort.Float64s(vals)
		st.MedianRounds[i] = quantile(vals, 0.5)
		st.Q1Rounds[i] = quantile(vals, 0.25)
		st.Q3Rounds[i] = quantile(vals, 0.75)
	}
	for _, r := range runs {
		rec, create, exec, total := r.Totals()
		st.Totals = append(st.Totals, total)
		st.RecSec += rec / float64(len(runs))
		st.CreateSec += create / float64(len(runs))
		st.ExecSec += exec / float64(len(runs))
	}
	return st
}

// RenderFig8 prints the DDQN-vs-MAB comparison: mean total breakdown bars
// plus the median/IQR convergence series (Figure 8 a-d).
func RenderFig8(w io.Writer, title string, stats []Fig8Stats) {
	fmt.Fprintf(w, "# %s — total workload time breakdown (sec, mean over repetitions)\n", title)
	fmt.Fprintf(w, "%-10s%14s%14s%14s%14s\n", "method", "Recommend", "IndexCreate", "Execution", "Total")
	for _, s := range stats {
		fmt.Fprintf(w, "%-10s%14.1f%14.1f%14.1f%14.1f\n",
			s.Tuner, s.RecSec, s.CreateSec, s.ExecSec, s.RecSec+s.CreateSec+s.ExecSec)
	}
	fmt.Fprintf(w, "\n# %s — convergence (median [Q1, Q3] total sec per round)\n", title)
	fmt.Fprintf(w, "%-6s", "round")
	for _, s := range stats {
		fmt.Fprintf(w, "%26s", s.Tuner)
	}
	fmt.Fprintln(w)
	n := 0
	for _, s := range stats {
		if len(s.MedianRounds) > n {
			n = len(s.MedianRounds)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-6d", i+1)
		for _, s := range stats {
			cell := "-"
			if i < len(s.MedianRounds) {
				cell = fmt.Sprintf("%.1f [%.1f, %.1f]", s.MedianRounds[i], s.Q1Rounds[i], s.Q3Rounds[i])
			}
			fmt.Fprintf(w, "%26s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Speedup formats the relative improvement of b over a in percent, as the
// paper reports ("MAB provides over X% speed-up compared to PDTool").
func Speedup(a, b float64) string {
	if a <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", (a-b)/a*100)
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SeriesCSV renders a run's per-round totals as a CSV line block for
// external plotting.
func SeriesCSV(runs []*RunResult) string {
	var b strings.Builder
	b.WriteString("round")
	for _, r := range runs {
		fmt.Fprintf(&b, ",%s", r.Tuner)
	}
	b.WriteByte('\n')
	if len(runs) == 0 {
		return b.String()
	}
	for i := range runs[0].Rounds {
		fmt.Fprintf(&b, "%d", i+1)
		for _, r := range runs {
			fmt.Fprintf(&b, ",%.3f", r.Rounds[i].TotalSec())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
