package harness

import (
	"fmt"
	"os"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
)

// TestProbePlans inspects optimiser plan choices under hand-built
// configurations; enable with HARNESS_PLANS=1.
func TestProbePlans(t *testing.T) {
	if os.Getenv("HARNESS_PLANS") == "" {
		t.Skip("set HARNESS_PLANS=1 to run")
	}
	e := smallExperiment(t, Static, 3)
	wl := e.Seq.Round(1)

	ideal := index.NewConfig()
	ideal.Add(index.New("lineorder", []string{"lo_orderdate", "lo_partkey", "lo_suppkey"}, []string{"lo_revenue", "lo_quantity", "lo_discount", "lo_custkey", "lo_supplycost"}))
	ideal.Add(index.New("lineorder", []string{"lo_partkey", "lo_orderdate", "lo_suppkey"}, []string{"lo_revenue", "lo_quantity", "lo_discount", "lo_custkey", "lo_supplycost"}))
	ideal.Add(index.New("lineorder", []string{"lo_custkey", "lo_orderdate", "lo_suppkey"}, []string{"lo_revenue", "lo_quantity", "lo_discount", "lo_partkey", "lo_supplycost"}))
	ideal.Add(index.New("lineorder", []string{"lo_suppkey", "lo_orderdate"}, []string{"lo_revenue", "lo_quantity", "lo_discount", "lo_partkey", "lo_custkey", "lo_supplycost"}))

	for _, cfgPair := range []struct {
		name string
		cfg  *index.Config
	}{{"none", index.NewConfig()}, {"ideal", ideal}} {
		var total float64
		for _, q := range wl {
			plan, err := e.Opt.ChoosePlan(q, cfgPair.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := engine.Execute(e.DB, plan, e.CM)
			if err != nil {
				t.Fatal(err)
			}
			total += st.TotalSec
			fmt.Printf("[%s] q%-3d est=%8.2f true=%8.2f  %s\n", cfgPair.name, q.TemplateID, plan.EstCost, st.TotalSec, plan)
		}
		fmt.Printf("[%s] TOTAL true exec = %.1f\n\n", cfgPair.name, total)
	}
}
