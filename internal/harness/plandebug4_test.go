package harness

import (
	"fmt"
	"os"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/pdtool"
)

// TestProbePDToolSkew shows PDTool's config and per-query deltas vs
// NoIndex on tpch-skew; enable with HARNESS_PDTOOL_SKEW=1.
func TestProbePDToolSkew(t *testing.T) {
	if os.Getenv("HARNESS_PDTOOL_SKEW") == "" {
		t.Skip("set HARNESS_PDTOOL_SKEW=1 to run")
	}
	e, err := New(Options{
		Benchmark: "tpch-skew", Regime: Static, ScaleFactor: 10,
		MaxStoredRows: 5000, Rounds: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	adv := pdtool.New(e.Schema, e.Opt, pdtool.Options{MemoryBudgetBytes: e.Budget})
	training := e.Seq.Round(1)
	rec := adv.Recommend(training)
	fmt.Println("PDTool config:")
	for _, id := range rec.Config.IDs() {
		fmt.Println("  ", id)
	}
	wl := e.Seq.Round(2)
	empty := index.NewConfig()
	for _, q := range wl {
		p0, _ := e.Opt.ChoosePlan(q, empty)
		s0, _ := engine.Execute(e.DB, p0, e.CM)
		p1, _ := e.Opt.ChoosePlan(q, rec.Config)
		s1, _ := engine.Execute(e.DB, p1, e.CM)
		marker := ""
		if s1.TotalSec > s0.TotalSec*1.2 {
			marker = "  <-- REGRESSION"
		}
		fmt.Printf("q%-3d noindex=%8.2f pdtool=%8.2f est=%8.2f%s\n", q.TemplateID, s0.TotalSec, s1.TotalSec, p1.EstCost, marker)
		if marker != "" || s1.TotalSec < s0.TotalSec*0.5 {
			fmt.Printf("     plan: %s\n", p1)
		}
	}
}
