package storage

import (
	"testing"
	"testing/quick"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

func fixtureTable() *Table {
	meta := &catalog.Table{
		Name:     "t",
		BaseRows: 8,
		RowCount: 80,
		Columns: []catalog.Column{
			{Name: "a", Kind: catalog.KindInt},
			{Name: "b", Kind: catalog.KindInt},
		},
	}
	return &Table{
		Meta:       meta,
		StoredRows: 8,
		Mult:       10,
		Cols: [][]int64{
			{1, 2, 3, 4, 5, 6, 7, 8},
			{0, 0, 1, 1, 0, 1, 0, 1},
		},
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := fixtureTable()
	col, ok := tbl.Column("a")
	if !ok || col[3] != 4 {
		t.Fatal("column lookup failed")
	}
	if _, ok := tbl.Column("ghost"); ok {
		t.Fatal("missing column found")
	}
	if got := tbl.MustColumn("b"); got[2] != 1 {
		t.Fatal("MustColumn wrong")
	}
}

func TestMustColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fixtureTable().MustColumn("ghost")
}

func TestLogicalRows(t *testing.T) {
	if got := fixtureTable().LogicalRows(); got != 80 {
		t.Fatalf("logical rows = %v", got)
	}
}

func TestSelectRowsConjunction(t *testing.T) {
	tbl := fixtureTable()
	preds := []query.Predicate{
		{Table: "t", Column: "a", Op: query.OpGt, Lo: 3},
		{Table: "t", Column: "b", Op: query.OpEq, Lo: 1, Hi: 1},
	}
	rows, ok := tbl.SelectRows(preds)
	if !ok {
		t.Fatal("select failed")
	}
	// a > 3 AND b == 1: rows with a in {4, 6, 8} -> ids 3, 5, 7
	want := []int32{3, 5, 7}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}

func TestSelectRowsIgnoresOtherTables(t *testing.T) {
	tbl := fixtureTable()
	preds := []query.Predicate{
		{Table: "other", Column: "a", Op: query.OpEq, Lo: 1, Hi: 1},
	}
	rows, ok := tbl.SelectRows(preds)
	if !ok || len(rows) != tbl.StoredRows {
		t.Fatalf("cross-table predicate altered selection: %d rows", len(rows))
	}
}

func TestSelectRowsMissingColumn(t *testing.T) {
	tbl := fixtureTable()
	preds := []query.Predicate{{Table: "t", Column: "ghost", Op: query.OpEq}}
	if _, ok := tbl.SelectRows(preds); ok {
		t.Fatal("missing column accepted")
	}
	if _, ok := tbl.CountRows(preds); ok {
		t.Fatal("missing column accepted by count")
	}
}

func TestCountRowsEmptyPreds(t *testing.T) {
	tbl := fixtureTable()
	n, ok := tbl.CountRows(nil)
	if !ok || n != 8 {
		t.Fatalf("count = %d", n)
	}
}

func TestSelectivity(t *testing.T) {
	tbl := fixtureTable()
	sel := tbl.Selectivity([]query.Predicate{
		{Table: "t", Column: "b", Op: query.OpEq, Lo: 1, Hi: 1},
	})
	if sel != 0.5 {
		t.Fatalf("selectivity = %v", sel)
	}
	empty := &Table{Meta: tbl.Meta, StoredRows: 0}
	if empty.Selectivity(nil) != 0 {
		t.Fatal("empty table selectivity should be 0")
	}
}

func TestDatabaseLookup(t *testing.T) {
	tbl := fixtureTable()
	db := &Database{
		Schema: catalog.MustSchema("s", tbl.Meta),
		Tables: map[string]*Table{"t": tbl},
	}
	if _, ok := db.Table("t"); !ok {
		t.Fatal("table lookup failed")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Fatal("missing table found")
	}
	if db.MustTable("t") != tbl {
		t.Fatal("MustTable wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.MustTable("ghost")
}

// Property: SelectRows and CountRows always agree, and every selected row
// satisfies the conjunction.
func TestQuickSelectCountAgreement(t *testing.T) {
	tbl := fixtureTable()
	f := func(lo, hi int64, useB bool) bool {
		preds := []query.Predicate{
			{Table: "t", Column: "a", Op: query.OpRange, Lo: lo % 10, Hi: hi % 10},
		}
		if useB {
			preds = append(preds, query.Predicate{Table: "t", Column: "b", Op: query.OpEq, Lo: 1, Hi: 1})
		}
		rows, ok1 := tbl.SelectRows(preds)
		n, ok2 := tbl.CountRows(preds)
		if !ok1 || !ok2 || len(rows) != n {
			return false
		}
		for _, r := range rows {
			for i, p := range preds {
				_ = i
				col, _ := tbl.Column(p.Column)
				if !p.Matches(col[r]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
