// Package storage holds the physical, in-memory representation of the
// benchmark databases. Tables are stored column-major as int64 arrays.
//
// Scale handling: logical row counts at a given scale factor can reach
// hundreds of millions; storing them is unnecessary because every cost in
// the simulator is linear in row/page counts. Each stored table therefore
// keeps at most a capped number of physical rows drawn from the same
// distributions, plus a row multiplier Mult such that
//
//	logical rows = stored rows x Mult.
//
// Predicates are genuinely evaluated against stored rows; all resulting
// cardinalities are scaled by Mult when converted to costs. Foreign keys
// are generated against the referenced table's stored key domain so that
// joins remain exact in stored space.
package storage

import (
	"fmt"

	"dbabandits/internal/catalog"
	"dbabandits/internal/query"
)

// Table is the physical storage of one logical table.
type Table struct {
	Meta       *catalog.Table
	Cols       [][]int64 // column-major; parallel to Meta.Columns
	StoredRows int
	Mult       float64 // logical rows / stored rows (>= 1)
}

// Column returns the physical column array by name.
func (t *Table) Column(name string) ([]int64, bool) {
	i := t.Meta.ColumnIndex(name)
	if i < 0 {
		return nil, false
	}
	return t.Cols[i], true
}

// MustColumn is Column that panics when missing; for internal call sites
// that have already validated the query against the schema.
func (t *Table) MustColumn(name string) []int64 {
	c, ok := t.Column(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q has no column %q", t.Meta.Name, name))
	}
	return c
}

// LogicalRows returns the scaled logical row count.
func (t *Table) LogicalRows() float64 { return float64(t.StoredRows) * t.Mult }

// SelectRows evaluates a conjunction of predicates over the stored rows
// and returns the matching row ids. Predicates on other tables are
// ignored. A nil return with ok=false indicates a predicate referencing a
// missing column.
func (t *Table) SelectRows(preds []query.Predicate) ([]int32, bool) {
	var cols [][]int64
	var ps []query.Predicate
	for _, p := range preds {
		if p.Table != t.Meta.Name {
			continue
		}
		c, ok := t.Column(p.Column)
		if !ok {
			return nil, false
		}
		cols = append(cols, c)
		ps = append(ps, p)
	}
	out := make([]int32, 0, t.StoredRows/4+1)
	for r := 0; r < t.StoredRows; r++ {
		match := true
		for i, p := range ps {
			if !p.Matches(cols[i][r]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, int32(r))
		}
	}
	return out, true
}

// CountRows returns only the number of stored rows matching the
// conjunction; cheaper than SelectRows when ids are not needed.
func (t *Table) CountRows(preds []query.Predicate) (int, bool) {
	var cols [][]int64
	var ps []query.Predicate
	for _, p := range preds {
		if p.Table != t.Meta.Name {
			continue
		}
		c, ok := t.Column(p.Column)
		if !ok {
			return 0, false
		}
		cols = append(cols, c)
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		return t.StoredRows, true
	}
	n := 0
	for r := 0; r < t.StoredRows; r++ {
		match := true
		for i, p := range ps {
			if !p.Matches(cols[i][r]) {
				match = false
				break
			}
		}
		if match {
			n++
		}
	}
	return n, true
}

// Selectivity returns the true fraction of stored rows matching the
// conjunction of predicates on this table (1.0 when there are none).
func (t *Table) Selectivity(preds []query.Predicate) float64 {
	if t.StoredRows == 0 {
		return 0
	}
	n, ok := t.CountRows(preds)
	if !ok {
		return 0
	}
	return float64(n) / float64(t.StoredRows)
}

// Database is a schema plus its physical tables.
type Database struct {
	Schema *catalog.Schema
	Tables map[string]*Table
}

// Table returns the physical table by name.
func (d *Database) Table(name string) (*Table, bool) {
	t, ok := d.Tables[name]
	return t, ok
}

// MustTable panics when the table is missing.
func (d *Database) MustTable(name string) *Table {
	t, ok := d.Tables[name]
	if !ok {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}

// DataSizeBytes returns the logical data size; the experiment memory
// budget is expressed as a multiple of this.
func (d *Database) DataSizeBytes() int64 { return d.Schema.DataSizeBytes() }
