package env

import (
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
)

func smallEnv(t *testing.T, regime Regime, rounds int) *Environment {
	t.Helper()
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        regime,
		ScaleFactor:   10,
		MaxStoredRows: 1500,
		Rounds:        rounds,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// scriptedPolicy exercises the driver contract without any learning: it
// records what the driver passes in and follows a fixed configuration
// script.
type scriptedPolicy struct {
	env     policy.Env
	ix      *index.Index
	rounds  []int
	lastNil []bool
	observe []map[string]float64
	closed  int
}

func (p *scriptedPolicy) Name() string { return "scripted" }

func (p *scriptedPolicy) Recommend(round int, last []*query.Query) policy.Recommendation {
	p.rounds = append(p.rounds, round)
	p.lastNil = append(p.lastNil, last == nil)
	switch round {
	case 1:
		// Round 1 must decide blind; keep the empty configuration.
		return policy.Recommendation{}
	case 2:
		cfg := index.NewConfig()
		cfg.Add(p.ix)
		return policy.Recommendation{Config: cfg, RecommendSec: 1.5}
	default:
		// nil Config = keep the previous configuration.
		return policy.Recommendation{}
	}
}

func (p *scriptedPolicy) Observe(stats []*engine.ExecStats, creationSec map[string]float64) {
	// The map is borrowed (the driver refills it every round); a policy
	// that keeps feedback must copy it — which doubles as a regression
	// check that each round's charges actually reach the policy intact.
	cp := make(map[string]float64, len(creationSec))
	for k, v := range creationSec {
		cp[k] = v
	}
	p.observe = append(p.observe, cp)
}

func (p *scriptedPolicy) Close() { p.closed++ }

func TestRunPolicyDriverContract(t *testing.T) {
	e := smallEnv(t, Static, 4)
	ix := index.New("lineorder", []string{"lo_orderdate"}, nil)
	p := &scriptedPolicy{env: e, ix: ix}
	res, err := e.RunPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 || res.Tuner != "scripted" || res.Benchmark != "ssb" {
		t.Fatalf("result header wrong: %+v", res)
	}
	// Recommend is called once per round, 1-based, with nil lastWorkload
	// only in round 1.
	if len(p.rounds) != 4 || p.rounds[0] != 1 || p.rounds[3] != 4 {
		t.Fatalf("Recommend rounds = %v", p.rounds)
	}
	if !p.lastNil[0] || p.lastNil[1] || p.lastNil[2] {
		t.Fatalf("lastWorkload nil pattern = %v", p.lastNil)
	}
	// The index is created exactly once — in round 2 — and priced there.
	if len(p.observe) != 4 {
		t.Fatalf("Observe called %d times", len(p.observe))
	}
	if len(p.observe[0]) != 0 || len(p.observe[2]) != 0 {
		t.Fatalf("creation charged outside round 2: %v", p.observe)
	}
	if sec, ok := p.observe[1][ix.ID()]; !ok || sec <= 0 {
		t.Fatalf("round 2 creation cost missing: %v", p.observe[1])
	}
	r2 := res.Rounds[1]
	if r2.RecommendSec != 1.5 || r2.CreateSec != p.observe[1][ix.ID()] || r2.NumIndexes != 1 {
		t.Fatalf("round 2 accounting wrong: %+v", r2)
	}
	// nil-Config rounds keep the configuration without re-charging it.
	for _, rr := range res.Rounds[2:] {
		if rr.CreateSec != 0 || rr.NumIndexes != 1 {
			t.Fatalf("keep-configuration round wrong: %+v", rr)
		}
	}
	if p.closed != 1 {
		t.Fatalf("Close called %d times", p.closed)
	}
}

// TestRegisteredPolicyRunsThroughDriver registers a fresh policy through
// the registry alone and runs it by name — the extensibility contract of
// the policy layer (zero driver or harness edits).
func TestRegisteredPolicyRunsThroughDriver(t *testing.T) {
	policy.Register("keep-empty", func(e policy.Env, _ policy.Params) (policy.Policy, error) {
		if e.TotalRounds() <= 0 || e.MemoryBudgetBytes() <= 0 {
			t.Error("factory got an unprepared environment")
		}
		return &keepEmpty{}, nil
	})
	e := smallEnv(t, Static, 3)
	res, err := e.Run(TunerKind("keep-empty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 || res.Tuner != "keep-empty" {
		t.Fatalf("custom policy result wrong: %+v", res)
	}
	rec, create, exec, _ := res.Totals()
	if rec != 0 || create != 0 || exec <= 0 {
		t.Fatalf("custom policy totals wrong: rec=%v create=%v exec=%v", rec, create, exec)
	}
}

type keepEmpty struct{}

func (keepEmpty) Name() string                                        { return "keep-empty" }
func (keepEmpty) Recommend(int, []*query.Query) policy.Recommendation { return policy.Recommendation{} }
func (keepEmpty) Observe([]*engine.ExecStats, map[string]float64)     {}
func (keepEmpty) Close()                                              {}

// TestAdvisorPolicyConverges sanity-checks the shipped online advisor:
// on static SSB (easily achievable index benefits) it must end with a
// non-empty configuration and beat the no-index baseline's final round.
func TestAdvisorPolicyConverges(t *testing.T) {
	e := smallEnv(t, Static, 6)
	noIdx, err := e.Run(NoIndex)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := e.Run(TunerKind("advisor"))
	if err != nil {
		t.Fatal(err)
	}
	if adv.Rounds[len(adv.Rounds)-1].NumIndexes == 0 {
		t.Fatal("advisor never materialised an index")
	}
	if adv.FinalRoundExecSec() >= noIdx.FinalRoundExecSec() {
		t.Fatalf("advisor final round %v not better than no-index %v",
			adv.FinalRoundExecSec(), noIdx.FinalRoundExecSec())
	}
	rec, _, _, _ := adv.Totals()
	if rec <= 0 {
		t.Fatal("advisor reported zero recommendation time despite what-if calls")
	}
}

func TestUnknownRegimeAndPolicy(t *testing.T) {
	if _, err := New(Options{Benchmark: "ssb", Regime: "weird"}); err == nil {
		t.Fatal("unknown regime accepted")
	}
	e := smallEnv(t, Static, 2)
	if _, err := e.Run(TunerKind("alien")); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
