package env

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dbabandits/internal/policy"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the RunResult golden files from the current driver")

// TestRunPolicyMatchesPreRefactorGoldens pins the generic driver to the
// pre-refactor harness byte for byte: the golden files were captured
// from the four per-tuner round loops (runNoIndex/runMAB/runPDTool/
// runDDQN) before they were collapsed into RunPolicy, on small
// fixed-seed runs of all three regimes — static covers every seed
// tuner, shifting and random cover the regime-dependent PDTool paths
// (invocation schedule, trailing-window training). Any numeric or
// accounting drift in the refactored round loop shows up as a byte
// diff here.
//
// Since the C2UCB recommend loop went sparse (sparse contexts, sparse
// ridge kernels, memoised arm generation), this test doubles as the
// regression gate that the sparse fast path is an optimisation, not a
// behaviour change: the goldens predate it and must stay byte-identical
// through it.
func TestRunPolicyMatchesPreRefactorGoldens(t *testing.T) {
	cases := []struct {
		regime Regime
		rounds int
		prefix string
		tuners []TunerKind
	}{
		{Static, 5, "", []TunerKind{NoIndex, PDTool, MAB, DDQN, DDQNSC}},
		{Shifting, 8, "shifting_", []TunerKind{NoIndex, PDTool, MAB}},
		{Random, 9, "random_", []TunerKind{NoIndex, PDTool, MAB}},
	}
	for _, c := range cases {
		e, err := New(Options{
			Benchmark:     "ssb",
			Regime:        c.regime,
			ScaleFactor:   10,
			MaxStoredRows: 2000,
			Rounds:        c.rounds,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Opts.DDQNSeed = 7
		for _, kind := range c.tuners {
			p, err := policy.New(string(kind), e, e.policyParams())
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RunPolicy(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.regime, kind, err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+c.prefix+string(kind)+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s: RunResult JSON diverged from the pre-refactor capture (run with -update-golden only if the change is intended)\n got: %s", c.regime, kind, got)
			}
		}
	}
}
