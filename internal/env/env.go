// Package env prepares and drives the simulation environment of the
// paper's experiments: benchmark data generation, the optimiser and
// executor, workload sequencing, what-if/creation costing, and per-round
// accounting. Its single generic round-loop driver, RunPolicy, runs any
// tuning strategy implementing policy.Policy — the four seed tuners and
// every future baseline share this one loop.
package env

import (
	"fmt"
	"sort"

	"dbabandits/internal/catalog"
	"dbabandits/internal/datagen"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
	"dbabandits/internal/workload"
)

// Regime names a workload regime.
type Regime string

// The three regimes of Section V-A, plus the hybrid
// transactional/analytical regime of the journal follow-up ("No DBA? No
// regret!", VLDB J. 2023), where update-heavy rounds interleave with the
// analytical ones and index maintenance is charged against reward.
const (
	Static   Regime = "static"
	Shifting Regime = "shifting"
	Random   Regime = "random"
	HTAP     Regime = "htap"
)

// Options configure one experiment environment.
type Options struct {
	Benchmark string
	Regime    Regime
	// ScaleFactor defaults to 10 (the paper's default); Table II uses 1
	// and 100.
	ScaleFactor float64
	// MaxStoredRows caps physical rows (default 5000 — small enough for
	// fast experiment turnaround, large enough for stable selectivities).
	MaxStoredRows int
	// Rounds overrides the regime default (25 static/random, 80 shifting).
	Rounds int
	// Seed drives data generation and workload sequencing.
	Seed int64
	// MemoryBudgetX is the index budget as a multiple of the data size
	// (default 1.0, the paper's setting).
	MemoryBudgetX float64
	// PDToolTimeLimitSec caps a single PDTool invocation (the paper caps
	// TPC-DS dynamic random at 1 hour). 0 = unlimited.
	PDToolTimeLimitSec float64
	// MABOptions tweaks the bandit (ablations).
	MABOptions mab.TunerOptions
	// MABWarmStartRounds pre-trains the bandit with what-if estimated
	// rewards over the first round's workload before the real loop (the
	// cold-start mitigation of Section VII). 0 disables.
	MABWarmStartRounds int
	// MABTransferGain, when non-nil and MABWarmStartRounds > 0, replaces
	// the what-if gain estimator for those warm-start rounds with an
	// external per-arm estimate — the fleet layer's cross-tenant transfer
	// (a donor tenant's posterior via mab.TransferBasis). Read at Run
	// time like the rest of Opts, so one Environment can run a
	// transfer-warmed span and then a cold control.
	MABTransferGain func(*mab.Arm) float64
	// DDQNSeed seeds the agent separately (Figure 8 repeats runs).
	DDQNSeed int64
	// RandomSeed seeds the random-configuration control policy; 0 falls
	// back to Seed.
	RandomSeed int64
	// HTAP tunes the hybrid regime's update-heavy rounds (update cadence,
	// statements per round, write volume). Ignored by other regimes.
	HTAP workload.HTAPOptions
	// DisablePlanCache switches the optimiser to the uncached full greedy
	// search on every call — the A/B control for the config-fingerprinted
	// plan & what-if cache (-plan-cache=false on the CLIs). Both settings
	// are byte-identical in every result; only wall-clock time differs.
	DisablePlanCache bool
}

// Environment is a prepared benchmark environment: database, cost model,
// optimiser, workload sequencer and memory budget. Any policy can be run
// over the same environment, so all tuners of one benchmark compare
// against identical data and workload sequences.
type Environment struct {
	Opts   Options
	Bench  *workload.Benchmark
	Schema *catalog.Schema
	DB     *storage.Database
	CM     *engine.CostModel
	Opt    *optimizer.Optimizer
	Seq    workload.Sequencer
	Budget int64
}

// New prepares an environment.
func New(opts Options) (*Environment, error) {
	bench, err := workload.ByName(opts.Benchmark)
	if err != nil {
		return nil, err
	}
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 10
	}
	if opts.MaxStoredRows <= 0 {
		opts.MaxStoredRows = 5000
	}
	if opts.MemoryBudgetX <= 0 {
		opts.MemoryBudgetX = 1
	}
	schema := bench.NewSchema()
	db, err := datagen.Build(schema, datagen.Options{
		Seed:          opts.Seed,
		ScaleFactor:   opts.ScaleFactor,
		MaxStoredRows: opts.MaxStoredRows,
	})
	if err != nil {
		return nil, err
	}
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)
	if opts.DisablePlanCache {
		opt = optimizer.NewUncached(schema, cm)
	}
	e := &Environment{
		Opts:   opts,
		Bench:  bench,
		Schema: schema,
		DB:     db,
		CM:     cm,
		Opt:    opt,
		Budget: int64(float64(db.DataSizeBytes()) * opts.MemoryBudgetX),
	}
	switch opts.Regime {
	case Static:
		e.Seq = workload.NewStatic(bench, db, opts.Seed, opts.Rounds)
	case Shifting:
		// Ragged totals are supported: rounds are floor-partitioned over
		// the four groups rather than truncated to a multiple of four.
		e.Seq = workload.NewShiftingTotal(bench, db, opts.Seed, 4, opts.Rounds)
	case Random:
		e.Seq = workload.NewRandom(bench, db, opts.Seed, opts.Rounds, 0)
	case HTAP:
		e.Seq = workload.NewHTAP(bench, db, opts.Seed, opts.Rounds, opts.HTAP)
	default:
		return nil, fmt.Errorf("env: unknown regime %q", opts.Regime)
	}
	return e, nil
}

// PlanCacheStats returns the optimiser's cumulative plan-cache counters
// for this environment — zero-valued when DisablePlanCache is set. They
// feed logs and benchmark labels only; no golden-pinned result or
// RunResult field includes them, so cached and uncached runs stay
// byte-identical.
func (e *Environment) PlanCacheStats() optimizer.PlanCacheStats {
	return e.Opt.CacheStats()
}

// ExecuteWorkload runs one round's queries under the configuration and
// returns the summed execution time plus the per-query stats. The
// returned slice is freshly allocated and the caller's to keep; the
// round-loop driver uses the scratch variant instead.
func (e *Environment) ExecuteWorkload(queries []*query.Query, cfg *index.Config) (float64, []*engine.ExecStats, error) {
	return e.executeWorkload(queries, cfg, make([]*engine.ExecStats, 0, len(queries)))
}

// executeWorkload is ExecuteWorkload appending into the supplied buffer
// (reset first) — the driver hands the same backing array back every
// round.
func (e *Environment) executeWorkload(queries []*query.Query, cfg *index.Config, stats []*engine.ExecStats) (float64, []*engine.ExecStats, error) {
	var total float64
	stats = stats[:0]
	for _, q := range queries {
		plan, err := e.Opt.ChoosePlan(q, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("planning template %d: %w", q.TemplateID, err)
		}
		st, err := engine.Execute(e.DB, plan, e.CM)
		if err != nil {
			return 0, nil, fmt.Errorf("executing template %d: %w", q.TemplateID, err)
		}
		total += st.TotalSec
		stats = append(stats, st)
	}
	return total, stats, nil
}

// CreationCost prices materialising the given indexes and returns the
// per-index seconds plus the sum. The returned map is freshly allocated
// and the caller's to keep.
func (e *Environment) CreationCost(toCreate []*index.Index) (map[string]float64, float64) {
	per := make(map[string]float64, len(toCreate))
	return per, e.creationCostInto(toCreate, per)
}

// creationCostInto is CreationCost filling the supplied map (cleared
// first) and returning the sum.
func (e *Environment) creationCostInto(toCreate []*index.Index, per map[string]float64) float64 {
	clear(per)
	var total float64
	for _, ix := range toCreate {
		sec := e.IndexCreationSec(ix)
		if sec < 0 {
			continue
		}
		per[ix.ID()] = sec
		total += sec
	}
	return total
}

// MaintenanceCost prices the index maintenance a round's update
// statements induce on the given configuration: for every statement, each
// index on the written table that the statement touches (every index for
// INSERTs, only indexes containing a written column for UPDATEs) pays the
// cost model's write amplification for the affected rows — UPDATEs pay
// twice per entry (delete + insert). It returns the per-index seconds
// plus the sum; both are exactly zero for a round with no updates, so
// analytical regimes are unaffected.
func (e *Environment) MaintenanceCost(updates []query.Update, cfg *index.Config) (map[string]float64, float64) {
	if len(updates) == 0 || cfg == nil || cfg.Len() == 0 {
		return nil, 0
	}
	per := map[string]float64{}
	total, _ := e.maintenanceCostInto(updates, cfg, per, nil)
	return per, total
}

// maintenanceCostInto is MaintenanceCost filling the supplied map
// (cleared first), sorting ids in the supplied buffer. It returns the
// sum and the (possibly regrown) id buffer for the caller to reuse.
func (e *Environment) maintenanceCostInto(updates []query.Update, cfg *index.Config, per map[string]float64, ids []string) (float64, []string) {
	clear(per)
	for _, u := range updates {
		meta, ok := e.Schema.Table(u.Table)
		if !ok {
			continue
		}
		for _, ix := range cfg.OnTable(u.Table) {
			if !ix.TouchedBy(u) {
				continue
			}
			entries := u.Rows
			if u.Kind == query.UpdateModify {
				entries *= 2 // delete the old entry, insert the new one
			}
			entryWidth := float64(ix.EntryWidthBytes(meta))
			indexPages := e.CM.PagesOf(ix.SizeBytes(meta))
			per[ix.ID()] += e.CM.IndexWriteSec(entries, entryWidth, indexPages)
		}
	}
	// The round total is the per-index sum in sorted-id order: exact
	// per-index additivity (what the property tests pin) and a
	// deterministic float result regardless of map iteration.
	ids = ids[:0]
	for id := range per {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var total float64
	for _, id := range ids {
		total += per[id]
	}
	return total, ids
}

// The policy.Env capability view. Method names differ from the exported
// field names (Go disallows a method shadowing a field), but each is a
// trivial projection of the prepared environment.

// Catalog implements policy.Env.
func (e *Environment) Catalog() *catalog.Schema { return e.Schema }

// DataSizeBytes implements policy.Env.
func (e *Environment) DataSizeBytes() int64 { return e.DB.DataSizeBytes() }

// MemoryBudgetBytes implements policy.Env.
func (e *Environment) MemoryBudgetBytes() int64 { return e.Budget }

// WhatIf implements policy.Env.
func (e *Environment) WhatIf() *optimizer.Optimizer { return e.Opt }

// RegimeName implements policy.Env.
func (e *Environment) RegimeName() string { return string(e.Opts.Regime) }

// TotalRounds implements policy.Env.
func (e *Environment) TotalRounds() int { return e.Seq.Rounds() }

// WorkloadAt implements policy.Env.
func (e *Environment) WorkloadAt(r int) []*query.Query { return e.Seq.Round(r) }

// IndexCreationSec implements policy.Env. It returns -1 for an index on
// an unknown table (CreationCost skips such indexes).
func (e *Environment) IndexCreationSec(ix *index.Index) float64 {
	meta, ok := e.Schema.Table(ix.Table)
	if !ok {
		return -1
	}
	return e.CM.IndexBuildSec(meta, ix.SizeBytes(meta))
}

// HasUpdates implements policy.UpdateEnv: whether this environment's
// regime can issue update statements.
func (e *Environment) HasUpdates() bool {
	us, ok := e.Seq.(workload.UpdateSequencer)
	return ok && us.UpdatesEnabled()
}

// UpdatesAt returns round r's update statements — nil for analytical
// regimes and analytical-only rounds. It is deliberately NOT part of
// policy.UpdateEnv: the driver is its only policy-facing consumer
// (statements reach policies through UpdateAware.ObserveUpdates after
// execution), so no policy can peek at future churn.
func (e *Environment) UpdatesAt(r int) []query.Update {
	if us, ok := e.Seq.(workload.UpdateSequencer); ok {
		return us.UpdatesAt(r)
	}
	return nil
}

// policyParams projects the experiment options onto the per-strategy
// knobs, read at Run time so callers may tweak Opts between runs.
func (e *Environment) policyParams() policy.Params {
	randomSeed := e.Opts.RandomSeed
	if randomSeed == 0 {
		randomSeed = e.Opts.Seed
	}
	return policy.Params{
		MAB:                e.Opts.MABOptions,
		MABWarmStartRounds: e.Opts.MABWarmStartRounds,
		MABTransferGain:    e.Opts.MABTransferGain,
		DDQNSeed:           e.Opts.DDQNSeed,
		RandomSeed:         randomSeed,
		PDToolTimeLimitSec: e.Opts.PDToolTimeLimitSec,
	}
}

var (
	_ policy.Env       = (*Environment)(nil)
	_ policy.UpdateEnv = (*Environment)(nil)
)
