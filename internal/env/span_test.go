package env

import (
	"encoding/json"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
	"dbabandits/internal/workload"
)

// badSequencer wraps a real sequencer and injects an unplannable query
// at one round, forcing the driver to error mid-run.
type badSequencer struct {
	workload.Sequencer
	failAt int
}

func (s *badSequencer) Round(r int) []*query.Query {
	if r == s.failAt {
		return []*query.Query{{TemplateID: -1, Tables: []string{"no_such_table"}}}
	}
	return s.Sequencer.Round(r)
}

// TestRunPolicyClosesOnceOnError pins the Close contract: when a round
// errors mid-run, the error propagates AND the policy is closed exactly
// once — no leak, no double close.
func TestRunPolicyClosesOnceOnError(t *testing.T) {
	e := smallEnv(t, Static, 5)
	e.Seq = &badSequencer{Sequencer: e.Seq, failAt: 3}
	p := &scriptedPolicy{env: e, ix: index.New("lineorder", []string{"lo_orderdate"}, nil)}
	if _, err := e.RunPolicy(p); err == nil {
		t.Fatal("mid-run planning failure did not propagate")
	}
	if p.closed != 1 {
		t.Fatalf("Close called %d times, want exactly 1", p.closed)
	}
	// Rounds 1 and 2 ran before the failure; their feedback landed.
	if len(p.rounds) != 3 || len(p.observe) != 2 {
		t.Fatalf("driver state at failure: recommends=%v observes=%d", p.rounds, len(p.observe))
	}
}

// TestRunPolicySpanMatchesFullRun pins the span decomposition: driving
// rounds 1..k and k+1..n as two spans over one policy produces exactly
// the RoundResults of the single full run — including creation pricing
// across the seam (StartConfig carries the materialised state).
func TestRunPolicySpanMatchesFullRun(t *testing.T) {
	const total, cut = 6, 3
	eA := smallEnv(t, Static, total)
	pA, err := eA.Run(TunerKind("advisor"))
	if err != nil {
		t.Fatal(err)
	}

	eB := smallEnv(t, Static, total)
	inner, err := policy.New("advisor", eB, policy.Params{})
	if err != nil {
		t.Fatal(err)
	}
	p := &cfgRecorder{Policy: inner, cfg: index.NewConfig()}
	defer p.Close()
	head, err := eB.RunPolicySpan(p, Span{From: 1, To: cut})
	if err != nil {
		t.Fatal(err)
	}
	// StartConfig carries the materialised state across the seam — the
	// same hand-off a checkpoint resume performs.
	tail, err := eB.RunPolicySpan(p, Span{From: cut + 1, To: total, StartConfig: p.cfg})
	if err != nil {
		t.Fatal(err)
	}

	got := append(append([]RoundResult(nil), head.Rounds...), tail.Rounds...)
	ja, _ := json.Marshal(pA.Rounds)
	jb, _ := json.Marshal(got)
	if string(ja) != string(jb) {
		t.Fatalf("split run diverged from full run:\n%s\nvs\n%s", ja, jb)
	}
}

// cfgRecorder tracks the configuration in effect after each round, the
// way a resuming caller carries StartConfig across spans.
type cfgRecorder struct {
	policy.Policy
	cfg *index.Config
}

func (c *cfgRecorder) Recommend(r int, last []*query.Query) policy.Recommendation {
	rec := c.Policy.Recommend(r, last)
	if rec.Config != nil {
		c.cfg = rec.Config
	}
	return rec
}

// TestRunPolicySpanRejectsEmpty pins the span validation.
func TestRunPolicySpanRejectsEmpty(t *testing.T) {
	e := smallEnv(t, Static, 3)
	if _, err := e.RunPolicySpan(&keepEmpty{}, Span{From: 3, To: 2}); err == nil {
		t.Fatal("empty span accepted")
	}
}
