package env

import (
	"encoding/json"
	"math/rand"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/policy"
)

func resumeEnv(t *testing.T, backend string, rounds int) *Environment {
	t.Helper()
	opts := Options{
		Benchmark:     "ssb",
		Regime:        Static,
		ScaleFactor:   10,
		MaxStoredRows: 1500,
		Rounds:        rounds,
		Seed:          7,
	}
	opts.MABOptions.RidgeBackend = backend
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCheckpointResumeEveryPolicy is the checkpoint round-trip property
// test: for EVERY registered policy, on BOTH ridge backends, snapshot
// at a (seeded-)random round boundary, restore into a freshly built
// policy over a freshly built environment, resume over the remaining
// span, and require the concatenated RoundResults byte-identical to an
// uninterrupted golden run. This is the contract every future policy
// inherits the moment it registers: implementing Snapshotter means
// resumable, and resumable means byte-identical.
func TestCheckpointResumeEveryPolicy(t *testing.T) {
	const total = 6
	rng := rand.New(rand.NewSource(20260808))
	for _, backend := range linalg.RidgeBackends() {
		for _, name := range policy.Names() {
			cut := 1 + rng.Intn(total-1)
			t.Run(backend+"/"+name, func(t *testing.T) {
				eA := resumeEnv(t, backend, total)
				golden, err := eA.Run(TunerKind(name))
				if err != nil {
					t.Fatal(err)
				}

				// Head: drive rounds 1..cut, then checkpoint at the
				// round boundary.
				eB := resumeEnv(t, backend, total)
				p1, err := policy.New(name, eB, eB.policyParams())
				if err != nil {
					t.Fatal(err)
				}
				rec1 := &cfgRecorder{Policy: p1, cfg: index.NewConfig()}
				head, err := eB.RunPolicySpan(rec1, Span{From: 1, To: cut})
				if err != nil {
					t.Fatal(err)
				}
				snap, ok := p1.(policy.Snapshotter)
				if !ok {
					t.Fatalf("policy %q does not implement Snapshotter", name)
				}
				state, err := snap.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				cfgDefs := rec1.cfg.Defs()
				p1.Close()

				// Tail: fresh environment, fresh policy, restore, resume.
				eC := resumeEnv(t, backend, total)
				p2, err := policy.New(name, eC, eC.policyParams())
				if err != nil {
					t.Fatal(err)
				}
				defer p2.Close()
				if err := p2.(policy.Snapshotter).Restore(state); err != nil {
					t.Fatal(err)
				}
				tail, err := eC.RunPolicySpan(p2, Span{
					From:        cut + 1,
					To:          total,
					StartConfig: index.ConfigFromDefs(cfgDefs),
				})
				if err != nil {
					t.Fatal(err)
				}

				got := append(append([]RoundResult(nil), head.Rounds...), tail.Rounds...)
				ja, _ := json.Marshal(golden.Rounds)
				jb, _ := json.Marshal(got)
				if string(ja) != string(jb) {
					t.Fatalf("%s/%s resumed at round %d diverged from uninterrupted run:\n%s\nvs\n%s",
						backend, name, cut, jb, ja)
				}
			})
		}
	}
}
