package env

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dbabandits/internal/linalg"
	"dbabandits/internal/policy"
)

// TestCholBackendMatchesMABGoldens runs the MAB policy on the factored
// (Cholesky) ridge backend over every golden workload — static,
// shifting, random, and HTAP — and requires the RunResult to match the
// committed Sherman–Morrison fixtures byte for byte. Matching bytes
// means the factored backend picked the identical arm sequence every
// round (configurations drive creation, execution, and maintenance
// accounting) and folded in the same observation count (which drives
// the modelled recommendation time), i.e. switching backends changes
// no recommendation on the pinned workloads.
func TestCholBackendMatchesMABGoldens(t *testing.T) {
	cases := []struct {
		regime  Regime
		rounds  int
		fixture string
	}{
		{Static, 5, "golden_mab.json"},
		{Shifting, 8, "golden_shifting_mab.json"},
		{Random, 9, "golden_random_mab.json"},
		{HTAP, 6, "golden_htap_mab.json"},
	}
	for _, c := range cases {
		e, err := New(Options{
			Benchmark:     "ssb",
			Regime:        c.regime,
			ScaleFactor:   10,
			MaxStoredRows: 2000,
			Rounds:        c.rounds,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Opts.MABOptions.RidgeBackend = linalg.BackendChol
		res, err := e.Run(MAB)
		if err != nil {
			t.Fatalf("%s: %v", c.regime, err)
		}
		got, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		want, err := os.ReadFile(filepath.Join("testdata", c.fixture))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: chol-backend RunResult diverged from the sm-captured fixture %s\n got: %s",
				c.regime, c.fixture, got)
		}
	}
}

// TestRidgeBackendValidatedAtPolicyConstruction pins the error path: a
// bogus backend name must fail policy construction with a clear error,
// not panic inside the tuner.
func TestRidgeBackendValidatedAtPolicyConstruction(t *testing.T) {
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        Static,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        2,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Opts.MABOptions.RidgeBackend = "qr"
	if _, err := policy.New(string(MAB), e, e.policyParams()); err == nil {
		t.Fatal("unknown ridge backend constructed a policy")
	}
}
