package env

import (
	"fmt"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
)

// Run constructs the named policy from the registry and drives it with
// RunPolicy. Per-strategy knobs are projected from Opts at call time.
func (e *Environment) Run(kind TunerKind) (*RunResult, error) {
	p, err := policy.New(string(kind), e, e.policyParams())
	if err != nil {
		return nil, err
	}
	res, err := e.RunPolicy(p)
	if err != nil {
		return nil, err
	}
	// The requested registry name wins over Policy.Name(): a policy whose
	// Name diverges from its registration must not mislabel result rows.
	res.Tuner = kind
	return res, nil
}

// NewPolicy constructs the named policy from the registry against this
// environment, with the per-strategy knobs projected from Opts exactly
// as Run projects them. Callers that need the policy instance itself —
// to snapshot its learned state after a span, as the fleet layer does
// for cross-tenant transfer — build it here and own its lifecycle
// (RunPolicySpan + Close); everyone else uses Run.
func (e *Environment) NewPolicy(kind TunerKind) (policy.Policy, error) {
	return policy.New(string(kind), e, e.policyParams())
}

// RunPolicy is the one round-loop driver of Algorithm 2's protocol,
// shared by every tuning strategy: the full round span, with the policy
// closed when the run ends. Close runs exactly once — deferred, so a
// round erroring mid-run still releases the policy before the error
// propagates.
func (e *Environment) RunPolicy(p policy.Policy) (*RunResult, error) {
	defer p.Close()
	return e.RunPolicySpan(p, Span{})
}

// Span bounds a resumable slice of the round loop. The zero value means
// the whole run: rounds 1..Seq.Rounds() from an empty configuration.
type Span struct {
	// From is the first round to drive (1-based); 0 means 1. For a
	// resumed run, From is the first round the restored policy has not
	// yet executed; the driver replays round From-1's workload from the
	// sequencer (sequencers are pure functions of seed and round, so
	// the replay is value-identical) as the policy's lastWorkload.
	From int
	// To is the last round, inclusive; 0 means the sequencer's total.
	To int
	// StartConfig is the configuration in effect entering round From —
	// the materialised state a checkpoint recorded. nil means empty.
	// Only the diff against it is priced, exactly as an uninterrupted
	// run would price round From.
	StartConfig *index.Config
}

// RunPolicySpan drives rounds span.From..span.To of Algorithm 2's
// protocol. Each round it (1) asks the policy for a configuration given
// only the previously executed workload, (2) diffs it against the
// current configuration and prices the index creations, (3) executes
// the round's workload under it, (4) prices the index maintenance of
// the round's update statements (HTAP regime only), and (5) feeds the
// true execution statistics, creation costs and — for update-aware
// policies — maintenance charges back to the policy. The per-round
// recommendation / creation / execution / maintenance breakdown is
// exactly what every figure and table of the evaluation reports.
//
// Unlike RunPolicy, the span driver does NOT close the policy: a
// resumable policy outlives any one span (checkpoint, restore, resume),
// so its owner decides when the run truly ends. A restored policy
// resumed over the remaining span produces RoundResults byte-identical
// to the uninterrupted run's — the checkpoint contract the round-trip
// property tests pin for every registered policy.
func (e *Environment) RunPolicySpan(p policy.Policy, span Span) (*RunResult, error) {
	from, to := span.From, span.To
	if from <= 0 {
		from = 1
	}
	if to <= 0 {
		to = e.Seq.Rounds()
	}
	if from > to {
		return nil, fmt.Errorf("env: span %d..%d is empty", from, to)
	}
	res := &RunResult{
		Benchmark: e.Opts.Benchmark,
		Regime:    e.Opts.Regime,
		Tuner:     TunerKind(p.Name()),
	}
	hasUpdates := e.HasUpdates()
	cfg := span.StartConfig
	if cfg == nil {
		cfg = index.NewConfig()
	}
	var lastWorkload []*query.Query
	if from > 1 {
		lastWorkload = e.Seq.Round(from - 1)
	}
	// Span-scoped cost-accounting scratch: the stats slice and the
	// per-index second maps are cleared and refilled every round instead
	// of reallocated, which is safe because Observe/ObserveUpdates only
	// borrow their arguments for the call (see policy.Policy). The
	// scratch is local to the span, so concurrent spans over one
	// Environment stay independent.
	sc := struct {
		stats     []*engine.ExecStats
		perCreate map[string]float64
		perMaint  map[string]float64
		ids       []string
	}{
		perCreate: map[string]float64{},
		perMaint:  map[string]float64{},
	}
	for r := from; r <= to; r++ {
		rec := p.Recommend(r, lastWorkload)
		next := rec.Config
		if next == nil {
			next = cfg
		}
		createSec := e.creationCostInto(next.Diff(cfg), sc.perCreate)
		cfg = next

		wl := e.Seq.Round(r)
		exec, stats, err := e.executeWorkload(wl, cfg, sc.stats)
		if err != nil {
			return nil, err
		}
		sc.stats = stats
		var updates []query.Update
		var maintSec float64
		if hasUpdates {
			updates = e.UpdatesAt(r)
			var perMaint map[string]float64
			if len(updates) > 0 && cfg.Len() > 0 {
				perMaint = sc.perMaint
				maintSec, sc.ids = e.maintenanceCostInto(updates, cfg, perMaint, sc.ids)
			}
			// Update-aware policies learn from the statements and the
			// charges before shaping the round's rewards in Observe.
			if ua, ok := p.(policy.UpdateAware); ok {
				ua.ObserveUpdates(updates, perMaint)
			}
		}
		p.Observe(stats, sc.perCreate)
		lastWorkload = wl

		res.Rounds = append(res.Rounds, RoundResult{
			Round:          r,
			RecommendSec:   rec.RecommendSec,
			CreateSec:      createSec,
			ExecSec:        exec,
			MaintenanceSec: maintSec,
			NumUpdates:     len(updates),
			NumIndexes:     cfg.Len(),
		})
	}
	return res, nil
}
