package env

import (
	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
)

// Run constructs the named policy from the registry and drives it with
// RunPolicy. Per-strategy knobs are projected from Opts at call time.
func (e *Environment) Run(kind TunerKind) (*RunResult, error) {
	p, err := policy.New(string(kind), e, e.policyParams())
	if err != nil {
		return nil, err
	}
	res, err := e.RunPolicy(p)
	if err != nil {
		return nil, err
	}
	// The requested registry name wins over Policy.Name(): a policy whose
	// Name diverges from its registration must not mislabel result rows.
	res.Tuner = kind
	return res, nil
}

// RunPolicy is the one round-loop driver of Algorithm 2's protocol,
// shared by every tuning strategy. Each round it (1) asks the policy for
// a configuration given only the previously executed workload, (2) diffs
// it against the current configuration and prices the index creations,
// (3) executes the round's workload under it, (4) prices the index
// maintenance of the round's update statements (HTAP regime only), and
// (5) feeds the true execution statistics, creation costs and — for
// update-aware policies — maintenance charges back to the policy. The
// per-round recommendation / creation / execution / maintenance
// breakdown is exactly what every figure and table of the evaluation
// reports.
func (e *Environment) RunPolicy(p policy.Policy) (*RunResult, error) {
	defer p.Close()
	res := &RunResult{
		Benchmark: e.Opts.Benchmark,
		Regime:    e.Opts.Regime,
		Tuner:     TunerKind(p.Name()),
	}
	hasUpdates := e.HasUpdates()
	cfg := index.NewConfig()
	var lastWorkload []*query.Query
	for r := 1; r <= e.Seq.Rounds(); r++ {
		rec := p.Recommend(r, lastWorkload)
		next := rec.Config
		if next == nil {
			next = cfg
		}
		perCreate, createSec := e.CreationCost(next.Diff(cfg))
		cfg = next

		wl := e.Seq.Round(r)
		exec, stats, err := e.ExecuteWorkload(wl, cfg)
		if err != nil {
			return nil, err
		}
		var updates []query.Update
		var maintSec float64
		if hasUpdates {
			updates = e.UpdatesAt(r)
			var perMaint map[string]float64
			perMaint, maintSec = e.MaintenanceCost(updates, cfg)
			// Update-aware policies learn from the statements and the
			// charges before shaping the round's rewards in Observe.
			if ua, ok := p.(policy.UpdateAware); ok {
				ua.ObserveUpdates(updates, perMaint)
			}
		}
		p.Observe(stats, perCreate)
		lastWorkload = wl

		res.Rounds = append(res.Rounds, RoundResult{
			Round:          r,
			RecommendSec:   rec.RecommendSec,
			CreateSec:      createSec,
			ExecSec:        exec,
			MaintenanceSec: maintSec,
			NumUpdates:     len(updates),
			NumIndexes:     cfg.Len(),
		})
	}
	return res, nil
}
