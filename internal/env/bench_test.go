package env

import (
	"testing"
)

// BenchmarkEnvRoundSteadyState measures one full warm round of the
// environment driver — Recommend, diff + creation pricing, workload
// execution under the plan cache, and Observe — after the bandit and the
// optimiser's caches have both settled. This is the end-to-end number
// the per-layer caches (PR 8 tuner arena, PR 10 plan cache) compose
// into: the steady-state simulated round as the fleet and serving loops
// experience it.
func BenchmarkEnvRoundSteadyState(b *testing.B) {
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        Static,
		Rounds:        4,
		ScaleFactor:   10,
		MaxStoredRows: 1500,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := e.NewPolicy(MAB)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	// Warm phase: run the span so the policy converges and the plan
	// cache holds every (query, fingerprint) the steady state revisits.
	if _, err := e.RunPolicySpan(p, Span{}); err != nil {
		b.Fatal(err)
	}
	// Steady state: drive rounds 5..4+N as one span, so each timed round
	// sees the real warm-loop pattern — the policy prices the previous
	// round's already-planned query instances (plan-cache hits) while the
	// fresh round's instances plan cold. Sequencers are pure functions of
	// (seed, round), so rounds past Opts.Rounds are well-defined; ns/op
	// and allocs/op read as per-round costs.
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.RunPolicySpan(p, Span{From: 5, To: 4 + b.N}); err != nil {
		b.Fatal(err)
	}
}
