package env

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
	"dbabandits/internal/workload"
)

func htapEnv(t *testing.T, rounds int, opts workload.HTAPOptions) *Environment {
	t.Helper()
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        HTAP,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        rounds,
		Seed:          7,
		HTAP:          opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMaintenanceCostPerIndexAdditivity pins the accounting identities of
// MaintenanceCost over every update round of an HTAP run: the returned
// total equals the sum of the per-index charges, and the cost of a
// configuration equals the sum of the costs of its indexes priced alone
// (maintenance is per-index work, so it must be exactly additive).
// Indexes on untouched tables and update-free rounds must charge zero.
func TestMaintenanceCostPerIndexAdditivity(t *testing.T) {
	e := htapEnv(t, 10, workload.HTAPOptions{})
	cfg := index.NewConfig()
	cfg.Add(index.New("lineorder", []string{"lo_orderdate"}, nil))
	cfg.Add(index.New("lineorder", []string{"lo_custkey", "lo_orderdate"}, nil))
	cfg.Add(index.New("lineorder", []string{"lo_partkey"}, []string{"lo_revenue"}))
	cfg.Add(index.New("customer", []string{"c_city"}, nil))

	var sawCharge bool
	for r := 1; r <= e.Seq.Rounds(); r++ {
		updates := e.UpdatesAt(r)
		per, total := e.MaintenanceCost(updates, cfg)
		if len(updates) == 0 {
			if total != 0 || len(per) != 0 {
				t.Fatalf("round %d: zero-update round charged %v / %v", r, total, per)
			}
			continue
		}
		// The total is defined as the per-index sum in sorted-id order
		// (deterministic float accumulation); summing that way must
		// reproduce it exactly.
		ids := make([]string, 0, len(per))
		for id := range per {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var sum float64
		for _, id := range ids {
			sum += per[id]
		}
		if sum != total {
			t.Fatalf("round %d: total %v != per-index sum %v", r, total, sum)
		}
		// Per-index additivity, exact in floating point: each index's
		// charge is computed independently, so pricing singleton
		// configurations must reproduce the per map term by term.
		for _, ix := range cfg.All() {
			single := index.NewConfig()
			single.Add(ix)
			perOne, totalOne := e.MaintenanceCost(updates, single)
			if perOne[ix.ID()] != per[ix.ID()] || totalOne != per[ix.ID()] {
				t.Fatalf("round %d: %s priced %v alone vs %v in the set",
					r, ix.ID(), totalOne, per[ix.ID()])
			}
		}
		// The customer dimension is never a fact table, so its index
		// must never pay.
		for id, sec := range per {
			if sec > 0 {
				sawCharge = true
			}
			if id == "customer(c_city)" && sec != 0 {
				t.Fatalf("round %d: dimension-table index charged %v", r, sec)
			}
		}
	}
	if !sawCharge {
		t.Fatal("no update round charged any index over 10 rounds")
	}
	if _, total := e.MaintenanceCost(e.UpdatesAt(2), index.NewConfig()); total != 0 {
		t.Fatal("empty configuration charged maintenance")
	}
}

// TestMaintenanceCostMatchesCostModel recomputes one round's charges
// from first principles — per statement, per touched index, through
// engine.IndexWriteSec — and requires exact agreement with
// MaintenanceCost.
func TestMaintenanceCostMatchesCostModel(t *testing.T) {
	e := htapEnv(t, 4, workload.HTAPOptions{})
	cfg := index.NewConfig()
	cfg.Add(index.New("lineorder", []string{"lo_orderdate"}, nil))
	cfg.Add(index.New("lineorder", []string{"lo_suppkey"}, nil))
	updates := e.UpdatesAt(2)
	if len(updates) == 0 {
		t.Fatal("round 2 must carry updates under the default cadence")
	}
	per, total := e.MaintenanceCost(updates, cfg)

	want := map[string]float64{}
	for _, u := range updates {
		meta, ok := e.Schema.Table(u.Table)
		if !ok {
			continue
		}
		for _, ix := range cfg.OnTable(u.Table) {
			if !u.Touches(ix.AllColumns()) {
				continue
			}
			entries := u.Rows
			if u.Kind == query.UpdateModify {
				entries *= 2
			}
			want[ix.ID()] += e.CM.IndexWriteSec(entries, float64(ix.EntryWidthBytes(meta)), e.CM.PagesOf(ix.SizeBytes(meta)))
		}
	}
	ids := make([]string, 0, len(want))
	for id := range want {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var wantTotal float64
	for _, id := range ids {
		wantTotal += want[id]
	}
	if total != wantTotal {
		t.Fatalf("total = %v, want %v", total, wantTotal)
	}
	for id, sec := range want {
		if per[id] != sec {
			t.Fatalf("%s = %v, want %v", id, per[id], sec)
		}
	}
}

// TestRunPolicyChargesMaintenanceExactly replays a scripted run's
// configuration trajectory outside the driver and checks that every
// round's recorded MaintenanceSec equals an independent MaintenanceCost
// computation — i.e. the driver charges each round exactly the sum over
// the held indexes of that round's write costs, nothing more.
func TestRunPolicyChargesMaintenanceExactly(t *testing.T) {
	e := htapEnv(t, 8, workload.HTAPOptions{})
	ix := index.New("lineorder", []string{"lo_orderdate"}, nil)
	p := &scriptedPolicy{env: e, ix: ix}
	res, err := e.RunPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	cfgByRound := func(r int) *index.Config {
		cfg := index.NewConfig()
		if r >= 2 { // the script materialises ix in round 2 and holds it
			cfg.Add(ix)
		}
		return cfg
	}
	var total float64
	for _, rr := range res.Rounds {
		_, want := e.MaintenanceCost(e.UpdatesAt(rr.Round), cfgByRound(rr.Round))
		if rr.MaintenanceSec != want {
			t.Fatalf("round %d: charged %v, want %v", rr.Round, rr.MaintenanceSec, want)
		}
		if len(e.UpdatesAt(rr.Round)) != rr.NumUpdates {
			t.Fatalf("round %d: NumUpdates %d != sequencer's %d",
				rr.Round, rr.NumUpdates, len(e.UpdatesAt(rr.Round)))
		}
		total += rr.MaintenanceSec
	}
	if total <= 0 {
		t.Fatal("holding an index on the fact table must accrue maintenance")
	}
	if got := res.MaintenanceTotal(); math.Abs(got-total) > 1e-12 {
		t.Fatalf("MaintenanceTotal %v != per-round sum %v", got, total)
	}
	rec, create, exec, grand := res.Totals()
	if grand != rec+create+exec+res.MaintenanceTotal() {
		t.Fatalf("Totals' grand total %v does not include maintenance", grand)
	}
}

// TestHTAPWithoutUpdatesIsBitIdenticalToStaticGolden is the zero-update
// reduction property: an HTAP environment with updates disabled must
// reproduce the analytical reward stream EXACTLY — its per-round results
// are compared bit for bit against the pre-HTAP static golden fixtures
// (captured before this regime existed). Any leak of the update path
// into analytical accounting (an extra context dimension, a spurious
// charge, a perturbed RNG draw) breaks byte equality here.
func TestHTAPWithoutUpdatesIsBitIdenticalToStaticGolden(t *testing.T) {
	for _, kind := range []TunerKind{NoIndex, PDTool, MAB} {
		e := htapEnv(t, 5, workload.HTAPOptions{UpdateEvery: -1})
		p, err := policy.New(string(kind), e, e.policyParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunPolicy(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join("testdata", "golden_"+string(kind)+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var golden RunResult
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(golden.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: zero-update HTAP rounds diverge from the pre-change static golden\n got: %s\nwant: %s", kind, got, want)
		}
	}
}

// TestMABBeatsRandomOnStaticTPCDS pins the sanity floor the random
// control exists for: on the static TPC-DS workload the bandit must
// finish with a cheaper total than a random configuration draw.
func TestMABBeatsRandomOnStaticTPCDS(t *testing.T) {
	e, err := New(Options{
		Benchmark:     "tpcds",
		Regime:        Static,
		ScaleFactor:   10,
		MaxStoredRows: 1500,
		Rounds:        6,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := e.Run(RandomConfig)
	if err != nil {
		t.Fatal(err)
	}
	mab, err := e.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, rndTotal := rnd.Totals()
	_, _, _, mabTotal := mab.Totals()
	if mabTotal >= rndTotal {
		t.Fatalf("MAB total %v not better than the random control's %v", mabTotal, rndTotal)
	}
	if mab.FinalRoundExecSec() >= rnd.FinalRoundExecSec() {
		t.Fatalf("MAB final round %v not better than the random control's %v",
			mab.FinalRoundExecSec(), rnd.FinalRoundExecSec())
	}
}
