package env

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dbabandits/internal/linalg"
	"dbabandits/internal/policy"
)

// runGoldenFixture drives one golden-harness run (the exact environment
// every committed fixture was captured from) under the given policy,
// ridge backend, and scoring worker count, returning the marshalled
// RunResult bytes.
func runGoldenFixture(t *testing.T, regime Regime, rounds int, name, backend string, workers int) []byte {
	t.Helper()
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        regime,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        rounds,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Opts.DDQNSeed = 7
	e.Opts.RandomSeed = 7
	e.Opts.MABOptions.RidgeBackend = backend
	e.Opts.MABOptions.ScoreWorkers = workers
	p, err := policy.New(name, e, e.policyParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPolicy(p)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", regime, name, workers, err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(got, '\n')
}

// TestParallelScoringReproducesGoldens is the determinism pin for the
// parallel arm-scoring path: every committed golden fixture must be
// reproduced byte for byte with scoring fanned across worker pools of
// every tested size. The MAB fixtures — the only policies that score
// arms through C2UCB — run at workers 1, 2, 4 and 7 on both ridge
// backends (7 deliberately does not divide any candidate set evenly).
// Byte-identical RunResults mean every round picked the identical arm
// sequence: parallelism changed scheduling, never bytes.
func TestParallelScoringReproducesGoldens(t *testing.T) {
	cases := []struct {
		regime  Regime
		rounds  int
		fixture string
	}{
		{Static, 5, "golden_mab.json"},
		{Shifting, 8, "golden_shifting_mab.json"},
		{Random, 9, "golden_random_mab.json"},
		{HTAP, 6, "golden_htap_mab.json"},
	}
	for _, c := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", c.fixture))
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []string{linalg.BackendSM, linalg.BackendChol} {
			for _, workers := range []int{1, 2, 4, 7} {
				got := runGoldenFixture(t, c.regime, c.rounds, "mab", backend, workers)
				if !bytes.Equal(got, want) {
					t.Errorf("%s backend=%s workers=%d: RunResult diverged from %s",
						c.regime, backend, workers, c.fixture)
				}
			}
		}
	}
}

// TestParallelScoringInertForNonMABGoldens covers the rest of the
// committed fixture set: policies that never construct a bandit must be
// bit-for-bit indifferent to the scoring worker knob. One elevated
// setting suffices — the option can only reach a policy through
// policyParams, and these policies have no scoring pool to hand it to;
// this pins that the plumbing doesn't accidentally grow one.
func TestParallelScoringInertForNonMABGoldens(t *testing.T) {
	cases := []struct {
		regime Regime
		rounds int
		prefix string
		tuners []string
	}{
		{Static, 5, "", []string{"noindex", "pdtool", "ddqn", "ddqn-sc"}},
		{Shifting, 8, "shifting_", []string{"noindex", "pdtool"}},
		{Random, 9, "random_", []string{"noindex", "pdtool"}},
	}
	for _, c := range cases {
		for _, name := range c.tuners {
			fixture := "golden_" + c.prefix + name + ".json"
			want, err := os.ReadFile(filepath.Join("testdata", fixture))
			if err != nil {
				t.Fatal(err)
			}
			got := runGoldenFixture(t, c.regime, c.rounds, name, "", 4)
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s workers=4: RunResult diverged from %s", c.regime, name, fixture)
			}
		}
	}
	// The HTAP fixture set covers every registered policy; mab has its
	// own multi-worker sweep above.
	for _, name := range htapGoldenPolicies {
		if name == "mab" {
			continue
		}
		fixture := "golden_htap_" + name + ".json"
		want, err := os.ReadFile(filepath.Join("testdata", fixture))
		if err != nil {
			t.Fatal(err)
		}
		got := runGoldenFixture(t, HTAP, 6, name, "", 4)
		if !bytes.Equal(got, want) {
			t.Errorf("htap/%s workers=4: RunResult diverged from %s", name, fixture)
		}
	}
}
