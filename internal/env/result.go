package env

// TunerKind names a tuning strategy (a policy-registry name).
type TunerKind string

// The four strategies of the paper's evaluation (plus the single-column
// DDQN variant of Figure 8, the online what-if advisor, and the
// random-configuration sanity control). Any other registered policy name
// is equally valid — these constants exist for the seed comparisons.
const (
	NoIndex      TunerKind = "noindex"
	PDTool       TunerKind = "pdtool"
	MAB          TunerKind = "mab"
	DDQN         TunerKind = "ddqn"
	DDQNSC       TunerKind = "ddqn-sc"
	Advisor      TunerKind = "advisor"
	RandomConfig TunerKind = "random"
)

// RoundResult is one round's breakdown. The HTAP-only fields marshal with
// omitempty so analytical RunResult JSON — including the pre-refactor
// golden fixtures — stays byte-identical.
type RoundResult struct {
	Round        int
	RecommendSec float64
	CreateSec    float64
	ExecSec      float64
	// MaintenanceSec is the index maintenance charged by the round's
	// update statements (HTAP regime; 0 on analytical rounds).
	MaintenanceSec float64 `json:",omitempty"`
	// NumUpdates counts the round's update statements.
	NumUpdates int `json:",omitempty"`
	NumIndexes int
}

// TotalSec is the round's end-to-end time.
func (r RoundResult) TotalSec() float64 {
	return r.RecommendSec + r.CreateSec + r.ExecSec + r.MaintenanceSec
}

// RunResult aggregates an experiment run.
type RunResult struct {
	Benchmark string
	Regime    Regime
	Tuner     TunerKind
	Rounds    []RoundResult
}

// Totals returns the summed breakdown. total includes maintenance (zero
// outside the HTAP regime); MaintenanceTotal reports it separately.
func (r *RunResult) Totals() (rec, create, exec, total float64) {
	var maint float64
	for _, rr := range r.Rounds {
		rec += rr.RecommendSec
		create += rr.CreateSec
		exec += rr.ExecSec
		maint += rr.MaintenanceSec
	}
	return rec, create, exec, rec + create + exec + maint
}

// MaintenanceTotal sums the per-round index maintenance charges.
func (r *RunResult) MaintenanceTotal() float64 {
	var maint float64
	for _, rr := range r.Rounds {
		maint += rr.MaintenanceSec
	}
	return maint
}

// FinalRoundExecSec returns the last round's execution time (the paper's
// "best search strategy" comparison).
func (r *RunResult) FinalRoundExecSec() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].ExecSec
}
