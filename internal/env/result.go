package env

// TunerKind names a tuning strategy (a policy-registry name).
type TunerKind string

// The four strategies of the paper's evaluation (plus the single-column
// DDQN variant of Figure 8). Any other registered policy name is equally
// valid — these constants exist for the seed comparisons.
const (
	NoIndex TunerKind = "noindex"
	PDTool  TunerKind = "pdtool"
	MAB     TunerKind = "mab"
	DDQN    TunerKind = "ddqn"
	DDQNSC  TunerKind = "ddqn-sc"
)

// RoundResult is one round's breakdown.
type RoundResult struct {
	Round        int
	RecommendSec float64
	CreateSec    float64
	ExecSec      float64
	NumIndexes   int
}

// TotalSec is the round's end-to-end time.
func (r RoundResult) TotalSec() float64 { return r.RecommendSec + r.CreateSec + r.ExecSec }

// RunResult aggregates an experiment run.
type RunResult struct {
	Benchmark string
	Regime    Regime
	Tuner     TunerKind
	Rounds    []RoundResult
}

// Totals returns the summed breakdown.
func (r *RunResult) Totals() (rec, create, exec, total float64) {
	for _, rr := range r.Rounds {
		rec += rr.RecommendSec
		create += rr.CreateSec
		exec += rr.ExecSec
	}
	return rec, create, exec, rec + create + exec
}

// FinalRoundExecSec returns the last round's execution time (the paper's
// "best search strategy" comparison).
func (r *RunResult) FinalRoundExecSec() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].ExecSec
}
