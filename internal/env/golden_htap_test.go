package env

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbabandits/internal/policy"
)

// htapGoldenPolicies snapshots the registry before any test runs: the
// policy package's init-time registrations are complete once this
// package's variables initialise, while test-time registrations (e.g.
// run_test.go's "keep-empty") happen later and are deliberately outside
// the golden harness.
var htapGoldenPolicies = policy.Names()

// htapGoldenEnv is the fixed-seed small HTAP environment every golden
// fixture was captured from: SSB with update-heavy rounds every second
// round against the lineorder fact table.
func htapGoldenEnv(t *testing.T) *Environment {
	t.Helper()
	e, err := New(Options{
		Benchmark:     "ssb",
		Regime:        HTAP,
		ScaleFactor:   10,
		MaxStoredRows: 2000,
		Rounds:        6,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Opts.DDQNSeed = 7
	e.Opts.RandomSeed = 7
	return e
}

// TestHTAPGoldensForAllRegisteredPolicies is the HTAP regression harness:
// EVERY registered policy must have a committed RunResult fixture
// (testdata/golden_htap_<name>.json) and reproduce it byte for byte.
// Registering a new policy therefore fails this test until a fixture is
// captured with -update-golden and reviewed — numeric drift in the
// update/maintenance path of any strategy shows up as a byte diff here,
// mirroring the analytical goldens of
// TestRunPolicyMatchesPreRefactorGoldens.
//
// The registry snapshot is taken at package-init time (see
// htapGoldenPolicies), so policies registered by other tests in this
// package at run time don't need fixtures and cannot perturb the
// harness under -shuffle. The fixture directory is cross-checked
// against the snapshot so a stale or orphaned fixture also fails.
func TestHTAPGoldensForAllRegisteredPolicies(t *testing.T) {
	names := htapGoldenPolicies
	want := map[string]bool{}
	for _, name := range names {
		want["golden_htap_"+name+".json"] = true
	}
	if !*updateGolden {
		matches, err := filepath.Glob(filepath.Join("testdata", "golden_htap_*.json"))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if !want[filepath.Base(m)] {
				t.Errorf("orphaned HTAP fixture %s: no policy %q is registered", m,
					strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "golden_htap_"), ".json"))
			}
		}
	}

	for _, name := range names {
		e := htapGoldenEnv(t)
		p, err := policy.New(name, e, e.policyParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunPolicy(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')

		// Round-trip gate: the fixture format must survive
		// unmarshal/remarshal byte-identically, so fixtures stay
		// loadable as inputs (not just comparison blobs).
		var rt RunResult
		if err := json.Unmarshal(got, &rt); err != nil {
			t.Fatalf("%s: fixture does not round-trip: %v", name, err)
		}
		again, err := json.MarshalIndent(&rt, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		again = append(again, '\n')
		if !bytes.Equal(got, again) {
			t.Errorf("%s: RunResult JSON is not byte-stable across a round-trip", name)
		}

		path := filepath.Join("testdata", "golden_htap_"+name+".json")
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing HTAP golden fixture (every registered policy needs one; capture with -update-golden): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: HTAP RunResult diverged from the committed fixture (run with -update-golden only if the change is intended)\n got: %s", name, got)
		}
	}
}

// TestHTAPRunsChargeMaintenance guards against the regime silently
// degenerating to analytical: a policy that holds indexes through
// update-heavy rounds must be charged maintenance, and the no-index
// control must never be.
func TestHTAPRunsChargeMaintenance(t *testing.T) {
	e := htapGoldenEnv(t)
	noIdx, err := e.Run(NoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if noIdx.MaintenanceTotal() != 0 {
		t.Fatalf("noindex charged maintenance %v", noIdx.MaintenanceTotal())
	}
	mab, err := e.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	if mab.MaintenanceTotal() <= 0 {
		t.Fatal("mab holds indexes under updates yet was charged no maintenance")
	}
	for _, rr := range mab.Rounds {
		if rr.NumUpdates == 0 && rr.MaintenanceSec != 0 {
			t.Fatalf("round %d: maintenance charged without updates", rr.Round)
		}
	}
}
