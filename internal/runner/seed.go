package runner

// CellSeed derives a per-cell RNG seed from a sweep's base seed and the
// cell's identity key (e.g. "tpch/static/ddqn/rep3"). The derivation is
// a splittable splitmix64-style hash, so:
//
//   - the same (base, key) pair always yields the same seed, regardless
//     of worker count, scheduling, or which sibling cells exist;
//   - distinct keys yield statistically independent streams even for
//     adjacent base seeds (splitmix64 is a full-avalanche finaliser);
//   - the result is always positive, so it can feed APIs that reserve 0
//     as "unseeded".
func CellSeed(base int64, key string) int64 {
	h := splitmix64(uint64(base))
	for i := 0; i < len(key); i++ {
		h = splitmix64(h ^ uint64(key[i]))
	}
	s := int64(h &^ (1 << 63)) // clear the sign bit
	if s == 0 {
		s = 1
	}
	return s
}

// splitmix64 is the finalising mix of the SplitMix64 generator
// (Steele, Lea & Flood 2014) — a cheap bijective full-avalanche hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
