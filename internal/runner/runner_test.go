package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunOrder checks that results come back in input order even when
// tasks finish in scrambled order.
func TestRunOrder(t *testing.T) {
	const n = 32
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() (int, error) {
			// Later tasks finish first.
			time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
			return i * i, nil
		}
	}
	results := Run(tasks, Options{Parallel: 8})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Errorf("result %d = {Index:%d Value:%d Err:%v}, want {%d %d <nil>}",
				i, r.Index, r.Value, r.Err, i, i*i)
		}
	}
}

// TestRunBoundedConcurrency checks that no more than Parallel tasks run
// at once.
func TestRunBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	tasks := make([]Task[struct{}], 24)
	for i := range tasks {
		tasks[i] = func() (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		}
	}
	Run(tasks, Options{Parallel: limit})
	if got := peak.Load(); got > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", got, limit)
	}
}

// TestRunErrorIsolation checks that failing and panicking tasks are
// reported in place without aborting their siblings.
func TestRunErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task[string]{
		func() (string, error) { return "a", nil },
		func() (string, error) { return "", boom },
		func() (string, error) { panic("kaboom") },
		func() (string, error) { return "d", nil },
	}
	results := Run(tasks, Options{Parallel: 4})
	if results[0].Value != "a" || results[0].Err != nil {
		t.Errorf("task 0 = %+v, want success", results[0])
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("task 1 err = %v, want %v", results[1].Err, boom)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "kaboom") {
		t.Errorf("task 2 err = %v, want panic converted to error", results[2].Err)
	}
	if results[3].Value != "d" || results[3].Err != nil {
		t.Errorf("task 3 = %+v, want success", results[3])
	}

	if err := FirstErr(results); !errors.Is(err, boom) {
		t.Errorf("FirstErr = %v, want %v", err, boom)
	}
	if errs := Errs(results); len(errs) != 2 {
		t.Errorf("Errs = %v, want 2 errors", errs)
	}
}

// TestRunOnDone checks the completion callback: serialised, monotonic
// done counter, one call per task.
func TestRunOnDone(t *testing.T) {
	const n = 16
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = func() (int, error) { return i, nil }
	}
	seen := make(map[int]bool)
	lastDone := 0
	results := Run(tasks, Options{
		Parallel: 4,
		OnDone: func(index, done, total int, err error) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done != lastDone+1 {
				t.Errorf("done = %d after %d, want monotonic +1", done, lastDone)
			}
			lastDone = done
			if seen[index] {
				t.Errorf("index %d reported twice", index)
			}
			seen[index] = true
		},
	})
	if len(seen) != n {
		t.Errorf("OnDone saw %d tasks, want %d", len(seen), n)
	}
	if err := FirstErr(results); err != nil {
		t.Errorf("FirstErr = %v, want nil", err)
	}
}

// TestRunDefaults exercises the edge cases: empty input, zero/negative
// parallelism, more workers than tasks.
func TestRunDefaults(t *testing.T) {
	if got := Run[int](nil, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) = %v, want empty", got)
	}
	tasks := []Task[int]{func() (int, error) { return 7, nil }}
	for _, par := range []int{-1, 0, 1, 100} {
		results := Run(tasks, Options{Parallel: par})
		if len(results) != 1 || results[0].Value != 7 || results[0].Err != nil {
			t.Errorf("Parallel=%d: results = %+v, want single 7", par, results)
		}
	}
}

// TestProgress checks the line format of the Progress reporter.
func TestProgress(t *testing.T) {
	var b strings.Builder
	cb := Progress(&b, []string{"alpha", "beta"})
	cb(0, 1, 12, nil)
	cb(1, 2, 12, errors.New("bad"))
	cb(5, 3, 12, nil) // past the label slice
	want := "[ 1/12] alpha\n[ 2/12] beta: ERROR: bad\n[ 3/12] #5\n"
	if b.String() != want {
		t.Errorf("Progress output:\n%q\nwant:\n%q", b.String(), want)
	}
}

// TestRunDeterministicValues checks the headline guarantee end to end:
// seeded tasks produce identical result slices at any worker count.
func TestRunDeterministicValues(t *testing.T) {
	build := func() []Task[int64] {
		tasks := make([]Task[int64], 20)
		for i := range tasks {
			i := i
			tasks[i] = func() (int64, error) {
				return CellSeed(42, fmt.Sprintf("cell-%d", i)), nil
			}
		}
		return tasks
	}
	serial := Run(build(), Options{Parallel: 1})
	for _, par := range []int{2, 4, 8} {
		got := Run(build(), Options{Parallel: par})
		for i := range serial {
			if got[i].Value != serial[i].Value {
				t.Errorf("Parallel=%d: result %d = %d, want %d",
					par, i, got[i].Value, serial[i].Value)
			}
		}
	}
}
