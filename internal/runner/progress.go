package runner

import (
	"fmt"
	"io"
)

// Progress returns an Options.OnDone callback that writes one line per
// completed task to w, labelling each task with labels[index] (or the
// bare index when labels is short). Run already serialises OnDone
// invocations, so the returned callback needs no locking of its own.
//
// Lines look like:
//
//	[ 3/15] tpch/static/mab
//	[ 4/15] ssb/static/pdtool: ERROR: ...
func Progress(w io.Writer, labels []string) func(index, done, total int, err error) {
	return func(index, done, total int, err error) {
		label := fmt.Sprintf("#%d", index)
		if index < len(labels) {
			label = labels[index]
		}
		width := len(fmt.Sprint(total))
		if err != nil {
			fmt.Fprintf(w, "[%*d/%d] %s: ERROR: %v\n", width, done, total, label, err)
			return
		}
		fmt.Fprintf(w, "[%*d/%d] %s\n", width, done, total, label)
	}
}
