package runner

import (
	"strings"
	"sync"
	"testing"
)

// TestShardedPartition pins the partition contract: shards are
// contiguous, in index order, near-equal (sizes differ by at most one,
// larger shards first), cover [0, n) exactly once, and depend only on
// (n, workers) — the property callers lean on to promise byte-identical
// output at any worker count.
func TestShardedPartition(t *testing.T) {
	type span struct{ lo, hi int }
	collect := func(n, workers int) map[int]span {
		var mu sync.Mutex
		got := map[int]span{}
		Sharded(n, workers, func(sh, lo, hi int) {
			mu.Lock()
			got[sh] = span{lo, hi}
			mu.Unlock()
		})
		return got
	}
	for _, tc := range []struct{ n, workers, shards int }{
		{10, 1, 1},
		{10, 3, 3},
		{10, 10, 10},
		{3, 8, 3}, // workers capped at n
		{101, 7, 7},
		{64, 4, 4},
	} {
		got := collect(tc.n, tc.workers)
		if len(got) != tc.shards {
			t.Fatalf("n=%d workers=%d: %d shards, want %d", tc.n, tc.workers, len(got), tc.shards)
		}
		covered := 0
		prevSize := -1
		for sh := 0; sh < len(got); sh++ {
			s, ok := got[sh]
			if !ok {
				t.Fatalf("n=%d workers=%d: shard %d never ran", tc.n, tc.workers, sh)
			}
			if s.lo != covered {
				t.Fatalf("n=%d workers=%d: shard %d starts at %d, want %d (contiguity)", tc.n, tc.workers, sh, s.lo, covered)
			}
			size := s.hi - s.lo
			if size <= 0 {
				t.Fatalf("n=%d workers=%d: shard %d empty", tc.n, tc.workers, sh)
			}
			if prevSize >= 0 && (size > prevSize || prevSize-size > 1) {
				t.Fatalf("n=%d workers=%d: shard sizes %d then %d not near-equal descending", tc.n, tc.workers, prevSize, size)
			}
			prevSize = size
			covered = s.hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d workers=%d: covered [0,%d), want [0,%d)", tc.n, tc.workers, covered, tc.n)
		}
		// Pure function of (n, workers): a rerun partitions identically.
		if again := collect(tc.n, tc.workers); len(again) != len(got) {
			t.Fatalf("n=%d workers=%d: rerun changed shard count", tc.n, tc.workers)
		} else {
			for sh, s := range got {
				if again[sh] != s {
					t.Fatalf("n=%d workers=%d: rerun moved shard %d", tc.n, tc.workers, sh)
				}
			}
		}
	}
}

// TestShardedSerialInline: workers <= 1 must run the single shard
// inline on the calling goroutine. Inline-ness is observable through
// panic propagation: the concurrent path wraps a shard panic in a
// "runner: shard ..." error, the inline path lets it fly raw.
func TestShardedSerialInline(t *testing.T) {
	for _, workers := range []int{-1, 0, 1} {
		calls := 0
		Sharded(5, workers, func(sh, lo, hi int) {
			calls++
			if sh != 0 || lo != 0 || hi != 5 {
				t.Fatalf("workers=%d: inline shard (%d,%d,%d), want (0,0,5)", workers, sh, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("workers=%d: %d calls, want 1", workers, calls)
		}
		func() {
			defer func() {
				if r := recover(); r != "raw" {
					t.Fatalf("workers=%d: inline panic arrived as %v, want the raw value", workers, r)
				}
			}()
			Sharded(5, workers, func(sh, lo, hi int) { panic("raw") })
		}()
	}
}

// TestShardedEmpty: n <= 0 never invokes fn.
func TestShardedEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		Sharded(n, 4, func(sh, lo, hi int) {
			t.Fatalf("n=%d: fn called with (%d,%d,%d)", n, sh, lo, hi)
		})
	}
}

// TestShardedPanicPropagates: a panicking shard must surface on the
// calling goroutine — after every other shard has finished — carrying
// the shard's identity.
func TestShardedPanicPropagates(t *testing.T) {
	var mu sync.Mutex
	finished := 0
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic did not propagate")
		}
		msg, ok := r.(error)
		if !ok || !strings.Contains(msg.Error(), "shard 2") {
			t.Fatalf("panic %v does not identify the failing shard", r)
		}
		mu.Lock()
		defer mu.Unlock()
		if finished != 3 {
			t.Fatalf("%d healthy shards finished before the re-raise, want 3", finished)
		}
	}()
	Sharded(16, 4, func(sh, lo, hi int) {
		if sh == 2 {
			panic("boom")
		}
		mu.Lock()
		finished++
		mu.Unlock()
	})
}
