package runner

import (
	"fmt"
	"sync"
)

// Sharded partitions the index range [0, n) into at most workers
// contiguous, near-equal shards and runs fn(shard, lo, hi) once per
// shard, concurrently across worker goroutines. It is the
// range-partition counterpart of Run, built for hot paths that score a
// slice in place: no channels, no per-item closures, no result
// collection — the caller's fn writes shard [lo, hi) of its own output
// slice directly.
//
// The partition is a pure function of (n, workers): shard sh covers
// n/workers items, the first n%workers shards one extra, in index
// order. Deterministic partitioning is what lets callers promise
// byte-identical output at any worker count — each output index is
// computed by exactly one shard regardless of scheduling.
//
// workers <= 1 (or n small enough to leave one shard) runs fn(0, 0, n)
// inline on the calling goroutine, so the serial case pays no
// synchronisation. Unlike Run, a panicking shard does not yield an
// error value: the panic is captured and re-raised on the calling
// goroutine after every shard finishes, preserving the caller's
// crash-on-bug semantics (a dimension mismatch should fail loudly, not
// vanish into a half-written slice).
func Sharded(n, workers int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	base, rem := n/workers, n%workers
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked error
	)
	lo := 0
	for sh := 0; sh < workers; sh++ {
		hi := lo + base
		if sh < rem {
			hi++
		}
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = fmt.Errorf("runner: shard %d [%d,%d) panicked: %v", sh, lo, hi, r)
					}
					mu.Unlock()
				}
			}()
			fn(sh, lo, hi)
		}(sh, lo, hi)
		lo = hi
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
