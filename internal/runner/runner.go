// Package runner schedules independent units of work — experiment
// "cells" — across a bounded pool of worker goroutines.
//
// The design invariants, in order of importance:
//
//   - Determinism: results are returned in input order regardless of the
//     worker count or completion order, and the seed-derivation helpers
//     (CellSeed) map a cell's identity to its private RNG seed so a cell
//     computes byte-identical results whether it runs alone or beside
//     fifteen siblings.
//   - Isolation: a task that returns an error, or panics, yields a
//     Result with Err set; sibling tasks keep running and the sweep
//     completes.
//   - Bounded concurrency: at most Options.Parallel tasks run at once
//     (default runtime.GOMAXPROCS(0)).
//
// The harness layers its CellSpec/RunCells API on top of this package;
// anything that fans out independent deterministic work can use it
// directly.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Task is one independent unit of work producing a value of type T. A
// task must not share mutable state with its siblings: the pool runs
// tasks concurrently and guarantees nothing about relative order.
type Task[T any] func() (T, error)

// Result pairs one task's outcome with its position in the input slice.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// Options tune one Run call.
type Options struct {
	// Parallel bounds the number of concurrently running tasks;
	// values <= 0 mean runtime.GOMAXPROCS(0).
	Parallel int
	// OnDone, when non-nil, is invoked once per completed task. Calls
	// are serialised (never concurrent) but follow completion order,
	// not input order. done is the number of tasks completed so far,
	// including this one.
	OnDone func(index, done, total int, err error)
}

// Run executes every task and returns one Result per task, in input
// order. Failed tasks (error or panic) are reported in their Result and
// do not abort siblings. Run itself never fails; inspect the results
// with FirstErr or Errs.
func Run[T any](tasks []Task[T], opts Options) []Result[T] {
	results := make([]Result[T], len(tasks))
	if len(tasks) == 0 {
		return results
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	indices := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = runOne(i, tasks[i])
				mu.Lock()
				done++
				if opts.OnDone != nil {
					opts.OnDone(i, done, len(tasks), results[i].Err)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range tasks {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results
}

// runOne executes a single task, converting a panic into an error so
// one bad cell cannot take down the whole sweep.
func runOne[T any](i int, t Task[T]) (res Result[T]) {
	res.Index = i
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: task %d panicked: %v", i, r)
		}
	}()
	res.Value, res.Err = t()
	return res
}

// FirstErr returns the first error in input order, or nil if every task
// succeeded.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Errs collects every non-nil task error in input order.
func Errs[T any](results []Result[T]) []error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errs
}
