package runner

import (
	"fmt"
	"testing"
)

func TestCellSeedDeterministic(t *testing.T) {
	for _, base := range []int64{0, 1, -5, 1 << 40} {
		for _, key := range []string{"", "tpch/static/mab/rep0", "x"} {
			a := CellSeed(base, key)
			b := CellSeed(base, key)
			if a != b {
				t.Errorf("CellSeed(%d, %q) unstable: %d vs %d", base, key, a, b)
			}
			if a <= 0 {
				t.Errorf("CellSeed(%d, %q) = %d, want positive", base, key, a)
			}
		}
	}
}

// TestCellSeedSplits checks that realistic cell keys — and adjacent base
// seeds — map to pairwise-distinct seeds.
func TestCellSeedSplits(t *testing.T) {
	seen := map[int64]string{}
	add := func(seed int64, desc string) {
		if prev, dup := seen[seed]; dup {
			t.Errorf("seed collision: %s and %s both map to %d", prev, desc, seed)
		}
		seen[seed] = desc
	}
	benches := []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"}
	regimes := []string{"static", "shifting", "random"}
	tuners := []string{"noindex", "pdtool", "mab", "ddqn", "ddqn-sc"}
	for _, base := range []int64{1, 2, 3} {
		for _, b := range benches {
			for _, r := range regimes {
				for _, tn := range tuners {
					for rep := 0; rep < 10; rep++ {
						key := fmt.Sprintf("%s/%s/%s/rep%d", b, r, tn, rep)
						add(CellSeed(base, key), fmt.Sprintf("base=%d key=%s", base, key))
					}
				}
			}
		}
	}
}

func TestCellSeedBaseSensitivity(t *testing.T) {
	key := "tpch/static/ddqn/rep0"
	if CellSeed(1, key) == CellSeed(2, key) {
		t.Error("adjacent bases produced identical seeds")
	}
}
