// Package query defines the structured representation of analytical
// queries shared by the execution engine, the optimiser, the bandit tuner
// and the baseline advisors. A query is a conjunctive select-project-join
// block: base-table filter predicates, equi-join predicates, and a payload
// (projected columns). This mirrors what the paper's tuner extracts from
// monitored SQL: "query predicates, payload, etc." (Section IV).
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a filter predicate operator.
type Op int

const (
	OpEq Op = iota
	OpRange
	OpLt
	OpGt
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpRange:
		return "between"
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Predicate is a single-column filter on a base table. For OpEq the bounds
// are Lo==Hi; for OpRange the match is Lo <= v <= Hi; OpLt matches v < Hi;
// OpGt matches v > Lo.
type Predicate struct {
	Table  string
	Column string
	Op     Op
	Lo, Hi int64
}

// Matches reports whether value v satisfies the predicate.
func (p Predicate) Matches(v int64) bool {
	switch p.Op {
	case OpEq:
		return v == p.Lo
	case OpRange:
		return v >= p.Lo && v <= p.Hi
	case OpLt:
		return v < p.Hi
	case OpGt:
		return v > p.Lo
	default:
		return false
	}
}

// IsEquality reports whether the predicate pins the column to one value,
// which makes it usable as an index seek prefix component.
func (p Predicate) IsEquality() bool { return p.Op == OpEq }

// String renders the predicate as SQL-ish text.
func (p Predicate) String() string {
	col := p.Table + "." + p.Column
	switch p.Op {
	case OpEq:
		return fmt.Sprintf("%s = %d", col, p.Lo)
	case OpRange:
		return fmt.Sprintf("%s BETWEEN %d AND %d", col, p.Lo, p.Hi)
	case OpLt:
		return fmt.Sprintf("%s < %d", col, p.Hi)
	case OpGt:
		return fmt.Sprintf("%s > %d", col, p.Lo)
	default:
		return col + " ?"
	}
}

// Join is an equi-join predicate between two tables.
type Join struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// String renders the join as SQL-ish text.
func (j Join) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn)
}

// ColumnRef names a column of a table.
type ColumnRef struct {
	Table, Column string
}

// Query is one conjunctive analytical query instance.
type Query struct {
	// TemplateID identifies the query template this instance was drawn
	// from; the tuner's query store aggregates per template.
	TemplateID int
	// Benchmark names the originating suite (informational).
	Benchmark string

	Tables  []string
	Filters []Predicate
	Joins   []Join
	Payload []ColumnRef

	// AggWidth models the relative cost of the aggregation/sort tail of
	// the query (group-by count etc.); 0 means a bare select.
	AggWidth int

	// sig memoises Signature: the shape never changes after construction,
	// and the query store plus the arm generator both ask per round.
	sig string
}

// FiltersOn returns the filter predicates on one table.
func (q *Query) FiltersOn(table string) []Predicate {
	var out []Predicate
	for _, p := range q.Filters {
		if p.Table == table {
			out = append(out, p)
		}
	}
	return out
}

// JoinColumnsOn returns the set of columns of the given table that appear
// in join predicates, sorted.
func (q *Query) JoinColumnsOn(table string) []string {
	set := map[string]bool{}
	for _, j := range q.Joins {
		if j.LeftTable == table {
			set[j.LeftColumn] = true
		}
		if j.RightTable == table {
			set[j.RightColumn] = true
		}
	}
	return sortedKeys(set)
}

// PredicateColumnsOn returns the filter-predicate columns of the table,
// sorted and de-duplicated. These are the columns from which index arms
// are generated.
func (q *Query) PredicateColumnsOn(table string) []string {
	set := map[string]bool{}
	for _, p := range q.Filters {
		if p.Table == table {
			set[p.Column] = true
		}
	}
	return sortedKeys(set)
}

// PayloadColumnsOn returns the projected columns of the table, sorted.
func (q *Query) PayloadColumnsOn(table string) []string {
	set := map[string]bool{}
	for _, c := range q.Payload {
		if c.Table == table {
			set[c.Column] = true
		}
	}
	return sortedKeys(set)
}

// ReferencesTable reports whether the query touches the table.
func (q *Query) ReferencesTable(table string) bool {
	for _, t := range q.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// SQL renders an equivalent SQL text for logging and examples.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Payload) == 0 {
		b.WriteString("COUNT(*)")
	} else {
		parts := make([]string, len(q.Payload))
		for i, c := range q.Payload {
			parts[i] = c.Table + "." + c.Column
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, p := range q.Filters {
		conds = append(conds, p.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String()
}

// Signature returns a canonical string identifying the query's template
// shape (tables, predicate columns and operators, payload), ignoring the
// literal constants. The query store uses it to recognise returning
// templates even when TemplateID is absent. The string is memoised on
// the query: instances are immutable once instantiated, and the tuner's
// store and arm generator each ask once per round.
func (q *Query) Signature() string {
	if q.sig == "" {
		q.sig = q.computeSignature()
	}
	return q.sig
}

func (q *Query) computeSignature() string {
	var b strings.Builder
	tabs := append([]string(nil), q.Tables...)
	sort.Strings(tabs)
	b.WriteString(strings.Join(tabs, ","))
	b.WriteByte('|')
	preds := make([]string, len(q.Filters))
	for i, p := range q.Filters {
		preds[i] = fmt.Sprintf("%s.%s%s", p.Table, p.Column, p.Op)
	}
	sort.Strings(preds)
	b.WriteString(strings.Join(preds, ","))
	b.WriteByte('|')
	pay := make([]string, len(q.Payload))
	for i, c := range q.Payload {
		pay[i] = c.Table + "." + c.Column
	}
	sort.Strings(pay)
	b.WriteString(strings.Join(pay, ","))
	return b.String()
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
