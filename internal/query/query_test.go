package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleQuery() *Query {
	return &Query{
		TemplateID: 3,
		Benchmark:  "tpch",
		Tables:     []string{"orders", "customer"},
		Filters: []Predicate{
			{Table: "orders", Column: "o_date", Op: OpRange, Lo: 100, Hi: 200},
			{Table: "customer", Column: "c_nation", Op: OpEq, Lo: 7},
		},
		Joins: []Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
		Payload: []ColumnRef{
			{Table: "orders", Column: "o_total"},
			{Table: "customer", Column: "c_name"},
		},
	}
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    int64
		want bool
	}{
		{Predicate{Op: OpEq, Lo: 5, Hi: 5}, 5, true},
		{Predicate{Op: OpEq, Lo: 5, Hi: 5}, 6, false},
		{Predicate{Op: OpRange, Lo: 1, Hi: 10}, 1, true},
		{Predicate{Op: OpRange, Lo: 1, Hi: 10}, 10, true},
		{Predicate{Op: OpRange, Lo: 1, Hi: 10}, 11, false},
		{Predicate{Op: OpLt, Hi: 4}, 3, true},
		{Predicate{Op: OpLt, Hi: 4}, 4, false},
		{Predicate{Op: OpGt, Lo: 4}, 5, true},
		{Predicate{Op: OpGt, Lo: 4}, 4, false},
	}
	for i, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Fatalf("case %d: Matches(%d) = %v", i, c.v, got)
		}
	}
}

func TestIsEquality(t *testing.T) {
	if !(Predicate{Op: OpEq}).IsEquality() {
		t.Fatal("OpEq should be equality")
	}
	if (Predicate{Op: OpRange}).IsEquality() {
		t.Fatal("OpRange should not be equality")
	}
}

func TestColumnAccessors(t *testing.T) {
	q := sampleQuery()
	if got := q.PredicateColumnsOn("orders"); len(got) != 1 || got[0] != "o_date" {
		t.Fatalf("predicate columns = %v", got)
	}
	if got := q.JoinColumnsOn("customer"); len(got) != 1 || got[0] != "c_id" {
		t.Fatalf("join columns = %v", got)
	}
	if got := q.PayloadColumnsOn("orders"); len(got) != 1 || got[0] != "o_total" {
		t.Fatalf("payload columns = %v", got)
	}
	if got := q.FiltersOn("customer"); len(got) != 1 || got[0].Column != "c_nation" {
		t.Fatalf("filters = %v", got)
	}
	if !q.ReferencesTable("orders") || q.ReferencesTable("lineitem") {
		t.Fatal("ReferencesTable wrong")
	}
}

func TestSQLRendering(t *testing.T) {
	q := sampleQuery()
	sql := q.SQL()
	for _, want := range []string{
		"SELECT orders.o_total, customer.c_name",
		"FROM orders, customer",
		"orders.o_custkey = customer.c_id",
		"orders.o_date BETWEEN 100 AND 200",
		"customer.c_nation = 7",
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("SQL %q missing %q", sql, want)
		}
	}
	empty := &Query{Tables: []string{"t"}}
	if !strings.Contains(empty.SQL(), "COUNT(*)") {
		t.Fatalf("empty payload SQL = %q", empty.SQL())
	}
}

func TestSignatureIgnoresConstants(t *testing.T) {
	a := sampleQuery()
	b := sampleQuery()
	b.Filters[0].Lo, b.Filters[0].Hi = 500, 900
	if a.Signature() != b.Signature() {
		t.Fatal("signature should ignore constants")
	}
	c := sampleQuery()
	c.Filters[1].Column = "c_region"
	if a.Signature() == c.Signature() {
		t.Fatal("signature should reflect predicate columns")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpEq: "=", OpRange: "between", OpLt: "<", OpGt: ">"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", int(op), op.String())
		}
	}
}

// Property: range predicates match exactly the closed interval.
func TestQuickRangeMatch(t *testing.T) {
	f := func(lo, hi, v int64) bool {
		p := Predicate{Op: OpRange, Lo: lo, Hi: hi}
		return p.Matches(v) == (v >= lo && v <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: signature is permutation-invariant in tables and filters.
func TestQuickSignaturePermutationInvariant(t *testing.T) {
	f := func(swap bool) bool {
		q := sampleQuery()
		p := sampleQuery()
		if swap {
			p.Tables[0], p.Tables[1] = p.Tables[1], p.Tables[0]
			p.Filters[0], p.Filters[1] = p.Filters[1], p.Filters[0]
			p.Payload[0], p.Payload[1] = p.Payload[1], p.Payload[0]
		}
		return q.Signature() == p.Signature()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
