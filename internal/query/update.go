package query

import (
	"fmt"
	"strings"
)

// UpdateKind distinguishes the two update-shaped statement classes of the
// HTAP regime.
type UpdateKind int

const (
	// UpdateInsert models an INSERT batch: every secondary index on the
	// table must absorb one new entry per row.
	UpdateInsert UpdateKind = iota
	// UpdateModify models an UPDATE batch touching a column subset: only
	// indexes containing a written column pay maintenance (delete + insert
	// of the entry).
	UpdateModify
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "INSERT"
	case UpdateModify:
		return "UPDATE"
	default:
		return fmt.Sprintf("updatekind(%d)", int(k))
	}
}

// Update is one update-shaped statement (an INSERT or UPDATE batch)
// against a base table. The HTAP workload regime interleaves rounds
// carrying these with the purely analytical rounds; the environment
// prices the index maintenance they induce against the round's reward.
// Like queries, updates are structural: the simulator needs only the
// table, the written columns and the affected row volume.
type Update struct {
	// Table is the target base table (a fact table in the shipped
	// sequencer).
	Table string
	// Kind selects INSERT or UPDATE semantics.
	Kind UpdateKind
	// Rows is the logical number of rows the statement writes.
	Rows float64
	// Columns are the written columns of an UPDATE statement; empty for
	// INSERT (which implicitly writes every column).
	Columns []string
}

// Touches reports whether the statement forces maintenance on an index
// with the given key+include column set: INSERTs touch every index on the
// table, UPDATEs only those containing a written column.
func (u Update) Touches(indexColumns []string) bool {
	if u.Kind == UpdateInsert {
		return true
	}
	for _, c := range u.Columns {
		for _, ic := range indexColumns {
			if c == ic {
				return true
			}
		}
	}
	return false
}

// SQL renders an equivalent SQL-ish text for logging and examples.
func (u Update) SQL() string {
	if u.Kind == UpdateInsert {
		return fmt.Sprintf("INSERT INTO %s VALUES ... (%.0f rows)", u.Table, u.Rows)
	}
	cols := make([]string, len(u.Columns))
	for i, c := range u.Columns {
		cols[i] = c + " = ..."
	}
	return fmt.Sprintf("UPDATE %s SET %s WHERE ... (%.0f rows)", u.Table, strings.Join(cols, ", "), u.Rows)
}
