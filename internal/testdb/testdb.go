// Package testdb provides a small shared fixture database used by unit
// and integration tests across the engine, optimiser, tuner and advisor
// packages: a star schema with one fact table carrying uniform, zipfian
// and correlated columns, plus two dimensions.
package testdb

import (
	"dbabandits/internal/catalog"
	"dbabandits/internal/datagen"
	"dbabandits/internal/storage"
)

// Schema returns a fresh copy of the fixture schema (copies matter:
// datagen.Build mutates stats and row counts).
func Schema() *catalog.Schema {
	cust := &catalog.Table{
		Name:     "customer",
		BaseRows: 500,
		PK:       []string{"c_id"},
		Columns: []catalog.Column{
			{Name: "c_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "c_nation", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 24},
			{Name: "c_segment", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 4},
			{Name: "c_name", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 499},
		},
	}
	part := &catalog.Table{
		Name:     "part",
		BaseRows: 400,
		PK:       []string{"p_id"},
		Columns: []catalog.Column{
			{Name: "p_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "p_brand", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 24},
			{Name: "p_size", Kind: catalog.KindInt, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 50},
		},
	}
	orders := &catalog.Table{
		Name:     "orders",
		BaseRows: 8000,
		PK:       []string{"o_id"},
		Columns: []catalog.Column{
			{Name: "o_id", Kind: catalog.KindInt, Dist: catalog.DistSequential},
			{Name: "o_custkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKey, RefTable: "customer", RefCol: "c_id"},
			{Name: "o_partkey", Kind: catalog.KindInt, Dist: catalog.DistForeignKeyZipf, ZipfS: 1.5, RefTable: "part", RefCol: "p_id"},
			{Name: "o_date", Kind: catalog.KindDate, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 2000},
			{Name: "o_status", Kind: catalog.KindInt, Dist: catalog.DistZipf, ZipfS: 2, DomainLo: 0, DomainHi: 49},
			{Name: "o_priority", Kind: catalog.KindInt, Dist: catalog.DistCorrelated, CorrWith: "o_status", DomainLo: 0, DomainHi: 49, CorrNoise: 1},
			{Name: "o_total", Kind: catalog.KindDecimal, Dist: catalog.DistUniform, DomainLo: 1, DomainHi: 100000},
			{Name: "o_comment", Kind: catalog.KindString, Dist: catalog.DistUniform, DomainLo: 0, DomainHi: 9999},
		},
	}
	s := catalog.MustSchema("testdb", cust, part, orders)
	s.FKs = []catalog.ForeignKey{
		{Table: "orders", Column: "o_custkey", RefTable: "customer", RefColumn: "c_id"},
		{Table: "orders", Column: "o_partkey", RefTable: "part", RefColumn: "p_id"},
	}
	return s
}

// Build materialises the fixture at the given seed with default options.
func Build(seed int64) (*catalog.Schema, *storage.Database) {
	s := Schema()
	db := datagen.MustBuild(s, datagen.Options{Seed: seed})
	return s, db
}

// BuildScaled materialises the fixture with a scale factor and stored-row
// cap, exercising the row-multiplier path.
func BuildScaled(seed int64, sf float64, cap int) (*catalog.Schema, *storage.Database) {
	s := Schema()
	db := datagen.MustBuild(s, datagen.Options{Seed: seed, ScaleFactor: sf, MaxStoredRows: cap})
	return s, db
}
