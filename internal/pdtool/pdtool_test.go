package pdtool

import (
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

func trainingWorkload() []*query.Query {
	return []*query.Query{
		{
			TemplateID: 1,
			Tables:     []string{"orders"},
			Filters: []query.Predicate{
				{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 100, Hi: 100},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
		{
			TemplateID: 2,
			Tables:     []string{"orders", "customer"},
			Filters: []query.Predicate{
				{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 7, Hi: 7},
				{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 100, Hi: 160},
			},
			Joins: []query.Join{
				{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
	}
}

func newAdvisor(t *testing.T, opts Options) (*Advisor, *optimizer.Optimizer) {
	t.Helper()
	schema, db := testdb.BuildScaled(1, 1000, 20000)
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = db.DataSizeBytes()
	}
	return New(schema, opt, opts), opt
}

func TestRecommendEmptyWorkload(t *testing.T) {
	a, _ := newAdvisor(t, Options{})
	rec := a.Recommend(nil)
	if rec.Config.Len() != 0 || rec.WhatIfCalls != 0 {
		t.Fatalf("empty workload produced %d indexes, %d calls", rec.Config.Len(), rec.WhatIfCalls)
	}
}

func TestRecommendImprovesEstimatedCost(t *testing.T) {
	a, opt := newAdvisor(t, Options{})
	wl := trainingWorkload()
	rec := a.Recommend(wl)
	if rec.Config.Len() == 0 {
		t.Fatal("no indexes recommended for an indexable workload")
	}
	if rec.EstimatedBenefitSec <= 0 {
		t.Fatalf("estimated benefit = %v", rec.EstimatedBenefitSec)
	}
	base, _, err := opt.WhatIfWorkloadCost(wl, index.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	with, _, err := opt.WhatIfWorkloadCost(wl, rec.Config)
	if err != nil {
		t.Fatal(err)
	}
	if with >= base {
		t.Fatalf("recommended config estimated no better: %v vs %v", with, base)
	}
}

func TestRecommendRespectsBudget(t *testing.T) {
	schema, db := testdb.BuildScaled(1, 1000, 20000)
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)
	budget := db.DataSizeBytes() / 30
	a := New(schema, opt, Options{MemoryBudgetBytes: budget})
	rec := a.Recommend(trainingWorkload())
	if got := rec.Config.SizeBytes(schema); got > budget {
		t.Fatalf("config size %d exceeds budget %d", got, budget)
	}
}

func TestRecommendationTimeGrowsWithWorkload(t *testing.T) {
	a, _ := newAdvisor(t, Options{})
	small := a.Recommend(trainingWorkload()[:1])
	a2, _ := newAdvisor(t, Options{})
	big := a2.Recommend(trainingWorkload())
	if big.WhatIfCalls <= small.WhatIfCalls {
		t.Fatalf("what-if calls did not grow: %d vs %d", small.WhatIfCalls, big.WhatIfCalls)
	}
	if big.RecommendSec <= small.RecommendSec {
		t.Fatalf("recommendation time did not grow: %v vs %v", small.RecommendSec, big.RecommendSec)
	}
}

func TestTimeLimitCapsSearch(t *testing.T) {
	a, _ := newAdvisor(t, Options{TimeLimitSec: 0.3, WhatIfSecPerCall: 0.05})
	rec := a.Recommend(trainingWorkload())
	if rec.RecommendSec > 0.3+1e-9 {
		t.Fatalf("recommendation time %v exceeds limit", rec.RecommendSec)
	}
}

func TestMergeIndexes(t *testing.T) {
	a := index.New("t", []string{"a"}, []string{"p"})
	b := index.New("t", []string{"a", "b"}, []string{"q"})
	m := mergeIndexes(a, b)
	if m == nil {
		t.Fatal("prefix pair did not merge")
	}
	if len(m.Key) != 2 || m.Key[0] != "a" || m.Key[1] != "b" {
		t.Fatalf("merged key = %v", m.Key)
	}
	if !m.HasColumn("p") || !m.HasColumn("q") {
		t.Fatalf("merged includes = %v", m.Include)
	}
	if mergeIndexes(index.New("t", []string{"a"}, nil), index.New("t", []string{"b", "a"}, nil)) != nil {
		t.Fatal("non-prefix pair merged")
	}
}

func TestMergingReducesIndexCountOrKeepsCost(t *testing.T) {
	// With merging disabled the advisor may keep redundant prefix pairs;
	// with it enabled the config should never be larger.
	aOn, _ := newAdvisor(t, Options{})
	aOff, _ := newAdvisor(t, Options{DisableMerging: true})
	wl := trainingWorkload()
	recOn := aOn.Recommend(wl)
	recOff := aOff.Recommend(wl)
	if recOn.Config.Len() > recOff.Config.Len() {
		t.Fatalf("merging increased index count: %d vs %d", recOn.Config.Len(), recOff.Config.Len())
	}
}

func TestRecommendDeterministic(t *testing.T) {
	a1, _ := newAdvisor(t, Options{})
	a2, _ := newAdvisor(t, Options{})
	r1 := a1.Recommend(trainingWorkload())
	r2 := a2.Recommend(trainingWorkload())
	ids1 := r1.Config.IDs()
	ids2 := r2.Config.IDs()
	if len(ids1) != len(ids2) {
		t.Fatalf("nondeterministic: %v vs %v", ids1, ids2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, ids1, ids2)
		}
	}
}
