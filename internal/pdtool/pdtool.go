// Package pdtool implements the offline physical-design-tool baseline —
// the stand-in for the commercial tuning advisor the paper compares
// against. Given a representative training workload, it:
//
//  1. generates candidate indexes per query (the same workload-derived
//     candidate space the MAB uses, for a fair comparison),
//  2. estimates each candidate's benefit through the optimiser's
//     "what-if" interface (its sole source of truth — inheriting every
//     uniformity/independence misestimate),
//  3. greedily fills the memory budget with the best
//     benefit-per-iteration candidates, and
//  4. runs an index-merging pass (the paper notes PDTool employs index
//     merging while the MAB framework does not).
//
// Recommendation time is modelled from the number of what-if optimiser
// calls, which is what dominates commercial advisors' running time and
// reproduces Table I's blow-up on large workloads (TPC-DS random).
package pdtool

import (
	"sort"

	"dbabandits/internal/catalog"
	"dbabandits/internal/index"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
)

// Options configure the advisor.
type Options struct {
	// MemoryBudgetBytes bounds the total size of recommended indexes.
	MemoryBudgetBytes int64
	// MaxGreedyCandidates keeps only the top-K standalone candidates for
	// the combinatorial greedy phase (controls what-if call volume, as
	// commercial tools do with candidate pruning). Default 64.
	MaxGreedyCandidates int
	// MaxIterations bounds greedy additions. Default 16.
	MaxIterations int
	// WhatIfSecPerCall converts optimiser invocations into modelled
	// recommendation seconds. Default 0.05.
	WhatIfSecPerCall float64
	// TimeLimitSec stops the search once the modelled recommendation time
	// exceeds it (0 = unlimited). Mirrors the paper's 1-hour cap for the
	// TPC-DS dynamic random experiment.
	TimeLimitSec float64
	// ArmGen bounds candidate generation (shared with the MAB's).
	ArmGen mab.ArmGenOptions
	// DisableMerging turns off the index-merging pass (ablation).
	DisableMerging bool
}

func (o Options) withDefaults() Options {
	if o.MaxGreedyCandidates <= 0 {
		o.MaxGreedyCandidates = 64
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 16
	}
	if o.WhatIfSecPerCall <= 0 {
		o.WhatIfSecPerCall = 0.05
	}
	return o
}

// Advisor is the offline physical design tool.
type Advisor struct {
	schema *catalog.Schema
	opt    *optimizer.Optimizer
	opts   Options
	gen    *mab.ArmGenerator
}

// New constructs an advisor.
func New(schema *catalog.Schema, opt *optimizer.Optimizer, opts Options) *Advisor {
	opts = opts.withDefaults()
	return &Advisor{
		schema: schema,
		opt:    opt,
		opts:   opts,
		gen:    mab.NewArmGenerator(schema, opts.ArmGen),
	}
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Config *index.Config
	// WhatIfCalls counts optimiser invocations; RecommendSec is the
	// modelled recommendation time derived from them.
	WhatIfCalls  int
	RecommendSec float64
	// EstimatedBenefitSec is the optimiser-estimated workload improvement
	// (which may diverge arbitrarily from reality — that is the point).
	EstimatedBenefitSec float64
}

// Recommend runs the advisor on a training workload.
func (a *Advisor) Recommend(training []*query.Query) *Recommendation {
	rec := &Recommendation{Config: index.NewConfig()}
	if len(training) == 0 {
		return rec
	}
	arms := a.gen.Generate(training)
	if len(arms) == 0 {
		return rec
	}

	// Queries indexed by table for relevance pruning.
	queriesByTable := map[string][]*query.Query{}
	for _, q := range training {
		for _, t := range q.Tables {
			queriesByTable[t] = append(queriesByTable[t], q)
		}
	}
	baseCost := map[*query.Query]float64{}
	for _, q := range training {
		c, err := a.opt.WhatIfCost(q, rec.Config)
		if err != nil {
			continue
		}
		baseCost[q] = c
		rec.WhatIfCalls++
	}

	// Standalone benefit pass: each candidate alone against the queries
	// touching its table.
	type scored struct {
		arm     *mab.Arm
		benefit float64
	}
	var ranked []scored
	for _, arm := range arms {
		if arm.SizeBytes > a.opts.MemoryBudgetBytes {
			continue
		}
		cfg := index.NewConfig()
		cfg.Add(arm.Index)
		var benefit float64
		for _, q := range queriesByTable[arm.Table] {
			c, err := a.opt.WhatIfCost(q, cfg)
			if err != nil {
				continue
			}
			rec.WhatIfCalls++
			benefit += baseCost[q] - c
		}
		if a.overTimeLimit(rec) {
			break
		}
		if benefit > 0 {
			ranked = append(ranked, scored{arm: arm, benefit: benefit})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].benefit != ranked[j].benefit {
			return ranked[i].benefit > ranked[j].benefit
		}
		return ranked[i].arm.ID() < ranked[j].arm.ID()
	})
	if len(ranked) > a.opts.MaxGreedyCandidates {
		ranked = ranked[:a.opts.MaxGreedyCandidates]
	}

	// Combinatorial greedy: add the candidate with the best marginal
	// estimated improvement each iteration.
	curCost := totalCost(baseCost)
	remaining := a.opts.MemoryBudgetBytes
	for iter := 0; iter < a.opts.MaxIterations && !a.overTimeLimit(rec); iter++ {
		bestIdx := -1
		bestCost := curCost
		for i, cand := range ranked {
			if cand.arm == nil || cand.arm.SizeBytes > remaining {
				continue
			}
			trial := rec.Config.Clone()
			trial.Add(cand.arm.Index)
			cost, calls := a.marginalCost(queriesByTable[cand.arm.Table], rec.Config, trial, curCost)
			rec.WhatIfCalls += calls
			if cost < bestCost {
				bestCost = cost
				bestIdx = i
			}
			if a.overTimeLimit(rec) {
				break
			}
		}
		if bestIdx < 0 {
			break
		}
		pick := ranked[bestIdx].arm
		rec.Config.Add(pick.Index)
		remaining -= pick.SizeBytes
		curCost = bestCost
		ranked[bestIdx].arm = nil // consumed
	}

	if !a.opts.DisableMerging {
		a.mergePass(rec, training, &curCost, &remaining)
	}

	rec.EstimatedBenefitSec = totalCost(baseCost) - curCost
	rec.RecommendSec = float64(rec.WhatIfCalls) * a.opts.WhatIfSecPerCall
	if a.opts.TimeLimitSec > 0 && rec.RecommendSec > a.opts.TimeLimitSec {
		rec.RecommendSec = a.opts.TimeLimitSec
	}
	return rec
}

// marginalCost computes the estimated total workload cost after swapping
// prev for trial: only the affected queries (those touching the trial
// addition's table) can change, so cost = curCost + sum over affected of
// (cost under trial - cost under prev).
func (a *Advisor) marginalCost(affected []*query.Query, prev, trial *index.Config, curCost float64) (float64, int) {
	calls := 0
	cost := curCost
	for _, q := range affected {
		oldC, err := a.opt.WhatIfCost(q, prev)
		if err != nil {
			continue
		}
		newC, err := a.opt.WhatIfCost(q, trial)
		if err != nil {
			continue
		}
		calls += 2
		cost += newC - oldC
	}
	return cost, calls
}

// mergePass tries to merge pairs of recommended indexes on the same table
// into a single wider index when the optimiser estimates no regression
// and the merge frees budget (Chaudhuri & Narasayya, "Index merging").
func (a *Advisor) mergePass(rec *Recommendation, training []*query.Query, curCost *float64, remaining *int64) {
	all := rec.Config.All()
	for i := 0; i < len(all); i++ {
		for j := 0; j < len(all); j++ {
			if i == j || all[i] == nil || all[j] == nil {
				continue
			}
			x, y := all[i], all[j]
			if x.Table != y.Table {
				continue
			}
			merged := mergeIndexes(x, y)
			if merged == nil {
				continue
			}
			meta, ok := a.schema.Table(x.Table)
			if !ok {
				continue
			}
			mergedSize := merged.SizeBytes(meta)
			oldSize := x.SizeBytes(meta) + y.SizeBytes(meta)
			if mergedSize >= oldSize {
				continue
			}
			trial := rec.Config.Clone()
			trial.Drop(x.ID())
			trial.Drop(y.ID())
			trial.Add(merged)
			cost := 0.0
			calls := 0
			for _, q := range training {
				c, err := a.opt.WhatIfCost(q, trial)
				if err != nil {
					continue
				}
				cost += c
				calls++
			}
			rec.WhatIfCalls += calls
			if cost <= *curCost*1.01 { // allow tiny estimated regressions for the space win
				rec.Config = trial
				*remaining += oldSize - mergedSize
				*curCost = cost
				all[i], all[j] = merged, nil
			}
			if a.overTimeLimit(rec) {
				return
			}
		}
	}
}

// mergeIndexes combines two indexes when one's key is a prefix of the
// other's: the merged index keeps the longer key and unions the includes.
func mergeIndexes(x, y *index.Index) *index.Index {
	longer, shorter := x, y
	if len(y.Key) > len(x.Key) {
		longer, shorter = y, x
	}
	for i, k := range shorter.Key {
		if longer.Key[i] != k {
			return nil
		}
	}
	inc := append(append([]string(nil), longer.Include...), shorter.Include...)
	return index.New(longer.Table, longer.Key, inc)
}

func (a *Advisor) overTimeLimit(rec *Recommendation) bool {
	if a.opts.TimeLimitSec <= 0 {
		return false
	}
	return float64(rec.WhatIfCalls)*a.opts.WhatIfSecPerCall >= a.opts.TimeLimitSec
}

func totalCost(m map[*query.Query]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
