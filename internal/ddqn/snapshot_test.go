package ddqn

import (
	"bytes"
	"encoding/json"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
)

// driveAgent runs the agent through `rounds` select/observe cycles over
// a fixed candidate set and returns a fingerprint of every selection.
func driveAgent(a *Agent, rounds int) []string {
	dim := a.online.sizes[0]
	var arms []*mab.Arm
	var ctxs []linalg.Vector
	for i := 0; i < 5; i++ {
		arm := &mab.Arm{Index: index.New("t", []string{string(rune('a' + i))}, nil), Table: "t", SizeBytes: 10}
		x := linalg.NewVector(dim)
		x[i%dim] = 1
		x[(i+1)%dim] = 0.5
		arms = append(arms, arm)
		ctxs = append(ctxs, x)
	}
	var picks []string
	for r := 0; r < rounds; r++ {
		sel := a.SelectConfig(arms, ctxs, 35)
		line := ""
		var sc []linalg.Vector
		var rw []float64
		for _, s := range sel {
			line += s.ID() + ";"
			for i, arm := range arms {
				if arm.ID() == s.ID() {
					sc = append(sc, ctxs[i])
					rw = append(rw, float64(10*(i%3)-5))
				}
			}
		}
		picks = append(picks, line)
		a.Observe(sc, rw, ctxs)
	}
	return picks
}

// TestAgentSnapshotRoundTrip snapshots a live agent mid-run (through a
// JSON round-trip), restores it into a freshly constructed agent, and
// requires identical selections every remaining round and identical
// final snapshots — exploration draws, minibatch draws, and network
// weights all resume bit for bit.
func TestAgentSnapshotRoundTrip(t *testing.T) {
	opts := AgentOptions{Seed: 11, BufferSize: 64, BatchSize: 8, TrainStepsPerRound: 2, EpsDecaySamples: 40}
	a := NewAgent(4, opts)
	driveAgent(a, 12)

	raw, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap AgentSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(4, opts)
	if err := b.Restore(&snap); err != nil {
		t.Fatal(err)
	}

	wantPicks := driveAgent(a, 10)
	gotPicks := driveAgent(b, 10)
	for i := range wantPicks {
		if gotPicks[i] != wantPicks[i] {
			t.Fatalf("round %d: restored agent picked %q, want %q", i, gotPicks[i], wantPicks[i])
		}
	}
	ja, _ := json.Marshal(a.Snapshot())
	jb, _ := json.Marshal(b.Snapshot())
	if !bytes.Equal(ja, jb) {
		t.Fatal("final snapshots diverge")
	}
}

// TestAgentSnapshotDedupsNextSets pins the payload optimisation: all
// transitions recorded by one Observe call share one candidate-set
// table entry.
func TestAgentSnapshotDedupsNextSets(t *testing.T) {
	a := NewAgent(3, AgentOptions{Seed: 7, TrainStepsPerRound: 1, BatchSize: 2})
	next := []linalg.Vector{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	// Two rounds, three transitions each, same candidate set each time.
	for r := 0; r < 2; r++ {
		a.Observe([]linalg.Vector{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}}, []float64{1, 2, 3}, next)
	}
	s := a.Snapshot()
	if len(s.Buffer) != 6 {
		t.Fatalf("buffer entries = %d, want 6", len(s.Buffer))
	}
	if len(s.NextSets) != 1 {
		t.Fatalf("candidate-set table has %d entries, want 1 (content-identical sets must dedup)", len(s.NextSets))
	}
	for _, tr := range s.Buffer {
		if tr.NextSet != 0 {
			t.Fatalf("transition references set %d", tr.NextSet)
		}
	}
}

// TestAgentRestoreErrors pins the refusal paths.
func TestAgentRestoreErrors(t *testing.T) {
	a := NewAgent(4, AgentOptions{Seed: 1})
	if err := a.Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	s := NewAgent(6, AgentOptions{Seed: 1}).Snapshot()
	if err := a.Restore(s); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	small := NewAgent(4, AgentOptions{Seed: 1, BufferSize: 4, BatchSize: 2, TrainStepsPerRound: 1})
	big := NewAgent(4, AgentOptions{Seed: 1, BufferSize: 64, BatchSize: 2, TrainStepsPerRound: 1})
	driveAgent(big, 8)
	if err := small.Restore(big.Snapshot()); err == nil {
		t.Fatal("oversized buffer accepted")
	}
}
