package ddqn

import (
	"math"

	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/snaprand"
)

// transition is one replay-buffer entry: the chosen arm's context, the
// observed reward, and the candidate contexts available at the next
// decision point (for the double-Q bootstrap).
type transition struct {
	x    []float64
	r    float64
	next [][]float64
}

// AgentOptions configure the DDQN agent. Defaults follow the paper's
// Section V-C experiment setup.
type AgentOptions struct {
	// Hidden is the hidden layout; default 4 layers of 8 neurons.
	Hidden []int
	// Gamma is the discount factor; default 0.99.
	Gamma float64
	// EpsStart/EpsEnd/EpsDecaySamples define the exponential exploration
	// decay: epsilon starts at EpsStart and reaches EpsEnd at sample
	// EpsDecaySamples. Defaults 1.0 / 0.01 / 2400.
	EpsStart        float64
	EpsEnd          float64
	EpsDecaySamples int
	// LR is the SGD learning rate; default 5e-3.
	LR float64
	// BufferSize / BatchSize / TrainStepsPerRound control replay
	// training; defaults 2048 / 32 / 8.
	BufferSize         int
	BatchSize          int
	TrainStepsPerRound int
	// TargetSyncEvery synchronises the target network every N training
	// rounds; default 5.
	TargetSyncEvery int
	// SingleColumn restricts candidates to single-column indexes (the
	// DDQN-SC variant of Sharma et al. as run in Figure 8).
	SingleColumn bool
	// RewardScale divides rewards before regression to keep targets in a
	// numerically friendly range; default 100 (seconds).
	RewardScale float64
	// Seed drives all randomisation (exploration and initial weights).
	Seed int64
}

func (o AgentOptions) withDefaults() AgentOptions {
	if o.Hidden == nil {
		o.Hidden = []int{8, 8, 8, 8}
	}
	if o.Gamma == 0 {
		o.Gamma = 0.99
	}
	if o.EpsStart == 0 {
		o.EpsStart = 1
	}
	if o.EpsEnd == 0 {
		o.EpsEnd = 0.01
	}
	if o.EpsDecaySamples == 0 {
		o.EpsDecaySamples = 2400
	}
	if o.LR == 0 {
		o.LR = 5e-3
	}
	if o.BufferSize == 0 {
		o.BufferSize = 2048
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.TrainStepsPerRound == 0 {
		o.TrainStepsPerRound = 8
	}
	if o.TargetSyncEvery == 0 {
		o.TargetSyncEvery = 5
	}
	if o.RewardScale == 0 {
		o.RewardScale = 100
	}
	return o
}

// Agent is the DDQN index-selection agent. It consumes the same arms and
// contexts as the MAB tuner; the Q-network maps an arm's context to its
// estimated value, and rounds are selected epsilon-greedily. When the
// agent explores, the whole round's selection is random (as in the
// paper: "if the agent decides to explore, then the choice of the set of
// indices will be randomly made for that entire round").
type Agent struct {
	opts   AgentOptions
	rng    *snaprand.Rand
	online *MLP
	target *MLP
	buffer []transition
	bufPos int
	full   bool

	samples     int // arms chosen so far (epsilon decay clock)
	trainRounds int
}

// NewAgent constructs the agent for the given context dimension.
func NewAgent(dim int, opts AgentOptions) *Agent {
	opts = opts.withDefaults()
	// The draw-counting generator emits the identical sequence to the
	// plain rand.New(rand.NewSource(seed)) used historically, so every
	// pinned fixture is unchanged — and the agent becomes checkpointable.
	rng := snaprand.New(opts.Seed)
	online := NewMLP(rng.Rand, dim, opts.Hidden)
	return &Agent{
		opts:   opts,
		rng:    rng,
		online: online,
		target: online.Clone(),
		buffer: make([]transition, 0, opts.BufferSize),
	}
}

// Epsilon returns the current exploration probability (exponential decay
// from EpsStart to EpsEnd over EpsDecaySamples samples).
func (a *Agent) Epsilon() float64 {
	o := a.opts
	if a.samples >= o.EpsDecaySamples {
		return o.EpsEnd
	}
	rate := math.Log(o.EpsStart/o.EpsEnd) / float64(o.EpsDecaySamples)
	return o.EpsStart * math.Exp(-rate*float64(a.samples))
}

// ParamCount exposes the trainable parameter count.
func (a *Agent) ParamCount() int { return a.online.ParamCount() }

// FilterArms applies the variant's candidate restriction (DDQN-SC keeps
// single-column key-only arms).
func (a *Agent) FilterArms(arms []*mab.Arm, contexts []linalg.Vector) ([]*mab.Arm, []linalg.Vector) {
	if !a.opts.SingleColumn {
		return arms, contexts
	}
	var fa []*mab.Arm
	var fc []linalg.Vector
	for i, arm := range arms {
		if len(arm.Index.Key) == 1 && len(arm.Index.Include) == 0 {
			fa = append(fa, arm)
			fc = append(fc, contexts[i])
		}
	}
	return fa, fc
}

// SelectConfig chooses a set of arms within the memory budget. One call
// corresponds to one round; each arm chosen counts as one sample for the
// epsilon schedule.
func (a *Agent) SelectConfig(arms []*mab.Arm, contexts []linalg.Vector, budgetBytes int64) []*mab.Arm {
	arms, contexts = a.FilterArms(arms, contexts)
	if len(arms) == 0 {
		return nil
	}
	explore := a.rng.Float64() < a.Epsilon()

	type cand struct {
		arm *mab.Arm
		q   float64
	}
	cands := make([]cand, len(arms))
	for i, arm := range arms {
		var q float64
		if explore {
			q = a.rng.Float64()
		} else {
			q = a.online.Forward(contexts[i])
		}
		cands[i] = cand{arm: arm, q: q}
	}
	// Greedy fill by Q (or random priority when exploring).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].q > cands[j-1].q; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var out []*mab.Arm
	remaining := budgetBytes
	for _, c := range cands {
		if !explore && c.q <= 0 {
			break
		}
		if c.arm.SizeBytes > remaining {
			continue
		}
		out = append(out, c.arm)
		remaining -= c.arm.SizeBytes
		a.samples++
		if explore && a.rng.Float64() < 0.5 {
			// Random-length exploration rounds: stop early at random so
			// the agent also explores small configurations.
			break
		}
	}
	return out
}

// Observe records the rewards of the previously selected arms and the
// candidate contexts of the next decision point, then trains on replayed
// minibatches with the double-Q target.
func (a *Agent) Observe(contexts []linalg.Vector, rewards []float64, nextCandidates []linalg.Vector) {
	next := make([][]float64, len(nextCandidates))
	for i, x := range nextCandidates {
		next[i] = x
	}
	for i, x := range contexts {
		tr := transition{x: x, r: rewards[i] / a.opts.RewardScale, next: next}
		if len(a.buffer) < a.opts.BufferSize {
			a.buffer = append(a.buffer, tr)
		} else {
			a.buffer[a.bufPos] = tr
			a.bufPos = (a.bufPos + 1) % a.opts.BufferSize
			a.full = true
		}
	}
	if len(a.buffer) == 0 {
		return
	}
	for step := 0; step < a.opts.TrainStepsPerRound; step++ {
		for b := 0; b < a.opts.BatchSize; b++ {
			tr := a.buffer[a.rng.Intn(len(a.buffer))]
			y := tr.r + a.opts.Gamma*a.doubleQBootstrap(tr.next)
			a.online.TrainStep(tr.x, y, a.opts.LR)
		}
	}
	a.trainRounds++
	if a.trainRounds%a.opts.TargetSyncEvery == 0 {
		a.target.CopyFrom(a.online)
	}
}

// doubleQBootstrap returns Q_target(s', argmax_a Q_online(s', a)) over the
// next decision point's candidates; zero when there are none (terminal).
func (a *Agent) doubleQBootstrap(next [][]float64) float64 {
	if len(next) == 0 {
		return 0
	}
	bestIdx := 0
	bestQ := math.Inf(-1)
	for i, x := range next {
		if q := a.online.Forward(x); q > bestQ {
			bestQ = q
			bestIdx = i
		}
	}
	v := a.target.Forward(next[bestIdx])
	if v < 0 {
		// The agent can always choose an empty configuration, so the
		// continuation value is bounded below by zero.
		return 0
	}
	return v
}
