// Package ddqn implements the deep-RL baseline of Section V-C: a double
// deep-Q-network agent (van Hasselt et al., AAAI'16) over the same arm
// candidates and contexts the MAB sees, with the paper's hyperparameters
// (4 hidden layers of 8 neurons, gamma 0.99, epsilon decaying from 1 to
// 0.01 by the 2400th sample). The network is a small pure-Go MLP trained
// with SGD on the squared Bellman error.
package ddqn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully connected network with ReLU hidden activations and a
// linear scalar output.
type MLP struct {
	sizes   []int // layer sizes including input and output
	weights [][]float64
	biases  [][]float64

	// forward caches (reused across calls to avoid allocation)
	acts [][]float64 // post-activation per layer (acts[0] = input)
	pre  [][]float64 // pre-activation per layer (pre[0] unused)
}

// NewMLP builds a network with the given input size and hidden layout and
// a single linear output, with He-initialised weights.
func NewMLP(rng *rand.Rand, inputDim int, hidden []int) *MLP {
	if inputDim <= 0 {
		panic(fmt.Sprintf("ddqn: input dimension must be positive, got %d", inputDim))
	}
	sizes := append([]int{inputDim}, hidden...)
	sizes = append(sizes, 1)
	m := &MLP{sizes: sizes}
	for l := 1; l < len(sizes); l++ {
		in, out := sizes[l-1], sizes[l]
		w := make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	m.acts = make([][]float64, len(sizes))
	m.pre = make([][]float64, len(sizes))
	for l, s := range sizes {
		m.acts[l] = make([]float64, s)
		m.pre[l] = make([]float64, s)
	}
	return m
}

// Forward computes the scalar output for input x.
func (m *MLP) Forward(x []float64) float64 {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("ddqn: input size %d, want %d", len(x), m.sizes[0]))
	}
	copy(m.acts[0], x)
	last := len(m.sizes) - 1
	for l := 1; l < len(m.sizes); l++ {
		in, out := m.sizes[l-1], m.sizes[l]
		w := m.weights[l-1]
		for j := 0; j < out; j++ {
			sum := m.biases[l-1][j]
			col := w[j*in : (j+1)*in]
			prev := m.acts[l-1]
			for i := 0; i < in; i++ {
				sum += col[i] * prev[i]
			}
			m.pre[l][j] = sum
			if l == last {
				m.acts[l][j] = sum // linear output
			} else {
				m.acts[l][j] = relu(sum)
			}
		}
	}
	return m.acts[last][0]
}

// TrainStep performs one SGD step toward target on input x with the given
// learning rate, returning the squared error before the update.
func (m *MLP) TrainStep(x []float64, target, lr float64) float64 {
	out := m.Forward(x)
	errOut := out - target

	last := len(m.sizes) - 1
	// delta for each layer, starting from the output.
	delta := make([][]float64, len(m.sizes))
	delta[last] = []float64{errOut}
	for l := last - 1; l >= 1; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		d := make([]float64, in)
		for i := 0; i < in; i++ {
			var sum float64
			for j := 0; j < out; j++ {
				sum += w[j*in+i] * delta[l+1][j]
			}
			if m.pre[l][i] <= 0 {
				sum = 0 // ReLU gradient
			}
			d[i] = sum
		}
		delta[l] = d
	}
	for l := 1; l < len(m.sizes); l++ {
		in, out := m.sizes[l-1], m.sizes[l]
		w := m.weights[l-1]
		for j := 0; j < out; j++ {
			dj := delta[l][j]
			if dj == 0 {
				continue
			}
			col := w[j*in : (j+1)*in]
			prev := m.acts[l-1]
			for i := 0; i < in; i++ {
				col[i] -= lr * dj * prev[i]
			}
			m.biases[l-1][j] -= lr * dj
		}
	}
	return errOut * errOut
}

// CopyFrom overwrites this network's parameters with src's (target-network
// synchronisation). The layouts must match.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.weights) != len(src.weights) {
		panic("ddqn: mismatched network layouts")
	}
	for l := range m.weights {
		copy(m.weights[l], src.weights[l])
		copy(m.biases[l], src.biases[l])
	}
}

// Clone returns an independent copy.
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for l := range m.weights {
		c.weights = append(c.weights, append([]float64(nil), m.weights[l]...))
		c.biases = append(c.biases, append([]float64(nil), m.biases[l]...))
	}
	c.acts = make([][]float64, len(c.sizes))
	c.pre = make([][]float64, len(c.sizes))
	for l, s := range c.sizes {
		c.acts[l] = make([]float64, s)
		c.pre[l] = make([]float64, s)
	}
	return c
}

// ParamCount returns the number of trainable parameters — used to
// demonstrate the over-parameterisation argument of Section V-C.
func (m *MLP) ParamCount() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l]) + len(m.biases[l])
	}
	return n
}

func relu(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}
