package ddqn

import (
	"math"
	"math/rand"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
)

func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 3, []int{16, 16})
	f := func(x []float64) float64 { return 2*x[0] - x[1] + 0.5*x[2] }
	for i := 0; i < 20000; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		m.TrainStep(x, f(x), 0.01)
	}
	var worst float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if d := math.Abs(m.Forward(x) - f(x)); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("MLP did not fit linear target: worst error %v", worst)
	}
}

func TestMLPTrainStepReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 2, []int{8, 8})
	x := []float64{0.5, -0.3}
	first := m.TrainStep(x, 3, 0.05)
	var last float64
	for i := 0; i < 200; i++ {
		last = m.TrainStep(x, 3, 0.05)
	}
	if last >= first {
		t.Fatalf("error did not decrease: %v -> %v", first, last)
	}
}

func TestMLPCloneAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 2, []int{4})
	c := m.Clone()
	x := []float64{1, 2}
	if m.Forward(x) != c.Forward(x) {
		t.Fatal("clone diverges")
	}
	for i := 0; i < 50; i++ {
		m.TrainStep(x, 5, 0.1)
	}
	if m.Forward(x) == c.Forward(x) {
		t.Fatal("clone not independent")
	}
	c.CopyFrom(m)
	if m.Forward(x) != c.Forward(x) {
		t.Fatal("CopyFrom did not synchronise")
	}
}

func TestMLPParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 3 -> 8 -> 8 -> 1: (3*8+8) + (8*8+8) + (8*1+1) = 32+72+9 = 113
	m := NewMLP(rng, 3, []int{8, 8})
	if got := m.ParamCount(); got != 113 {
		t.Fatalf("param count = %d, want 113", got)
	}
}

func TestMLPPanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 2, []int{4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input size")
		}
	}()
	m.Forward([]float64{1})
}

func TestEpsilonDecay(t *testing.T) {
	a := NewAgent(4, AgentOptions{Seed: 1})
	if e := a.Epsilon(); math.Abs(e-1) > 1e-9 {
		t.Fatalf("initial epsilon = %v", e)
	}
	a.samples = 2400
	if e := a.Epsilon(); math.Abs(e-0.01) > 1e-9 {
		t.Fatalf("decayed epsilon = %v", e)
	}
	a.samples = 1200
	mid := a.Epsilon()
	if mid <= 0.01 || mid >= 1 {
		t.Fatalf("mid-decay epsilon = %v", mid)
	}
}

func mkArmCtx(dim int, col string, size int64, single bool) (*mab.Arm, linalg.Vector) {
	key := []string{col}
	if !single {
		key = append(key, col+"_2")
	}
	arm := &mab.Arm{Index: index.New("t", key, nil), Table: "t", SizeBytes: size}
	x := linalg.NewVector(dim)
	x[0] = 1
	return arm, x
}

func TestSelectConfigRespectsBudget(t *testing.T) {
	a := NewAgent(4, AgentOptions{Seed: 2})
	var arms []*mab.Arm
	var ctxs []linalg.Vector
	for i := 0; i < 6; i++ {
		arm, x := mkArmCtx(4, string(rune('a'+i)), 40, true)
		arms = append(arms, arm)
		ctxs = append(ctxs, x)
	}
	for trial := 0; trial < 20; trial++ {
		sel := a.SelectConfig(arms, ctxs, 100)
		var total int64
		for _, s := range sel {
			total += s.SizeBytes
		}
		if total > 100 {
			t.Fatalf("budget exceeded: %d", total)
		}
	}
}

func TestSingleColumnVariantFilters(t *testing.T) {
	a := NewAgent(4, AgentOptions{Seed: 3, SingleColumn: true})
	single, xs := mkArmCtx(4, "a", 10, true)
	multi, xm := mkArmCtx(4, "b", 10, false)
	fa, fc := a.FilterArms([]*mab.Arm{single, multi}, []linalg.Vector{xs, xm})
	if len(fa) != 1 || len(fc) != 1 || fa[0].ID() != single.ID() {
		t.Fatalf("filtered arms = %v", fa)
	}
	// The full variant keeps everything.
	b := NewAgent(4, AgentOptions{Seed: 3})
	fb, _ := b.FilterArms([]*mab.Arm{single, multi}, []linalg.Vector{xs, xm})
	if len(fb) != 2 {
		t.Fatalf("unfiltered arms = %d", len(fb))
	}
}

func TestAgentLearnsToPickRewardingArm(t *testing.T) {
	dim := 3
	a := NewAgent(dim, AgentOptions{Seed: 4, EpsDecaySamples: 200, TrainStepsPerRound: 16})
	good := &mab.Arm{Index: index.New("t", []string{"good"}, nil), Table: "t", SizeBytes: 10}
	bad := &mab.Arm{Index: index.New("t", []string{"bad"}, nil), Table: "t", SizeBytes: 10}
	gx := linalg.Vector{1, 0, 0}
	bx := linalg.Vector{0, 1, 0}
	arms := []*mab.Arm{good, bad}
	ctxs := []linalg.Vector{gx, bx}
	for round := 0; round < 120; round++ {
		sel := a.SelectConfig(arms, ctxs, 100)
		var sc []linalg.Vector
		var rw []float64
		for _, s := range sel {
			if s.ID() == good.ID() {
				sc = append(sc, gx)
				rw = append(rw, 50)
			} else {
				sc = append(sc, bx)
				rw = append(rw, -50)
			}
		}
		a.Observe(sc, rw, ctxs)
	}
	// With epsilon decayed, greedy selection should prefer the good arm.
	a.samples = 10000
	picks := 0
	for trial := 0; trial < 20; trial++ {
		sel := a.SelectConfig(arms, ctxs, 10) // budget for one arm
		if len(sel) == 1 && sel[0].ID() == good.ID() {
			picks++
		}
	}
	if picks < 15 {
		t.Fatalf("agent picked the rewarding arm only %d/20 times", picks)
	}
}

func TestObserveEmptyBufferNoop(t *testing.T) {
	a := NewAgent(3, AgentOptions{Seed: 5})
	a.Observe(nil, nil, nil) // must not panic
}

func TestReplayBufferWraps(t *testing.T) {
	a := NewAgent(2, AgentOptions{Seed: 6, BufferSize: 8, BatchSize: 4, TrainStepsPerRound: 1})
	x := linalg.Vector{1, 0}
	for i := 0; i < 30; i++ {
		a.Observe([]linalg.Vector{x}, []float64{1}, nil)
	}
	if len(a.buffer) != 8 {
		t.Fatalf("buffer size = %d, want 8", len(a.buffer))
	}
	if !a.full {
		t.Fatal("buffer should report full")
	}
}
