package ddqn

import (
	"fmt"
	"strings"

	"dbabandits/internal/floatenc"
	"dbabandits/internal/snaprand"
)

// This file is the serialisation seam of the DDQN baseline. The agent's
// state is its two networks, the replay buffer, the RNG position, and
// the schedule counters. The RNG is persisted as (seed, draws) — the
// snaprand wrapper counts source advances, so a restored generator is
// positioned exactly where the snapshotted one was and every subsequent
// exploration decision and minibatch draw is identical.
//
// The replay buffer dominates the payload: every transition stores the
// next decision point's full candidate set, and all transitions from
// one Observe call share the same set. Snapshots deduplicate the sets
// by content, so a buffer holding R rounds of feedback stores each
// round's candidates once instead of once per chosen arm.

// MLPSnapshot is the serialisable parameter state of a network. The
// forward caches are scratch and are rebuilt zeroed on restore.
type MLPSnapshot struct {
	Sizes   []int
	Weights []string // floatenc, one per layer
	Biases  []string
}

// Snapshot captures the network's parameters.
func (m *MLP) Snapshot() *MLPSnapshot {
	s := &MLPSnapshot{Sizes: append([]int(nil), m.sizes...)}
	for l := range m.weights {
		s.Weights = append(s.Weights, floatenc.Encode(m.weights[l]))
		s.Biases = append(s.Biases, floatenc.Encode(m.biases[l]))
	}
	return s
}

// RestoreMLP rebuilds a network from its snapshot.
func RestoreMLP(s *MLPSnapshot) (*MLP, error) {
	if s == nil || len(s.Sizes) < 2 {
		return nil, fmt.Errorf("ddqn: invalid network snapshot")
	}
	if len(s.Weights) != len(s.Sizes)-1 || len(s.Biases) != len(s.Sizes)-1 {
		return nil, fmt.Errorf("ddqn: network snapshot has %d weight layers for %d sizes", len(s.Weights), len(s.Sizes))
	}
	m := &MLP{sizes: append([]int(nil), s.Sizes...)}
	for l := 1; l < len(s.Sizes); l++ {
		in, out := s.Sizes[l-1], s.Sizes[l]
		w, err := floatenc.DecodeLen(s.Weights[l-1], in*out)
		if err != nil {
			return nil, fmt.Errorf("ddqn: network layer %d weights: %w", l, err)
		}
		b, err := floatenc.DecodeLen(s.Biases[l-1], out)
		if err != nil {
			return nil, fmt.Errorf("ddqn: network layer %d biases: %w", l, err)
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
	}
	m.acts = make([][]float64, len(m.sizes))
	m.pre = make([][]float64, len(m.sizes))
	for l, sz := range m.sizes {
		m.acts[l] = make([]float64, sz)
		m.pre[l] = make([]float64, sz)
	}
	return m, nil
}

// TransitionSnapshot is one replay-buffer entry; NextSet indexes the
// deduplicated candidate-set table (-1 for a terminal transition).
type TransitionSnapshot struct {
	X       string
	R       float64
	NextSet int
}

// AgentSnapshot is the serialisable state of the DDQN agent.
type AgentSnapshot struct {
	Seed  int64
	Draws uint64

	Online *MLPSnapshot
	Target *MLPSnapshot

	// NextSets is the deduplicated table of next-decision candidate
	// sets; each entry is the set's contexts, floatenc-encoded.
	NextSets [][]string           `json:",omitempty"`
	Buffer   []TransitionSnapshot `json:",omitempty"`
	BufPos   int
	Full     bool

	Samples     int
	TrainRounds int
}

// Snapshot captures the agent's state.
func (a *Agent) Snapshot() *AgentSnapshot {
	s := &AgentSnapshot{
		Seed:        a.rng.Seed(),
		Draws:       a.rng.Draws(),
		Online:      a.online.Snapshot(),
		Target:      a.target.Snapshot(),
		BufPos:      a.bufPos,
		Full:        a.full,
		Samples:     a.samples,
		TrainRounds: a.trainRounds,
	}
	setIdx := map[string]int{}
	for _, tr := range a.buffer {
		ts := TransitionSnapshot{X: floatenc.Encode(tr.x), R: tr.r, NextSet: -1}
		if len(tr.next) > 0 {
			enc := make([]string, len(tr.next))
			for i, x := range tr.next {
				enc[i] = floatenc.Encode(x)
			}
			key := strings.Join(enc, "|")
			idx, ok := setIdx[key]
			if !ok {
				idx = len(s.NextSets)
				setIdx[key] = idx
				s.NextSets = append(s.NextSets, enc)
			}
			ts.NextSet = idx
		}
		s.Buffer = append(s.Buffer, ts)
	}
	return s
}

// Restore replaces the agent's state with the snapshot's. The agent
// must have been constructed (NewAgent) with the same options the
// snapshotted agent ran under; the networks' input dimensionality must
// match the agent's.
func (a *Agent) Restore(s *AgentSnapshot) error {
	if s == nil || s.Online == nil || s.Target == nil {
		return fmt.Errorf("ddqn: nil agent snapshot")
	}
	online, err := RestoreMLP(s.Online)
	if err != nil {
		return err
	}
	target, err := RestoreMLP(s.Target)
	if err != nil {
		return err
	}
	if online.sizes[0] != a.online.sizes[0] {
		return fmt.Errorf("ddqn: agent snapshot input dimension %d, agent built for %d", online.sizes[0], a.online.sizes[0])
	}
	if s.BufPos < 0 || len(s.Buffer) > a.opts.BufferSize || (len(s.Buffer) > 0 && s.BufPos >= a.opts.BufferSize) {
		return fmt.Errorf("ddqn: agent snapshot buffer (%d entries, pos %d) exceeds configured size %d",
			len(s.Buffer), s.BufPos, a.opts.BufferSize)
	}

	// Decode the deduplicated candidate sets once; transitions that
	// shared a set before the snapshot share the decoded slice again.
	nextSets := make([][][]float64, len(s.NextSets))
	for i, enc := range s.NextSets {
		set := make([][]float64, len(enc))
		for j, e := range enc {
			x, err := floatenc.Decode(e)
			if err != nil {
				return fmt.Errorf("ddqn: agent snapshot candidate set %d: %w", i, err)
			}
			set[j] = x
		}
		nextSets[i] = set
	}
	buffer := make([]transition, 0, a.opts.BufferSize)
	for i, ts := range s.Buffer {
		x, err := floatenc.Decode(ts.X)
		if err != nil {
			return fmt.Errorf("ddqn: agent snapshot transition %d: %w", i, err)
		}
		tr := transition{x: x, r: ts.R}
		if ts.NextSet >= 0 {
			if ts.NextSet >= len(nextSets) {
				return fmt.Errorf("ddqn: agent snapshot transition %d references candidate set %d of %d", i, ts.NextSet, len(nextSets))
			}
			tr.next = nextSets[ts.NextSet]
		}
		buffer = append(buffer, tr)
	}

	a.rng = snaprand.Restore(s.Seed, s.Draws)
	a.online = online
	a.target = target
	a.buffer = buffer
	a.bufPos = s.BufPos
	a.full = s.Full
	a.samples = s.Samples
	a.trainRounds = s.TrainRounds
	return nil
}
