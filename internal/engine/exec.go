package engine

import (
	"fmt"

	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
)

// maxTuples bounds intermediate join results; beyond it the executor
// down-samples the tuple set and tracks the sampling factor so that all
// downstream cardinalities remain unbiased.
const maxTuples = 200000

// ExecStats reports the true (simulated) execution of one query: the
// total time, and the per-operator observations the bandit consumes.
type ExecStats struct {
	TotalSec float64
	// OutRows is the true logical output cardinality.
	OutRows float64

	// TableScanSec is Ctab(t, q, emptyset): the full-scan time each
	// referenced table would cost this query, used as the gain baseline.
	TableScanSec map[string]float64
	// IndexAccessSec is Ctab(t, q, {i}): the actual time charged to each
	// secondary index the plan used, keyed by index id.
	IndexAccessSec map[string]IndexAccess

	// PlanDesc is the executed plan rendered as text.
	PlanDesc string
}

// IndexAccess pairs the table an index belongs to with the access time
// attributed to it (an index is used at most once per plan here).
type IndexAccess struct {
	Table string
	Sec   float64
}

// Execute runs the plan against the database, computing true operator
// times from stored-data cardinalities. It returns an error only for
// malformed plans (unknown tables/columns); optimiser-produced plans are
// always well-formed.
func Execute(db *storage.Database, p *Plan, cm *CostModel) (*ExecStats, error) {
	q := p.Query
	st := &ExecStats{
		TableScanSec:   make(map[string]float64, len(q.Tables)),
		IndexAccessSec: make(map[string]IndexAccess),
		PlanDesc:       p.String(),
	}

	// Baseline full-scan times for every referenced table (analytic).
	for _, tname := range q.Tables {
		tbl, ok := db.Table(tname)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %q", tname)
		}
		st.TableScanSec[tname] = cm.TableScanSec(tbl.Meta, len(q.FiltersOn(tname)))
	}

	// Driver access.
	driver, ok := db.Table(p.Driver.Table)
	if !ok {
		return nil, fmt.Errorf("engine: unknown driver table %q", p.Driver.Table)
	}
	rowids, accessSec, err := executeAccess(db, p.Driver, q, cm)
	if err != nil {
		return nil, err
	}
	st.TotalSec += accessSec
	if ix := p.Driver.Index; ix != nil {
		st.IndexAccessSec[ix.ID()] = IndexAccess{Table: ix.Table, Sec: accessSec}
	}

	tuples := make([][]int32, len(rowids))
	for i, r := range rowids {
		tuples[i] = []int32{r}
	}
	tableSlot := map[string]int{p.Driver.Table: 0}
	logicalFactor := driver.Mult
	sampleFactor := 1.0
	curWidth := 1 // tuple width; tracked separately so empty pipelines keep slot accounting

	for _, step := range p.Steps {
		inner, ok := db.Table(step.InnerTable)
		if !ok {
			return nil, fmt.Errorf("engine: unknown join table %q", step.InnerTable)
		}
		outerSlot, ok := tableSlot[step.OuterTable]
		if !ok {
			return nil, fmt.Errorf("engine: join step on %s references table %s not yet in pipeline", step.InnerTable, step.OuterTable)
		}
		outerTbl := db.MustTable(step.OuterTable)
		outerCol, ok := outerTbl.Column(step.OuterColumn)
		if !ok {
			return nil, fmt.Errorf("engine: unknown join column %s.%s", step.OuterTable, step.OuterColumn)
		}
		innerCol, ok := inner.Column(step.InnerColumn)
		if !ok {
			return nil, fmt.Errorf("engine: unknown join column %s.%s", step.InnerTable, step.InnerColumn)
		}

		innerPreds := q.FiltersOn(step.InnerTable)
		innerIDs, okSel := inner.SelectRows(innerPreds)
		if !okSel {
			return nil, fmt.Errorf("engine: predicate on missing column of %s", step.InnerTable)
		}

		// Hash lookup from inner join-column value to inner row ids;
		// exact in stored space for both algorithms (the difference is
		// only in what the step costs).
		lookup := make(map[int64][]int32, len(innerIDs))
		for _, r := range innerIDs {
			v := innerCol[r]
			lookup[v] = append(lookup[v], r)
		}

		width := curWidth
		var out [][]int32
		for _, tup := range tuples {
			v := outerCol[tup[outerSlot]]
			for _, r := range lookup[v] {
				nt := make([]int32, width+1)
				copy(nt, tup)
				nt[width] = r
				out = append(out, nt)
			}
		}

		probesLogical := float64(len(tuples)) * sampleFactor * logicalFactor
		if inner.Mult > logicalFactor {
			logicalFactor = inner.Mult
		}
		outLogical := float64(len(out)) * sampleFactor * logicalFactor
		innerMatchedLogical := float64(len(innerIDs)) * inner.Mult

		var stepSec float64
		switch step.Algo {
		case JoinHash:
			// Inner side is scanned/accessed once, then hashed.
			_, innerAccessSec, err := executeAccess(db, step.Inner, q, cm)
			if err != nil {
				return nil, err
			}
			stepSec = innerAccessSec + cm.HashJoinSec(innerMatchedLogical, probesLogical)
			if ix := step.Inner.Index; ix != nil {
				st.IndexAccessSec[ix.ID()] = IndexAccess{Table: ix.Table, Sec: innerAccessSec}
			}
		case JoinIndexNL:
			entryWidth, fetch := nlInnerShape(step.Inner, inner, cm)
			fetchRows := 0.0
			if fetch {
				fetchRows = outLogical
			}
			innerPages := cm.PagesOf(inner.Meta.SizeBytes())
			stepSec = cm.NLJoinSec(probesLogical, outLogical, fetchRows, entryWidth, innerPages)
			// Residual inner predicates are evaluated per matched row.
			if n := len(innerPreds); n > 0 {
				stepSec += outLogical * float64(n) * cm.CPUPredSec
			}
			if ix := step.Inner.Index; ix != nil {
				st.IndexAccessSec[ix.ID()] = IndexAccess{Table: ix.Table, Sec: stepSec}
			}
		default:
			return nil, fmt.Errorf("engine: unknown join algorithm %d", step.Algo)
		}
		st.TotalSec += stepSec

		tableSlot[step.InnerTable] = width
		curWidth = width + 1
		tuples = out
		if len(tuples) > maxTuples {
			k := (len(tuples) + maxTuples - 1) / maxTuples
			sampled := tuples[:0]
			for i := 0; i < len(tuples); i += k {
				sampled = append(sampled, tuples[i])
			}
			tuples = sampled
			sampleFactor *= float64(k)
		}
		if len(tuples) == 0 {
			// Join produced nothing; remaining steps cost their inner
			// access only (hash builds still happen in a real system).
			// Keep iterating so every inner access is charged.
			continue
		}
	}

	st.OutRows = float64(len(tuples)) * sampleFactor * logicalFactor
	st.TotalSec += cm.OutputSec(st.OutRows, q.AggWidth)
	return st, nil
}

// executeAccess evaluates a driver-style access path: the matching stored
// row ids after all the table's filter predicates, and the true access
// time. Used for plan drivers and hash-join inner sides.
func executeAccess(db *storage.Database, acc Access, q *query.Query, cm *CostModel) ([]int32, float64, error) {
	tbl, ok := db.Table(acc.Table)
	if !ok {
		return nil, 0, fmt.Errorf("engine: unknown table %q", acc.Table)
	}
	preds := q.FiltersOn(acc.Table)
	rowids, okSel := tbl.SelectRows(preds)
	if !okSel {
		return nil, 0, fmt.Errorf("engine: predicate on missing column of %s", acc.Table)
	}

	switch acc.Kind {
	case AccessSeqScan:
		return rowids, cm.TableScanSec(tbl.Meta, len(preds)), nil

	case AccessIndexSeek, AccessIndexOnly:
		ix := acc.Index
		if ix == nil {
			return nil, 0, fmt.Errorf("engine: %s access on %s without index", acc.Kind, acc.Table)
		}
		entryWidth := float64(ix.EntryWidthBytes(tbl.Meta))
		tablePages := cm.PagesOf(tbl.Meta.SizeBytes())
		seek, residual := splitSeekPreds(ix, preds, acc.EqLen, acc.HasRange)
		if len(seek) == 0 {
			// No usable prefix: full leaf-level scan of the index (only
			// sensible when covering).
			rows := float64(tbl.Meta.RowCount)
			sec := cm.IndexScanSec(rows, entryWidth, len(preds))
			return rowids, sec, nil
		}
		seekStored, okCnt := tbl.CountRows(seek)
		if !okCnt {
			return nil, 0, fmt.Errorf("engine: seek predicate on missing column of %s", acc.Table)
		}
		matchLogical := float64(seekStored) * tbl.Mult
		fetchRows := matchLogical
		if acc.Covering {
			fetchRows = 0
		}
		sec := cm.IndexSeekSec(matchLogical, fetchRows, entryWidth, tablePages)
		if n := len(residual); n > 0 {
			sec += matchLogical * float64(n) * cm.CPUPredSec
		}
		return rowids, sec, nil

	default:
		return nil, 0, fmt.Errorf("engine: unsupported driver access kind %s", acc.Kind)
	}
}

// splitSeekPreds partitions the table's predicates into those served by
// the index seek (equalities on the first eqLen key columns plus at most
// one range on the next key column) and the residual ones evaluated per
// matched row.
func splitSeekPreds(ix *index.Index, preds []query.Predicate, eqLen int, hasRange bool) (seek, residual []query.Predicate) {
	rangeCol := ""
	if hasRange && eqLen < len(ix.Key) {
		rangeCol = ix.Key[eqLen]
	}
	for _, p := range preds {
		pos := ix.KeyPosition(p.Column)
		switch {
		case p.IsEquality() && pos >= 0 && pos < eqLen:
			seek = append(seek, p)
		case !p.IsEquality() && p.Column == rangeCol:
			seek = append(seek, p)
		default:
			residual = append(residual, p)
		}
	}
	return seek, residual
}

// nlInnerShape returns the inner entry width and whether matched rows
// need base-table fetches for an index-nested-loop inner access.
func nlInnerShape(acc Access, inner *storage.Table, cm *CostModel) (entryWidth float64, fetch bool) {
	if acc.Kind == AccessClusteredSeek || acc.Index == nil {
		// Clustered access: the "entries" are full rows, no extra fetch.
		return float64(inner.Meta.RowWidthBytes()), false
	}
	return float64(acc.Index.EntryWidthBytes(inner.Meta)), !acc.Covering
}
