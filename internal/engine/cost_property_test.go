package engine

import (
	"testing"
	"testing/quick"

	"dbabandits/internal/catalog"
)

// Cost-model monotonicity properties: every formula must be
// non-decreasing in its volume arguments — a cost model that rewards
// doing more work would let the optimiser and the bandit learn nonsense.

func bigMeta(rows int64) *catalog.Table {
	t := &catalog.Table{
		Name:     "m",
		BaseRows: rows,
		RowCount: rows,
		Columns: []catalog.Column{
			{Name: "a", Kind: catalog.KindInt},
			{Name: "b", Kind: catalog.KindInt},
		},
	}
	return t
}

func TestQuickTableScanMonotoneInRows(t *testing.T) {
	cm := DefaultCostModel()
	f := func(r1, r2 uint32) bool {
		a, b := int64(r1%10_000_000)+1, int64(r2%10_000_000)+1
		if a > b {
			a, b = b, a
		}
		return cm.TableScanSec(bigMeta(a), 1) <= cm.TableScanSec(bigMeta(b), 1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeekMonotoneInMatches(t *testing.T) {
	cm := DefaultCostModel()
	f := func(m1, m2 uint32) bool {
		a, b := float64(m1%1_000_000), float64(m2%1_000_000)
		if a > b {
			a, b = b, a
		}
		pages := 100000.0
		return cm.IndexSeekSec(a, a, 24, pages) <= cm.IndexSeekSec(b, b, 24, pages)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashJoinMonotone(t *testing.T) {
	cm := DefaultCostModel()
	f := func(b1, p1, b2, p2 uint32) bool {
		lb, lp := float64(b1%5_000_000), float64(p1%5_000_000)
		hb, hp := lb+float64(b2%1000), lp+float64(p2%1000)
		return cm.HashJoinSec(lb, lp) <= cm.HashJoinSec(hb, hp)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNLJoinCapBinds(t *testing.T) {
	cm := DefaultCostModel()
	f := func(probes uint32) bool {
		p := float64(probes%100_000_000) + 1
		innerPages := 5000.0
		v := cm.NLJoinSec(p, 0, 0, 16, innerPages)
		ioCap := cm.NLJoinIOCap * innerPages * cm.SeqPageSec
		cpu := p * cm.CPUTupleSec
		return v <= ioCap+cpu+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBuildCostMonotoneInSize(t *testing.T) {
	cm := DefaultCostModel()
	meta := bigMeta(1_000_000)
	f := func(s1, s2 uint32) bool {
		a, b := int64(s1%1_000_000_000)+1, int64(s2%1_000_000_000)+1
		if a > b {
			a, b = b, a
		}
		return cm.IndexBuildSec(meta, a) <= cm.IndexBuildSec(meta, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOutputMonotoneInAggWidth(t *testing.T) {
	cm := DefaultCostModel()
	f := func(rows uint32, w uint8) bool {
		r := float64(rows % 10_000_000)
		return cm.OutputSec(r, int(w)) <= cm.OutputSec(r, int(w)+1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Covering seeks never cost more than the equivalent fetching seek.
func TestQuickCoveringNeverWorse(t *testing.T) {
	cm := DefaultCostModel()
	f := func(m uint32) bool {
		match := float64(m % 1_000_000)
		pages := 50000.0
		cover := cm.IndexSeekSec(match, 0, 24, pages)
		fetch := cm.IndexSeekSec(match, match, 24, pages)
		return cover <= fetch+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The scan baseline reported by the executor equals the cost model's
// analytic table-scan price: the reward gain baseline is consistent.
func TestScanBaselineConsistent(t *testing.T) {
	cm := DefaultCostModel()
	meta := bigMeta(2_000_000)
	want := cm.TableScanSec(meta, 2)
	got := cm.PagesOf(meta.SizeBytes())*cm.SeqPageSec +
		float64(meta.RowCount)*(cm.CPUTupleSec+2*cm.CPUPredSec)
	if diff := want - got; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("baseline mismatch: %v vs %v", want, got)
	}
}
