// Package engine simulates the execution of analytical query plans
// against the stored databases. It plays the role of the DBMS runtime in
// the paper's setup: given a plan (chosen by the optimiser, possibly
// badly), it computes the plan's *true* elapsed time from genuine
// cardinalities measured on the stored data, and reports the per-operator
// observations (table-scan baselines, per-index access times, index usage)
// that the bandit shapes into rewards.
//
// All times are simulated seconds. The same CostModel formulas are used by
// the optimiser with *estimated* cardinalities and by the executor with
// *true* cardinalities; the paper's central failure mode — optimiser
// misestimates on skewed/correlated data — falls out of that asymmetry.
package engine

import (
	"math"

	"dbabandits/internal/catalog"
)

// CostModel holds the physical cost constants of the simulated system.
// Defaults approximate the paper's testbed: a cold-cache disk system where
// sequential scan streams at a few hundred MB/s and random page reads cost
// milliseconds (10K RPM disks).
type CostModel struct {
	PageBytes int64 // page size for all page-count computations

	SeqPageSec   float64 // sequential page read
	RandPageSec  float64 // random page read (index descend, RID fetch)
	WritePageSec float64 // sequential page write (index build output)

	CPUTupleSec  float64 // per-tuple CPU pass cost
	CPUPredSec   float64 // per-predicate per-tuple evaluation
	HashBuildSec float64 // per build-side tuple
	HashProbeSec float64 // per probe-side tuple
	SortTupleSec float64 // per tuple per log2(n) during index build sort

	// BTreeHeight is the assumed depth of index descends.
	BTreeHeight float64
	// NLJoinIOCap bounds index-nested-loop inner IO at this multiple of a
	// full inner-table scan: after enough probes the buffer pool absorbs
	// repeats. It keeps index-overuse regressions at the severity the
	// paper reports (roughly 5-8x) rather than unbounded.
	NLJoinIOCap float64
}

// DefaultCostModel returns the constants used across the experiments.
func DefaultCostModel() *CostModel {
	return &CostModel{
		PageBytes:    8192,
		SeqPageSec:   30e-6, // ~270 MB/s sequential
		RandPageSec:  2e-3,  // ~2 ms cold random IO
		WritePageSec: 45e-6,
		CPUTupleSec:  120e-9,
		CPUPredSec:   25e-9,
		HashBuildSec: 180e-9,
		HashProbeSec: 110e-9,
		SortTupleSec: 8e-9,
		BTreeHeight:  3,
		NLJoinIOCap:  5,
	}
}

// PagesOf converts a byte size to a page count (at least 1).
func (cm *CostModel) PagesOf(bytes int64) float64 {
	if bytes <= 0 {
		return 1
	}
	return math.Ceil(float64(bytes) / float64(cm.PageBytes))
}

// TableScanSec prices a full scan of the table evaluating nPreds
// predicates per row. rows is the (possibly estimated) logical row count
// flowing through the scan's input, i.e. the full table.
func (cm *CostModel) TableScanSec(meta *catalog.Table, nPreds int) float64 {
	pages := cm.PagesOf(meta.SizeBytes())
	rows := float64(meta.RowCount)
	return pages*cm.SeqPageSec + rows*(cm.CPUTupleSec+float64(nPreds)*cm.CPUPredSec)
}

// IndexSeekSec prices one composite-key seek returning matchRows logical
// rows, of which fetchRows require base-table lookups (0 for covering
// indexes or clustered access). entryWidth is the index entry width in
// bytes; tablePages bounds the fetch IO (a fetch can never read more
// distinct pages than the table has, and repeated reads hit the buffer
// pool — modelled by the same NLJoinIOCap multiple).
func (cm *CostModel) IndexSeekSec(matchRows, fetchRows, entryWidth, tablePages float64) float64 {
	descend := cm.BTreeHeight * cm.RandPageSec
	leafPages := math.Ceil(matchRows * entryWidth / float64(cm.PageBytes))
	if leafPages < 1 {
		leafPages = 1
	}
	leaf := leafPages * cm.SeqPageSec
	fetchIO := fetchRows * cm.RandPageSec
	if cap := cm.NLJoinIOCap * tablePages * cm.SeqPageSec; tablePages > 0 && fetchIO > cap {
		fetchIO = cap
	}
	cpu := matchRows * cm.CPUTupleSec
	return descend + leaf + fetchIO + cpu
}

// IndexScanSec prices a full leaf-level scan of an index with the given
// logical row count and entry width (used when the index covers the query
// but no seek prefix applies).
func (cm *CostModel) IndexScanSec(rows, entryWidth float64, nPreds int) float64 {
	leafPages := math.Ceil(rows * entryWidth * 1.35 / float64(cm.PageBytes))
	if leafPages < 1 {
		leafPages = 1
	}
	return leafPages*cm.SeqPageSec + rows*(cm.CPUTupleSec+float64(nPreds)*cm.CPUPredSec)
}

// HashJoinSec prices building a hash table on buildRows and probing it
// with probeRows (access costs of the inputs are priced separately).
func (cm *CostModel) HashJoinSec(buildRows, probeRows float64) float64 {
	return buildRows*cm.HashBuildSec + probeRows*cm.HashProbeSec
}

// NLJoinSec prices an index-nested-loop join: probeRows index descends
// into the inner index, outRows matched entries, fetchRows base-table
// lookups (0 when the inner access is covering or clustered). IO is
// capped at NLJoinIOCap times a full sequential scan of the inner table —
// beyond that the buffer pool absorbs repeated reads. innerPages is the
// inner table's heap page count.
func (cm *CostModel) NLJoinSec(probeRows, outRows, fetchRows, entryWidth, innerPages float64) float64 {
	io := probeRows*cm.BTreeHeight*cm.RandPageSec + fetchRows*cm.RandPageSec
	leafPages := math.Ceil(outRows * entryWidth / float64(cm.PageBytes))
	io += leafPages * cm.SeqPageSec
	if innerPages > 0 {
		if cap := cm.NLJoinIOCap * innerPages * cm.SeqPageSec; io > cap {
			io = cap
		}
	}
	cpu := (probeRows + outRows) * cm.CPUTupleSec
	return io + cpu
}

// OutputSec prices the aggregation/projection tail over outRows with the
// query's aggregation width.
func (cm *CostModel) OutputSec(outRows float64, aggWidth int) float64 {
	w := 1 + float64(aggWidth)
	return outRows * cm.CPUTupleSec * w
}

// IndexWriteSec prices maintaining one secondary index under a batch of
// rows logical entry writes (the HTAP regime's write amplification): the
// dirtied leaf pages are read, modified and written back, plus per-entry
// CPU. entryWidth is the index leaf entry width in bytes, so wider
// (more-column) indexes amplify every write — exactly the signal that
// lets an update-aware tuner drop high-churn indexes. indexPages is the
// index's total leaf page count; a batch can never dirty more distinct
// pages than the index has.
func (cm *CostModel) IndexWriteSec(rows, entryWidth, indexPages float64) float64 {
	if rows <= 0 {
		return 0
	}
	dirtyPages := math.Ceil(rows * entryWidth * 1.35 / float64(cm.PageBytes))
	if dirtyPages < 1 {
		dirtyPages = 1
	}
	if indexPages > 0 && dirtyPages > indexPages {
		dirtyPages = indexPages
	}
	return dirtyPages*(cm.RandPageSec+cm.WritePageSec) + rows*cm.CPUTupleSec
}

// IndexBuildSec prices materialising an index: scan the heap, sort the
// entries, write the leaf pages.
func (cm *CostModel) IndexBuildSec(meta *catalog.Table, indexBytes int64) float64 {
	heapPages := cm.PagesOf(meta.SizeBytes())
	rows := float64(meta.RowCount)
	logN := math.Log2(rows + 2)
	sortSec := rows * logN * cm.SortTupleSec
	writeSec := cm.PagesOf(indexBytes) * cm.WritePageSec
	return heapPages*cm.SeqPageSec + sortSec + writeSec
}
