package engine

import (
	"math"
	"testing"
	"testing/quick"

	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

func singleTableQuery() *query.Query {
	return &query.Query{
		TemplateID: 1,
		Tables:     []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 200},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
}

func joinQuery() *query.Query {
	return &query.Query{
		TemplateID: 2,
		Tables:     []string{"orders", "customer"},
		Filters: []query.Predicate{
			{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 3, Hi: 3},
		},
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
}

func TestCostModelBasics(t *testing.T) {
	cm := DefaultCostModel()
	if cm.PagesOf(0) != 1 || cm.PagesOf(1) != 1 {
		t.Fatal("PagesOf floor broken")
	}
	if cm.PagesOf(cm.PageBytes+1) != 2 {
		t.Fatal("PagesOf ceil broken")
	}
	schema, _ := testdb.Build(1)
	meta := schema.MustTable("orders")
	s0 := cm.TableScanSec(meta, 0)
	s2 := cm.TableScanSec(meta, 2)
	if s2 <= s0 {
		t.Fatal("more predicates should cost more")
	}
}

func TestIndexSeekCheaperThanScanWhenSelective(t *testing.T) {
	cm := DefaultCostModel()
	// At realistic analytical sizes (millions of rows) a selective seek
	// beats a scan; on toy tables random IO dominates and it should not.
	schema, _ := testdb.BuildScaled(1, 1000, 20000)
	meta := schema.MustTable("orders")
	scan := cm.TableScanSec(meta, 1)
	seek := cm.IndexSeekSec(10, 10, 16, cm.PagesOf(meta.SizeBytes()))
	if seek >= scan {
		t.Fatalf("selective seek (%v) not cheaper than scan (%v)", seek, scan)
	}
	tiny, _ := testdb.Build(1)
	tinyMeta := tiny.MustTable("orders")
	if cm.IndexSeekSec(10, 10, 16, cm.PagesOf(tinyMeta.SizeBytes())) < cm.TableScanSec(tinyMeta, 1) {
		t.Fatal("seek should not beat scanning a sub-megabyte table")
	}
}

func TestIndexSeekFetchCapped(t *testing.T) {
	cm := DefaultCostModel()
	tablePages := 100.0
	// Absurd fetch volume must be capped at NLJoinIOCap x sequential scan.
	capped := cm.IndexSeekSec(10, 1e9, 16, tablePages)
	cap := cm.NLJoinIOCap * tablePages * cm.SeqPageSec
	if got := capped - 10*cm.CPUTupleSec - cm.BTreeHeight*cm.RandPageSec - cm.SeqPageSec; got > cap*1.01 {
		t.Fatalf("fetch IO %v exceeds cap %v", got, cap)
	}
}

func TestNLJoinSecCapped(t *testing.T) {
	cm := DefaultCostModel()
	innerPages := 50.0
	v := cm.NLJoinSec(1e9, 1e3, 0, 16, innerPages)
	ioCap := cm.NLJoinIOCap * innerPages * cm.SeqPageSec
	cpu := (1e9 + 1e3) * cm.CPUTupleSec
	if v > ioCap+cpu+1e-9 {
		t.Fatalf("NL join cost %v exceeds cap %v + cpu %v", v, ioCap, cpu)
	}
}

func TestExecuteSeqScanCountsRows(t *testing.T) {
	_, db := testdb.Build(1)
	q := singleTableQuery()
	plan := &Plan{Query: q, Driver: Access{Table: "orders", Kind: AccessSeqScan}}
	st, err := Execute(db, plan, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	orders := db.MustTable("orders")
	n, _ := orders.CountRows(q.Filters)
	want := float64(n) * orders.Mult
	if math.Abs(st.OutRows-want) > 1e-9 {
		t.Fatalf("OutRows = %v, want %v", st.OutRows, want)
	}
	if st.TotalSec <= 0 {
		t.Fatal("non-positive total time")
	}
	if _, ok := st.TableScanSec["orders"]; !ok {
		t.Fatal("missing table scan baseline")
	}
}

func TestExecuteIndexSeekAttribution(t *testing.T) {
	_, db := testdb.Build(1)
	q := singleTableQuery()
	ix := index.New("orders", []string{"o_date"}, []string{"o_total"})
	plan := &Plan{Query: q, Driver: Access{
		Table: "orders", Kind: AccessIndexOnly, Index: ix, HasRange: true, Covering: true,
	}}
	st, err := Execute(db, plan, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := st.IndexAccessSec[ix.ID()]
	if !ok {
		t.Fatal("index access not attributed")
	}
	if acc.Table != "orders" || acc.Sec <= 0 {
		t.Fatalf("attribution = %+v", acc)
	}
	if acc.Sec != st.TotalSec-DefaultCostModel().OutputSec(st.OutRows, 0) {
		t.Fatalf("driver access %v vs total %v mismatch", acc.Sec, st.TotalSec)
	}
}

func TestCoveringCheaperThanNonCovering(t *testing.T) {
	_, db := testdb.Build(1)
	q := singleTableQuery()
	cm := DefaultCostModel()
	ix := index.New("orders", []string{"o_date"}, []string{"o_total"})
	cover := &Plan{Query: q, Driver: Access{Table: "orders", Kind: AccessIndexOnly, Index: ix, HasRange: true, Covering: true}}
	bare := index.New("orders", []string{"o_date"}, nil)
	fetch := &Plan{Query: q, Driver: Access{Table: "orders", Kind: AccessIndexSeek, Index: bare, HasRange: true, Covering: false}}
	stCover, err := Execute(db, cover, cm)
	if err != nil {
		t.Fatal(err)
	}
	stFetch, err := Execute(db, fetch, cm)
	if err != nil {
		t.Fatal(err)
	}
	if stCover.TotalSec >= stFetch.TotalSec {
		t.Fatalf("covering (%v) not cheaper than fetching (%v)", stCover.TotalSec, stFetch.TotalSec)
	}
}

func TestExecuteHashJoinCardinality(t *testing.T) {
	_, db := testdb.Build(1)
	q := joinQuery()
	plan := &Plan{
		Query:  q,
		Driver: Access{Table: "customer", Kind: AccessSeqScan},
		Steps: []JoinStep{{
			Pred:       q.Joins[0],
			OuterTable: "customer", OuterColumn: "c_id",
			InnerTable: "orders", InnerColumn: "o_custkey",
			Inner: Access{Table: "orders", Kind: AccessSeqScan},
			Algo:  JoinHash,
		}},
	}
	st, err := Execute(db, plan, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Manual join count.
	cust := db.MustTable("customer")
	orders := db.MustTable("orders")
	nation := cust.MustColumn("c_nation")
	cids := cust.MustColumn("c_id")
	sel := map[int64]bool{}
	for r := range nation {
		if nation[r] == 3 {
			sel[cids[r]] = true
		}
	}
	var n int
	for _, ck := range orders.MustColumn("o_custkey") {
		if sel[ck] {
			n++
		}
	}
	want := float64(n) * orders.Mult
	if math.Abs(st.OutRows-want) > 1e-9 {
		t.Fatalf("join OutRows = %v, want %v", st.OutRows, want)
	}
}

func TestExecuteINLMatchesHashCardinality(t *testing.T) {
	_, db := testdb.Build(1)
	q := joinQuery()
	mk := func(algo JoinAlgo, inner Access) *Plan {
		return &Plan{
			Query:  q,
			Driver: Access{Table: "customer", Kind: AccessSeqScan},
			Steps: []JoinStep{{
				Pred:       q.Joins[0],
				OuterTable: "customer", OuterColumn: "c_id",
				InnerTable: "orders", InnerColumn: "o_custkey",
				Inner: inner,
				Algo:  algo,
			}},
		}
	}
	cm := DefaultCostModel()
	hashSt, err := Execute(db, mk(JoinHash, Access{Table: "orders", Kind: AccessSeqScan}), cm)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New("orders", []string{"o_custkey"}, nil)
	nlSt, err := Execute(db, mk(JoinIndexNL, Access{Table: "orders", Kind: AccessIndexSeek, Index: ix, EqLen: 1}), cm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hashSt.OutRows-nlSt.OutRows) > 1e-9 {
		t.Fatalf("algorithms disagree on cardinality: %v vs %v", hashSt.OutRows, nlSt.OutRows)
	}
	if _, ok := nlSt.IndexAccessSec[ix.ID()]; !ok {
		t.Fatal("INL inner index not attributed")
	}
}

func TestExecuteErrors(t *testing.T) {
	_, db := testdb.Build(1)
	cm := DefaultCostModel()
	badTable := &Plan{Query: &query.Query{Tables: []string{"ghost"}}, Driver: Access{Table: "ghost", Kind: AccessSeqScan}}
	if _, err := Execute(db, badTable, cm); err == nil {
		t.Fatal("unknown table accepted")
	}
	q := joinQuery()
	badStep := &Plan{
		Query:  q,
		Driver: Access{Table: "customer", Kind: AccessSeqScan},
		Steps: []JoinStep{{
			OuterTable: "part", OuterColumn: "p_id", // not in pipeline
			InnerTable: "orders", InnerColumn: "o_custkey",
			Inner: Access{Table: "orders", Kind: AccessSeqScan},
			Algo:  JoinHash,
		}},
	}
	if _, err := Execute(db, badStep, cm); err == nil {
		t.Fatal("disconnected step accepted")
	}
	noIx := &Plan{Query: singleTableQuery(), Driver: Access{Table: "orders", Kind: AccessIndexSeek}}
	if _, err := Execute(db, noIx, cm); err == nil {
		t.Fatal("index access without index accepted")
	}
}

func TestSplitSeekPreds(t *testing.T) {
	ix := index.New("orders", []string{"o_custkey", "o_date"}, nil)
	preds := []query.Predicate{
		{Table: "orders", Column: "o_custkey", Op: query.OpEq, Lo: 5, Hi: 5},
		{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 9},
		{Table: "orders", Column: "o_status", Op: query.OpEq, Lo: 1, Hi: 1},
	}
	seek, resid := splitSeekPreds(ix, preds, 1, true)
	if len(seek) != 2 || len(resid) != 1 {
		t.Fatalf("seek=%v resid=%v", seek, resid)
	}
	if resid[0].Column != "o_status" {
		t.Fatalf("residual = %v", resid)
	}
}

func TestPlanHelpers(t *testing.T) {
	q := joinQuery()
	ix := index.New("orders", []string{"o_custkey"}, nil)
	p := &Plan{
		Query:  q,
		Driver: Access{Table: "customer", Kind: AccessSeqScan},
		Steps: []JoinStep{{
			OuterTable: "customer", OuterColumn: "c_id",
			InnerTable: "orders", InnerColumn: "o_custkey",
			Inner: Access{Table: "orders", Kind: AccessIndexSeek, Index: ix, EqLen: 1},
			Algo:  JoinIndexNL,
		}},
	}
	tabs := p.Tables()
	if len(tabs) != 2 || tabs[0] != "customer" || tabs[1] != "orders" {
		t.Fatalf("Tables = %v", tabs)
	}
	used := p.IndexesUsed()
	if len(used) != 1 || used[0].ID() != ix.ID() {
		t.Fatalf("IndexesUsed = %v", used)
	}
	if s := p.String(); s == "" {
		t.Fatal("empty plan string")
	}
	if AccessSeqScan.String() != "SeqScan" || JoinIndexNL.String() != "IndexNLJoin" || JoinHash.String() != "HashJoin" {
		t.Fatal("stringers wrong")
	}
}

// Property: execution time is positive and grows (weakly) with the
// aggregation width.
func TestQuickExecutePositiveAndMonotoneAgg(t *testing.T) {
	_, db := testdb.Build(3)
	cm := DefaultCostModel()
	f := func(aggRaw uint8, hi uint16) bool {
		q := singleTableQuery()
		q.Filters[0].Hi = int64(hi % 2001)
		q.AggWidth = int(aggRaw % 8)
		plan := &Plan{Query: q, Driver: Access{Table: "orders", Kind: AccessSeqScan}}
		st, err := Execute(db, plan, cm)
		if err != nil || st.TotalSec <= 0 {
			return false
		}
		q2 := singleTableQuery()
		q2.Filters[0].Hi = q.Filters[0].Hi
		q2.AggWidth = q.AggWidth + 1
		st2, err := Execute(db, &Plan{Query: q2, Driver: plan.Driver}, cm)
		if err != nil {
			return false
		}
		return st2.TotalSec >= st.TotalSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: true output cardinality never depends on the join algorithm.
func TestQuickAlgoInvariantCardinality(t *testing.T) {
	_, db := testdb.Build(5)
	cm := DefaultCostModel()
	f := func(nation uint8) bool {
		q := joinQuery()
		q.Filters[0].Lo = int64(nation % 25)
		q.Filters[0].Hi = q.Filters[0].Lo
		hash := &Plan{
			Query:  q,
			Driver: Access{Table: "customer", Kind: AccessSeqScan},
			Steps: []JoinStep{{
				OuterTable: "customer", OuterColumn: "c_id",
				InnerTable: "orders", InnerColumn: "o_custkey",
				Inner: Access{Table: "orders", Kind: AccessSeqScan},
				Algo:  JoinHash,
			}},
		}
		nl := &Plan{
			Query:  q,
			Driver: Access{Table: "customer", Kind: AccessSeqScan},
			Steps: []JoinStep{{
				OuterTable: "customer", OuterColumn: "c_id",
				InnerTable: "orders", InnerColumn: "o_custkey",
				Inner: Access{Table: "orders", Kind: AccessClusteredSeek},
				Algo:  JoinIndexNL,
			}},
		}
		a, err1 := Execute(db, hash, cm)
		b, err2 := Execute(db, nl, cm)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.OutRows-b.OutRows) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
