package engine

import (
	"fmt"
	"strings"

	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// AccessKind discriminates how a base table is read.
type AccessKind int

const (
	AccessSeqScan AccessKind = iota
	AccessIndexSeek
	AccessIndexOnly     // covering index, leaf-level scan or seek
	AccessClusteredSeek // primary-key (clustered) seek, used by NL joins
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case AccessSeqScan:
		return "SeqScan"
	case AccessIndexSeek:
		return "IndexSeek"
	case AccessIndexOnly:
		return "IndexOnly"
	case AccessClusteredSeek:
		return "ClusteredSeek"
	default:
		return fmt.Sprintf("access(%d)", int(k))
	}
}

// Access describes the chosen access path for one base table.
type Access struct {
	Table string
	Kind  AccessKind
	// Index is the secondary index used (nil for SeqScan and
	// ClusteredSeek).
	Index *index.Index
	// EqLen/HasRange describe how much of the index key the filter
	// predicates bind (see index.SeekPrefix).
	EqLen    int
	HasRange bool
	// Covering is true when the index contains every referenced column of
	// the table, eliminating base-table fetches.
	Covering bool
}

// String renders the access path.
func (a Access) String() string {
	if a.Index == nil {
		return fmt.Sprintf("%s(%s)", a.Kind, a.Table)
	}
	return fmt.Sprintf("%s(%s via %s)", a.Kind, a.Table, a.Index.ID())
}

// JoinAlgo is the physical join algorithm.
type JoinAlgo int

const (
	JoinHash JoinAlgo = iota
	JoinIndexNL
)

// String implements fmt.Stringer.
func (j JoinAlgo) String() string {
	if j == JoinIndexNL {
		return "IndexNLJoin"
	}
	return "HashJoin"
}

// JoinStep joins one more table into the running pipeline.
type JoinStep struct {
	// Pred is the equi-join predicate connecting the new table to a table
	// already in the pipeline.
	Pred query.Join
	// OuterTable/OuterColumn identify the pipeline side of the join;
	// InnerTable/InnerColumn the newly joined side (already normalised
	// from Pred so the executor does not re-derive sides).
	OuterTable, OuterColumn string
	InnerTable, InnerColumn string
	// Inner is the access path for the inner table. For JoinIndexNL the
	// inner access must be an index (secondary or clustered) whose leading
	// key column is InnerColumn.
	Inner Access
	Algo  JoinAlgo
}

// Plan is a left-deep join plan: a driver access path plus join steps.
type Plan struct {
	Query  *query.Query
	Driver Access
	Steps  []JoinStep

	// EstRows and EstCost carry the optimiser's estimates for the final
	// output cardinality and total plan time; the executor ignores them.
	EstRows float64
	EstCost float64
}

// Tables returns the join order of the plan, driver first.
func (p *Plan) Tables() []string {
	out := make([]string, 0, 1+len(p.Steps))
	out = append(out, p.Driver.Table)
	for _, s := range p.Steps {
		out = append(out, s.InnerTable)
	}
	return out
}

// IndexesUsed returns the distinct secondary indexes referenced by the
// plan (driver access and join inners).
func (p *Plan) IndexesUsed() []*index.Index {
	seen := map[string]bool{}
	var out []*index.Index
	add := func(ix *index.Index) {
		if ix != nil && !seen[ix.ID()] {
			seen[ix.ID()] = true
			out = append(out, ix)
		}
	}
	add(p.Driver.Index)
	for _, s := range p.Steps {
		add(s.Inner.Index)
	}
	return out
}

// String renders the plan compactly, e.g.
// "SeqScan(orders) -> HashJoin[IndexSeek(customer via ...)]".
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString(p.Driver.String())
	for _, s := range p.Steps {
		fmt.Fprintf(&b, " -> %s[%s on %s.%s=%s.%s]",
			s.Algo, s.Inner, s.OuterTable, s.OuterColumn, s.InnerTable, s.InnerColumn)
	}
	return b.String()
}
