package mab

import (
	"testing"

	"dbabandits/internal/linalg"
)

// TestParallelScoresBitIdentical is the determinism contract at the
// bandit level: Scores and ExpectedScores over the full TPC-DS
// candidate set (well past the parallel cutoff) must be byte-identical
// at every worker count, on both ridge backends — parallelism changes
// scheduling, never bytes. Run under -race this also exercises the
// shared-core read-only discipline end to end.
func TestParallelScoresBitIdentical(t *testing.T) {
	for _, backend := range linalg.RidgeBackends() {
		bandit, ctxs, _ := tpcdsScoresFixtureBackend(t, backend)
		if len(ctxs) < parallelScoreMinArms {
			t.Fatalf("%s: fixture has %d arms, below the parallel cutoff %d — test is vacuous",
				backend, len(ctxs), parallelScoreMinArms)
		}
		wantScores := bandit.Scores(ctxs)
		wantExpected := bandit.ExpectedScores(ctxs)
		for _, workers := range []int{1, 2, 4, 7} {
			bandit.SetScoreWorkers(workers)
			if got := bandit.ScoreWorkers(); got != workers {
				t.Fatalf("%s: SetScoreWorkers(%d) read back %d", backend, workers, got)
			}
			gotScores := bandit.Scores(ctxs)
			gotExpected := bandit.ExpectedScores(ctxs)
			for i := range wantScores {
				if gotScores[i] != wantScores[i] {
					t.Fatalf("%s workers=%d: Scores[%d] = %v, serial %v",
						backend, workers, i, gotScores[i], wantScores[i])
				}
				if gotExpected[i] != wantExpected[i] {
					t.Fatalf("%s workers=%d: ExpectedScores[%d] = %v, serial %v",
						backend, workers, i, gotExpected[i], wantExpected[i])
				}
			}
		}

		// Below the cutoff the serial path runs regardless of the setting —
		// and is, of course, still identical.
		small := ctxs[:parallelScoreMinArms-1]
		bandit.SetScoreWorkers(4)
		wantSmall := bandit.Scores(small)
		bandit.SetScoreWorkers(1)
		gotSmall := bandit.Scores(small)
		for i := range wantSmall {
			if gotSmall[i] != wantSmall[i] {
				t.Fatalf("%s: sub-cutoff scores differ at %d", backend, i)
			}
		}
	}
}

// TestForgetRankThreading pins the knob plumbing: TunerOptions.ForgetRank
// and ScoreWorkers reach the bandit, ForgetRank reaches the SM ridge
// state (and is a silent no-op on the factored backend), and a
// snapshot/restore round-trip re-applies both — configuration is not
// state, so the restored bandit must behave like the original without
// the checkpoint carrying it.
func TestForgetRankThreading(t *testing.T) {
	schema, db, _ := tpcdsBenchFixture(t, 1)
	dbSize := db.DataSizeBytes()
	tuner := NewTuner(schema, dbSize, TunerOptions{
		RidgeBackend: linalg.BackendSM,
		ScoreWorkers: 3,
		ForgetRank:   16,
	})
	bandit := tuner.Bandit()
	if bandit.ScoreWorkers() != 3 {
		t.Fatalf("ScoreWorkers not threaded: %d", bandit.ScoreWorkers())
	}
	rs, ok := bandit.state.(*linalg.RidgeState)
	if !ok {
		t.Fatalf("sm backend state is %T", bandit.state)
	}
	if rs.ForgetRank != 16 {
		t.Fatalf("ForgetRank not threaded to ridge state: %d", rs.ForgetRank)
	}

	snap := bandit.Snapshot()
	if err := bandit.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rs2, ok := bandit.state.(*linalg.RidgeState)
	if !ok {
		t.Fatalf("restored state is %T", bandit.state)
	}
	if rs2 == rs {
		t.Fatal("restore did not rebuild the ridge core — re-application untested")
	}
	if rs2.ForgetRank != 16 {
		t.Fatalf("restore dropped ForgetRank: %d", rs2.ForgetRank)
	}
	if bandit.ScoreWorkers() != 3 {
		t.Fatalf("restore dropped ScoreWorkers: %d", bandit.ScoreWorkers())
	}

	// The factored backend has no inverse to budget: the setter must be a
	// no-op, not a crash.
	cholTuner := NewTuner(schema, dbSize, TunerOptions{
		RidgeBackend: linalg.BackendChol,
		ForgetRank:   16,
	})
	if _, ok := cholTuner.Bandit().state.(*linalg.CholState); !ok {
		t.Fatalf("chol tuner state is %T", cholTuner.Bandit().state)
	}
}
