package mab

import (
	"fmt"
	"math/rand"
	"testing"

	"dbabandits/internal/catalog"
	"dbabandits/internal/datagen"
	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
	"dbabandits/internal/workload"
)

// tpcdsBenchFixture builds the TPC-DS environment the paper's hardest
// arm-count regime runs on: the full snowflake schema (every schema
// column is one context dimension) and per-round workloads that invoke
// all 99 templates, exactly like the static sequencer.
func tpcdsBenchFixture(b testing.TB, rounds int) (*catalog.Schema, *storage.Database, [][]*query.Query) {
	b.Helper()
	bench, err := workload.ByName("tpcds")
	if err != nil {
		b.Fatal(err)
	}
	schema := bench.NewSchema()
	db, err := datagen.Build(schema, datagen.Options{Seed: 1, ScaleFactor: 10, MaxStoredRows: 1500})
	if err != nil {
		b.Fatal(err)
	}
	wls := make([][]*query.Query, rounds)
	for r := range wls {
		rng := rand.New(rand.NewSource(int64(r)*1_000_003 + 17))
		for _, ts := range bench.Templates {
			wls[r] = append(wls[r], ts.Instantiate(rng, db, bench.Name))
		}
	}
	return schema, db, wls
}

// BenchmarkTunerRecommendTPCDS measures the full recommend loop — query
// store fold-in, arm generation, context building, C2UCB scoring, the
// greedy oracle, and the ridge update — at TPC-DS scale (the paper's
// "over 3200 indices" regime is the arm-count stress case). Later rounds
// replay the same templates, so this is exactly the QoI-window repetition
// profile the per-round overhead of Table I is quoted against.
func BenchmarkTunerRecommendTPCDS(b *testing.B) {
	const rounds = 4
	schema, db, wls := tpcdsBenchFixture(b, rounds)
	dbSize := db.DataSizeBytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner := NewTuner(schema, dbSize, TunerOptions{MemoryBudgetBytes: dbSize})
		for r := 0; r < rounds; r++ {
			tuner.Recommend(wls[r])
			tuner.ObserveExecution(nil, nil)
		}
	}
}

// BenchmarkTunerRecommendSteadyState measures one warm recommend round:
// the tuner has already seen every template and materialised its memos
// and arena, so each iteration is the round the arena discipline is
// designed for — generation and key lookups all hit, contexts and
// round maps live in recycled scratch. The gap to
// BenchmarkTunerRecommendTPCDS (which rebuilds a tuner per op, paying
// four cold rounds) is the cold-start cost; the allocs/op here is the
// number the benchdiff alloc budget actually guards.
func BenchmarkTunerRecommendSteadyState(b *testing.B) {
	const rounds = 4
	schema, db, wls := tpcdsBenchFixture(b, rounds)
	dbSize := db.DataSizeBytes()
	tuner := NewTuner(schema, dbSize, TunerOptions{MemoryBudgetBytes: dbSize})
	for r := 0; r < rounds; r++ {
		tuner.Recommend(wls[r])
		tuner.ObserveExecution(nil, nil)
	}
	wl := wls[rounds-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.Recommend(wl)
		tuner.ObserveExecution(nil, nil)
	}
}

// tpcdsScoresFixture prepares every TPC-DS candidate arm's context plus a
// warmed bandit (VInv no longer diagonal — the realistic steady-state
// shape for the quadratic form).
func tpcdsScoresFixture(b testing.TB) (*C2UCB, []linalg.SparseVector, int) {
	return tpcdsScoresFixtureBackend(b, linalg.BackendSM)
}

// tpcdsScoresFixtureBackend is tpcdsScoresFixture on the named ridge
// backend.
func tpcdsScoresFixtureBackend(b testing.TB, backend string) (*C2UCB, []linalg.SparseVector, int) {
	b.Helper()
	schema, db, wls := tpcdsBenchFixture(b, 1)
	dbSize := db.DataSizeBytes()
	ctxb := NewContextBuilder(schema)
	gen := NewArmGenerator(schema, ArmGenOptions{})
	arms := gen.Generate(wls[0])
	predCols := PredicateColumnSet(wls[0])
	ctxs := make([]linalg.SparseVector, len(arms))
	for i, a := range arms {
		ctxs[i] = ctxb.Build(a, ArmInfo{
			PredicateColumns: predCols,
			DatabaseBytes:    dbSize,
		})
	}
	bandit, err := NewC2UCBBackend(backend, ctxb.Dim(), 0.25, nil)
	if err != nil {
		b.Fatal(err)
	}
	bandit.BeginRound()
	for r := 0; r < 4; r++ {
		bandit.Update(ctxs[:8], make([]float64, 8))
	}
	return bandit, ctxs, ctxb.Dim()
}

// BenchmarkScoresTPCDS isolates C2UCB.Scores over every TPC-DS candidate
// arm at the schema's full context dimension — the per-arm UCB width is
// the dominant term of the recommend loop at this arm count. Compare
// against BENCH_baseline.json (captured pre-sparse) for the headline
// speedup, and against BenchmarkScoresDenseTPCDS for the in-tree
// sparse-vs-dense kernel gap on identical inputs.
func BenchmarkScoresTPCDS(b *testing.B) {
	bandit, ctxs, dim := tpcdsScoresFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bandit.Scores(ctxs)
	}
	b.ReportMetric(float64(len(ctxs)), "arms")
	b.ReportMetric(float64(dim), "dim")
}

// BenchmarkScoresBatch measures the Tuner.Recommend-path arm-set
// scoring — C2UCB.Scores over every TPC-DS candidate arm — per ridge
// backend, in the steady state Scores actually runs in (theta memoised
// since the round's last observation, widths in one batched pass).
// Compare the sm number against BenchmarkScoresTPCDS in
// BENCH_1cd7608.json (13.8µs, 2 allocs: the pre-batch per-arm loop that
// recomputed theta every call) and the 15.4µs PR 3 README headline.
func BenchmarkScoresBatch(b *testing.B) {
	for _, backend := range linalg.RidgeBackends() {
		b.Run(backend, func(b *testing.B) {
			bandit, ctxs, dim := tpcdsScoresFixtureBackend(b, backend)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bandit.Scores(ctxs)
			}
			b.ReportMetric(float64(len(ctxs)), "arms")
			b.ReportMetric(float64(dim), "dim")
		})
	}
}

// BenchmarkScoresSparse times just the sparse scoring kernels (theta
// dot + confidence width) per arm batch, without the Scores slice
// bookkeeping — the purest view of the O(nnz²) quadratic form.
func BenchmarkScoresSparse(b *testing.B) {
	bandit, ctxs, _ := tpcdsScoresFixture(b)
	theta := bandit.state.Theta()
	alpha := bandit.Alpha(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, x := range ctxs {
			sink += theta.DotSparse(x) + alpha*bandit.state.ConfidenceWidthSparse(x)
		}
	}
	benchScoreSink = sink
}

// BenchmarkScoresDenseTPCDS scores the identical contexts through the
// dense kernels the recommend loop used before the sparse fast path; the
// ratio to BenchmarkScoresSparse is the kernel-level win.
func BenchmarkScoresDenseTPCDS(b *testing.B) {
	bandit, ctxs, _ := tpcdsScoresFixture(b)
	dense := make([]linalg.Vector, len(ctxs))
	for i, x := range ctxs {
		dense[i] = x.Dense()
	}
	theta := bandit.state.Theta()
	alpha := bandit.Alpha(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, x := range dense {
			sink += theta.Dot(x) + alpha*bandit.state.ConfidenceWidth(x)
		}
	}
	benchScoreSink = sink
}

// BenchmarkScoresBatchParallel measures C2UCB.Scores over the full
// TPC-DS candidate set with scoring fanned across worker pools of 1, 2
// and 4, on the factored backend — the O(d²) per-arm triangular solve
// is the kernel the sharding exists to hide (the SM sparse quadratic
// form is already so cheap the fan-out overhead dominates it). The /1
// case is the serial baseline every speedup is quoted against; scaling
// only shows on multi-core hardware, but the output bytes are pinned
// identical at every width regardless.
func BenchmarkScoresBatchParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			bandit, ctxs, dim := tpcdsScoresFixtureBackend(b, linalg.BackendChol)
			bandit.SetScoreWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bandit.Scores(ctxs)
			}
			b.ReportMetric(float64(len(ctxs)), "arms")
			b.ReportMetric(float64(dim), "dim")
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

var benchScoreSink float64
