package mab

import (
	"strings"
	"testing"

	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

// figure1Query mirrors the paper's Figure 1 example: a single-table query
// with two equality predicates and one payload column.
func figure1Query() *query.Query {
	return &query.Query{
		TemplateID: 1,
		Tables:     []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: 5, Hi: 5},
			{Table: "orders", Column: "o_status", Op: query.OpEq, Lo: 6, Hi: 6},
		},
		Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
	}
}

func TestGenerateFigure1Example(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	arms := g.Generate([]*query.Query{figure1Query()})
	// Paper's Example 3: two predicates generate six arms — four key-only
	// permutations (2 singles + 2 ordered pairs) and two covering
	// variants (the pair permutations with the payload included).
	if len(arms) != 6 {
		ids := make([]string, len(arms))
		for i, a := range arms {
			ids[i] = a.ID()
		}
		t.Fatalf("got %d arms, want 6: %v", len(arms), ids)
	}
	var covering, plain int
	for _, a := range arms {
		if a.IsCovering() {
			covering++
			if len(a.Index.Include) == 0 {
				t.Fatalf("covering arm without includes: %s", a.ID())
			}
		} else {
			plain++
		}
	}
	if covering != 2 || plain != 4 {
		t.Fatalf("covering=%d plain=%d", covering, plain)
	}
}

func TestGenerateIncludesJoinColumns(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	q := &query.Query{
		TemplateID: 2,
		Tables:     []string{"orders", "customer"},
		Filters: []query.Predicate{
			{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 1, Hi: 1},
		},
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
	}
	arms := g.Generate([]*query.Query{q})
	foundJoinArm := false
	for _, a := range arms {
		if a.Table == "orders" && a.Index.Key[0] == "o_custkey" {
			foundJoinArm = true
		}
		// c_id is the leading PK column of customer: no arm should be
		// generated for it.
		if a.Table == "customer" && a.Index.Key[0] == "c_id" {
			t.Fatalf("arm on clustered PK leading column: %s", a.ID())
		}
	}
	if !foundJoinArm {
		t.Fatal("no arm generated for the fact-side join column")
	}
}

func TestGenerateDeduplicatesAcrossQueries(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	q1 := figure1Query()
	q2 := figure1Query()
	q2.TemplateID = 7
	arms := g.Generate([]*query.Query{q1, q2})
	for _, a := range arms {
		if len(a.Queries) != 2 {
			t.Fatalf("arm %s motivated by %v, want both templates", a.ID(), a.Queries)
		}
	}
}

func TestGenerateCapsWidePredicateSets(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{MaxPermutationCols: 3, MaxArmsPerTableQuery: 24})
	q := &query.Query{
		TemplateID: 3,
		Tables:     []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 10},
			{Table: "orders", Column: "o_status", Op: query.OpEq, Lo: 1, Hi: 1},
			{Table: "orders", Column: "o_priority", Op: query.OpEq, Lo: 2, Hi: 2},
			{Table: "orders", Column: "o_total", Op: query.OpGt, Lo: 100},
			{Table: "orders", Column: "o_custkey", Op: query.OpEq, Lo: 5, Hi: 5},
		},
	}
	arms := g.Generate([]*query.Query{q})
	if len(arms) == 0 || len(arms) > 24 {
		t.Fatalf("got %d arms, want 1..24", len(arms))
	}
	// The canonical full ordering must put equality columns first.
	var full *Arm
	for _, a := range arms {
		if len(a.Index.Key) == 5 {
			full = a
		}
	}
	if full == nil {
		t.Fatal("no full-key canonical arm generated")
	}
	firstThree := strings.Join(full.Index.Key[:3], ",")
	for _, c := range []string{"o_status", "o_priority", "o_custkey"} {
		if !strings.Contains(firstThree, c) {
			t.Fatalf("equality column %s not leading in canonical order %v", c, full.Index.Key)
		}
	}
}

func TestGenerateDeterministicOrder(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	a := g.Generate([]*query.Query{figure1Query()})
	b := g.Generate([]*query.Query{figure1Query()})
	if len(a) != len(b) {
		t.Fatal("nondeterministic arm count")
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].ID(), b[i].ID())
		}
	}
}

func TestGenerateMemoisedAcrossInstances(t *testing.T) {
	// Two instances of one template differ only in constants; the
	// memoised generator must produce identical arm sets for both — and
	// identical to a cold generator's output.
	schema, _ := testdb.Build(1)
	warm := NewArmGenerator(schema, ArmGenOptions{})
	q1 := figure1Query()
	first := warm.Generate([]*query.Query{q1})

	q2 := figure1Query()
	q2.Filters[0].Lo, q2.Filters[0].Hi = 99, 99 // fresh constants, same shape
	second := warm.Generate([]*query.Query{q2})

	cold := NewArmGenerator(schema, ArmGenOptions{}).Generate([]*query.Query{q2})
	for _, other := range [][]*Arm{second, cold} {
		if len(first) != len(other) {
			t.Fatalf("arm counts differ: %d vs %d", len(first), len(other))
		}
		for i := range first {
			if first[i].ID() != other[i].ID() || first[i].SizeBytes != other[i].SizeBytes {
				t.Fatalf("arm %d differs: %s vs %s", i, first[i].ID(), other[i].ID())
			}
			if len(first[i].Queries) != len(other[i].Queries) {
				t.Fatalf("arm %d queries differ: %v vs %v", i, first[i].Queries, other[i].Queries)
			}
		}
	}
}

func TestGenerateMemoReturnsFreshSlice(t *testing.T) {
	// Callers may reorder the returned slice (the oracle sorts
	// candidates); the memo must hand out a fresh slice each round so a
	// caller's reordering cannot corrupt later rounds.
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	qs := []*query.Query{figure1Query()}
	a := g.Generate(qs)
	if len(a) < 2 {
		t.Fatal("fixture too small")
	}
	a[0], a[1] = a[1], a[0]
	b := g.Generate(qs)
	for i := 1; i < len(b); i++ {
		if b[i-1].ID() >= b[i].ID() {
			t.Fatalf("cached result order corrupted by caller mutation: %v >= %v", b[i-1].ID(), b[i].ID())
		}
	}
}

func TestGenerateMemoKeyedByQoISet(t *testing.T) {
	// Growing and shrinking the QoI set must not leak motivating-template
	// lists across cache entries.
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	q1 := figure1Query()
	q2 := figure1Query()
	q2.TemplateID = 7

	solo := g.Generate([]*query.Query{q1})
	both := g.Generate([]*query.Query{q1, q2})
	soloAgain := g.Generate([]*query.Query{q1})

	for _, a := range solo {
		if len(a.Queries) != 1 || a.Queries[0] != 1 {
			t.Fatalf("solo arm %s motivated by %v", a.ID(), a.Queries)
		}
	}
	for _, a := range both {
		if len(a.Queries) != 2 {
			t.Fatalf("dual arm %s motivated by %v", a.ID(), a.Queries)
		}
	}
	for i, a := range soloAgain {
		if len(a.Queries) != 1 {
			t.Fatalf("cached solo arm %s motivated by %v", a.ID(), a.Queries)
		}
		if a.ID() != solo[i].ID() {
			t.Fatalf("cache replay changed order at %d", i)
		}
	}
}

func TestGenerateMemoDistinguishesJoins(t *testing.T) {
	// query.Signature() omits join predicates, but arm generation feeds
	// join columns into the candidate keys — the memo must not serve a
	// join-free query's protos to a signature-colliding joined query.
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	plain := &query.Query{
		TemplateID: 4,
		Tables:     []string{"orders", "customer"},
		Filters: []query.Predicate{
			{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: 1, Hi: 1},
		},
	}
	joined := &query.Query{
		TemplateID: 4,
		Tables:     []string{"orders", "customer"},
		Filters:    plain.Filters,
		Joins: []query.Join{
			{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
		},
	}
	if plain.Signature() != joined.Signature() {
		t.Fatal("fixture invalid: signatures expected to collide")
	}
	g.Generate([]*query.Query{plain}) // warm the memo with the join-free shape
	arms := g.Generate([]*query.Query{joined})
	for _, a := range arms {
		if a.Table == "orders" && a.Index.Key[0] == "o_custkey" {
			return
		}
	}
	t.Fatal("memo served join-free protos: no arm on the join column")
}

func TestPermutationsOfSubsets(t *testing.T) {
	got := permutationsOfSubsets([]string{"a", "b"})
	// a, a b, b, b a -> 4 entries
	if len(got) != 4 {
		t.Fatalf("got %d permutations: %v", len(got), got)
	}
	got3 := permutationsOfSubsets([]string{"a", "b", "c"})
	// P(3,1)+P(3,2)+P(3,3) = 3+6+6 = 15
	if len(got3) != 15 {
		t.Fatalf("got %d permutations for 3 cols", len(got3))
	}
}

func TestArmSizePositive(t *testing.T) {
	schema, _ := testdb.Build(1)
	g := NewArmGenerator(schema, ArmGenOptions{})
	for _, a := range g.Generate([]*query.Query{figure1Query()}) {
		if a.SizeBytes <= 0 {
			t.Fatalf("arm %s has non-positive size", a.ID())
		}
	}
}
