package mab

import (
	"math"
	"sort"

	"dbabandits/internal/catalog"
	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
)

// ContextBuilder produces the per-arm context vectors (Section IV,
// "Context engineering"). The vector has one component per database
// column (Part 1: indexed-column-prefix encoding) plus three derived
// components (Part 2): a covering flag, the relative index size (zero
// when already materialised), and usage information from prior rounds.
//
// Contexts are emitted sparse: at most one non-zero per key column plus
// the three derived components, out of a dimension that grows with the
// whole schema. The sparse ridge kernels exploit exactly this shape.
type ContextBuilder struct {
	schema *catalog.Schema
	colIdx map[query.ColumnRef]int // (table, column) -> dimension
	cols   int                     // column-dimension count (Part 1)

	// OneHot switches Part 1 to a plain bag-of-columns encoding (1 for
	// any key column). Only the ablation benches enable it; the paper
	// argues prefix encoding is essential because "similarity of arms
	// depends on having similar column prefixes".
	OneHot bool
	// UpdateDims appends the two update-sensitivity components of the
	// HTAP extension ("No DBA? No regret!"): the arm's decayed churn
	// exposure and its size-weighted churn (a linear proxy for modelled
	// maintenance cost). Set it before Dim is consumed — it changes the
	// context dimensionality, so analytical runs leave it off and remain
	// bit-identical to the pre-HTAP tuner.
	UpdateDims bool
}

// Derived-part dimension count: covering flag, relative size, usage.
const derivedDims = 3

// Update-sensitivity dimension count: churn exposure, size-weighted
// churn. Appended above the derived part only when UpdateDims is set.
const updateDims = 2

// NewContextBuilder enumerates the schema's columns into dimensions.
func NewContextBuilder(schema *catalog.Schema) *ContextBuilder {
	cb := &ContextBuilder{schema: schema, colIdx: map[query.ColumnRef]int{}}
	names := schema.SortedTableNames()
	d := 0
	for _, tn := range names {
		t := schema.MustTable(tn)
		cols := make([]string, len(t.Columns))
		for i := range t.Columns {
			cols[i] = t.Columns[i].Name
		}
		sort.Strings(cols)
		for _, c := range cols {
			cb.colIdx[query.ColumnRef{Table: tn, Column: c}] = d
			d++
		}
	}
	cb.cols = d
	return cb
}

// Dim returns the context dimensionality.
func (cb *ContextBuilder) Dim() int {
	d := cb.cols + derivedDims
	if cb.UpdateDims {
		d += updateDims
	}
	return d
}

// ArmInfo carries the dynamic inputs of a context vector.
type ArmInfo struct {
	// PredicateColumns holds every column that appears as a filter or
	// join predicate in the queries of interest; only these key columns
	// receive non-zero Part 1 components (payload-only columns are zero —
	// see the paper's Example 3). Keyed by (table, column) struct so the
	// per-arm lookups never build key strings.
	PredicateColumns map[query.ColumnRef]bool
	// Materialised reports whether the arm's index currently exists; a
	// materialised index has zero relative-size component (no further
	// creation cost).
	Materialised bool
	// Usage is the arm's decayed historical usage statistic (D3).
	Usage float64
	// DatabaseBytes normalises the size component.
	DatabaseBytes int64
	// Churn is the arm's decayed update-churn exposure (D4, HTAP only):
	// the fraction of its table's rows recently written in a way that
	// forces maintenance on this index. Ignored unless the builder's
	// UpdateDims is set.
	Churn float64
}

// Build assembles the sparse context vector for one arm, in freshly
// allocated storage the caller owns. Entries are returned in ascending
// index order; zero-valued components (payload-only key columns, unset
// derived statistics) are simply absent, which the sparse kernels treat
// identically to explicit zeros.
func (cb *ContextBuilder) Build(arm *Arm, info ArmInfo) linalg.SparseVector {
	var a linalg.SparseArena
	return cb.BuildArena(arm, info, &a)
}

// BuildArena is Build into caller-supplied arena storage — the
// recommend loop's warm path. The returned vector aliases the arena and
// follows its lifetime discipline (valid until the arena's next Reset);
// the entry values are identical to Build's.
func (cb *ContextBuilder) BuildArena(arm *Arm, info ArmInfo, a *linalg.SparseArena) linalg.SparseVector {
	a.Grow(len(arm.Index.Key) + derivedDims + updateDims)
	mark := a.Mark()
	for j, col := range arm.Index.Key {
		key := query.ColumnRef{Table: arm.Table, Column: col}
		if !info.PredicateColumns[key] {
			continue
		}
		idx, ok := cb.colIdx[key]
		if !ok {
			continue
		}
		if cb.OneHot {
			a.Append(idx, 1)
		} else {
			a.Append(idx, math.Pow(10, -float64(j)))
		}
	}
	x := a.Take(cb.Dim(), mark)
	// Key columns arrive in key order, not dimension order.
	x.Sort()
	// The derived components occupy the top dimensions, above every
	// column dimension, so appending after the sort keeps order.
	base := cb.cols
	if arm.IsCovering() {
		a.Append(base, 1)
	}
	if !info.Materialised && info.DatabaseBytes > 0 {
		a.Append(base+1, float64(arm.SizeBytes)/float64(info.DatabaseBytes))
	}
	if info.Usage != 0 {
		a.Append(base+2, info.Usage)
	}
	if cb.UpdateDims && info.Churn != 0 {
		// D4: churn exposure. D5: size-weighted churn — written rows ×
		// entry width scales with churn × index size, so this component
		// is a linear proxy for the maintenance seconds the reward will
		// subtract, normalised like the size component.
		a.Append(base+derivedDims, info.Churn)
		if info.DatabaseBytes > 0 {
			a.Append(base+derivedDims+1, info.Churn*float64(arm.SizeBytes)/float64(info.DatabaseBytes))
		}
	}
	return a.Take(cb.Dim(), mark)
}
