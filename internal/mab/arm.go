// Package mab implements the paper's primary contribution: online index
// selection as a contextual combinatorial multi-armed bandit (C2UCB).
//
// The package provides dynamic arm generation from workload predicates
// (Section IV "Dynamic arms from workload predicates"), two-part context
// engineering (indexed-column-prefix encoding plus derived statistics),
// the C2UCB scoring loop with shared ridge-regression weights, a greedy
// knapsack super-arm oracle with prefix/covering filtering, reward shaping
// from observed execution gains and index creation costs, and the query
// store with workload-shift-scaled forgetting (Algorithm 2).
package mab

import (
	"sort"

	"dbabandits/internal/catalog"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// Arm is a candidate index the bandit may choose. Arms are identified by
// their index id; the same arm regenerated from a different query keeps
// its learned usage statistics (knowledge lives in the shared theta, but
// usage metadata feeds the context's derived part).
type Arm struct {
	Index *index.Index
	// SizeBytes is the estimated materialised size (the knapsack cost c_i).
	SizeBytes int64
	// Table caches Index.Table.
	Table string
	// Queries lists the template ids of the queries of interest that
	// motivated this arm in the current round.
	Queries []int
	// CoveringFor lists template ids for which this arm is a covering
	// index (drives the oracle's covering filter and context flag D1).
	CoveringFor []int
}

// ID returns the canonical arm identifier (the index id).
func (a *Arm) ID() string { return a.Index.ID() }

// IsCovering reports whether the arm covers any motivating query.
func (a *Arm) IsCovering() bool { return len(a.CoveringFor) > 0 }

// ArmGenOptions bound the arm-generation combinatorics.
type ArmGenOptions struct {
	// MaxPermutationCols is the largest predicate-column-set size for
	// which all permutations are generated (larger sets fall back to
	// canonical orderings). Default 3.
	MaxPermutationCols int
	// MaxArmsPerTableQuery caps arms generated per (query, table) pair.
	// Default 24.
	MaxArmsPerTableQuery int
	// DisablePayload turns off covering-arm generation (key permutations
	// of the full predicate set with payload columns as includes).
	// Covering arms are on by default; this exists for ablations.
	DisablePayload bool
}

// ArmGenerator turns queries of interest into candidate arms.
type ArmGenerator struct {
	schema *catalog.Schema
	opts   ArmGenOptions
}

// NewArmGenerator returns a generator with defaulted options.
func NewArmGenerator(schema *catalog.Schema, opts ArmGenOptions) *ArmGenerator {
	if opts.MaxPermutationCols <= 0 {
		opts.MaxPermutationCols = 3
	}
	if opts.MaxArmsPerTableQuery <= 0 {
		opts.MaxArmsPerTableQuery = 24
	}
	return &ArmGenerator{schema: schema, opts: opts}
}

// Generate produces the candidate arms for a set of queries of interest,
// de-duplicated by index id, in deterministic order. Workload-based
// generation keeps the action space proportional to the observed
// workload's predicate columns rather than all column combinations.
func (g *ArmGenerator) Generate(qois []*query.Query) []*Arm {
	byID := map[string]*Arm{}
	for _, q := range qois {
		for _, tname := range q.Tables {
			meta, ok := g.schema.Table(tname)
			if !ok {
				continue
			}
			g.generateForTable(q, meta, byID)
		}
	}
	arms := make([]*Arm, 0, len(byID))
	for _, a := range byID {
		arms = append(arms, a)
	}
	sort.Slice(arms, func(i, j int) bool { return arms[i].ID() < arms[j].ID() })
	return arms
}

func (g *ArmGenerator) generateForTable(q *query.Query, meta *catalog.Table, byID map[string]*Arm) {
	// Predicate columns include join columns (the paper: "combinations
	// and permutations of query predicates (including join predicates)").
	predCols := q.PredicateColumnsOn(meta.Name)
	joinCols := q.JoinColumnsOn(meta.Name)
	colSet := map[string]bool{}
	for _, c := range predCols {
		colSet[c] = true
	}
	for _, c := range joinCols {
		// The clustered PK already serves join seeks on its leading
		// column; skip those to avoid useless duplicate arms.
		if len(meta.PK) > 0 && meta.PK[0] == c {
			continue
		}
		colSet[c] = true
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	if len(cols) == 0 {
		return
	}

	var keys [][]string
	if len(cols) <= g.opts.MaxPermutationCols {
		keys = permutationsOfSubsets(cols)
	} else {
		keys = cappedKeyOrders(q, meta, cols, g.opts.MaxPermutationCols)
	}
	if len(keys) > g.opts.MaxArmsPerTableQuery {
		keys = keys[:g.opts.MaxArmsPerTableQuery]
	}

	payload := q.PayloadColumnsOn(meta.Name)
	for _, key := range keys {
		g.addArm(q, meta, key, nil, byID)
		// Covering variant: full-predicate-set keys with payload includes.
		if !g.opts.DisablePayload && len(payload) > 0 && len(key) == len(cols) {
			g.addArm(q, meta, key, payload, byID)
		}
	}
}

func (g *ArmGenerator) addArm(q *query.Query, meta *catalog.Table, key, include []string, byID map[string]*Arm) {
	ix := index.New(meta.Name, key, include)
	id := ix.ID()
	arm, exists := byID[id]
	if !exists {
		arm = &Arm{Index: ix, Table: meta.Name, SizeBytes: ix.SizeBytes(meta)}
		byID[id] = arm
	}
	arm.Queries = appendUnique(arm.Queries, q.TemplateID)
	if ix.CoversQueryOn(q, meta.Name) {
		arm.CoveringFor = appendUnique(arm.CoveringFor, q.TemplateID)
	}
}

// permutationsOfSubsets returns every permutation of every non-empty
// subset of cols (cols must be small; callers cap at
// MaxPermutationCols).
func permutationsOfSubsets(cols []string) [][]string {
	var out [][]string
	n := len(cols)
	var rec func(cur []string, used []bool)
	rec = func(cur []string, used []bool) {
		if len(cur) > 0 {
			cp := append([]string(nil), cur...)
			out = append(out, cp)
		}
		if len(cur) == n {
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, cols[i]), used)
			used[i] = false
		}
	}
	rec(nil, make([]bool, n))
	return out
}

// cappedKeyOrders handles wide predicate sets: all singles, ordered pairs
// of the most selective columns, and a canonical full ordering (equality
// columns by descending NDV — most selective seeks first — then the
// rest).
func cappedKeyOrders(q *query.Query, meta *catalog.Table, cols []string, maxPerm int) [][]string {
	var out [][]string
	for _, c := range cols {
		out = append(out, []string{c})
	}
	ranked := rankColumns(q, meta, cols)
	top := ranked
	if len(top) > maxPerm {
		top = top[:maxPerm]
	}
	for _, a := range top {
		for _, b := range top {
			if a != b {
				out = append(out, []string{a, b})
			}
		}
	}
	out = append(out, append([]string(nil), ranked...))
	return out
}

// rankColumns orders columns: equality-predicate columns first (by NDV
// descending — higher NDV means a sharper seek), then range columns, then
// join-only columns.
func rankColumns(q *query.Query, meta *catalog.Table, cols []string) []string {
	eq := map[string]bool{}
	rng := map[string]bool{}
	for _, p := range q.FiltersOn(meta.Name) {
		if p.IsEquality() {
			eq[p.Column] = true
		} else {
			rng[p.Column] = true
		}
	}
	ndv := func(c string) int64 {
		if col, ok := meta.Column(c); ok {
			return col.Stats.NDV
		}
		return 0
	}
	class := func(c string) int {
		switch {
		case eq[c]:
			return 0
		case rng[c]:
			return 1
		default:
			return 2
		}
	}
	ranked := append([]string(nil), cols...)
	sort.SliceStable(ranked, func(i, j int) bool {
		ci, cj := class(ranked[i]), class(ranked[j])
		if ci != cj {
			return ci < cj
		}
		ni, nj := ndv(ranked[i]), ndv(ranked[j])
		if ni != nj {
			return ni > nj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

func appendUnique(list []int, v int) []int {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
