// Package mab implements the paper's primary contribution: online index
// selection as a contextual combinatorial multi-armed bandit (C2UCB).
//
// The package provides dynamic arm generation from workload predicates
// (Section IV "Dynamic arms from workload predicates"), two-part context
// engineering (indexed-column-prefix encoding plus derived statistics),
// the C2UCB scoring loop with shared ridge-regression weights, a greedy
// knapsack super-arm oracle with prefix/covering filtering, reward shaping
// from observed execution gains and index creation costs, and the query
// store with workload-shift-scaled forgetting (Algorithm 2).
package mab

import (
	"sort"
	"strconv"
	"strings"

	"dbabandits/internal/catalog"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// Arm is a candidate index the bandit may choose. Arms are identified by
// their index id; the same arm regenerated from a different query keeps
// its learned usage statistics (knowledge lives in the shared theta, but
// usage metadata feeds the context's derived part).
type Arm struct {
	Index *index.Index
	// SizeBytes is the estimated materialised size (the knapsack cost c_i).
	SizeBytes int64
	// Table caches Index.Table.
	Table string
	// Queries lists the template ids of the queries of interest that
	// motivated this arm in the current round.
	Queries []int
	// CoveringFor lists template ids for which this arm is a covering
	// index (drives the oracle's covering filter and context flag D1).
	CoveringFor []int
}

// ID returns the canonical arm identifier (the index id).
func (a *Arm) ID() string { return a.Index.ID() }

// IsCovering reports whether the arm covers any motivating query.
func (a *Arm) IsCovering() bool { return len(a.CoveringFor) > 0 }

// ArmGenOptions bound the arm-generation combinatorics.
type ArmGenOptions struct {
	// MaxPermutationCols is the largest predicate-column-set size for
	// which all permutations are generated (larger sets fall back to
	// canonical orderings). Default 3.
	MaxPermutationCols int
	// MaxArmsPerTableQuery caps arms generated per (query, table) pair.
	// Default 24.
	MaxArmsPerTableQuery int
	// DisablePayload turns off covering-arm generation (key permutations
	// of the full predicate set with payload columns as includes).
	// Covering arms are on by default; this exists for ablations.
	DisablePayload bool
}

// armProto is one memoised candidate of a (query shape, table) pair: the
// index object (with its id string already built), its estimated size,
// and whether it covers the motivating query shape. Everything in it is a
// pure function of the query's structure — tables, predicate columns and
// operators, joins, payload. query.Signature() canonises all of those
// except the join predicates (shapeKey appends them), so protos are
// shared across rounds and across query instances.
type armProto struct {
	ix     *index.Index
	size   int64
	covers bool
}

// maxCachedArmSets bounds the per-round result memo (the proto memo is
// naturally bounded by templates × tables). Dynamic random workloads see
// one distinct QoI combination per round at worst; the cap only matters
// for pathological long-running instances, which simply restart the memo.
const maxCachedArmSets = 256

// ArmGenerator turns queries of interest into candidate arms.
//
// Generation is memoised at two levels, exploiting that query instances
// of one template differ only in constants: per (query shape, table) the
// full key-order enumeration (permutations, capped orderings, covering
// variants, sizes, ids) is computed once ever, and per exact QoI sequence
// the final deduplicated sorted arm set is reused across rounds — the QoI
// window replays the same templates round after round, which previously
// re-ran permutations, rebuilt id strings and re-sorted identical arm
// sets every round. A generator is not safe for concurrent use (each
// tuner instance owns one).
type ArmGenerator struct {
	schema *catalog.Schema
	opts   ArmGenOptions

	protos  map[string][]armProto // query signature + table -> protos
	results map[string][]*Arm     // ordered (template id, signature) list -> arms
}

// NewArmGenerator returns a generator with defaulted options.
func NewArmGenerator(schema *catalog.Schema, opts ArmGenOptions) *ArmGenerator {
	if opts.MaxPermutationCols <= 0 {
		opts.MaxPermutationCols = 3
	}
	if opts.MaxArmsPerTableQuery <= 0 {
		opts.MaxArmsPerTableQuery = 24
	}
	return &ArmGenerator{
		schema:  schema,
		opts:    opts,
		protos:  map[string][]armProto{},
		results: map[string][]*Arm{},
	}
}

// Generate produces the candidate arms for a set of queries of interest,
// de-duplicated by index id, in deterministic order. Workload-based
// generation keeps the action space proportional to the observed
// workload's predicate columns rather than all column combinations.
//
// Callers must treat the returned arms as immutable: the same *Arm
// values are handed out again when a later round replays the same QoI
// set.
func (g *ArmGenerator) Generate(qois []*query.Query) []*Arm {
	sigs := make([]string, len(qois))
	var keyB strings.Builder
	for i, q := range qois {
		sigs[i] = shapeKey(q)
		keyB.WriteString(strconv.Itoa(q.TemplateID))
		keyB.WriteByte(0)
		keyB.WriteString(sigs[i])
		keyB.WriteByte(1)
	}
	key := keyB.String()
	if arms, ok := g.results[key]; ok {
		return append([]*Arm(nil), arms...)
	}

	byID := map[string]*Arm{}
	for qi, q := range qois {
		for _, tname := range q.Tables {
			meta, ok := g.schema.Table(tname)
			if !ok {
				continue
			}
			pkey := sigs[qi] + "\x00" + tname
			protos, ok := g.protos[pkey]
			if !ok {
				protos = g.protosForTable(q, meta)
				g.protos[pkey] = protos
			}
			for _, p := range protos {
				id := p.ix.ID()
				arm, exists := byID[id]
				if !exists {
					arm = &Arm{Index: p.ix, Table: tname, SizeBytes: p.size}
					byID[id] = arm
				}
				arm.Queries = appendUnique(arm.Queries, q.TemplateID)
				if p.covers {
					arm.CoveringFor = appendUnique(arm.CoveringFor, q.TemplateID)
				}
			}
		}
	}
	arms := make([]*Arm, 0, len(byID))
	for _, a := range byID {
		arms = append(arms, a)
	}
	sort.Slice(arms, func(i, j int) bool { return arms[i].ID() < arms[j].ID() })

	if len(g.results) >= maxCachedArmSets {
		g.results = map[string][]*Arm{}
	}
	g.results[key] = arms
	return append([]*Arm(nil), arms...)
}

// shapeKey canonises everything arm generation depends on: the query's
// Signature() (tables, predicate columns and operators, payload) plus
// the join predicates, which Signature omits but JoinColumnsOn feeds
// into the candidate key columns.
func shapeKey(q *query.Query) string {
	sig := q.Signature()
	if len(q.Joins) == 0 {
		return sig
	}
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		joins[i] = j.LeftTable + "." + j.LeftColumn + "=" + j.RightTable + "." + j.RightColumn
	}
	sort.Strings(joins)
	return sig + "\x02" + strings.Join(joins, ",")
}

// protosForTable enumerates the candidate indexes one query shape
// motivates on one table. Predicate columns include join columns (the
// paper: "combinations and permutations of query predicates (including
// join predicates)").
func (g *ArmGenerator) protosForTable(q *query.Query, meta *catalog.Table) []armProto {
	predCols := q.PredicateColumnsOn(meta.Name)
	joinCols := q.JoinColumnsOn(meta.Name)
	colSet := map[string]bool{}
	for _, c := range predCols {
		colSet[c] = true
	}
	for _, c := range joinCols {
		// The clustered PK already serves join seeks on its leading
		// column; skip those to avoid useless duplicate arms.
		if len(meta.PK) > 0 && meta.PK[0] == c {
			continue
		}
		colSet[c] = true
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	if len(cols) == 0 {
		return nil
	}

	var keys [][]string
	if len(cols) <= g.opts.MaxPermutationCols {
		keys = permutationsOfSubsets(cols)
	} else {
		keys = cappedKeyOrders(q, meta, cols, g.opts.MaxPermutationCols)
	}
	if len(keys) > g.opts.MaxArmsPerTableQuery {
		keys = keys[:g.opts.MaxArmsPerTableQuery]
	}

	payload := q.PayloadColumnsOn(meta.Name)
	protos := make([]armProto, 0, len(keys)+1)
	addProto := func(key, include []string) {
		ix := index.New(meta.Name, key, include)
		protos = append(protos, armProto{
			ix:     ix,
			size:   ix.SizeBytes(meta),
			covers: ix.CoversQueryOn(q, meta.Name),
		})
	}
	for _, key := range keys {
		addProto(key, nil)
		// Covering variant: full-predicate-set keys with payload includes.
		if !g.opts.DisablePayload && len(payload) > 0 && len(key) == len(cols) {
			addProto(key, payload)
		}
	}
	return protos
}

// permutationsOfSubsets returns every permutation of every non-empty
// subset of cols (cols must be small; callers cap at
// MaxPermutationCols).
func permutationsOfSubsets(cols []string) [][]string {
	var out [][]string
	n := len(cols)
	var rec func(cur []string, used []bool)
	rec = func(cur []string, used []bool) {
		if len(cur) > 0 {
			cp := append([]string(nil), cur...)
			out = append(out, cp)
		}
		if len(cur) == n {
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, cols[i]), used)
			used[i] = false
		}
	}
	rec(nil, make([]bool, n))
	return out
}

// cappedKeyOrders handles wide predicate sets: all singles, ordered pairs
// of the most selective columns, and a canonical full ordering (equality
// columns by descending NDV — most selective seeks first — then the
// rest).
func cappedKeyOrders(q *query.Query, meta *catalog.Table, cols []string, maxPerm int) [][]string {
	var out [][]string
	for _, c := range cols {
		out = append(out, []string{c})
	}
	ranked := rankColumns(q, meta, cols)
	top := ranked
	if len(top) > maxPerm {
		top = top[:maxPerm]
	}
	for _, a := range top {
		for _, b := range top {
			if a != b {
				out = append(out, []string{a, b})
			}
		}
	}
	out = append(out, append([]string(nil), ranked...))
	return out
}

// rankColumns orders columns: equality-predicate columns first (by NDV
// descending — higher NDV means a sharper seek), then range columns, then
// join-only columns.
func rankColumns(q *query.Query, meta *catalog.Table, cols []string) []string {
	eq := map[string]bool{}
	rng := map[string]bool{}
	for _, p := range q.FiltersOn(meta.Name) {
		if p.IsEquality() {
			eq[p.Column] = true
		} else {
			rng[p.Column] = true
		}
	}
	ndv := func(c string) int64 {
		if col, ok := meta.Column(c); ok {
			return col.Stats.NDV
		}
		return 0
	}
	class := func(c string) int {
		switch {
		case eq[c]:
			return 0
		case rng[c]:
			return 1
		default:
			return 2
		}
	}
	ranked := append([]string(nil), cols...)
	sort.SliceStable(ranked, func(i, j int) bool {
		ci, cj := class(ranked[i]), class(ranked[j])
		if ci != cj {
			return ci < cj
		}
		ni, nj := ndv(ranked[i]), ndv(ranked[j])
		if ni != nj {
			return ni > nj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

func appendUnique(list []int, v int) []int {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
