// Package mab implements the paper's primary contribution: online index
// selection as a contextual combinatorial multi-armed bandit (C2UCB).
//
// The package provides dynamic arm generation from workload predicates
// (Section IV "Dynamic arms from workload predicates"), two-part context
// engineering (indexed-column-prefix encoding plus derived statistics),
// the C2UCB scoring loop with shared ridge-regression weights, a greedy
// knapsack super-arm oracle with prefix/covering filtering, reward shaping
// from observed execution gains and index creation costs, and the query
// store with workload-shift-scaled forgetting (Algorithm 2).
package mab

import (
	"sort"
	"strconv"

	"dbabandits/internal/catalog"
	"dbabandits/internal/index"
	"dbabandits/internal/query"
)

// Arm is a candidate index the bandit may choose. Arms are identified by
// their index id; the same arm regenerated from a different query keeps
// its learned usage statistics (knowledge lives in the shared theta, but
// usage metadata feeds the context's derived part).
type Arm struct {
	Index *index.Index
	// SizeBytes is the estimated materialised size (the knapsack cost c_i).
	SizeBytes int64
	// Table caches Index.Table.
	Table string
	// Queries lists the template ids of the queries of interest that
	// motivated this arm in the current round.
	Queries []int
	// CoveringFor lists template ids for which this arm is a covering
	// index (drives the oracle's covering filter and context flag D1).
	CoveringFor []int
}

// ID returns the canonical arm identifier (the index id).
func (a *Arm) ID() string { return a.Index.ID() }

// IsCovering reports whether the arm covers any motivating query.
func (a *Arm) IsCovering() bool { return len(a.CoveringFor) > 0 }

// ArmGenOptions bound the arm-generation combinatorics.
type ArmGenOptions struct {
	// MaxPermutationCols is the largest predicate-column-set size for
	// which all permutations are generated (larger sets fall back to
	// canonical orderings). Default 3.
	MaxPermutationCols int
	// MaxArmsPerTableQuery caps arms generated per (query, table) pair.
	// Default 24.
	MaxArmsPerTableQuery int
	// DisablePayload turns off covering-arm generation (key permutations
	// of the full predicate set with payload columns as includes).
	// Covering arms are on by default; this exists for ablations.
	DisablePayload bool
}

// armProto is one memoised candidate of a (query shape, table) pair: the
// index object (with its id string already built), its estimated size,
// and whether it covers the motivating query shape. Everything in it is a
// pure function of the query's structure — tables, predicate columns and
// operators, joins, payload. query.Signature() canonises all of those
// except the join predicates (shapeKey appends them), so protos are
// shared across rounds and across query instances.
type armProto struct {
	ix     *index.Index
	size   int64
	covers bool
}

// maxCachedArmSets bounds the per-round result memo (the proto memo is
// naturally bounded by templates × tables). Dynamic random workloads see
// one distinct QoI combination per round at worst; the cap only matters
// for pathological long-running instances, which simply restart the memo.
const maxCachedArmSets = 256

// ArmGenerator turns queries of interest into candidate arms.
//
// Generation is memoised at two levels, exploiting that query instances
// of one template differ only in constants: per (query shape, table) the
// full key-order enumeration (permutations, capped orderings, covering
// variants, sizes, ids) is computed once ever, and per exact QoI sequence
// the final deduplicated sorted arm set is reused across rounds — the QoI
// window replays the same templates round after round, which previously
// re-ran permutations, rebuilt id strings and re-sorted identical arm
// sets every round. A generator is not safe for concurrent use (each
// tuner instance owns one).
type ArmGenerator struct {
	schema *catalog.Schema
	opts   ArmGenOptions

	protos  map[protoKey][]armProto // (query shape, table) -> protos
	results map[string][]*Arm       // ordered (template id, shape) list -> arms

	// Per-call scratch, reused across rounds: the shape keys and result
	// key of Generate, the shape-canonicalisation buffers, and the
	// column-classification sets of proto enumeration.
	sigs     []string
	keyBuf   []byte
	joinOrd  []int
	shapeBuf []byte
	shapes   map[string]string // interned shape keys of joined queries
	colSet   map[string]bool
	eqCols   map[string]bool
	rngCols  map[string]bool
}

// protoKey addresses the proto memo without concatenating its parts.
type protoKey struct {
	shape string
	table string
}

// NewArmGenerator returns a generator with defaulted options.
func NewArmGenerator(schema *catalog.Schema, opts ArmGenOptions) *ArmGenerator {
	if opts.MaxPermutationCols <= 0 {
		opts.MaxPermutationCols = 3
	}
	if opts.MaxArmsPerTableQuery <= 0 {
		opts.MaxArmsPerTableQuery = 24
	}
	return &ArmGenerator{
		schema:  schema,
		opts:    opts,
		protos:  map[protoKey][]armProto{},
		results: map[string][]*Arm{},
		shapes:  map[string]string{},
		colSet:  map[string]bool{},
		eqCols:  map[string]bool{},
		rngCols: map[string]bool{},
	}
}

// Generate produces the candidate arms for a set of queries of interest,
// de-duplicated by index id, in deterministic order. Workload-based
// generation keeps the action space proportional to the observed
// workload's predicate columns rather than all column combinations.
//
// Callers must treat the returned arms as immutable: the same *Arm
// values are handed out again when a later round replays the same QoI
// set.
func (g *ArmGenerator) Generate(qois []*query.Query) []*Arm {
	sigs := g.sigs[:0]
	buf := g.keyBuf[:0]
	for _, q := range qois {
		sig := g.shapeKey(q)
		sigs = append(sigs, sig)
		buf = strconv.AppendInt(buf, int64(q.TemplateID), 10)
		buf = append(buf, 0)
		buf = append(buf, sig...)
		buf = append(buf, 1)
	}
	g.sigs, g.keyBuf = sigs, buf
	// string(buf) in a map index compiles to a zero-allocation lookup, so
	// the steady state (memo hit) allocates only the returned copy.
	if arms, ok := g.results[string(buf)]; ok {
		return append([]*Arm(nil), arms...)
	}
	key := string(buf)

	byID := map[string]*Arm{}
	for qi, q := range qois {
		for _, tname := range q.Tables {
			meta, ok := g.schema.Table(tname)
			if !ok {
				continue
			}
			pkey := protoKey{shape: sigs[qi], table: tname}
			protos, ok := g.protos[pkey]
			if !ok {
				protos = g.protosForTable(q, meta)
				g.protos[pkey] = protos
			}
			for _, p := range protos {
				id := p.ix.ID()
				arm, exists := byID[id]
				if !exists {
					arm = &Arm{Index: p.ix, Table: tname, SizeBytes: p.size}
					byID[id] = arm
				}
				arm.Queries = appendUnique(arm.Queries, q.TemplateID)
				if p.covers {
					arm.CoveringFor = appendUnique(arm.CoveringFor, q.TemplateID)
				}
			}
		}
	}
	arms := make([]*Arm, 0, len(byID))
	for _, a := range byID {
		arms = append(arms, a)
	}
	sort.Slice(arms, func(i, j int) bool { return arms[i].ID() < arms[j].ID() })

	if len(g.results) >= maxCachedArmSets {
		g.results = map[string][]*Arm{}
	}
	g.results[key] = arms
	return append([]*Arm(nil), arms...)
}

// shapeKey canonises everything arm generation depends on: the query's
// Signature() (tables, predicate columns and operators, payload) plus
// the join predicates, which Signature omits but JoinColumnsOn feeds
// into the candidate key columns. Join-free queries (the common case)
// return the signature memo directly; joined ones assemble the key in
// generator-owned scratch, costing one allocation per join plus the
// result string.
func (g *ArmGenerator) shapeKey(q *query.Query) string {
	sig := q.Signature()
	if len(q.Joins) == 0 {
		return sig
	}
	buf := append(g.shapeBuf[:0], sig...)
	buf = append(buf, 2)
	if len(q.Joins) == 1 {
		// Single join (the common case): no ordering to canonise, append
		// the parts straight into the scratch buffer.
		j := q.Joins[0]
		buf = appendJoin(buf, j)
	} else {
		// Multiple joins: canonise their order by sorting indices
		// componentwise in scratch (an insertion sort over a handful of
		// joins) and append each directly — no per-join string
		// materialisation, so replayed joined templates stay
		// allocation-free. Any fixed total order canonises equally; the
		// key only ever meets keys built the same way.
		ord := g.joinOrd[:0]
		for i := range q.Joins {
			ord = append(ord, i)
		}
		for i := 1; i < len(ord); i++ {
			for k := i; k > 0 && joinLess(q.Joins[ord[k]], q.Joins[ord[k-1]]); k-- {
				ord[k], ord[k-1] = ord[k-1], ord[k]
			}
		}
		g.joinOrd = ord
		for i, oi := range ord {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJoin(buf, q.Joins[oi])
		}
	}
	g.shapeBuf = buf
	// Intern the canonical key: steady-state rounds replay the same
	// joined templates, and the map lookup on the byte buffer is
	// allocation-free.
	if s, ok := g.shapes[string(buf)]; ok {
		return s
	}
	s := string(buf)
	g.shapes[s] = s
	return s
}

// joinLess orders joins componentwise (left table, left column, right
// table, right column) — the fixed total order the multi-join shape key
// canonises with.
func joinLess(a, b query.Join) bool {
	if a.LeftTable != b.LeftTable {
		return a.LeftTable < b.LeftTable
	}
	if a.LeftColumn != b.LeftColumn {
		return a.LeftColumn < b.LeftColumn
	}
	if a.RightTable != b.RightTable {
		return a.RightTable < b.RightTable
	}
	return a.RightColumn < b.RightColumn
}

func appendJoin(buf []byte, j query.Join) []byte {
	buf = append(buf, j.LeftTable...)
	buf = append(buf, '.')
	buf = append(buf, j.LeftColumn...)
	buf = append(buf, '=')
	buf = append(buf, j.RightTable...)
	buf = append(buf, '.')
	buf = append(buf, j.RightColumn...)
	return buf
}

// protosForTable enumerates the candidate indexes one query shape
// motivates on one table. Predicate columns include join columns (the
// paper: "combinations and permutations of query predicates (including
// join predicates)").
func (g *ArmGenerator) protosForTable(q *query.Query, meta *catalog.Table) []armProto {
	predCols := q.PredicateColumnsOn(meta.Name)
	joinCols := q.JoinColumnsOn(meta.Name)
	colSet := g.colSet
	clear(colSet)
	for _, c := range predCols {
		colSet[c] = true
	}
	for _, c := range joinCols {
		// The clustered PK already serves join seeks on its leading
		// column; skip those to avoid useless duplicate arms.
		if len(meta.PK) > 0 && meta.PK[0] == c {
			continue
		}
		colSet[c] = true
	}
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	if len(cols) == 0 {
		return nil
	}

	var keys [][]string
	if len(cols) <= g.opts.MaxPermutationCols {
		keys = permutationsOfSubsets(cols)
	} else {
		keys = g.cappedKeyOrders(q, meta, cols, g.opts.MaxPermutationCols)
	}
	if len(keys) > g.opts.MaxArmsPerTableQuery {
		keys = keys[:g.opts.MaxArmsPerTableQuery]
	}

	payload := q.PayloadColumnsOn(meta.Name)
	protos := make([]armProto, 0, len(keys)+1)
	addProto := func(key, include []string) {
		// The enumerated key orderings are freshly built and never reused
		// mutably, so the index can own them without a defensive copy.
		ix := index.NewOwnKey(meta.Name, key, include)
		protos = append(protos, armProto{
			ix:   ix,
			size: ix.SizeBytes(meta),
			// Equivalent to ix.CoversQueryOn(q, meta.Name), against the
			// referenced-column lists already extracted above rather than
			// re-deriving them per candidate.
			covers: hasAllColumns(ix, predCols) &&
				hasAllColumns(ix, joinCols) &&
				hasAllColumns(ix, payload),
		})
	}
	for _, key := range keys {
		addProto(key, nil)
		// Covering variant: full-predicate-set keys with payload includes.
		if !g.opts.DisablePayload && len(payload) > 0 && len(key) == len(cols) {
			addProto(key, payload)
		}
	}
	return protos
}

func hasAllColumns(ix *index.Index, cols []string) bool {
	for _, c := range cols {
		if !ix.HasColumn(c) {
			return false
		}
	}
	return true
}

// permutationsOfSubsets returns every permutation of every non-empty
// subset of cols (cols must be small; callers cap at
// MaxPermutationCols). The permutations share one flat backing array
// sized exactly in advance, so the enumeration costs three allocations
// however many orderings it emits.
func permutationsOfSubsets(cols []string) [][]string {
	n := len(cols)
	perms, entries := 0, 0
	p := 1
	for k := 1; k <= n; k++ {
		p *= n - k + 1 // P(n,k): permutations of length k
		perms += p
		entries += p * k
	}
	out := make([][]string, 0, perms)
	flat := make([]string, 0, entries)
	// Small fixed-size working arrays (n is capped at MaxPermutationCols,
	// default 3); only out and flat escape. Oversized option values fall
	// back to heap slices.
	var curArr [8]string
	var usedArr [8]bool
	var cur []string
	var used []bool
	if n <= len(usedArr) {
		cur, used = curArr[:0], usedArr[:n]
	} else {
		cur, used = make([]string, 0, n), make([]bool, n)
	}
	var rec func()
	rec = func() {
		if len(cur) > 0 {
			start := len(flat)
			flat = append(flat, cur...)
			out = append(out, flat[start:len(flat):len(flat)])
		}
		if len(cur) == n {
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, cols[i])
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// cappedKeyOrders handles wide predicate sets: all singles, ordered pairs
// of the most selective columns, and a canonical full ordering (equality
// columns by descending NDV — most selective seeks first — then the
// rest).
func (g *ArmGenerator) cappedKeyOrders(q *query.Query, meta *catalog.Table, cols []string, maxPerm int) [][]string {
	var out [][]string
	for _, c := range cols {
		out = append(out, []string{c})
	}
	ranked := g.rankColumns(q, meta, cols)
	top := ranked
	if len(top) > maxPerm {
		top = top[:maxPerm]
	}
	for _, a := range top {
		for _, b := range top {
			if a != b {
				out = append(out, []string{a, b})
			}
		}
	}
	out = append(out, append([]string(nil), ranked...))
	return out
}

// rankColumns orders columns: equality-predicate columns first (by NDV
// descending — higher NDV means a sharper seek), then range columns, then
// join-only columns.
func (g *ArmGenerator) rankColumns(q *query.Query, meta *catalog.Table, cols []string) []string {
	eq, rng := g.eqCols, g.rngCols
	clear(eq)
	clear(rng)
	for _, p := range q.FiltersOn(meta.Name) {
		if p.IsEquality() {
			eq[p.Column] = true
		} else {
			rng[p.Column] = true
		}
	}
	ndv := func(c string) int64 {
		if col, ok := meta.Column(c); ok {
			return col.Stats.NDV
		}
		return 0
	}
	class := func(c string) int {
		switch {
		case eq[c]:
			return 0
		case rng[c]:
			return 1
		default:
			return 2
		}
	}
	ranked := append([]string(nil), cols...)
	sort.SliceStable(ranked, func(i, j int) bool {
		ci, cj := class(ranked[i]), class(ranked[j])
		if ci != cj {
			return ci < cj
		}
		ni, nj := ndv(ranked[i]), ndv(ranked[j])
		if ni != nj {
			return ni > nj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

func appendUnique(list []int, v int) []int {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
