package mab

import (
	"fmt"
	"sort"

	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
)

// This file is the serialisation seam of the MAB layer: snapshots of the
// query store, the C2UCB bandit, and the whole tuner, taken at a round
// boundary and restorable into a freshly constructed instance built with
// the same options. A restored tuner's every subsequent recommendation
// is byte-identical to the uninterrupted tuner's — the checkpoint
// contract of the serving mode.
//
// Deliberately not serialised:
//   - the arm generator's proto/result memos (pure caches of
//     deterministic content; rebuilt on demand),
//   - the ridge theta memo (a pure function of the persisted factors),
//   - pending mid-round feedback state (snapshots are refused until the
//     round's ObserveExecution has landed).

// QueryStoreSnapshot is the serialisable state of a QueryStore.
// Templates are signature-sorted so the marshalled bytes are
// deterministic.
type QueryStoreSnapshot struct {
	Window            int
	LastRound         int
	LastRoundNew      int
	LastRoundObserved int
	Templates         []TemplateInfo
}

// Snapshot captures the store's state.
func (qs *QueryStore) Snapshot() *QueryStoreSnapshot {
	s := &QueryStoreSnapshot{
		Window:            qs.Window,
		LastRound:         qs.lastRound,
		LastRoundNew:      qs.lastRoundNew,
		LastRoundObserved: qs.lastRoundObserved,
		Templates:         make([]TemplateInfo, 0, len(qs.bySig)),
	}
	for _, ti := range qs.bySig {
		s.Templates = append(s.Templates, *ti)
	}
	sort.Slice(s.Templates, func(i, j int) bool {
		return s.Templates[i].Signature < s.Templates[j].Signature
	})
	return s
}

// Restore replaces the store's state with the snapshot's.
func (qs *QueryStore) Restore(s *QueryStoreSnapshot) {
	qs.Window = s.Window
	qs.lastRound = s.LastRound
	qs.lastRoundNew = s.LastRoundNew
	qs.lastRoundObserved = s.LastRoundObserved
	qs.bySig = make(map[string]*TemplateInfo, len(s.Templates))
	for i := range s.Templates {
		ti := s.Templates[i] // copy; do not alias the snapshot
		qs.bySig[ti.Signature] = &ti
	}
}

// C2UCBSnapshot is the serialisable state of the bandit: the ridge
// backend's factors plus the round counter and the adaptive reward
// scale. The alpha schedule is code, not state — the restored bandit
// keeps the schedule it was constructed with.
type C2UCBSnapshot struct {
	Ridge       *linalg.RidgeSnapshot
	Round       int
	RewardScale float64
}

// Snapshot captures the bandit's state.
func (b *C2UCB) Snapshot() *C2UCBSnapshot {
	return &C2UCBSnapshot{
		Ridge:       b.state.Snapshot(),
		Round:       b.round,
		RewardScale: b.rewardScale,
	}
}

// Restore replaces the bandit's learned state with the snapshot's. The
// snapshot's ridge backend is rebuilt as recorded (it may differ from
// the backend the bandit was constructed on), but its dimensionality
// must match — a dimension mismatch means the snapshot was taken under
// different context options and cannot be meaningfully resumed.
func (b *C2UCB) Restore(s *C2UCBSnapshot) error {
	if s == nil || s.Ridge == nil {
		return fmt.Errorf("mab: nil bandit snapshot")
	}
	if s.Ridge.Dim != b.state.Dimension() {
		return fmt.Errorf("mab: bandit snapshot dimension %d, tuner built for %d (context options differ)",
			s.Ridge.Dim, b.state.Dimension())
	}
	core, err := linalg.RestoreRidgeCore(s.Ridge)
	if err != nil {
		return err
	}
	b.state = core
	b.backend = s.Ridge.Backend
	b.round = s.Round
	b.rewardScale = s.RewardScale
	// Construction-time configuration that lives on the backend instance
	// (not in the snapshot, which carries state only) is re-applied to
	// the rebuilt core; the scoring scratch pool is sized by dimension
	// alone and stays valid (dimensions were checked above).
	b.SetForgetRank(b.forgetRank)
	return nil
}

// TunerSnapshot is the serialisable state of the end-to-end tuner at a
// round boundary.
type TunerSnapshot struct {
	Bandit *C2UCBSnapshot
	Store  *QueryStoreSnapshot
	Round  int
	// Config is the currently recommended configuration s_t as
	// rebuildable index definitions.
	Config     []index.Def        `json:",omitempty"`
	Usage      map[string]float64 `json:",omitempty"`
	TableChurn map[string]float64 `json:",omitempty"`
	ColChurn   map[string]float64 `json:",omitempty"`
}

// Snapshot captures the tuner's state. It refuses to run mid-round:
// between Recommend and ObserveExecution the tuner holds pending
// feedback state (selected arms and their scored contexts) that is
// deliberately not serialisable — callers snapshot at round boundaries,
// after the round's execution feedback has been folded in.
func (t *Tuner) Snapshot() (*TunerSnapshot, error) {
	if len(t.pendingArms) > 0 {
		return nil, fmt.Errorf("mab: tuner snapshot mid-round (round %d awaiting execution feedback); snapshot after ObserveExecution", t.round)
	}
	return &TunerSnapshot{
		Bandit:     t.bandit.Snapshot(),
		Store:      t.store.Snapshot(),
		Round:      t.round,
		Config:     t.cfg.Defs(),
		Usage:      copyFloatMap(t.usage),
		TableChurn: copyFloatMap(t.tableChurn),
		ColChurn:   copyFloatMap(t.colChurn),
	}, nil
}

// Restore replaces the tuner's state with the snapshot's. The tuner
// must have been constructed (NewTuner) with the same schema and
// options the snapshotted tuner ran under; everything the options
// derive (context builder, arm generator, alpha schedule) is rebuilt by
// construction and only the learned state is carried over.
func (t *Tuner) Restore(s *TunerSnapshot) error {
	if s == nil || s.Bandit == nil || s.Store == nil {
		return fmt.Errorf("mab: nil tuner snapshot")
	}
	if err := t.bandit.Restore(s.Bandit); err != nil {
		return err
	}
	t.store.Restore(s.Store)
	t.round = s.Round
	t.cfg = index.ConfigFromDefs(s.Config)
	t.usage = copyFloatMap(s.Usage)
	t.tableChurn = copyFloatMap(s.TableChurn)
	t.colChurn = copyFloatMap(s.ColChurn)
	if t.usage == nil {
		t.usage = map[string]float64{}
	}
	if t.tableChurn == nil {
		t.tableChurn = map[string]float64{}
	}
	if t.colChurn == nil {
		t.colChurn = map[string]float64{}
	}
	t.pendingArms = nil
	t.pendingContexts = nil
	t.pendingCreated = nil
	t.pendingMaint = nil
	return nil
}

func copyFloatMap(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
