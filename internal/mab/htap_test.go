package mab

import (
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

// TestContextBuilderUpdateDims pins the HTAP context extension: the two
// update-sensitivity dimensions exist only when UpdateDims is set, sit
// above the derived part, and analytical builders ignore ArmInfo.Churn
// entirely (so analytical contexts stay bit-identical).
func TestContextBuilderUpdateDims(t *testing.T) {
	schema := testdb.Schema()
	plain := NewContextBuilder(schema)
	aware := NewContextBuilder(schema)
	aware.UpdateDims = true
	if aware.Dim() != plain.Dim()+2 {
		t.Fatalf("update-aware dim = %d, want %d", aware.Dim(), plain.Dim()+2)
	}

	arm := &Arm{
		Index:     index.New("orders", []string{"o_date"}, nil),
		Table:     "orders",
		SizeBytes: 1 << 20,
	}
	info := ArmInfo{
		PredicateColumns: map[query.ColumnRef]bool{{Table: "orders", Column: "o_date"}: true},
		DatabaseBytes:    1 << 24,
		Churn:            0.125,
	}

	base := aware.Dim() - 2
	x := aware.Build(arm, info)
	got := map[int]float64{}
	for i, idx := range x.Idx {
		got[idx] = x.Val[i]
	}
	if got[base] != 0.125 {
		t.Fatalf("churn component = %v, want 0.125", got[base])
	}
	wantWeighted := 0.125 * float64(arm.SizeBytes) / float64(info.DatabaseBytes)
	if got[base+1] != wantWeighted {
		t.Fatalf("size-weighted churn = %v, want %v", got[base+1], wantWeighted)
	}

	// Zero churn leaves both components absent (sparse zeros).
	info.Churn = 0
	for _, idx := range aware.Build(arm, info).Idx {
		if idx >= base {
			t.Fatalf("zero-churn context carries update dim %d", idx)
		}
	}

	// An analytical builder ignores Churn and keeps the original dim.
	info.Churn = 0.5
	y := plain.Build(arm, info)
	if y.Dim != plain.Dim() {
		t.Fatalf("analytical context dim = %d, want %d", y.Dim, plain.Dim())
	}
	for _, idx := range y.Idx {
		if idx >= plain.Dim() {
			t.Fatalf("analytical context carries out-of-range dim %d", idx)
		}
	}
}

// TestTunerChurnStatistics drives ObserveUpdates directly: INSERT volume
// accrues to the table (every index pays), UPDATE volume to the written
// columns only, both decaying per round.
func TestTunerChurnStatistics(t *testing.T) {
	schema, db := testdb.BuildScaled(1, 1, 20000)
	tuner := NewTuner(schema, db.DataSizeBytes(), TunerOptions{
		MemoryBudgetBytes:  db.DataSizeBytes(),
		UpdateAwareContext: true,
	})
	rows := float64(schema.MustTable("orders").RowCount)

	// Power-of-two fractions keep every expectation exact in floats.
	tuner.ObserveUpdates([]query.Update{
		{Table: "orders", Kind: query.UpdateInsert, Rows: rows / 8},
		{Table: "orders", Kind: query.UpdateModify, Rows: rows / 16, Columns: []string{"o_total"}},
	}, nil)

	dateArm := &Arm{Index: index.New("orders", []string{"o_date"}, nil), Table: "orders"}
	totalArm := &Arm{Index: index.New("orders", []string{"o_total"}, nil), Table: "orders"}
	custArm := &Arm{Index: index.New("customer", []string{"c_nation"}, nil), Table: "customer"}

	if got := tuner.armChurn(dateArm); got != 0.125 {
		t.Fatalf("insert-only exposure = %v, want 0.125", got)
	}
	if got := tuner.armChurn(totalArm); got != 0.125+0.0625 {
		t.Fatalf("insert+update exposure = %v, want 0.1875", got)
	}
	if got := tuner.armChurn(custArm); got != 0 {
		t.Fatalf("untouched table exposure = %v, want 0", got)
	}

	// A quiet round decays both statistics by ChurnDecay (default 0.5).
	tuner.ObserveUpdates(nil, nil)
	if got := tuner.armChurn(totalArm); got != 0.09375 {
		t.Fatalf("decayed exposure = %v, want 0.09375", got)
	}
}

// TestTunerMaintenanceChargedToReward runs two identical tuners through
// an identical round; one is charged maintenance on its selected arms.
// The charged tuner's learned expected score for those arms must drop
// below the uncharged one's — maintenance reaches the bandit's reward.
func TestTunerMaintenanceChargedToReward(t *testing.T) {
	run := func(maintSec float64) float64 {
		h := newMiniHarness(t, TunerOptions{UpdateAwareContext: true})
		h.round(t, selectiveWorkload(1)) // round 1: observe, empty config

		rec := h.tuner.Recommend(h.lastWorkload)
		if rec.Config.Len() == 0 {
			t.Fatal("round 2 selected nothing")
		}
		// Snapshot the contexts the bandit is about to be updated with.
		contexts := append([]linalg.SparseVector(nil), h.tuner.pendingContexts...)

		perMaint := map[string]float64{}
		for _, id := range rec.Config.IDs() {
			perMaint[id] = maintSec
		}
		h.tuner.ObserveUpdates([]query.Update{
			{Table: "orders", Kind: query.UpdateInsert, Rows: 100},
		}, perMaint)

		creation := map[string]float64{}
		for _, ix := range rec.ToCreate {
			meta := h.schema.MustTable(ix.Table)
			creation[ix.ID()] = h.cm.IndexBuildSec(meta, ix.SizeBytes(meta))
		}
		var stats []*engine.ExecStats
		for _, q := range selectiveWorkload(2) {
			plan, err := h.opt.ChoosePlan(q, rec.Config)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			st, err := engine.Execute(h.db, plan, h.cm)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			stats = append(stats, st)
		}
		h.tuner.ObserveExecution(stats, creation)
		if h.tuner.pendingMaint != nil {
			t.Fatal("pending maintenance not cleared after the observation")
		}

		var sum float64
		for _, s := range h.tuner.Bandit().ExpectedScores(contexts) {
			sum += s
		}
		return sum
	}
	unchargedScore := run(0)
	chargedScore := run(500)
	if chargedScore >= unchargedScore {
		t.Fatalf("maintenance-charged expected score %v not below uncharged %v",
			chargedScore, unchargedScore)
	}
}
