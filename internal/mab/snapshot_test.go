package mab

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dbabandits/internal/linalg"
)

// TestTunerSnapshotRoundTrip snapshots a live tuner mid-run (through a
// JSON round-trip, as the serve checkpoint does), restores it into a
// freshly constructed tuner, and requires the two to agree byte for
// byte — identical recommendations every remaining round and identical
// final snapshots — on both ridge backends.
func TestTunerSnapshotRoundTrip(t *testing.T) {
	for _, backend := range linalg.RidgeBackends() {
		t.Run(backend, func(t *testing.T) {
			opts := TunerOptions{RidgeBackend: backend}
			h := newMiniHarness(t, opts)
			for round := 1; round <= 5; round++ {
				h.round(t, selectiveWorkload(round))
			}

			snap, err := h.tuner.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var decoded TunerSnapshot
			if err := json.Unmarshal(raw, &decoded); err != nil {
				t.Fatal(err)
			}

			h2 := newMiniHarness(t, opts)
			if err := h2.tuner.Restore(&decoded); err != nil {
				t.Fatal(err)
			}
			h2.lastWorkload = h.lastWorkload

			if got, want := h2.tuner.Config().IDs(), h.tuner.Config().IDs(); strings.Join(got, ";") != strings.Join(want, ";") {
				t.Fatalf("restored config %v, want %v", got, want)
			}

			for round := 6; round <= 10; round++ {
				wl := selectiveWorkload(round)
				h.round(t, wl)
				h2.round(t, wl)
				got := strings.Join(h2.tuner.Config().IDs(), ";")
				want := strings.Join(h.tuner.Config().IDs(), ";")
				if got != want {
					t.Fatalf("round %d: restored config %q, want %q", round, got, want)
				}
			}

			finalA, err := h.tuner.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			finalB, err := h2.tuner.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := json.Marshal(finalA)
			jb, _ := json.Marshal(finalB)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("final snapshots diverge:\n%s\nvs\n%s", ja, jb)
			}
		})
	}
}

// TestTunerSnapshotRefusesMidRound pins the round-boundary contract:
// between Recommend and ObserveExecution the pending feedback state is
// not serialisable and Snapshot must refuse.
func TestTunerSnapshotRefusesMidRound(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	h.round(t, selectiveWorkload(1))
	h.tuner.Recommend(h.lastWorkload)
	if _, err := h.tuner.Snapshot(); err == nil {
		t.Fatal("mid-round snapshot accepted")
	}
}

// TestTunerRestoreRejectsDimensionMismatch pins that a snapshot taken
// under different context options (different dimensionality) is
// refused rather than silently misapplied.
func TestTunerRestoreRejectsDimensionMismatch(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	h.round(t, selectiveWorkload(1))
	snap, err := h.tuner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h2 := newMiniHarness(t, TunerOptions{UpdateAwareContext: true})
	if err := h2.tuner.Restore(snap); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
