package mab

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dbabandits/internal/linalg"
)

// The paper's safety guarantee rests on C2UCB's O~(sqrt(T)) alpha-regret
// (Section III, corrected analysis of Oetomo et al.): the per-round
// average regret approaches zero. These tests check the empirical
// behaviour on synthetic linear-reward bandits where the optimal policy
// is computable exactly.

// syntheticBandit draws k arms with fixed contexts and a hidden theta;
// rewards are theta'x + noise. The super arm picks m arms per round.
type syntheticBandit struct {
	rng      *rand.Rand
	theta    linalg.Vector
	contexts []linalg.SparseVector
	m        int
	noise    float64
}

func newSyntheticBandit(seed int64, dim, k, m int, noise float64) *syntheticBandit {
	rng := rand.New(rand.NewSource(seed))
	theta := linalg.NewVector(dim)
	for i := range theta {
		theta[i] = rng.NormFloat64()
	}
	ctxs := make([]linalg.SparseVector, k)
	for a := range ctxs {
		x := linalg.NewVector(dim)
		for i := range x {
			x[i] = rng.Float64()
		}
		ctxs[a] = linalg.SparseFromDense(x)
	}
	return &syntheticBandit{rng: rng, theta: theta, contexts: ctxs, m: m, noise: noise}
}

// optimalReward is the expected reward of the best m arms.
func (sb *syntheticBandit) optimalReward() float64 {
	vals := make([]float64, len(sb.contexts))
	for i, x := range sb.contexts {
		vals[i] = sb.theta.DotSparse(x)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	var s float64
	for i := 0; i < sb.m; i++ {
		s += vals[i]
	}
	return s
}

// play runs T rounds of C2UCB with a top-m oracle and returns the
// cumulative regret trajectory.
func (sb *syntheticBandit) play(T int) []float64 {
	bandit := NewC2UCB(len(sb.theta), 0.25, nil)
	opt := sb.optimalReward()
	regret := make([]float64, T)
	var cum float64
	for t := 0; t < T; t++ {
		bandit.BeginRound()
		scores := bandit.Scores(sb.contexts)
		// top-m oracle
		type sc struct {
			i int
			v float64
		}
		order := make([]sc, len(scores))
		for i, v := range scores {
			order[i] = sc{i, v}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].v > order[b].v })
		var ctxs []linalg.SparseVector
		var rewards []float64
		var expected float64
		for j := 0; j < sb.m; j++ {
			i := order[j].i
			x := sb.contexts[i]
			mean := sb.theta.DotSparse(x)
			expected += mean
			ctxs = append(ctxs, x)
			rewards = append(rewards, mean+sb.rng.NormFloat64()*sb.noise)
		}
		bandit.Update(ctxs, rewards)
		cum += opt - expected
		regret[t] = cum
	}
	return regret
}

func TestRegretPerRoundAverageVanishes(t *testing.T) {
	sb := newSyntheticBandit(1, 6, 40, 3, 0.1)
	reg := sb.play(400)
	early := reg[49] / 50
	late := (reg[399] - reg[199]) / 200
	if late > early*0.5 && late > 0.05 {
		t.Fatalf("per-round regret not vanishing: early %v, late %v", early, late)
	}
}

func TestRegretSublinearGrowth(t *testing.T) {
	sb := newSyntheticBandit(2, 5, 30, 2, 0.1)
	reg := sb.play(800)
	// Cumulative regret at 4T should be well below 4x the regret at T if
	// growth is ~sqrt (allow 2.6x; exact sqrt predicts 2x).
	r200, r800 := math.Max(reg[199], 1e-9), reg[799]
	if r800 > 2.6*r200 && r800 > 1 {
		t.Fatalf("regret growth looks linear: R(200)=%v R(800)=%v", r200, r800)
	}
}

func TestRegretConvergesToOptimalSuperArm(t *testing.T) {
	sb := newSyntheticBandit(3, 4, 20, 2, 0.05)
	bandit := NewC2UCB(len(sb.theta), 0.25, nil)
	// After enough rounds the greedy selection matches the true top-m.
	for t1 := 0; t1 < 300; t1++ {
		bandit.BeginRound()
		scores := bandit.Scores(sb.contexts)
		best := topM(scores, sb.m)
		var ctxs []linalg.SparseVector
		var rewards []float64
		for _, i := range best {
			x := sb.contexts[i]
			ctxs = append(ctxs, x)
			rewards = append(rewards, sb.theta.DotSparse(x)+sb.rng.NormFloat64()*sb.noise)
		}
		bandit.Update(ctxs, rewards)
	}
	truth := make([]float64, len(sb.contexts))
	for i, x := range sb.contexts {
		truth[i] = sb.theta.DotSparse(x)
	}
	wantSet := map[int]bool{}
	for _, i := range topM(truth, sb.m) {
		wantSet[i] = true
	}
	bandit.BeginRound()
	got := topM(bandit.ExpectedScores(sb.contexts), sb.m)
	matches := 0
	for _, i := range got {
		if wantSet[i] {
			matches++
		}
	}
	if matches < sb.m-1 {
		t.Fatalf("converged selection matches only %d of %d optimal arms", matches, sb.m)
	}
}

// TestRegretRobustToAdversarialStart plants a misleading prior: the worst
// arm pays out hugely for the first rounds, then reverts to its true
// mean. The UCB must recover (the paper: "the bandit is nonetheless
// resilient as it can quickly recover from any such performance
// regressions").
func TestRegretRobustToAdversarialStart(t *testing.T) {
	sb := newSyntheticBandit(4, 4, 10, 1, 0.05)
	bandit := NewC2UCB(len(sb.theta), 0.25, nil)
	truth := make([]float64, len(sb.contexts))
	for i, x := range sb.contexts {
		truth[i] = sb.theta.DotSparse(x)
	}
	worst := topM(negate(truth), 1)[0]
	bestTrue := topM(truth, 1)[0]

	for t1 := 0; t1 < 250; t1++ {
		bandit.BeginRound()
		pick := topM(bandit.Scores(sb.contexts), 1)[0]
		x := sb.contexts[pick]
		mean := sb.theta.DotSparse(x)
		if pick == worst && t1 < 10 {
			mean = 10 // adversarial honeymoon
		}
		bandit.Update([]linalg.SparseVector{x}, []float64{mean + sb.rng.NormFloat64()*sb.noise})
	}
	bandit.BeginRound()
	final := topM(bandit.ExpectedScores(sb.contexts), 1)[0]
	if final == worst {
		t.Fatal("bandit stuck on the adversarially boosted worst arm")
	}
	if final != bestTrue {
		// Allow near-optimal alternatives but not the planted trap.
		if truth[final] < truth[bestTrue]-0.5 {
			t.Fatalf("bandit converged to clearly sub-optimal arm %d (%v vs best %v)", final, truth[final], truth[bestTrue])
		}
	}
}

func topM(vals []float64, m int) []int {
	type sc struct {
		i int
		v float64
	}
	order := make([]sc, len(vals))
	for i, v := range vals {
		order[i] = sc{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v > order[b].v })
	out := make([]int, m)
	for j := 0; j < m; j++ {
		out[j] = order[j].i
	}
	return out
}

func negate(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = -v
	}
	return out
}
