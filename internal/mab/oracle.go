package mab

import "sort"

// SelectSuperArm is the greedy alpha-approximation oracle with filtering
// (Section IV, "A greedy oracle for super-arm selection"): arms with
// negative scores are pruned; then selection and filtering alternate until
// the memory budget is exhausted. The filtering step drops arms that no
// longer fit the remaining budget, arms subsumed by an already selected
// arm (prefix matching), and — when a covering arm is selected — every
// other arm motivated solely by the queries it covers.
//
// The knapsack-constrained submodular objective makes this greedy oracle
// a (1 - 1/e)-approximation (Nemhauser et al.), which is what the paper's
// alpha-regret guarantee is stated against.
func SelectSuperArm(arms []*Arm, scores []float64, budgetBytes int64) []*Arm {
	return SelectSuperArmThrottled(arms, scores, budgetBytes, nil, 0)
}

// SelectSuperArmThrottled is SelectSuperArm with a creation throttle:
// when maxNew > 0, at most maxNew arms absent from the existing
// configuration are selected per round. Spreading creations across rounds
// bounds the per-round materialisation spike and keeps the semi-bandit
// credit assignment clean (few new arms share each round's reward).
func SelectSuperArmThrottled(arms []*Arm, scores []float64, budgetBytes int64, existing map[string]bool, maxNew int) []*Arm {
	type cand struct {
		arm   *Arm
		score float64
	}
	var cands []cand
	for i, a := range arms {
		if scores[i] > 0 {
			cands = append(cands, cand{arm: a, score: scores[i]})
		}
	}
	// Deterministic order: by score descending, id ascending on ties.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].arm.ID() < cands[j].arm.ID()
	})

	var selected []*Arm
	coveredTemplates := map[int]bool{}
	remaining := budgetBytes
	newPicks := 0

	for len(cands) > 0 {
		// Selection step: the highest-scored remaining arm (the slice is
		// sorted, so it is the head).
		pick := cands[0].arm
		cands = cands[1:]
		if pick.SizeBytes > remaining {
			continue
		}
		isNew := existing == nil || !existing[pick.ID()]
		if maxNew > 0 && isNew && newPicks >= maxNew {
			continue
		}
		if isNew {
			newPicks++
		}
		selected = append(selected, pick)
		remaining -= pick.SizeBytes
		if pick.IsCovering() {
			for _, t := range pick.CoveringFor {
				coveredTemplates[t] = true
			}
		}

		// Filtering step.
		kept := cands[:0]
		for _, c := range cands {
			if c.arm.SizeBytes > remaining {
				continue
			}
			if c.arm.Index.SubsumedBy(pick.Index) {
				continue
			}
			if allCovered(c.arm.Queries, coveredTemplates) {
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}

	// Post-pass: an arm picked early can be subsumed by a wider arm picked
	// later (the step filter only looks forward); drop such redundant
	// prefixes from the final super arm.
	final := selected[:0]
	for i, a := range selected {
		redundant := false
		for j, b := range selected {
			if i != j && a.Index.SubsumedBy(b.Index) && (len(a.Index.Key) < len(b.Index.Key) || i > j) {
				redundant = true
				break
			}
		}
		if !redundant {
			final = append(final, a)
		}
	}
	return final
}

// allCovered reports whether every motivating template of the arm is
// already served by a selected covering index. Arms motivated by at least
// one uncovered template stay in play.
func allCovered(templates []int, covered map[int]bool) bool {
	if len(templates) == 0 {
		return false
	}
	for _, t := range templates {
		if !covered[t] {
			return false
		}
	}
	return true
}
