package mab

import "sort"

// SelectSuperArm is the greedy alpha-approximation oracle with filtering
// (Section IV, "A greedy oracle for super-arm selection"): arms with
// negative scores are pruned; then selection and filtering alternate until
// the memory budget is exhausted. The filtering step drops arms that no
// longer fit the remaining budget, arms subsumed by an already selected
// arm (prefix matching), and — when a covering arm is selected — every
// other arm motivated solely by the queries it covers.
//
// The knapsack-constrained submodular objective makes this greedy oracle
// a (1 - 1/e)-approximation (Nemhauser et al.), which is what the paper's
// alpha-regret guarantee is stated against.
func SelectSuperArm(arms []*Arm, scores []float64, budgetBytes int64) []*Arm {
	return SelectSuperArmThrottled(arms, scores, budgetBytes, nil, 0)
}

// oracleCand pairs an arm with its score for the greedy ordering.
type oracleCand struct {
	arm   *Arm
	score float64
}

// oracleScratch is the reusable working memory of one oracle invocation:
// the candidate ordering, the selection list, and the covered-template
// set. A scratch belongs to one caller (the tuner owns one per round
// loop); the selection the scratch variant returns aliases it and is
// valid until the next call with the same scratch.
type oracleScratch struct {
	cands    []oracleCand
	selected []*Arm
	covered  map[int]bool
}

// SelectSuperArmThrottled is SelectSuperArm with a creation throttle:
// when maxNew > 0, at most maxNew arms absent from the existing
// configuration are selected per round. Spreading creations across rounds
// bounds the per-round materialisation spike and keeps the semi-bandit
// credit assignment clean (few new arms share each round's reward).
func SelectSuperArmThrottled(arms []*Arm, scores []float64, budgetBytes int64, existing map[string]bool, maxNew int) []*Arm {
	return selectSuperArmScratch(arms, scores, budgetBytes, existing, maxNew, &oracleScratch{})
}

// selectSuperArmScratch is the oracle through caller-owned scratch — the
// recommend loop's warm path. Selection is identical to
// SelectSuperArmThrottled; the returned slice aliases the scratch.
func selectSuperArmScratch(arms []*Arm, scores []float64, budgetBytes int64, existing map[string]bool, maxNew int, s *oracleScratch) []*Arm {
	cands := s.cands[:0]
	for i, a := range arms {
		if scores[i] > 0 {
			cands = append(cands, oracleCand{arm: a, score: scores[i]})
		}
	}
	s.cands = cands
	// Deterministic order: by score descending, id ascending on ties.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].arm.ID() < cands[j].arm.ID()
	})

	selected := s.selected[:0]
	if s.covered == nil {
		s.covered = map[int]bool{}
	}
	coveredTemplates := s.covered
	clear(coveredTemplates)
	remaining := budgetBytes
	newPicks := 0

	for len(cands) > 0 {
		// Selection step: the highest-scored remaining arm (the slice is
		// sorted, so it is the head).
		pick := cands[0].arm
		cands = cands[1:]
		if pick.SizeBytes > remaining {
			continue
		}
		isNew := existing == nil || !existing[pick.ID()]
		if maxNew > 0 && isNew && newPicks >= maxNew {
			continue
		}
		if isNew {
			newPicks++
		}
		selected = append(selected, pick)
		remaining -= pick.SizeBytes
		if pick.IsCovering() {
			for _, t := range pick.CoveringFor {
				coveredTemplates[t] = true
			}
		}

		// Filtering step.
		kept := cands[:0]
		for _, c := range cands {
			if c.arm.SizeBytes > remaining {
				continue
			}
			if c.arm.Index.SubsumedBy(pick.Index) {
				continue
			}
			if allCovered(c.arm.Queries, coveredTemplates) {
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}
	s.selected = selected

	// Post-pass: an arm picked early can be subsumed by a wider arm picked
	// later (the step filter only looks forward); drop such redundant
	// prefixes from the final super arm.
	final := selected[:0]
	for i, a := range selected {
		redundant := false
		for j, b := range selected {
			if i != j && a.Index.SubsumedBy(b.Index) && (len(a.Index.Key) < len(b.Index.Key) || i > j) {
				redundant = true
				break
			}
		}
		if !redundant {
			final = append(final, a)
		}
	}
	return final
}

// allCovered reports whether every motivating template of the arm is
// already served by a selected covering index. Arms motivated by at least
// one uncovered template stay in play.
func allCovered(templates []int, covered map[int]bool) bool {
	if len(templates) == 0 {
		return false
	}
	for _, t := range templates {
		if !covered[t] {
			return false
		}
	}
	return true
}
