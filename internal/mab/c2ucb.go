package mab

import (
	"math"

	"dbabandits/internal/linalg"
	"dbabandits/internal/runner"
)

// C2UCB is the contextual combinatorial UCB bandit (Qin, Chen & Zhu,
// SDM'14) with the corrected regret analysis of Oetomo et al. It keeps
// one ridge regression shared across all arms: all learned knowledge
// lives in theta, so newly generated arms are scored without ever having
// been played — the property that makes workload-driven dynamic arms
// viable (Section III).
//
// Contexts are sparse: an index's context has at most one non-zero per
// key column plus three derived components, so scoring and updating route
// through the O(nnz²) sparse ridge kernels (bit-identical to the dense
// path — see internal/linalg).
//
// The ridge regression itself is pluggable (linalg.RidgeCore): the
// default Sherman–Morrison explicit-inverse backend, or the factored
// Cholesky backend that maintains no inverse at all. Scoring goes
// through the backend's memoised theta and batched width kernels, so
// theta is derived at most once per state change and the per-arm work
// is one dot product plus one batched quadratic form.
type C2UCB struct {
	state   linalg.RidgeCore
	backend string // resolved ridge-backend name the bandit runs on
	// Alpha returns the exploration-boost factor for round t (1-based).
	Alpha func(t int) float64
	round int

	// rewardScale tracks the magnitude of observed rewards so the
	// exploration boost stays commensurate with the reward units
	// (simulated seconds here, where queries range from milliseconds to
	// hundreds of seconds).
	rewardScale float64

	// scoreWorkers bounds the worker pool Scores/ExpectedScores fan the
	// candidate batch across; <= 1 scores serially on the caller's
	// goroutine. Scores are byte-identical at any setting: the range is
	// partitioned deterministically by arm index, each output slot is
	// written by exactly one shard, and every shard reads only immutable
	// backend state through its own scratch.
	scoreWorkers int
	// scratch holds one backend scoring scratch per shard, grown lazily
	// and reused across rounds (scratch is sized by dimension only, so it
	// survives snapshot restores — Restore enforces matching dimensions).
	scratch []*linalg.BatchScratch

	// forgetRank mirrors the SM backend's low-rank Forget budget so a
	// snapshot restore (which rebuilds the backend) can re-apply it.
	forgetRank int
}

// parallelScoreMinArms is the batch size below which Scores stays
// serial even when a worker pool is configured: goroutine fan-out costs
// more than solving a handful of arms. The cutoff changes scheduling
// only, never bytes — scores are identical either way.
const parallelScoreMinArms = 64

// DefaultAlpha is the exploration schedule used by the experiments: a
// slowly growing sqrt-log factor as in the C2UCB analysis.
func DefaultAlpha(t int) float64 {
	return 0.45 * math.Sqrt(math.Log(float64(t)+2))
}

// NewC2UCB creates the bandit with context dimension dim and ridge
// regularisation lambda on the default (Sherman–Morrison) backend. A
// nil alpha uses DefaultAlpha.
func NewC2UCB(dim int, lambda float64, alpha func(int) float64) *C2UCB {
	b, err := NewC2UCBBackend(linalg.BackendSM, dim, lambda, alpha)
	if err != nil {
		panic(err) // unreachable: the default backend always constructs
	}
	return b
}

// NewC2UCBBackend creates the bandit on the named ridge backend ("" or
// linalg.BackendSM for Sherman–Morrison, linalg.BackendChol for the
// factored Cholesky core). A nil alpha uses DefaultAlpha.
func NewC2UCBBackend(backend string, dim int, lambda float64, alpha func(int) float64) (*C2UCB, error) {
	core, err := linalg.NewRidgeCore(backend, dim, lambda)
	if err != nil {
		return nil, err
	}
	if backend == "" {
		backend = linalg.BackendSM
	}
	if alpha == nil {
		alpha = DefaultAlpha
	}
	return &C2UCB{
		state:       core,
		backend:     backend,
		Alpha:       alpha,
		rewardScale: 1,
	}, nil
}

// SetRebaseSchedule overrides the Sherman–Morrison backend's
// inverse-maintenance schedule: every is the fixed fallback cadence (0
// keeps the default), driftThreshold the adaptive rank-1 drift trigger
// (0 keeps the default, negative disables the adaptive schedule). See
// linalg.RidgeState. The factored backend maintains no inverse, so it
// has no schedule and the call is a no-op.
func (b *C2UCB) SetRebaseSchedule(every int, driftThreshold float64) {
	if rs, ok := b.state.(*linalg.RidgeState); ok {
		rs.RebaseEvery = every
		rs.DriftThreshold = driftThreshold
	}
}

// SetScoreWorkers bounds the worker pool the batched arm scoring fans
// across; n <= 1 (the default) scores serially. Any setting produces
// byte-identical scores — this is purely a latency knob.
func (b *C2UCB) SetScoreWorkers(n int) { b.scoreWorkers = n }

// ScoreWorkers reports the configured scoring worker bound.
func (b *C2UCB) ScoreWorkers() int { return b.scoreWorkers }

// SetForgetRank budgets the Sherman–Morrison backend's low-rank Forget
// correction (see linalg.RidgeState.ForgetRank); 0 keeps the exact
// Forget-triggered rebase. The factored backend forgets on the factor
// directly and has no rebase to replace, so there the call only records
// the setting.
func (b *C2UCB) SetForgetRank(k int) {
	b.forgetRank = k
	if rs, ok := b.state.(*linalg.RidgeState); ok {
		rs.ForgetRank = k
	}
}

// scoreShards returns how many shards a batch of n arms scores across.
func (b *C2UCB) scoreShards(n int) int {
	if b.scoreWorkers <= 1 || n < parallelScoreMinArms {
		return 1
	}
	return b.scoreWorkers
}

// ensureScratch grows the per-shard scratch pool to at least w entries.
func (b *C2UCB) ensureScratch(w int) {
	for len(b.scratch) < w {
		b.scratch = append(b.scratch, linalg.NewBatchScratch(b.state.Dimension()))
	}
}

// BeginRound advances the round counter (Algorithm 1, line 3).
func (b *C2UCB) BeginRound() { b.round++ }

// Round returns the current 1-based round.
func (b *C2UCB) Round() int { return b.round }

// Scores computes the UCB score for every context (Algorithm 1, line 8):
//
//	r_hat(i) = theta' x(i) + alpha_t * sqrt(x(i)' V^{-1} x(i))
//
// The widths for the whole candidate batch are computed in one blocked
// pass over the backend state and theta comes from the backend's memo,
// so no per-arm call re-derives either; each entry is bit-identical to
// the historical per-arm theta.DotSparse + ConfidenceWidthSparse form.
//
// With SetScoreWorkers > 1 the batch is partitioned deterministically
// by arm index across a bounded worker pool, each shard scoring through
// its own backend scratch. Theta is materialised once, serially, before
// the fan-out (the memo write is the one lazy mutation scoring
// performs), after which every shard reads only immutable state — so
// the parallel scores are byte-identical to the serial ones.
func (b *C2UCB) Scores(contexts []linalg.SparseVector) []float64 {
	out := make([]float64, len(contexts))
	b.ScoresInto(contexts, out)
	return out
}

// ScoresInto is Scores into a caller-supplied slice (len(out) must equal
// len(contexts)) — the tuner's round loop reuses one scores buffer across
// rounds. Results are byte-identical to Scores.
func (b *C2UCB) ScoresInto(contexts []linalg.SparseVector, out []float64) {
	theta := b.state.ThetaCached()
	alpha := b.Alpha(b.round) * b.rewardScale
	if w := b.scoreShards(len(contexts)); w > 1 {
		b.ensureScratch(w)
		runner.Sharded(len(contexts), w, func(shard, lo, hi int) {
			b.state.ConfidenceWidthBatchScratch(contexts[lo:hi], out[lo:hi], b.scratch[shard])
			for i := lo; i < hi; i++ {
				out[i] = theta.DotSparse(contexts[i]) + alpha*out[i]
			}
		})
		return
	}
	b.state.ConfidenceWidthBatch(contexts, out)
	for i, x := range contexts {
		out[i] = theta.DotSparse(x) + alpha*out[i]
	}
}

// ExpectedScores returns the exploitation-only point estimates theta'x,
// used by tests and diagnostics. Like Scores it shards across the
// configured worker pool (dot products only — no backend scratch
// needed), byte-identically to the serial pass.
func (b *C2UCB) ExpectedScores(contexts []linalg.SparseVector) []float64 {
	theta := b.state.ThetaCached()
	out := make([]float64, len(contexts))
	runner.Sharded(len(contexts), b.scoreShards(len(contexts)), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = theta.DotSparse(contexts[i])
		}
	})
	return out
}

// Update folds in the semi-bandit feedback for the played arms
// (Algorithm 1, lines 11-13): one (context, reward) pair per arm in the
// super arm.
func (b *C2UCB) Update(contexts []linalg.SparseVector, rewards []float64) {
	for i, x := range contexts {
		r := rewards[i]
		b.state.ObserveSparse(x, r)
		if a := math.Abs(r); a > b.rewardScale {
			// Grow quickly, decay slowly: scale tracks the largest
			// observed reward magnitude with a light decay so one early
			// outlier does not pin exploration forever.
			b.rewardScale = a
		}
	}
	b.rewardScale *= 0.995
	if b.rewardScale < 1 {
		b.rewardScale = 1
	}
}

// Forget discounts learned knowledge toward the prior by gamma in [0,1];
// the tuner calls it scaled by detected workload-shift intensity.
func (b *C2UCB) Forget(gamma float64) { b.state.Forget(gamma) }

// Theta exposes the current coefficient estimate (diagnostics/tests).
// The vector is owned by the ridge backend; callers must not mutate it.
func (b *C2UCB) Theta() linalg.Vector { return b.state.Theta() }

// Dim returns the context dimensionality.
func (b *C2UCB) Dim() int { return b.state.Dimension() }

// Backend names the ridge backend the bandit runs on (the resolved
// name passed to NewC2UCBBackend).
func (b *C2UCB) Backend() string { return b.backend }
