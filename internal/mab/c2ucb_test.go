package mab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbabandits/internal/linalg"
)

func TestC2UCBLearnsLinearScores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 5
	theta := linalg.Vector{2, -1, 0.5, 3, -2}
	b := NewC2UCB(dim, 0.25, nil)
	for round := 0; round < 200; round++ {
		b.BeginRound()
		var ctxs []linalg.SparseVector
		var rewards []float64
		for k := 0; k < 3; k++ {
			x := linalg.NewVector(dim)
			for i := range x {
				x[i] = rng.Float64()
			}
			ctxs = append(ctxs, linalg.SparseFromDense(x))
			rewards = append(rewards, theta.Dot(x)+rng.NormFloat64()*0.05)
		}
		b.Update(ctxs, rewards)
	}
	got := b.Theta()
	if !got.Equal(theta, 0.2) {
		t.Fatalf("theta = %v, want approx %v", got, theta)
	}
}

func TestC2UCBScoresIncludeExplorationBoost(t *testing.T) {
	b := NewC2UCB(3, 1, nil)
	b.BeginRound()
	x := linalg.SparseFromDense(linalg.Vector{1, 0, 0})
	ucb := b.Scores([]linalg.SparseVector{x})[0]
	point := b.ExpectedScores([]linalg.SparseVector{x})[0]
	if ucb <= point {
		t.Fatalf("UCB %v should exceed point estimate %v for unexplored arm", ucb, point)
	}
}

func TestC2UCBBoostShrinksWithObservations(t *testing.T) {
	b := NewC2UCB(3, 1, nil)
	x := linalg.SparseFromDense(linalg.Vector{1, 0.5, 0})
	b.BeginRound()
	before := b.Scores([]linalg.SparseVector{x})[0] - b.ExpectedScores([]linalg.SparseVector{x})[0]
	for i := 0; i < 30; i++ {
		b.Update([]linalg.SparseVector{x}, []float64{0})
	}
	after := b.Scores([]linalg.SparseVector{x})[0] - b.ExpectedScores([]linalg.SparseVector{x})[0]
	if after >= before {
		t.Fatalf("exploration boost did not shrink: %v -> %v", before, after)
	}
}

func TestC2UCBGeneralisesToUnseenArms(t *testing.T) {
	// The weight-sharing property: knowledge transfers to arms never
	// played, driven purely by context similarity.
	rng := rand.New(rand.NewSource(3))
	dim := 4
	theta := linalg.Vector{5, 0, -3, 1}
	b := NewC2UCB(dim, 0.25, nil)
	for round := 0; round < 300; round++ {
		b.BeginRound()
		x := linalg.NewVector(dim)
		for i := range x {
			x[i] = rng.Float64()
		}
		b.Update([]linalg.SparseVector{linalg.SparseFromDense(x)}, []float64{theta.Dot(x) + rng.NormFloat64()*0.01})
	}
	unseen := linalg.Vector{1, 1, 0, 0} // never played exactly
	got := b.ExpectedScores([]linalg.SparseVector{linalg.SparseFromDense(unseen)})[0]
	if math.Abs(got-theta.Dot(unseen)) > 0.5 {
		t.Fatalf("unseen arm estimate %v, want approx %v", got, theta.Dot(unseen))
	}
}

func TestC2UCBForgetResetsKnowledge(t *testing.T) {
	b := NewC2UCB(2, 1, nil)
	x := linalg.SparseFromDense(linalg.Vector{1, 0})
	for i := 0; i < 50; i++ {
		b.Update([]linalg.SparseVector{x}, []float64{10})
	}
	if b.Theta()[0] < 5 {
		t.Fatalf("theta not learned: %v", b.Theta())
	}
	b.Forget(1)
	if math.Abs(b.Theta()[0]) > 1e-9 {
		t.Fatalf("theta after full forget: %v", b.Theta())
	}
}

func TestC2UCBRewardScaleAdapts(t *testing.T) {
	b := NewC2UCB(2, 1, nil)
	if b.rewardScale != 1 {
		t.Fatalf("initial scale = %v", b.rewardScale)
	}
	b.Update([]linalg.SparseVector{linalg.SparseFromDense(linalg.Vector{1, 0})}, []float64{500})
	if b.rewardScale < 400 {
		t.Fatalf("scale did not grow: %v", b.rewardScale)
	}
	// Decay pulls it down slowly across updates with small rewards.
	prev := b.rewardScale
	for i := 0; i < 100; i++ {
		b.Update([]linalg.SparseVector{linalg.SparseFromDense(linalg.Vector{0, 1})}, []float64{0.1})
	}
	if b.rewardScale >= prev {
		t.Fatal("scale never decays")
	}
}

func TestDefaultAlphaGrowsSlowly(t *testing.T) {
	if DefaultAlpha(1) <= 0 {
		t.Fatal("alpha must be positive")
	}
	if DefaultAlpha(1000) > 10*DefaultAlpha(1) {
		t.Fatal("alpha grows too fast")
	}
	if DefaultAlpha(100) < DefaultAlpha(1) {
		t.Fatal("alpha should be non-decreasing")
	}
}

// Property: with no noise and enough samples of orthogonal contexts, the
// point estimate converges to the true per-dimension reward.
func TestQuickC2UCBUnbiased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(3)
		b := NewC2UCB(dim, 0.1, nil)
		w := make(linalg.Vector, dim)
		for i := range w {
			w[i] = float64(rng.Intn(10)) - 5
		}
		for round := 0; round < 120; round++ {
			b.BeginRound()
			i := rng.Intn(dim)
			x := linalg.SparseVector{Dim: dim, Idx: []int{i}, Val: []float64{1}}
			b.Update([]linalg.SparseVector{x}, []float64{w[i]})
		}
		got := b.Theta()
		for i := range w {
			if math.Abs(got[i]-w[i]) > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
