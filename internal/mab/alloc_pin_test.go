package mab

import (
	"testing"

	"dbabandits/internal/linalg"
)

// The warm-path allocation pins below assert exact allocation counts,
// which the race detector's instrumentation perturbs; the pins are
// skipped under -race (the aliasing property tests still run there).

// TestWarmContextBuildAllocs pins the arena-backed context build at
// zero allocations once the arena has grown to the round's footprint:
// the whole TPC-DS candidate set rebuilt into a recycled arena must not
// touch the heap.
func TestWarmContextBuildAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not stable under the race detector")
	}
	schema, db, wls := tpcdsBenchFixture(t, 1)
	ctxb := NewContextBuilder(schema)
	gen := NewArmGenerator(schema, ArmGenOptions{})
	arms := gen.Generate(wls[0])
	info := ArmInfo{
		PredicateColumns: PredicateColumnSet(wls[0]),
		DatabaseBytes:    db.DataSizeBytes(),
	}
	var arena linalg.SparseArena
	build := func() {
		arena.Reset()
		for _, a := range arms {
			ctxb.BuildArena(a, info, &arena)
		}
	}
	build() // grow the arena to the round's footprint
	if got := testing.AllocsPerRun(20, build); got != 0 {
		t.Fatalf("warm arena-backed Build of %d contexts allocated %v times per round, want 0", len(arms), got)
	}
}

// TestWarmGenerateAllocs pins the memoised arm-generation path at its
// contractual floor: a workload the generator has already seen costs
// exactly one allocation — the fresh result slice Generate must return
// (callers may reorder and retain it; the *Arm values are memoised).
func TestWarmGenerateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not stable under the race detector")
	}
	schema, _, wls := tpcdsBenchFixture(t, 1)
	gen := NewArmGenerator(schema, ArmGenOptions{})
	gen.Generate(wls[0]) // populate the memo
	if got := testing.AllocsPerRun(20, func() { gen.Generate(wls[0]) }); got != 1 {
		t.Fatalf("warm Generate allocated %v times per call, want exactly 1 (the fresh result slice)", got)
	}
}
