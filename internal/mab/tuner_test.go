package mab

import (
	"testing"

	"dbabandits/internal/catalog"
	"dbabandits/internal/engine"
	"dbabandits/internal/linalg"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/query"
	"dbabandits/internal/storage"
	"dbabandits/internal/testdb"
)

// miniHarness runs the full MAB loop against the fixture database: this
// is the same wiring the experiment harness uses.
type miniHarness struct {
	schema *catalog.Schema
	db     *storage.Database
	cm     *engine.CostModel
	opt    *optimizer.Optimizer
	tuner  *Tuner

	lastWorkload []*query.Query
	execSec      float64 // last round's execution time
	createSec    float64 // last round's creation time
}

func newMiniHarness(t *testing.T, opts TunerOptions) *miniHarness {
	t.Helper()
	schema, db := testdb.BuildScaled(1, 1000, 20000)
	cm := engine.DefaultCostModel()
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = db.DataSizeBytes()
	}
	return &miniHarness{
		schema: schema,
		db:     db,
		cm:     cm,
		opt:    optimizer.New(schema, cm),
		tuner:  NewTuner(schema, db.DataSizeBytes(), opts),
	}
}

// round executes one tuning round over the given workload and returns the
// total round time (creation + execution).
func (h *miniHarness) round(t *testing.T, workload []*query.Query) float64 {
	t.Helper()
	rec := h.tuner.Recommend(h.lastWorkload)
	creation := map[string]float64{}
	h.createSec = 0
	for _, ix := range rec.ToCreate {
		meta := h.schema.MustTable(ix.Table)
		sec := h.cm.IndexBuildSec(meta, ix.SizeBytes(meta))
		creation[ix.ID()] = sec
		h.createSec += sec
	}
	var stats []*engine.ExecStats
	h.execSec = 0
	for _, q := range workload {
		plan, err := h.opt.ChoosePlan(q, rec.Config)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		st, err := engine.Execute(h.db, plan, h.cm)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		stats = append(stats, st)
		h.execSec += st.TotalSec
	}
	h.tuner.ObserveExecution(stats, creation)
	h.lastWorkload = workload
	return h.createSec + h.execSec
}

// noIndexSec measures the workload under an empty configuration.
func (h *miniHarness) noIndexSec(t *testing.T, workload []*query.Query) float64 {
	t.Helper()
	var total float64
	for _, q := range workload {
		plan, err := h.opt.ChoosePlan(q, nil)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		st, err := engine.Execute(h.db, plan, h.cm)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		total += st.TotalSec
	}
	return total
}

func selectiveWorkload(round int) []*query.Query {
	// One selective equality template plus a join template, re-instantiated
	// per round with shifting constants (same signature).
	lo := int64(round % 1500)
	return []*query.Query{
		{
			TemplateID: 1,
			Tables:     []string{"orders"},
			Filters: []query.Predicate{
				{Table: "orders", Column: "o_date", Op: query.OpEq, Lo: lo, Hi: lo},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
		{
			TemplateID: 2,
			Tables:     []string{"orders", "customer"},
			Filters: []query.Predicate{
				{Table: "customer", Column: "c_nation", Op: query.OpEq, Lo: int64(round % 25), Hi: int64(round % 25)},
				{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: lo, Hi: lo + 40},
			},
			Joins: []query.Join{
				{LeftTable: "orders", LeftColumn: "o_custkey", RightTable: "customer", RightColumn: "c_id"},
			},
			Payload: []query.ColumnRef{{Table: "orders", Column: "o_total"}},
		},
	}
}

func TestTunerColdStartEmptyConfig(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	rec := h.tuner.Recommend(nil)
	if rec.Config.Len() != 0 {
		t.Fatalf("cold-start config has %d indexes", rec.Config.Len())
	}
	if rec.NumArms != 0 {
		t.Fatalf("cold-start arms = %d", rec.NumArms)
	}
	if rec.RecommendSec <= 0 {
		t.Fatal("first-round recommendation time should include setup cost")
	}
}

func TestTunerConvergesAndBeatsNoIndex(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	var lastExec float64
	for round := 1; round <= 12; round++ {
		h.round(t, selectiveWorkload(round))
		lastExec = h.execSec
	}
	base := h.noIndexSec(t, selectiveWorkload(12))
	if lastExec >= base*0.7 {
		t.Fatalf("MAB final-round execution %.3fs not clearly better than NoIndex %.3fs", lastExec, base)
	}
	if h.tuner.Config().Len() == 0 {
		t.Fatal("tuner converged to an empty configuration")
	}
}

func TestTunerRespectsMemoryBudget(t *testing.T) {
	schema, db := testdb.BuildScaled(1, 1000, 20000)
	budget := db.DataSizeBytes() / 20
	h := newMiniHarness(t, TunerOptions{MemoryBudgetBytes: budget})
	h.schema = schema
	for round := 1; round <= 6; round++ {
		h.round(t, selectiveWorkload(round))
		if got := h.tuner.Config().SizeBytes(h.schema); got > budget {
			t.Fatalf("round %d config size %d exceeds budget %d", round, got, budget)
		}
	}
}

func TestTunerConfigStabilises(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	var changes int
	prev := ""
	for round := 1; round <= 15; round++ {
		h.round(t, selectiveWorkload(round))
		ids := ""
		for _, id := range h.tuner.Config().IDs() {
			ids += id + ";"
		}
		if round > 8 && ids != prev {
			changes++
		}
		prev = ids
	}
	if changes > 4 {
		t.Fatalf("configuration still oscillating after convergence: %d late changes", changes)
	}
}

func TestTunerForgettingOnShift(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	for round := 1; round <= 6; round++ {
		h.round(t, selectiveWorkload(round))
	}
	// Forgetting discounts V and b together, so theta barely moves; the
	// observable effect is renewed exploration: the confidence width of a
	// well-explored direction must grow back after a shift.
	probe := linalg.NewVector(h.tuner.Bandit().Dim())
	for i := range probe {
		probe[i] = 1 // aggregate direction: touches every explored dim
	}
	widthBefore := h.tuner.Bandit().state.ConfidenceWidth(probe)
	// Completely new workload: shift intensity 1 -> capped forget,
	// inspected right after Recommend (before new observations).
	shifted := []*query.Query{{
		TemplateID: 99,
		Tables:     []string{"part"},
		Filters: []query.Predicate{
			{Table: "part", Column: "p_size", Op: query.OpEq, Lo: 5, Hi: 5},
		},
	}}
	h.tuner.Recommend(shifted)
	widthAfter := h.tuner.Bandit().state.ConfidenceWidth(probe)
	if widthAfter <= widthBefore {
		t.Fatalf("shift did not widen exploration: width %v -> %v", widthBefore, widthAfter)
	}
}

func TestTunerForgettingDisabledAblation(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{DisableForgetting: true})
	for round := 1; round <= 6; round++ {
		h.round(t, selectiveWorkload(round))
	}
	thetaBefore := h.tuner.Bandit().Theta().Norm2()
	shifted := []*query.Query{{
		TemplateID: 99,
		Tables:     []string{"part"},
		Filters: []query.Predicate{
			{Table: "part", Column: "p_size", Op: query.OpEq, Lo: 5, Hi: 5},
		},
	}}
	h.round(t, shifted)
	thetaAfter := h.tuner.Bandit().Theta().Norm2()
	if thetaAfter < thetaBefore*0.5 {
		t.Fatalf("ablated forgetting still shrank theta: %v -> %v", thetaBefore, thetaAfter)
	}
}

func TestTunerDropsHarmfulIndexes(t *testing.T) {
	// A workload whose indexes cannot help (full-range scans): any created
	// index earns negative reward (creation cost, no gain) and must be
	// dropped in later rounds.
	h := newMiniHarness(t, TunerOptions{})
	wl := []*query.Query{{
		TemplateID: 5,
		Tables:     []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: "o_date", Op: query.OpRange, Lo: 0, Hi: 2000},
		},
	}}
	for round := 1; round <= 10; round++ {
		h.round(t, wl)
	}
	if n := h.tuner.Config().Len(); n > 1 {
		t.Fatalf("useless indexes retained: %d", n)
	}
}

func TestTunerRecommendationTimeModel(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	h.tuner.Recommend(nil)
	rec2 := h.tuner.Recommend(selectiveWorkload(1))
	if rec2.NumArms == 0 {
		t.Fatal("no arms generated from observed workload")
	}
	if rec2.RecommendSec <= 0 {
		t.Fatal("recommendation time model returned non-positive time")
	}
	rec3 := h.tuner.Recommend(selectiveWorkload(2))
	if rec3.RecommendSec > 2 {
		t.Fatalf("continuous recommendation overhead too large: %v", rec3.RecommendSec)
	}
}

func TestTunerToCreateAndToDrop(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	h.round(t, selectiveWorkload(1))
	rec := h.tuner.Recommend(h.lastWorkload)
	// Everything in config but not previously materialised is in ToCreate;
	// sanity: ToCreate ∪ previous ⊇ config.
	for _, ix := range rec.ToCreate {
		if !rec.Config.Has(ix.ID()) {
			t.Fatalf("ToCreate lists %s not in config", ix.ID())
		}
	}
	for _, id := range rec.ToDrop {
		if rec.Config.Has(id) {
			t.Fatalf("ToDrop lists %s still in config", id)
		}
	}
}
