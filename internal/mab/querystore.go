package mab

import (
	"sort"

	"dbabandits/internal/query"
)

// TemplateInfo summarises one observed query template, as kept by the
// query store in Algorithm 2: frequency, first/last seen rounds, and the
// latest instance (whose predicates drive arm generation).
type TemplateInfo struct {
	ID        int
	Signature string
	Frequency int
	FirstSeen int
	LastSeen  int
	// Instances seen in the most recent observation round.
	LastRoundCount int
	LastInstance   *query.Query

	// seenIn stamps the round (as round+1, so the zero value means
	// "never") whose Observe call last reset LastRoundCount. It replaces
	// the per-call seen-set map; unexported, so snapshots — which copy
	// the exported fields only — are unaffected.
	seenIn int
}

// QueryStore tracks workload templates across rounds (Algorithm 2's QS).
type QueryStore struct {
	bySig map[string]*TemplateInfo
	// Window is the recency window (in rounds) for queries of interest;
	// templates unseen for longer stop generating arms. Default 3.
	Window int

	lastRound         int
	lastRoundNew      int
	lastRoundObserved int

	qoiInfos []*TemplateInfo // QoI ordering scratch, reused across rounds
}

// NewQueryStore returns an empty store with the default QoI window.
func NewQueryStore() *QueryStore {
	return &QueryStore{bySig: map[string]*TemplateInfo{}, Window: 3}
}

// Observe folds one round's workload into the store and returns the
// number of previously unseen templates (the workload-shift signal).
// Rounds must be observed in increasing order (the driver's natural
// call pattern): first-sight-this-round is tracked by stamping each
// template with the round rather than building a per-call set.
func (qs *QueryStore) Observe(round int, queries []*query.Query) int {
	newTemplates := 0
	observed := 0
	for _, q := range queries {
		sig := q.Signature()
		ti, ok := qs.bySig[sig]
		if !ok {
			ti = &TemplateInfo{ID: q.TemplateID, Signature: sig, FirstSeen: round}
			qs.bySig[sig] = ti
			newTemplates++
		}
		ti.Frequency++
		ti.LastSeen = round
		ti.LastInstance = q
		if ti.seenIn != round+1 {
			ti.seenIn = round + 1
			ti.LastRoundCount = 0
			observed++
		}
		ti.LastRoundCount++
	}
	qs.lastRound = round
	qs.lastRoundNew = newTemplates
	qs.lastRoundObserved = observed
	return newTemplates
}

// QoI returns the queries of interest for the upcoming round: the latest
// instance of every template seen within the recency window, ordered by
// template id then signature for determinism.
func (qs *QueryStore) QoI(round int) []*query.Query {
	infos := qs.qoiInfos[:0]
	for _, ti := range qs.bySig {
		if round-ti.LastSeen < qs.Window {
			infos = append(infos, ti)
		}
	}
	qs.qoiInfos = infos
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].ID != infos[j].ID {
			return infos[i].ID < infos[j].ID
		}
		return infos[i].Signature < infos[j].Signature
	})
	out := make([]*query.Query, len(infos))
	for i, ti := range infos {
		out[i] = ti.LastInstance
	}
	return out
}

// ShiftIntensity reports the fraction of the last observed round's
// templates that were new — the signal that scales forgetting ("the
// learner can forget learned knowledge depending on the workload shift
// intensity").
func (qs *QueryStore) ShiftIntensity() float64 {
	if qs.lastRoundObserved == 0 {
		return 0
	}
	return float64(qs.lastRoundNew) / float64(qs.lastRoundObserved)
}

// Templates returns all known templates sorted by first-seen round
// (diagnostics).
func (qs *QueryStore) Templates() []*TemplateInfo {
	out := make([]*TemplateInfo, 0, len(qs.bySig))
	for _, ti := range qs.bySig {
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstSeen != out[j].FirstSeen {
			return out[i].FirstSeen < out[j].FirstSeen
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// Len returns the number of known templates.
func (qs *QueryStore) Len() int { return len(qs.bySig) }
