package mab

import (
	"testing"

	"dbabandits/internal/catalog"
	"dbabandits/internal/testdb"
)

func tinySchema(name string, cols ...string) *catalog.Schema {
	t := &catalog.Table{Name: "t", BaseRows: 10, PK: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{
			Kind: catalog.KindInt, Dist: catalog.DistUniform, Name: c, DomainLo: 0, DomainHi: 9,
		})
	}
	return catalog.MustSchema(name, t)
}

func TestSchemaSimilarity(t *testing.T) {
	full := testdb.Schema()
	if got := SchemaSimilarity(full, testdb.Schema()); got != 1 {
		t.Fatalf("identical schemas: similarity %v, want 1", got)
	}
	if got := SchemaSimilarity(nil, full); got != 0 {
		t.Fatalf("nil schema: similarity %v, want 0", got)
	}
	// Same table, columns {a,b,c} vs {a,b,d}: 2 shared of 4 total.
	a := tinySchema("a", "a", "b", "c")
	b := tinySchema("b", "a", "b", "d")
	if got := SchemaSimilarity(a, b); got != 0.5 {
		t.Fatalf("partial overlap: similarity %v, want 0.5", got)
	}
	// Disjoint column spaces share nothing even with equal column names
	// on different tables.
	c := tinySchema("c", "x", "y")
	if got := SchemaSimilarity(a, c); got != 0 {
		t.Fatalf("disjoint schemas: similarity %v, want 0", got)
	}
	if got, want := SchemaSimilarity(a, b), SchemaSimilarity(b, a); got != want {
		t.Fatalf("similarity is not symmetric: %v vs %v", got, want)
	}
}

// TestTransferBasisWarmStartsFromDonor is the transfer seam end to end:
// a donor tuner trained on real rounds is snapshotted, the snapshot
// becomes a TransferBasis, and a fresh tuner warm-started with the
// basis gains acquires non-trivial knowledge (theta moves) without ever
// touching the donor's optimiser or data.
func TestTransferBasisWarmStartsFromDonor(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	for round := 1; round <= 8; round++ {
		h.round(t, selectiveWorkload(round))
	}
	snap, err := h.tuner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	basis, err := NewTransferBasis(h.schema, snap)
	if err != nil {
		t.Fatal(err)
	}

	training := selectiveWorkload(1)
	predCols := PredicateColumnSet(training)
	dbBytes := h.db.DataSizeBytes()

	// Gains are clamped non-negative (a pessimistic prior would suppress
	// exploration forever), including for arms on tables the donor never
	// had a dimension for.
	for _, arm := range []*Arm{
		mkArm("orders", []string{"o_date"}, 1000, 1),
		mkArm("no_such_table", []string{"ghost"}, 1000, 1),
	} {
		if g := basis.Gain(arm, predCols, dbBytes); g < 0 {
			t.Fatalf("arm %s: negative transfer gain %v", arm.ID(), g)
		}
	}

	fresh := NewTuner(h.schema, dbBytes, TunerOptions{MemoryBudgetBytes: dbBytes})
	fresh.WarmStart(training, func(a *Arm) float64 {
		return basis.Gain(a, predCols, dbBytes)
	}, 2)
	if fresh.Bandit().state.Updates() == 0 {
		t.Fatal("transfer warm start produced no observations")
	}
	if fresh.Bandit().Theta().Norm2() == 0 {
		t.Fatal("transfer gains were uniformly zero: donor knowledge did not reach the recipient")
	}
}

// TestTransferBasisDimHandling pins the snapshot/schema dimension
// contract: analytical and update-aware donor layouts are both
// recognised, anything else is refused.
func TestTransferBasisDimHandling(t *testing.T) {
	schema, db := testdb.Build(1)
	dbBytes := db.DataSizeBytes()

	// Update-aware donor: snapshot dim is cols+derived+update dims; the
	// basis must detect the layout instead of refusing it.
	donor := NewTuner(schema, dbBytes, TunerOptions{MemoryBudgetBytes: dbBytes, UpdateAwareContext: true})
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTransferBasis(schema, snap); err != nil {
		t.Fatalf("update-aware donor snapshot refused: %v", err)
	}

	// A dimension matching neither layout is a different tuner's
	// snapshot and must error, not misproject.
	snap.Bandit.Ridge.Dim++
	if _, err := NewTransferBasis(schema, snap); err == nil {
		t.Fatal("mismatched snapshot dimension accepted")
	}

	if _, err := NewTransferBasis(nil, snap); err == nil {
		t.Fatal("nil donor schema accepted")
	}
	if _, err := NewTransferBasis(schema, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}
