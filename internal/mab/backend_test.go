package mab

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dbabandits/internal/engine"
	"dbabandits/internal/linalg"
	"dbabandits/internal/optimizer"
)

// TestBackendsAgreeOnScores is the score-level cross-backend property
// test: on randomized workloads the factored backend's UCB scores must
// agree with the Sherman–Morrison backend's within 1e-8 — close enough
// that the two bandits rank arms identically except at exact ties.
func TestBackendsAgreeOnScores(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 40
	sm, err := NewC2UCBBackend(linalg.BackendSM, dim, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := NewC2UCBBackend(linalg.BackendChol, dim, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	randomContexts := func(n int) []linalg.SparseVector {
		out := make([]linalg.SparseVector, n)
		for i := range out {
			x := linalg.NewVector(dim)
			for k := 0; k < 6; k++ {
				x[rng.Intn(dim)] = rng.NormFloat64()
			}
			out[i] = linalg.SparseFromDense(x)
		}
		return out
	}
	for round := 0; round < 30; round++ {
		sm.BeginRound()
		chol.BeginRound()
		ctxs := randomContexts(24)
		sScores, cScores := sm.Scores(ctxs), chol.Scores(ctxs)
		for i := range sScores {
			if d := math.Abs(sScores[i] - cScores[i]); d > 1e-8*(1+math.Abs(sScores[i])) {
				t.Fatalf("round %d arm %d: sm score %g, chol score %g", round, i, sScores[i], cScores[i])
			}
		}
		played := ctxs[:4]
		rewards := make([]float64, len(played))
		for i := range rewards {
			rewards[i] = rng.NormFloat64() * 50
		}
		sm.Update(played, rewards)
		chol.Update(played, rewards)
		if round%10 == 9 {
			sm.Forget(0.5)
			chol.Forget(0.5)
		}
	}
}

// TestBackendsPickIdenticalArmSequencesTPCDS runs the full tuner for 25
// rounds at TPC-DS scale — the paper's hardest arm-count regime — on
// both ridge backends and requires the identical arm-selection sequence
// round for round: materialisations, drops, and the final configuration
// all match, making the factored backend a drop-in replacement.
func TestBackendsPickIdenticalArmSequencesTPCDS(t *testing.T) {
	const rounds = 25
	schema, db, wls := tpcdsBenchFixture(t, rounds)
	dbSize := db.DataSizeBytes()
	cm := engine.DefaultCostModel()
	opt := optimizer.New(schema, cm)

	run := func(backend string) ([][]string, []string) {
		tuner := NewTuner(schema, dbSize, TunerOptions{
			MemoryBudgetBytes: dbSize,
			RidgeBackend:      backend,
		})
		var seq [][]string
		for r := 0; r < rounds; r++ {
			rec := tuner.Recommend(wls[r])
			seq = append(seq, rec.Config.IDs())
			var stats []*engine.ExecStats
			for _, q := range wls[r] {
				plan, err := opt.ChoosePlan(q, rec.Config)
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				st, err := engine.Execute(db, plan, cm)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				stats = append(stats, st)
			}
			creation := map[string]float64{}
			for _, ix := range rec.ToCreate {
				meta := schema.MustTable(ix.Table)
				creation[ix.ID()] = cm.IndexBuildSec(meta, ix.SizeBytes(meta))
			}
			tuner.ObserveExecution(stats, creation)
		}
		return seq, tuner.Config().IDs()
	}

	smSeq, smFinal := run(linalg.BackendSM)
	cholSeq, cholFinal := run(linalg.BackendChol)
	for r := range smSeq {
		if !reflect.DeepEqual(smSeq[r], cholSeq[r]) {
			t.Fatalf("round %d: backends diverged\n sm:   %v\n chol: %v", r+1, smSeq[r], cholSeq[r])
		}
	}
	if !reflect.DeepEqual(smFinal, cholFinal) {
		t.Fatalf("final configurations diverged:\n sm:   %v\n chol: %v", smFinal, cholFinal)
	}
}

// TestTunerBackendThreading pins the option plumbing: the backend named
// in TunerOptions is the backend the bandit runs on, and an unknown
// name fails fast.
func TestTunerBackendThreading(t *testing.T) {
	schema, db, _ := tpcdsBenchFixture(t, 1)
	dbSize := db.DataSizeBytes()
	for _, backend := range []string{"", linalg.BackendSM, linalg.BackendChol} {
		tuner := NewTuner(schema, dbSize, TunerOptions{RidgeBackend: backend})
		want := backend
		if want == "" {
			want = linalg.BackendSM
		}
		if got := tuner.Bandit().Backend(); got != want {
			t.Fatalf("RidgeBackend %q built bandit backend %q", backend, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown backend did not panic")
		}
	}()
	NewTuner(schema, dbSize, TunerOptions{RidgeBackend: "qr"})
}
