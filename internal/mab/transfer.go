package mab

import (
	"fmt"

	"dbabandits/internal/catalog"
	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
)

// This file is the cross-tenant transfer seam of the fleet layer: the
// context featurisation is schema-keyed (one dimension per (table,
// column) pair, enumerated in sorted order), so two tenants' learned
// posteriors are comparable exactly to the extent their schemas share
// columns. SchemaSimilarity quantifies that overlap, and TransferBasis
// turns a trained donor tuner's snapshot into a per-arm gain estimate a
// newly admitted tenant can warm-start from (Tuner.WarmStart) — the
// donor's posterior mean predicts the reward of each recipient arm
// through the donor's own featurisation, mapping shared columns by name
// and silently skipping columns the donor never had.

// SchemaSimilarity is the Jaccard similarity of two schemas' context
// key spaces — the (table, column) pairs the featurisation enumerates
// into dimensions. 1 means the schemas induce identical column
// dimensions (transfer maps the full posterior); 0 means no shared
// columns (nothing maps and a warm start from this donor is a no-op).
func SchemaSimilarity(a, b *catalog.Schema) float64 {
	if a == nil || b == nil {
		return 0
	}
	refs := func(s *catalog.Schema) map[query.ColumnRef]bool {
		out := map[query.ColumnRef]bool{}
		for _, tn := range s.SortedTableNames() {
			t := s.MustTable(tn)
			for i := range t.Columns {
				out[query.ColumnRef{Table: tn, Column: t.Columns[i].Name}] = true
			}
		}
		return out
	}
	ra, rb := refs(a), refs(b)
	inter := 0
	for ref := range ra {
		if rb[ref] {
			inter++
		}
	}
	union := len(ra) + len(rb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TransferBasis is a trained donor tuner's learned posterior mean bound
// to the donor's own context featurisation. Gain scores a recipient arm
// the way the donor's bandit would have scored it (exploitation only):
// the arm's context is built in the DONOR's dimension space — shared
// (table, column) pairs map by name, columns the donor schema lacks
// contribute nothing — and dotted with the donor's theta.
type TransferBasis struct {
	cb    *ContextBuilder
	theta linalg.Vector
}

// NewTransferBasis derives the basis from the donor's schema and a
// round-boundary tuner snapshot. The snapshot's ridge dimensionality
// must match the schema's featurisation (with or without the HTAP
// update-sensitivity dimensions — both layouts are recognised); any
// other dimension means snapshot and schema are from different tuners.
func NewTransferBasis(schema *catalog.Schema, snap *TunerSnapshot) (*TransferBasis, error) {
	if schema == nil || snap == nil || snap.Bandit == nil || snap.Bandit.Ridge == nil {
		return nil, fmt.Errorf("mab: transfer basis needs a donor schema and a bandit snapshot")
	}
	cb := NewContextBuilder(schema)
	if dim := snap.Bandit.Ridge.Dim; dim != cb.Dim() {
		cb.UpdateDims = true
		if dim != cb.Dim() {
			return nil, fmt.Errorf("mab: donor snapshot dimension %d does not match donor schema featurisation (%d analytical, %d update-aware)",
				dim, cb.Dim()-updateDims, cb.Dim())
		}
	}
	core, err := linalg.RestoreRidgeCore(snap.Bandit.Ridge)
	if err != nil {
		return nil, fmt.Errorf("mab: transfer basis: %w", err)
	}
	// Clone: the restored core is discarded, only the posterior mean is
	// kept, owned by the basis.
	return &TransferBasis{cb: cb, theta: core.Theta().Clone()}, nil
}

// Gain is the donor-predicted per-round gain of the arm for a workload
// with the given predicate columns, suitable as the estimateGain of
// Tuner.WarmStart. The arm is projected as already materialised: the
// what-if warm start this mirrors estimates pure execution benefit
// (cost without the index minus cost with it), and the donor's
// posterior prices one-time creation through the size component — a
// penalty that belongs to the recipient's own accounting, not to the
// transferred steady-state value of owning the index. Like the what-if
// warm start, estimates are clamped non-negative: a pessimistic prior
// would permanently suppress exploration of the arm.
func (tb *TransferBasis) Gain(a *Arm, predCols map[query.ColumnRef]bool, dbBytes int64) float64 {
	x := tb.cb.Build(a, ArmInfo{
		PredicateColumns: predCols,
		Materialised:     true,
		DatabaseBytes:    dbBytes,
	})
	g := tb.theta.DotSparse(x)
	if g < 0 {
		g = 0
	}
	return g
}
