package mab

import (
	"fmt"

	"dbabandits/internal/catalog"
	"dbabandits/internal/engine"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/query"
)

// TunerOptions configure the MAB tuner.
type TunerOptions struct {
	// MemoryBudgetBytes is the secondary-index budget M (the experiments
	// use 1x the data size).
	MemoryBudgetBytes int64
	// Lambda is the ridge regularisation (the paper notes it "becomes
	// less relevant as rounds are observed"). Default 0.25.
	Lambda float64
	// Alpha overrides the exploration schedule; nil uses DefaultAlpha.
	Alpha func(t int) float64
	// QoIWindow is the query-store recency window in rounds. Default 3.
	QoIWindow int
	// ArmGen bounds arm generation.
	ArmGen ArmGenOptions
	// ShiftForgetThreshold is the shift intensity above which the bandit
	// forgets proportionally; default 0.5.
	ShiftForgetThreshold float64
	// DisableForgetting turns shift-scaled forgetting off (ablation).
	DisableForgetting bool
	// MaxForgetFactor caps the forgetting discount applied on a workload
	// shift; 1.0 resets fully on a complete shift. Retaining a fraction
	// of the learned creation-cost weights tempers post-shift
	// re-exploration. Default 0.7.
	MaxForgetFactor float64
	// NoCreationPenalty removes creation time from rewards (ablation;
	// invites index oscillation).
	NoCreationPenalty bool
	// OneHotContext switches Part 1 to bag-of-columns (ablation).
	OneHotContext bool
	// UsageDecay is the per-round decay of the usage statistic D3.
	// Default 0.6.
	UsageDecay float64
	// MaxNewIndexesPerRound throttles materialisations per round (see
	// SelectSuperArmThrottled). Default 6; negative disables throttling.
	MaxNewIndexesPerRound int
	// RidgeBackend selects the ridge-regression core: linalg.BackendSM
	// (Sherman–Morrison explicit inverse, the default — every golden was
	// captured under it) or linalg.BackendChol (factored Cholesky
	// maintenance, no inverse and no rebase machinery). "" means the
	// default. NewTuner panics on an unknown name; callers taking
	// user input should validate with linalg.ValidRidgeBackend first.
	RidgeBackend string
	// RebaseEvery is the fixed fallback cadence of the ridge inverse's
	// exact recomputation; 0 keeps the linalg default (256).
	RebaseEvery int
	// RebaseDriftThreshold is the adaptive rank-1 drift trigger of the
	// ridge rebase schedule; 0 keeps the linalg default, negative
	// disables the adaptive schedule (fixed cadence only).
	RebaseDriftThreshold float64
	// ScoreWorkers bounds the worker pool the bandit's batched arm
	// scoring fans across; <= 1 (the default) scores serially. Scores are
	// byte-identical at any setting — the candidate batch is partitioned
	// deterministically by arm index with per-worker backend scratch — so
	// this is purely a latency knob (the -score-parallel flag).
	ScoreWorkers int
	// ForgetRank, when positive, budgets the Sherman–Morrison backend's
	// low-rank Forget correction: shift-scaled forgetting absorbs the
	// discount-toward-prior perturbation with k structured O(d²) updates
	// instead of a full O(d³) refactorisation, leaving any skipped
	// residual to the drift-triggered rebase fallback (see
	// linalg.RidgeState.ForgetRank; k >= context dim is exact). 0 keeps
	// the exact rebase. No-op on the factored backend.
	ForgetRank int
	// UpdateAwareContext appends the HTAP update-sensitivity components
	// (churn exposure + size-weighted churn) to every arm context, so the
	// bandit can learn to drop high-churn indexes. Off by default:
	// enabling it changes the context dimensionality, so analytical runs
	// keep the exact pre-HTAP numbers.
	UpdateAwareContext bool
	// ChurnDecay is the per-round decay of the learned table/column churn
	// statistics. Default 0.5.
	ChurnDecay float64
}

func (o TunerOptions) withDefaults() TunerOptions {
	if o.Lambda <= 0 {
		o.Lambda = 0.25
	}
	if o.QoIWindow <= 0 {
		o.QoIWindow = 3
	}
	if o.ShiftForgetThreshold <= 0 {
		o.ShiftForgetThreshold = 0.5
	}
	if o.UsageDecay <= 0 {
		o.UsageDecay = 0.6
	}
	if o.MaxForgetFactor <= 0 {
		o.MaxForgetFactor = 0.7
	}
	if o.MaxNewIndexesPerRound == 0 {
		o.MaxNewIndexesPerRound = 6
	}
	if o.ChurnDecay <= 0 {
		o.ChurnDecay = 0.5
	}
	return o
}

// Tuner is the end-to-end MAB index tuner (Algorithm 2): it observes each
// round's workload, generates arms and contexts, asks C2UCB for a super
// arm under the memory budget, and shapes rewards from the observed
// execution and creation times.
type Tuner struct {
	schema *catalog.Schema
	opts   TunerOptions

	bandit *C2UCB
	ctxb   *ContextBuilder
	gen    *ArmGenerator
	store  *QueryStore

	cfg    *index.Config      // currently recommended configuration s_t
	usage  map[string]float64 // decayed per-index usage (context D3)
	round  int
	dbSize int64

	// Decayed churn statistics of the HTAP regime (context D4/D5): the
	// fraction of each table's rows recently written by INSERTs
	// (tableChurn, forcing maintenance on every index of the table) and
	// per written column by UPDATEs (colChurn, keyed "table.column").
	tableChurn map[string]float64
	colChurn   map[string]float64

	// Pending observation state: the arms selected this round and their
	// contexts, awaiting execution feedback, plus the per-index
	// maintenance seconds charged by the round's update statements.
	pendingArms     []*Arm
	pendingContexts []linalg.SparseVector
	pendingCreated  map[string]bool // ids materialised this round
	pendingMaint    map[string]float64
	// pendingEpoch is the pending arena's epoch at the moment the pending
	// contexts were copied out; ObserveExecution asserts it still holds
	// before feeding the contexts to the bandit (see roundScratch).
	pendingEpoch int

	scratch roundScratch
}

// roundScratch is the tuner's round-scoped working memory: every buffer
// the steady-state Recommend round needs, reset (not freed) at the top of
// each round so the round allocates near-zero once the buffers have grown
// to the workload's high-water mark.
//
// Lifetime discipline: everything backed by arena or contexts/scores is
// valid only until the next Recommend call. The one piece of round state
// that must outlive Recommend — the selected arms' contexts, consumed by
// ObserveExecution — is copied out of the scoring arena into the separate
// pending arena, whose epoch is recorded in Tuner.pendingEpoch and
// asserted at use. Anything else retaining a context past Recommend must
// do the same: copy out, or check the epoch.
type roundScratch struct {
	arena    linalg.SparseArena // backs the scored contexts, reset per round
	pending  linalg.SparseArena // backs the copied-out pending contexts
	contexts []linalg.SparseVector
	scores   []float64
	predCols map[query.ColumnRef]bool
	existing map[string]bool
	created  map[string]bool
	selPos   map[*Arm]int
	oracle   oracleScratch
	rewards  []float64
}

// NewTuner constructs the tuner for a schema. dbSizeBytes is the logical
// data size used to normalise the context's size component.
func NewTuner(schema *catalog.Schema, dbSizeBytes int64, opts TunerOptions) *Tuner {
	opts = opts.withDefaults()
	ctxb := NewContextBuilder(schema)
	ctxb.OneHot = opts.OneHotContext
	ctxb.UpdateDims = opts.UpdateAwareContext
	store := NewQueryStore()
	store.Window = opts.QoIWindow
	bandit, err := NewC2UCBBackend(opts.RidgeBackend, ctxb.Dim(), opts.Lambda, opts.Alpha)
	if err != nil {
		panic(fmt.Sprintf("mab: %v", err))
	}
	bandit.SetRebaseSchedule(opts.RebaseEvery, opts.RebaseDriftThreshold)
	bandit.SetScoreWorkers(opts.ScoreWorkers)
	bandit.SetForgetRank(opts.ForgetRank)
	return &Tuner{
		schema:     schema,
		opts:       opts,
		bandit:     bandit,
		ctxb:       ctxb,
		gen:        NewArmGenerator(schema, opts.ArmGen),
		store:      store,
		cfg:        index.NewConfig(),
		usage:      map[string]float64{},
		tableChurn: map[string]float64{},
		colChurn:   map[string]float64{},
		dbSize:     dbSizeBytes,
	}
}

// Config returns the currently recommended configuration.
func (t *Tuner) Config() *index.Config { return t.cfg }

// Bandit exposes the underlying C2UCB (diagnostics and tests).
func (t *Tuner) Bandit() *C2UCB { return t.bandit }

// Store exposes the query store (diagnostics and tests).
func (t *Tuner) Store() *QueryStore { return t.store }

// Recommendation is the result of one tuning round.
type Recommendation struct {
	Config *index.Config
	// ToCreate is Config minus the previous configuration — the indexes
	// the system must materialise now.
	ToCreate []*index.Index
	// ToDrop lists index ids present before but no longer recommended.
	ToDrop []string
	// NumArms is the number of candidate arms scored this round.
	NumArms int
	// RecommendSec is the modelled recommendation time for the round.
	RecommendSec float64
}

// Recommend runs one bandit round: it folds the previous round's workload
// into the query store, applies shift-scaled forgetting, generates and
// scores arms, and selects the next configuration.
func (t *Tuner) Recommend(lastWorkload []*query.Query) *Recommendation {
	t.round++
	t.bandit.BeginRound()

	if len(lastWorkload) > 0 {
		t.store.Observe(t.round-1, lastWorkload)
		if !t.opts.DisableForgetting {
			if shift := t.store.ShiftIntensity(); shift >= t.opts.ShiftForgetThreshold && t.round > 2 {
				if shift > t.opts.MaxForgetFactor {
					shift = t.opts.MaxForgetFactor
				}
				t.bandit.Forget(shift)
			}
		}
	}

	qois := t.store.QoI(t.round - 1)
	arms := t.gen.Generate(qois)

	s := &t.scratch
	s.arena.Reset()
	if s.predCols == nil {
		s.predCols = map[query.ColumnRef]bool{}
		s.existing = map[string]bool{}
		s.created = map[string]bool{}
		s.selPos = map[*Arm]int{}
	}
	clear(s.predCols)
	predicateColumnsInto(qois, s.predCols)

	if cap(s.contexts) < len(arms) {
		s.contexts = make([]linalg.SparseVector, len(arms))
		s.scores = make([]float64, len(arms))
	}
	contexts := s.contexts[:len(arms)]
	for i, a := range arms {
		info := ArmInfo{
			PredicateColumns: s.predCols,
			Materialised:     t.cfg.Has(a.ID()),
			Usage:            t.usage[a.ID()],
			DatabaseBytes:    t.dbSize,
		}
		if t.opts.UpdateAwareContext {
			info.Churn = t.armChurn(a)
		}
		contexts[i] = t.ctxb.BuildArena(a, info, &s.arena)
	}
	scores := s.scores[:len(arms)]
	t.bandit.ScoresInto(contexts, scores)
	clear(s.existing)
	t.cfg.EachID(func(id string) { s.existing[id] = true })
	maxNew := t.opts.MaxNewIndexesPerRound
	if maxNew < 0 {
		maxNew = 0
	}
	selected := selectSuperArmScratch(arms, scores, t.opts.MemoryBudgetBytes, s.existing, maxNew, &s.oracle)

	next := index.NewConfig()
	for _, a := range selected {
		next.Add(a.Index)
	}
	create, drop := next.DiffBoth(t.cfg)
	rec := &Recommendation{
		Config:   next,
		ToCreate: create,
		ToDrop:   drop,
		NumArms:  len(arms),
	}
	rec.RecommendSec = t.recommendSecModel(len(arms))

	// Pending state for the execution feedback. The decision-time view
	// (size component non-zero only if the arm required materialisation)
	// is exactly what Scores just saw, so the selected arms' contexts are
	// taken from the scored batch instead of being rebuilt — copied out of
	// the round arena (which the next Recommend recycles) into the pending
	// arena, whose epoch ObserveExecution re-checks.
	s.pending.Reset()
	t.pendingEpoch = s.pending.Epoch()
	t.pendingArms = append(t.pendingArms[:0], selected...)
	if cap(t.pendingContexts) < len(selected) {
		t.pendingContexts = make([]linalg.SparseVector, len(selected))
	}
	t.pendingContexts = t.pendingContexts[:len(selected)]
	if t.pendingCreated == nil {
		t.pendingCreated = map[string]bool{}
	}
	clear(t.pendingCreated)
	clear(s.created)
	for _, ix := range create {
		s.created[ix.ID()] = true
	}
	clear(s.selPos)
	for i, a := range selected {
		s.selPos[a] = i
		t.pendingCreated[a.ID()] = s.created[a.ID()]
	}
	for i, a := range arms {
		if j, ok := s.selPos[a]; ok {
			t.pendingContexts[j] = s.pending.CopySparse(contexts[i])
		}
	}

	t.cfg = next
	return rec
}

// ObserveExecution feeds back the true execution of the round's workload
// under the recommended configuration: per-query engine stats plus the
// actual creation seconds per materialised index id. It shapes per-arm
// rewards (Section IV, "Reward shaping") and updates the bandit.
func (t *Tuner) ObserveExecution(stats []*engine.ExecStats, creationSec map[string]float64) {
	if len(t.pendingArms) == 0 {
		// Nothing selected; decay usage and return.
		t.decayUsage(nil)
		return
	}
	gains, used := GainsFromStats(stats)

	if t.scratch.pending.Epoch() != t.pendingEpoch {
		// The pending contexts alias the pending arena; an epoch advance
		// would mean a Recommend ran before this round's feedback landed
		// and the contexts below are recycled memory.
		panic("mab: pending contexts outlived their arena epoch")
	}
	if cap(t.scratch.rewards) < len(t.pendingArms) {
		t.scratch.rewards = make([]float64, len(t.pendingArms))
	}
	rewards := t.scratch.rewards[:len(t.pendingArms)]
	for i, a := range t.pendingArms {
		r := gains[a.ID()]
		if t.pendingCreated[a.ID()] && !t.opts.NoCreationPenalty {
			r -= creationSec[a.ID()]
		}
		// Index maintenance charged by the round's update statements
		// (HTAP regime; the map is nil on analytical rounds) counts
		// against the arm that incurred it, so the bandit learns the
		// true net benefit of holding a high-churn index.
		r -= t.pendingMaint[a.ID()]
		rewards[i] = r
	}
	t.bandit.Update(t.pendingContexts, rewards)
	t.decayUsage(used)

	t.pendingArms = t.pendingArms[:0]
	t.pendingContexts = t.pendingContexts[:0]
	clear(t.pendingCreated)
	t.pendingMaint = nil
}

// ObserveUpdates feeds back one round's update statements and the
// per-index maintenance seconds actually charged (the HTAP regime's
// write-amplification signal). Call it after Recommend and before
// ObserveExecution: the charges are folded into the pending arms'
// rewards, and the statements update the decayed churn statistics that
// drive the next round's update-sensitivity context components.
func (t *Tuner) ObserveUpdates(updates []query.Update, perIndexSec map[string]float64) {
	t.pendingMaint = perIndexSec

	decay := t.opts.ChurnDecay
	for k := range t.tableChurn {
		t.tableChurn[k] *= decay
		if t.tableChurn[k] < 1e-9 {
			delete(t.tableChurn, k)
		}
	}
	for k := range t.colChurn {
		t.colChurn[k] *= decay
		if t.colChurn[k] < 1e-9 {
			delete(t.colChurn, k)
		}
	}
	for _, u := range updates {
		meta, ok := t.schema.Table(u.Table)
		if !ok || meta.RowCount <= 0 {
			continue
		}
		frac := u.Rows / float64(meta.RowCount)
		if u.Kind == query.UpdateInsert {
			t.tableChurn[u.Table] += frac
			continue
		}
		for _, c := range u.Columns {
			t.colChurn[u.Table+"."+c] += frac
		}
	}
}

// armChurn is the arm's churn exposure: INSERT churn on its table (every
// index pays) plus UPDATE churn on each of its key/include columns.
func (t *Tuner) armChurn(a *Arm) float64 {
	churn := t.tableChurn[a.Table]
	if len(t.colChurn) > 0 {
		for _, c := range a.Index.Key {
			churn += t.colChurn[a.Table+"."+c]
		}
		for _, c := range a.Index.Include {
			churn += t.colChurn[a.Table+"."+c]
		}
	}
	return churn
}

// decayUsage applies the per-round decay and adds 1 for used indexes.
func (t *Tuner) decayUsage(used map[string]bool) {
	for id := range t.usage {
		t.usage[id] *= t.opts.UsageDecay
		if t.usage[id] < 1e-6 {
			delete(t.usage, id)
		}
	}
	for id := range used {
		t.usage[id] += 1
	}
}

// recommendSecModel converts a round's arm count into modelled
// recommendation seconds. Calibrated so that the MAB's recommendation
// overhead matches the paper's Table I profile: a sub-second continuous
// overhead dominated by a first-round setup cost.
func (t *Tuner) recommendSecModel(numArms int) float64 {
	sec := 0.0012 * float64(numArms)
	if t.round == 1 || t.bandit.state.Updates() == 0 && t.round <= 2 {
		sec += 0.8
	}
	return sec
}

// WarmStart pre-trains the bandit on hypothetical rounds before any real
// execution, addressing the cold-start problem the paper discusses in
// Section VII ("pre-training models in hypothetical rounds (using
// what-if)"). estimateGain returns the what-if estimated per-round gain of
// materialising one arm for the training workload; each hypothetical round
// feeds those estimates as simulated rewards. The estimates inherit the
// optimiser's misestimates, so warm starting trades cold-start cost for
// potential early bias — exactly the trade-off the paper sketches.
func (t *Tuner) WarmStart(training []*query.Query, estimateGain func(*Arm) float64, rounds int) {
	if len(training) == 0 || rounds <= 0 {
		return
	}
	arms := t.gen.Generate(training)
	if len(arms) == 0 {
		return
	}
	predCols := PredicateColumnSet(training)
	for r := 0; r < rounds; r++ {
		for _, a := range arms {
			x := t.ctxb.Build(a, ArmInfo{
				PredicateColumns: predCols,
				Materialised:     false,
				DatabaseBytes:    t.dbSize,
			})
			t.bandit.Update([]linalg.SparseVector{x}, []float64{estimateGain(a)})
		}
	}
}

// GainsFromStats computes the per-index execution gains of one round
// (Section IV, "Reward shaping"): for every index i used by the optimiser
// in some query q, gain_i += Ctab(tau(i), q, empty) - Ctab(tau(i), q, {i}).
// It also returns the set of used index ids. Shared by the MAB tuner and
// the DDQN baseline so both learn from identical signals.
func GainsFromStats(stats []*engine.ExecStats) (gains map[string]float64, used map[string]bool) {
	gains = map[string]float64{}
	used = map[string]bool{}
	for _, st := range stats {
		for id, acc := range st.IndexAccessSec {
			baseline, ok := st.TableScanSec[acc.Table]
			if !ok {
				continue
			}
			gains[id] += baseline - acc.Sec
			used[id] = true
		}
	}
	return gains, used
}

// PredicateColumnSet collects the (table, column) pairs of all filter and
// join predicate columns of the queries of interest; Part 1 context
// components are non-zero only for these (payload-only columns stay
// zero). Struct keys, not "table.column" strings: set construction and
// the per-arm membership tests in the context builder allocate nothing.
func PredicateColumnSet(qois []*query.Query) map[query.ColumnRef]bool {
	out := map[query.ColumnRef]bool{}
	predicateColumnsInto(qois, out)
	return out
}

// predicateColumnsInto is PredicateColumnSet into a caller-cleared map —
// the recommend loop reuses one across rounds.
func predicateColumnsInto(qois []*query.Query, out map[query.ColumnRef]bool) {
	for _, q := range qois {
		for _, p := range q.Filters {
			out[query.ColumnRef{Table: p.Table, Column: p.Column}] = true
		}
		for _, j := range q.Joins {
			out[query.ColumnRef{Table: j.LeftTable, Column: j.LeftColumn}] = true
			out[query.ColumnRef{Table: j.RightTable, Column: j.RightColumn}] = true
		}
	}
}
