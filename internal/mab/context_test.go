package mab

import (
	"math"
	"testing"

	"dbabandits/internal/index"
	"dbabandits/internal/query"
	"dbabandits/internal/testdb"
)

func TestContextDim(t *testing.T) {
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	if got, want := cb.Dim(), schema.ColumnCount()+derivedDims; got != want {
		t.Fatalf("dim = %d, want %d", got, want)
	}
}

func TestContextPrefixEncoding(t *testing.T) {
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	arm := &Arm{
		Index:     index.New("orders", []string{"o_status", "o_date"}, nil),
		Table:     "orders",
		SizeBytes: 1000,
	}
	info := ArmInfo{
		PredicateColumns: map[query.ColumnRef]bool{query.ColumnRef{Table: "orders", Column: "o_status"}: true, query.ColumnRef{Table: "orders", Column: "o_date"}: true},
		DatabaseBytes:    100000,
	}
	x := cb.Build(arm, info).Dense()
	// position 0 -> 10^0 = 1; position 1 -> 10^-1.
	iStatus := cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_status"}]
	iDate := cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_date"}]
	if x[iStatus] != 1 {
		t.Fatalf("leading column component = %v, want 1", x[iStatus])
	}
	if math.Abs(x[iDate]-0.1) > 1e-12 {
		t.Fatalf("second column component = %v, want 0.1", x[iDate])
	}
}

func TestContextPayloadOnlyColumnIsZero(t *testing.T) {
	// Paper Example 3: "Index IX5 includes column C1, but the context for
	// C1 is valued as 0, as this column is considered only due to the
	// query payload."
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	arm := &Arm{
		Index: index.New("orders", []string{"o_status", "o_date", "o_total"}, nil),
		Table: "orders",
	}
	info := ArmInfo{
		// o_total is payload, not a predicate column.
		PredicateColumns: map[query.ColumnRef]bool{query.ColumnRef{Table: "orders", Column: "o_status"}: true, query.ColumnRef{Table: "orders", Column: "o_date"}: true},
		DatabaseBytes:    1,
	}
	x := cb.Build(arm, info).Dense()
	if got := x[cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_total"}]]; got != 0 {
		t.Fatalf("payload-only key column component = %v, want 0", got)
	}
	// Include columns never contribute either.
	arm2 := &Arm{
		Index: index.New("orders", []string{"o_status"}, []string{"o_total"}),
		Table: "orders",
	}
	x2 := cb.Build(arm2, info).Dense()
	if got := x2[cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_total"}]]; got != 0 {
		t.Fatalf("include column component = %v, want 0", got)
	}
}

func TestContextDerivedParts(t *testing.T) {
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	base := cb.Dim() - derivedDims
	arm := &Arm{
		Index:       index.New("orders", []string{"o_date"}, []string{"o_total"}),
		Table:       "orders",
		SizeBytes:   5000,
		CoveringFor: []int{1},
	}
	info := ArmInfo{
		PredicateColumns: map[query.ColumnRef]bool{query.ColumnRef{Table: "orders", Column: "o_date"}: true},
		Materialised:     false,
		Usage:            2.5,
		DatabaseBytes:    100000,
	}
	x := cb.Build(arm, info).Dense()
	if x[base] != 1 {
		t.Fatalf("covering flag = %v", x[base])
	}
	if want := 5000.0 / 100000.0; math.Abs(x[base+1]-want) > 1e-12 {
		t.Fatalf("size component = %v, want %v", x[base+1], want)
	}
	if x[base+2] != 2.5 {
		t.Fatalf("usage component = %v", x[base+2])
	}

	// Materialised arms have zero size component (no creation cost left).
	info.Materialised = true
	x = cb.Build(arm, info).Dense()
	if x[base+1] != 0 {
		t.Fatalf("materialised size component = %v, want 0", x[base+1])
	}
}

func TestContextOneHotAblation(t *testing.T) {
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	cb.OneHot = true
	arm := &Arm{
		Index: index.New("orders", []string{"o_status", "o_date"}, nil),
		Table: "orders",
	}
	info := ArmInfo{
		PredicateColumns: map[query.ColumnRef]bool{query.ColumnRef{Table: "orders", Column: "o_status"}: true, query.ColumnRef{Table: "orders", Column: "o_date"}: true},
		DatabaseBytes:    1,
	}
	x := cb.Build(arm, info).Dense()
	if x[cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_date"}]] != 1 || x[cb.colIdx[query.ColumnRef{Table: "orders", Column: "o_status"}]] != 1 {
		t.Fatal("one-hot encoding should set both components to 1")
	}
}

func TestContextDistinguishesPrefixOrder(t *testing.T) {
	// The central claim of Part 1: (a,b) and (b,a) get different
	// contexts, unlike bag-of-words.
	schema, _ := testdb.Build(1)
	cb := NewContextBuilder(schema)
	info := ArmInfo{
		PredicateColumns: map[query.ColumnRef]bool{query.ColumnRef{Table: "orders", Column: "o_status"}: true, query.ColumnRef{Table: "orders", Column: "o_date"}: true},
		DatabaseBytes:    1,
	}
	ab := cb.Build(&Arm{Index: index.New("orders", []string{"o_status", "o_date"}, nil), Table: "orders"}, info).Dense()
	ba := cb.Build(&Arm{Index: index.New("orders", []string{"o_date", "o_status"}, nil), Table: "orders"}, info).Dense()
	if ab.Equal(ba, 1e-12) {
		t.Fatal("prefix encoding failed to distinguish key orders")
	}
	cb.OneHot = true
	ab1 := cb.Build(&Arm{Index: index.New("orders", []string{"o_status", "o_date"}, nil), Table: "orders"}, info).Dense()
	ba1 := cb.Build(&Arm{Index: index.New("orders", []string{"o_date", "o_status"}, nil), Table: "orders"}, info).Dense()
	if !ab1.Equal(ba1, 1e-12) {
		t.Fatal("one-hot encoding should NOT distinguish key orders")
	}
}
