package mab

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dbabandits/internal/query"
)

// TestArenaAliasingIsolation is the property test behind the round-arena
// lifetime discipline: once Recommend returns, the round arena's memory
// is dead — an adversary may scribble over every scored context and score
// buffer and nothing observable (execution feedback, learned state,
// snapshots, restored continuations) may change. A failure here means
// some post-Recommend path still aliases the recycled arena instead of
// copying out (see roundScratch's lifetime comment).
//
// The test drives a control tuner and an attacked tuner through identical
// rounds; after every attacked Recommend (and again before its snapshot)
// the recycled scratch is poisoned with NaNs and invalid indices. Run
// under -race in CI like any other test in the package.
func TestArenaAliasingIsolation(t *testing.T) {
	const rounds = 3
	schema, db, wls := tpcdsBenchFixture(t, rounds+1)
	dbSize := db.DataSizeBytes()
	opts := TunerOptions{MemoryBudgetBytes: dbSize, UpdateAwareContext: true}
	control := NewTuner(schema, dbSize, opts)
	attacked := NewTuner(schema, dbSize, opts)

	// poison overwrites everything the round arena backs: the scored
	// contexts' index/value storage and the score buffer.
	poison := func(tu *Tuner) {
		for _, x := range tu.scratch.contexts {
			for i := range x.Idx {
				x.Idx[i] = -1
			}
			for i := range x.Val {
				x.Val[i] = math.NaN()
			}
		}
		for i := range tu.scratch.scores {
			tu.scratch.scores[i] = math.NaN()
		}
	}
	// feedback derives deterministic creation costs from the ids alone,
	// so both tuners see identical rewards without sharing any state.
	feedback := func(rec *Recommendation) map[string]float64 {
		out := map[string]float64{}
		for _, ix := range rec.ToCreate {
			out[ix.ID()] = 0.01 * float64(len(ix.ID()))
		}
		return out
	}
	updates := []query.Update{
		{Table: "store_sales", Kind: query.UpdateInsert, Rows: 500},
		{Table: "store_sales", Kind: query.UpdateModify, Rows: 200, Columns: []string{"ss_quantity"}},
	}

	for r := 0; r < rounds; r++ {
		recC := control.Recommend(wls[r])
		recA := attacked.Recommend(wls[r])
		if !reflect.DeepEqual(recC.Config.Defs(), recA.Config.Defs()) ||
			!reflect.DeepEqual(recC.ToDrop, recA.ToDrop) || recC.NumArms != recA.NumArms {
			t.Fatalf("round %d: recommendations diverged before any poisoning", r+1)
		}
		poison(attacked)
		control.ObserveUpdates(updates, map[string]float64{})
		attacked.ObserveUpdates(updates, map[string]float64{})
		control.ObserveExecution(nil, feedback(recC))
		poison(attacked)
		attacked.ObserveExecution(nil, feedback(recA))
	}

	poison(attacked)
	snapC, err := control.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapA, err := attacked.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := json.Marshal(snapC)
	ba, _ := json.Marshal(snapA)
	if string(bc) != string(ba) {
		t.Fatalf("snapshots diverged after poisoning the recycled arena:\ncontrol:  %s\nattacked: %s", bc, ba)
	}

	// A continuation restored from the poisoned tuner's snapshot must
	// recommend exactly what the control does on the next round.
	restored := NewTuner(schema, dbSize, opts)
	if err := restored.Restore(snapA); err != nil {
		t.Fatal(err)
	}
	recC := control.Recommend(wls[rounds])
	recR := restored.Recommend(wls[rounds])
	if !reflect.DeepEqual(recC.Config.Defs(), recR.Config.Defs()) ||
		!reflect.DeepEqual(recC.ToDrop, recR.ToDrop) || recC.NumArms != recR.NumArms {
		t.Fatal("restored tuner diverged from control on the post-snapshot round")
	}
}
