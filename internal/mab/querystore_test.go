package mab

import (
	"testing"

	"dbabandits/internal/query"
)

func tq(id int, col string) *query.Query {
	return &query.Query{
		TemplateID: id,
		Tables:     []string{"orders"},
		Filters: []query.Predicate{
			{Table: "orders", Column: col, Op: query.OpEq, Lo: int64(id), Hi: int64(id)},
		},
	}
}

func TestQueryStoreObserveAndQoI(t *testing.T) {
	qs := NewQueryStore()
	n := qs.Observe(1, []*query.Query{tq(1, "o_date"), tq(2, "o_status")})
	if n != 2 {
		t.Fatalf("new templates = %d", n)
	}
	n = qs.Observe(2, []*query.Query{tq(1, "o_date")})
	if n != 0 {
		t.Fatalf("returning template counted as new: %d", n)
	}
	qoi := qs.QoI(2)
	if len(qoi) != 2 {
		t.Fatalf("QoI = %d templates", len(qoi))
	}
	// After the window passes, template 2 ages out.
	qs.Observe(5, []*query.Query{tq(1, "o_date")})
	qoi = qs.QoI(5)
	if len(qoi) != 1 || qoi[0].TemplateID != 1 {
		t.Fatalf("stale template not aged out: %d in QoI", len(qoi))
	}
}

func TestQueryStoreFrequency(t *testing.T) {
	qs := NewQueryStore()
	qs.Observe(1, []*query.Query{tq(1, "o_date"), tq(1, "o_date"), tq(1, "o_date")})
	tis := qs.Templates()
	if len(tis) != 1 || tis[0].Frequency != 3 || tis[0].LastRoundCount != 3 {
		t.Fatalf("template info = %+v", tis[0])
	}
	if qs.Len() != 1 {
		t.Fatalf("len = %d", qs.Len())
	}
}

func TestQueryStoreShiftIntensity(t *testing.T) {
	qs := NewQueryStore()
	qs.Observe(1, []*query.Query{tq(1, "o_date"), tq(2, "o_status")})
	if got := qs.ShiftIntensity(); got != 1 {
		t.Fatalf("first round intensity = %v, want 1", got)
	}
	qs.Observe(2, []*query.Query{tq(1, "o_date"), tq(2, "o_status")})
	if got := qs.ShiftIntensity(); got != 0 {
		t.Fatalf("repeat round intensity = %v, want 0", got)
	}
	qs.Observe(3, []*query.Query{tq(1, "o_date"), tq(3, "o_priority")})
	if got := qs.ShiftIntensity(); got != 0.5 {
		t.Fatalf("half-new round intensity = %v, want 0.5", got)
	}
}

func TestQueryStoreEmptyIntensity(t *testing.T) {
	qs := NewQueryStore()
	if qs.ShiftIntensity() != 0 {
		t.Fatal("empty store should report zero intensity")
	}
}

func TestQueryStoreLatestInstanceWins(t *testing.T) {
	qs := NewQueryStore()
	a := tq(1, "o_date")
	qs.Observe(1, []*query.Query{a})
	b := tq(1, "o_date")
	b.Filters[0].Lo = 99
	qs.Observe(2, []*query.Query{b})
	qoi := qs.QoI(2)
	if len(qoi) != 1 || qoi[0].Filters[0].Lo != 99 {
		t.Fatal("QoI did not keep the latest instance")
	}
}
