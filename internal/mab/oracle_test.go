package mab

import (
	"testing"
	"testing/quick"

	"dbabandits/internal/index"
)

func mkArm(table string, key []string, size int64, templates ...int) *Arm {
	return &Arm{
		Index:     index.New(table, key, nil),
		Table:     table,
		SizeBytes: size,
		Queries:   templates,
	}
}

func TestOraclePrunesNegativeScores(t *testing.T) {
	arms := []*Arm{
		mkArm("t", []string{"a"}, 10, 1),
		mkArm("t", []string{"b"}, 10, 1),
	}
	got := SelectSuperArm(arms, []float64{-1, 2}, 100)
	if len(got) != 1 || got[0].Index.Key[0] != "b" {
		t.Fatalf("selected %v", got)
	}
}

func TestOracleRespectsBudget(t *testing.T) {
	arms := []*Arm{
		mkArm("t", []string{"a"}, 60, 1),
		mkArm("t", []string{"b"}, 60, 2),
		mkArm("t", []string{"c"}, 30, 3),
	}
	got := SelectSuperArm(arms, []float64{3, 2, 1}, 100)
	var total int64
	for _, a := range got {
		total += a.SizeBytes
	}
	if total > 100 {
		t.Fatalf("budget exceeded: %d", total)
	}
	// Greedy should take a (60), skip b (doesn't fit), take c (30).
	if len(got) != 2 || got[0].Index.Key[0] != "a" || got[1].Index.Key[0] != "c" {
		t.Fatalf("selected %v", ids(got))
	}
}

func TestOracleGreedyByScore(t *testing.T) {
	arms := []*Arm{
		mkArm("t", []string{"a"}, 10, 1),
		mkArm("t", []string{"b"}, 10, 2),
		mkArm("t", []string{"c"}, 10, 3),
	}
	got := SelectSuperArm(arms, []float64{1, 5, 3}, 20)
	if len(got) != 2 || got[0].Index.Key[0] != "b" || got[1].Index.Key[0] != "c" {
		t.Fatalf("selected %v", ids(got))
	}
}

func TestOracleFiltersSubsumedArms(t *testing.T) {
	wide := mkArm("t", []string{"a", "b"}, 20, 1)
	narrow := mkArm("t", []string{"a"}, 10, 1)
	other := mkArm("t", []string{"c"}, 10, 2)
	got := SelectSuperArm([]*Arm{wide, narrow, other}, []float64{5, 4, 1}, 100)
	for _, a := range got {
		if a.ID() == narrow.ID() {
			t.Fatal("prefix-subsumed arm selected")
		}
	}
	if len(got) != 2 {
		t.Fatalf("selected %v", ids(got))
	}
}

func TestOracleCoveringFilterDropsQueryMates(t *testing.T) {
	covering := &Arm{
		Index:       index.New("t", []string{"a", "b"}, []string{"p"}),
		Table:       "t",
		SizeBytes:   30,
		Queries:     []int{1},
		CoveringFor: []int{1},
	}
	mate := mkArm("t", []string{"b"}, 10, 1)           // same query only
	shared := mkArm("t", []string{"b", "c"}, 10, 1, 2) // also serves query 2
	got := SelectSuperArm([]*Arm{covering, mate, shared}, []float64{5, 4, 3}, 100)
	sel := map[string]bool{}
	for _, a := range got {
		sel[a.ID()] = true
	}
	if !sel[covering.ID()] {
		t.Fatal("covering arm not selected")
	}
	if sel[mate.ID()] {
		t.Fatal("query-mate of covering arm not filtered")
	}
	if !sel[shared.ID()] {
		t.Fatal("arm shared with an uncovered query wrongly filtered")
	}
}

func TestOracleEmptyAndZeroBudget(t *testing.T) {
	if got := SelectSuperArm(nil, nil, 100); len(got) != 0 {
		t.Fatal("selected arms from nothing")
	}
	arms := []*Arm{mkArm("t", []string{"a"}, 10, 1)}
	if got := SelectSuperArm(arms, []float64{5}, 5); len(got) != 0 {
		t.Fatal("selected arm exceeding budget")
	}
}

func TestOracleDeterministicTieBreak(t *testing.T) {
	arms := []*Arm{
		mkArm("t", []string{"b"}, 10, 1),
		mkArm("t", []string{"a"}, 10, 2),
	}
	got := SelectSuperArm(arms, []float64{1, 1}, 10)
	if len(got) != 1 || got[0].Index.Key[0] != "a" {
		t.Fatalf("tie break selected %v", ids(got))
	}
}

// Property: the oracle never exceeds the budget and never selects an arm
// with non-positive score.
func TestQuickOracleInvariants(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	f := func(sizes [5]uint16, scores [5]int8, budget uint16) bool {
		arms := make([]*Arm, 5)
		sc := make([]float64, 5)
		for i := range arms {
			arms[i] = mkArm("t", []string{cols[i]}, int64(sizes[i]%500)+1, i)
			sc[i] = float64(scores[i])
		}
		got := SelectSuperArm(arms, sc, int64(budget))
		var total int64
		seen := map[string]bool{}
		for _, a := range got {
			total += a.SizeBytes
			if seen[a.ID()] {
				return false // duplicate selection
			}
			seen[a.ID()] = true
		}
		if total > int64(budget) {
			return false
		}
		for _, a := range got {
			for i, arm := range arms {
				if arm.ID() == a.ID() && sc[i] <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func ids(arms []*Arm) []string {
	out := make([]string, len(arms))
	for i, a := range arms {
		out[i] = a.ID()
	}
	return out
}
