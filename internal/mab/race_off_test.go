//go:build !race

package mab

// raceEnabled reports whether the race detector instruments this build;
// exact allocation-count pins are skipped under it.
const raceEnabled = false
