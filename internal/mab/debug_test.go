package mab

import (
	"fmt"
	"os"
	"testing"

	"dbabandits/internal/engine"
)

// TestDebugLoop prints the per-round state of the mini harness; it only
// runs when MAB_DEBUG=1 and exists to diagnose convergence issues.
func TestDebugLoop(t *testing.T) {
	if os.Getenv("MAB_DEBUG") == "" {
		t.Skip("set MAB_DEBUG=1 to run")
	}
	h := newMiniHarness(t, TunerOptions{})
	for round := 1; round <= 12; round++ {
		rec := h.tuner.Recommend(h.lastWorkload)
		fmt.Printf("round %d: arms=%d cfg=%v\n", round, rec.NumArms, rec.Config.IDs())
		creation := map[string]float64{}
		h.createSec = 0
		for _, ix := range rec.ToCreate {
			meta := h.schema.MustTable(ix.Table)
			sec := h.cm.IndexBuildSec(meta, ix.SizeBytes(meta))
			creation[ix.ID()] = sec
			h.createSec += sec
		}
		var stats []*engine.ExecStats
		h.execSec = 0
		wl := selectiveWorkload(round)
		for _, q := range wl {
			plan, err := h.opt.ChoosePlan(q, rec.Config)
			if err != nil {
				t.Fatal(err)
			}
			st, err := engine.Execute(h.db, plan, h.cm)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("  q%d plan=%s total=%.3f usage=%v\n", q.TemplateID, st.PlanDesc, st.TotalSec, st.IndexAccessSec)
			stats = append(stats, st)
			h.execSec += st.TotalSec
		}
		h.tuner.ObserveExecution(stats, creation)
		h.lastWorkload = wl
		fmt.Printf("  exec=%.2f create=%.2f scale=%.2f\n", h.execSec, h.createSec, h.tuner.Bandit().rewardScale)
	}
}
