package mab

import (
	"testing"

	"dbabandits/internal/query"
)

func TestWarmStartSeedsKnowledge(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	training := selectiveWorkload(1)
	// A warm start that claims every arm gains 10s/round.
	h.tuner.WarmStart(training, func(a *Arm) float64 { return 10 }, 3)
	if h.tuner.Bandit().state.Updates() == 0 {
		t.Fatal("warm start produced no observations")
	}
	theta := h.tuner.Bandit().Theta()
	if theta.Norm2() == 0 {
		t.Fatal("warm start did not move theta")
	}
}

func TestWarmStartEmptyInputsNoop(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{})
	h.tuner.WarmStart(nil, func(a *Arm) float64 { return 1 }, 3)
	h.tuner.WarmStart(selectiveWorkload(1), func(a *Arm) float64 { return 1 }, 0)
	if h.tuner.Bandit().state.Updates() != 0 {
		t.Fatal("no-op warm start updated the bandit")
	}
}

func TestWarmStartBiasCanBeOverridden(t *testing.T) {
	// Feed a wrongly *ordered* but optimistic warm start (bigger indexes
	// look better, which is backwards), then run real rounds: observed
	// rewards must still converge the tuner to a useful configuration.
	// (A uniformly pessimistic prior is sticky by design — no arm is ever
	// tried again — which is the caveat the paper cites Zhang et al.'s
	// warm-start work for; the harness's what-if warm start only feeds
	// non-negative estimated gains for that reason.)
	h := newMiniHarness(t, TunerOptions{})
	h.tuner.WarmStart(selectiveWorkload(1), func(a *Arm) float64 {
		return float64(a.SizeBytes) / 1e6 // backwards: size as merit
	}, 1)
	for round := 1; round <= 15; round++ {
		h.round(t, selectiveWorkload(round))
	}
	base := h.noIndexSec(t, selectiveWorkload(15))
	if h.execSec >= base {
		t.Fatalf("tuner never recovered from biased warm start: %v vs %v", h.execSec, base)
	}
}

func TestOraclePostPassRemovesRedundantPrefixes(t *testing.T) {
	// A narrow arm with a high score picked before its wider superset must
	// be dropped by the post-pass.
	narrow := mkArm("t", []string{"a"}, 10, 1)
	wide := mkArm("t", []string{"a", "b"}, 20, 2)
	got := SelectSuperArm([]*Arm{narrow, wide}, []float64{9, 5}, 100)
	for _, a := range got {
		if a.ID() == narrow.ID() {
			t.Fatalf("redundant prefix survived: %v", ids(got))
		}
	}
	if len(got) != 1 || got[0].ID() != wide.ID() {
		t.Fatalf("selected %v", ids(got))
	}
}

func TestThrottleLimitsNewCreations(t *testing.T) {
	var arms []*Arm
	var scores []float64
	cols := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, c := range cols {
		arms = append(arms, mkArm("t", []string{c}, 10, i))
		scores = append(scores, float64(10-i))
	}
	existing := map[string]bool{arms[0].ID(): true}
	got := SelectSuperArmThrottled(arms, scores, 1000, existing, 2)
	newCount := 0
	for _, a := range got {
		if !existing[a.ID()] {
			newCount++
		}
	}
	if newCount > 2 {
		t.Fatalf("throttle exceeded: %d new arms", newCount)
	}
	// The already-materialised arm must not count against the throttle.
	found := false
	for _, a := range got {
		if a.ID() == arms[0].ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("materialised arm dropped by throttle")
	}
}

func TestThrottleDisabled(t *testing.T) {
	var arms []*Arm
	var scores []float64
	cols := []string{"a", "b", "c", "d", "e"}
	for i, c := range cols {
		arms = append(arms, mkArm("t", []string{c}, 10, i))
		scores = append(scores, 5)
	}
	got := SelectSuperArmThrottled(arms, scores, 1000, nil, 0)
	if len(got) != len(arms) {
		t.Fatalf("unthrottled selection dropped arms: %d of %d", len(got), len(arms))
	}
}

func TestQoIWindowOption(t *testing.T) {
	h := newMiniHarness(t, TunerOptions{QoIWindow: 1})
	h.round(t, selectiveWorkload(1))
	h.round(t, selectiveWorkload(2))
	if h.tuner.Store().Window != 1 {
		t.Fatalf("window = %d", h.tuner.Store().Window)
	}
}

func TestTunerRewardSignWiring(t *testing.T) {
	// End-to-end reward check: run until a covering index is used, then
	// verify theta predicts a positive score for its materialised context
	// (the learned knowledge is what keeps it selected).
	h := newMiniHarness(t, TunerOptions{})
	for round := 1; round <= 10; round++ {
		h.round(t, selectiveWorkload(round))
	}
	cfg := h.tuner.Config()
	if cfg.Len() == 0 {
		t.Skip("no stable configuration on this seed")
	}
	var usedQuery []*query.Query = selectiveWorkload(11)
	_ = usedQuery
	// Scores of the current configuration's arms must be positive at
	// recommendation time (otherwise the oracle would drop them).
	rec := h.tuner.Recommend(h.lastWorkload)
	for _, id := range cfg.IDs() {
		if rec.Config.Has(id) {
			return // at least one retained arm: wiring is consistent
		}
	}
	t.Fatal("no previously selected arm retained despite positive gains")
}
