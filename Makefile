# Local verification targets mirroring .github/workflows/ci.yml, so a
# green `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test race fmt vet smoke htapsmoke ridgesmoke servesmoke scoresmoke fleetsmoke plancachesmoke cover bench benchsweep benchsmoke benchdiff ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent code (worker pool + sharded
# scoring kernels + harness) and the policy/env/serve layers every
# experiment cell and serving session drives. linalg and mab are here
# for the parallel arm-scoring tests: shards score a shared ridge core
# concurrently, and -race proves the read-only discipline.
race:
	$(GO) test -race ./internal/runner/... ./internal/linalg/... ./internal/mab/... ./internal/harness/... ./internal/policy/... ./internal/env/... ./internal/serve/... ./internal/fleet/... ./internal/optimizer/... ./internal/engine/...

# Fails when any file needs gofmt, listing the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# End-to-end smoke run: Figure 2, shrunken rounds, 4-way parallel sweep.
smoke:
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -progress

# HTAP smoke mirroring CI: the hybrid-regime comparison at two
# parallelism levels, stdout byte-compared for determinism.
htapsmoke:
	$(GO) run ./cmd/experiments -exp htap -quick -parallel 1 > .htap_p1.out
	$(GO) run ./cmd/experiments -exp htap -quick -parallel 4 > .htap_p4.out
	diff .htap_p1.out .htap_p4.out
	@rm -f .htap_p1.out .htap_p4.out

# Ridge-backend smoke mirroring CI: Figure 2 regenerated once per ridge
# backend (Sherman–Morrison vs factored Cholesky), stdout byte-compared
# — the factored path must be a drop-in, not a behaviour change.
ridgesmoke:
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -ridge sm > .ridge_sm.out
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -ridge chol > .ridge_chol.out
	diff .ridge_sm.out .ridge_chol.out
	@rm -f .ridge_sm.out .ridge_chol.out

# Serving-mode smoke mirroring CI: serve a 5-window stream to the end,
# then serve it again but kill the process at a window-3 checkpoint and
# restore from disk — the stitched kill-and-restore output must match
# the uninterrupted run byte for byte (only the process-local Served
# counter in the summary line is masked).
# Parallel-scoring smoke mirroring CI: Figure 2 regenerated with arm
# scoring fanned across 4 workers, stdout byte-compared against the
# default serial pass — parallelism changes scheduling, never bytes.
scoresmoke:
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 > .score_serial.out
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -score-parallel 4 > .score_par.out
	diff .score_serial.out .score_par.out
	@rm -f .score_serial.out .score_par.out

# Fleet smoke mirroring CI: an 8-tenant heterogeneous fleet (mixed
# benchmarks, regimes and scale factors, two tenants admitted late with
# cross-tenant warm starts) run serially and 4-way parallel, stdout
# byte-compared — tenant scheduling must never leak into any number.
fleetsmoke:
	$(GO) run ./cmd/fleet -tenants 8 -rounds 3 -rows 500 -parallel 1 > .fleet_p1.out
	$(GO) run ./cmd/fleet -tenants 8 -rounds 3 -rows 500 -parallel 4 > .fleet_p4.out
	diff .fleet_p1.out .fleet_p4.out
	@rm -f .fleet_p1.out .fleet_p4.out

# Plan-cache smoke mirroring CI: Figure 2 regenerated with the
# optimiser's config-fingerprinted plan cache on (the default) and off,
# stdout byte-compared — the cache is a wall-clock optimisation and must
# never change a plan, a cost, or a count.
plancachesmoke:
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 > .pc_on.out
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -plan-cache=false > .pc_off.out
	diff .pc_on.out .pc_off.out
	@rm -f .pc_on.out .pc_off.out

servesmoke:
	@printf '1 2 3 4\n2 3 1\n5 5 2\n1 4\n3 2 1\n' > .serve_stream.txt
	$(GO) run ./cmd/serve -stream .serve_stream.txt > .serve_full.out
	$(GO) run ./cmd/serve -stream .serve_stream.txt -checkpoint .serve.ckpt -stop-after 3 > .serve_head.out
	$(GO) run ./cmd/serve -restore -stream .serve_stream.txt -checkpoint .serve.ckpt > .serve_tail.out
	head -n 3 .serve_head.out > .serve_stitch.out
	head -n 2 .serve_tail.out >> .serve_stitch.out
	head -n 5 .serve_full.out | diff - .serve_stitch.out
	tail -n 1 .serve_full.out | sed 's/"Served":[0-9]*/"Served":0/' > .serve_sum_full.out
	tail -n 1 .serve_tail.out | sed 's/"Served":[0-9]*/"Served":0/' > .serve_sum_tail.out
	diff .serve_sum_full.out .serve_sum_tail.out
	@rm -f .serve_stream.txt .serve.ckpt .serve_full.out .serve_head.out .serve_tail.out .serve_stitch.out .serve_sum_full.out .serve_sum_tail.out

# Per-package coverage, as published in the CI workflow summary.
cover:
	$(GO) test -cover ./...

# Hot-path benchmark capture: runs the recommend-loop benchmarks with
# -benchmem and writes the numbers to BENCH_<short-sha>.json via
# cmd/benchjson, so the perf trajectory is tracked in-repo. Compare
# against BENCH_baseline.json (captured at the pre-sparse-fast-path
# commit) — see the README's Performance section.
BENCH_PATTERN = 'BenchmarkTunerRecommendTPCDS$$|BenchmarkTunerRecommendSteadyState$$|BenchmarkScoresTPCDS$$|BenchmarkScoresBatch$$|BenchmarkScoresBatchParallel$$|BenchmarkScoresSparse$$|BenchmarkScoresDenseTPCDS$$|BenchmarkThetaCached$$|BenchmarkThetaRecompute$$|BenchmarkCholObserve$$|BenchmarkCholObserveFused$$|BenchmarkRidgeObserveScore$$|BenchmarkRidgeObserveScoreSparse$$|BenchmarkRidgeForget$$|BenchmarkForgetLowRank$$|BenchmarkRidgeObserve$$|BenchmarkC2UCBScores$$|BenchmarkArmGeneration$$|BenchmarkFleetRound$$|BenchmarkChoosePlanCold$$|BenchmarkChoosePlanWarm$$|BenchmarkWhatIfWorkloadCold$$|BenchmarkWhatIfWorkloadWarm$$|BenchmarkEnvRoundSteadyState$$'

bench:
	$(GO) test -run '^$$' -bench $(BENCH_PATTERN) -benchmem ./... > .bench.out
	$(GO) run ./cmd/benchjson -label ridge=sm -label score-workers=1,2,4 -label plan-cache=on < .bench.out > BENCH_$$(git rev-parse --short HEAD).json
	@rm -f .bench.out
	@echo wrote BENCH_$$(git rev-parse --short HEAD).json

# Committed latest capture; bump when `make bench` commits a new one.
BENCH_LATEST = BENCH_5468017.json

# Perf regression tripwire mirroring CI: re-runs the Observe/Scores
# and recommend-round hot paths, captures them through benchjson, and
# fails if any benchmark present in both captures regressed ns/op OR
# allocs/op by more than 30% against the committed latest capture — the
# alloc budget is what keeps TunerRecommend's arena path flat.
# Benchmarks new since that capture are reported but never gated.
benchdiff:
	$(GO) test -run '^$$' -bench 'Observe|Scores|TunerRecommend|ChoosePlan|WhatIfWorkload|EnvRound' -benchmem . ./internal/linalg/ ./internal/mab/ ./internal/env/ > .benchdiff.out
	$(GO) run ./cmd/benchjson < .benchdiff.out > .benchdiff.json
	@$(GO) run ./cmd/benchdiff -only 'Observe|Scores|TunerRecommend|ChoosePlan|WhatIfWorkload|EnvRound' -fail-over 30 -fail-over-allocs 30 $(BENCH_LATEST) .benchdiff.json; \
	status=$$?; rm -f .benchdiff.out .benchdiff.json; exit $$status

# Parallel-runner speedup benchmark (sequential vs all-CPU sweep).
benchsweep:
	$(GO) test -run '^$$' -bench BenchmarkRunCellsStaticSweep -benchtime 1x .

# Compile-and-run smoke over every benchmark in the repo (one iteration
# each), so benchmarks can't rot between perf-focused PRs — plus a
# benchjson round-trip over the mab hot-path benches so the capture
# tooling can't rot either.
benchsmoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run '^$$' -bench 'BenchmarkScoresTPCDS$$|BenchmarkScoresSparse$$' -benchtime 1x ./internal/mab/ > .benchsmoke.out
	$(GO) run ./cmd/benchjson < .benchsmoke.out > /dev/null
	@rm -f .benchsmoke.out

# cover subsumes test (go test -cover runs the full suite), so ci pays
# for one suite pass plus the race pass, matching the CI workflow.
ci: fmt vet build cover race smoke htapsmoke ridgesmoke scoresmoke plancachesmoke servesmoke fleetsmoke benchsmoke benchdiff
