# Local verification targets mirroring .github/workflows/ci.yml, so a
# green `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test race fmt vet smoke bench benchsmoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent code (worker pool + harness)
# and the policy/env layers every experiment cell drives.
race:
	$(GO) test -race ./internal/runner/... ./internal/harness/... ./internal/policy/... ./internal/env/...

# Fails when any file needs gofmt, listing the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# End-to-end smoke run: Figure 2, shrunken rounds, 4-way parallel sweep.
smoke:
	$(GO) run ./cmd/experiments -exp fig2 -quick -parallel 4 -progress

# Parallel-runner speedup benchmark (sequential vs all-CPU sweep).
bench:
	$(GO) test -run '^$$' -bench BenchmarkRunCellsStaticSweep -benchtime 1x .

# Compile-and-run smoke over every benchmark in the repo (one iteration
# each), so benchmarks can't rot between perf-focused PRs.
benchsmoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

ci: fmt vet build test race smoke benchsmoke
