// Package dbabandits is a Go reproduction of "DBA bandits: Self-driving
// index tuning under ad-hoc, analytical workloads with safety guarantees"
// (Perera, Oetomo, Rubinstein, Borovica-Gajic — ICDE 2021).
//
// It provides:
//
//   - the C2UCB contextual combinatorial bandit tuner for online index
//     selection (the paper's contribution), with dynamic workload-driven
//     arm generation, prefix-encoded contexts, a greedy knapsack super-arm
//     oracle, execution-gain reward shaping and shift-scaled forgetting;
//   - a self-contained analytical DBMS simulator (storage, deliberately
//     uniformity/AVI-limited optimiser, true-cost executor) to tune
//     against;
//   - the paper's comparison baselines: an offline what-if physical
//     design tool and a DDQN agent;
//   - the five benchmark suites (TPC-H, TPC-H Skew, SSB, TPC-DS,
//     JOB/IMDb) and four workload regimes (static, shifting, random,
//     and the HTAP regime of the journal follow-up, whose update-heavy
//     rounds charge index maintenance against every policy's reward);
//   - a pluggable tuning-policy layer: every strategy implements the
//     Policy interface, is constructed through a name-keyed registry
//     (RegisterPolicy / PolicyNames), and runs through the ONE generic
//     round-loop driver Experiment.RunPolicy — the seed strategies and
//     an online what-if advisor baseline ship pre-registered; and
//   - an experiment harness regenerating every figure and table of the
//     paper's evaluation, with a parallel sweep runner (RunCells) that
//     fans independent experiment cells across a bounded worker pool;
//     and
//   - an online serving mode (NewServeSession, cmd/serve): statement
//     windows arrive incrementally rather than from a preplanned
//     regime, sessions checkpoint to disk and resume byte-identically
//     (RestoreServeSession), and a runtime safety guardrail quarantines
//     the tuner back to the last-known-safe configuration when realized
//     cost regresses past its budget.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	exp, err := dbabandits.NewExperiment(dbabandits.ExperimentOptions{
//	    Benchmark: "tpch", Regime: dbabandits.Static, Seed: 1,
//	})
//	res, err := exp.Run(dbabandits.MAB)
//	rec, create, exec, total := res.Totals()
//
// For custom integrations, NewTuner returns the bandit tuner directly: feed
// it each round's observed workload, materialise its recommendations, and
// report back per-query execution statistics.
//
// # Pluggable tuning policies
//
// A new tuning strategy needs no harness edits: implement Policy, register
// a factory, and every experiment surface (Experiment.Run, RunCells, the
// mabtune -tuner flag) can run it by name against the seed baselines:
//
//	dbabandits.RegisterPolicy("mine", func(e dbabandits.PolicyEnv, p dbabandits.PolicyParams) (dbabandits.Policy, error) {
//	    return &minePolicy{budget: e.MemoryBudgetBytes()}, nil
//	})
//	res, err := exp.Run(dbabandits.TunerKind("mine"))
//
// The driver calls Recommend at the top of each round with only the
// previously executed workload (policies never see the future), prices
// and applies the configuration delta, executes the round, and feeds the
// true execution statistics back through Observe.
//
// # Parallel sweeps
//
// Evaluation sweeps are grids of independent cells (benchmark × regime ×
// tuner × repetition). RunCells executes such a grid across a bounded
// worker pool (see examples/sweep):
//
//	results := dbabandits.RunCells(specs, dbabandits.RunCellsOptions{
//	    Parallel: runtime.GOMAXPROCS(0), Progress: os.Stderr,
//	})
//
// The deterministic-seeding contract: every cell builds its own database
// and workload sequence from its base Options.Seed (so all tuners of one
// benchmark compare against identical data), while per-cell stochastic
// state (the DDQN agent) draws its seed from a splittable hash of the
// cell's identity Key(). Results therefore do not depend on the worker
// count or on completion order — RunCells with Parallel: 8 reproduces
// Parallel: 1 byte for byte — and one failed cell reports its error in
// its CellResult without aborting sibling cells.
package dbabandits

import (
	"io"

	"dbabandits/internal/catalog"
	"dbabandits/internal/datagen"
	"dbabandits/internal/engine"
	"dbabandits/internal/harness"
	"dbabandits/internal/index"
	"dbabandits/internal/linalg"
	"dbabandits/internal/mab"
	"dbabandits/internal/optimizer"
	"dbabandits/internal/policy"
	"dbabandits/internal/query"
	"dbabandits/internal/serve"
	"dbabandits/internal/storage"
	"dbabandits/internal/workload"
)

// Core tuner types (the paper's contribution).
type (
	// Tuner is the MAB index tuner implementing Algorithm 2.
	Tuner = mab.Tuner
	// TunerOptions configures the tuner (budget, exploration, ablations).
	TunerOptions = mab.TunerOptions
	// Recommendation is one round's output: the configuration to
	// materialise plus the modelled recommendation time.
	Recommendation = mab.Recommendation
	// Arm is one candidate index with its motivating queries.
	Arm = mab.Arm
	// QueryStore aggregates observed workload templates.
	QueryStore = mab.QueryStore
)

// Ridge backend names for TunerOptions.RidgeBackend: the
// Sherman–Morrison explicit inverse (the default) and the factored
// Cholesky core (no inverse maintenance, no rebase machinery).
const (
	RidgeBackendSM   = linalg.BackendSM
	RidgeBackendChol = linalg.BackendChol
)

// RidgeBackends lists the selectable ridge-backend names.
func RidgeBackends() []string { return linalg.RidgeBackends() }

// ValidRidgeBackend reports whether name selects a ridge backend (""
// selects the default). NewTuner panics on an unknown name, so callers
// building TunerOptions.RidgeBackend from user input should validate
// with this first.
func ValidRidgeBackend(name string) bool { return linalg.ValidRidgeBackend(name) }

// Simulator types.
type (
	// Schema describes a database schema with statistics.
	Schema = catalog.Schema
	// Table is one table's logical definition.
	Table = catalog.Table
	// Database is a materialised (physical) database.
	Database = storage.Database
	// Query is a structured conjunctive analytical query.
	Query = query.Query
	// Predicate is a single-column filter.
	Predicate = query.Predicate
	// Index is a secondary-index definition.
	Index = index.Index
	// IndexConfig is a set of secondary indexes (a "configuration").
	IndexConfig = index.Config
	// CostModel holds the simulator's physical cost constants.
	CostModel = engine.CostModel
	// ExecStats reports one query's true execution observations.
	ExecStats = engine.ExecStats
	// Optimizer is the simulated (uniformity+AVI) query optimiser with a
	// what-if interface.
	Optimizer = optimizer.Optimizer
	// Benchmark is a workload suite (schema plus templates).
	Benchmark = workload.Benchmark
)

// Experiment harness types.
type (
	// Experiment is a prepared benchmark environment.
	Experiment = harness.Experiment
	// ExperimentOptions configures an experiment.
	ExperimentOptions = harness.Options
	// RunResult aggregates a run's per-round breakdown.
	RunResult = harness.RunResult
	// RoundResult is one round's breakdown.
	RoundResult = harness.RoundResult
	// TunerKind selects a tuning strategy.
	TunerKind = harness.TunerKind
	// Regime selects a workload regime.
	Regime = harness.Regime
	// CellSpec is one independent cell of a parallel sweep.
	CellSpec = harness.CellSpec
	// CellResult pairs a cell with its RunResult or error.
	CellResult = harness.CellResult
	// RunCellsOptions tune a RunCells sweep (parallelism, progress).
	RunCellsOptions = harness.RunCellsOptions
)

// Pluggable tuning-policy layer types.
type (
	// Policy is one tuning strategy, driven round by round by the
	// generic driver (Experiment.RunPolicy).
	Policy = policy.Policy
	// PolicyEnv is the read-only environment view a policy factory may
	// consult (schema, budget, what-if optimiser, regime, rounds).
	PolicyEnv = policy.Env
	// PolicyParams carries per-strategy knobs (bandit ablations, DDQN
	// seed, PDTool time limit).
	PolicyParams = policy.Params
	// PolicyFactory builds a policy against a prepared environment.
	PolicyFactory = policy.Factory
	// PolicyRecommendation is a policy's per-round decision: the full
	// configuration for the round plus the modelled decision time.
	PolicyRecommendation = policy.Recommendation
	// PolicySnapshotter is the optional checkpointing capability: a
	// policy that can serialise its learned state at a round boundary
	// and later resume byte-identically from it.
	PolicySnapshotter = policy.Snapshotter
	// PolicyForgetter is the optional forgetting capability the serving
	// guardrail uses to discount a quarantined policy's knowledge.
	PolicyForgetter = policy.Forgetter
)

// RegisterPolicy adds a named tuning strategy to the registry; it is then
// runnable by name everywhere a TunerKind is accepted. Registering a name
// twice panics.
func RegisterPolicy(name string, f PolicyFactory) { policy.Register(name, f) }

// PolicyNames lists every registered tuning strategy, sorted.
func PolicyNames() []string { return policy.Names() }

// Tuning strategies.
const (
	NoIndex      = harness.NoIndex
	PDTool       = harness.PDTool
	MAB          = harness.MAB
	DDQN         = harness.DDQN
	DDQNSC       = harness.DDQNSC
	Advisor      = harness.Advisor
	RandomConfig = harness.RandomConfig
)

// Workload regimes.
const (
	Static   = harness.Static
	Shifting = harness.Shifting
	Random   = harness.Random
	HTAP     = harness.HTAP
)

// NewTuner constructs the MAB tuner for a schema. dbSizeBytes normalises
// the context's relative-size component (use Schema.DataSizeBytes()).
func NewTuner(schema *Schema, dbSizeBytes int64, opts TunerOptions) *Tuner {
	return mab.NewTuner(schema, dbSizeBytes, opts)
}

// NewExperiment prepares a benchmark experiment (data generation, cost
// model, optimiser, workload sequencer).
func NewExperiment(opts ExperimentOptions) (*Experiment, error) {
	return harness.New(opts)
}

// RunCells executes a sweep of independent experiment cells across a
// bounded worker pool, returning one CellResult per spec in spec order.
// Results are identical at every parallelism level; a failing cell is
// reported in place without aborting its siblings.
func RunCells(specs []CellSpec, opts RunCellsOptions) []CellResult {
	return harness.RunCells(specs, opts)
}

// CellErrs collects every failed cell's error from a RunCells sweep.
func CellErrs(results []CellResult) []error {
	return harness.CellErrs(results)
}

// Speedup formats the relative improvement of b over a in percent, as
// the paper reports its headline numbers.
func Speedup(a, b float64) string { return harness.Speedup(a, b) }

// BenchmarkByName returns one of the five benchmark suites: "ssb",
// "tpch", "tpch-skew", "tpcds" or "imdb".
func BenchmarkByName(name string) (*Benchmark, error) {
	return workload.ByName(name)
}

// BuildDatabase materialises a schema into a physical database at the
// given scale factor and physical row cap (0 caps at the default 20000).
func BuildDatabase(schema *Schema, scaleFactor float64, maxStoredRows int, seed int64) (*Database, error) {
	return datagen.Build(schema, datagen.Options{
		ScaleFactor:   scaleFactor,
		MaxStoredRows: maxStoredRows,
		Seed:          seed,
	})
}

// NewOptimizer returns the simulated query optimiser over the schema.
func NewOptimizer(schema *Schema, cm *CostModel) *Optimizer {
	return optimizer.New(schema, cm)
}

// DefaultCostModel returns the cost constants used by the experiments.
func DefaultCostModel() *CostModel { return engine.DefaultCostModel() }

// ExecutePlan runs a plan against the database and returns the true
// (simulated) execution observations.
func ExecutePlan(db *Database, plan *engine.Plan, cm *CostModel) (*ExecStats, error) {
	return engine.Execute(db, plan, cm)
}

// Online serving mode types: long-lived checkpointed tuner sessions fed
// statement windows as they arrive, supervised by a runtime safety
// guardrail (see examples/serve and cmd/serve).
type (
	// ServeSession is a long-lived serving-mode tuner session.
	ServeSession = serve.Session
	// ServeOptions configures a serving session.
	ServeOptions = serve.Options
	// ServeGuardrailOptions configures the safety supervisor.
	ServeGuardrailOptions = serve.GuardrailOptions
	// ServeWindowReport is the per-window account Feed returns.
	ServeWindowReport = serve.WindowReport
	// ServeCheckpoint is the versioned on-disk session image.
	ServeCheckpoint = serve.Checkpoint
	// ServeStream reads the serving line protocol (one window of
	// template ids per line, instantiated deterministically).
	ServeStream = serve.Stream
)

// ServeCheckpointVersion is the checkpoint format version this build
// reads and writes.
const ServeCheckpointVersion = serve.CheckpointVersion

// NewServeSession prepares a serving session; the caller must Close it.
func NewServeSession(opts ServeOptions) (*ServeSession, error) { return serve.New(opts) }

// RestoreServeSession resumes a session from a checkpoint file. The
// restored session's next Feed behaves exactly as the checkpointed
// session's would have.
func RestoreServeSession(path string) (*ServeSession, error) { return serve.RestoreFile(path) }

// RestoreServeCheckpoint resumes a session from an in-memory checkpoint.
func RestoreServeCheckpoint(ck *ServeCheckpoint) (*ServeSession, error) { return serve.Restore(ck) }

// LoadServeCheckpoint reads and validates a checkpoint file without
// rebuilding the session.
func LoadServeCheckpoint(path string) (*ServeCheckpoint, error) { return serve.LoadCheckpoint(path) }

// NewServeStream wraps a line-protocol reader for a session's benchmark.
func NewServeStream(r io.Reader, s *ServeSession) *ServeStream { return serve.NewStream(r, s) }

// NewIndexConfig returns an empty index configuration.
func NewIndexConfig() *IndexConfig { return index.NewConfig() }

// NewIndex constructs a secondary-index definition.
func NewIndex(table string, key, include []string) *Index {
	return index.New(table, key, include)
}
