package dbabandits

import (
	"math/rand"
	"testing"
)

func TestPublicAPIExperimentRoundTrip(t *testing.T) {
	exp, err := NewExperiment(ExperimentOptions{
		Benchmark:     "ssb",
		Regime:        Static,
		Rounds:        4,
		MaxStoredRows: 1000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(MAB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	_, _, exec, total := res.Totals()
	if exec <= 0 || total < exec {
		t.Fatalf("exec=%v total=%v", exec, total)
	}
}

func TestPublicAPITunerDirectUse(t *testing.T) {
	bench, err := BenchmarkByName("tpch")
	if err != nil {
		t.Fatal(err)
	}
	schema := bench.NewSchema()
	db, err := BuildDatabase(schema, 1, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	opt := NewOptimizer(schema, cm)
	tuner := NewTuner(schema, db.DataSizeBytes(), TunerOptions{
		MemoryBudgetBytes: db.DataSizeBytes(),
	})

	var last []*Query
	for round := 1; round <= 3; round++ {
		rec := tuner.Recommend(last)
		wl := []*Query{bench.Templates[5].Instantiate(nil2rng(round), db, "tpch")}
		var stats []*ExecStats
		for _, q := range wl {
			plan, err := opt.ChoosePlan(q, rec.Config)
			if err != nil {
				t.Fatal(err)
			}
			st, err := ExecutePlan(db, plan, cm)
			if err != nil {
				t.Fatal(err)
			}
			stats = append(stats, st)
		}
		tuner.ObserveExecution(stats, map[string]float64{})
		last = wl
	}
	if tuner.Store().Len() == 0 {
		t.Fatal("query store empty after three rounds")
	}
}

func TestPublicAPIIndexHelpers(t *testing.T) {
	cfg := NewIndexConfig()
	ix := NewIndex("orders", []string{"o_custkey"}, []string{"o_total"})
	if !cfg.Add(ix) || cfg.Len() != 1 {
		t.Fatal("config add failed")
	}
	if ix.ID() != "orders(o_custkey) INCLUDE (o_total)" {
		t.Fatalf("id = %q", ix.ID())
	}
}

// nil2rng builds a deterministic rng for template instantiation in tests.
func nil2rng(round int) *rand.Rand { return rand.New(rand.NewSource(int64(round))) }
