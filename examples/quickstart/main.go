// Quickstart: run the MAB tuner against the TPC-H benchmark in the
// static regime for a handful of rounds and print what it learned.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dbabandits"
)

func main() {
	// An Experiment bundles a generated benchmark database, the simulated
	// optimiser/executor, and a workload sequencer.
	exp, err := dbabandits.NewExperiment(dbabandits.ExperimentOptions{
		Benchmark:     "tpch",
		Regime:        dbabandits.Static,
		Rounds:        10,
		ScaleFactor:   10,
		MaxStoredRows: 3000,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %.2f GB logical, index budget %.2f GB\n",
		float64(exp.DB.DataSizeBytes())/(1<<30), float64(exp.Budget)/(1<<30))

	baseline, err := exp.Run(dbabandits.NoIndex)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := exp.Run(dbabandits.MAB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nround   NoIndex(s)   MAB(s)   MAB indexes")
	for i := range tuned.Rounds {
		fmt.Printf("%5d %12.1f %8.1f %13d\n",
			i+1, baseline.Rounds[i].TotalSec(), tuned.Rounds[i].TotalSec(), tuned.Rounds[i].NumIndexes)
	}

	_, _, execBase, _ := baseline.Totals()
	rec, create, execMAB, total := tuned.Totals()
	fmt.Printf("\nNoIndex execution total: %.1fs\n", execBase)
	fmt.Printf("MAB: recommend=%.1fs create=%.1fs execute=%.1fs total=%.1fs\n",
		rec, create, execMAB, total)
	fmt.Printf("final-round speed-up over NoIndex: %.0f%%\n",
		(1-tuned.FinalRoundExecSec()/baseline.FinalRoundExecSec())*100)
}
