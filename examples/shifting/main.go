// Shifting-workload example: models a data-exploration session whose
// region of interest moves between query-template groups (the paper's
// dynamic shifting regime). Shows the MAB detecting each shift, forgetting
// stale knowledge and re-converging, while the offline advisor must be
// explicitly retrained.
//
//	go run ./examples/shifting
package main

import (
	"fmt"
	"log"

	"dbabandits"
)

func main() {
	exp, err := dbabandits.NewExperiment(dbabandits.ExperimentOptions{
		Benchmark:     "tpch-skew",
		Regime:        dbabandits.Shifting,
		Rounds:        24, // 4 template groups x 6 rounds
		ScaleFactor:   10,
		MaxStoredRows: 3000,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}

	results := map[dbabandits.TunerKind]*dbabandits.RunResult{}
	for _, kind := range []dbabandits.TunerKind{dbabandits.NoIndex, dbabandits.PDTool, dbabandits.MAB} {
		res, err := exp.Run(kind)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = res
	}

	fmt.Println("round  group   NoIndex(s)  PDTool(s)     MAB(s)")
	for i := 0; i < 24; i++ {
		group := i/6 + 1
		marker := ""
		if i%6 == 0 && i > 0 {
			marker = "  <- workload shift"
		}
		fmt.Printf("%5d %6d %12.1f %10.1f %10.1f%s\n",
			i+1, group,
			results[dbabandits.NoIndex].Rounds[i].TotalSec(),
			results[dbabandits.PDTool].Rounds[i].TotalSec(),
			results[dbabandits.MAB].Rounds[i].TotalSec(),
			marker)
	}

	fmt.Println("\ntotals (sec):")
	for _, kind := range []dbabandits.TunerKind{dbabandits.NoIndex, dbabandits.PDTool, dbabandits.MAB} {
		rec, create, exec, total := results[kind].Totals()
		fmt.Printf("  %-8s recommend=%7.1f create=%7.1f execute=%8.1f total=%8.1f\n",
			kind, rec, create, exec, total)
	}
}
