// Serving mode: feed a tuner session statement windows as they arrive,
// checkpoint it mid-stream, kill it, restore it from disk, and finish
// the stream — the restored session recommends exactly what the
// uninterrupted one would have.
//
//	go run ./examples/serve
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dbabandits"
)

// The stream: one line per window, template ids from the benchmark's
// template set (repeat an id for multiple instances).
const stream = `
1 2 3 4
2 3 1
# ad-hoc spike on templates 5 and 2
5 5 2
1 4
3 2 1
`

func main() {
	opts := dbabandits.ServeOptions{
		Benchmark:     "ssb",
		ScaleFactor:   10,
		MaxStoredRows: 3000,
		Seed:          42,
		Policy:        "mab",
	}
	s, err := dbabandits.NewServeSession(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	ckpt := filepath.Join(os.TempDir(), "serve-example.ckpt")
	defer os.Remove(ckpt)

	// Serve the first three windows, checkpointing after each.
	st := dbabandits.NewServeStream(strings.NewReader(stream), s)
	for i := 0; i < 3; i++ {
		win, err := st.Next()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := s.Feed(win)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: %d queries, exec %.1fs, %d indexes\n",
			rep.Window, rep.NumQueries, rep.ExecSec, rep.NumIndexes)
		if err := s.WriteCheckpoint(ckpt); err != nil {
			log.Fatal(err)
		}
	}

	// Kill the session (the deferred Close is idempotent) and restore a
	// fresh one from the checkpoint: the policy's learned state, the
	// materialised configuration and the guardrail counters all resume.
	s.Close()
	restored, err := dbabandits.RestoreServeSession(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	fmt.Printf("restored at window %d\n", restored.Window())

	// Finish the stream on the restored session, skipping the prefix the
	// first session already served.
	st = dbabandits.NewServeStream(strings.NewReader(stream), restored)
	if err := st.Skip(restored.Window()); err != nil {
		log.Fatal(err)
	}
	for {
		win, err := st.Next()
		if err != nil {
			break // io.EOF: stream done
		}
		rep, err := restored.Feed(win)
		if err != nil {
			log.Fatal(err)
		}
		flag := ""
		if rep.Intervention != "" {
			flag = "  <- guardrail " + rep.Intervention
		}
		fmt.Printf("window %d: %d queries, exec %.1fs, %d indexes%s\n",
			rep.Window, rep.NumQueries, rep.ExecSec, rep.NumIndexes, flag)
	}

	fmt.Println("final configuration:")
	for _, id := range restored.Config() {
		fmt.Println("  ", id)
	}
}
