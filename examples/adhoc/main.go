// Ad-hoc workload example: drives the tuner directly through its public
// API (not the harness) against a random query stream — the integration
// shape a real deployment would use: observe the last round's queries,
// materialise the recommendation, execute, feed back statistics.
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dbabandits"
)

func main() {
	bench, err := dbabandits.BenchmarkByName("tpcds")
	if err != nil {
		log.Fatal(err)
	}
	schema := bench.NewSchema()
	db, err := dbabandits.BuildDatabase(schema, 10, 3000, 99)
	if err != nil {
		log.Fatal(err)
	}
	cm := dbabandits.DefaultCostModel()
	opt := dbabandits.NewOptimizer(schema, cm)
	tuner := dbabandits.NewTuner(schema, db.DataSizeBytes(), dbabandits.TunerOptions{
		MemoryBudgetBytes: db.DataSizeBytes(), // 1x data budget
	})

	rng := rand.New(rand.NewSource(7))
	var lastRound []*dbabandits.Query

	fmt.Println("round  queries  arms  indexes  create(s)  execute(s)")
	for round := 1; round <= 12; round++ {
		// 1) The tuner observes the previous round and recommends the
		//    next configuration.
		rec := tuner.Recommend(lastRound)

		// 2) Materialise the recommendation (charge creation time).
		var createSec float64
		creation := map[string]float64{}
		for _, ix := range rec.ToCreate {
			meta, _ := schema.Table(ix.Table)
			sec := cm.IndexBuildSec(meta, ix.SizeBytes(meta))
			creation[ix.ID()] = sec
			createSec += sec
		}

		// 3) An ad-hoc workload arrives: a random handful of templates.
		var workload []*dbabandits.Query
		n := 8 + rng.Intn(8)
		for i := 0; i < n; i++ {
			ts := bench.Templates[rng.Intn(len(bench.Templates))]
			workload = append(workload, ts.Instantiate(rng, db, "tpcds"))
		}

		// 4) Execute under the recommended configuration and collect the
		//    observations the bandit learns from.
		var stats []*dbabandits.ExecStats
		var execSec float64
		for _, q := range workload {
			plan, err := opt.ChoosePlan(q, rec.Config)
			if err != nil {
				log.Fatal(err)
			}
			st, err := dbabandits.ExecutePlan(db, plan, cm)
			if err != nil {
				log.Fatal(err)
			}
			stats = append(stats, st)
			execSec += st.TotalSec
		}

		// 5) Close the loop.
		tuner.ObserveExecution(stats, creation)
		lastRound = workload

		fmt.Printf("%5d %8d %5d %8d %10.1f %11.1f\n",
			round, len(workload), rec.NumArms, rec.Config.Len(), createSec, execSec)
	}

	fmt.Println("\nfinal configuration:")
	for _, id := range tuner.Config().IDs() {
		fmt.Println("  ", id)
	}
}
