// What-if gap example: demonstrates the paper's motivating pathology —
// the query optimiser's cost model (uniformity + attribute-value
// independence) misestimates skewed data, an offline what-if advisor
// inherits those mistakes (index overuse regression), and the bandit's
// reward signal sees the truth directly.
//
//	go run ./examples/whatif_gap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dbabandits"
)

func main() {
	bench, err := dbabandits.BenchmarkByName("tpch-skew")
	if err != nil {
		log.Fatal(err)
	}
	schema := bench.NewSchema()
	db, err := dbabandits.BuildDatabase(schema, 10, 5000, 7)
	if err != nil {
		log.Fatal(err)
	}
	cm := dbabandits.DefaultCostModel()
	opt := dbabandits.NewOptimizer(schema, cm)

	// Template 17 is the Q17 analogue: part filtered by brand/container,
	// joined into lineitem through the zipfian foreign key l_partkey. Hot
	// parts make the true join fanout explode while the optimiser's
	// containment assumption predicts a modest one.
	rng := rand.New(rand.NewSource(3))
	var q *dbabandits.Query
	for _, ts := range bench.Templates {
		if ts.ID == 17 {
			q = ts.Instantiate(rng, db, "tpch-skew")
		}
	}
	if q == nil {
		log.Fatal("template 17 not found")
	}
	fmt.Println("query:", q.SQL())
	fmt.Println()

	// 1) No secondary indexes: the optimiser scans and hashes.
	empty := dbabandits.NewIndexConfig()
	planScan, err := opt.ChoosePlan(q, empty)
	if err != nil {
		log.Fatal(err)
	}
	scanStats, err := dbabandits.ExecutePlan(db, planScan, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NoIndex    estimated %8.1fs   true %8.1fs\n  plan: %s\n\n",
		planScan.EstCost, scanStats.TotalSec, planScan)

	// 2) A what-if advisor loves this index — the estimated cost
	//    collapses. The true cost can tell another story when the filter
	//    hits a hot part.
	cfg := dbabandits.NewIndexConfig()
	cfg.Add(dbabandits.NewIndex("lineitem",
		[]string{"l_partkey"},
		[]string{"l_extendedprice", "l_quantity"}))
	planIx, err := opt.ChoosePlan(q, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ixStats, err := dbabandits.ExecutePlan(db, planIx, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WithIndex  estimated %8.1fs   true %8.1fs\n  plan: %s\n\n",
		planIx.EstCost, ixStats.TotalSec, planIx)

	fmt.Printf("what-if estimate promises a %.1fx speed-up from the index;\n",
		planScan.EstCost/planIx.EstCost)
	switch {
	case ixStats.TotalSec > scanStats.TotalSec*1.05:
		fmt.Printf("reality: the query got %.1fx SLOWER — index overuse regression.\n",
			ixStats.TotalSec/scanStats.TotalSec)
	default:
		fmt.Printf("reality: %.1fx speed-up for this instance (re-run other seeds to see regressions on hot values).\n",
			scanStats.TotalSec/ixStats.TotalSec)
	}

	// 3) The bandit's reward signal for the index is the observed
	//    table-scan baseline minus the actual access time — negative
	//    rewards teach it to drop the index, no cost model involved.
	fmt.Println()
	for id, acc := range ixStats.IndexAccessSec {
		gain := ixStats.TableScanSec[acc.Table] - acc.Sec
		fmt.Printf("MAB reward signal for %s:\n  gain = %.1fs (negative means: drop it)\n", id, gain)
	}
}
