// Sweep: fan a small benchmark × tuner grid across all CPUs with the
// parallel experiment runner and print a per-cell summary. The results
// are deterministic — rerunning with -parallel 1 produces the same
// numbers in the same order.
//
//	go run ./examples/sweep
//	go run ./examples/sweep -parallel 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"dbabandits"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent cells")
	flag.Parse()

	var specs []dbabandits.CellSpec
	for _, bench := range []string{"ssb", "tpch", "tpch-skew"} {
		for _, kind := range []dbabandits.TunerKind{dbabandits.NoIndex, dbabandits.MAB} {
			specs = append(specs, dbabandits.CellSpec{
				Options: dbabandits.ExperimentOptions{
					Benchmark:     bench,
					Regime:        dbabandits.Static,
					Rounds:        8,
					ScaleFactor:   10,
					MaxStoredRows: 2000,
					Seed:          42,
				},
				Tuner: kind,
			})
		}
	}

	results := dbabandits.RunCells(specs, dbabandits.RunCellsOptions{
		Parallel: *parallel,
		Progress: os.Stderr,
	})
	if errs := dbabandits.CellErrs(results); len(errs) > 0 {
		log.Fatal(errs[0])
	}

	fmt.Printf("\n%-36s %12s %12s\n", "cell", "total (s)", "final (s)")
	for _, r := range results {
		_, _, _, total := r.Res.Totals()
		fmt.Printf("%-36s %12.1f %12.1f\n", r.Spec.Key(), total, r.Res.FinalRoundExecSec())
	}

	// The grid is (benchmark, tuner) pairs in spec order, NoIndex before
	// MAB, so adjacent results compare directly.
	fmt.Println()
	for i := 0; i < len(results); i += 2 {
		_, _, _, base := results[i].Res.Totals()
		_, _, _, tuned := results[i+1].Res.Totals()
		fmt.Printf("%-10s MAB vs NoIndex: %s\n",
			results[i].Spec.Benchmark, dbabandits.Speedup(base, tuned))
	}
}
