module dbabandits

go 1.21
