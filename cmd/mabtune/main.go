// Command mabtune runs one benchmark x regime x tuner combination and
// prints the per-round breakdown plus totals.
//
// Usage:
//
//	mabtune -bench tpch-skew -regime static -tuner mab -rounds 25 -sf 10
//	mabtune -bench ssb -tuner noindex,mab,advisor -series
//	mabtune -bench tpcds -tuner mab -ridge chol
//
// Benchmarks: ssb, tpch, tpch-skew, tpcds, imdb.
// Regimes:    static, shifting, random, htap.
// Tuners:     any registered policy name (comma-separated list allowed;
// all run against the identical database and workload sequence). The
// seed strategies are noindex, pdtool, mab, ddqn and ddqn-sc; additional
// policies registered through the policy registry — such as the online
// what-if advisor, "advisor" — are selectable here with no harness
// changes.
//
// -ridge selects the MAB's ridge-regression backend: "sm" keeps the
// default Sherman–Morrison explicit inverse, "chol" the factored
// Cholesky core (no inverse maintenance; identical recommendations on
// every pinned workload).
//
// -score-parallel fans the MAB's arm scoring across worker goroutines
// (byte-identical output at any setting); -forget-rank budgets the SM
// backend's structured low-rank Forget instead of the exact O(d³)
// rebase.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbabandits/internal/cli"
	"dbabandits/internal/harness"
	"dbabandits/internal/policy"
)

func main() {
	var (
		bench          = cli.Bench(flag.CommandLine, "tpch")
		sf, rows, seed = cli.Data(flag.CommandLine)
		budget         = cli.Budget(flag.CommandLine)
		ridge          = cli.Ridge(flag.CommandLine)
		scorePar       = cli.ScoreParallel(flag.CommandLine)
		forgetRank     = cli.ForgetRank(flag.CommandLine)
		planCache      = cli.PlanCache(flag.CommandLine)

		regime = flag.String("regime", "static", "workload regime: static|shifting|random|htap")
		tuners = flag.String("tuner", "noindex,pdtool,mab",
			"comma-separated tuners: "+strings.Join(policy.Names(), "|"))
		rounds  = flag.Int("rounds", 0, "rounds (0 = regime default: 25 static/random, 80 shifting)")
		series  = flag.Bool("series", false, "print per-round convergence series")
		csvOut  = flag.Bool("csv", false, "print the series as CSV")
		pdLimit = flag.Float64("pdtool-limit", 0, "PDTool per-invocation time limit (sec, 0=unlimited)")
	)
	flag.Parse()
	if err := cli.CheckRidge(*ridge); err != nil {
		cli.Fatal("mabtune", err)
	}

	opts := harness.Options{
		Benchmark:          *bench,
		Regime:             harness.Regime(*regime),
		Rounds:             *rounds,
		ScaleFactor:        *sf,
		MaxStoredRows:      *rows,
		Seed:               *seed,
		MemoryBudgetX:      *budget,
		PDToolTimeLimitSec: *pdLimit,
	}
	opts.MABOptions.RidgeBackend = *ridge
	opts.MABOptions.ScoreWorkers = *scorePar
	opts.MABOptions.ForgetRank = *forgetRank
	opts.DisablePlanCache = !*planCache
	exp, err := harness.New(opts)
	if err != nil {
		cli.Fatal("mabtune", err)
	}

	fmt.Printf("benchmark=%s regime=%s sf=%.0f rounds=%d data=%.2fGB budget=%.2fGB\n",
		*bench, *regime, *sf, exp.Seq.Rounds(),
		float64(exp.DB.DataSizeBytes())/(1<<30), float64(exp.Budget)/(1<<30))

	var runs []*harness.RunResult
	for _, name := range strings.Split(*tuners, ",") {
		kind := harness.TunerKind(strings.TrimSpace(name))
		res, err := exp.Run(kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mabtune: %s: %v\n", kind, err)
			os.Exit(1)
		}
		runs = append(runs, res)
		rec, create, execT, total := res.Totals()
		maint := ""
		if exp.HasUpdates() {
			maint = fmt.Sprintf("  maintain=%8.1fs", res.MaintenanceTotal())
		}
		fmt.Printf("%-8s  recommend=%8.1fs  create=%8.1fs  execute=%9.1fs%s  total=%9.1fs  final-round-exec=%7.1fs\n",
			kind, rec, create, execT, maint, total, res.FinalRoundExecSec())
	}

	if *csvOut {
		fmt.Print(harness.SeriesCSV(runs))
	} else if *series {
		fmt.Println()
		harness.RenderConvergence(os.Stdout, fmt.Sprintf("%s %s", *bench, *regime), runs)
	}
}
