// Command serve runs the online serving mode: a long-lived tuner
// session fed statement windows from a stream, checkpointing to disk at
// window boundaries and supervised by the runtime safety guardrail.
//
// The stream (stdin by default, or -stream FILE) is the line protocol:
// one line per window, each a whitespace-separated list of template ids
// from the benchmark's template set ("1 2 2 5" — repeat an id for
// multiple instances); '#' starts a comment. Each served window prints
// one JSON report line on stdout, and a final JSON summary line carries
// the session's closing configuration.
//
// Usage:
//
//	serve -bench ssb -policy mab -checkpoint tuner.ckpt < stream.txt
//	serve -restore -checkpoint tuner.ckpt < stream.txt   # resume killed run
//	serve -policy mab -ridge chol -stop-after 5 -checkpoint tuner.ckpt < stream.txt
//
// A restored session skips the stream's already-served prefix and then
// recommends byte-identically to a session that was never interrupted —
// the property `make servesmoke` checks end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dbabandits/internal/cli"
	"dbabandits/internal/serve"
)

func main() {
	var (
		bench          = cli.Bench(flag.CommandLine, "ssb")
		sf, rows, seed = cli.Data(flag.CommandLine)
		budget         = cli.Budget(flag.CommandLine)
		ridge          = cli.Ridge(flag.CommandLine)
		scorePar       = cli.ScoreParallel(flag.CommandLine)
		forgetRank     = cli.ForgetRank(flag.CommandLine)
		planCache      = cli.PlanCache(flag.CommandLine)
		pol            = cli.Policy(flag.CommandLine, "policy", "mab")

		streamPath = flag.String("stream", "-", "window stream file ('-' = stdin)")
		ckptPath   = flag.String("checkpoint", "", "checkpoint file (written at window boundaries)")
		restore    = flag.Bool("restore", false, "resume from -checkpoint, skipping the stream's served prefix")
		every      = flag.Int("every", 1, "checkpoint every N windows")
		stopAfter  = flag.Int("stop-after", 0, "serve at most N windows this process (0 = to stream end)")

		noGuard       = flag.Bool("no-guard", false, "disable the safety guardrail")
		guardX        = flag.Float64("guard-budget-x", 0, "guardrail budget multiple of baseline (0 = default 2.0)")
		guardAfter    = flag.Int("guard-after", 0, "violation streak that trips quarantine (0 = default 2)")
		guardCooldown = flag.Int("guard-cooldown", 0, "windows served under the safe config after quarantine (0 = default 2)")
		guardForget   = flag.Float64("guard-forget", 0, "policy forgetting factor applied on quarantine (0 = off)")
	)
	flag.Parse()
	if err := cli.CheckRidge(*ridge); err != nil {
		cli.Fatal("serve", err)
	}
	if *every < 1 {
		*every = 1
	}

	var s *serve.Session
	var err error
	if *restore {
		if *ckptPath == "" {
			cli.Fatal("serve", fmt.Errorf("-restore needs -checkpoint"))
		}
		s, err = serve.RestoreFile(*ckptPath)
	} else {
		s, err = serve.New(serve.Options{
			Benchmark:        *bench,
			ScaleFactor:      *sf,
			MaxStoredRows:    *rows,
			Seed:             *seed,
			MemoryBudgetX:    *budget,
			Policy:           *pol,
			RidgeBackend:     *ridge,
			ScoreWorkers:     *scorePar,
			ForgetRank:       *forgetRank,
			DisablePlanCache: !*planCache,
			Guardrail: serve.GuardrailOptions{
				Disabled:        *noGuard,
				BudgetX:         *guardX,
				QuarantineAfter: *guardAfter,
				CooldownWindows: *guardCooldown,
				ForgetFactor:    *guardForget,
			},
		})
	}
	if err != nil {
		cli.Fatal("serve", err)
	}
	defer s.Close()

	in := io.Reader(os.Stdin)
	if *streamPath != "-" {
		f, err := os.Open(*streamPath)
		if err != nil {
			cli.Fatal("serve", err)
		}
		defer f.Close()
		in = f
	}
	st := serve.NewStream(in, s)
	if s.Window() > 0 {
		if err := st.Skip(s.Window()); err != nil {
			cli.Fatal("serve", err)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	served := 0
	for *stopAfter <= 0 || served < *stopAfter {
		win, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cli.Fatal("serve", err)
		}
		rep, err := s.Feed(win)
		if err != nil {
			cli.Fatal("serve", err)
		}
		if err := enc.Encode(rep); err != nil {
			cli.Fatal("serve", err)
		}
		served++
		if *ckptPath != "" && s.Window()%*every == 0 {
			if err := s.WriteCheckpoint(*ckptPath); err != nil {
				cli.Fatal("serve", err)
			}
		}
	}
	if *ckptPath != "" {
		if err := s.WriteCheckpoint(*ckptPath); err != nil {
			cli.Fatal("serve", err)
		}
	}
	summary := struct {
		Served      int
		Window      int
		Quarantines int
		Config      []string
	}{served, s.Window(), s.Quarantines(), s.Config()}
	if err := enc.Encode(summary); err != nil {
		cli.Fatal("serve", err)
	}
}
