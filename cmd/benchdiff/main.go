// Command benchdiff compares two committed benchmark captures
// (BENCH_<sha>.json files written by `make bench`) and prints a
// per-benchmark delta table on ns/op and allocs/op, flagging benchmarks
// present in only one capture. It is the review tool for the repo's
// capture-per-PR perf workflow and the CI regression tripwire.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -only 'Observe|Scores' -fail-over 30 -fail-over-allocs 30 BENCH_old.json BENCH_new.json
//
// -only restricts the table (and the gates) to benchmark names matching
// the regexp. -fail-over PCT exits 1 if any compared benchmark's ns/op
// regressed by more than PCT percent; -fail-over-allocs PCT is the same
// gate on allocs/op — CI smoke uses both to fail on >30% regressions of
// the recommend-loop hot paths against the committed latest capture,
// which is what keeps the arena path's allocation discipline from
// silently eroding. Captures from different machines diff meaningfully
// only in ratio terms; the gates compare each pair within one file
// pair, never across.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"dbabandits/internal/benchfmt"
	"dbabandits/internal/cli"
)

func main() {
	only := flag.String("only", "", "restrict to benchmark names matching this regexp")
	failOver := flag.Float64("fail-over", 0, "exit 1 if any ns/op regression exceeds this percentage (0 = report only)")
	failOverAllocs := flag.Float64("fail-over-allocs", 0, "exit 1 if any allocs/op regression exceeds this percentage (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-only REGEXP] [-fail-over PCT] [-fail-over-allocs PCT] OLD.json NEW.json")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			cli.Fatal("benchdiff", err)
		}
		filter = re
	}
	oldDoc, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal("benchdiff", err)
	}
	newDoc, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		cli.Fatal("benchdiff", err)
	}

	names := map[string]bool{}
	for name := range oldDoc.Benchmarks {
		names[name] = true
	}
	for name := range newDoc.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		if filter == nil || filter.MatchString(name) {
			sorted = append(sorted, name)
		}
	}
	sort.Strings(sorted)
	if len(sorted) == 0 {
		cli.Fatal("benchdiff", fmt.Errorf("no benchmarks to compare (filter %q)", *only))
	}

	width := len("benchmark")
	for _, name := range sorted {
		if len(name) > width {
			width = len(name)
		}
	}
	fmt.Printf("%-*s  %14s  %14s  %8s  %12s  %12s  %8s\n", width, "benchmark",
		"old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	worstNs, worstNsName := 0.0, ""
	worstAl, worstAlName := 0.0, ""
	compared := 0
	for _, name := range sorted {
		o, inOld := oldDoc.Benchmarks[name]
		n, inNew := newDoc.Benchmarks[name]
		switch {
		case !inOld:
			fmt.Printf("%-*s  %14s  %14.0f  %8s  %12s  %12.0f  %8s\n", width, name,
				"-", n["ns/op"], "new", "-", n["allocs/op"], "new")
		case !inNew:
			fmt.Printf("%-*s  %14.0f  %14s  %8s  %12.0f  %12s  %8s\n", width, name,
				o["ns/op"], "-", "gone", o["allocs/op"], "-", "gone")
		default:
			ons, nns := o["ns/op"], n["ns/op"]
			oal, nal := o["allocs/op"], n["allocs/op"]
			if ons <= 0 {
				fmt.Printf("%-*s  %14.0f  %14.0f  %8s  %12.0f  %12.0f  %8s\n", width, name,
					ons, nns, "?", oal, nal, "?")
				continue
			}
			nsPct := (nns - ons) / ons * 100
			// An alloc-free baseline (0 allocs/op) has no ratio; print the
			// counts and let any growth from zero show as "+new" — worth a
			// reviewer's eye, but only a ratio can trip the gate.
			alDelta := "?"
			if oal > 0 {
				alPct := (nal - oal) / oal * 100
				alDelta = fmt.Sprintf("%+.1f%%", alPct)
				if alPct > worstAl {
					worstAl, worstAlName = alPct, name
				}
			} else if nal > 0 {
				alDelta = "+new"
			}
			fmt.Printf("%-*s  %14.0f  %14.0f  %+7.1f%%  %12.0f  %12.0f  %8s\n", width, name,
				ons, nns, nsPct, oal, nal, alDelta)
			compared++
			if nsPct > worstNs {
				worstNs, worstNsName = nsPct, name
			}
		}
	}
	if compared == 0 {
		cli.Fatal("benchdiff", fmt.Errorf("no benchmark appears in both captures (filter %q)", *only))
	}
	failed := false
	if *failOver > 0 && worstNs > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% ns/op (> %.0f%% budget)\n", worstNsName, worstNs, *failOver)
		failed = true
	}
	if *failOverAllocs > 0 && worstAl > *failOverAllocs {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% allocs/op (> %.0f%% budget)\n", worstAlName, worstAl, *failOverAllocs)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
