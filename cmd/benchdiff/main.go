// Command benchdiff compares two committed benchmark captures
// (BENCH_<sha>.json files written by `make bench`) and prints a
// per-benchmark delta table on ns/op, flagging benchmarks present in
// only one capture. It is the review tool for the repo's
// capture-per-PR perf workflow and the CI regression tripwire.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -only 'Observe|Scores' -fail-over 30 BENCH_old.json BENCH_new.json
//
// -only restricts the table (and the gate) to benchmark names matching
// the regexp. -fail-over PCT exits 1 if any compared benchmark's ns/op
// regressed by more than PCT percent — CI smoke uses it to fail on
// >30% regressions of the Observe/Scores hot paths against the
// committed latest capture. Captures from different machines diff
// meaningfully only in ratio terms; the gate compares each pair within
// one file pair, never across.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"dbabandits/internal/benchfmt"
	"dbabandits/internal/cli"
)

func main() {
	only := flag.String("only", "", "restrict to benchmark names matching this regexp")
	failOver := flag.Float64("fail-over", 0, "exit 1 if any ns/op regression exceeds this percentage (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-only REGEXP] [-fail-over PCT] OLD.json NEW.json")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			cli.Fatal("benchdiff", err)
		}
		filter = re
	}
	oldDoc, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal("benchdiff", err)
	}
	newDoc, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		cli.Fatal("benchdiff", err)
	}

	names := map[string]bool{}
	for name := range oldDoc.Benchmarks {
		names[name] = true
	}
	for name := range newDoc.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		if filter == nil || filter.MatchString(name) {
			sorted = append(sorted, name)
		}
	}
	sort.Strings(sorted)
	if len(sorted) == 0 {
		cli.Fatal("benchdiff", fmt.Errorf("no benchmarks to compare (filter %q)", *only))
	}

	width := len("benchmark")
	for _, name := range sorted {
		if len(name) > width {
			width = len(name)
		}
	}
	fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "benchmark", "old ns/op", "new ns/op", "delta")
	worst, worstName := 0.0, ""
	compared := 0
	for _, name := range sorted {
		o, inOld := oldDoc.Benchmarks[name]
		n, inNew := newDoc.Benchmarks[name]
		switch {
		case !inOld:
			fmt.Printf("%-*s  %14s  %14.0f  %8s\n", width, name, "-", n["ns/op"], "new")
		case !inNew:
			fmt.Printf("%-*s  %14.0f  %14s  %8s\n", width, name, o["ns/op"], "-", "gone")
		default:
			ons, nns := o["ns/op"], n["ns/op"]
			if ons <= 0 {
				fmt.Printf("%-*s  %14.0f  %14.0f  %8s\n", width, name, ons, nns, "?")
				continue
			}
			pct := (nns - ons) / ons * 100
			fmt.Printf("%-*s  %14.0f  %14.0f  %+7.1f%%\n", width, name, ons, nns, pct)
			compared++
			if pct > worst {
				worst, worstName = pct, name
			}
		}
	}
	if compared == 0 {
		cli.Fatal("benchdiff", fmt.Errorf("no benchmark appears in both captures (filter %q)", *only))
	}
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% (> %.0f%% budget)\n", worstName, worst, *failOver)
		os.Exit(1)
	}
}
