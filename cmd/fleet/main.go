// Command fleet runs a multi-tenant tuning fleet: N heterogeneous
// tenant databases (mixed benchmarks, scale factors, and workload
// regimes, cycled by internal/fleet.DefaultFleet), each an independent
// cell-seeded deterministic environment, fanned across a bounded worker
// pool. The report is fleet-shaped: per-tenant totals and regret
// against each tenant's own noindex baseline, plus fleet p50/p95/p99
// over every tenant-round of round cost, maintenance, and regret.
//
// Tenants in the fleet's last quarter are "admitted" late: they
// warm-start their bandit posterior from the most schema-similar
// incumbent tenant (cross-tenant transfer through the snapshot seam)
// and run a cold-start control over the identical environment, so the
// report shows the measured transfer benefit per admitted tenant.
//
// Output is byte-identical at any -parallel and -score-parallel
// setting: seeds derive from tenant identity alone and results are
// collected in spec order.
//
// Usage:
//
//	fleet                        # 8 tenants, one worker per CPU
//	fleet -tenants 16 -rounds 10 # a bigger fleet, longer runs
//	fleet -parallel 1            # sequential reference run
//	fleet -no-transfer           # admitted tenants run cold
package main

import (
	"flag"
	"fmt"
	"os"

	"dbabandits/internal/cli"
	"dbabandits/internal/env"
	"dbabandits/internal/fleet"
	"dbabandits/internal/harness"
)

var (
	_, rows, seed      = cli.Data(flag.CommandLine)
	ridge              = cli.Ridge(flag.CommandLine)
	pol                = cli.Policy(flag.CommandLine, "policy", "mab")
	scorePar           = cli.ScoreParallelAuto(flag.CommandLine)
	planCache          = cli.PlanCache(flag.CommandLine)
	parallel, progress = cli.Parallel(flag.CommandLine)

	tenants        = flag.Int("tenants", 8, "fleet size (last quarter admitted late)")
	rounds         = flag.Int("rounds", 5, "tuning rounds per tenant (0 = regime default)")
	transferRounds = flag.Int("transfer-rounds", 3, "warm-start rounds an admitted tenant pre-trains from its donor")
	noTransfer     = flag.Bool("no-transfer", false, "run admitted tenants cold (topology only, no cross-tenant learning)")
	earlyK         = flag.Int("early-rounds", 5, "early-round window the transfer benefit is summed over")
)

func main() {
	flag.Parse()
	if err := cli.CheckRidge(*ridge); err != nil {
		cli.Fatal("fleet", err)
	}

	specs := fleet.DefaultFleet(*tenants, *rounds, *rows)
	opts := fleet.Options{
		BaseSeed:         *seed,
		Policy:           env.TunerKind(*pol),
		RidgeBackend:     *ridge,
		ScoreWorkers:     *scorePar,
		TransferRounds:   *transferRounds,
		DisableTransfer:  *noTransfer,
		Parallel:         *parallel,
		DisablePlanCache: !*planCache,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	res, err := fleet.Run(specs, opts)
	if err != nil {
		cli.Fatal("fleet", err)
	}
	harness.RenderFleet(os.Stdout, "Fleet", res, *earlyK)
	if errs := res.Errs(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "fleet:", e)
		}
		os.Exit(1)
	}
}
