// Command experiments regenerates every table and figure of the paper's
// evaluation section (Figures 2-8, Tables I-II) against the simulated
// substrate. Absolute times are simulated seconds, not the paper's
// testbed wall-clock; the comparative shapes are what reproduce.
//
// Every sweep fans its independent experiment cells (benchmark × regime
// × tuner × repetition) across a bounded worker pool. Output is
// byte-identical at any -parallel setting: each cell derives its private
// RNG seeds from the cell's identity alone, and results are collected in
// spec order regardless of completion order. One failed cell does not
// abort the sweep; all cell errors are reported at the end.
//
// Usage:
//
//	experiments -exp all             # everything, one worker per CPU
//	experiments -exp fig2,fig3       # static convergence + totals
//	experiments -exp table1          # time breakdown
//	experiments -exp fig8 -reps 10   # RL comparison, 10 repetitions
//	experiments -exp htap            # HTAP regime, all online baselines
//	experiments -exp all -parallel 1 # sequential reference run
//	experiments -exp all -progress   # per-cell completion lines on stderr
//	experiments -exp fig2 -ridge chol # factored ridge backend, same output
//	experiments -exp fig2 -score-parallel 4 # parallel arm scoring, same output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbabandits/internal/cli"
	"dbabandits/internal/harness"
)

var (
	sf, rows, seed     = cli.Data(flag.CommandLine)
	ridge              = cli.Ridge(flag.CommandLine)
	scorePar           = cli.ScoreParallel(flag.CommandLine)
	planCache          = cli.PlanCache(flag.CommandLine)
	parallel, progress = cli.Parallel(flag.CommandLine)

	reps  = flag.Int("reps", 3, "repetitions for the RL comparison (paper: 10)")
	quick = flag.Bool("quick", false, "shrink rounds for a fast smoke run")
)

var benches = []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"}

func main() {
	exps := flag.String("exp", "all", "comma-separated: fig2,fig3,fig4,fig5,fig6,fig7,table1,table2,fig8,htap,all")
	flag.Parse()
	if err := cli.CheckRidge(*ridge); err != nil {
		cli.Fatal("experiments", err)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	// Figures 2-7 and Table I share their runs: collect the needed
	// regimes and fan every cell out in a single sweep.
	var regimes []harness.Regime
	if all || want["fig2"] || want["fig3"] || want["table1"] {
		regimes = append(regimes, harness.Static)
	}
	if all || want["fig4"] || want["fig5"] || want["table1"] {
		regimes = append(regimes, harness.Shifting)
	}
	if all || want["fig6"] || want["fig7"] || want["table1"] {
		regimes = append(regimes, harness.Random)
	}
	byRegime := runRegimes(regimes)
	staticRuns := byRegime[harness.Static]
	shiftRuns := byRegime[harness.Shifting]
	randomRuns := byRegime[harness.Random]

	if all || want["fig2"] {
		renderConvergenceSet("Figure 2 — static convergence", staticRuns)
	}
	if all || want["fig3"] {
		harness.RenderTotals(os.Stdout, "Figure 3 — static totals", staticRuns)
		renderSpeedups(staticRuns)
	}
	if all || want["fig4"] {
		renderConvergenceSet("Figure 4 — dynamic shifting convergence", shiftRuns)
	}
	if all || want["fig5"] {
		harness.RenderTotals(os.Stdout, "Figure 5 — dynamic shifting totals", shiftRuns)
		renderSpeedups(shiftRuns)
	}
	if all || want["fig6"] {
		renderConvergenceSet("Figure 6 — dynamic random convergence", randomRuns)
	}
	if all || want["fig7"] {
		harness.RenderTotals(os.Stdout, "Figure 7 — dynamic random totals", randomRuns)
		renderSpeedups(randomRuns)
	}
	if all || want["table1"] {
		harness.RenderTable1(os.Stdout, map[harness.Regime]map[string][]*harness.RunResult{
			harness.Static:   staticRuns,
			harness.Shifting: shiftRuns,
			harness.Random:   randomRuns,
		})
		fmt.Println()
	}
	if all || want["table2"] {
		table2()
	}
	if all || want["fig8"] {
		fig8()
	}
	if all || want["htap"] {
		htapFig()
	}
}

// rounds returns the regime's round count, shrunk in quick mode.
func rounds(regime harness.Regime) int {
	if *quick {
		if regime == harness.Shifting {
			return 8
		}
		return 5
	}
	if regime == harness.Shifting {
		return 80
	}
	return 25
}

// sweepOptions are the RunCells knobs shared by every sweep.
func sweepOptions() harness.RunCellsOptions {
	opts := harness.RunCellsOptions{Parallel: *parallel}
	if *progress {
		opts.Progress = os.Stderr
	}
	return opts
}

// runCells fans the specs across the worker pool and fails the process
// only after the whole sweep has finished, reporting every cell error.
func runCells(specs []harness.CellSpec) []harness.CellResult {
	results := harness.RunCells(specs, sweepOptions())
	if errs := harness.CellErrs(results); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		os.Exit(1)
	}
	return results
}

// cellSpec builds the sweep cell for one benchmark/regime/tuner point.
func cellSpec(bench string, regime harness.Regime, kind harness.TunerKind) harness.CellSpec {
	opts := harness.Options{
		Benchmark:     bench,
		Regime:        regime,
		Rounds:        rounds(regime),
		ScaleFactor:   *sf,
		MaxStoredRows: *rows,
		Seed:          *seed,
	}
	if bench == "tpcds" && regime == harness.Random {
		// The paper caps PDTool at 1 hour per invocation here.
		opts.PDToolTimeLimitSec = 3600
	}
	opts.MABOptions.RidgeBackend = *ridge
	opts.MABOptions.ScoreWorkers = *scorePar
	opts.DisablePlanCache = !*planCache
	return harness.CellSpec{Options: opts, Tuner: kind}
}

// runRegimes executes NoIndex/PDTool/MAB on all five benchmarks for
// every requested regime as one parallel sweep, then regroups the
// results per regime and benchmark in spec order.
func runRegimes(regimes []harness.Regime) map[harness.Regime]map[string][]*harness.RunResult {
	var specs []harness.CellSpec
	for _, regime := range regimes {
		for _, bench := range benches {
			for _, kind := range []harness.TunerKind{harness.NoIndex, harness.PDTool, harness.MAB} {
				specs = append(specs, cellSpec(bench, regime, kind))
			}
		}
	}
	results := runCells(specs)

	out := map[harness.Regime]map[string][]*harness.RunResult{}
	for _, r := range results {
		regime, bench := r.Spec.Regime, r.Spec.Benchmark
		if out[regime] == nil {
			out[regime] = map[string][]*harness.RunResult{}
		}
		out[regime][bench] = append(out[regime][bench], r.Res)
	}
	return out
}

func renderConvergenceSet(title string, runs map[string][]*harness.RunResult) {
	for _, bench := range benches {
		harness.RenderConvergence(os.Stdout, fmt.Sprintf("%s — %s", title, bench), runs[bench])
		fmt.Println()
	}
}

// renderSpeedups prints MAB's relative improvement over PDTool per
// benchmark, the headline numbers of the paper's text.
func renderSpeedups(runs map[string][]*harness.RunResult) {
	fmt.Println("# MAB speed-up vs PDTool (total end-to-end time)")
	for _, bench := range benches {
		var pd, mab float64
		for _, r := range runs[bench] {
			_, _, _, total := r.Totals()
			switch r.Tuner {
			case harness.PDTool:
				pd = total
			case harness.MAB:
				mab = total
			}
		}
		fmt.Printf("  %-10s %s\n", bench, harness.Speedup(pd, mab))
	}
	fmt.Println()
}

func table2() {
	sfs := []float64{1, 10, 100}
	if *quick {
		sfs = []float64{1, 10}
	}
	var specs []harness.CellSpec
	for _, bench := range []string{"tpch", "tpch-skew"} {
		for _, factor := range sfs {
			for _, kind := range []harness.TunerKind{harness.PDTool, harness.MAB} {
				opts := harness.Options{
					Benchmark:     bench,
					Regime:        harness.Static,
					Rounds:        rounds(harness.Static),
					ScaleFactor:   factor,
					MaxStoredRows: *rows,
					Seed:          *seed,
				}
				opts.MABOptions.RidgeBackend = *ridge
				opts.MABOptions.ScoreWorkers = *scorePar
				opts.DisablePlanCache = !*planCache
				specs = append(specs, harness.CellSpec{Options: opts, Tuner: kind})
			}
		}
	}
	results := runCells(specs)

	// Consecutive spec pairs (PDTool, MAB) share one table row.
	var rowsOut []harness.Table2Row
	for i := 0; i < len(results); i += 2 {
		pd, mab := results[i], results[i+1]
		_, _, _, pdTotal := pd.Res.Totals()
		_, _, _, mabTotal := mab.Res.Totals()
		rowsOut = append(rowsOut, harness.Table2Row{
			Benchmark: pd.Spec.Benchmark,
			SF:        pd.Spec.ScaleFactor,
			PDToolMin: pdTotal / 60,
			MABMin:    mabTotal / 60,
		})
	}
	harness.RenderTable2(os.Stdout, rowsOut)
	fmt.Println()
}

// The HTAP comparison sweeps every policy of interest — including the
// random sanity control — over the hybrid regime. The list is data, not
// renderer structure: RenderConvergence/RenderBreakdown/RenderTotals
// derive their columns and rows from the runs, so adding a registered
// policy here is the only edit a new baseline needs.
var htapTuners = []harness.TunerKind{
	harness.NoIndex, harness.RandomConfig, harness.PDTool, harness.Advisor, harness.MAB,
}

var htapBenches = []string{"ssb", "tpcds"}

// htapFig renders the HTAP-regime comparison: per-round convergence and
// the recommend/create/execute/maintain breakdown per benchmark, plus
// the cross-benchmark totals. Update-heavy rounds interleave with the
// analytical ones, and every policy's total is charged the index
// maintenance its configuration incurs.
func htapFig() {
	var specs []harness.CellSpec
	for _, bench := range htapBenches {
		for _, kind := range htapTuners {
			specs = append(specs, cellSpec(bench, harness.HTAP, kind))
		}
	}
	results := runCells(specs)

	byBench := map[string][]*harness.RunResult{}
	for _, r := range results {
		byBench[r.Spec.Benchmark] = append(byBench[r.Spec.Benchmark], r.Res)
	}
	for _, bench := range htapBenches {
		harness.RenderConvergence(os.Stdout,
			fmt.Sprintf("HTAP — %s convergence (update-heavy rounds interleaved)", bench), byBench[bench])
		fmt.Println()
		harness.RenderBreakdown(os.Stdout, fmt.Sprintf("HTAP — %s", bench), byBench[bench])
		fmt.Println()
	}
	harness.RenderTotals(os.Stdout, "HTAP", byBench)
	fmt.Println()
}

func fig8() {
	fig8Rounds := 100
	if *quick {
		fig8Rounds = 10
	}
	kinds := []harness.TunerKind{harness.PDTool, harness.MAB, harness.DDQN, harness.DDQNSC}
	var specs []harness.CellSpec
	for _, bench := range []string{"tpch", "tpch-skew"} {
		for _, kind := range kinds {
			n := *reps
			if kind == harness.PDTool || kind == harness.MAB {
				// Deterministic methods need no repetition (the paper
				// highlights exactly this stability).
				n = 1
			}
			for rep := 0; rep < n; rep++ {
				opts := harness.Options{
					Benchmark:     bench,
					Regime:        harness.Static,
					Rounds:        fig8Rounds,
					ScaleFactor:   *sf,
					MaxStoredRows: *rows,
					Seed:          *seed,
				}
				opts.MABOptions.RidgeBackend = *ridge
				opts.MABOptions.ScoreWorkers = *scorePar
				opts.DisablePlanCache = !*planCache
				specs = append(specs, harness.CellSpec{
					Options: opts,
					Tuner:   kind,
					// Rep keys the cell's derived DDQNSeed, so every
					// repetition is a distinct deterministic agent.
					Rep: rep,
				})
			}
		}
	}
	results := runCells(specs)

	byBench := map[string]map[harness.TunerKind][]*harness.RunResult{}
	for _, r := range results {
		if byBench[r.Spec.Benchmark] == nil {
			byBench[r.Spec.Benchmark] = map[harness.TunerKind][]*harness.RunResult{}
		}
		byBench[r.Spec.Benchmark][r.Spec.Tuner] = append(byBench[r.Spec.Benchmark][r.Spec.Tuner], r.Res)
	}
	for _, bench := range []string{"tpch", "tpch-skew"} {
		var stats []harness.Fig8Stats
		for _, kind := range kinds {
			stats = append(stats, harness.SummariseRuns(kind, byBench[bench][kind]))
		}
		harness.RenderFig8(os.Stdout, fmt.Sprintf("Figure 8 — %s (static, %d rounds)", bench, fig8Rounds), stats)
		fmt.Println()
	}
}
